// bcn_bench_diff: perf-regression gate over two flat BENCH_*/RUN_*.json
// artifacts (the files bench/runner and perf_microbench emit).
//
//   bcn_bench_diff --a baseline.json --b candidate.json [--threshold 0.10]
//                  [--match substr] [--abs-floor 1e-12]
//                  [--require-same-keys]
//
// Every numeric key present in both files is compared with a relative
// threshold.  Exit codes: 0 = within threshold, 1 = at least one metric
// regressed (or a key mismatch with --require-same-keys), 2 = usage or
// I/O error.  Designed for CI: keep a committed baseline json, run the
// bench, diff, fail the build on breach.
#include <cstdio>

#include "common/args.h"
#include "obs/bench_diff.h"

using namespace bcn;

namespace {

void usage() {
  std::puts(
      "usage: bcn_bench_diff --a baseline.json --b candidate.json\n"
      "                      [--threshold x] [--match substr]\n"
      "                      [--abs-floor x] [--require-same-keys]\n"
      "  --threshold x        relative tolerance per metric (default\n"
      "                       0.10); 0 requires exact equality\n"
      "  --match substr       only compare keys containing substr\n"
      "  --abs-floor x        denominator floor for near-zero baselines\n"
      "                       (default 1e-12)\n"
      "  --require-same-keys  keys present in only one file count as\n"
      "                       regressions\n"
      "exit: 0 within threshold, 1 regression, 2 usage/IO error");
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    usage();
    return 0;
  }
  if (!reject_unknown_flags(args, {"help", "a", "b", "threshold", "match",
                                   "abs-floor", "require-same-keys"})) {
    usage();
    return 2;
  }
  const auto file_a = args.get("a");
  const auto file_b = args.get("b");
  if (!file_a || !file_b) {
    std::fprintf(stderr, "bcn_bench_diff: --a and --b are required\n");
    usage();
    return 2;
  }

  obs::BenchDiffOptions opts;
  opts.threshold = args.get_double("threshold", opts.threshold);
  opts.abs_floor = args.get_double("abs-floor", opts.abs_floor);
  opts.match = args.get("match").value_or("");
  opts.require_same_keys = args.get_bool("require-same-keys");
  if (opts.threshold < 0.0) {
    std::fprintf(stderr, "bcn_bench_diff: --threshold must be >= 0\n");
    return 2;
  }

  const auto result = obs::bench_diff(*file_a, *file_b, opts);
  if (!result.ok) {
    std::fprintf(stderr, "bcn_bench_diff: %s\n", result.error.c_str());
    return 2;
  }
  std::printf("%s", obs::format_bench_diff(result, opts).c_str());
  return result.regressions > 0 ? 1 : 0;
}
