// bcn_analyze: one-shot stability analysis of a BCN configuration.
//
//   bcn_analyze [--N 50] [--C 10e9] [--q0 2.5e6] [--B 5e6] [--qsc 4.5e6]
//               [--gi 4] [--gd 0.0078125] [--ru 8e6] [--w 2] [--pm 0.01]
//               [--delay 0] [--plot] [--duration 1.5e-3]
//
// Prints: parameter echo, case classification, closed-form transient
// extrema, Propositions 2-4 / Theorem 1 / baseline verdicts, numeric
// verdicts at every model level, transient estimates, frequency-domain
// margins, and (with --plot) an ASCII queue transient.
//
// The report body (everything before the --delay / --plot extras) is
// rendered by analysis::render_verdict_report, the same function the
// stability-verdict service (tools/bcn_serve) answers from — so a
// service verdict is byte-identical to this tool's output by
// construction (docs/SERVICE.md, scripts/check.sh gate 10).
#include <cstdio>
#include <cstdlib>

#include "analysis/report.h"
#include "common/args.h"
#include "common/table.h"
#include "core/delayed_model.h"
#include "core/mechanism.h"
#include "core/simulate.h"
#include "obs/monitor.h"
#include "obs/tracing.h"
#include "plot/ascii.h"

using namespace bcn;

namespace {

void usage() {
  std::puts(
      "usage: bcn_analyze [--N n] [--C bps] [--q0 bits] [--B bits]\n"
      "                   [--qsc bits] [--gi x] [--gd x] [--ru bps]\n"
      "                   [--w x] [--pm x] [--delay seconds]\n"
      "                   [--duration seconds] [--plot]\n"
      "                   [--mechanism name] [--trace file] [--help]\n"
      "  --mechanism m analyze this congestion-control mechanism's fluid\n"
      "                facet instead of BCN's (see core/mechanism.h);\n"
      "                closed-form BCN propositions apply to bcn only\n"
      "  --monitors s  arm runtime invariant monitors (BCN_MONITORS env\n"
      "                fallback); with `finite` armed a non-finite fluid\n"
      "                integration exits with code 3 instead of printing\n"
      "                a verdict built on NaN\n"
      "  --trace file  record wall-clock spans, print the self-profile\n"
      "                table and write Chrome trace-event JSON there\n"
      "                (BCN_TRACE env fallback)");
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    usage();
    return 0;
  }
  if (!reject_unknown_flags(args, {"help", "N", "C", "q0", "B", "qsc", "gi",
                                   "gd", "ru", "w", "pm", "delay", "duration",
                                   "plot", "trace", "mechanism", "monitors"})) {
    usage();
    return 2;
  }
  const std::string mechanism = args.get("mechanism").value_or("bcn");
  if (!core::find_mechanism(mechanism)) {
    std::fprintf(stderr, "--mechanism: unknown mechanism '%s' (known: %s)\n",
                 mechanism.c_str(), core::mechanism_name_list().c_str());
    return 2;
  }
  obs::MonitorSpec monitors;
  {
    std::optional<std::string> spec = args.get("monitors");
    if (!spec) {
      if (const char* env = std::getenv("BCN_MONITORS")) {
        if (*env) spec = env;
      }
    }
    if (spec) {
      std::string error;
      const auto parsed = obs::parse_monitor_spec(*spec, &error);
      if (!parsed) {
        std::fprintf(stderr, "--monitors: %s\n%s\n", error.c_str(),
                     obs::monitor_spec_usage());
        return 2;
      }
      monitors = *parsed;
    }
  }
  const auto trace_path = obs::maybe_enable_tracing(args);

  core::BcnParams p = core::BcnParams::standard_draft();
  p.num_sources = args.get_double("N", p.num_sources);
  p.capacity = args.get_double("C", p.capacity);
  p.q0 = args.get_double("q0", p.q0);
  p.buffer = args.get_double("B", p.buffer);
  p.qsc = args.get_double("qsc", std::min(0.9 * p.buffer, p.buffer - 1.0));
  p.gi = args.get_double("gi", p.gi);
  p.gd = args.get_double("gd", p.gd);
  p.ru = args.get_double("ru", p.ru);
  p.w = args.get_double("w", p.w);
  p.pm = args.get_double("pm", p.pm);

  const auto issues = p.validate();
  if (!issues.empty()) {
    std::fprintf(stderr, "invalid parameters:\n");
    for (const auto& issue : issues) {
      std::fprintf(stderr, "  - %s\n", issue.c_str());
    }
    return 1;
  }

  analysis::VerdictRequest request;
  request.params = p;
  request.mechanism = mechanism;
  request.duration = args.get_double("duration", 1.5e-3);
  request.finite_monitor = monitors.finite;
  const auto report = analysis::render_verdict_report(request);
  std::fputs(report.text.c_str(), stdout);
  if (monitors.finite && report.nonfinite) {
    std::fputs(report.monitor_error.c_str(), stderr);
    return obs::kMonitorViolationExit;
  }

  // Non-BCN mechanisms: the report covered the registered fluid facet
  // (or said there is none); only the optional ASCII plot remains.
  if (mechanism != "bcn" && mechanism != "bcn-draft") {
    if (args.get_bool("plot") && report.has_fluid) {
      core::MechanismConfig mcfg;
      mcfg.plant = p;
      const auto mech = core::make_fluid_mechanism(mechanism, mcfg);
      core::MechanismRunOptions mopts;
      mopts.duration = request.duration;
      mopts.level = core::ModelLevel::Nonlinear;
      mopts.record_interval = mopts.duration / 1000.0;
      const auto run = core::simulate_fluid_mechanism(*mech, mopts);
      plot::Series q;
      q.name = "q(t)";
      for (const auto& s : run.trajectory.samples()) {
        q.add(s.t * 1e3, (s.z.x + p.q0) / 1e6);
      }
      plot::AsciiOptions ascii;
      ascii.title = "queue transient (nonlinear fluid facet)";
      ascii.x_label = "t [ms]";
      ascii.y_label = "q [Mbit]";
      std::printf("\n%s", plot::render_ascii({q}, ascii).c_str());
    }
    return 0;
  }

  const double delay = args.get_double("delay", 0.0);
  if (delay > 0.0) {
    core::DelayedRunOptions dopts;
    dopts.delay = delay;
    dopts.duration = args.get_double("duration", 5e-3);
    const auto run = core::simulate_delayed(p, dopts);
    std::printf("\nwith feedback delay %.4g s: peak q = %.6g%s\n", delay,
                run.max_x + p.q0, run.diverged ? " (DIVERGED)" : "");
    if (const auto crit = core::critical_delay(p, 1e-3)) {
      std::printf("critical delay for this buffer: %.4g s\n", *crit);
    }
  }

  if (args.get_bool("plot")) {
    const core::FluidModel model(p, core::ModelLevel::Nonlinear);
    core::FluidRunOptions opts;
    opts.duration = args.get_double("duration", 1.5e-3);
    opts.record_interval = opts.duration / 1000.0;
    const auto run = core::simulate_fluid(model, opts);
    plot::Series q;
    q.name = "q(t)";
    for (const auto& s : run.trajectory.samples()) {
      q.add(s.t * 1e3, (s.z.x + p.q0) / 1e6);
    }
    plot::AsciiOptions ascii;
    ascii.title = "queue transient (nonlinear fluid model)";
    ascii.x_label = "t [ms]";
    ascii.y_label = "q [Mbit]";
    std::printf("\n%s", plot::render_ascii({q}, ascii).c_str());
    std::printf("\nintegrator: %zu steps accepted, %zu rejected, min "
                "accepted dt %.3g s, %zu event-localization bisection "
                "iterations across %zu mode switches\n",
                run.steps_accepted, run.steps_rejected, run.min_step,
                run.event_bisections, run.switches.size());
  }

  if (trace_path) {
    obs::tracing_drain();
    const auto profile = obs::build_self_profile(obs::tracing_spans());
    TablePrinter table({"span", "calls", "total s", "self s"});
    for (const auto& e : profile) {
      table.add_row({e.name, std::to_string(e.calls),
                     TablePrinter::format(e.total_seconds),
                     TablePrinter::format(e.self_seconds)});
    }
    std::printf("\n%s", table.to_string("self-profile (wall-clock)").c_str());
    obs::finalize_tracing(*trace_path);
  }
  return 0;
}
