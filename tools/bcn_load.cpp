// bcn_load: client / load generator for the stability-verdict service
// (tools/bcn_serve, protocol: docs/SERVICE.md).
//
// Script mode (default when --script is given): sends each nonempty
// line of the script file over one connection, in order, and prints
// each response line to stdout — the scripted-session driver
// scripts/check.sh gate 10 uses.
//
// Load mode (--requests): C connection threads replay a seeded,
// deterministic pool of distinct verdict requests (--space points along
// the gain-space a axis), so the first pass over the pool is cold and
// subsequent passes hit the verdict cache.  Reports QPS and p50/p99
// latency, and verifies byte-identity: every response to the same
// request line must equal the first one observed, cached or cold.
//
// Exit codes: 0 ok, 1 connect/protocol/identity failure, 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/json.h"
#include "service/client.h"

using namespace bcn;

namespace {

void usage() {
  std::puts(
      "usage: bcn_load --port n [--host 127.0.0.1] (--script file |\n"
      "                --requests n [--connections n] [--space n]\n"
      "                [--seed n]) [--help]\n"
      "  --port n        bcn_serve port (required)\n"
      "  --host a        server address (default 127.0.0.1)\n"
      "  --script file   script mode: send each nonempty line of the file\n"
      "                  over one connection, print each response line\n"
      "  --requests n    load mode: total verdict requests to send\n"
      "  --connections n concurrent client connections (default 4)\n"
      "  --space n       distinct request-parameter points in the pool\n"
      "                  (default 16): pass 1 is cold, later passes are\n"
      "                  cache hits\n"
      "  --seed n        pool shuffle seed (default 1)\n"
      "load mode prints: requests, errors, byte mismatches, QPS, p50/p99\n"
      "latency, and the server's cache hit/miss counters");
}

bool parse_count(const std::string& text, long long max, long long* out) {
  if (text.empty() || text.size() > 9) return false;
  long long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value > max) return false;
  *out = value;
  return true;
}

bool flag_count(const ArgParser& args, const char* name, long long max,
                long long* out) {
  const auto text = args.get(name);
  if (!text) return true;
  if (!parse_count(*text, max, out)) {
    std::fprintf(stderr,
                 "--%s: bad value '%s' (expected a non-negative integer "
                 "<= %lld)\n",
                 name, text->c_str(), max);
    return false;
  }
  return true;
}

int run_script(const std::string& host, int port, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bcn_load: cannot read script '%s'\n", path.c_str());
    return 1;
  }
  service::LineClient client;
  if (!client.connect_to(host, port)) {
    std::fprintf(stderr, "bcn_load: %s\n", client.error().c_str());
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto response = client.request(line);
    if (!response) {
      std::fprintf(stderr, "bcn_load: connection lost mid-script\n");
      return 1;
    }
    std::printf("%s\n", response->c_str());
  }
  return 0;
}

// xorshift-style seeded mixer — deterministic across platforms (no
// std::mt19937 distribution portability caveats needed here).
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

struct LoadTally {
  std::vector<double> latencies_ms;
  long long errors = 0;
  long long mismatches = 0;
};

int run_load(const std::string& host, int port, long long requests,
             long long connections, long long space, long long seed) {
  // The request pool: distinct points along the gain-space a axis
  // around the standard-draft a = 1.6e9, every plant valid.
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(space));
  for (long long i = 0; i < space; ++i) {
    JsonWriter json;
    json.add("op", "verdict");
    json.add("a", 8e8 + 1e8 * static_cast<double>(i));
    pool.push_back(json.to_line());
  }

  std::mutex identity_mutex;
  std::map<std::string, std::string> first_response;  // request -> response

  std::vector<LoadTally> tallies(static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  std::mutex abort_mutex;
  std::string abort_error;

  const auto t0 = std::chrono::steady_clock::now();
  for (long long c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadTally& tally = tallies[static_cast<std::size_t>(c)];
      service::LineClient client;
      if (!client.connect_to(host, port)) {
        std::lock_guard<std::mutex> lock(abort_mutex);
        abort_error = client.error();
        return;
      }
      const long long begin = c * requests / connections;
      const long long end = (c + 1) * requests / connections;
      for (long long i = begin; i < end; ++i) {
        const auto& line = pool[static_cast<std::size_t>(
            mix(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(i)) %
            static_cast<std::uint64_t>(space))];
        const auto start = std::chrono::steady_clock::now();
        const auto response = client.request(line);
        const auto stop = std::chrono::steady_clock::now();
        if (!response) {
          std::lock_guard<std::mutex> lock(abort_mutex);
          abort_error = "connection lost under load";
          return;
        }
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
        if (response->rfind("{\"error\"", 0) == 0) {
          ++tally.errors;
          continue;
        }
        std::lock_guard<std::mutex> lock(identity_mutex);
        const auto [it, inserted] = first_response.emplace(line, *response);
        if (!inserted && it->second != *response) ++tally.mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!abort_error.empty()) {
    std::fprintf(stderr, "bcn_load: %s\n", abort_error.c_str());
    return 1;
  }

  std::vector<double> latencies;
  long long errors = 0, mismatches = 0;
  for (const auto& tally : tallies) {
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
    errors += tally.errors;
    mismatches += tally.mismatches;
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };

  // One more connection for the server-side counters.
  std::uint64_t hits = 0, misses = 0;
  {
    service::LineClient client;
    if (client.connect_to(host, port)) {
      if (const auto stats = client.request("{\"op\":\"stats\"}")) {
        if (const auto parsed = FlatJson::parse(*stats)) {
          hits = static_cast<std::uint64_t>(
              parsed->number("service.cache.hits").value_or(0.0));
          misses = static_cast<std::uint64_t>(
              parsed->number("service.cache.misses").value_or(0.0));
        }
      }
    }
  }

  std::printf("requests=%lld errors=%lld byte_mismatches=%lld\n", requests,
              errors, mismatches);
  std::printf("qps=%.1f p50_ms=%.3f p99_ms=%.3f elapsed_s=%.3f\n",
              elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0,
              percentile(0.50), percentile(0.99), elapsed);
  std::printf("server cache: hits=%llu misses=%llu\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  return mismatches > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    usage();
    return 0;
  }
  if (!reject_unknown_flags(args, {"help", "port", "host", "script",
                                   "requests", "connections", "space",
                                   "seed"})) {
    usage();
    return 2;
  }
  long long port = -1, requests = 0, connections = 4, space = 16, seed = 1;
  if (!flag_count(args, "port", 65535, &port) ||
      !flag_count(args, "requests", 100'000'000, &requests) ||
      !flag_count(args, "connections", 1024, &connections) ||
      !flag_count(args, "space", 1'000'000, &space) ||
      !flag_count(args, "seed", 999'999'999, &seed)) {
    return 2;
  }
  if (port < 0) {
    std::fprintf(stderr, "--port is required\n");
    usage();
    return 2;
  }
  const std::string host = args.get("host").value_or("127.0.0.1");
  const auto script = args.get("script");
  if (script) return run_script(host, static_cast<int>(port), *script);
  if (requests <= 0) {
    std::fprintf(stderr, "need --script file or --requests n\n");
    usage();
    return 2;
  }
  if (connections <= 0 || space <= 0) {
    std::fprintf(stderr, "--connections and --space must be positive\n");
    return 2;
  }
  return run_load(host, static_cast<int>(port), requests, connections, space,
                  seed);
}
