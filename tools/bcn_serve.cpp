// bcn_serve: the stability-verdict service — the phase-plane analysis
// engine as a long-running TCP server (protocol: docs/SERVICE.md).
//
//   bcn_serve [--port 0] [--threads 0] [--cache-entries 4096]
//             [--cache-shards 8] [--queue 256] [--max-batch 32]
//             [--monitors spec]
//
// Binds 127.0.0.1:<port> (0 = ephemeral), prints "listening on port N"
// once ready, and serves until SIGINT/SIGTERM or a client's shutdown
// op.  Every verdict is byte-identical to the matching bcn_analyze
// output, cold or cached (scripts/check.sh gate 10 enforces this).
//
// Exit codes: 0 ok, 1 startup failure (bind/listen), 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/args.h"
#include "obs/monitor.h"
#include "service/server.h"

using namespace bcn;

namespace {

void usage() {
  std::puts(
      "usage: bcn_serve [--port n] [--threads n] [--cache-entries n]\n"
      "                 [--cache-shards n] [--queue n] [--max-batch n]\n"
      "                 [--monitors spec] [--help]\n"
      "  --port n          TCP port on 127.0.0.1 (default 0 = ephemeral;\n"
      "                    the chosen port is printed on startup)\n"
      "  --threads n       worker pool size (default 0 = all hardware\n"
      "                    threads); handlers are serial, parallelism\n"
      "                    comes from batching across connections\n"
      "  --cache-entries n verdict-cache capacity across all shards\n"
      "                    (default 4096)\n"
      "  --cache-shards n  verdict-cache lock shards (default 8)\n"
      "  --queue n         admission-queue bound; readers block when this\n"
      "                    many cache misses are pending (default 256)\n"
      "  --max-batch n     largest micro-batch dispatched onto the pool\n"
      "                    (default 32)\n"
      "  --monitors spec   arm runtime monitors (obs/monitor.h); with\n"
      "                    `finite` armed, verdicts built on a non-finite\n"
      "                    integration become monitor errors");
}

// ArgParser::get_int silently falls back on garbage; malformed counts
// must fail loudly with the usage exit code.
bool parse_count(const std::string& text, long long max, long long* out) {
  if (text.empty() || text.size() > 9) return false;
  long long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value > max) return false;
  *out = value;
  return true;
}

bool flag_count(const ArgParser& args, const char* name, long long max,
                long long* out) {
  const auto text = args.get(name);
  if (!text) return true;
  if (!parse_count(*text, max, out)) {
    std::fprintf(stderr,
                 "--%s: bad value '%s' (expected a non-negative integer "
                 "<= %lld)\n",
                 name, text->c_str(), max);
    return false;
  }
  return true;
}

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    usage();
    return 0;
  }
  if (!reject_unknown_flags(args, {"help", "port", "threads", "cache-entries",
                                   "cache-shards", "queue", "max-batch",
                                   "monitors"})) {
    usage();
    return 2;
  }

  long long port = 0, threads = 0, cache_entries = 4096, cache_shards = 8;
  long long queue = 256, max_batch = 32;
  if (!flag_count(args, "port", 65535, &port) ||
      !flag_count(args, "threads", 4096, &threads) ||
      !flag_count(args, "cache-entries", 100'000'000, &cache_entries) ||
      !flag_count(args, "cache-shards", 4096, &cache_shards) ||
      !flag_count(args, "queue", 1'000'000, &queue) ||
      !flag_count(args, "max-batch", 100'000, &max_batch)) {
    return 2;
  }
  if (cache_entries == 0 || cache_shards == 0 || queue == 0 ||
      max_batch == 0) {
    std::fprintf(stderr, "--cache-entries/--cache-shards/--queue/--max-batch "
                         "must be positive\n");
    return 2;
  }

  service::ServiceConfig config;
  config.port = static_cast<int>(port);
  config.threads = static_cast<int>(threads);
  config.cache_entries = static_cast<std::size_t>(cache_entries);
  config.cache_shards = static_cast<std::size_t>(cache_shards);
  config.queue_capacity = static_cast<std::size_t>(queue);
  config.max_batch = static_cast<std::size_t>(max_batch);
  if (const auto spec = args.get("monitors")) {
    std::string error;
    const auto parsed = obs::parse_monitor_spec(*spec, &error);
    if (!parsed) {
      std::fprintf(stderr, "--monitors: %s\n%s\n", error.c_str(),
                   obs::monitor_spec_usage());
      return 2;
    }
    config.monitors = *parsed;
  }

  service::ServiceServer server(config);
  if (!server.start()) {
    std::fprintf(stderr, "bcn_serve: %s\n", server.error().c_str());
    return 1;
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);

  // A signal handler cannot safely notify a condition variable, so the
  // wait interleaves short condition waits with a signal-flag poll.
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_signal == 0 && !server.wait_for_shutdown(0.05)) {
  }
  server.stop();
  std::printf("shutdown: %llu requests, %llu cache hits, %llu misses\n",
              static_cast<unsigned long long>(
                  server.metrics().find_counter("service.requests")->value()),
              static_cast<unsigned long long>(
                  server.metrics().find_counter("service.cache.hits")->value()),
              static_cast<unsigned long long>(
                  server.metrics()
                      .find_counter("service.cache.misses")
                      ->value()));
  return 0;
}
