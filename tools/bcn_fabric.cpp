// bcn_fabric: run a generated datacenter fabric on the sharded engine.
//
//   bcn_fabric --topology fat-tree:8 --flows-per-host 2 --shards 4
//              [--duration-us 500] [--sample-us 50] [--rate 5e7]
//              [--q0 2.5e6] [--w 2] [--pm 0.2] [--gi 0.5]
//              [--gd 0.0078125] [--ru 8e6] [--monitors all]
//              [--json out.json]
//
// Prints the run summary (counters, events/sec, partition edge-cut) and
// optionally writes a flat JSON artifact.  The artifact intentionally
// contains ONLY shard-count-invariant quantities -- the trajectory
// digest, counters, event/epoch totals, topology shape -- and no wall
// clock, so `cmp` on artifacts from different --shards values is the
// cross-shard determinism check (scripts/check.sh gate 9 does exactly
// that).
//
// Exit codes: 0 ok, 2 usage error (unknown flag, malformed topology
// spec or shard count), 3 when armed monitors recorded a violation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/args.h"
#include "common/format.h"
#include "common/json.h"
#include "exec/thread_pool.h"
#include "obs/monitor.h"
#include "sim/shard/engine.h"
#include "sim/shard/topology.h"

using namespace bcn;

namespace {

void usage() {
  std::puts(
      "usage: bcn_fabric --topology spec [--shards n] [--flows-per-host n]\n"
      "                  [--duration-us x] [--sample-us x] [--rate bps]\n"
      "                  [--q0 bits] [--w x] [--pm x] [--gi x] [--gd x]\n"
      "                  [--ru bps] [--monitors spec] [--json file]\n"
      "                  [--seed n] [--help]\n"
      "  --topology s  fat-tree:K | leaf-spine:SPINESxLEAVESxHOSTS | star:N\n"
      "  --shards n    simulator shards (BCN_SHARDS env fallback; default\n"
      "                1, 0 = all hardware threads).  The digest and the\n"
      "                JSON artifact are identical for every shard count.\n"
      "  --flows-per-host n  seeded permutation traffic rounds (default 2)\n"
      "  --duration-us x     simulated horizon in microseconds (default 500)\n"
      "  --sample-us x       queue-series sampling cadence (default 50)\n"
      "  --rate bps    initial per-flow rate (default 5e7)\n"
      "  --monitors s  arm per-shard runtime monitors; any violation in\n"
      "                the deterministic merge exits with code 3\n"
      "  --json file   write the shard-invariant artifact there");
}

// ArgParser::get_int silently falls back on garbage; a malformed shard
// count must fail loudly with the usage exit code.
bool parse_shards(const std::string& text, int* out) {
  if (text.empty() || text.size() > 6) return false;
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  if (args.get_bool("help")) {
    usage();
    return 0;
  }
  if (!reject_unknown_flags(
          args, {"help", "topology", "shards", "flows-per-host",
                 "duration-us", "sample-us", "rate", "q0", "w", "pm", "gi",
                 "gd", "ru", "monitors", "json", "seed"})) {
    usage();
    return 2;
  }

  const std::string spec = args.get("topology").value_or("fat-tree:4");
  sim::shard::Topology topo;
  std::string error;
  if (!sim::shard::parse_topology_spec(spec, &topo, &error)) {
    std::fprintf(stderr, "--topology: %s\n", error.c_str());
    return 2;
  }

  int shards = 1;
  {
    std::optional<std::string> text = args.get("shards");
    if (!text) {
      if (const char* env = std::getenv("BCN_SHARDS")) {
        if (*env) text = env;
      }
    }
    if (text && !parse_shards(*text, &shards)) {
      std::fprintf(stderr,
                   "--shards: bad shard count '%s' (expected a non-negative "
                   "integer; 0 = all hardware threads)\n",
                   text->c_str());
      return 2;
    }
  }
  if (shards == 0) shards = exec::resolve_threads(0);

  const int rounds = args.get_int("flows-per-host", 2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  sim::shard::add_permutation_flows(topo, rounds, seed);
  if (topo.flows.empty()) {
    std::fprintf(stderr, "no flows generated (--flows-per-host %d)\n", rounds);
    return 2;
  }

  sim::shard::FabricOptions options;
  options.q0 = args.get_double("q0", 2.5e6);
  options.w = args.get_double("w", 2.0);
  options.pm = args.get_double("pm", 0.2);
  options.regulator.gi = args.get_double("gi", 0.5);
  options.regulator.gd = args.get_double("gd", 1.0 / 128.0);
  options.regulator.ru = args.get_double("ru", 8e6);
  options.regulator.max_rate = topo.host_rate;
  options.initial_rate = args.get_double("rate", 5e7);
  options.duration = static_cast<sim::SimTime>(
      args.get_double("duration-us", 500.0) * sim::kMicrosecond);
  options.sample_interval = static_cast<sim::SimTime>(
      args.get_double("sample-us", 50.0) * sim::kMicrosecond);
  if (const auto mon = args.get("monitors")) {
    std::string mon_error;
    const auto parsed = obs::parse_monitor_spec(*mon, &mon_error);
    if (!parsed) {
      std::fprintf(stderr, "--monitors: %s\n%s\n", mon_error.c_str(),
                   obs::monitor_spec_usage());
      return 2;
    }
    options.monitors = *parsed;
  }

  const auto part = sim::shard::partition_topology(topo, shards);
  std::printf("fabric: %s — %zu switches, %zu ports, %zu hosts, %zu flows\n",
              topo.name.c_str(), topo.switches.size(), topo.ports.size(),
              topo.num_hosts, topo.flows.size());
  std::printf("shards: %d (%zu cut route segments)\n", shards,
              part.cut_edges);

  const auto start = std::chrono::steady_clock::now();
  const sim::shard::FabricResult result =
      sim::shard::run_fabric(topo, options, shards);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "ran %llu epochs, %llu events in %.3f s (%.2f M events/s)\n"
      "  frames: sent %llu, forwarded %llu, delivered %llu, dropped %llu\n"
      "  feedback: %llu samples, %llu BCN; staged %llu handoffs "
      "(%llu cross-shard)\n"
      "  digest: %016llx\n",
      static_cast<unsigned long long>(result.epochs),
      static_cast<unsigned long long>(result.events_executed), wall,
      wall > 0.0 ? result.events_executed / wall / 1e6 : 0.0,
      static_cast<unsigned long long>(result.frames_sent),
      static_cast<unsigned long long>(result.frames_forwarded),
      static_cast<unsigned long long>(result.frames_delivered),
      static_cast<unsigned long long>(result.frames_dropped),
      static_cast<unsigned long long>(result.frames_sampled),
      static_cast<unsigned long long>(result.bcn_sent),
      static_cast<unsigned long long>(result.staged_records),
      static_cast<unsigned long long>(result.cross_shard_records),
      static_cast<unsigned long long>(result.digest));

  if (options.monitors.any()) {
    std::printf("monitors: %llu checks, %llu violations\n",
                static_cast<unsigned long long>(result.monitor_checks),
                static_cast<unsigned long long>(result.monitor_violations));
    for (const auto& v : result.violations) {
      std::printf("  [%s] t=%.9g: %s\n", v.invariant.c_str(), v.t,
                  v.message.c_str());
    }
  }

  if (const auto json_path = args.get("json")) {
    // Shard-invariant fields only: no wall clock, no shard count, no
    // cross-shard tally, so artifacts from different --shards values
    // compare byte-identical.
    JsonWriter json;
    json.add("tool", "bcn_fabric");
    json.add("topology", topo.name);
    json.add("switches", static_cast<std::int64_t>(topo.switches.size()));
    json.add("ports", static_cast<std::int64_t>(topo.ports.size()));
    json.add("hosts", static_cast<std::int64_t>(topo.num_hosts));
    json.add("flows", static_cast<std::int64_t>(topo.flows.size()));
    json.add("duration_us",
             sim::to_seconds(options.duration) * 1e6);
    json.add("digest", strf("%016llx", static_cast<unsigned long long>(
                                           result.digest)));
    json.add("epochs", static_cast<std::int64_t>(result.epochs));
    json.add("events_executed",
             static_cast<std::int64_t>(result.events_executed));
    json.add("frames_sent", static_cast<std::int64_t>(result.frames_sent));
    json.add("frames_forwarded",
             static_cast<std::int64_t>(result.frames_forwarded));
    json.add("frames_delivered",
             static_cast<std::int64_t>(result.frames_delivered));
    json.add("frames_dropped",
             static_cast<std::int64_t>(result.frames_dropped));
    json.add("frames_sampled",
             static_cast<std::int64_t>(result.frames_sampled));
    json.add("bcn_sent", static_cast<std::int64_t>(result.bcn_sent));
    json.add("bits_delivered", result.bits_delivered);
    json.add("staged_records",
             static_cast<std::int64_t>(result.staged_records));
    json.add("total_queue", result.total_queue);
    json.add("trace_queue", result.trace_queue);
    if (json.write_file(*json_path)) {
      std::printf("  [artifact] %s\n", json_path->c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
  }

  if (options.monitors.any() && result.monitor_violations > 0) {
    return obs::kMonitorViolationExit;
  }
  return 0;
}
