#!/usr/bin/env bash
# Build, test, and regenerate every paper figure/experiment.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Sweeps use all hardware threads unless the caller pins BCN_THREADS;
# results are bitwise identical at any thread count.
export BCN_THREADS=${BCN_THREADS:-0}

mkdir -p bench_out
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

build/tools/bcn_report --out bench_out/report.md
echo "artifacts in ./bench_out"
