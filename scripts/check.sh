#!/usr/bin/env bash
# Thread-safety gate for the execution layer: builds the tree under
# ThreadSanitizer (-DBCN_SANITIZE=thread) and runs the exec + analysis
# test suites, which exercise parallel_for / ThreadPool / the parallel
# stability map under real concurrency.  Any data race fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DBCN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target bcn_exec_tests bcn_analysis_tests

# halt_on_error turns any race into a hard test failure instead of a
# buried log line; second_deadlock_stack improves mutex reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

# Run the suites directly (not via ctest) so unbuilt sibling suites'
# NOT_BUILT placeholder tests cannot pollute the result.
"$BUILD_DIR"/tests/exec/bcn_exec_tests
"$BUILD_DIR"/tests/analysis/bcn_analysis_tests

echo "[check.sh] ThreadSanitizer run clean"
