#!/usr/bin/env bash
# Two gates:
#  1. Thread safety: builds the tree under ThreadSanitizer
#     (-DBCN_SANITIZE=thread) and runs the exec + analysis test suites,
#     which exercise parallel_for / ThreadPool / the parallel stability
#     map under real concurrency.  Any data race fails the run.
#  2. Bench artifacts: builds one bench in a regular (non-sanitized)
#     build, runs it, and validates that RUN_<name>.json carries the
#     observability metrics snapshot and that the timeline CSV exists.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DBCN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target bcn_exec_tests bcn_analysis_tests

# halt_on_error turns any race into a hard test failure instead of a
# buried log line; second_deadlock_stack improves mutex reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

# Run the suites directly (not via ctest) so unbuilt sibling suites'
# NOT_BUILT placeholder tests cannot pollute the result.
"$BUILD_DIR"/tests/exec/bcn_exec_tests
"$BUILD_DIR"/tests/analysis/bcn_analysis_tests

echo "[check.sh] ThreadSanitizer run clean"

# --- bench-artifact smoke -------------------------------------------------
# One real experiment end-to-end: the RUN json must embed the metrics
# snapshot (simulator counters + integrator step stats) and the run must
# produce at least one per-flow timeline CSV.
SMOKE_BUILD_DIR=${SMOKE_BUILD_DIR:-build}
SMOKE_BENCH=fig7_limit_cycle
cmake -B "$SMOKE_BUILD_DIR" -S .
cmake --build "$SMOKE_BUILD_DIR" -j --target "$SMOKE_BENCH"

SMOKE_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT"' EXIT
"$SMOKE_BUILD_DIR"/bench/"$SMOKE_BENCH" --run "$SMOKE_BENCH" \
  --out "$SMOKE_OUT" > /dev/null

RUN_JSON="$SMOKE_OUT/RUN_$SMOKE_BENCH.json"
[[ -f "$RUN_JSON" ]] || { echo "[check.sh] missing $RUN_JSON"; exit 1; }
for key in '"metrics.sim.frames_delivered"' '"metrics.sim.bcn_negative"' \
           '"metrics.fluid.steps_accepted"' '"metrics.fluid.min_dt_seconds"' \
           '"metrics.sim.sigma_bits.count"'; do
  grep -q "$key" "$RUN_JSON" || {
    echo "[check.sh] $RUN_JSON lacks $key"; exit 1;
  }
done
TIMELINES="$SMOKE_OUT/${SMOKE_BENCH}_timelines.csv"
[[ -f "$TIMELINES" ]] || { echo "[check.sh] missing $TIMELINES"; exit 1; }
grep -q '^flow\.' "$TIMELINES" || {
  echo "[check.sh] $TIMELINES has no per-flow series"; exit 1;
}

echo "[check.sh] bench artifact smoke clean ($RUN_JSON)"
