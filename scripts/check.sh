#!/usr/bin/env bash
# Ten gates:
#  1. Thread safety: builds the tree under ThreadSanitizer
#     (-DBCN_SANITIZE=thread) and runs the exec + analysis + obs + sim
#     + service test suites, which exercise parallel_for / ThreadPool /
#     the parallel stability map / the span recorder and atomic metrics /
#     the event-queue pool and heap / the verdict-service TCP server and
#     sharded LRU cache under real concurrency.  Any data race fails the
#     run.
#  2. Bench artifacts: builds one bench in a regular (non-sanitized)
#     build, runs it, and validates that RUN_<name>.json carries the
#     observability metrics snapshot (including the sim.* scheduler
#     gauges) and that the timeline CSV exists.
#  3. Trace artifacts: reruns the same bench with --trace, validates the
#     Chrome trace (parses, complete events, spans from >= 3 subsystems),
#     checks the profile.* gauges landed in the RUN json, and runs
#     bcn_bench_diff self-vs-self (a zero-delta diff must exit 0).
#  4. Sim throughput: runs the perf_microbench artifact emitters and
#     validates BENCH_sim_throughput.json (all scenario keys present,
#     self-diff at threshold 0 exits 0).
#  5. Fault smoke: runs the feedback-loss bench with a nonzero drop rate
#     (the docs/FAULTS.md recipe), asserts fault.* counters land in the
#     RUN json, requires two invocations of the same plan to produce
#     byte-identical BENCH_feedback_loss.json artifacts, and checks a
#     malformed --faults spec is rejected with exit 2 and a usage line.
#     (The FaultsTest cases already ran under TSan in gate 1 as part of
#     bcn_sim_tests.)
#  6. Mechanism matrix smoke: runs the E22 mechanism-matrix bench (a 3x3
#     stability map per registered fluid mechanism plus the heterogeneous
#     competition pairs), validates BENCH_mechanism_matrix.json (map and
#     competition keys, fluid boundedness, fairness in [0, 1]), requires
#     two invocations to self-diff clean at threshold 0 with identical
#     key sets, and checks --mechanism bogus is rejected with exit 2
#     while --mechanism list prints the registry.
#  7. Map throughput smoke: runs the E22 scalar/batch/adaptive
#     stability-map comparison, validates BENCH_map_throughput.json
#     (artifact present, zero verdict mismatches for both batched modes,
#     scalar and batch stable-cell counts equal, adaptive refinement
#     integrating under half the grid), requires a threshold-0 self-diff
#     to pass, and checks --map-mode bogus is rejected with exit 2.
#  8. Monitor smoke: arms every runtime invariant monitor on a clean run
#     (must exit 0 with monitor.* metrics and zero violations in the RUN
#     json), provokes the fluid-verdict crosscheck with the EXPERIMENTS.md
#     contradiction recipe (line-rate launch + certain BCN loss on a
#     fluid-certified-stable plant; must exit 3 and dump a validated
#     POSTMORTEM_crosscheck.json), requires the bundle to be byte-identical
#     across reruns, and checks a bogus --monitors spec is rejected with
#     exit 2 and the grammar.
#  9. Sharded-engine smoke: runs a small fat-tree through bcn_fabric at
#     --shards 1 and --shards 4 and requires the shard-invariant JSON
#     artifacts to be byte-identical (the cross-shard determinism
#     contract, end-to-end), runs the E23 sharded_throughput bench on a
#     small configuration (the bench itself exits 1 if the digest varies
#     with the shard count), validates BENCH_sharded_throughput.json and
#     self-diffs it with --require-same-keys at threshold 0, and checks
#     --shards bogus is rejected with exit 2.  (The MPSC-queue torture
#     and the shard determinism tests already ran under TSan in gate 1
#     as part of bcn_sim_tests.)  Speedups are reported, deliberately
#     not gated: they depend on the host's hardware threads.
# 10. Service smoke: starts bcn_serve on an ephemeral port, drives a
#     scripted bcn_load session, replays every verdict answer through
#     bcn_analyze with the echoed parameters and requires the `text`
#     field to match the CLI stdout byte for byte (the docs/SERVICE.md
#     determinism contract, end-to-end), requires repeated request
#     lines to produce byte-identical responses with the cache-hit
#     counters accounting for them exactly, runs the load generator and
#     the E24 service_qps bench (both exit nonzero on any cold/cached
#     divergence), validates and self-diffs BENCH_service_qps.json at
#     threshold 0, checks bad flags exit 2 on bcn_serve and bcn_load,
#     checks the shutdown op terminates the server with exit 0, and
#     finishes with a relative-link check over README.md and docs/*.md
#     (every non-URL link target must exist).  (The cache/protocol/
#     server unit tests already ran under TSan in gate 1 as part of
#     bcn_service_tests.)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DBCN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target bcn_exec_tests bcn_analysis_tests bcn_obs_tests bcn_sim_tests \
           bcn_service_tests

# halt_on_error turns any race into a hard test failure instead of a
# buried log line; second_deadlock_stack improves mutex reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

# Run the suites directly (not via ctest) so unbuilt sibling suites'
# NOT_BUILT placeholder tests cannot pollute the result.
"$BUILD_DIR"/tests/exec/bcn_exec_tests
"$BUILD_DIR"/tests/analysis/bcn_analysis_tests
"$BUILD_DIR"/tests/obs/bcn_obs_tests
"$BUILD_DIR"/tests/sim/bcn_sim_tests
"$BUILD_DIR"/tests/service/bcn_service_tests

echo "[check.sh] ThreadSanitizer run clean"

# --- bench-artifact smoke -------------------------------------------------
# One real experiment end-to-end: the RUN json must embed the metrics
# snapshot (simulator counters + integrator step stats) and the run must
# produce at least one per-flow timeline CSV.
SMOKE_BUILD_DIR=${SMOKE_BUILD_DIR:-build}
SMOKE_BENCH=fig7_limit_cycle
cmake -B "$SMOKE_BUILD_DIR" -S .
cmake --build "$SMOKE_BUILD_DIR" -j --target "$SMOKE_BENCH"

SMOKE_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT"' EXIT
"$SMOKE_BUILD_DIR"/bench/"$SMOKE_BENCH" --run "$SMOKE_BENCH" \
  --out "$SMOKE_OUT" > /dev/null

RUN_JSON="$SMOKE_OUT/RUN_$SMOKE_BENCH.json"
[[ -f "$RUN_JSON" ]] || { echo "[check.sh] missing $RUN_JSON"; exit 1; }
for key in '"metrics.sim.frames_delivered"' '"metrics.sim.bcn_negative"' \
           '"metrics.fluid.steps_accepted"' '"metrics.fluid.min_dt_seconds"' \
           '"metrics.sim.sigma_bits.count"' \
           '"metrics.sim.heap_high_water"' '"metrics.sim.events_executed"'; do
  grep -q "$key" "$RUN_JSON" || {
    echo "[check.sh] $RUN_JSON lacks $key"; exit 1;
  }
done
TIMELINES="$SMOKE_OUT/${SMOKE_BENCH}_timelines.csv"
[[ -f "$TIMELINES" ]] || { echo "[check.sh] missing $TIMELINES"; exit 1; }
grep -q '^flow\.' "$TIMELINES" || {
  echo "[check.sh] $TIMELINES has no per-flow series"; exit 1;
}

echo "[check.sh] bench artifact smoke clean ($RUN_JSON)"

# --- trace-artifact smoke -------------------------------------------------
# The same experiment traced: the Chrome trace must be valid JSON made of
# complete ("X") events covering at least three instrumented subsystems,
# and the RUN json must carry the folded profile.* gauges.
cmake --build "$SMOKE_BUILD_DIR" -j --target bcn_bench_diff

TRACE_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT"' EXIT
TRACE_JSON="$TRACE_OUT/trace.json"
"$SMOKE_BUILD_DIR"/bench/"$SMOKE_BENCH" --run "$SMOKE_BENCH" \
  --out "$TRACE_OUT" --trace "$TRACE_JSON" > /dev/null

[[ -f "$TRACE_JSON" ]] || { echo "[check.sh] missing $TRACE_JSON"; exit 1; }
python3 - "$TRACE_JSON" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
xs = [e for e in events if e.get("ph") == "X"]
assert xs, "no complete events in trace"
for e in xs:
    assert e["ts"] >= 0 and e["dur"] >= 0 and e["name"], e
subsystems = {e["name"].split(".")[0] for e in xs}
assert len(subsystems) >= 3, f"spans from only {sorted(subsystems)}"
print(f"[check.sh] trace valid: {len(xs)} spans from {sorted(subsystems)}")
PY
TRACED_RUN_JSON="$TRACE_OUT/RUN_$SMOKE_BENCH.json"
grep -q '"metrics\.profile\.' "$TRACED_RUN_JSON" || {
  echo "[check.sh] $TRACED_RUN_JSON lacks profile.* gauges"; exit 1;
}

# Self-vs-self must be a zero-delta pass even at threshold 0.
"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$TRACED_RUN_JSON" --b "$TRACED_RUN_JSON" --threshold 0 > /dev/null || {
  echo "[check.sh] bcn_bench_diff self-diff failed"; exit 1;
}

echo "[check.sh] trace artifact smoke clean ($TRACE_JSON)"

# --- sim-throughput smoke -------------------------------------------------
# The event-core dispatch-rate artifact: every scenario key must be
# emitted with a positive events/sec, and the artifact must survive a
# zero-threshold self-diff (i.e. bcn_bench_diff can parse and compare it).
cmake --build "$SMOKE_BUILD_DIR" -j --target perf_microbench

TPUT_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT"' EXIT
BCN_BENCH_OUT="$TPUT_OUT" "$SMOKE_BUILD_DIR"/bench/perf_microbench \
  --benchmark_filter=NONE > /dev/null

TPUT_JSON="$TPUT_OUT/BENCH_sim_throughput.json"
[[ -f "$TPUT_JSON" ]] || { echo "[check.sh] missing $TPUT_JSON"; exit 1; }
python3 - "$TPUT_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
keys = ["single_hop_n5", "single_hop_n50", "single_hop_n200",
        "single_hop_n500", "multihop", "parking_lot", "timer_churn"]
for key in keys:
    eps = data.get(f"{key}_events_per_sec")
    assert isinstance(eps, (int, float)) and eps > 0, f"{key}: bad {eps!r}"
    assert data.get(f"{key}_events", 0) > 0, f"{key}: no events"
rates = ", ".join(f"{k}={data[f'{k}_events_per_sec']/1e6:.1f}M/s" for k in keys)
print(f"[check.sh] sim throughput: {rates}")
PY

"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$TPUT_JSON" --b "$TPUT_JSON" --threshold 0 > /dev/null || {
  echo "[check.sh] sim-throughput self-diff failed"; exit 1;
}

echo "[check.sh] sim throughput smoke clean ($TPUT_JSON)"

# --- fault smoke ----------------------------------------------------------
# The docs/FAULTS.md BCN-loss recipe, end-to-end: nonzero drop rate,
# fault.* counters in the RUN json, and a reproducible fault schedule
# (same plan twice => byte-identical BENCH_feedback_loss.json).
cmake --build "$SMOKE_BUILD_DIR" -j --target feedback_loss_robustness

FAULT_BENCH="$SMOKE_BUILD_DIR"/bench/feedback_loss_robustness
FAULT_PLAN='bcn_drop=0.2,bcn_delay=0.1:100us,seed=7'
FAULT_OUT_A=$(mktemp -d)
FAULT_OUT_B=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" "$FAULT_OUT_B"' EXIT
"$FAULT_BENCH" --faults "$FAULT_PLAN" --out "$FAULT_OUT_A" > /dev/null
"$FAULT_BENCH" --faults "$FAULT_PLAN" --out "$FAULT_OUT_B" > /dev/null

FAULT_RUN_JSON="$FAULT_OUT_A/RUN_feedback_loss_robustness.json"
[[ -f "$FAULT_RUN_JSON" ]] || { echo "[check.sh] missing $FAULT_RUN_JSON"; exit 1; }
python3 - "$FAULT_RUN_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
for key in ("bcn_dropped", "bcn_delayed", "bcn_duplicated", "data_dropped",
            "pause_dropped", "link_flaps", "flap_dropped"):
    full = f"metrics.fault.{key}"
    assert full in data, f"missing {full}"
assert data["metrics.fault.bcn_dropped"] > 0, "drop rate 0.2 injected nothing"
assert data["metrics.fault.bcn_delayed"] > 0, "delay rate 0.1 injected nothing"
print(f"[check.sh] fault counters present: "
      f"{data['metrics.fault.bcn_dropped']:.0f} BCN dropped, "
      f"{data['metrics.fault.bcn_delayed']:.0f} delayed")
PY

cmp "$FAULT_OUT_A/BENCH_feedback_loss.json" \
    "$FAULT_OUT_B/BENCH_feedback_loss.json" || {
  echo "[check.sh] fault schedule not reproducible across invocations"; exit 1;
}

# env fallback path: BCN_FAULTS must behave like --faults.
BCN_FAULTS="$FAULT_PLAN" "$FAULT_BENCH" --out "$FAULT_OUT_B" > /dev/null
cmp "$FAULT_OUT_A/BENCH_feedback_loss.json" \
    "$FAULT_OUT_B/BENCH_feedback_loss.json" || {
  echo "[check.sh] BCN_FAULTS env fallback diverges from --faults"; exit 1;
}

# A malformed spec must be a usage error (exit 2), printing the grammar.
set +e
FAULT_ERR=$("$FAULT_BENCH" --faults 'bcn_drop=1.5' --out "$FAULT_OUT_B" 2>&1)
FAULT_STATUS=$?
set -e
[[ $FAULT_STATUS -eq 2 ]] || {
  echo "[check.sh] malformed --faults exited $FAULT_STATUS, want 2"; exit 1;
}
grep -q 'fault spec grammar' <<< "$FAULT_ERR" || {
  echo "[check.sh] malformed --faults printed no usage line"; exit 1;
}

echo "[check.sh] fault smoke clean ($FAULT_RUN_JSON)"

# --- mechanism-matrix smoke -------------------------------------------------
# The pluggable-mechanism layer end-to-end: per-mechanism gain maps and
# heterogeneous competition must emit a complete, deterministic artifact,
# and the --mechanism flag must accept the registry and reject impostors.
cmake --build "$SMOKE_BUILD_DIR" -j --target mechanism_matrix

MECH_BENCH="$SMOKE_BUILD_DIR"/bench/mechanism_matrix
MECH_OUT_A=$(mktemp -d)
MECH_OUT_B=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" "$FAULT_OUT_B" "$MECH_OUT_A" "$MECH_OUT_B"' EXIT
"$MECH_BENCH" --out "$MECH_OUT_A" > /dev/null
"$MECH_BENCH" --out "$MECH_OUT_B" > /dev/null

MATRIX_JSON="$MECH_OUT_A/BENCH_mechanism_matrix.json"
[[ -f "$MATRIX_JSON" ]] || { echo "[check.sh] missing $MATRIX_JSON"; exit 1; }
python3 - "$MATRIX_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("benchmark") == "mechanism_matrix", data.get("benchmark")
for mech in ("bcn", "bcn-draft", "qcn", "rcp"):
    cells = data.get(f"map.{mech}.cells")
    assert cells == 9, f"map.{mech}.cells = {cells!r}, want 9"
    stable = data.get(f"map.{mech}.stable_cells")
    assert isinstance(stable, (int, float)) and 0 <= stable <= 9, \
        f"map.{mech}.stable_cells = {stable!r}"
    for i in range(9):
        for axis in ("g1", "g2", "stable"):
            key = f"map.{mech}.cell{i}.{axis}"
            assert key in data, f"missing {key}"
    assert f"map.{mech}.solo_stable" in data
for pair in ("bcn_vs_bcn", "bcn_vs_qcn", "bcn_vs_rcp", "qcn_vs_rcp"):
    assert data.get(f"comp.{pair}.fluid.bounded") == 1, \
        f"{pair}: fluid competition left the buffer strip"
    fairness = data.get(f"comp.{pair}.packet.fairness")
    assert isinstance(fairness, (int, float)) and 0.0 < fairness <= 1.0, \
        f"{pair}: packet fairness {fairness!r}"
    assert f"comp.{pair}.fluid.fairness" in data
    assert f"comp.{pair}.packet.frames_dropped" in data
maps = ", ".join(f"{m}={data[f'map.{m}.stable_cells']:.0f}/9"
                 for m in ("bcn", "bcn-draft", "qcn", "rcp"))
print(f"[check.sh] mechanism matrix valid: stable cells {maps}")
PY

# Byte-determinism across invocations, and key-set completeness: the
# second run must carry exactly the same keys with exactly equal values.
"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$MATRIX_JSON" --b "$MECH_OUT_B/BENCH_mechanism_matrix.json" \
  --threshold 0 --require-same-keys > /dev/null || {
  echo "[check.sh] mechanism matrix not reproducible across invocations"; exit 1;
}

# An unknown mechanism name must be a usage error (exit 2) naming the
# registry; `--mechanism list` must enumerate it and exit 0.
set +e
MECH_ERR=$("$MECH_BENCH" --mechanism bogus --out "$MECH_OUT_B" 2>&1)
MECH_STATUS=$?
set -e
[[ $MECH_STATUS -eq 2 ]] || {
  echo "[check.sh] --mechanism bogus exited $MECH_STATUS, want 2"; exit 1;
}
grep -q "unknown mechanism 'bogus'" <<< "$MECH_ERR" || {
  echo "[check.sh] --mechanism bogus printed no usage line"; exit 1;
}
MECH_LIST=$("$MECH_BENCH" --mechanism list)
for name in bcn bcn-draft qcn rcp fera; do
  grep -q "^$name " <<< "$MECH_LIST" || {
    echo "[check.sh] --mechanism list omits $name"; exit 1;
  }
done

echo "[check.sh] mechanism matrix smoke clean ($MATRIX_JSON)"

# --- map-throughput smoke ---------------------------------------------------
# The batched SoA stability-map path end-to-end: batch and adaptive modes
# must reproduce the scalar verdicts exactly (the bench itself exits
# nonzero on any mismatch), adaptive refinement must skip a real share of
# the grid, and the artifact must survive a zero-threshold self-diff.
# The speedup numbers are reported but deliberately not gated: wall-clock
# ratios on shared CI hardware are too noisy for a hard threshold.
cmake --build "$SMOKE_BUILD_DIR" -j --target map_throughput

MAP_BENCH="$SMOKE_BUILD_DIR"/bench/map_throughput
MAP_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" "$FAULT_OUT_B" "$MECH_OUT_A" "$MECH_OUT_B" "$MAP_OUT"' EXIT
"$MAP_BENCH" --run map_throughput --out "$MAP_OUT" --reps 1 > /dev/null

MAP_JSON="$MAP_OUT/BENCH_map_throughput.json"
[[ -f "$MAP_JSON" ]] || { echo "[check.sh] missing $MAP_JSON"; exit 1; }
python3 - "$MAP_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("benchmark") == "map_throughput", data.get("benchmark")
cells = data.get("cells")
assert isinstance(cells, (int, float)) and cells > 0, f"cells = {cells!r}"
for mode in ("scalar", "batch", "adaptive"):
    cps = data.get(f"{mode}_cells_per_sec")
    assert isinstance(cps, (int, float)) and cps > 0, f"{mode}: bad {cps!r}"
assert data.get("batch_mismatch") == 0, \
    f"batch diverged: {data.get('batch_mismatch')!r} mismatches"
assert data.get("adaptive_mismatch") == 0, \
    f"adaptive diverged: {data.get('adaptive_mismatch')!r} mismatches"
assert data.get("scalar_stable") == data.get("batch_stable"), \
    "scalar and batch stable-cell counts differ"
frac = data.get("adaptive_integrated_fraction")
assert isinstance(frac, (int, float)) and 0.0 < frac < 0.5, \
    f"adaptive integrated {frac!r} of the grid, want < 0.5"
print(f"[check.sh] map throughput: batch {data['batch_speedup']:.2f}x, "
      f"adaptive {data['adaptive_speedup']:.2f}x at "
      f"{frac:.0%} of {cells:.0f} cells integrated, verdicts identical")
PY

"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$MAP_JSON" --b "$MAP_JSON" --threshold 0 > /dev/null || {
  echo "[check.sh] map-throughput self-diff failed"; exit 1;
}

# An unknown map mode must be a usage error (exit 2) naming the choices.
set +e
MAP_ERR=$("$MAP_BENCH" --run map_throughput --map-mode bogus \
  --out "$MAP_OUT" 2>&1)
MAP_STATUS=$?
set -e
[[ $MAP_STATUS -eq 2 ]] || {
  echo "[check.sh] --map-mode bogus exited $MAP_STATUS, want 2"; exit 1;
}
grep -q "unknown mode 'bogus'" <<< "$MAP_ERR" || {
  echo "[check.sh] --map-mode bogus printed no usage line"; exit 1;
}

echo "[check.sh] map throughput smoke clean ($MAP_JSON)"

# --- monitor smoke ----------------------------------------------------------
# The runtime invariant monitors end-to-end.  Clean armed run: every
# monitor on the E11 cross-validation scenario must stay quiet (exit 0)
# while exporting monitor.* metrics.  Violation path: the EXPERIMENTS.md
# contradiction recipe (sources at line rate, BCN reverse path fully
# lossy, plant fluid-certified strongly stable) must trip the crosscheck,
# dump a deterministic POSTMORTEM_crosscheck.json and exit with the
# distinct code 3.
cmake --build "$SMOKE_BUILD_DIR" -j --target packet_vs_fluid

MON_BENCH="$SMOKE_BUILD_DIR"/bench/packet_vs_fluid
MON_OUT=$(mktemp -d)
MON_OUT_B=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" "$FAULT_OUT_B" "$MECH_OUT_A" "$MECH_OUT_B" "$MAP_OUT" "$MON_OUT" "$MON_OUT_B"' EXIT
"$MON_BENCH" --monitors all --out "$MON_OUT" > /dev/null || {
  echo "[check.sh] clean armed run exited nonzero"; exit 1;
}

MON_RUN_JSON="$MON_OUT/RUN_packet_vs_fluid.json"
[[ -f "$MON_RUN_JSON" ]] || { echo "[check.sh] missing $MON_RUN_JSON"; exit 1; }
python3 - "$MON_RUN_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("metrics.monitor.armed") == 1, "monitor not armed"
checks = data.get("metrics.monitor.checks")
assert isinstance(checks, (int, float)) and checks > 0, f"checks = {checks!r}"
assert data.get("metrics.monitor.violations") == 0, \
    f"clean run violated: {data.get('metrics.monitor.violations')!r}"
assert data.get("metrics.monitor.snapshots", 0) > 0, "no state snapshots"
print(f"[check.sh] armed quiet run: {checks:.0f} checks, 0 violations")
PY

# Violation path, twice: distinct exit code 3 and byte-identical bundles.
set +e
"$FAULT_BENCH" --faults bcn_drop=1 --monitors all --initial-rate 10e9 \
  --out "$MON_OUT" > /dev/null 2>&1
MON_STATUS_A=$?
"$FAULT_BENCH" --faults bcn_drop=1 --monitors all --initial-rate 10e9 \
  --out "$MON_OUT_B" > /dev/null 2>&1
MON_STATUS_B=$?
set -e
[[ $MON_STATUS_A -eq 3 && $MON_STATUS_B -eq 3 ]] || {
  echo "[check.sh] violation runs exited $MON_STATUS_A/$MON_STATUS_B, want 3"
  exit 1
}

MON_BUNDLE="$MON_OUT/POSTMORTEM_crosscheck.json"
[[ -f "$MON_BUNDLE" ]] || { echo "[check.sh] missing $MON_BUNDLE"; exit 1; }
python3 - "$MON_BUNDLE" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("bundle") == "postmortem", data.get("bundle")
assert data.get("invariant") == "crosscheck", data.get("invariant")
assert data.get("fluid_strongly_stable") is True, \
    "crosscheck tripped without a certified fluid verdict"
assert data.get("t_seconds", -1) > 0, "no violation time"
repro = data.get("repro", "")
for token in ("--seed", "--mechanism", "--faults bcn_drop=1",
              "--monitors all", "--initial-rate=10e9"):
    assert token in repro, f"repro line lacks {token!r}: {repro}"
assert data.get("snapshot_count", 0) > 0, "no snapshots in bundle"
assert data.get("checks", 0) > 0, "no checks recorded"
print(f"[check.sh] post-mortem bundle valid: crosscheck at "
      f"t={data['t_seconds']*1e3:.3f} ms, "
      f"{data['snapshot_count']:.0f} snapshots, "
      f"{data['event_count']:.0f} recent events")
PY

cmp "$MON_BUNDLE" "$MON_OUT_B/POSTMORTEM_crosscheck.json" || {
  echo "[check.sh] post-mortem bundle not reproducible across reruns"; exit 1;
}

# A malformed monitor spec must be a usage error (exit 2) with grammar.
set +e
MON_ERR=$("$MON_BENCH" --monitors bogus --out "$MON_OUT" 2>&1)
MON_STATUS=$?
set -e
[[ $MON_STATUS -eq 2 ]] || {
  echo "[check.sh] --monitors bogus exited $MON_STATUS, want 2"; exit 1;
}
grep -q 'monitor spec' <<< "$MON_ERR" || {
  echo "[check.sh] --monitors bogus printed no usage line"; exit 1;
}

echo "[check.sh] monitor smoke clean ($MON_BUNDLE)"

# --- sharded-engine smoke ---------------------------------------------------
# The partitioned conservative engine end-to-end.  bcn_fabric's JSON
# artifact contains only shard-count-invariant quantities, so `cmp`
# across shard counts IS the determinism check; the E23 bench then runs
# its own digest gate across {1, 2, 4, 8} shards on a small fabric.
cmake --build "$SMOKE_BUILD_DIR" -j --target bcn_fabric sharded_throughput

FABRIC_TOOL="$SMOKE_BUILD_DIR"/tools/bcn_fabric
SHARD_OUT=$(mktemp -d)
trap 'rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" "$FAULT_OUT_B" "$MECH_OUT_A" "$MECH_OUT_B" "$MAP_OUT" "$MON_OUT" "$MON_OUT_B" "$SHARD_OUT"' EXIT

FABRIC_ARGS=(--topology fat-tree:4 --flows-per-host 4 --duration-us 2000
             --rate 2e9 --monitors queue_bounds,finite)
"$FABRIC_TOOL" "${FABRIC_ARGS[@]}" --shards 1 \
  --json "$SHARD_OUT/fabric_s1.json" > /dev/null
"$FABRIC_TOOL" "${FABRIC_ARGS[@]}" --shards 4 \
  --json "$SHARD_OUT/fabric_s4.json" > /dev/null
cmp "$SHARD_OUT/fabric_s1.json" "$SHARD_OUT/fabric_s4.json" || {
  echo "[check.sh] fabric artifact differs between --shards 1 and 4"; exit 1;
}
python3 - "$SHARD_OUT/fabric_s1.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("tool") == "bcn_fabric", data.get("tool")
assert data.get("frames_delivered", 0) > 0, "no frames delivered"
assert data.get("bcn_sent", 0) > 0, "feedback loop never engaged"
assert len(data.get("digest", "")) == 16, f"bad digest {data.get('digest')!r}"
for key in ("shards", "wall", "cross_shard"):
    assert not any(key in k for k in data), \
        f"shard-dependent key {key!r} leaked into the artifact"
print(f"[check.sh] fabric artifact invariant across shards: "
      f"digest {data['digest']}, {data['frames_delivered']:.0f} delivered, "
      f"{data['bcn_sent']:.0f} BCN")
PY

"$SMOKE_BUILD_DIR"/bench/sharded_throughput --run sharded_throughput \
  --out "$SHARD_OUT" --topology fat-tree:4 --flows-per-host 2 \
  --duration-us 400 > /dev/null || {
  echo "[check.sh] sharded_throughput failed (digest gate?)"; exit 1;
}

SHARD_JSON="$SHARD_OUT/BENCH_sharded_throughput.json"
[[ -f "$SHARD_JSON" ]] || { echo "[check.sh] missing $SHARD_JSON"; exit 1; }
python3 - "$SHARD_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("benchmark") == "sharded_throughput", data.get("benchmark")
assert data.get("digest_match") == 1, "digest varied with the shard count"
digests = set()
for n in (1, 2, 4, 8):
    eps = data.get(f"shards_{n}_events_per_sec")
    assert isinstance(eps, (int, float)) and eps > 0, f"shards_{n}: {eps!r}"
    digests.add(data.get(f"shards_{n}_digest"))
assert len(digests) == 1, f"artifact digests diverge: {digests}"
parity = data.get("parity_ratio")
assert isinstance(parity, (int, float)) and parity > 0, f"parity {parity!r}"
assert data.get("hardware_threads", 0) >= 1
rates = ", ".join(f"{n}sh={data[f'shards_{n}_events_per_sec']/1e6:.2f}M/s"
                  for n in (1, 2, 4, 8))
print(f"[check.sh] sharded throughput: {rates}, "
      f"single-shard parity {parity:.2f}x on "
      f"{data['hardware_threads']:.0f} hardware threads")
PY

"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$SHARD_JSON" --b "$SHARD_JSON" \
  --threshold 0 --require-same-keys > /dev/null || {
  echo "[check.sh] sharded-throughput self-diff failed"; exit 1;
}

# A malformed shard count must be a usage error (exit 2) on the tool and
# on the shared bench runner alike.
set +e
SHARD_ERR=$("$FABRIC_TOOL" --topology fat-tree:4 --shards bogus 2>&1)
SHARD_STATUS=$?
set -e
[[ $SHARD_STATUS -eq 2 ]] || {
  echo "[check.sh] bcn_fabric --shards bogus exited $SHARD_STATUS, want 2"
  exit 1
}
grep -q 'bad shard count' <<< "$SHARD_ERR" || {
  echo "[check.sh] bcn_fabric --shards bogus printed no usage line"; exit 1;
}
set +e
"$SMOKE_BUILD_DIR"/bench/sharded_throughput --run sharded_throughput \
  --shards bogus --out "$SHARD_OUT" > /dev/null 2>&1
SHARD_STATUS=$?
set -e
[[ $SHARD_STATUS -eq 2 ]] || {
  echo "[check.sh] bench --shards bogus exited $SHARD_STATUS, want 2"; exit 1;
}

echo "[check.sh] sharded-engine smoke clean ($SHARD_JSON)"

# --- service smoke ----------------------------------------------------------
# The stability-verdict service end-to-end.  The determinism contract
# (docs/SERVICE.md): a service answer — cold, cached, or replayed — is
# byte-identical to the bcn_analyze stdout for the echoed parameters.
cmake --build "$SMOKE_BUILD_DIR" -j \
  --target bcn_serve bcn_load bcn_analyze service_qps

SVC_OUT=$(mktemp -d)
SERVE_PID=
trap '[[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null;
      rm -rf "$SMOKE_OUT" "$TRACE_OUT" "$TPUT_OUT" "$FAULT_OUT_A" \
        "$FAULT_OUT_B" "$MECH_OUT_A" "$MECH_OUT_B" "$MAP_OUT" "$MON_OUT" \
        "$MON_OUT_B" "$SHARD_OUT" "$SVC_OUT"' EXIT

"$SMOKE_BUILD_DIR"/tools/bcn_serve --port 0 --threads 2 \
  > "$SVC_OUT/serve.log" 2>&1 &
SERVE_PID=$!
SVC_PORT=
for _ in $(seq 1 200); do
  SVC_PORT=$(sed -n 's/^listening on port \([0-9]*\)$/\1/p' \
    "$SVC_OUT/serve.log")
  [[ -n "$SVC_PORT" ]] && break
  sleep 0.05
done
[[ -n "$SVC_PORT" ]] || {
  echo "[check.sh] bcn_serve never reported a port"; exit 1;
}

# Scripted session: a control op, three distinct verdicts (closed-form
# bcn, generic qcn, custom plant), a repeat of the first verdict line
# (must be answered from the cache, byte-identically), and stats.
cat > "$SVC_OUT/session.txt" <<'EOF'
{"op":"ping","id":1}
{"op":"verdict"}
{"op":"verdict","mechanism":"qcn","a":4e8}
{"op":"verdict","a":4e8,"B":1.2e7}
{"op":"verdict"}
{"op":"stats"}
EOF
"$SMOKE_BUILD_DIR"/tools/bcn_load --port "$SVC_PORT" \
  --script "$SVC_OUT/session.txt" > "$SVC_OUT/responses.txt"

BCN_ANALYZE="$SMOKE_BUILD_DIR"/tools/bcn_analyze \
  python3 - "$SVC_OUT/responses.txt" <<'PY'
import json, os, subprocess, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
assert len(lines) == 6, f"want 6 responses, got {len(lines)}"
bodies = [json.loads(l) for l in lines]
assert bodies[0] == {"id": 1, "op": "ping", "ok": True}, bodies[0]

# Every verdict answer must reproduce the CLI byte for byte when
# bcn_analyze is invoked with the echoed (derived) parameters.
analyze = os.environ["BCN_ANALYZE"]
for body in bodies[1:4]:
    assert body["op"] == "verdict", body
    argv = [analyze]
    for flag in ("gi", "gd", "pm", "q0", "B"):
        argv += [f"--{flag}", repr(body[flag])]
    if body["mechanism"] != "bcn":
        argv += ["--mechanism", body["mechanism"]]
    cli = subprocess.run(argv, capture_output=True, text=True, check=True)
    assert cli.stdout == body["text"], \
        f"service text diverges from `{' '.join(argv)}` stdout"

# The repeated bare verdict line is answered from the cache and must be
# byte-identical to the cold response.
assert lines[4] == lines[1], "cached response != cold response"

# The stats snapshot accounts for the session exactly: 6 requests, 3
# distinct cacheable keys (misses), 1 replay (hit).
stats = bodies[5]
assert stats["service.requests"] == 6, stats
assert stats["service.cache.misses"] == 3, stats
assert stats["service.cache.hits"] == 1, stats
assert stats["service.errors"] == 0, stats
print("[check.sh] scripted session: 3 verdicts CLI-identical, "
      "replay cached byte-identically (hits=1, misses=3)")
PY

# Load mode: a seeded pool replayed over concurrent connections; the
# tool itself exits 1 on any byte divergence between cold and cached
# answers to the same request line.
"$SMOKE_BUILD_DIR"/tools/bcn_load --port "$SVC_PORT" \
  --requests 64 --connections 4 --space 8 > /dev/null || {
  echo "[check.sh] bcn_load load mode failed (byte identity?)"; exit 1;
}

# The shutdown op must terminate the server process with exit 0.
echo '{"op":"shutdown"}' > "$SVC_OUT/shutdown.txt"
"$SMOKE_BUILD_DIR"/tools/bcn_load --port "$SVC_PORT" \
  --script "$SVC_OUT/shutdown.txt" > /dev/null
SERVE_STATUS=0
wait "$SERVE_PID" || SERVE_STATUS=$?
SERVE_PID=
[[ $SERVE_STATUS -eq 0 ]] || {
  echo "[check.sh] bcn_serve exited $SERVE_STATUS after shutdown op, want 0"
  exit 1
}

# Bad flags are usage errors (exit 2) on both tools.
for bad in "--port bogus" "--port 70000" "--threads bogus" "--bogus 1"; do
  set +e
  # shellcheck disable=SC2086
  "$SMOKE_BUILD_DIR"/tools/bcn_serve $bad > /dev/null 2>&1
  STATUS=$?
  set -e
  [[ $STATUS -eq 2 ]] || {
    echo "[check.sh] bcn_serve $bad exited $STATUS, want 2"; exit 1;
  }
done
for bad in "--requests 4" "--port 1 --requests bogus" "--port 1"; do
  set +e
  # shellcheck disable=SC2086
  "$SMOKE_BUILD_DIR"/tools/bcn_load $bad > /dev/null 2>&1
  STATUS=$?
  set -e
  [[ $STATUS -eq 2 ]] || {
    echo "[check.sh] bcn_load $bad exited $STATUS, want 2"; exit 1;
  }
done

# E24: the service-throughput bench doubles as the concurrent
# byte-identity gate (exit 1 on any cached/cold divergence) and its
# artifact pins the exact cache accounting.
"$SMOKE_BUILD_DIR"/bench/service_qps --run service_qps --out "$SVC_OUT" \
  --connections 4 --space 16 --passes 4 > /dev/null || {
  echo "[check.sh] service_qps failed (byte identity or errors)"; exit 1;
}

SVC_JSON="$SVC_OUT/BENCH_service_qps.json"
[[ -f "$SVC_JSON" ]] || { echo "[check.sh] missing $SVC_JSON"; exit 1; }
python3 - "$SVC_JSON" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
assert data.get("benchmark") == "service_qps", data.get("benchmark")
assert data.get("byte_mismatches") == 0, \
    f"{data.get('byte_mismatches')!r} cached responses diverged"
assert data.get("errors") == 0, f"{data.get('errors')!r} protocol errors"
space, passes = data["space"], data["passes"]
# Cold pass: every distinct request missed once.  Cached passes: every
# lookup hit.  The counters must balance exactly.
assert data.get("cache_misses") == space, \
    f"cache_misses = {data.get('cache_misses')!r}, want {space}"
assert data.get("cache_hits") == space * passes, \
    f"cache_hits = {data.get('cache_hits')!r}, want {space * passes}"
for key in ("cold_qps", "cached_qps", "cold_p50_ms", "cold_p99_ms",
            "cached_p50_ms", "cached_p99_ms", "cached_speedup"):
    value = data.get(key)
    assert isinstance(value, (int, float)) and value > 0, f"{key}: {value!r}"
print(f"[check.sh] service qps: cold {data['cold_qps']:.0f}/s, "
      f"cached {data['cached_qps']:.0f}/s "
      f"({data['cached_speedup']:.1f}x), hit/miss accounting exact")
PY

"$SMOKE_BUILD_DIR"/tools/bcn_bench_diff \
  --a "$SVC_JSON" --b "$SVC_JSON" --threshold 0 --require-same-keys \
  > /dev/null || {
  echo "[check.sh] service-qps self-diff failed"; exit 1;
}

# Documentation link check: every relative link in README.md and
# docs/*.md must point at a file that exists.
python3 - <<'PY'
import glob, os, re, sys
files = ["README.md"] + sorted(glob.glob("docs/*.md"))
pattern = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
bad = []
checked = 0
for path in files:
    base = os.path.dirname(path)
    for target in pattern.findall(open(path).read()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        checked += 1
        resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
        if not os.path.exists(resolved):
            bad.append(f"{path}: {target}")
for link in bad:
    print(f"[check.sh] dangling doc link: {link}")
if bad:
    sys.exit(1)
print(f"[check.sh] doc links valid: {checked} relative links "
      f"across {len(files)} files")
PY

echo "[check.sh] service smoke clean ($SVC_JSON)"
