// E4 / paper Fig. 7: limit-cycle motion.
//
// The paper presents the limit cycle (x_i^k(0) = x_i^{k+1}(0)) as a
// possible Case-1 behavior observed in the experiments of Lu et al. [4].
// This bench measures the Poincare return map P(s) on the switching line
// at every model level and reports our reproduction finding: the fluid
// model always contracts (no interior limit cycle; the near-unity
// contraction ratio makes the oscillation *look* sustained), while the
// quantized per-message AIMD of the actual draft DOES sustain a genuine
// small-amplitude oscillation -- the practical realization of Fig. 7.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "core/analytic_tracer.h"
#include "core/poincare.h"
#include "core/simulate.h"
#include "sim/network.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  std::printf("=== Fig. 7: limit-cycle analysis ===\n");
  const core::BcnParams p = core::BcnParams::standard_draft();
  bench::print_params(p);

  // (a) Poincare return map across amplitudes and model levels; the
  // per-amplitude returns are independent integrations, swept on
  // ctx.threads workers.
  TablePrinter map_table({"s (Gbps-scale)", "P(s)/s linearized",
                          "P(s)/s nonlinear", "P(s)/s clipped"});
  core::PoincareOptions popts;
  popts.max_time = 0.05;
  const core::PoincareMap lin(core::FluidModel(p, core::ModelLevel::Linearized), popts);
  const core::PoincareMap non(core::FluidModel(p, core::ModelLevel::Nonlinear), popts);
  const core::PoincareMap clip(core::FluidModel(p, core::ModelLevel::Clipped), popts);
  const std::vector<double> amplitudes = {1e9, 5e9, 2e10, 8e10, 2e11};
  const auto lin_r = core::scan_contraction_ratios(lin, amplitudes, ctx.threads);
  const auto non_r = core::scan_contraction_ratios(non, amplitudes, ctx.threads);
  const auto clip_r =
      core::scan_contraction_ratios(clip, amplitudes, ctx.threads);
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    auto fmt = [](const std::optional<double>& r) {
      return r ? TablePrinter::format(*r) : std::string("none");
    };
    map_table.add_row({TablePrinter::format(amplitudes[i] / 1e9),
                       fmt(lin_r[i]), fmt(non_r[i]), fmt(clip_r[i])});
  }
  std::fputs(map_table
                 .to_string("Poincare return-map contraction P(s)/s "
                            "(< 1 everywhere -> no interior limit cycle)")
                 .c_str(),
             stdout);

  core::CycleSearchOptions copts;
  copts.poincare.max_time = 0.05;
  copts.s_lo = 1e9;
  copts.s_hi = 2e11;
  copts.bracket_samples = 10;
  copts.threads = ctx.threads;
  for (const auto level : {core::ModelLevel::Nonlinear, core::ModelLevel::Clipped}) {
    const auto cycle = core::find_limit_cycle(core::FluidModel(p, level), copts);
    std::printf("limit-cycle search (%s): %s\n",
                level == core::ModelLevel::Nonlinear ? "nonlinear" : "clipped",
                cycle ? "FOUND" : "none (map is a contraction)");
  }

  // (b) The near-closed orbit: a few cycles of the linearized system look
  // closed because the contraction ratio is ~0.9985 per cycle.
  const auto ratio =
      core::AnalyticTracer(p).trace().contraction_ratio();
  if (ratio) {
    std::printf("\ncontraction ratio per cycle: %.6f -> amplitude falls "
                "only %.2f%% per oscillation period; over an experiment "
                "window the orbit is visually closed (the Fig. 7 "
                "phenomenology).\n",
                *ratio, 100.0 * (1.0 - *ratio));
  }
  core::FluidRunOptions ropts;
  ropts.duration = 2.5e-3;
  ropts.record_interval = 1e-6;
  const auto run = core::simulate_fluid(
      core::FluidModel(p, core::ModelLevel::Nonlinear), ropts);
  bench::record_fluid_metrics(run, ctx.metrics);
  plot::AsciiOptions ascii;
  ascii.title = "Fig.7(a) near-closed orbit (nonlinear fluid, ~6 cycles)";
  ascii.x_label = "x [Mbit]";
  ascii.y_label = "y [Gbps]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  bench::emit_figure("fig7_near_closed_orbit",
                     {bench::phase_series(run.trajectory, "orbit")}, ascii,
                     svg);

  // (c) The genuine sustained oscillation: quantized per-message AIMD.
  sim::NetworkConfig cfg;
  core::BcnParams sp = p;
  sp.num_sources = 5;
  sp.pm = 0.2;
  sp.gi = 0.5;
  sp.buffer = 30e6;
  sp.qsc = 28e6;
  cfg.params = sp;
  // Start 50% overloaded so every source receives negative BCN early and
  // acquires its RRT tag; the per-message AIMD then hunts around q0.
  cfg.initial_rate = 1.5 * sp.capacity / sp.num_sources;
  cfg.mechanism = "bcn-draft";
  cfg.record_interval = 20 * sim::kMicrosecond;
  sim::Network net(cfg);
  net.run(80 * sim::kMillisecond);
  bench::record_sim_metrics(net.stats(), ctx.metrics);
  if (ctx.metrics) net.simulator().export_metrics(*ctx.metrics);
  bench::export_observability(net.stats(), "fig7_limit_cycle");
  const auto packet_traj =
      net.stats().to_phase_trajectory(sp.q0, sp.capacity);
  double lo = 1e18, hi = -1e18;
  for (const auto& s : packet_traj.samples()) {
    if (s.t < 0.04) continue;
    lo = std::min(lo, s.z.x);
    hi = std::max(hi, s.z.x);
  }
  std::printf("\npacket simulator, draft per-message AIMD: steady residual "
              "queue oscillation of %.1f frames peak-to-peak (does not "
              "decay) -- the mechanism behind the oscillations [4] "
              "observed.\n",
              (hi - lo) / cfg.frame_bits);

  plot::AsciiOptions ascii_q;
  ascii_q.title = "Fig.7(b) sustained oscillation, quantized AIMD (packet sim)";
  ascii_q.x_label = "t [ms]";
  ascii_q.y_label = "q [Mbit]";
  plot::SvgOptions svg_q;
  svg_q.title = ascii_q.title;
  svg_q.x_label = ascii_q.x_label;
  svg_q.y_label = ascii_q.y_label;
  bench::emit_figure("fig7_quantized_oscillation",
                     {bench::queue_series(packet_traj, sp.q0, "packet q(t)")},
                     ascii_q, svg_q);
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig7_limit_cycle", "Fig. 7 / E4: Poincare return map and limit-cycle verdict", run)
