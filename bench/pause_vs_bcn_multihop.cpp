// E15 (extension): the congestion-rollback scenario from the paper's
// introduction.  Hop-by-hop PAUSE "can roll back from switch to switch,
// affecting flows that do not contribute to the congestion"; end-to-end
// BCN confines throttling to the culprit flows.  Eight 1 Gbps culprits
// congest a 1 Gbps core downlink while one innocent victim flow shares
// only the edge uplink.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "runner.h"
#include "sim/multihop.h"
#include "sim/stats.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  std::printf("=== E15: PAUSE congestion rollback vs BCN (victim flow) "
              "===\n");
  std::printf("topology: 8 culprits + 1 victim -> E1 -(10G)-> CORE; "
              "culprits exit via a 1 Gbps port, the victim via a 10 Gbps "
              "port; every source offers 1 Gbps.\n\n");

  TablePrinter table({"scheme", "victim (Gbps)", "hot port (Gbps)",
                      "core drops", "edge drops", "PAUSE core->edge",
                      "PAUSE edge->src", "BCN msgs",
                      "edge peak q (Mbit)"});

  struct Mode {
    const char* name;
    bool pause;
    bool bcn;
  };
  for (const Mode m : {Mode{"PAUSE only", true, false},
                       Mode{"PAUSE + BCN", true, true},
                       Mode{"BCN only", false, true}}) {
    sim::MultihopConfig cfg;
    cfg.enable_pause = m.pause;
    cfg.enable_bcn = m.bcn;
    cfg.faults = ctx.faults;
    // Observe the PAUSE+BCN run: its event trace shows the rollback
    // (edge-port PAUSE bursts) giving way to targeted BCN feedback.
    sim::SimStats observed;
    if (m.pause && m.bcn) {
      cfg.observer = &observed;
      cfg.metrics = ctx.metrics;  // scheduler gauges for the observed run
      // Monitors ride the observed run only (one bundle per experiment);
      // the multi-hop fabric has no single-bottleneck fluid twin, so the
      // crosscheck hint stays unset.
      cfg.monitors = ctx.monitors;
    }
    const auto r = sim::run_victim_scenario(cfg);
    if (cfg.observer) {
      bench::record_sim_metrics(observed, ctx.metrics, "sim.pause_bcn.");
      bench::export_observability(observed, "pause_vs_bcn_multihop");
    }
    table.add_row(
        {m.name, TablePrinter::format(r.victim_throughput / 1e9, 3),
         TablePrinter::format(r.culprit_throughput / 1e9, 3),
         TablePrinter::format(static_cast<double>(r.core_drops)),
         TablePrinter::format(static_cast<double>(r.edge_drops)),
         TablePrinter::format(static_cast<double>(r.pauses_core_to_edge)),
         TablePrinter::format(static_cast<double>(r.pauses_edge_to_sources)),
         TablePrinter::format(static_cast<double>(r.bcn_messages)),
         TablePrinter::format(r.edge_peak_queue / 1e6, 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nPaper-shape check: with PAUSE alone the victim collapses "
              "to a few percent of its offered load (congestion rolled "
              "back to the shared edge); adding BCN restores the victim "
              "to full rate, keeps the hot port saturated, and PAUSE "
              "falls silent after the transient -- the division of labor "
              "802.1Qau intended.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("pause_vs_bcn_multihop", "E15: PAUSE congestion rollback vs BCN, two-hop victim flow", run)
