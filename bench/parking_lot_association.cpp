// E18 (extension): CPID association in a two-bottleneck parking lot.
// Demonstrates the Section II.B matching rule end to end: each reaction
// point associates with the congestion point that throttled it, and only
// that point may speed it back up.
#include <cstdio>

#include "common/format.h"
#include "runner.h"
#include "common/table.h"
#include "sim/parking_lot.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E18: parking-lot CPID association ===\n");
  std::printf("topology: group A (4) -> CP1 -> CP2 -> sink; "
              "group B (4) -> CP2 -> sink\n\n");

  TablePrinter table({"scenario", "A rate (Gbps)", "B rate (Gbps)",
                      "A assoc.", "CP1 q peak (Mbit)", "CP2 q peak (Mbit)",
                      "CP2 msgs (+/-)", "drops"});

  {
    sim::ParkingLotConfig cfg;  // C1 = C2 = 10G
    const auto r = sim::run_parking_lot(cfg);
    table.add_row({"shared bottleneck (C1=10G, C2=10G)",
                   TablePrinter::format(r.group_a_rate / 1e9, 3),
                   TablePrinter::format(r.group_b_rate / 1e9, 3),
                   strf("CP2 x%d", r.group_a_on_cp2),
                   TablePrinter::format(r.cp1_peak_queue / 1e6, 3),
                   TablePrinter::format(r.cp2_peak_queue / 1e6, 3),
                   strf("%llu/%llu",
                        static_cast<unsigned long long>(r.cp2_positives),
                        static_cast<unsigned long long>(r.cp2_negatives)),
                   TablePrinter::format(static_cast<double>(r.drops))});
  }
  {
    sim::ParkingLotConfig cfg;
    cfg.capacity1 = 2e9;  // upstream bottleneck for group A
    cfg.initial_rate = 2.5e9;
    const auto r = sim::run_parking_lot(cfg);
    table.add_row({"upstream bottleneck (C1=2G, C2=10G)",
                   TablePrinter::format(r.group_a_rate / 1e9, 3),
                   TablePrinter::format(r.group_b_rate / 1e9, 3),
                   strf("CP1 x%d", r.group_a_on_cp1),
                   TablePrinter::format(r.cp1_peak_queue / 1e6, 3),
                   TablePrinter::format(r.cp2_peak_queue / 1e6, 3),
                   strf("%llu/%llu",
                        static_cast<unsigned long long>(r.cp2_positives),
                        static_cast<unsigned long long>(r.cp2_negatives)),
                   TablePrinter::format(static_cast<double>(r.drops))});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nReading: association follows the true bottleneck (CP2 in "
              "the shared case, CP1 in the upstream case), and rates land "
              "on the parking-lot allocation.  The matching rule keeps an "
              "uncongested CP2 from accelerating flows that CP1 is "
              "throttling.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("parking_lot_association", "E18: CPID association in a dual-CP parking lot", run)
