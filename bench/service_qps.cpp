// E24: stability-verdict service throughput -- QPS and p50/p99 latency
// of the in-process TCP service, cold (every request a verdict-cache
// miss micro-batched onto the pool) vs cached (every request answered
// from the sharded LRU).  The phases double as the byte-identity gate:
// each cached response must equal, byte for byte, the cold response to
// the same request line.  Emits BENCH_service_qps.json for
// tools/bcn_bench_diff tracking.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "runner.h"
#include "service/client.h"
#include "service/server.h"

using namespace bcn;

namespace {

struct PhaseResult {
  std::vector<double> latencies_ms;
  double elapsed_s = 0.0;
  long long errors = 0;
  long long mismatches = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// Replays `pool` `passes` times, partitioned across `connections`
// threads.  When `golden` is empty it is filled (cold phase); otherwise
// responses are compared against it (cached phase).
PhaseResult run_phase(int port, const std::vector<std::string>& pool,
                      int connections, int passes,
                      std::vector<std::string>& golden) {
  const bool record = golden.empty();
  if (record) golden.resize(pool.size());
  std::vector<PhaseResult> per_thread(static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  const long long total =
      static_cast<long long>(pool.size()) * passes;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      PhaseResult& out = per_thread[static_cast<std::size_t>(c)];
      service::LineClient client;
      if (!client.connect_to("127.0.0.1", port)) {
        ++out.errors;
        return;
      }
      const long long begin = c * total / connections;
      const long long end = (c + 1) * total / connections;
      for (long long i = begin; i < end; ++i) {
        const auto slot = static_cast<std::size_t>(i) % pool.size();
        const auto start = std::chrono::steady_clock::now();
        const auto response = client.request(pool[slot]);
        const auto stop = std::chrono::steady_clock::now();
        if (!response) {
          ++out.errors;
          return;
        }
        out.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
        if (record) {
          golden[slot] = *response;  // each slot written by one thread
        } else if (golden[slot] != *response) {
          ++out.mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  PhaseResult merged;
  merged.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& r : per_thread) {
    merged.latencies_ms.insert(merged.latencies_ms.end(),
                               r.latencies_ms.begin(), r.latencies_ms.end());
    merged.errors += r.errors;
    merged.mismatches += r.mismatches;
  }
  std::sort(merged.latencies_ms.begin(), merged.latencies_ms.end());
  return merged;
}

int run(bench::RunContext& ctx) {
  std::printf("=== E24: stability-verdict service QPS (cold vs cached) "
              "===\n");
  const int connections = ctx.args->get_int("connections", 8);
  const int space = ctx.args->get_int("space", 64);
  const int passes = ctx.args->get_int("passes", 8);
  if (connections < 1 || space < 1 || passes < 1) {
    std::fprintf(stderr,
                 "--connections/--space/--passes must be positive\n");
    return 2;
  }

  service::ServiceConfig config;
  config.threads = ctx.threads;
  config.cache_entries = static_cast<std::size_t>(space) * 2;
  service::ServiceServer server(config);
  if (!server.start()) {
    std::fprintf(stderr, "service start failed: %s\n",
                 server.error().c_str());
    return 1;
  }
  std::printf("in-process server on port %d, %d pool thread(s), %d "
              "connection(s), %d distinct request(s)\n",
              server.port(), config.threads, connections, space);

  // Distinct verdict requests along the gain-space a axis; every plant
  // valid, every verdict deterministic.
  std::vector<std::string> pool;
  pool.reserve(static_cast<std::size_t>(space));
  for (int i = 0; i < space; ++i) {
    JsonWriter json;
    json.add("op", "verdict");
    json.add("a", 8e8 + 5e7 * static_cast<double>(i));
    pool.push_back(json.to_line());
  }

  // Cold: each distinct request exactly once (one pass == all misses).
  std::vector<std::string> golden;
  PhaseResult cold = run_phase(server.port(), pool, connections, 1, golden);
  // Cached: replay the same pool; every request is a hit.
  PhaseResult cached =
      run_phase(server.port(), pool, connections, passes, golden);

  const auto hits = server.metrics().find_counter("service.cache.hits");
  const auto misses = server.metrics().find_counter("service.cache.misses");
  const std::uint64_t hit_count = hits ? hits->value() : 0;
  const std::uint64_t miss_count = misses ? misses->value() : 0;
  server.stop();

  const double cold_qps =
      cold.elapsed_s > 0.0 ? space / cold.elapsed_s : 0.0;
  const double cached_total = static_cast<double>(space) * passes;
  const double cached_qps =
      cached.elapsed_s > 0.0 ? cached_total / cached.elapsed_s : 0.0;
  const double cold_p50 = percentile(cold.latencies_ms, 0.50);
  const double cold_p99 = percentile(cold.latencies_ms, 0.99);
  const double cached_p50 = percentile(cached.latencies_ms, 0.50);
  const double cached_p99 = percentile(cached.latencies_ms, 0.99);

  std::printf("cold:   %8.1f qps  p50 %7.3f ms  p99 %7.3f ms  (%d "
              "requests)\n",
              cold_qps, cold_p50, cold_p99, space);
  std::printf("cached: %8.1f qps  p50 %7.3f ms  p99 %7.3f ms  (%.0f "
              "requests)\n",
              cached_qps, cached_p50, cached_p99, cached_total);
  std::printf("cache counters: hits=%llu misses=%llu | byte mismatches "
              "cached-vs-cold: %lld\n",
              static_cast<unsigned long long>(hit_count),
              static_cast<unsigned long long>(miss_count),
              cached.mismatches);

  if (ctx.metrics) {
    ctx.metrics->counter("service.cache.hits").inc(hit_count);
    ctx.metrics->counter("service.cache.misses").inc(miss_count);
    ctx.metrics->gauge("service.cached_qps").set(cached_qps);
  }

  JsonWriter json;
  json.add("benchmark", "service_qps");
  json.add("threads", ctx.threads);
  json.add("connections", connections);
  json.add("space", space);
  json.add("passes", passes);
  json.add("cold_requests", space);
  json.add("cached_requests", static_cast<std::int64_t>(cached_total));
  json.add("cold_qps", cold_qps);
  json.add("cold_p50_ms", cold_p50);
  json.add("cold_p99_ms", cold_p99);
  json.add("cached_qps", cached_qps);
  json.add("cached_p50_ms", cached_p50);
  json.add("cached_p99_ms", cached_p99);
  json.add("cached_speedup",
           cold_p50 > 0.0 && cached_p50 > 0.0 ? cold_p50 / cached_p50 : 0.0);
  json.add("cache_hits", static_cast<std::int64_t>(hit_count));
  json.add("cache_misses", static_cast<std::int64_t>(miss_count));
  json.add("errors",
           static_cast<std::int64_t>(cold.errors + cached.errors));
  json.add("byte_mismatches", static_cast<std::int64_t>(cached.mismatches));
  const auto path = ctx.out_dir / "BENCH_service_qps.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }

  if (cold.errors + cached.errors > 0) {
    std::fprintf(stderr, "FAIL: %lld connection/protocol errors\n",
                 cold.errors + cached.errors);
    return 1;
  }
  if (cached.mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld cached responses differ from their cold "
                 "responses (determinism contract violated)\n",
                 cached.mismatches);
    return 1;
  }
  return 0;
}

}  // namespace

BCN_EXPERIMENT("service_qps",
               "E24: stability-verdict service QPS and p50/p99 latency, "
               "cold vs cached, with the cached-vs-cold byte-identity gate",
               run, "connections", "space", "passes")
