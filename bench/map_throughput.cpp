// E22: stability-map throughput -- cells/sec of the numeric ground-truth
// map in its three execution strategies (scalar per-cell hybrid
// integration, SoA batched integration, batched + adaptive quadtree
// boundary refinement) on the E9 pinned configuration, plus the verdict
// cross-checks that make the speedup trustworthy: batch and adaptive
// must reproduce the scalar verdict in every cell, and adaptive must do
// it while integrating a minority of them.  Emits
// BENCH_map_throughput.json for tools/bcn_bench_diff tracking.
#include <chrono>
#include <cstdio>
#include <limits>

#include "analysis/stability_map.h"
#include "analysis/sweep.h"
#include "bench_util.h"
#include "common/json.h"
#include "runner.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  std::printf("=== map throughput: scalar vs batch vs adaptive ===\n");
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;

  const int grid = ctx.args->get_int("grid", 33);
  if (grid < 2) {
    std::fprintf(stderr, "--grid must be >= 2\n");
    return 2;
  }
  const int reps = ctx.args->get_int("reps", 3);
  const auto gi = analysis::logspace(0.125, 32.0, grid);
  const auto gd = analysis::logspace(1.0 / 1024.0, 0.5, grid);
  const std::size_t cells = gi.size() * gd.size();

  analysis::StabilityMap maps[3];
  double seconds[3] = {0.0, 0.0, 0.0};
  const analysis::MapMode modes[3] = {analysis::MapMode::Scalar,
                                      analysis::MapMode::Batch,
                                      analysis::MapMode::Adaptive};
  for (int m = 0; m < 3; ++m) {
    analysis::StabilityMapOptions opts;
    opts.numeric_level = core::ModelLevel::Linearized;
    opts.threads = ctx.threads;
    opts.mode = modes[m];
    opts.metrics = modes[m] == analysis::MapMode::Adaptive ? ctx.metrics
                                                          : nullptr;
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      maps[m] = analysis::compute_stability_map(base, gi, gd, opts);
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
    }
    seconds[m] = best;
    std::printf("  %-8s %8.3f s  %10.0f cells/s  (%d/%zu stable, "
                "%zu integrated, %d wave(s))\n",
                analysis::to_string(modes[m]).c_str(), best,
                best > 0.0 ? cells / best : 0.0, maps[m].numeric_stable,
                cells, maps[m].integrated_cells, maps[m].refinement_waves);
  }

  // Verdict agreement: the speedup only counts if the cheap paths call
  // every cell exactly like the scalar ground truth.
  int batch_mismatch = 0;
  int adaptive_mismatch = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    const bool s = maps[0].cells[i].numeric.strongly_stable;
    if (maps[1].cells[i].numeric.strongly_stable != s) ++batch_mismatch;
    if (maps[2].cells[i].numeric.strongly_stable != s) ++adaptive_mismatch;
  }
  const double adaptive_fraction =
      static_cast<double>(maps[2].integrated_cells) /
      static_cast<double>(cells);
  const double batch_speedup =
      seconds[1] > 0.0 ? seconds[0] / seconds[1] : 0.0;
  const double adaptive_speedup =
      seconds[2] > 0.0 ? seconds[0] / seconds[2] : 0.0;

  std::printf("\nbatch:    %d/%zu verdict mismatches vs scalar, %.2fx\n",
              batch_mismatch, cells, batch_speedup);
  std::printf("adaptive: %d/%zu verdict mismatches vs scalar, %.2fx, "
              "integrated %.1f%% of cells\n",
              adaptive_mismatch, cells, adaptive_speedup,
              100.0 * adaptive_fraction);

  JsonWriter json;
  json.add("benchmark", "map_throughput");
  json.add("grid", grid);
  json.add("cells", static_cast<std::int64_t>(cells));
  json.add("reps", reps);
  json.add("threads", ctx.threads);
  json.add("scalar_seconds", seconds[0]);
  json.add("batch_seconds", seconds[1]);
  json.add("adaptive_seconds", seconds[2]);
  json.add("scalar_cells_per_sec",
           seconds[0] > 0.0 ? cells / seconds[0] : 0.0);
  json.add("batch_cells_per_sec",
           seconds[1] > 0.0 ? cells / seconds[1] : 0.0);
  json.add("adaptive_cells_per_sec",
           seconds[2] > 0.0 ? cells / seconds[2] : 0.0);
  json.add("batch_speedup", batch_speedup);
  json.add("adaptive_speedup", adaptive_speedup);
  json.add("scalar_stable", maps[0].numeric_stable);
  json.add("batch_stable", maps[1].numeric_stable);
  json.add("adaptive_stable", maps[2].numeric_stable);
  json.add("batch_mismatch", batch_mismatch);
  json.add("adaptive_mismatch", adaptive_mismatch);
  json.add("adaptive_integrated_cells",
           static_cast<std::int64_t>(maps[2].integrated_cells));
  json.add("adaptive_integrated_fraction", adaptive_fraction);
  json.add("adaptive_waves", maps[2].refinement_waves);
  const auto path = ctx.out_dir / "BENCH_map_throughput.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }

  if (batch_mismatch != 0 || adaptive_mismatch != 0) {
    std::fprintf(stderr,
                 "FAIL: batched/adaptive verdicts diverge from scalar\n");
    return 1;
  }
  if (adaptive_fraction >= 0.5) {
    std::fprintf(stderr,
                 "FAIL: adaptive refinement integrated %.1f%% of cells "
                 "(expected < 50%%)\n",
                 100.0 * adaptive_fraction);
    return 1;
  }
  return 0;
}

}  // namespace

BCN_EXPERIMENT("map_throughput",
               "stability-map cells/sec: scalar vs SoA batch vs adaptive "
               "refinement, with verdict cross-checks",
               run, "grid", "reps")
