// E7 / paper Fig. 10: Case 4 (node/node).  Both regions overdamped: the
// trajectory crosses the switching line once and approaches the origin
// without oscillation -- always strongly stable.  (Scaled plant; see the
// reachability note in fig8.)
#include <cstdio>

#include "bench_util.h"
#include "runner.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 10: Case 4 dynamics (a > 4pm^2C^2/w^2, "
              "b > 4pm^2C/w^2) ===\n");
  core::BcnParams p = bench::scaled_plant();
  p.gi = 4.0 * p.spiral_threshold() / (p.ru * p.num_sources);
  p.gd = 4.0 * p.spiral_threshold() / p.capacity;

  const auto r =
      bench::run_case_dynamics(p, "Fig.10 Case 4", "fig10_case4", 0.02);

  std::printf("\nPaper-shape check: at most one small overshoot "
              "(max x = %.6g bits), no oscillation afterwards, strongly "
              "stable: %s.\n",
              r.analytic_max_x,
              r.strongly_stable_numeric ? "yes" : "NO?");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig10_case4_dynamics", "Fig. 10 / E7: Case 4 (node/node) dynamics", run)
