// E2 / paper Fig. 5: F-type (parabola-like) trajectories of an overdamped
// subsystem (two distinct negative real eigenvalues), the straight-line
// eigendirections y = lambda_{1,2} x, and the global extrema mum_x^p of
// eq. (28).
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/format.h"
#include "common/table.h"
#include "control/closed_form.h"
#include "ode/integrate.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 5: node (F-type) trajectories, m^2 - 4n > 0 ===\n");
  // A node-regime subsystem (scaled to paper-like magnitudes): the
  // increase subsystem when a exceeds 4 pm^2 C^2 / w^2.
  const control::SecondOrderSystem sys(5e4, 4e8);  // lambda = -1e4, -4e4
  const auto eig = sys.eigenvalues();
  const double l1 = eig[0].real(), l2 = eig[1].real();
  std::printf("subsystem: m=%.6g n=%.6g lambda1=%.6g lambda2=%.6g\n",
              sys.m(), sys.n(), l1, l2);

  const Vec2 starts[] = {{-1e6, 6e10}, {0.5e6, 3e10}, {1e6, -5e10},
                         {-0.3e6, -2e10}};

  std::vector<plot::Series> series;
  TablePrinter table({"start x (Mbit)", "start y (Gbps)", "eq.(28) (Mbit)",
                      "closed form (Mbit)", "numeric (Mbit)", "rel.err"});

  for (const Vec2 z0 : starts) {
    const control::LinearSolution sol(sys, z0);
    const auto ext = sol.first_x_extremum();
    const auto paper = control::paper_node_extremum_value(l1, l2, z0);

    ode::AdaptiveOptions opts;
    opts.tol = {1e-11, 1e-11};
    opts.record_interval = 2e-6;
    const auto numeric =
        ode::integrate_adaptive(sys.rhs(), 0.0, z0, 1.5e-3, opts);
    const double numeric_ext = z0.y > 0.0
                                   ? numeric.trajectory.max_component(0)
                                   : numeric.trajectory.min_component(0);

    table.add_row(
        {TablePrinter::format(z0.x / 1e6), TablePrinter::format(z0.y / 1e9),
         paper ? TablePrinter::format(*paper / 1e6) : "n/a",
         ext ? TablePrinter::format(ext->value / 1e6) : "n/a",
         TablePrinter::format(numeric_ext / 1e6),
         ext ? TablePrinter::format(relative_error(numeric_ext, ext->value))
             : "-"});

    series.push_back(bench::phase_series(
        numeric.trajectory,
        strf("node from (%.2g, %.2g)", z0.x / 1e6, z0.y / 1e9)));
  }

  // Eigendirections as reference series.
  for (const double lambda : {l1, l2}) {
    plot::Series line;
    line.name = strf("y = %.3g x", lambda);
    for (double x = -1.2e6; x <= 1.2e6; x += 1.2e5) {
      line.add(x / 1e6, lambda * x / 1e9);
    }
    series.push_back(line);
  }

  std::fputs(
      table.to_string("global extrema mum_x^p (paper eq. (28), sign per y0)")
          .c_str(),
      stdout);

  plot::AsciiOptions ascii;
  ascii.title = "Fig.5 phase portrait: stable node with eigenlines";
  ascii.x_label = "x [Mbit]";
  ascii.y_label = "y [Gbps]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  bench::emit_figure("fig5_node_trajectories", series, ascii, svg);

  std::printf("\nPaper-shape check: parabola-like orbits approach the origin "
              "tangent to the slow eigenline y = lambda2 x, at most one "
              "extremum each.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig5_node_trajectories", "Fig. 5 / E2: node (F-type) subsystem trajectories", run)
