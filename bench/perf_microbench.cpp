// E12: performance microbenchmarks (google-benchmark) for the numeric
// substrates, including the event-detection ablation cost, plus the
// tracked serial-vs-parallel stability-map comparison emitted as
// BENCH_parallel_sweep.json (the perf trajectory of the exec layer).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "analysis/stability_map.h"
#include "analysis/sweep.h"
#include "bench_util.h"
#include "common/json.h"
#include "core/analytic_tracer.h"
#include "core/simulate.h"
#include "exec/parallel_for.h"
#include "ode/hybrid.h"
#include "ode/integrate.h"
#include "ode/steppers.h"
#include "sim/network.h"

namespace {

using namespace bcn;

const ode::Rhs kOscillator = [](double, Vec2 z) -> Vec2 {
  return {z.y, -z.x};
};

void BM_Rk4Step(benchmark::State& state) {
  Vec2 z{1.0, 0.0};
  double t = 0.0;
  for (auto _ : state) {
    z = ode::rk4_step(kOscillator, t, z, 1e-3);
    t += 1e-3;
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_Rk4Step);

void BM_Dopri5TrialStep(benchmark::State& state) {
  const ode::Dopri5 stepper(kOscillator);
  Vec2 z{1.0, 0.0};
  Vec2 k1 = stepper.compute_k1(0.0, z);
  for (auto _ : state) {
    const auto step = stepper.trial_step(0.0, z, k1, 1e-3);
    benchmark::DoNotOptimize(step.z_new);
  }
}
BENCHMARK(BM_Dopri5TrialStep);

void BM_AdaptiveIntegrateOscillator(benchmark::State& state) {
  for (auto _ : state) {
    const auto res =
        ode::integrate_adaptive(kOscillator, 0.0, {1.0, 0.0}, 10.0);
    benchmark::DoNotOptimize(res.trajectory.size());
  }
}
BENCHMARK(BM_AdaptiveIntegrateOscillator);

void BM_HybridBcnMillisecond(benchmark::State& state) {
  const core::FluidModel model(core::BcnParams::standard_draft(),
                               core::ModelLevel::Nonlinear);
  core::FluidRunOptions opts;
  opts.duration = 1e-3;
  for (auto _ : state) {
    const auto run = core::simulate_fluid(model, opts);
    benchmark::DoNotOptimize(run.max_x);
  }
  state.SetLabel("1 ms of model time, event-localized switching");
}
BENCHMARK(BM_HybridBcnMillisecond);

void BM_NaiveFixedStepBcnMillisecond(benchmark::State& state) {
  // Ablation partner for BM_HybridBcnMillisecond at a comparable step
  // count (the hybrid driver takes ~1e3 steps for this horizon).
  const core::BcnParams p = core::BcnParams::standard_draft();
  const core::FluidModel model(p, core::ModelLevel::Nonlinear);
  const auto inc = model.increase_rhs();
  const auto dec = model.decrease_rhs();
  const double k = p.k();
  const ode::Rhs switched = [&](double t, Vec2 z) {
    return -(z.x + k * z.y) > 0.0 ? inc(t, z) : dec(t, z);
  };
  ode::FixedStepOptions opts;
  opts.step = 1e-6;
  for (auto _ : state) {
    const auto traj =
        ode::integrate_fixed(switched, 0.0, {-p.q0, 0.0}, 1e-3, opts);
    benchmark::DoNotOptimize(traj.size());
  }
}
BENCHMARK(BM_NaiveFixedStepBcnMillisecond);

void BM_AnalyticTracer(benchmark::State& state) {
  const core::AnalyticTracer tracer(core::BcnParams::standard_draft());
  core::AnalyticTraceOptions opts;
  opts.max_rounds = 64;
  for (auto _ : state) {
    const auto trace = tracer.trace(opts);
    benchmark::DoNotOptimize(trace.max_x);
  }
  state.SetLabel("64 closed-form rounds");
}
BENCHMARK(BM_AnalyticTracer);

void BM_PacketSimulatorMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::NetworkConfig cfg;
    cfg.params = core::BcnParams::standard_draft();
    cfg.params.num_sources = state.range(0);
    cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
    sim::Network net(cfg);
    state.ResumeTiming();
    net.run(sim::kMillisecond);
    benchmark::DoNotOptimize(net.queue_bits());
  }
  state.SetLabel("1 ms of 10 Gbps traffic");
}
BENCHMARK(BM_PacketSimulatorMillisecond)->Arg(5)->Arg(50);

void BM_StabilityMapCell(benchmark::State& state) {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  core::NumericVerdictOptions nopts;
  nopts.level = core::ModelLevel::Linearized;
  for (auto _ : state) {
    const auto verdict = core::numeric_strong_stability(base, nopts);
    benchmark::DoNotOptimize(verdict.max_x);
  }
  state.SetLabel("one (Gi, Gd) map cell, linearized ground truth");
}
BENCHMARK(BM_StabilityMapCell);

// Serial vs parallel wall-clock on a fixed stability-map grid, written as
// a machine-readable artifact so the perf trajectory of the exec layer is
// tracked from PR to PR.
void emit_parallel_sweep_json() {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  constexpr int kGrid = 16;
  const auto gi = analysis::logspace(0.125, 32.0, kGrid);
  const auto gd = analysis::logspace(1.0 / 1024.0, 0.5, kGrid);

  auto time_map = [&](int threads) {
    const auto start = std::chrono::steady_clock::now();
    const auto map = analysis::compute_stability_map(
        base, gi, gd,
        {.numeric_level = core::ModelLevel::Linearized, .threads = threads});
    benchmark::DoNotOptimize(map.numeric_stable);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const double serial = time_map(1);
  const double parallel = time_map(0);
  const int hw = exec::resolve_threads(0);

  JsonWriter json;
  json.add("benchmark", "parallel_sweep");
  json.add("grid", kGrid);
  json.add("cells", kGrid * kGrid);
  json.add("hardware_threads", hw);
  json.add("serial_seconds", serial);
  json.add("parallel_seconds", parallel);
  json.add("speedup", parallel > 0.0 ? serial / parallel : 0.0);
  const auto path = bench::output_dir() / "BENCH_parallel_sweep.json";
  if (json.write_file(path)) {
    std::printf("parallel sweep: %dx%d grid, serial %.3f s, parallel %.3f s "
                "on %d hardware threads (%.2fx)\n  [artifact] %s\n",
                kGrid, kGrid, serial, parallel, hw,
                parallel > 0.0 ? serial / parallel : 0.0,
                path.string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_parallel_sweep_json();
  return 0;
}
