// E12: performance microbenchmarks (google-benchmark) for the numeric
// substrates, including the event-detection ablation cost, plus the
// tracked perf artifacts: the serial-vs-parallel stability-map
// comparison (BENCH_parallel_sweep.json), the span-tracing overhead
// measurement (BENCH_tracing_overhead.json), the per-subsystem
// self-time breakdown (BENCH_subsystem_profile.json), and the
// discrete-event-core dispatch rate (BENCH_sim_throughput.json).  Diff
// any of them against a committed baseline with tools/bcn_bench_diff.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stability_map.h"
#include "analysis/sweep.h"
#include "bench_util.h"
#include "common/json.h"
#include "core/analytic_tracer.h"
#include "core/poincare.h"
#include "core/simulate.h"
#include "exec/parallel_for.h"
#include "obs/tracing.h"
#include "ode/hybrid.h"
#include "ode/integrate.h"
#include "ode/steppers.h"
#include "sim/multihop.h"
#include "sim/network.h"
#include "sim/parking_lot.h"

namespace {

using namespace bcn;

const ode::Rhs kOscillator = [](double, Vec2 z) -> Vec2 {
  return {z.y, -z.x};
};

void BM_Rk4Step(benchmark::State& state) {
  Vec2 z{1.0, 0.0};
  double t = 0.0;
  for (auto _ : state) {
    z = ode::rk4_step(kOscillator, t, z, 1e-3);
    t += 1e-3;
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_Rk4Step);

void BM_Dopri5TrialStep(benchmark::State& state) {
  const ode::Dopri5 stepper(kOscillator);
  Vec2 z{1.0, 0.0};
  Vec2 k1 = stepper.compute_k1(0.0, z);
  for (auto _ : state) {
    const auto step = stepper.trial_step(0.0, z, k1, 1e-3);
    benchmark::DoNotOptimize(step.z_new);
  }
}
BENCHMARK(BM_Dopri5TrialStep);

void BM_AdaptiveIntegrateOscillator(benchmark::State& state) {
  for (auto _ : state) {
    const auto res =
        ode::integrate_adaptive(kOscillator, 0.0, {1.0, 0.0}, 10.0);
    benchmark::DoNotOptimize(res.trajectory.size());
  }
}
BENCHMARK(BM_AdaptiveIntegrateOscillator);

void BM_HybridBcnMillisecond(benchmark::State& state) {
  const core::FluidModel model(core::BcnParams::standard_draft(),
                               core::ModelLevel::Nonlinear);
  core::FluidRunOptions opts;
  opts.duration = 1e-3;
  for (auto _ : state) {
    const auto run = core::simulate_fluid(model, opts);
    benchmark::DoNotOptimize(run.max_x);
  }
  state.SetLabel("1 ms of model time, event-localized switching");
}
BENCHMARK(BM_HybridBcnMillisecond);

void BM_NaiveFixedStepBcnMillisecond(benchmark::State& state) {
  // Ablation partner for BM_HybridBcnMillisecond at a comparable step
  // count (the hybrid driver takes ~1e3 steps for this horizon).
  const core::BcnParams p = core::BcnParams::standard_draft();
  const core::FluidModel model(p, core::ModelLevel::Nonlinear);
  const auto inc = model.increase_rhs();
  const auto dec = model.decrease_rhs();
  const double k = p.k();
  const ode::Rhs switched = [&](double t, Vec2 z) {
    return -(z.x + k * z.y) > 0.0 ? inc(t, z) : dec(t, z);
  };
  ode::FixedStepOptions opts;
  opts.step = 1e-6;
  for (auto _ : state) {
    const auto traj =
        ode::integrate_fixed(switched, 0.0, {-p.q0, 0.0}, 1e-3, opts);
    benchmark::DoNotOptimize(traj.size());
  }
}
BENCHMARK(BM_NaiveFixedStepBcnMillisecond);

void BM_AnalyticTracer(benchmark::State& state) {
  const core::AnalyticTracer tracer(core::BcnParams::standard_draft());
  core::AnalyticTraceOptions opts;
  opts.max_rounds = 64;
  for (auto _ : state) {
    const auto trace = tracer.trace(opts);
    benchmark::DoNotOptimize(trace.max_x);
  }
  state.SetLabel("64 closed-form rounds");
}
BENCHMARK(BM_AnalyticTracer);

void BM_PacketSimulatorMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::NetworkConfig cfg;
    cfg.params = core::BcnParams::standard_draft();
    cfg.params.num_sources = state.range(0);
    cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
    sim::Network net(cfg);
    state.ResumeTiming();
    net.run(sim::kMillisecond);
    benchmark::DoNotOptimize(net.queue_bits());
  }
  state.SetLabel("1 ms of 10 Gbps traffic");
}
BENCHMARK(BM_PacketSimulatorMillisecond)->Arg(5)->Arg(50);

void BM_StabilityMapCell(benchmark::State& state) {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  core::NumericVerdictOptions nopts;
  nopts.level = core::ModelLevel::Linearized;
  for (auto _ : state) {
    const auto verdict = core::numeric_strong_stability(base, nopts);
    benchmark::DoNotOptimize(verdict.max_x);
  }
  state.SetLabel("one (Gi, Gd) map cell, linearized ground truth");
}
BENCHMARK(BM_StabilityMapCell);

// Serial vs parallel wall-clock on a fixed stability-map grid, written as
// a machine-readable artifact so the perf trajectory of the exec layer is
// tracked from PR to PR.
void emit_parallel_sweep_json() {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  constexpr int kGrid = 16;
  const auto gi = analysis::logspace(0.125, 32.0, kGrid);
  const auto gd = analysis::logspace(1.0 / 1024.0, 0.5, kGrid);

  auto time_map = [&](int threads) {
    const auto start = std::chrono::steady_clock::now();
    const auto map = analysis::compute_stability_map(
        base, gi, gd,
        {.numeric_level = core::ModelLevel::Linearized, .threads = threads});
    benchmark::DoNotOptimize(map.numeric_stable);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const double serial = time_map(1);
  const double parallel = time_map(0);
  const int hw = exec::resolve_threads(0);

  JsonWriter json;
  json.add("benchmark", "parallel_sweep");
  json.add("grid", kGrid);
  json.add("cells", kGrid * kGrid);
  json.add("hardware_threads", hw);
  json.add("serial_seconds", serial);
  json.add("parallel_seconds", parallel);
  json.add("speedup", parallel > 0.0 ? serial / parallel : 0.0);
  const auto path = bench::output_dir() / "BENCH_parallel_sweep.json";
  if (json.write_file(path)) {
    std::printf("parallel sweep: %dx%d grid, serial %.3f s, parallel %.3f s "
                "on %d hardware threads (%.2fx)\n  [artifact] %s\n",
                kGrid, kGrid, serial, parallel, hw,
                parallel > 0.0 ? serial / parallel : 0.0,
                path.string().c_str());
  }
}

// The acceptance budget for span tracing: the same stability-map grid
// timed with tracing disabled and enabled.  Each map cell emits an
// analysis.map_cell span (plus exec.* spans underneath), so this is the
// realistic per-span cost at the instrumentation granularity the
// subsystems actually use — not a tight loop around an empty span.
void emit_tracing_overhead_json() {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  constexpr int kGrid = 12;
  constexpr int kReps = 5;
  const auto gi = analysis::logspace(0.25, 16.0, kGrid);
  const auto gd = analysis::logspace(1.0 / 512.0, 0.25, kGrid);

  auto time_map = [&] {
    const auto start = std::chrono::steady_clock::now();
    const auto map = analysis::compute_stability_map(
        base, gi, gd,
        {.numeric_level = core::ModelLevel::Linearized, .threads = 0});
    benchmark::DoNotOptimize(map.numeric_stable);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Alternate disabled/enabled reps and take best-of-N per side: running
  // one side to completion first lets clock/cache drift across the run
  // masquerade as tracing cost (or hide it), while interleaving exposes
  // both sides to the same drift.  Warm up once untimed.
  obs::tracing_disable();
  time_map();
  double disabled = std::numeric_limits<double>::infinity();
  double enabled = std::numeric_limits<double>::infinity();
  std::size_t spans = 0;
  for (int i = 0; i < kReps; ++i) {
    obs::tracing_disable();
    disabled = std::min(disabled, time_map());
    obs::tracing_enable();
    enabled = std::min(enabled, time_map());
    obs::tracing_disable();
    spans = obs::tracing_drain();
    obs::tracing_clear();
  }

  const double overhead =
      disabled > 0.0 ? (enabled - disabled) / disabled * 100.0 : 0.0;

  JsonWriter json;
  json.add("benchmark", "tracing_overhead");
  json.add("grid", kGrid);
  json.add("cells", kGrid * kGrid);
  json.add("reps", kReps);
  json.add("disabled_seconds", disabled);
  json.add("enabled_seconds", enabled);
  json.add("overhead_percent", overhead);
  json.add("spans_recorded", static_cast<std::int64_t>(spans));
  const auto path = bench::output_dir() / "BENCH_tracing_overhead.json";
  if (json.write_file(path)) {
    std::printf("tracing overhead: %dx%d map, disabled %.3f s, enabled "
                "%.3f s (%+.2f%%, %zu spans)\n  [artifact] %s\n",
                kGrid, kGrid, disabled, enabled, overhead, spans,
                path.string().c_str());
  }
}

// Where does the wall-clock go?  One traced mixed workload touching every
// instrumented subsystem, self-time grouped by span-name prefix.
void emit_subsystem_profile_json() {
  obs::tracing_clear();
  obs::tracing_enable();
  {
    // ode + core: hybrid fluid run and a handful of return-map iterations.
    const core::BcnParams p = core::BcnParams::standard_draft();
    const core::FluidModel model(p, core::ModelLevel::Nonlinear);
    core::FluidRunOptions fopts;
    fopts.duration = 1.5e-3;
    const auto run = core::simulate_fluid(model, fopts);
    benchmark::DoNotOptimize(run.max_x);
    core::PoincareOptions popts;
    popts.max_time = 0.01;
    const core::PoincareMap pmap(model, popts);
    for (const double s : {1e10, 3e10, 1e11}) {
      benchmark::DoNotOptimize(pmap.map(s));
    }

    // analysis + exec: a parallel stability-map grid.
    core::BcnParams base = p;
    base.buffer = 12e6;
    base.qsc = 11e6;
    const auto map = analysis::compute_stability_map(
        base, analysis::logspace(0.25, 16.0, 6),
        analysis::logspace(1.0 / 512.0, 0.25, 6),
        {.numeric_level = core::ModelLevel::Linearized, .threads = 0});
    benchmark::DoNotOptimize(map.numeric_stable);

    // sim: one millisecond of packet traffic.
    sim::NetworkConfig cfg;
    cfg.params = p;
    cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
    sim::Network net(cfg);
    net.run(sim::kMillisecond);
    benchmark::DoNotOptimize(net.queue_bits());
  }
  obs::tracing_disable();
  obs::tracing_drain();
  const auto profile = obs::build_self_profile(obs::tracing_spans());
  obs::tracing_clear();

  // Fold span self-time into subsystem buckets by name prefix
  // ("exec.chunk" -> "exec").  std::map keeps the artifact key-sorted.
  std::map<std::string, double> self_seconds;
  std::map<std::string, std::uint64_t> calls;
  double total = 0.0;
  for (const auto& e : profile) {
    const auto dot = e.name.find('.');
    const std::string prefix =
        dot == std::string::npos ? e.name : e.name.substr(0, dot);
    self_seconds[prefix] += e.self_seconds;
    calls[prefix] += e.calls;
    total += e.self_seconds;
  }

  JsonWriter json;
  json.add("benchmark", "subsystem_profile");
  json.add("total_self_seconds", total);
  json.add("span_names", static_cast<std::int64_t>(profile.size()));
  for (const auto& [prefix, secs] : self_seconds) {
    json.add(prefix + "_self_seconds", secs);
    json.add(prefix + "_calls", static_cast<std::int64_t>(calls[prefix]));
  }
  const auto path = bench::output_dir() / "BENCH_subsystem_profile.json";
  if (json.write_file(path)) {
    std::printf("subsystem profile: %.3f s of self-time across %zu span "
                "names\n",
                total, profile.size());
    for (const auto& [prefix, secs] : self_seconds) {
      std::printf("  %-10s %8.3f s (%5.1f%%, %llu calls)\n", prefix.c_str(),
                  secs, total > 0.0 ? secs / total * 100.0 : 0.0,
                  static_cast<unsigned long long>(calls[prefix]));
    }
    std::printf("  [artifact] %s\n", path.string().c_str());
  }
}

// Acceptance budget for the runtime invariant monitors
// (BENCH_monitor_overhead.json): the reference single-bottleneck packet
// run timed with monitors off and with every monitor armed but quiet
// (all invariants hold, so no violation path executes).  Disabled cost
// is one null test per frame at the switch hooks; armed-quiet cost adds
// a comparison pair per frame plus the per-sample predicates and the
// flight-recorder ring writes.  Budget: armed-but-quiet <= 2%.
void emit_monitor_overhead_json() {
  // A long horizon and generous best-of-N: the per-frame hook costs ~1 ns,
  // so short runs drown the measurement in scheduler/clock jitter.
  constexpr int kReps = 9;
  constexpr sim::SimTime kDuration = 100 * sim::kMillisecond;

  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;

  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  auto time_run = [&](bool armed) {
    sim::NetworkConfig cfg;
    cfg.params = p;
    cfg.initial_rate = p.capacity / p.num_sources;
    cfg.record_timelines = false;
    cfg.record_interval = 20 * sim::kMicrosecond;
    if (armed) {
      cfg.monitors.spec = obs::MonitorSpec::all();
      cfg.monitors.action = obs::ViolationAction::Record;
    }
    const auto start = std::chrono::steady_clock::now();
    sim::Network net(cfg);
    net.run(kDuration);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    benchmark::DoNotOptimize(net.stats().counters.frames_delivered);
    if (armed) {
      checks = net.monitor().checks();
      violations = net.monitor().violation_count();
    }
    return seconds;
  };

  // Interleave the two sides (same rationale as the tracing-overhead
  // artifact: shared exposure to clock/cache drift) and keep best-of-N.
  // The armed side can come out *faster* than the default run: arming
  // switches the event trace into the bounded flight-recorder ring, so
  // it overwrites 4096 slots where the default run grows an unbounded
  // vector — a memory-traffic win that outweighs the ~1 ns/frame hook.
  // The gate is one-sided: armed-quiet must not exceed disabled by more
  // than a few percent.
  time_run(false);  // warm-up, untimed
  double disabled = std::numeric_limits<double>::infinity();
  double armed = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kReps; ++i) {
    disabled = std::min(disabled, time_run(false));
    armed = std::min(armed, time_run(true));
  }
  const double overhead =
      disabled > 0.0 ? (armed - disabled) / disabled * 100.0 : 0.0;

  JsonWriter json;
  json.add("benchmark", "monitor_overhead");
  json.add("reps", kReps);
  json.add("duration_seconds", sim::to_seconds(kDuration));
  json.add("disabled_seconds", disabled);
  json.add("armed_quiet_seconds", armed);
  json.add("overhead_percent", overhead);
  json.add("checks", static_cast<std::int64_t>(checks));
  json.add("violations", static_cast<std::int64_t>(violations));
  const auto path = bench::output_dir() / "BENCH_monitor_overhead.json";
  if (json.write_file(path)) {
    std::printf("monitor overhead: disabled %.4f s, armed-quiet %.4f s "
                "(%+.2f%%, %llu checks, %llu violations)\n  [artifact] %s\n",
                disabled, armed, overhead,
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(violations),
                path.string().c_str());
  }
}

// Event-dispatch throughput of the discrete-event core
// (BENCH_sim_throughput.json): events/sec over the three packet
// topologies at several flow counts, plus a cancel/reschedule-heavy
// timer-churn stress.  Maximum-throughput configuration -- timeline and
// event-trace recording off, sparse sampling -- so the number tracks the
// scheduler, not the observability layer.  Best-of-N wall clock.
void emit_sim_throughput_json() {
  constexpr int kReps = 3;
  auto best_of = [&](auto&& fn) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t events = 0;
    for (int i = 0; i < kReps; ++i) {
      const auto start = std::chrono::steady_clock::now();
      events = fn();
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
    }
    return std::pair<std::size_t, double>{events, best};
  };

  JsonWriter json;
  json.add("benchmark", "sim_throughput");
  json.add("reps", kReps);
  std::printf("sim throughput (best of %d):\n", kReps);
  auto report = [&](const std::string& key, std::size_t events,
                    double seconds) {
    const double eps = seconds > 0.0 ? events / seconds : 0.0;
    json.add(key + "_events", static_cast<std::int64_t>(events));
    json.add(key + "_seconds", seconds);
    json.add(key + "_events_per_sec", eps);
    std::printf("  %-16s %9zu events in %.4f s -> %8.3f M events/s\n",
                key.c_str(), events, seconds, eps / 1e6);
  };

  // The packet_vs_fluid reference parameter set (also pinned by
  // DeterminismTest): aggregate initial rate equals capacity, so the
  // event count stays ~constant across flow counts and the sweep
  // isolates scheduler scaling, not scenario dynamics.
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  for (const int n : {5, 50, 200, 500}) {
    const auto [events, seconds] = best_of([&] {
      sim::NetworkConfig cfg;
      cfg.params = p;
      cfg.params.num_sources = n;
      cfg.initial_rate = cfg.params.capacity / n;
      cfg.record_timelines = false;
      cfg.record_events = false;
      cfg.record_interval = sim::kMillisecond;
      sim::Network net(cfg);
      net.run(50 * sim::kMillisecond);
      return net.simulator().executed();
    });
    report("single_hop_n" + std::to_string(n), events, seconds);
  }

  {
    const auto [events, seconds] = best_of([&] {
      const sim::MultihopConfig cfg;
      return sim::run_victim_scenario(cfg).events_executed;
    });
    report("multihop", events, seconds);
  }

  {
    const auto [events, seconds] = best_of([&] {
      sim::ParkingLotConfig cfg;
      cfg.record_events = false;
      return sim::run_parking_lot(cfg).events_executed;
    });
    report("parking_lot", events, seconds);
  }

  {
    // Raw scheduler stress: 500k schedule ops across 1024 timer lanes,
    // cancelling any pending timer in the lane first, draining a slice of
    // the horizon every 256 ops.  This is the workload the indexed heap's
    // in-place cancel exists for.
    const auto [events, seconds] = best_of([&] {
      sim::Simulator s;
      struct Sink : sim::EventTarget {
        void on_event(const sim::SimEvent&) override {}
      } sink;
      std::uint64_t rng = 0x9e3779b97f4a7c15ull;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      std::vector<sim::EventId> lanes(1024, sim::kInvalidEvent);
      for (int op = 0; op < 500'000; ++op) {
        const std::size_t lane = next() & 1023;
        if (lanes[lane] != sim::kInvalidEvent) s.cancel(lanes[lane]);
        lanes[lane] =
            s.schedule_event(s.now() + 1 + (next() & 4095), &sink,
                             sim::EventKind::Tick, 0);
        if ((op & 255) == 0) s.run_until(s.now() + 512);
      }
      s.run_until(s.now() + 8192);
      // Ops, not dispatches: most lanes are cancelled before they fire.
      return static_cast<std::size_t>(500'000);
    });
    report("timer_churn", events, seconds);
  }

  const auto path = bench::output_dir() / "BENCH_sim_throughput.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_parallel_sweep_json();
  emit_tracing_overhead_json();
  emit_monitor_overhead_json();
  emit_subsystem_profile_json();
  emit_sim_throughput_json();
  return 0;
}
