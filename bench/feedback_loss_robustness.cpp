// E20 (extension): robustness of the BCN loop to feedback loss.
//
// The fluid model -- and the paper's phase-plane taxonomy built on it --
// assumes every sigma notification reaches its rate regulator.  This
// bench degrades that assumption with the fault-injection layer
// (sim/faults.h): it sweeps the BCN-loss probability across three gain
// settings (draft, high-Gi, heavy sigma weight) and measures how the
// queue excursion, tail oscillation amplitude, and delivered throughput
// degrade versus the lossless baseline of the same gains.  Lost negative
// feedback lets the queue overshoot further before the loop reacts; lost
// positive feedback slows recovery -- both stretch the limit cycle the
// taxonomy predicts for the operating point.
//
// Artifacts: BENCH_feedback_loss.json (per-cell metrics, keyed
// "<gains>.p<loss>.*" -- deterministic, byte-identical across runs of
// the same plan) and feedback_loss_timelines.csv / _events.csv for the
// representative draft-gain p=0.3 run.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/crossval.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/json.h"
#include "common/table.h"
#include "exec/parallel_for.h"
#include "runner.h"
#include "sim/network.h"

using namespace bcn;

namespace {

struct GainSetting {
  const char* name;
  double gi;
  double gd;
  double w;
};

constexpr GainSetting kGains[] = {
    {"draft", 0.5, 1.0 / 128.0, 2.0},
    {"high_gi", 2.0, 1.0 / 128.0, 2.0},
    {"heavy_w", 0.5, 1.0 / 128.0, 8.0},
};

constexpr double kLossRates[] = {0.0, 0.1, 0.3, 0.5};
constexpr double kDuration = 0.04;  // seconds

struct CellResult {
  double peak_queue = 0.0;       // bits
  double tail_p2p = 0.0;         // tail peak-to-peak queue swing [bits]
  double throughput = 0.0;       // bits/s
  std::uint64_t drops = 0;
  std::uint64_t bcn_dropped = 0;
  std::uint64_t bcn_sent = 0;
};

core::BcnParams cell_params(const GainSetting& g) {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  p.ru = 8e6;
  p.gi = g.gi;
  p.gd = g.gd;
  p.w = g.w;
  return p;
}

sim::NetworkConfig cell_config(const GainSetting& g, double loss,
                               const sim::FaultPlan& base) {
  sim::NetworkConfig cfg;
  cfg.params = cell_params(g);
  cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
  cfg.record_interval = 20 * sim::kMicrosecond;
  cfg.record_timelines = false;
  // The sweep owns the BCN-loss axis; everything else (seed, extra fault
  // classes) comes from --faults so a custom plan composes with the grid.
  cfg.faults = base;
  cfg.faults.bcn_drop_p = loss;
  return cfg;
}

CellResult run_cell(const sim::NetworkConfig& cfg) {
  sim::Network net(cfg);
  net.run(sim::from_seconds(kDuration));
  const auto& st = net.stats();

  CellResult r;
  r.peak_queue = st.max_queue();
  double lo = 1e18, hi = -1e18;
  for (const auto& tp : st.trace()) {
    if (sim::to_seconds(tp.t) < kDuration / 2) continue;
    lo = std::min(lo, tp.queue_bits);
    hi = std::max(hi, tp.queue_bits);
  }
  r.tail_p2p = hi > lo ? hi - lo : 0.0;
  r.throughput = st.throughput(sim::from_seconds(kDuration));
  r.drops = st.counters.frames_dropped;
  r.bcn_dropped = net.fault_counters().bcn_dropped;
  r.bcn_sent = st.counters.bcn_negative + st.counters.bcn_positive;
  return r;
}

int run(bench::RunContext& ctx) {
  std::printf("=== E20: feedback-loss robustness ===\n");
  std::printf("BCN-loss probability x (Gi, Gd, w) on the single-bottleneck "
              "network (N = 5, C = 10 Gbps, %.0f ms); fault seed %llu.\n\n",
              kDuration * 1e3,
              static_cast<unsigned long long>(ctx.faults.seed));

  constexpr std::size_t kNumGains = std::size(kGains);
  constexpr std::size_t kNumLoss = std::size(kLossRates);

  // One independent simulation per (gains, loss) cell; parallel_map keeps
  // the output index-ordered, so the artifact is thread-count invariant.
  const auto cells = exec::parallel_map<CellResult>(
      kNumGains * kNumLoss,
      [&](std::size_t i) {
        const GainSetting& g = kGains[i / kNumLoss];
        const double loss = kLossRates[i % kNumLoss];
        return run_cell(cell_config(g, loss, ctx.faults));
      },
      {.threads = ctx.threads});

  JsonWriter json;
  json.add("benchmark", "feedback_loss");
  json.add("duration_seconds", kDuration);
  json.add("fault_seed", static_cast<std::int64_t>(ctx.faults.seed));
  TablePrinter table({"gains", "loss p", "BCN lost/sent", "peak q (Mbit)",
                      "tail p2p (Mbit)", "thpt (Gbps)", "drops",
                      "peak vs lossless"});
  for (std::size_t gi = 0; gi < kNumGains; ++gi) {
    const CellResult& lossless = cells[gi * kNumLoss];
    for (std::size_t li = 0; li < kNumLoss; ++li) {
      const CellResult& c = cells[gi * kNumLoss + li];
      const double peak_ratio =
          lossless.peak_queue > 0.0 ? c.peak_queue / lossless.peak_queue : 0.0;
      const std::string key =
          strf("%s.p%02.0f.", kGains[gi].name, kLossRates[li] * 100.0);
      json.add(key + "peak_queue_bits", c.peak_queue);
      json.add(key + "tail_p2p_bits", c.tail_p2p);
      json.add(key + "throughput_bps", c.throughput);
      json.add(key + "frames_dropped", static_cast<std::int64_t>(c.drops));
      json.add(key + "bcn_dropped", static_cast<std::int64_t>(c.bcn_dropped));
      json.add(key + "peak_queue_vs_lossless", peak_ratio);
      table.add_row({kGains[gi].name,
                     TablePrinter::format(kLossRates[li], 2),
                     strf("%llu/%llu",
                          static_cast<unsigned long long>(c.bcn_dropped),
                          static_cast<unsigned long long>(c.bcn_sent)),
                     TablePrinter::format(c.peak_queue / 1e6, 4),
                     TablePrinter::format(c.tail_p2p / 1e6, 4),
                     TablePrinter::format(c.throughput / 1e9, 4),
                     TablePrinter::format(static_cast<double>(c.drops)),
                     TablePrinter::format(peak_ratio, 3)});
    }
  }
  std::fputs(table.to_string("feedback-loss sweep").c_str(), stdout);

  const auto path = bench::output_dir() / "BENCH_feedback_loss.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }

  // Representative degraded run (draft gains, 30%% loss) with timelines
  // and the causal event trace: fault_bcn_dropped rows mark exactly which
  // notifications never closed their Sent -> Applied pair.  When --faults
  // carries its own bcn_drop the plan wins over the sweep default, so
  // `--faults bcn_drop=1` turns this into the total-feedback-blackout
  // post-mortem scenario from EXPERIMENTS.md.
  sim::NetworkConfig rep = cell_config(kGains[0], 0.3, ctx.faults);
  if (ctx.faults.bcn_drop_p > 0.0) rep.faults.bcn_drop_p = ctx.faults.bcn_drop_p;
  rep.record_timelines = true;
  rep.mechanism = ctx.mechanism;
  // --initial-rate overrides the per-source start (bits/s).  The default
  // C/N is the fluid analysis start; starting above the fair share turns
  // feedback loss into a genuine blow-up (the queue climbs to qsc and
  // PAUSE storms), which is what the monitors' crosscheck is for.
  rep.initial_rate = ctx.args->get_double("initial-rate", rep.initial_rate);
  rep.monitors = ctx.monitors;
  if (rep.monitors.spec.any()) {
    rep.monitors.fluid_strongly_stable =
        analysis::fluid_stability_hint(rep.params, rep.mechanism);
  }
  sim::Network net(rep);
  net.run(sim::from_seconds(kDuration));
  bench::record_sim_metrics(net.stats(), ctx.metrics);
  if (ctx.metrics) {
    net.simulator().export_metrics(*ctx.metrics);
    sim::export_fault_metrics(net.fault_counters(), *ctx.metrics);
  }
  bench::record_monitor_metrics(net.monitor(), ctx.metrics);
  bench::export_observability(net.stats(), "feedback_loss");

  std::printf("\nReading: the sigma loop is strikingly loss-tolerant -- the "
              "1/pm sampling emits thousands of notifications per "
              "transient, so even 50%% loss leaves enough surviving "
              "feedback to place the equilibrium and hold throughput at "
              "capacity.  The damage shows up in the tail: the "
              "steady-state oscillation band widens with the loss rate "
              "(each lost negative lets the queue wander further before "
              "the next surviving sample corrects it), and the high-Gi "
              "setting pays the most peak-queue variance because each "
              "surviving positive message steps harder into the backlog.  "
              "Feedback loss degrades regulation precision long before it "
              "threatens stability -- consistent with the redundancy "
              "argument for per-frame sampling.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("feedback_loss_robustness",
               "E20: queue/oscillation degradation under BCN feedback loss",
               run, "initial-rate")
