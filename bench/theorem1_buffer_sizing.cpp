// E8 / paper Section IV remarks: Theorem 1 buffer sizing.
//
// Regenerates the paper's numeric example (N=50, C=10 Gbps, q0=2.5 Mbit,
// Gi=4, Gd=1/128, Ru=8 Mbit -> required buffer ~13.75 Mbit vs the 5 Mbit
// bandwidth-delay product), then sweeps N, C, q0, Gi, Gd to exhibit the
// scaling max q ~ sqrt(Ru Gi N / (Gd C)) q0 the paper derives, each row
// cross-checked against the measured numeric maximum.
#include <cmath>
#include <cstdio>

#include "analysis/boundary.h"
#include "bench_util.h"
#include "runner.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/simulate.h"
#include "core/stability.h"

using namespace bcn;

namespace {

double measured_peak_queue(const core::BcnParams& p, core::ModelLevel level) {
  core::BcnParams open = p;
  open.buffer = 1e12;  // effectively unbounded: measure the raw transient
  open.qsc = 0.5e12;
  const auto verdict = core::numeric_strong_stability(open, {.level = level});
  return verdict.max_x + p.q0;
}

}  // namespace

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Theorem 1: buffer sizing for strong stability ===\n");
  const core::BcnParams p = core::BcnParams::standard_draft();
  bench::print_params(p);

  // Note: the paper states a 0.5 us propagation delay yet calls the BDP
  // "5 Mbits"; 10 Gbps x 0.5 us is 5 kbit, so the quoted figure matches a
  // 0.5 ms RTT (see EXPERIMENTS.md errata).  We keep the paper's 5 Mbit
  // comparison point.
  std::printf(
      "\npaper example: BDP-rule buffer quoted as 5 Mbit (literal "
      "C x 0.5us = %.3g kbit); Theorem 1 requires B > %.4g Mbit "
      "(paper: 13.75 Mbit) = %.2fx the 5 Mbit buffer\n",
      10e9 * 0.5e-6 / 1e3, p.theorem1_required_buffer() / 1e6,
      p.theorem1_required_buffer() / 5e6);

  // --- sweep N ---------------------------------------------------------
  TablePrinter n_table({"N", "required B (Mbit)", "peak q linearized (Mbit)",
                        "peak q nonlinear (Mbit)", "empirical B_min "
                        "nonlinear (Mbit)", "bound holds"});
  for (const double n : {5.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
    core::BcnParams q = p;
    q.num_sources = n;
    const double req = q.theorem1_required_buffer();
    const double lin = measured_peak_queue(q, core::ModelLevel::Linearized);
    const double non = measured_peak_queue(q, core::ModelLevel::Nonlinear);
    const auto b_min = analysis::min_stable_buffer(
        q, {.numeric = {.level = core::ModelLevel::Nonlinear}});
    n_table.add_row({TablePrinter::format(n),
                     TablePrinter::format(req / 1e6),
                     TablePrinter::format(lin / 1e6),
                     TablePrinter::format(non / 1e6),
                     b_min ? TablePrinter::format(*b_min / 1e6) : "-",
                     (lin <= req && non <= req) ? "yes" : "VIOLATED"});
  }
  std::fputs(n_table
                 .to_string("\nsweep N (peak queue ~ sqrt(N)); the "
                            "linearized bound is near-tight, the nonlinear "
                            "system needs ~2x less")
                 .c_str(),
             stdout);

  // --- sweep q0 --------------------------------------------------------
  TablePrinter q_table({"q0 (Mbit)", "required B (Mbit)",
                        "peak q linearized (Mbit)", "warm-up T0 (us)"});
  for (const double q0 : {0.5e6, 1e6, 2.5e6, 5e6, 10e6}) {
    core::BcnParams q = p;
    q.q0 = q0;
    q.buffer = 100.0 * q0;
    q.qsc = 50.0 * q0;
    q_table.add_row(
        {TablePrinter::format(q0 / 1e6),
         TablePrinter::format(q.theorem1_required_buffer() / 1e6),
         TablePrinter::format(
             measured_peak_queue(q, core::ModelLevel::Linearized) / 1e6),
         TablePrinter::format(q.warmup_duration() * 1e6)});
  }
  std::fputs(q_table
                 .to_string("\nsweep q0 (peak ~ q0; small q0 prolongs "
                            "start-up, the paper's trade-off)")
                 .c_str(),
             stdout);

  // --- sweep Gi / Gd: shrinking the required buffer ---------------------
  TablePrinter g_table({"Gi", "Gd", "required B (Mbit)",
                        "convergence cycles (est.)"});
  for (const auto& [gi, gd] : std::vector<std::pair<double, double>>{
           {4.0, 1.0 / 128.0},
           {1.0, 1.0 / 128.0},
           {4.0, 1.0 / 32.0},
           {1.0, 1.0 / 32.0},
           {0.25, 1.0 / 8.0}}) {
    core::BcnParams q = p;
    q.gi = gi;
    q.gd = gd;
    const auto trace_ratio =
        core::AnalyticTracer(q).trace().contraction_ratio();
    const double cycles =
        trace_ratio && *trace_ratio < 1.0 ? std::log(0.01) / std::log(*trace_ratio)
                                          : -1.0;
    g_table.add_row({TablePrinter::format(gi), TablePrinter::format(gd),
                     TablePrinter::format(q.theorem1_required_buffer() / 1e6),
                     TablePrinter::format(cycles, 3)});
  }
  std::fputs(g_table
                 .to_string("\ngain trade-off: smaller Gi / larger Gd "
                            "shrink the buffer but slow convergence")
                 .c_str(),
             stdout);

  // --- w / pm invariance (paper: they do not move the stability bound) --
  TablePrinter w_table({"w", "pm", "required B (Mbit)",
                        "peak q linearized (Mbit)"});
  for (const auto& [w, pm] : std::vector<std::pair<double, double>>{
           {1.0, 0.01}, {2.0, 0.01}, {4.0, 0.01}, {2.0, 0.02}, {2.0, 0.05}}) {
    core::BcnParams q = p;
    q.w = w;
    q.pm = pm;
    w_table.add_row(
        {TablePrinter::format(w), TablePrinter::format(pm),
         TablePrinter::format(q.theorem1_required_buffer() / 1e6),
         TablePrinter::format(
             measured_peak_queue(q, core::ModelLevel::Linearized) / 1e6)});
  }
  std::fputs(w_table
                 .to_string("\nw and pm leave the Theorem-1 bound unchanged "
                            "(transient-only knobs)")
                 .c_str(),
             stdout);

  // CSV artifact of the N sweep for downstream plotting.
  CsvWriter csv({"N", "required_B_bits", "peak_linearized", "peak_nonlinear"});
  for (const double n : {5.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
    core::BcnParams q = p;
    q.num_sources = n;
    csv.add_row({n, q.theorem1_required_buffer(),
                 measured_peak_queue(q, core::ModelLevel::Linearized),
                 measured_peak_queue(q, core::ModelLevel::Nonlinear)});
  }
  const auto path = bench::output_dir() / "theorem1_sweep.csv";
  if (csv.write_file(path)) {
    std::printf("\n  [artifact] %s\n", path.string().c_str());
  }
  return 0;
}

}  // namespace

BCN_EXPERIMENT("theorem1_buffer_sizing", "E8: Theorem-1 buffer sizing and scaling sweeps", run)
