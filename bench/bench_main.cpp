// The one main() shared by every registered bench binary.
#include "runner.h"

int main(int argc, char** argv) {
  return bcn::bench::bench_main(argc, argv);
}
