// E17 (extension): robustness to flow churn.  The fluid model fixes N,
// but Theorem 1's required buffer grows with sqrt(N) -- so a buffer sized
// for the worst-case N should remain strongly stable when the active-flow
// count fluctuates below it.  On/off sources with staggered duty cycles
// vary the active count between ~N/2 and N.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "sim/network.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E17: BCN under flow churn ===\n");
  core::BcnParams p;
  p.num_sources = 20;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  p.buffer = 1.2 * p.theorem1_required_buffer();
  p.qsc = 0.95 * p.buffer;
  bench::print_params(p);
  std::printf("buffer sized 1.2x the Theorem-1 requirement for the FULL "
              "N = %g\n\n", p.num_sources);

  TablePrinter table({"traffic", "drops", "peak q (Mbit)",
                      "tail mean q (Mbit)", "tail p2p q (Mbit)",
                      "throughput (Gbps)", "Jain index"});
  std::vector<plot::Series> series;

  struct Scenario {
    const char* name;
    sim::TrafficPattern pattern;
  };
  for (const Scenario s : {Scenario{"steady (all 20 always on)",
                                    sim::TrafficPattern::Saturating},
                           Scenario{"churn (4 ms on / 4 ms off, staggered)",
                                    sim::TrafficPattern::OnOff}}) {
    sim::NetworkConfig cfg;
    cfg.params = p;
    cfg.initial_rate = p.capacity / p.num_sources;
    cfg.pattern = s.pattern;
    cfg.on_time = 4 * sim::kMillisecond;
    cfg.off_time = 4 * sim::kMillisecond;
    cfg.stagger = 400 * sim::kMicrosecond;
    cfg.record_interval = 50 * sim::kMicrosecond;
    sim::Network net(cfg);
    const auto horizon = 80 * sim::kMillisecond;
    net.run(horizon);
    const auto& st = net.stats();

    double tail_sum = 0.0, lo = 1e18, hi = -1e18;
    int n = 0;
    for (const auto& tp : st.trace()) {
      if (tp.t < horizon / 2) continue;
      tail_sum += tp.queue_bits;
      lo = std::min(lo, tp.queue_bits);
      hi = std::max(hi, tp.queue_bits);
      ++n;
    }
    table.add_row(
        {s.name,
         TablePrinter::format(static_cast<double>(st.counters.frames_dropped)),
         TablePrinter::format(st.max_queue() / 1e6, 4),
         TablePrinter::format(tail_sum / n / 1e6, 4),
         TablePrinter::format((hi - lo) / 1e6, 4),
         TablePrinter::format(st.throughput(horizon) / 1e9, 4),
         TablePrinter::format(st.jain_fairness_index(), 4)});

    plot::Series q;
    q.name = s.name;
    for (const auto& tp : st.trace()) {
      q.add(tp.t / 1e6, tp.queue_bits / 1e6);
    }
    series.push_back(std::move(q));
  }
  std::fputs(table.to_string().c_str(), stdout);

  plot::AsciiOptions ascii;
  ascii.title = "queue under steady vs churning traffic";
  ascii.x_label = "t [ms]";
  ascii.y_label = "q [Mbit]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({false, p.buffer / 1e6, "B"});
  svg.ref_lines.push_back({false, p.q0 / 1e6, "q0"});
  bench::emit_figure("churn_robustness", series, ascii, svg);

  std::printf("\nReading: churn widens the queue excursion (every flow "
              "arrival/departure is a new transient) but the worst-case-N "
              "buffer absorbs it: zero drops -- the sqrt(N) monotonicity "
              "of Theorem 1 makes worst-case sizing safe under churn. "
              "(The lower Jain index under churn reflects unequal active "
              "time from the staggered duty cycles, not unfairness among "
              "concurrently active flows.)\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("churn_robustness", "E17: strong stability under on/off flow churn", run)
