#include "runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/json.h"
#include "core/mechanism.h"
#include "exec/thread_pool.h"
#include "obs/tracing.h"

namespace bcn::bench {
namespace {

std::vector<Experiment>& registry() {
  static std::vector<Experiment> experiments;
  return experiments;
}

const std::vector<std::string> kStandardFlags = {
    "help", "list", "run", "threads", "out", "seed", "json", "trace",
    "faults", "mechanism", "map-mode", "monitors", "shards"};

// Strict non-negative integer parse for --shards: ArgParser::get_int
// silently falls back on garbage, but a malformed shard count must be a
// usage error (exit 2), not a silent single-shard run.
bool parse_shard_count(const std::string& text, int* out) {
  if (text.empty() || text.size() > 6) return false;
  int value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [--run name] [--threads n] [--out dir] [--seed n]\n"
      "          [--json bool] [--trace file] [--list] [--help]\n\n"
      "  --threads n   worker threads for parallel sweeps (0 = all\n"
      "                hardware threads, 1 = serial; BCN_THREADS env\n"
      "                fallback)\n"
      "  --out dir     artifact directory (BCN_BENCH_OUT env fallback,\n"
      "                default ./bench_out)\n"
      "  --seed n      seed for randomized scenarios (default 0)\n"
      "  --json bool   write RUN_<name>.json per experiment (default on)\n"
      "  --trace file  record wall-clock spans and write a Chrome\n"
      "                trace-event JSON there (BCN_TRACE env fallback);\n"
      "                the per-experiment self-profile lands in\n"
      "                RUN_<name>.json under profile.*\n"
      "  --run name    run one registered experiment (default: all)\n"
      "  --faults spec inject deterministic faults into packet-simulator\n"
      "                experiments (BCN_FAULTS env fallback); see\n"
      "                docs/FAULTS.md, e.g. --faults bcn_drop=0.2,seed=7\n"
      "  --mechanism m congestion-control mechanism for experiments that\n"
      "                honor it (default bcn); --mechanism list to\n"
      "                enumerate the registry\n"
      "  --map-mode m  stability-map execution strategy for experiments\n"
      "                that compute maps: scalar (default; the legacy\n"
      "                per-cell path), batch (SoA batched integrator), or\n"
      "                adaptive (batched + quadtree boundary refinement)\n"
      "  --shards n    simulator shards for sharded-fabric experiments\n"
      "                (BCN_SHARDS env fallback; default 1, 0 = all\n"
      "                hardware threads; results are shard-invariant)\n"
      "  --monitors s  arm runtime invariant monitors + the flight\n"
      "                recorder on packet-simulator experiments\n"
      "                (BCN_MONITORS env fallback); a violation dumps a\n"
      "                POSTMORTEM_<invariant>.json bundle into --out and\n"
      "                exits with code 3.  e.g. --monitors all or\n"
      "                --monitors queue_bounds,watchdog,window=2ms\n"
      "  --list        list registered experiments and exit\n\n"
      "experiments:\n",
      prog);
  for (const auto& e : experiments()) {
    std::printf("  %-32s %s\n", e.name.c_str(), e.description.c_str());
    for (const auto& flag : e.extra_flags) {
      std::printf("  %-32s   accepts --%s\n", "", flag.c_str());
    }
  }
}

}  // namespace

void register_experiment(Experiment experiment) {
  registry().push_back(std::move(experiment));
  std::sort(registry().begin(), registry().end(),
            [](const Experiment& a, const Experiment& b) {
              return a.name < b.name;
            });
}

const std::vector<Experiment>& experiments() { return registry(); }

int bench_main(int argc, const char* const* argv) {
  const ArgParser args(argc, argv);
  const char* prog = argc > 0 ? argv[0] : "bench";

  if (args.get_bool("help")) {
    print_usage(prog);
    return 0;
  }
  if (args.get_bool("list")) {
    for (const auto& e : experiments()) std::printf("%s\n", e.name.c_str());
    return 0;
  }

  // Select the experiments to run before flag validation so only their
  // extra flags count as known.
  std::vector<const Experiment*> selected;
  const auto run_name = args.get("run");
  for (const auto& e : experiments()) {
    if (!run_name || e.name == *run_name) selected.push_back(&e);
  }
  if (selected.empty()) {
    if (run_name) {
      std::fprintf(stderr, "no experiment named '%s' (try --list)\n",
                   run_name->c_str());
    } else {
      std::fprintf(stderr, "no experiments registered\n");
    }
    return 2;
  }

  std::vector<std::string> known = kStandardFlags;
  for (const Experiment* e : selected) {
    known.insert(known.end(), e->extra_flags.begin(), e->extra_flags.end());
  }
  if (!reject_unknown_flags(args, known)) {
    std::fprintf(stderr, "run with --help for the flag list\n");
    return 2;
  }

  RunContext ctx;
  ctx.args = &args;
  ctx.threads = thread_count(args, 1);
  ctx.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  {
    std::optional<std::string> spec = args.get("shards");
    if (!spec) {
      if (const char* env = std::getenv("BCN_SHARDS")) {
        if (*env) spec = env;
      }
    }
    if (spec) {
      int shards = 1;
      if (!parse_shard_count(*spec, &shards)) {
        std::fprintf(stderr,
                     "--shards: bad shard count '%s' (expected a "
                     "non-negative integer; 0 = all hardware threads)\n",
                     spec->c_str());
        return 2;
      }
      ctx.shards = shards == 0 ? exec::resolve_threads(0) : shards;
    }
  }
  // Raw spec strings, kept verbatim for the post-mortem repro line.
  std::string faults_spec;
  std::string monitors_spec;
  {
    std::optional<std::string> spec = args.get("faults");
    if (!spec) {
      if (const char* env = std::getenv("BCN_FAULTS")) {
        if (*env) spec = env;
      }
    }
    if (spec) {
      std::string error;
      const auto plan = sim::parse_fault_plan(*spec, &error);
      if (!plan) {
        std::fprintf(stderr, "--faults: %s\n%s\n", error.c_str(),
                     sim::fault_plan_usage());
        return 2;
      }
      ctx.faults = *plan;
      faults_spec = *spec;
      std::printf("[runner] fault plan: %s\n",
                  sim::fault_plan_summary(ctx.faults).c_str());
    }
  }
  {
    std::optional<std::string> spec = args.get("monitors");
    if (!spec) {
      if (const char* env = std::getenv("BCN_MONITORS")) {
        if (*env) spec = env;
      }
    }
    if (spec) {
      std::string error;
      const auto parsed = obs::parse_monitor_spec(*spec, &error);
      if (!parsed) {
        std::fprintf(stderr, "--monitors: %s\n%s\n", error.c_str(),
                     obs::monitor_spec_usage());
        return 2;
      }
      ctx.monitors.spec = *parsed;
      ctx.monitors.action = obs::ViolationAction::DumpAndExit;
      monitors_spec = *spec;
      std::printf("[runner] monitors: %s\n",
                  obs::monitor_spec_summary(ctx.monitors.spec).c_str());
    }
  }
  if (const auto mech = args.get("mechanism")) {
    if (*mech == "list") {
      for (const auto& info : core::mechanism_registry()) {
        std::printf("%-10s %s\n", info.name, info.summary);
      }
      return 0;
    }
    if (!core::find_mechanism(*mech)) {
      std::fprintf(stderr, "--mechanism: unknown mechanism '%s' (known: %s)\n",
                   mech->c_str(), core::mechanism_name_list().c_str());
      return 2;
    }
    ctx.mechanism = *mech;
  }
  if (const auto mode = args.get("map-mode")) {
    if (!analysis::parse_map_mode(*mode, &ctx.map_mode)) {
      std::fprintf(stderr,
                   "--map-mode: unknown mode '%s' (known: scalar, batch, "
                   "adaptive)\n",
                   mode->c_str());
      return 2;
    }
  }
  if (const auto out = args.get("out")) {
    set_output_dir(*out);
  }
  ctx.out_dir = output_dir();
  std::error_code ec;
  std::filesystem::create_directories(ctx.out_dir, ec);
  ctx.monitors.bundle_dir = ctx.out_dir;

  const bool emit_json = args.get_bool("json", true);
  const auto trace_path = obs::maybe_enable_tracing(args);
  int exit_status = 0;
  for (const Experiment* e : selected) {
    obs::MetricsRegistry metrics;
    ctx.metrics = &metrics;
    if (ctx.monitors.spec.any()) {
      // Exact repro command line embedded in any post-mortem bundle this
      // experiment dumps: the standard knobs as verbatim spec strings
      // plus every experiment-specific flag that was passed.
      std::string repro = std::string(prog) + " --run " + e->name +
                          " --seed " + std::to_string(ctx.seed) +
                          " --mechanism " + ctx.mechanism;
      if (!faults_spec.empty()) repro += " --faults " + faults_spec;
      repro += " --monitors " + monitors_spec;
      for (const auto& flag : e->extra_flags) {
        if (const auto v = args.get(flag)) {
          repro += " --" + flag;
          if (!v->empty()) repro += "=" + *v;
        }
      }
      ctx.monitors.repro = repro;
    }
    // Spans drained before this experiment belong to earlier ones; the
    // per-experiment profile covers [drained_before, end).
    const std::size_t drained_before = obs::tracing_spans().size();
    const auto start = std::chrono::steady_clock::now();
    const int status = e->fn(ctx);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (trace_path) {
      obs::tracing_drain();
      const auto& spans = obs::tracing_spans();
      const std::vector<obs::SpanRecord> mine(
          spans.begin() + static_cast<std::ptrdiff_t>(drained_before),
          spans.end());
      obs::profile_to_metrics(obs::build_self_profile(mine), metrics);
    }
    std::printf("\n[runner] %s: %s in %.3f s (threads=%d, seed=%llu)\n",
                e->name.c_str(), status == 0 ? "ok" : "FAILED", wall,
                ctx.threads, static_cast<unsigned long long>(ctx.seed));
    if (emit_json) {
      JsonWriter json;
      json.add("experiment", e->name);
      json.add("description", e->description);
      json.add("status", status);
      json.add("wall_seconds", wall);
      json.add("threads", ctx.threads);
      json.add("seed", static_cast<std::int64_t>(ctx.seed));
      json.add("mechanism", ctx.mechanism);
      metrics.write_json(json, "metrics.");
      const auto path = ctx.out_dir / ("RUN_" + e->name + ".json");
      if (json.write_file(path)) {
        std::printf("  [artifact] %s\n", path.string().c_str());
      }
    }
    if (status != 0 && exit_status == 0) exit_status = status;
  }
  if (trace_path) obs::finalize_tracing(*trace_path);
  return exit_status;
}

}  // namespace bcn::bench
