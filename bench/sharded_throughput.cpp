// E23: sharded-engine scaling and determinism
// (BENCH_sharded_throughput.json).
//
// Two measurements on the partitioned conservative engine (sim/shard):
//
//   1. Single-shard parity: the degenerate star fabric (50 hosts into one
//      bottleneck, the paper's Fig. 1 plant) against the unsharded
//      sim::Network running the same reference parameter set.  The
//      sharded engine at --shards 1 pays for epoch bucketing + canonical
//      staging order; parity says that tax is small.
//
//   2. Shard-count sweep on a generated fat-tree: events/sec at 1, 2, 4,
//      8 shards, with the trajectory digest required to be
//      bitwise-identical across every count (exit 1 on mismatch).
//
// Determinism is the gate; wall-clock speedups are reported, deliberately
// not gated -- they are machine-dependent (a 1-hardware-thread host
// timeshares the shards and cannot speed up at all; the artifact carries
// hardware_threads so a reader can judge the numbers).  scripts/check.sh
// gate 9 runs a small configuration and self-diffs the artifact with
// bcn_bench_diff --require-same-keys.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "common/json.h"
#include "exec/thread_pool.h"
#include "runner.h"
#include "sim/network.h"
#include "sim/shard/engine.h"
#include "sim/shard/topology.h"

namespace {

using namespace bcn;

// The packet_vs_fluid / sim_throughput reference parameter set (PR 4),
// used on both sides of the parity comparison.
constexpr double kCapacity = 10e9;
constexpr double kQ0 = 2.5e6;
constexpr double kBuffer = 30e6;
constexpr double kW = 2.0;
constexpr double kPm = 0.2;
constexpr double kGi = 0.5;
constexpr double kGd = 1.0 / 128.0;
constexpr double kRu = 8e6;
constexpr int kParityFlows = 50;
constexpr sim::SimTime kParityDuration = 50 * sim::kMillisecond;

sim::shard::FabricOptions reference_options(double initial_rate,
                                            sim::SimTime duration) {
  sim::shard::FabricOptions options;
  options.q0 = kQ0;
  options.w = kW;
  options.pm = kPm;
  options.regulator.gi = kGi;
  options.regulator.gd = kGd;
  options.regulator.ru = kRu;
  options.regulator.max_rate = kCapacity;
  options.initial_rate = initial_rate;
  options.duration = duration;
  options.sample_interval = sim::kMillisecond;
  return options;
}

struct Timed {
  double seconds = 0.0;
  std::uint64_t events = 0;
};

int run(bench::RunContext& ctx) {
  JsonWriter json;
  json.add("benchmark", "sharded_throughput");
  const int hw = exec::resolve_threads(0);
  json.add("hardware_threads", hw);

  // --- 1. single-shard parity vs the unsharded engine -------------------
  Timed unsharded;
  {
    sim::NetworkConfig cfg;
    cfg.params.num_sources = kParityFlows;
    cfg.params.capacity = kCapacity;
    cfg.params.q0 = kQ0;
    cfg.params.buffer = kBuffer;
    cfg.params.qsc = 28e6;
    cfg.params.w = kW;
    cfg.params.pm = kPm;
    cfg.params.gi = kGi;
    cfg.params.gd = kGd;
    cfg.params.ru = kRu;
    cfg.initial_rate = kCapacity / kParityFlows;
    cfg.record_timelines = false;
    cfg.record_events = false;
    cfg.record_interval = sim::kMillisecond;
    const auto start = std::chrono::steady_clock::now();
    sim::Network net(cfg);
    net.run(kParityDuration);
    unsharded.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    unsharded.events = net.simulator().executed();
  }

  Timed star;
  {
    sim::shard::StarOptions opts;
    opts.hosts = kParityFlows;
    opts.capacity = kCapacity;
    opts.buffer_bits = kBuffer;
    auto topo = sim::shard::make_star(opts);
    sim::shard::add_permutation_flows(topo, 1, ctx.seed);
    const auto options =
        reference_options(kCapacity / kParityFlows, kParityDuration);
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim::shard::run_fabric(topo, options, 1);
    star.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    star.events = result.events_executed;
  }

  // Same plant, but the two engines schedule different event mixes
  // (pacing tokens vs inter-frame timers), so parity is events/sec --
  // scheduler throughput -- not raw wall clock.
  const double unsharded_eps =
      unsharded.seconds > 0.0 ? unsharded.events / unsharded.seconds : 0.0;
  const double star_eps = star.seconds > 0.0 ? star.events / star.seconds : 0.0;
  const double parity = unsharded_eps > 0.0 ? star_eps / unsharded_eps : 0.0;
  json.add("parity_unsharded_events",
           static_cast<std::int64_t>(unsharded.events));
  json.add("parity_unsharded_seconds", unsharded.seconds);
  json.add("parity_unsharded_events_per_sec", unsharded_eps);
  json.add("parity_sharded_events", static_cast<std::int64_t>(star.events));
  json.add("parity_sharded_seconds", star.seconds);
  json.add("parity_sharded_events_per_sec", star_eps);
  json.add("parity_ratio", parity);
  std::printf(
      "parity (star:%d, %.0f ms): unsharded %.3f Mev/s, single-shard "
      "fabric %.3f Mev/s (ratio %.2f)\n",
      kParityFlows, sim::to_seconds(kParityDuration) * 1e3,
      unsharded_eps / 1e6, star_eps / 1e6, parity);

  // --- 2. shard-count sweep on a generated fabric ------------------------
  const std::string spec =
      ctx.args->get("topology").value_or("fat-tree:30");
  sim::shard::Topology topo;
  std::string error;
  if (!sim::shard::parse_topology_spec(spec, &topo, &error)) {
    std::fprintf(stderr, "--topology: %s\n", error.c_str());
    return 2;
  }
  const int rounds = ctx.args->get_int("flows-per-host", 15);
  sim::shard::add_permutation_flows(topo, rounds, ctx.seed);
  const auto duration = static_cast<sim::SimTime>(
      ctx.args->get_double("duration-us", 2000.0) * sim::kMicrosecond);
  auto options =
      reference_options(ctx.args->get_double("rate", 5e7), duration);
  options.regulator.max_rate = topo.host_rate;
  options.sample_interval = 50 * sim::kMicrosecond;

  std::printf("fabric: %s — %zu switches, %zu ports, %zu hosts, %zu flows, "
              "%.0f us\n",
              topo.name.c_str(), topo.switches.size(), topo.ports.size(),
              topo.num_hosts, topo.flows.size(),
              sim::to_seconds(duration) * 1e6);
  json.add("topology", topo.name);
  json.add("switches", static_cast<std::int64_t>(topo.switches.size()));
  json.add("ports", static_cast<std::int64_t>(topo.ports.size()));
  json.add("hosts", static_cast<std::int64_t>(topo.num_hosts));
  json.add("flows", static_cast<std::int64_t>(topo.flows.size()));
  json.add("duration_us", sim::to_seconds(duration) * 1e6);

  std::vector<int> counts = {1, 2, 4, 8};
  if (std::find(counts.begin(), counts.end(), ctx.shards) == counts.end()) {
    counts.push_back(ctx.shards);
  }
  std::uint64_t reference_digest = 0;
  double single_shard_eps = 0.0;
  bool digests_match = true;
  for (const int shards : counts) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim::shard::run_fabric(topo, options, shards);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double eps = seconds > 0.0 ? result.events_executed / seconds : 0.0;
    if (shards == counts.front()) {
      reference_digest = result.digest;
      single_shard_eps = eps;
    } else if (result.digest != reference_digest) {
      digests_match = false;
    }
    const double speedup =
        single_shard_eps > 0.0 ? eps / single_shard_eps : 0.0;
    const std::string key = "shards_" + std::to_string(shards);
    json.add(key + "_seconds", seconds);
    json.add(key + "_events", static_cast<std::int64_t>(result.events_executed));
    json.add(key + "_events_per_sec", eps);
    json.add(key + "_speedup", speedup);
    json.add(key + "_cross_shard_share",
             result.staged_records > 0
                 ? static_cast<double>(result.cross_shard_records) /
                       static_cast<double>(result.staged_records)
                 : 0.0);
    json.add(key + "_digest",
             strf("%016llx",
                  static_cast<unsigned long long>(result.digest)));
    std::printf(
        "  shards=%d: %8.3f s, %7.3f Mev/s (%.2fx), digest %016llx%s\n",
        shards, seconds, eps / 1e6, speedup,
        static_cast<unsigned long long>(result.digest),
        result.digest == reference_digest ? "" : "  << MISMATCH");
  }
  json.add("digest_match", digests_match);

  const auto path = ctx.out_dir / "BENCH_sharded_throughput.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }

  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: trajectory digest varies with the shard count\n");
    return 1;
  }
  return 0;
}

}  // namespace

BCN_EXPERIMENT("sharded_throughput",
               "E23: partitioned-engine events/sec per shard count, with "
               "the cross-shard determinism digest gate",
               run, "topology", "flows-per-host", "duration-us", "rate")
