// Unified experiment runner for the bench binaries.
//
// Every bench registers `name -> fn(RunContext&)` at static-init time
// (via BCN_EXPERIMENT) and links the shared bench_main, which owns the
// command line: --threads (BCN_THREADS fallback), --out, --seed, --list,
// --run, --json, unknown-flag rejection, wall-clock capture, and a
// machine-readable RUN_<name>.json per experiment.  Experiments keep
// their experiment-specific flags by declaring them in `extra_flags`.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "analysis/stability_map.h"
#include "common/args.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "sim/faults.h"

namespace bcn::bench {

// Everything an experiment gets from the harness.
struct RunContext {
  const ArgParser* args = nullptr;  // for experiment-specific flags
  int threads = 1;                  // 0 = all hardware threads, 1 = serial
  // Simulator shards for sharded-fabric experiments, from --shards /
  // BCN_SHARDS (default 1; 0 = all hardware threads).  The trajectory
  // digest is shard-count-invariant, so this is purely a speed knob.
  int shards = 1;
  std::uint64_t seed = 0;           // --seed (default 0: deterministic)
  std::filesystem::path out_dir;    // resolved artifact directory
  // Per-experiment metrics registry owned by bench_main; whatever the
  // experiment records here is embedded in its RUN_<name>.json under
  // "metrics.".  Always non-null inside an experiment fn.
  obs::MetricsRegistry* metrics = nullptr;
  // Degraded-network plan from --faults / BCN_FAULTS (sim/faults.h);
  // unarmed by default.  Experiments that simulate a packet network
  // forward it into their scenario configs.
  sim::FaultPlan faults;
  // Congestion-control mechanism from --mechanism, validated against
  // core::mechanism_registry().  Experiments that run a single-mechanism
  // scenario forward it into their NetworkConfig / fluid facet.
  std::string mechanism = "bcn";
  // Stability-map execution strategy from --map-mode {scalar, batch,
  // adaptive}.  Experiments computing maps forward it into
  // analysis::StabilityMapOptions.
  analysis::MapMode map_mode = analysis::MapMode::Scalar;
  // Runtime invariant monitors + flight recorder from --monitors /
  // BCN_MONITORS (obs/monitor.h); unarmed by default.  bench_main
  // pre-fills the bundle directory, the exact repro command line and the
  // DumpAndExit action; experiments that simulate a packet network
  // forward it into their scenario configs (NetworkConfig::monitors,
  // MultihopConfig::monitors) and export "monitor.*" metrics.
  obs::MonitorConfig monitors;
};

struct Experiment {
  std::string name;
  std::string description;
  std::vector<std::string> extra_flags;  // accepted beyond the standard set
  std::function<int(RunContext&)> fn;
};

// Registers an experiment; typically invoked via BCN_EXPERIMENT.
void register_experiment(Experiment experiment);

// Registered experiments, sorted by name.
const std::vector<Experiment>& experiments();

// The shared main: parses flags, rejects unknown ones, resolves the
// output directory, runs the selected experiments (all registered ones by
// default, or --run <name>), captures wall clock, and writes
// RUN_<name>.json artifacts.  Returns the first nonzero experiment
// status, or 2 on a usage error.
int bench_main(int argc, const char* const* argv);

struct RegisterExperiment {
  explicit RegisterExperiment(Experiment experiment) {
    register_experiment(std::move(experiment));
  }
};

// BCN_EXPERIMENT("name", "what it reproduces", run_fn, "grid", "csv")
// — trailing arguments are the experiment-specific flags.
#define BCN_EXPERIMENT_CONCAT_INNER(a, b) a##b
#define BCN_EXPERIMENT_CONCAT(a, b) BCN_EXPERIMENT_CONCAT_INNER(a, b)
#define BCN_EXPERIMENT(name_, description_, fn_, ...)                         \
  static const ::bcn::bench::RegisterExperiment BCN_EXPERIMENT_CONCAT(        \
      bcn_experiment_registration_, __LINE__){                                \
      ::bcn::bench::Experiment{name_, description_, {__VA_ARGS__}, fn_}};

}  // namespace bcn::bench
