// E19 (extension): AIMD fairness convergence in the fluid setting.  The
// paper adopts AIMD because it is "stable, convergent and fair" [Chiu &
// Jain]; the multi-flow fluid model lets us watch the claim: flows that
// start 7x apart converge toward equal shares, with the spread contracting
// on every multiplicative-decrease episode.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/format.h"
#include "common/table.h"
#include "core/multiflow_model.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E19: AIMD fairness convergence (multi-flow fluid) "
              "===\n");
  core::BcnParams p = core::BcnParams::standard_draft();
  p.num_sources = 5;
  p.pm = 0.2;
  p.gi = 0.5;
  p.buffer = 30e6;
  p.qsc = 28e6;
  bench::print_params(p);

  core::MultiflowOptions opts;
  opts.initial_rates = {0.5e9, 1.0e9, 2.0e9, 3.0e9, 3.5e9};
  opts.duration = 0.3;
  opts.record_interval = 1e-3;
  const auto run = core::simulate_multiflow(p, opts);

  TablePrinter table({"t (ms)", "r1 (Gbps)", "r2", "r3", "r4", "r5",
                      "spread (max-min)/mean"});
  for (std::size_t i = 0; i < run.trace.size();
       i += std::max<std::size_t>(1, run.trace.size() / 10)) {
    const auto& s = run.trace[i];
    double lo = s.rates[0], hi = s.rates[0], sum = 0.0;
    for (const double r : s.rates) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
      sum += r;
    }
    std::vector<std::string> row{TablePrinter::format(s.t * 1e3, 4)};
    for (const double r : s.rates) {
      row.push_back(TablePrinter::format(r / 1e9, 3));
    }
    row.push_back(TablePrinter::format((hi - lo) / (sum / 5.0), 3));
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nspread: %.3f initially -> %.3f at t = %.0f ms\n",
              run.initial_spread, run.final_spread, opts.duration * 1e3);

  std::vector<plot::Series> series;
  for (std::size_t f = 0; f < opts.initial_rates.size(); ++f) {
    plot::Series s;
    s.name = strf("flow %zu", f + 1);
    for (const auto& sample : run.trace) {
      s.add(sample.t * 1e3, sample.rates[f] / 1e9);
    }
    series.push_back(std::move(s));
  }
  plot::AsciiOptions ascii;
  ascii.title = "per-flow rates converging to the fair share C/N = 2 Gbps";
  ascii.x_label = "t [ms]";
  ascii.y_label = "rate [Gbps]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({false, 2.0, "C/N"});
  bench::emit_figure("fairness_convergence", series, ascii, svg);
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fairness_convergence", "E19: AIMD fairness convergence in the multi-flow fluid model", run)
