// E6 / paper Fig. 9: Case 3 (spiral increase / node decrease).  After the
// single switching-line crossing the trajectory heads to the equilibrium
// inside the decrease region without overshooting the reference q0, so
// the system is strongly stable for any buffer > q0.  (Demonstrated on
// the scaled plant; see the reachability note in fig8.)
#include <cstdio>

#include "bench_util.h"
#include "runner.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 9: Case 3 dynamics (a < 4pm^2C^2/w^2, "
              "b > 4pm^2C/w^2) ===\n");
  core::BcnParams p = bench::scaled_plant();
  p.gi = 4.0;  // a = 1.6e6 << 4e8: spiral increase
  // b C = 4x the threshold: node decrease.
  p.gd = 4.0 * p.spiral_threshold() / p.capacity;

  const auto r =
      bench::run_case_dynamics(p, "Fig.9 Case 3", "fig9_case3", 0.1);

  std::printf("\nPaper-shape check: max x = %.6g bits (<= ~0): the queue "
              "never overshoots q0 -- the motion stays in the second "
              "quadrant until the origin, hence strong stability "
              "independent of B.  Numeric verdict: %s.\n",
              r.analytic_max_x,
              r.strongly_stable_numeric ? "strongly stable" : "UNSTABLE?");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig9_case3_dynamics", "Fig. 9 / E6: Case 3 (spiral/node) dynamics", run)
