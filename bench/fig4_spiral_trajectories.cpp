// E1 / paper Fig. 4: H-type (logarithmic-spiral) phase trajectories of a
// subsystem with complex eigenvalues, from two initial points on opposite
// sides of the x axis, with their closest extrema max_x^s / min_x^s
// (paper eqs. (18)-(20)) checked against closed form and numerics.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/format.h"
#include "common/table.h"
#include "control/closed_form.h"
#include "core/classifier.h"
#include "ode/integrate.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 4: spiral (H-type) trajectories, m^2 - 4n < 0 ===\n");
  const core::BcnParams params = core::BcnParams::standard_draft();
  const control::SecondOrderSystem sys = core::decrease_subsystem(params);
  std::printf("decrease subsystem: m=%.6g n=%.6g disc=%.6g (spiral)\n",
              sys.m(), sys.n(), sys.discriminant());

  // The paper's two representative starts: y1(0) < 0 and y2(0) > 0.
  const Vec2 starts[] = {{0.6e6, -6e9}, {-0.8e6, 5e9}};

  std::vector<plot::Series> series;
  TablePrinter table({"start x (Mbit)", "start y (Gbps)", "kind",
                      "extremum t (us)", "paper eq.(19/20) (Mbit)",
                      "closed form (Mbit)", "numeric (Mbit)", "rel.err"});

  for (const Vec2 z0 : starts) {
    const control::LinearSolution sol(sys, z0);
    const auto ext = sol.first_x_extremum();
    const double paper_v =
        control::paper_spiral_extremum_value(sol.alpha(), sol.beta(), z0);

    ode::AdaptiveOptions opts;
    opts.tol = {1e-11, 1e-11};
    opts.record_interval = 2e-6;
    const auto numeric =
        ode::integrate_adaptive(sys.rhs(), 0.0, z0, 3e-3, opts);
    const double numeric_ext = z0.y > 0.0
                                   ? numeric.trajectory.max_component(0)
                                   : numeric.trajectory.min_component(0);

    table.add_row({TablePrinter::format(z0.x / 1e6),
                   TablePrinter::format(z0.y / 1e9),
                   z0.y > 0 ? "max_x^s" : "min_x^s",
                   TablePrinter::format(ext ? ext->t * 1e6 : -1.0),
                   TablePrinter::format(paper_v / 1e6),
                   TablePrinter::format(ext ? ext->value / 1e6 : 0.0),
                   TablePrinter::format(numeric_ext / 1e6),
                   TablePrinter::format(
                       ext ? relative_error(numeric_ext, ext->value) : 1.0)});

    series.push_back(bench::phase_series(
        numeric.trajectory,
        strf("spiral from (%.2g, %.2g)", z0.x / 1e6, z0.y / 1e9)));
  }

  std::fputs(table.to_string("closest extrema of x(t) (y = 0 crossings)")
                 .c_str(),
             stdout);

  plot::AsciiOptions ascii;
  ascii.title = "Fig.4 phase portrait: stable focus (log spirals)";
  ascii.x_label = "x = q - q0 [Mbit]";
  ascii.y_label = "y = N r - C [Gbps]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  bench::emit_figure("fig4_spiral_trajectories", series, ascii, svg);

  std::printf("\nPaper-shape check: both orbits wind into the origin "
              "(stable focus), extrema alternate across the x axis.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig4_spiral_trajectories", "Fig. 4 / E1: spiral (H-type) subsystem trajectories", run)
