// E3 / paper Fig. 6: Case 1 (spiral/spiral) composite trajectory of the
// switched BCN system from (-q0, 0), with the round-by-round quantities
// T_i^k / T_d^k, the transient extrema max1/min1 (eqs. (36)/(37)) from
// three independent paths -- the paper's formula chain, our closed-form
// round stitching, and event-localized numeric integration -- plus the
// strong-stability verdict against the buffer.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "core/analytic_tracer.h"
#include "core/paper_formulas.h"
#include "core/simulate.h"
#include "core/stability.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 6: Case 1 dynamics (a < 4pm^2C^2/w^2, "
              "b < 4pm^2C/w^2) ===\n");
  const core::BcnParams p = core::BcnParams::standard_draft();
  bench::print_params(p);
  const auto cls = core::classify_case(p);
  std::printf("classification: %s\n", core::to_string(cls.paper_case).c_str());

  // Closed-form round stitching.
  const core::AnalyticTracer tracer(p);
  core::AnalyticTraceOptions topts;
  topts.max_rounds = 12;
  const auto trace = tracer.trace(topts);

  TablePrinter rounds({"round", "region", "T^k (us)", "x_end (Mbit)",
                       "y_end (Gbps)", "extremum x (Mbit)"});
  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const auto& r = trace.rounds[i];
    rounds.add_row(
        {TablePrinter::format(static_cast<double>(i + 1)),
         r.region == core::Region::Increase ? "increase" : "decrease",
         r.duration ? TablePrinter::format(*r.duration * 1e6) : "open",
         r.z_end ? TablePrinter::format(r.z_end->x / 1e6) : "-",
         r.z_end ? TablePrinter::format(r.z_end->y / 1e9) : "-",
         r.extremum ? TablePrinter::format(r.extremum->value / 1e6) : "-"});
  }
  std::fputs(rounds.to_string("round-by-round (first 12 rounds)").c_str(),
             stdout);

  // Numeric integration of the linearized and nonlinear models.
  const core::FluidModel lin(p, core::ModelLevel::Linearized);
  const core::FluidModel non(p, core::ModelLevel::Nonlinear);
  core::FluidRunOptions ropts;
  ropts.duration = 1.5e-3;
  ropts.record_interval = 1e-6;
  const auto lin_run = core::simulate_fluid(lin, ropts);
  const auto non_run = core::simulate_fluid(non, ropts);

  const auto chain = core::paper_case1_chain(p);
  TablePrinter extrema({"quantity", "paper eqs.(36)/(37)",
                        "closed-form stitching", "numeric (linearized)",
                        "numeric (nonlinear eq.(8))"});
  extrema.add_row({"max x (Mbit)",
                   chain ? TablePrinter::format(chain->max1 / 1e6) : "-",
                   TablePrinter::format(trace.max_x / 1e6),
                   TablePrinter::format(lin_run.max_x / 1e6),
                   TablePrinter::format(non_run.max_x / 1e6)});
  extrema.add_row(
      {"min x (Mbit)", chain ? TablePrinter::format(chain->min1 / 1e6) : "-",
       TablePrinter::format(trace.min_x / 1e6),
       TablePrinter::format(lin_run.post_switch_min_x / 1e6),
       TablePrinter::format(non_run.post_switch_min_x / 1e6)});
  std::fputs(extrema.to_string("transient extrema, three paths").c_str(),
             stdout);

  const auto report = core::analyze_stability(p);
  std::printf("\n%s\n", report.summary().c_str());
  if (const auto ratio = trace.contraction_ratio()) {
    std::printf("contraction ratio per full cycle: %.6f (near 1 -> the "
                "oscillation decays extremely slowly)\n", *ratio);
  }

  // Figure artifacts: phase portrait + time evolution.
  plot::AsciiOptions ascii;
  ascii.title = "Fig.6(a) phase trajectory, Case 1";
  ascii.x_label = "x [Mbit]";
  ascii.y_label = "y [Gbps]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({true, (p.buffer - p.q0) / 1e6, "B - q0"});
  svg.ref_lines.push_back({true, -p.q0 / 1e6, "-q0"});
  bench::emit_figure("fig6_phase",
                     {bench::phase_series(lin_run.trajectory, "linearized"),
                      bench::phase_series(non_run.trajectory, "nonlinear")},
                     ascii, svg);

  plot::AsciiOptions ascii_q;
  ascii_q.title = "Fig.6(b) queue evolution q(t)";
  ascii_q.x_label = "t [ms]";
  ascii_q.y_label = "q [Mbit]";
  plot::SvgOptions svg_q;
  svg_q.title = ascii_q.title;
  svg_q.x_label = ascii_q.x_label;
  svg_q.y_label = ascii_q.y_label;
  svg_q.ref_lines.push_back({false, p.buffer / 1e6, "B"});
  svg_q.ref_lines.push_back({false, p.q0 / 1e6, "q0"});
  bench::emit_figure(
      "fig6_queue",
      {bench::queue_series(lin_run.trajectory, p.q0, "linearized"),
       bench::queue_series(non_run.trajectory, p.q0, "nonlinear")},
      ascii_q, svg_q);

  bench::emit_csv("fig6_linearized", lin_run.trajectory.decimate(4));
  bench::emit_csv("fig6_nonlinear", non_run.trajectory.decimate(4));

  std::printf("\nPaper-shape check: spiral rounds alternate across the "
              "switching line; first decrease round carries the global "
              "max; the draft parameters overflow B = 5 Mbit exactly as "
              "the paper's example argues.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig6_case1_dynamics", "Fig. 6 / E3: Case 1 composite dynamics, three extrema paths", run)
