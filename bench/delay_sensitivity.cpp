// E13 (extension): feedback-delay sensitivity.
//
// The paper drops the propagation delay from the model, arguing it is
// microseconds against tens-to-hundreds of microseconds of queueing
// dynamics.  This bench quantifies that argument: it sweeps the
// round-trip feedback delay tau through the delayed fluid model, shows
// the overshoot growth, finds the critical delay at which strong
// stability is lost, and relates it to the subsystem rotation period.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/format.h"
#include "common/table.h"
#include "control/frequency.h"
#include "core/delayed_model.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E13: feedback-delay sensitivity (extension) ===\n");
  core::BcnParams p = core::BcnParams::standard_draft();
  p.buffer = 14e6;  // sized per Theorem 1, so tau = 0 is strongly stable
  p.qsc = 13.5e6;
  bench::print_params(p);

  const double beta_i = std::sqrt(4.0 * p.a() -
                                  p.increase_m() * p.increase_m()) / 2.0;
  std::printf("increase-region rotation period 2pi/beta_i = %.4g us\n\n",
              2.0 * M_PI / beta_i * 1e6);

  TablePrinter table({"tau (us)", "peak q (Mbit)", "dip q (Mbit)",
                      "verdict"});
  std::vector<plot::Series> queue_series;
  for (const double tau : {0.0, 0.5e-6, 5e-6, 20e-6, 35e-6, 50e-6}) {
    core::DelayedRunOptions opts;
    opts.delay = tau;
    opts.duration = 4e-3;
    const auto run = core::simulate_delayed(p, opts);
    const bool stable = !run.diverged && run.max_x < p.buffer - p.q0 &&
                        run.post_peak_min_x > -p.q0;
    table.add_row({TablePrinter::format(tau * 1e6),
                   TablePrinter::format((run.max_x + p.q0) / 1e6, 4),
                   TablePrinter::format((run.post_peak_min_x + p.q0) / 1e6, 4),
                   run.diverged ? "DIVERGED"
                                : (stable ? "strongly stable"
                                          : "overflow/underflow")});
    if (tau == 0.0 || tau == 20e-6 || tau == 50e-6) {
      queue_series.push_back(bench::queue_series(
          run.trajectory.decimate(20), p.q0,
          strf("tau=%g us", tau * 1e6)));
    }
  }
  std::fputs(table.to_string("delay sweep, B = 14 Mbit").c_str(), stdout);

  const auto crit = core::critical_delay(p, 500e-6);
  if (crit) {
    std::printf("\ncritical delay: %.4g us (vs the 0.5 us physical "
                "propagation delay the paper neglects -- a %0.0fx margin; "
                "the zero-delay model is justified for intra-datacenter "
                "distances, but a ~%.0f us RTT network would destabilize "
                "these gains)\n",
                *crit * 1e6, *crit / 0.5e-6, *crit * 1e6);
  }

  // Frequency-domain comparison: per-subsystem delay margins (the [4]
  // toolkit, with delay) vs the measured critical delay of the switched
  // system.
  const control::LoopTransfer inc{p.a(), p.k()};
  const control::LoopTransfer dec{p.b() * p.capacity, p.k()};
  std::printf("\nper-subsystem delay margins (Nyquist-style): increase "
              "%.4g us, decrease %.4g us -- three orders of magnitude "
              "below the measured switched-system critical delay: "
              "subsystem-wise frequency analysis is extremely "
              "conservative for the variable-structure loop.\n",
              control::delay_margin(inc) * 1e6,
              control::delay_margin(dec) * 1e6);

  plot::AsciiOptions ascii;
  ascii.title = "queue transient vs feedback delay";
  ascii.x_label = "t [ms]";
  ascii.y_label = "q [Mbit]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({false, p.buffer / 1e6, "B"});
  bench::emit_figure("delay_sensitivity", queue_series, ascii, svg);
  return 0;
}

}  // namespace

BCN_EXPERIMENT("delay_sensitivity", "E13: feedback-delay sensitivity and the critical delay", run)
