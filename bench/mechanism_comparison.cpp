// E14 (extension): every registered congestion-control mechanism with a
// packet facet on one plant -- BCN with continuous (fluid-matched) AIMD,
// BCN with the literal per-message draft AIMD, QCN-style negative-only
// quantized feedback with source self-increase, RCP-style explicit rate
// computation, and FERA-style explicit fair-share advertising.  Same
// overloaded start, same switch.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "core/mechanism.h"
#include "sim/network.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E14: the registered mechanisms on one plant ===\n");
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  bench::print_params(p);
  const auto horizon = 80 * sim::kMillisecond;

  TablePrinter table({"mechanism", "drops", "bcn+", "bcn-",
                      "peak q (Mbit)", "mean q tail (Mbit)",
                      "throughput (Gbps)", "late osc. p2p (frames)"});
  std::vector<plot::Series> series;

  for (const core::MechanismInfo& info : core::mechanism_registry()) {
    if (!info.has_packet) continue;
    const char* name = info.name;
    sim::NetworkConfig cfg;
    cfg.params = p;
    cfg.mechanism = name;
    cfg.initial_rate = 3e9;  // 15 Gbps aggregate burst into 10 Gbps
    cfg.record_interval = 50 * sim::kMicrosecond;
    sim::Network net(cfg);
    net.run(horizon);
    const auto& st = net.stats();

    double tail_sum = 0.0, tail_lo = 1e18, tail_hi = -1e18;
    int n = 0;
    for (const auto& tp : st.trace()) {
      if (tp.t < horizon / 2) continue;
      tail_sum += tp.queue_bits;
      tail_lo = std::min(tail_lo, tp.queue_bits);
      tail_hi = std::max(tail_hi, tp.queue_bits);
      ++n;
    }
    table.add_row(
        {name,
         TablePrinter::format(static_cast<double>(st.counters.frames_dropped)),
         TablePrinter::format(static_cast<double>(st.counters.bcn_positive)),
         TablePrinter::format(static_cast<double>(st.counters.bcn_negative)),
         TablePrinter::format(st.max_queue() / 1e6, 4),
         TablePrinter::format(tail_sum / n / 1e6, 4),
         TablePrinter::format(st.throughput(horizon) / 1e9, 4),
         TablePrinter::format((tail_hi - tail_lo) / cfg.frame_bits, 3)});

    plot::Series s;
    s.name = name;
    for (const auto& tp : st.trace()) {
      s.add(tp.t / 1e6, tp.queue_bits / 1e6);
    }
    series.push_back(std::move(s));
  }
  std::fputs(table.to_string("overloaded start (15 Gbps into 10 Gbps)")
                 .c_str(),
             stdout);

  plot::AsciiOptions ascii;
  ascii.title = "queue under the registered disciplines";
  ascii.x_label = "t [ms]";
  ascii.y_label = "q [Mbit]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({false, p.q0 / 1e6, "q0"});
  bench::emit_figure("mechanism_comparison", series, ascii, svg);

  std::printf("\nReading: every mechanism settles the queue near q0 with "
              "zero drops, but by different means -- BCN balances "
              "explicit positive/negative feedback, the draft's "
              "quantized AIMD adds a sustained frame-scale wiggle, "
              "QCN-style control gets there with *no* positive messages "
              "at all (self-increase probes until sigma turns negative), "
              "and the explicit-rate pair (RCP, FERA) skips the AIMD "
              "search entirely by telling every source what to send.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("mechanism_comparison", "E14: all registered mechanisms (BCN, draft, QCN, RCP, FERA) on one plant", run)
