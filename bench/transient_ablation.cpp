// E16 (extension / paper future work): impact of the control parameters on
// *transient* performance.  Theorem 1 says w and pm never move the
// stability boundary; this bench shows what they DO move -- the
// oscillation period, the per-cycle contraction and hence the settling
// time -- and quantifies the Gi/Gd trade-off the paper's remarks describe
// (smaller buffers vs sluggish convergence).
#include <cstdio>

#include "analysis/transient.h"
#include "bench_util.h"
#include "runner.h"
#include "common/format.h"
#include "common/table.h"

using namespace bcn;

namespace {

void row(TablePrinter& table, const char* label, const core::BcnParams& p) {
  const auto est = analysis::estimate_transient(p);
  if (!est) {
    table.add_row({label, "-", "-", "-", "-",
                   TablePrinter::format(p.theorem1_required_buffer() / 1e6, 4)});
    return;
  }
  table.add_row({label, TablePrinter::format(est->cycle_time * 1e6, 4),
                 TablePrinter::format(est->contraction_ratio, 6),
                 TablePrinter::format(est->envelope_decay_rate, 4),
                 TablePrinter::format(est->settling_time * 1e3, 4),
                 TablePrinter::format(p.theorem1_required_buffer() / 1e6, 4)});
}

}  // namespace

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== E16: transient-performance ablation (w, pm, Gi, Gd) "
              "===\n");
  const core::BcnParams base = core::BcnParams::standard_draft();
  bench::print_params(base);

  TablePrinter table({"variant", "cycle (us)", "contraction/cycle",
                      "decay rate (1/s)", "settle 5% (ms)",
                      "required B (Mbit)"});

  row(table, "baseline (w=2, pm=0.01, Gi=4, Gd=1/128)", base);

  // w sweep: the derivative weight damps the switching transient.
  for (const double w : {0.5, 1.0, 4.0, 8.0}) {
    core::BcnParams p = base;
    p.w = w;
    row(table, strf("w = %g", w).c_str(), p);
  }
  // pm sweep: k = w/(pm C) shrinks with pm, same lever as w.
  for (const double pm : {0.005, 0.02, 0.05}) {
    core::BcnParams p = base;
    p.pm = pm;
    row(table, strf("pm = %g", pm).c_str(), p);
  }
  // Gi sweep: drive strength.
  for (const double gi : {1.0, 16.0}) {
    core::BcnParams p = base;
    p.gi = gi;
    row(table, strf("Gi = %g", gi).c_str(), p);
  }
  // Gd sweep: decrease strength.
  for (const double gd : {1.0 / 512.0, 1.0 / 32.0, 1.0 / 8.0}) {
    core::BcnParams p = base;
    p.gd = gd;
    row(table, strf("Gd = 1/%g", 1.0 / gd).c_str(), p);
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nReadings:\n"
              "  * w and pm leave the required buffer untouched (Theorem 1"
              ") but set the per-cycle contraction through the single "
              "lever k = w/(pm C): larger w or *smaller* pm -> larger k "
              "-> heavier damping -> faster settling (note the w=4 and "
              "pm=0.005 rows coincide -- same k).\n"
              "  * Gi/Gd move BOTH: stronger decrease (larger Gd) shrinks "
              "the required buffer and speeds convergence, at the cost of "
              "deeper rate undershoot (see fig6's nonlinear traces).\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("transient_ablation", "E16: w/pm transient ablation (future-work experiment)", run)
