// E21 (extension): the mechanism matrix.
//
// Two sweeps over the congestion-control registry (core/mechanism.h):
//
//   1. Per-mechanism stability maps: every mechanism with a fluid facet
//      gets a 3x3 gain grid (its registry gain axes scaled by 0.5/1/2
//      around the defaults), each cell scored with the generic numeric
//      phase-plane verdict (bounded strictly inside the buffer strip).
//   2. Heterogeneous competition: mechanism A vs mechanism B sharing one
//      bottleneck, in both layers -- the 3-state fluid competition model
//      (analysis/competition.h) and the packet simulator with a split
//      source population -- reporting boundedness, tail oscillation, and
//      share-normalized Jain fairness per pair.
//
// Artifact: BENCH_mechanism_matrix.json -- flat numeric keys, fully
// deterministic (byte-identical across runs and thread counts), so CI
// can self-diff it with bcn_bench_diff at threshold 0.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/competition.h"
#include "bench_util.h"
#include "common/format.h"
#include "common/json.h"
#include "common/table.h"
#include "core/mechanism.h"
#include "exec/parallel_for.h"
#include "runner.h"
#include "sim/network.h"

using namespace bcn;

namespace {

constexpr double kGainFactors[] = {0.5, 1.0, 2.0};
constexpr double kPacketDuration = 0.04;  // seconds

core::BcnParams slow_regime() {
  core::BcnParams p;
  p.num_sources = 8;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  return p;
}

struct MapCell {
  double g1 = 0.0;
  double g2 = 0.0;
  bool stable = false;
  double max_x = 0.0;
};

// The 3x3 gain grid for one fluid mechanism, cells in row-major
// (g1-major) order.
std::vector<MapCell> stability_map(const core::MechanismInfo& info,
                                   int threads) {
  core::MechanismConfig base;
  base.plant = slow_regime();
  const auto [d1, d2] = info.default_gains(base);
  return exec::parallel_map<MapCell>(
      std::size(kGainFactors) * std::size(kGainFactors),
      [&, d1 = d1, d2 = d2](std::size_t i) {
        MapCell cell;
        cell.g1 = d1 * kGainFactors[i / std::size(kGainFactors)];
        cell.g2 = d2 * kGainFactors[i % std::size(kGainFactors)];
        core::MechanismConfig cfg = base;
        info.set_gains(cfg, cell.g1, cell.g2);
        const auto mech = core::make_fluid_mechanism(info.name, cfg);
        const auto verdict = core::mechanism_numeric_verdict(*mech);
        cell.stable = verdict.strongly_stable;
        cell.max_x = verdict.max_x;
        return cell;
      },
      {.threads = threads});
}

struct PacketCompetition {
  double rate_a = 0.0;  // mean final per-source rate, group A [bits/s]
  double rate_b = 0.0;
  double fairness = 0.0;  // Jain over the share-normalized group rates
  double peak_queue = 0.0;
  double tail_p2p = 0.0;
  std::uint64_t drops = 0;
};

PacketCompetition run_packet_competition(const char* mech_a,
                                         const char* mech_b,
                                         const sim::FaultPlan& faults) {
  sim::NetworkConfig cfg;
  cfg.params = slow_regime();
  cfg.mechanism = mech_a;
  cfg.mechanism_b = mech_b;
  cfg.sources_b = 4;  // 4 vs 4 of the 8 sources
  cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
  cfg.record_interval = 20 * sim::kMicrosecond;
  cfg.record_timelines = false;
  cfg.faults = faults;
  sim::Network net(cfg);
  net.run(sim::from_seconds(kPacketDuration));
  const auto& st = net.stats();

  PacketCompetition r;
  const std::size_t n = net.sources().size();
  const std::size_t first_b = n - cfg.sources_b;
  for (std::size_t i = 0; i < n; ++i) {
    (i < first_b ? r.rate_a : r.rate_b) += net.sources()[i]->rate();
  }
  r.rate_a /= static_cast<double>(first_b);
  r.rate_b /= static_cast<double>(n - first_b);
  // Both groups hold 4 of 8 sources, so the share-normalized Jain index
  // reduces to Jain over the two group means.
  const double s = r.rate_a + r.rate_b;
  const double sq = r.rate_a * r.rate_a + r.rate_b * r.rate_b;
  r.fairness = sq > 0.0 ? s * s / (2.0 * sq) : 0.0;
  r.peak_queue = st.max_queue();
  double lo = 1e18, hi = -1e18;
  for (const auto& tp : st.trace()) {
    if (sim::to_seconds(tp.t) < kPacketDuration / 2) continue;
    lo = std::min(lo, tp.queue_bits);
    hi = std::max(hi, tp.queue_bits);
  }
  r.tail_p2p = hi > lo ? hi - lo : 0.0;
  r.drops = st.counters.frames_dropped;
  return r;
}

int run(bench::RunContext& ctx) {
  std::printf("=== E21: mechanism matrix ===\n");
  const core::BcnParams p = slow_regime();
  bench::print_params(p);

  JsonWriter json;
  json.add("benchmark", "mechanism_matrix");
  json.add("gain_factors", 3.0);

  // --- per-mechanism stability maps --------------------------------------
  TablePrinter map_table(
      {"mechanism", "gain axes", "stable cells", "solo verdict",
       "solo peak q (Mbit)"});
  for (const auto& info : core::mechanism_registry()) {
    if (!info.has_fluid) continue;
    const auto cells = stability_map(info, ctx.threads);
    int stable = 0;
    for (const auto& c : cells) stable += c.stable ? 1 : 0;
    const std::string prefix = strf("map.%s.", info.name);
    json.add(prefix + "stable_cells", static_cast<std::int64_t>(stable));
    json.add(prefix + "cells", static_cast<std::int64_t>(cells.size()));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::string cp = strf("%scell%zu.", prefix.c_str(), i);
      json.add(cp + "g1", cells[i].g1);
      json.add(cp + "g2", cells[i].g2);
      json.add(cp + "stable", static_cast<std::int64_t>(cells[i].stable));
    }

    // Solo verdict at the registry defaults (the center cell).
    core::MechanismConfig base;
    base.plant = p;
    const auto mech = core::make_fluid_mechanism(info.name, base);
    const auto solo = core::mechanism_numeric_verdict(*mech);
    json.add(prefix + "solo_stable",
             static_cast<std::int64_t>(solo.strongly_stable));
    json.add(prefix + "solo_max_x_bits", solo.max_x);
    map_table.add_row(
        {info.name, strf("%s x %s", info.gain1, info.gain2),
         strf("%d/%zu", stable, cells.size()),
         solo.strongly_stable ? "bounded in strip" : "LEAVES STRIP",
         TablePrinter::format((solo.max_x + p.q0) / 1e6, 4)});
  }
  std::fputs(
      map_table.to_string("per-mechanism 3x3 gain maps (fluid facet)")
          .c_str(),
      stdout);

  // --- heterogeneous competition -----------------------------------------
  const std::pair<const char*, const char*> pairs[] = {
      {"bcn", "bcn"},  // homogeneous control
      {"bcn", "qcn"},
      {"bcn", "rcp"},
      {"qcn", "rcp"},
  };

  TablePrinter comp(
      {"pair", "layer", "bounded", "fairness", "tail p2p (Mbit)",
       "rate A (Gbps)", "rate B (Gbps)", "drops"});
  for (const auto& [a, b] : pairs) {
    const std::string key = strf("comp.%s_vs_%s.", a, b);

    core::MechanismConfig base;
    base.plant = p;
    analysis::CompetitionOptions copts;
    copts.duration = kPacketDuration;
    const auto fluid = analysis::simulate_fluid_competition(a, b, base, copts);
    json.add(key + "fluid.bounded",
             static_cast<std::int64_t>(fluid.bounded));
    json.add(key + "fluid.fairness", fluid.fairness);
    json.add(key + "fluid.tail_p2p_bits", fluid.tail_x_p2p);
    json.add(key + "fluid.tail_queue_mean_bits", fluid.tail_queue_mean);
    json.add(key + "fluid.tail_rate_a_bps", fluid.tail_rate_a);
    json.add(key + "fluid.tail_rate_b_bps", fluid.tail_rate_b);
    comp.add_row({strf("%s vs %s", a, b), "fluid",
                  fluid.bounded ? "yes" : "NO",
                  TablePrinter::format(fluid.fairness, 4),
                  TablePrinter::format(fluid.tail_x_p2p / 1e6, 4),
                  TablePrinter::format(fluid.tail_rate_a / 1e9, 4),
                  TablePrinter::format(fluid.tail_rate_b / 1e9, 4), "-"});

    const auto pkt = run_packet_competition(a, b, ctx.faults);
    json.add(key + "packet.fairness", pkt.fairness);
    json.add(key + "packet.peak_queue_bits", pkt.peak_queue);
    json.add(key + "packet.tail_p2p_bits", pkt.tail_p2p);
    json.add(key + "packet.rate_a_bps", pkt.rate_a);
    json.add(key + "packet.rate_b_bps", pkt.rate_b);
    json.add(key + "packet.frames_dropped",
             static_cast<std::int64_t>(pkt.drops));
    comp.add_row({strf("%s vs %s", a, b), "packet",
                  pkt.drops == 0 ? "yes" : "NO",
                  TablePrinter::format(pkt.fairness, 4),
                  TablePrinter::format(pkt.tail_p2p / 1e6, 4),
                  TablePrinter::format(pkt.rate_a * 4.0 / 1e9, 4),
                  TablePrinter::format(pkt.rate_b * 4.0 / 1e9, 4),
                  TablePrinter::format(static_cast<double>(pkt.drops))});
  }
  std::fputs(
      comp.to_string("mechanism A vs B on one bottleneck (4 + 4 sources)")
          .c_str(),
      stdout);

  const auto path = bench::output_dir() / "BENCH_mechanism_matrix.json";
  if (json.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }

  std::printf("\nReading: homogeneous BCN is the fairness baseline (Jain "
              "~1, both layers).  Mixing disciplines skews the split: "
              "QCN loses to BCN because its quantized multiplicative cuts "
              "are drastic while its fixed R_AI recovery is slow, so BCN's "
              "proportional AIMD re-absorbs the headroom first; RCP's "
              "capacity-seeking advert wins the packet transient against "
              "either AIMD group (it jumps straight to the rate that "
              "fills the link) even though its fluid limit shares almost "
              "fairly.  The phase-plane verdict survives every pairing: "
              "bounded inside the buffer strip, zero drops, queue pinned "
              "near q0 -- heterogeneity costs fairness, not stability.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("mechanism_matrix",
               "E21: per-mechanism gain maps + heterogeneous competition "
               "(fluid + packet)",
               run)
