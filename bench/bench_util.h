// Shared helpers for the figure-reproduction benches: output locations,
// unit-scaled series extraction, and common printing.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/bcn_params.h"
#include "core/simulate.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "ode/trajectory.h"
#include "plot/ascii.h"
#include "plot/series.h"
#include "plot/svg.h"
#include "sim/stats.h"

namespace bcn::bench {

// Where CSV/SVG artifacts go: the runner's --out override, else
// $BCN_BENCH_OUT, else ./bench_out.
std::filesystem::path output_dir();

// Installs the --out override (set by bench_main before experiments run).
void set_output_dir(std::filesystem::path dir);

// Phase-portrait series in paper-friendly units: x in Mbit, y in Gbps.
plot::Series phase_series(const ode::Trajectory& trajectory,
                          std::string name);

// Queue length q(t) = x + q0 in Mbit against time in ms.
plot::Series queue_series(const ode::Trajectory& trajectory, double q0,
                          std::string name);

// Rate series y(t) + C in Gbps against time in ms.
plot::Series rate_series(const ode::Trajectory& trajectory, double capacity,
                         std::string name);

// Prints the ASCII rendering and writes the SVG artifact; announces the
// file path on stdout.
void emit_figure(const std::string& stem,
                 const std::vector<plot::Series>& series,
                 const plot::AsciiOptions& ascii,
                 const plot::SvgOptions& svg);

// Writes trajectory samples as CSV (t, x, y); announces the path.
void emit_csv(const std::string& stem, const ode::Trajectory& trajectory);

void print_params(const core::BcnParams& params);

// --- run-level observability -------------------------------------------
// Snapshots a packet-simulator run into the runner's metrics registry
// (counters, queue/fairness gauges, sigma histogram); no-op when
// `registry` is null.
void record_sim_metrics(const sim::SimStats& stats,
                        obs::MetricsRegistry* registry,
                        const std::string& prefix = "sim.");

// Integrator step statistics from a fluid run: steps accepted/rejected,
// event-localization bisections (counters, accumulated across runs) and
// the smallest accepted dt seen by any recorded run (gauge).
void record_fluid_metrics(const core::FluidRun& run,
                          obs::MetricsRegistry* registry,
                          const std::string& prefix = "fluid.");

// Invariant-monitor counters ("monitor.*") from an armed run, plus a
// one-line stdout summary; no-op when the monitor is unarmed or
// `registry` is null.
void record_monitor_metrics(const obs::RunMonitor& monitor,
                            obs::MetricsRegistry* registry);

// Writes <stem>_timelines.csv / <stem>_events.csv artifacts for a run's
// structured observability (skipping whichever is empty); announces the
// paths on stdout.
void export_observability(const sim::SimStats& stats,
                          const std::string& stem);

// Shared driver for the per-case dynamics figures (Figs. 8-10): traces the
// switched system analytically and numerically (linearized + nonlinear),
// prints the extrema/verdict table, and emits phase + queue figures.
struct CaseBenchResult {
  double analytic_max_x = 0.0;
  double analytic_min_x = 0.0;
  double numeric_lin_max_x = 0.0;
  double numeric_non_max_x = 0.0;
  bool strongly_stable_numeric = false;
};

CaseBenchResult run_case_dynamics(const core::BcnParams& params,
                                  const std::string& title,
                                  const std::string& stem, double duration);

// Scaled-down plant (1 Mbps link, heavy sigma weight, k = 1e-4 s) on which
// the node-regime thresholds are reachable.  With datacenter-scale C and
// draft-like w/pm the spiral threshold 4 pm^2 C^2 / w^2 ~ 1e16 dwarfs any
// realistic a = Ru Gi N and b C, so Cases 2-5 cannot occur there -- a
// reproduction finding documented in EXPERIMENTS.md.  The paper's case
// taxonomy is therefore exercised on this plant (threshold 4/k^2 = 4e8).
core::BcnParams scaled_plant();

}  // namespace bcn::bench
