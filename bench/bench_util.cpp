#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/csv.h"
#include "control/closed_form.h"
#include "core/analytic_tracer.h"
#include "core/classifier.h"
#include "core/simulate.h"
#include "core/stability.h"

namespace bcn::bench {

namespace {
std::filesystem::path g_output_dir_override;
}  // namespace

std::filesystem::path output_dir() {
  if (!g_output_dir_override.empty()) return g_output_dir_override;
  if (const char* env = std::getenv("BCN_BENCH_OUT")) return env;
  return "bench_out";
}

void set_output_dir(std::filesystem::path dir) {
  g_output_dir_override = std::move(dir);
}

plot::Series phase_series(const ode::Trajectory& trajectory,
                          std::string name) {
  plot::Series s;
  s.name = std::move(name);
  s.points.reserve(trajectory.size());
  for (const auto& sample : trajectory.samples()) {
    s.add(sample.z.x / 1e6, sample.z.y / 1e9);
  }
  return s;
}

plot::Series queue_series(const ode::Trajectory& trajectory, double q0,
                          std::string name) {
  plot::Series s;
  s.name = std::move(name);
  s.points.reserve(trajectory.size());
  for (const auto& sample : trajectory.samples()) {
    s.add(sample.t * 1e3, (sample.z.x + q0) / 1e6);
  }
  return s;
}

plot::Series rate_series(const ode::Trajectory& trajectory, double capacity,
                         std::string name) {
  plot::Series s;
  s.name = std::move(name);
  s.points.reserve(trajectory.size());
  for (const auto& sample : trajectory.samples()) {
    s.add(sample.t * 1e3, (sample.z.y + capacity) / 1e9);
  }
  return s;
}

void emit_figure(const std::string& stem,
                 const std::vector<plot::Series>& series,
                 const plot::AsciiOptions& ascii,
                 const plot::SvgOptions& svg) {
  std::fputs(plot::render_ascii(series, ascii).c_str(), stdout);
  const auto path = output_dir() / (stem + ".svg");
  if (plot::write_svg(path, series, svg)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  } else {
    std::printf("  [artifact] FAILED to write %s\n", path.string().c_str());
  }
}

void emit_csv(const std::string& stem, const ode::Trajectory& trajectory) {
  CsvWriter csv({"t_seconds", "x_bits", "y_bits_per_s"});
  for (const auto& s : trajectory.samples()) {
    csv.add_row({s.t, s.z.x, s.z.y});
  }
  const auto path = output_dir() / (stem + ".csv");
  if (csv.write_file(path)) {
    std::printf("  [artifact] %s\n", path.string().c_str());
  }
}

void print_params(const core::BcnParams& params) {
  std::printf("%s\n", params.describe().c_str());
}

void record_sim_metrics(const sim::SimStats& stats,
                        obs::MetricsRegistry* registry,
                        const std::string& prefix) {
  if (!registry) return;
  stats.export_metrics(*registry, prefix);
}

void record_fluid_metrics(const core::FluidRun& run,
                          obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  if (!registry) return;
  registry->counter(prefix + "steps_accepted").inc(run.steps_accepted);
  registry->counter(prefix + "steps_rejected").inc(run.steps_rejected);
  registry->counter(prefix + "event_bisections").inc(run.event_bisections);
  auto& min_dt = registry->gauge(prefix + "min_dt_seconds");
  if (run.min_step > 0.0 &&
      (min_dt.value() == 0.0 || run.min_step < min_dt.value())) {
    min_dt.set(run.min_step);
  }
}

void record_monitor_metrics(const obs::RunMonitor& monitor,
                            obs::MetricsRegistry* registry) {
  if (!monitor.armed()) return;
  if (registry) monitor.export_metrics(*registry);
  std::printf("  [monitor] %llu checks, %llu violations\n",
              static_cast<unsigned long long>(monitor.checks()),
              static_cast<unsigned long long>(monitor.violation_count()));
}

void export_observability(const sim::SimStats& stats,
                          const std::string& stem) {
  if (stats.timelines().total_points() > 0) {
    const auto path = output_dir() / (stem + "_timelines.csv");
    if (stats.timelines().write_csv(path)) {
      std::printf("  [artifact] %s\n", path.string().c_str());
    }
  }
  if (!stats.events().empty()) {
    const auto path = output_dir() / (stem + "_events.csv");
    if (stats.events().write_csv(path)) {
      std::printf("  [artifact] %s\n", path.string().c_str());
    }
  }
}

CaseBenchResult run_case_dynamics(const core::BcnParams& params,
                                  const std::string& title,
                                  const std::string& stem, double duration) {
  print_params(params);
  const auto cls = core::classify_case(params);
  std::printf("classification: %s (increase: %s, decrease: %s)\n",
              core::to_string(cls.paper_case).c_str(),
              control::to_string(cls.increase_kind).c_str(),
              control::to_string(cls.decrease_kind).c_str());

  const auto trace = core::AnalyticTracer(params).trace();

  core::FluidRunOptions ropts;
  ropts.duration = duration;
  ropts.record_interval = duration / 2000.0;
  const auto lin = core::simulate_fluid(
      core::FluidModel(params, core::ModelLevel::Linearized), ropts);
  const auto non = core::simulate_fluid(
      core::FluidModel(params, core::ModelLevel::Nonlinear), ropts);

  TablePrinter extrema({"quantity", "closed form", "numeric (linearized)",
                        "numeric (nonlinear)"});
  extrema.add_row({"max x", TablePrinter::format(trace.max_x),
                   TablePrinter::format(lin.max_x),
                   TablePrinter::format(non.max_x)});
  extrema.add_row({"min x (post-crossing)",
                   TablePrinter::format(trace.min_x),
                   TablePrinter::format(lin.post_switch_min_x),
                   TablePrinter::format(non.post_switch_min_x)});
  std::fputs(extrema.to_string("transient extrema [bits]").c_str(), stdout);

  const auto report = core::analyze_stability(params);
  const auto verdict = core::numeric_strong_stability(params);
  std::printf("\n%s\nnumeric ground truth: %s (max_x=%.6g, min_x=%.6g)\n",
              report.summary().c_str(),
              verdict.strongly_stable ? "strongly stable"
                                      : "NOT strongly stable",
              verdict.max_x, verdict.min_x);

  // Raw units so the driver works for both the datacenter-scale and the
  // scaled-down plants.
  auto raw_phase = [](const ode::Trajectory& traj, std::string name) {
    return plot::series_phase(traj, std::move(name));
  };
  auto raw_queue = [&](const ode::Trajectory& traj, std::string name) {
    plot::Series s = plot::series_vs_time(traj, 0, std::move(name), 1e3);
    for (auto& pt : s.points) pt.y += params.q0;
    return s;
  };

  plot::AsciiOptions ascii;
  ascii.title = title + " - phase portrait";
  ascii.x_label = "x = q - q0 [bits]";
  ascii.y_label = "y = N r - C [bits/s]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({true, params.buffer - params.q0, "B - q0"});
  svg.ref_lines.push_back({true, -params.q0, "-q0"});
  emit_figure(stem + "_phase",
              {raw_phase(lin.trajectory, "linearized"),
               raw_phase(non.trajectory, "nonlinear")},
              ascii, svg);

  plot::AsciiOptions ascii_q;
  ascii_q.title = title + " - queue evolution";
  ascii_q.x_label = "t [ms]";
  ascii_q.y_label = "q [bits]";
  plot::SvgOptions svg_q;
  svg_q.title = ascii_q.title;
  svg_q.x_label = ascii_q.x_label;
  svg_q.y_label = ascii_q.y_label;
  svg_q.ref_lines.push_back({false, params.q0, "q0"});
  emit_figure(stem + "_queue",
              {raw_queue(lin.trajectory, "linearized"),
               raw_queue(non.trajectory, "nonlinear")},
              ascii_q, svg_q);

  return {trace.max_x, trace.min_x, lin.max_x, non.max_x,
          verdict.strongly_stable};
}

core::BcnParams scaled_plant() {
  core::BcnParams p;
  p.num_sources = 50.0;
  p.capacity = 1e6;  // 1 Mbps bottleneck
  p.q0 = 1e3;
  p.buffer = 2e4;
  p.qsc = 1.5e4;
  p.w = 50.0;
  p.pm = 0.5;   // k = w/(pm C) = 1e-4, threshold 4/k^2 = 4e8
  p.gi = 4.0;   // a = Ru Gi N = 1.6e6 by default (spiral)
  p.gd = 10.0;  // b C = 1e7 by default (spiral)
  p.ru = 8e3;
  return p;
}

}  // namespace bcn::bench
