// E11: packet-level simulator vs fluid model cross-validation (the
// substitution experiment: the paper's claims live in the fluid model; the
// packet simulator exercises the same BCN control laws frame by frame).
#include <cstdio>

#include "analysis/crossval.h"
#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "core/mechanism.h"
#include "core/simulate.h"
#include "sim/network.h"

using namespace bcn;

namespace {

core::BcnParams slow_regime() {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  return p;
}

std::string fmt_period(const std::optional<double>& period) {
  return period ? TablePrinter::format(*period * 1e3) : std::string("-");
}

}  // namespace

namespace {

int run(bench::RunContext& ctx) {
  std::printf("=== E11: packet simulator vs fluid model (--mechanism %s) "
              "===\n",
              ctx.mechanism.c_str());
  const core::BcnParams p = slow_regime();
  bench::print_params(p);
  std::printf("calibration: per-source BCN interval ~%.0f us << oscillation "
              "period, so the frame-level system can track the fluid "
              "dynamics.\n",
              p.num_sources * 12000.0 / (p.pm * p.capacity) * 1e6);

  constexpr double kDuration = 0.04;

  // Fluid runs.  The default BCN path goes through FluidModel directly;
  // other mechanisms integrate their own fluid facet.  FERA is
  // packet-only: its fluid side is skipped entirely.
  core::FluidRun lin, non;
  const bool has_fluid = core::find_mechanism(ctx.mechanism)->has_fluid;
  if (ctx.mechanism == "bcn" || ctx.mechanism == "bcn-draft") {
    core::FluidRunOptions fopts;
    fopts.duration = kDuration;
    fopts.record_interval = 2e-5;
    lin = core::simulate_fluid(
        core::FluidModel(p, core::ModelLevel::Linearized), fopts);
    non = core::simulate_fluid(
        core::FluidModel(p, core::ModelLevel::Nonlinear), fopts);
  } else if (has_fluid) {
    core::MechanismConfig mcfg;
    mcfg.plant = p;
    const auto mech = core::make_fluid_mechanism(ctx.mechanism, mcfg);
    core::MechanismRunOptions mopts;
    mopts.duration = kDuration;
    mopts.record_interval = 2e-5;
    mopts.level = core::ModelLevel::Linearized;
    lin = core::simulate_fluid_mechanism(*mech, mopts);
    mopts.level = core::ModelLevel::Nonlinear;
    non = core::simulate_fluid_mechanism(*mech, mopts);
  }
  if (has_fluid) {
    bench::record_fluid_metrics(lin, ctx.metrics);
    bench::record_fluid_metrics(non, ctx.metrics);
  }

  // Packet run under the same mechanism.
  sim::NetworkConfig cfg;
  cfg.params = p;
  cfg.mechanism = ctx.mechanism;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * sim::kMicrosecond;
  cfg.faults = ctx.faults;
  cfg.monitors = ctx.monitors;
  if (cfg.monitors.spec.any()) {
    cfg.monitors.fluid_strongly_stable =
        analysis::fluid_stability_hint(p, ctx.mechanism);
  }
  sim::Network net(cfg);
  net.run(sim::from_seconds(kDuration));
  bench::record_sim_metrics(net.stats(), ctx.metrics);
  if (ctx.metrics) {
    net.simulator().export_metrics(*ctx.metrics);
    if (ctx.faults.armed()) {
      sim::export_fault_metrics(net.fault_counters(), *ctx.metrics);
    }
  }
  bench::record_monitor_metrics(net.monitor(), ctx.metrics);
  bench::export_observability(net.stats(), "packet_vs_fluid");
  const auto packet = net.stats().to_phase_trajectory(p.q0, p.capacity);

  const double prominence = 0.05 * p.q0;
  if (!has_fluid) {
    const auto f_pkt = analysis::extract_features(packet, prominence);
    std::printf("\n%s is packet-only (no fluid facet); packet transient: "
                "peak q %.3f Mbit at %.2f ms, settle q %.3f Mbit\n",
                ctx.mechanism.c_str(), (f_pkt.peak_value + p.q0) / 1e6,
                f_pkt.peak_time * 1e3, (f_pkt.final_value + p.q0) / 1e6);
    return 0;
  }
  const auto features = analysis::extract_features_batch(
      {&lin.trajectory, &non.trajectory, &packet}, prominence, ctx.threads);
  const auto& f_lin = features[0];
  const auto& f_non = features[1];
  const auto& f_pkt = features[2];

  TablePrinter table({"system", "peak q (Mbit)", "peak t (ms)",
                      "trough q (Mbit)", "period (ms)", "settle q (Mbit)"});
  auto row = [&](const char* name, const analysis::TrajectoryFeatures& f) {
    table.add_row({name, TablePrinter::format((f.peak_value + p.q0) / 1e6),
                   TablePrinter::format(f.peak_time * 1e3),
                   TablePrinter::format((f.trough_value + p.q0) / 1e6),
                   fmt_period(f.period),
                   TablePrinter::format((f.final_value + p.q0) / 1e6)});
  };
  row("fluid linearized (eq.9)", f_lin);
  row("fluid nonlinear (eq.8)", f_non);
  row("packet simulator", f_pkt);
  std::fputs(table.to_string("transient features").c_str(), stdout);

  const auto cmp = analysis::compare_shapes(non.trajectory, packet, prominence);
  // Settling error measured in queue space relative to q0 (the x-space
  // relative error is meaningless when both settle near x = 0).
  const double settle_err =
      std::abs(cmp.b.final_value - cmp.a.final_value) / p.q0;
  std::printf("\nshape agreement packet-vs-nonlinear-fluid: same character "
              "(damped oscillation): %s | peak rel.err %.2f | period "
              "rel.err %.2f | settle offset %.3f q0\n",
              cmp.same_character ? "yes" : "NO",
              cmp.peak_rel_error, cmp.period_rel_error, settle_err);

  std::printf("packet counters: sent=%llu delivered=%llu dropped=%llu "
              "bcn+=%llu bcn-=%llu throughput=%.3f Gbps\n",
              static_cast<unsigned long long>(net.stats().counters.frames_sent),
              static_cast<unsigned long long>(net.stats().counters.frames_delivered),
              static_cast<unsigned long long>(net.stats().counters.frames_dropped),
              static_cast<unsigned long long>(net.stats().counters.bcn_positive),
              static_cast<unsigned long long>(net.stats().counters.bcn_negative),
              net.stats().throughput(sim::from_seconds(kDuration)) / 1e9);

  plot::AsciiOptions ascii;
  ascii.title = "q(t): packet simulator vs fluid model";
  ascii.x_label = "t [ms]";
  ascii.y_label = "q [Mbit]";
  plot::SvgOptions svg;
  svg.title = ascii.title;
  svg.x_label = ascii.x_label;
  svg.y_label = ascii.y_label;
  svg.ref_lines.push_back({false, p.q0 / 1e6, "q0"});
  bench::emit_figure(
      "packet_vs_fluid",
      {bench::queue_series(lin.trajectory, p.q0, "fluid lin"),
       bench::queue_series(non.trajectory, p.q0, "fluid nonlin"),
       bench::queue_series(packet, p.q0, "packet")},
      ascii, svg);

  std::printf("\nSuccess bar: same damped-oscillation character, peak "
              "within 2x, both settle on q0 -- shape, not absolute "
              "agreement (frame quantization and per-source feedback "
              "timing are real effects the fluid model drops).\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("packet_vs_fluid", "E11: packet simulator vs fluid model cross-validation", run)
