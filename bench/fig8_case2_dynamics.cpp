// E5 / paper Fig. 8: Case 2 (node increase / spiral decrease).  The
// trajectory leaves the increase region as a parabola, crosses the
// switching line once in the second quadrant, spirals to the overshoot
// max2 (eq. (38)) and then approaches the origin along the slow
// eigendirection without crossing it again.
//
// Reachability note: with datacenter-scale C and draft-like w/pm the node
// threshold 4 pm^2 C^2 / w^2 ~ 1e16 cannot be reached by any realistic
// a = Ru Gi N, so this case is demonstrated on the scaled-down plant
// (see bench_util.h and EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/math.h"
#include "core/paper_formulas.h"

using namespace bcn;

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 8: Case 2 dynamics (a > 4pm^2C^2/w^2, "
              "b < 4pm^2C/w^2) ===\n");
  core::BcnParams p = bench::scaled_plant();
  // a = 4x the threshold (node increase); decrease stays spiral.
  p.gi = 4.0 * p.spiral_threshold() / (p.ru * p.num_sources);
  p.gd = 10.0;  // b C = 1e7 < 4e8

  const auto r =
      bench::run_case_dynamics(p, "Fig.8 Case 2", "fig8_case2", 0.02);

  const auto max2 = core::paper_case2_max(p);
  if (max2) {
    std::printf("\npaper eq.(38) max2 = %.6g bits vs closed-form %.6g "
                "(rel.err %.2e); Theorem 1 bound sqrt(a/bC) q0 = %.6g\n",
                *max2, r.analytic_max_x,
                relative_error(r.analytic_max_x, *max2),
                core::theorem1_overshoot_bound(p));
  }
  std::printf("\nPaper-shape check: one switching-line crossing, a single "
              "overshoot bounded by eq. (38), no further oscillation.  "
              "Proposition 3 makes stability conditional on "
              "max2 < B - q0 = %.6g.\n",
              p.buffer - p.q0);
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig8_case2_dynamics", "Fig. 8 / E5: Case 2 (node/spiral) dynamics", run)
