// E9 / paper Propositions 1-4: subsystem Hurwitz stability, the
// case-by-case strong-stability verdicts over a (Gi, Gd) gain grid, and a
// numeric probe of Proposition 4's a-boundary branch.
//
// The grid is the parallel-sweep showcase: --grid n sweeps an n x n gain
// grid and --threads 0 evaluates its cells on every hardware thread, with
// the per-cell CSV bitwise identical to the serial run.
#include <cstdio>

#include "analysis/stability_map.h"
#include "analysis/sweep.h"
#include "core/batch_verdict.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/format.h"
#include "common/table.h"
#include "control/routh_hurwitz.h"
#include "core/mechanism.h"
#include "exec/parallel_for.h"
#include "runner.h"

using namespace bcn;

namespace {

// The Propositions and Theorem 1 are BCN theorems, so --mechanism other
// than bcn/bcn-draft gets the generic map instead: the registry's own
// gain axes (log-spaced 1/8x..8x around the defaults) scored by the
// generic numeric phase-plane verdict.
int run_generic_map(bench::RunContext& ctx, const core::MechanismInfo& info,
                    const core::BcnParams& base, int grid) {
  core::MechanismConfig cfg0;
  cfg0.plant = base;
  const auto [d1, d2] = info.default_gains(cfg0);
  const auto g1 = analysis::logspace(d1 / 8.0, d1 * 8.0, grid);
  const auto g2 = analysis::logspace(d2 / 8.0, d2 * 8.0, grid);

  struct Cell {
    bool stable = false;
    double max_x = 0.0;
    double min_x = 0.0;
  };
  std::vector<Cell> cells;
  bool batched = ctx.map_mode != analysis::MapMode::Scalar;
  if (batched) {
    // Batched path: every cell's mechanism exposes its affine lane law
    // and the whole grid goes through the SoA integrator at once.  (The
    // quadtree refinement is a (Gi, Gd)/BCN-map feature; for generic
    // maps adaptive degrades to plain batch.)
    std::vector<core::VerdictLane> lanes;
    lanes.reserve(g1.size() * g2.size());
    for (std::size_t idx = 0; idx < g1.size() * g2.size(); ++idx) {
      core::MechanismConfig cfg;
      cfg.plant = base;
      info.set_gains(cfg, g1[idx / g2.size()], g2[idx % g2.size()]);
      const auto mech = core::make_fluid_mechanism(info.name, cfg);
      const auto lane = core::make_mechanism_verdict_lane(*mech);
      if (!lane) {
        batched = false;  // no lane form: fall back to the scalar path
        lanes.clear();
        break;
      }
      lanes.push_back(*lane);
    }
    if (batched) {
      const auto verdicts =
          core::batch_numeric_verdicts(lanes, {.threads = ctx.threads});
      cells.reserve(verdicts.size());
      for (const auto& v : verdicts) {
        cells.push_back({v.strongly_stable, v.max_x, v.min_x});
      }
    }
  }
  if (!batched) {
    cells = exec::parallel_map<Cell>(
        g1.size() * g2.size(),
        [&, d1 = d1, d2 = d2](std::size_t idx) {
          core::MechanismConfig cfg;
          cfg.plant = base;
          info.set_gains(cfg, g1[idx / g2.size()], g2[idx % g2.size()]);
          const auto mech = core::make_fluid_mechanism(info.name, cfg);
          const auto verdict = core::mechanism_numeric_verdict(*mech);
          return Cell{verdict.strongly_stable, verdict.max_x, verdict.min_x};
        },
        {.threads = ctx.threads});
  }

  std::printf("\nmechanism: %s -- %s\n", info.name, info.summary);
  std::printf("map legend: generic numeric verdict per cell -- '#' bounded "
              "strictly inside the buffer strip, '.' not; columns %s="
              "%.4g..%.4g (log), rows %s=%.4g..%.4g (log)\n",
              info.gain2, g2.front(), g2.back(), info.gain1, g1.front(),
              g1.back());
  int stable = 0;
  std::size_t idx = 0;
  for (std::size_t i = 0; i < g1.size(); ++i) {
    std::printf("%s=%8.4g  ", info.gain1, g1[i]);
    for (std::size_t j = 0; j < g2.size(); ++j, ++idx) {
      stable += cells[idx].stable ? 1 : 0;
      std::fputc(cells[idx].stable ? '#' : '.', stdout);
    }
    std::fputc('\n', stdout);
  }
  std::printf("\n%d/%zu cells strongly stable (Theorem-1/Proposition "
              "columns are BCN-only and skipped for this mechanism)\n",
              stable, cells.size());

  CsvWriter csv({info.gain1, info.gain2, "numeric_stable", "max_x_bits",
                 "min_x_bits"});
  idx = 0;
  for (std::size_t i = 0; i < g1.size(); ++i) {
    for (std::size_t j = 0; j < g2.size(); ++j, ++idx) {
      csv.add_row({CsvWriter::format(g1[i]), CsvWriter::format(g2[j]),
                   cells[idx].stable ? "1" : "0",
                   CsvWriter::format(cells[idx].max_x),
                   CsvWriter::format(cells[idx].min_x)});
    }
  }
  const auto csv_path = ctx.out_dir / "propositions_stability_map.csv";
  if (csv.write_file(csv_path)) {
    std::printf("  [artifact] %s\n", csv_path.string().c_str());
  }
  return 0;
}

int run(bench::RunContext& ctx) {
  std::printf("=== Propositions 1-4: stability map ===\n");
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  bench::print_params(base);

  // Proposition 1: both subsystems Hurwitz-stable for any physical gains.
  const auto rep = control::analyze_linear_baseline(base.a(), base.b(),
                                                    base.k(), base.capacity);
  std::printf("\nProposition 1 (subsystem Hurwitz stability): increase %s, "
              "decrease %s\n",
              rep.increase.hurwitz_stable ? "stable" : "UNSTABLE",
              rep.decrease.hurwitz_stable ? "stable" : "UNSTABLE");

  // (Gi, Gd) map against the linearized numeric ground truth.
  const int grid = ctx.args->get_int("grid", 9);
  if (grid < 2) {
    std::fprintf(stderr, "--grid must be >= 2\n");
    return 2;
  }
  if (ctx.mechanism != "bcn" && ctx.mechanism != "bcn-draft") {
    const auto* info = core::find_mechanism(ctx.mechanism);
    if (!info->has_fluid) {
      std::printf("\nmechanism '%s' is packet-only (no fluid facet); no "
                  "stability map to draw -- see bench/mechanism_matrix for "
                  "its packet-level behavior.\n",
                  info->name);
      return 0;
    }
    return run_generic_map(ctx, *info, base, grid);
  }
  const auto gi = analysis::logspace(0.125, 32.0, grid);
  const auto gd = analysis::logspace(1.0 / 1024.0, 0.5, grid);
  const auto map = analysis::compute_stability_map(
      base, gi, gd,
      {.numeric_level = core::ModelLevel::Linearized,
       .threads = ctx.threads,
       .mode = ctx.map_mode,
       .metrics = ctx.metrics});
  if (ctx.map_mode != analysis::MapMode::Scalar) {
    std::printf("\nmap mode %s: integrated %zu/%zu cells in %d wave(s)\n",
                analysis::to_string(ctx.map_mode).c_str(),
                map.integrated_cells, map.cells.size(),
                map.refinement_waves);
  }

  std::printf("\nmap legend: numeric ground truth per cell -- '#' strongly "
              "stable, '.' unstable; columns Gd=%.4g..%.4g (log), rows "
              "Gi=%.4g..%.4g (log)\n",
              gd.front(), gd.back(), gi.front(), gi.back());
  std::size_t idx = 0;
  for (std::size_t i = 0; i < gi.size(); ++i) {
    std::printf("Gi=%8.4g  ", gi[i]);
    for (std::size_t j = 0; j < gd.size(); ++j, ++idx) {
      std::fputc(map.cells[idx].numeric.strongly_stable ? '#' : '.', stdout);
    }
    std::fputc('\n', stdout);
  }

  TablePrinter agg({"criterion", "cells declared stable", "false positives "
                    "vs numeric"});
  agg.add_row({"Theorem 1 (sufficient)",
               TablePrinter::format(map.theorem1_stable),
               TablePrinter::format(map.theorem1_false_positive)});
  agg.add_row({"Propositions 2-4",
               TablePrinter::format(map.proposition_stable),
               TablePrinter::format(map.proposition_false_positive)});
  agg.add_row({"numeric ground truth",
               TablePrinter::format(map.numeric_stable), "0"});
  std::fputs(
      agg.to_string(strf("\naggregate over the %dx%d grid", grid, grid))
          .c_str(),
      stdout);

  std::printf("\nTheorem 1 soundness: %s (a sound sufficient criterion must "
              "have 0 false positives)\n",
              map.theorem1_false_positive == 0 ? "PASS" : "FAIL");

  // Case distribution across the grid.
  int case_counts[5] = {0, 0, 0, 0, 0};
  for (const auto& cell : map.cells) {
    case_counts[static_cast<int>(cell.report.classification.paper_case)]++;
  }
  std::printf("\ncase distribution: Case1=%d Case2=%d Case3=%d Case4=%d "
              "Case5=%d\n",
              case_counts[0], case_counts[1], case_counts[2], case_counts[3],
              case_counts[4]);

  // Per-cell CSV: the artifact the determinism acceptance check diffs
  // between --threads 1 and --threads 0 runs.
  CsvWriter csv({"gi", "gd", "paper_case", "theorem1_satisfied",
                 "proposition_satisfied", "numeric_stable", "max_x_bits",
                 "min_x_bits"});
  for (const auto& cell : map.cells) {
    csv.add_row({CsvWriter::format(cell.gi), CsvWriter::format(cell.gd),
                 core::to_string(cell.report.classification.paper_case),
                 cell.report.theorem1_satisfied ? "1" : "0",
                 cell.report.proposition_satisfied ? "1" : "0",
                 cell.numeric.strongly_stable ? "1" : "0",
                 CsvWriter::format(cell.numeric.max_x),
                 CsvWriter::format(cell.numeric.min_x)});
  }
  const auto csv_path = ctx.out_dir / "propositions_stability_map.csv";
  if (csv.write_file(csv_path)) {
    std::printf("  [artifact] %s\n", csv_path.string().c_str());
  }

  // --- Proposition 4 boundary probe -------------------------------------
  // The paper claims a = 4 pm^2 C^2 / w^2 (with any b) is unconditionally
  // strongly stable, reasoning that the switching line is then a phase
  // trajectory (lambda = -1/k).  But at the boundary lambda = -2/k, not
  // -1/k, so the trajectory still crosses into the decrease region and
  // overshoots; with a small buffer the overshoot overflows.
  core::BcnParams boundary = bench::scaled_plant();
  boundary.gi =
      boundary.spiral_threshold() / (boundary.ru * boundary.num_sources);
  boundary.gd = 10.0;       // b C = 1e7, well below the threshold
  boundary.buffer = 2.5e3;  // B - q0 = 1500 < the ~1764-bit overshoot
  boundary.qsc = 2.2e3;
  const auto cls = core::classify_case(boundary);
  const auto report = core::analyze_stability(boundary);
  const auto verdict = core::numeric_strong_stability(
      boundary, {.level = core::ModelLevel::Linearized});
  std::printf("\nProposition 4 a-boundary probe: %s | Prop.4 verdict: "
              "stable | numeric: %s (max_x=%.6g vs B-q0=%.6g)\n",
              core::to_string(cls.paper_case).c_str(),
              verdict.strongly_stable ? "strongly stable"
                                      : "NOT strongly stable",
              verdict.max_x, boundary.buffer - boundary.q0);
  std::printf("-> %s\n",
              verdict.strongly_stable
                  ? "no counterexample at these parameters"
                  : "COUNTEREXAMPLE: Proposition 4's a-boundary branch is "
                    "not unconditional (see EXPERIMENTS.md); Theorem 1 "
                    "itself remains sound");
  (void)report;
  return 0;
}

}  // namespace

BCN_EXPERIMENT("propositions_stability_map",
               "Propositions 1-4 + Theorem-1 soundness over a (Gi, Gd) grid",
               run, "grid")
