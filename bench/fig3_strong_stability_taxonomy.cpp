// E10 / paper Fig. 3: the strong-stability taxonomy.  Fig. 3 sketches
// trajectory classes l1..l9 and argues that classical (Lyapunov/linear)
// stability and Definition-1 strong stability disagree on the classes
// whose transient clips the buffer walls.  This bench realizes each
// reachable class with concrete parameters and prints both verdicts side
// by side.
#include <cstdio>

#include "bench_util.h"
#include "runner.h"
#include "common/table.h"
#include "core/simulate.h"
#include "core/stability.h"

using namespace bcn;

namespace {

struct Scenario {
  const char* label;
  const char* fig3_class;
  core::BcnParams params;
};

}  // namespace

namespace {

int run(bench::RunContext& ctx) {
  (void)ctx;
  std::printf("=== Fig. 3: strong vs classical stability taxonomy ===\n\n");

  std::vector<Scenario> scenarios;

  {  // l3/l4 analog: classically stable, transient overflow -> strongly
     // unstable (the paper's central example).
    core::BcnParams p = core::BcnParams::standard_draft();
    scenarios.push_back({"standard draft, B = 5 Mbit", "l3/l4 (clipped)", p});
  }
  {  // l6/l8: contained damped spiral -> strongly stable.
    core::BcnParams p = core::BcnParams::standard_draft();
    p.buffer = 14e6;
    p.qsc = 13.5e6;
    scenarios.push_back({"standard draft, B = 14 Mbit", "l6/l8", p});
  }
  {  // l9-style: monotone node approach (Case 4, scaled plant).
    core::BcnParams p = bench::scaled_plant();
    p.gi = 4.0 * p.spiral_threshold() / (p.ru * p.num_sources);
    p.gd = 4.0 * p.spiral_threshold() / p.capacity;
    scenarios.push_back({"overdamped gains (Case 4, scaled)", "l9", p});
  }
  {  // no-overshoot Case 3 (stays below q0, scaled plant).
    core::BcnParams p = bench::scaled_plant();
    p.gd = 4.0 * p.spiral_threshold() / p.capacity;
    scenarios.push_back({"node decrease (Case 3, scaled)", "l8", p});
  }
  {  // l5/l7-like: nearly closed orbit (contraction ratio ~ 1).
    core::BcnParams p = core::BcnParams::standard_draft();
    p.buffer = 40e6;
    p.qsc = 36e6;
    scenarios.push_back({"near-limit-cycle (ratio ~ 0.9985)", "l5+l7", p});
  }

  TablePrinter table({"scenario", "Fig.3 class", "case",
                      "classical verdict [4]", "strong verdict (numeric)",
                      "peak q (bits)", "B (bits)"});
  for (const auto& s : scenarios) {
    const auto report = core::analyze_stability(s.params);
    const auto verdict = core::numeric_strong_stability(s.params);
    table.add_row(
        {s.label, s.fig3_class,
         core::to_string(report.classification.paper_case),
         report.baseline.declared_stable ? "stable" : "unstable",
         verdict.strongly_stable ? "strongly stable" : "NOT strongly stable",
         TablePrinter::format(verdict.max_x + s.params.q0, 4),
         TablePrinter::format(s.params.buffer, 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nPaper-shape check: every scenario is 'stable' under the "
              "linear baseline, but only the ones whose transient fits "
              "inside (0, B) are strongly stable -- Fig. 3's argument in "
              "numbers.\n");
  return 0;
}

}  // namespace

BCN_EXPERIMENT("fig3_strong_stability_taxonomy", "Fig. 3 / E10: strong vs classical stability taxonomy", run)
