// Flow churn: the fluid model holds N constant; these tests exercise
// on/off traffic where the active-flow count varies, and check that a
// buffer sized by Theorem 1 for the worst-case N stays strongly stable.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace bcn::sim {
namespace {

TEST(OnOffSourceTest, RespectsDutyCycle) {
  Simulator sim;
  SourceConfig sc;
  sc.id = 0;
  sc.initial_rate = 1e9;  // 12 us/frame
  sc.pattern = TrafficPattern::OnOff;
  sc.on_time = 1 * kMillisecond;
  sc.off_time = 1 * kMillisecond;
  sc.regulator.max_rate = 1e9;
  Source src(sim, sc);
  std::vector<SimTime> times;
  src.start([&](const Frame&) { times.push_back(sim.now()); });
  sim.run_until(4 * kMillisecond);
  ASSERT_FALSE(times.empty());
  int in_on = 0, in_off = 0;
  for (const SimTime t : times) {
    const SimTime phase = t % (2 * kMillisecond);
    (phase < kMillisecond ? in_on : in_off)++;
  }
  EXPECT_GT(in_on, 100);   // ~83 frames per on-window x 2 windows
  EXPECT_EQ(in_off, 0);    // nothing during silences
}

TEST(OnOffSourceTest, SaturatingIgnoresOnOffKnobs) {
  Simulator sim;
  SourceConfig sc;
  sc.initial_rate = 1e9;
  sc.pattern = TrafficPattern::Saturating;
  sc.on_time = kMillisecond;
  sc.off_time = kMillisecond;
  sc.regulator.max_rate = 1e9;
  Source src(sim, sc);
  int count = 0;
  src.start([&](const Frame&) { ++count; });
  sim.run_until(4 * kMillisecond);
  EXPECT_GT(count, 300);  // continuous ~83 frames/ms
}

TEST(ChurnTest, WorstCaseSizedBufferSurvivesChurn) {
  // Buffer sized per Theorem 1 for the full N = 20: with half the flows
  // silent at any moment the effective N is smaller and the criterion
  // only gets safer -- no drops, queue bounded.
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 20;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.pm = 0.2;
  p.gi = 0.5;
  p.buffer = 1.2 * p.theorem1_required_buffer();
  p.qsc = 0.95 * p.buffer;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.pattern = TrafficPattern::OnOff;
  cfg.on_time = 4 * kMillisecond;
  cfg.off_time = 4 * kMillisecond;
  cfg.stagger = 400 * kMicrosecond;  // interleaved duty cycles
  Network net(cfg);
  net.run(60 * kMillisecond);
  const auto& st = net.stats();
  EXPECT_EQ(st.counters.frames_dropped, 0u);
  EXPECT_LT(st.max_queue(), p.buffer);
  EXPECT_GT(st.counters.frames_delivered, 0u);
}

TEST(ChurnTest, ChurnPerturbsQueueMoreThanSteadyTraffic) {
  auto late_excursion = [](TrafficPattern pattern) {
    NetworkConfig cfg;
    core::BcnParams p;
    p.num_sources = 10;
    p.capacity = 10e9;
    p.q0 = 2.5e6;
    p.buffer = 30e6;
    p.qsc = 28e6;
    p.pm = 0.2;
    p.gi = 0.5;
    cfg.params = p;
    cfg.initial_rate = p.capacity / p.num_sources;
    cfg.pattern = pattern;
    cfg.on_time = 3 * kMillisecond;
    cfg.off_time = 3 * kMillisecond;
    cfg.stagger = 300 * kMicrosecond;
    Network net(cfg);
    net.run(60 * kMillisecond);
    double lo = 1e18, hi = -1e18;
    for (const auto& tp : net.stats().trace()) {
      if (tp.t < 30 * kMillisecond) continue;
      lo = std::min(lo, tp.queue_bits);
      hi = std::max(hi, tp.queue_bits);
    }
    return hi - lo;
  };
  EXPECT_GT(late_excursion(TrafficPattern::OnOff),
            1.5 * late_excursion(TrafficPattern::Saturating));
}

TEST(ChurnTest, StaggeredStartsDelaySources) {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 4;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  cfg.params = p;
  cfg.initial_rate = 1e9;
  cfg.stagger = 5 * kMillisecond;
  Network net(cfg);
  net.run(2 * kMillisecond);
  // Only source 0 has started.
  std::uint64_t active = 0;
  for (const auto& src : net.sources()) {
    if (src->frames_sent() > 0) ++active;
  }
  EXPECT_EQ(active, 1u);
}

}  // namespace
}  // namespace bcn::sim
