#include "sim/network.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

// A calibrated slow-dynamics configuration where per-source feedback is
// frequent relative to the oscillation period, so the packet system tracks
// the fluid model (see DESIGN.md E11 and the integration suite).
NetworkConfig slow_regime() {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  return cfg;
}

TEST(NetworkTest, ConvergesToReferenceQueue) {
  Network net(slow_regime());
  net.run(40 * kMillisecond);
  const auto& st = net.stats();
  EXPECT_EQ(st.counters.frames_dropped, 0u);
  // Queue settles near q0 = 2.5 Mbit.
  const auto& trace = st.trace();
  ASSERT_FALSE(trace.empty());
  double tail_sum = 0.0;
  int n = 0;
  for (const auto& p : trace) {
    if (p.t < 30 * kMillisecond) continue;
    tail_sum += p.queue_bits;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(tail_sum / n, 2.5e6, 0.3e6);
}

TEST(NetworkTest, FullThroughputAtEquilibrium) {
  Network net(slow_regime());
  net.run(40 * kMillisecond);
  const double thr = net.stats().throughput(40 * kMillisecond);
  EXPECT_GT(thr, 0.95 * 10e9);
  EXPECT_LE(thr, 10.05e9 * 1.001);
}

TEST(NetworkTest, BothFeedbackDirectionsUsed) {
  Network net(slow_regime());
  net.run(40 * kMillisecond);
  EXPECT_GT(net.stats().counters.bcn_negative, 0u);
  EXPECT_GT(net.stats().counters.bcn_positive, 0u);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  Network a(slow_regime());
  Network b(slow_regime());
  a.run(10 * kMillisecond);
  b.run(10 * kMillisecond);
  EXPECT_EQ(a.stats().counters.frames_sent, b.stats().counters.frames_sent);
  EXPECT_DOUBLE_EQ(a.queue_bits(), b.queue_bits());
  EXPECT_DOUBLE_EQ(a.aggregate_rate(), b.aggregate_rate());
}

TEST(NetworkTest, IncrementalRunsCompose) {
  Network once(slow_regime());
  once.run(10 * kMillisecond);
  Network twice(slow_regime());
  twice.run(4 * kMillisecond);
  twice.run(6 * kMillisecond);
  EXPECT_EQ(once.stats().counters.frames_sent,
            twice.stats().counters.frames_sent);
  EXPECT_DOUBLE_EQ(once.queue_bits(), twice.queue_bits());
}

// Overloaded start (aggregate 15 Gbps into a 10 Gbps link) against a tiny
// buffer: the queue must overflow before the feedback can react.
NetworkConfig overload_regime() {
  NetworkConfig cfg = slow_regime();
  cfg.params.buffer = 1e6;
  cfg.params.qsc = 0.9e6;
  cfg.params.q0 = 0.5e6;
  cfg.initial_rate = 3e9;  // 5 sources x 3 Gbps
  return cfg;
}

TEST(NetworkTest, TinyBufferDropsAndPauses) {
  Network net(overload_regime());
  net.run(20 * kMillisecond);
  EXPECT_GT(net.stats().counters.frames_dropped, 0u);
  EXPECT_GT(net.stats().counters.pause_frames, 0u);
}

TEST(NetworkTest, PauseCanBeDisabled) {
  NetworkConfig cfg = overload_regime();
  cfg.enable_pause = false;
  // 45 Gbps into 10 Gbps: the buffer fills in ~30 us, faster than any
  // feedback loop can throttle, so drops occur even with BCN active.
  cfg.initial_rate = 9e9;
  Network net(cfg);
  net.run(20 * kMillisecond);
  EXPECT_EQ(net.stats().counters.pause_frames, 0u);
  EXPECT_GT(net.stats().counters.frames_dropped, 0u);
}

TEST(NetworkTest, SourceCountMatchesParams) {
  Network net(slow_regime());
  EXPECT_EQ(net.sources().size(), 5u);
  // All sources start at C/N.
  for (const auto& src : net.sources()) {
    EXPECT_DOUBLE_EQ(src->rate(), 2e9);
  }
}

TEST(NetworkTest, DraftModeSustainsQuantizationOscillation) {
  // Per-message quantized AIMD never settles exactly: the queue keeps a
  // bounded, non-decaying wiggle of a few frames -- the residual
  // oscillation reported in the experiments of Lu et al. [4], which the
  // continuous fluid model cannot itself produce.
  NetworkConfig cfg = slow_regime();
  cfg.mechanism = "bcn-draft";
  Network net(cfg);
  net.run(80 * kMillisecond);
  auto excursion = [&](SimTime lo_t, SimTime hi_t) {
    double lo = 1e18, hi = -1e18;
    for (const auto& p : net.stats().trace()) {
      if (p.t < lo_t || p.t > hi_t) continue;
      lo = std::min(lo, p.queue_bits);
      hi = std::max(hi, p.queue_bits);
    }
    return hi - lo;
  };
  const double frame = cfg.frame_bits;
  const double w1 = excursion(40 * kMillisecond, 60 * kMillisecond);
  const double w2 = excursion(60 * kMillisecond, 80 * kMillisecond);
  // At least a couple of frames of residual oscillation in each window...
  EXPECT_GT(w1, 2.0 * frame);
  EXPECT_GT(w2, 2.0 * frame);
  // ...which does not decay away (same order across windows)...
  EXPECT_GT(w2, 0.3 * w1);
  EXPECT_LT(w2, 3.0 * w1);
  // ...but stays bounded well inside the buffer.
  EXPECT_LT(w2, 0.2 * cfg.params.buffer);
}

}  // namespace
}  // namespace bcn::sim
