#include "sim/source.h"

#include <vector>

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

SourceConfig basic_config() {
  SourceConfig c;
  c.id = 4;
  c.frame_bits = 12000.0;
  c.initial_rate = 1e9;  // 12 us per frame
  c.regulator.min_rate = 1e6;
  c.regulator.max_rate = 10e9;
  return c;
}

TEST(SourceTest, PacesAtConfiguredRate) {
  Simulator sim;
  Source src(sim, basic_config());
  std::vector<SimTime> times;
  src.start([&](const Frame& f) {
    times.push_back(sim.now());
    EXPECT_EQ(f.source, 4u);
    EXPECT_DOUBLE_EQ(f.size_bits, 12000.0);
  });
  sim.run_until(120 * kMicrosecond);
  // 1 Gbps, 12000-bit frames: one every 12 us -> ~11 frames in 120 us.
  ASSERT_GE(times.size(), 10u);
  EXPECT_EQ(times[1] - times[0], 12 * kMicrosecond);
  EXPECT_EQ(times[2] - times[1], 12 * kMicrosecond);
}

TEST(SourceTest, FramesCarrySequentialSeq) {
  Simulator sim;
  Source src(sim, basic_config());
  std::vector<std::uint64_t> seqs;
  src.start([&](const Frame& f) { seqs.push_back(f.seq); });
  sim.run_until(60 * kMicrosecond);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
  EXPECT_EQ(src.frames_sent(), seqs.size());
}

TEST(SourceTest, NegativeBcnSlowsPacing) {
  Simulator sim;
  Source src(sim, basic_config());
  int count = 0;
  src.start([&](const Frame&) { ++count; });
  sim.run_until(24 * kMicrosecond);
  const int before = count;
  // Halve-ish the rate via a strong negative sigma.
  BcnMessage msg{1, 4, -88723.0, 0};  // exp(gd*sigma*dt) shaped by dt
  src.on_bcn(msg);
  sim.run_until(240 * kMicrosecond);
  const double late_rate = src.rate();
  EXPECT_LT(late_rate, 1e9);
  EXPECT_GT(count, before);  // still sending, just slower
}

TEST(SourceTest, RrtTagAppearsAfterAssociation) {
  Simulator sim;
  Source src(sim, basic_config());
  std::vector<bool> tags;
  src.start([&](const Frame& f) { tags.push_back(f.has_rrt); });
  sim.run_until(20 * kMicrosecond);
  EXPECT_FALSE(tags.back());
  src.on_bcn({9, 4, -1000.0, 0});
  sim.run_until(60 * kMicrosecond);
  EXPECT_TRUE(tags.back());
  EXPECT_EQ(src.regulator().cpid(), 9u);
}

TEST(SourceTest, PauseSuspendsTransmission) {
  Simulator sim;
  Source src(sim, basic_config());
  std::vector<SimTime> times;
  src.start([&](const Frame&) { times.push_back(sim.now()); });
  sim.run_until(12 * kMicrosecond);
  const auto before = times.size();
  src.on_pause({100 * kMicrosecond, sim.now()});
  sim.run_until(100 * kMicrosecond);
  EXPECT_EQ(times.size(), before);  // nothing during the pause window
  sim.run_until(200 * kMicrosecond);
  EXPECT_GT(times.size(), before);  // resumed afterwards
}

TEST(SourceTest, OverlappingPausesExtendNotShorten) {
  Simulator sim;
  Source src(sim, basic_config());
  std::vector<SimTime> times;
  src.start([&](const Frame&) { times.push_back(sim.now()); });
  sim.run_until(kMicrosecond);
  src.on_pause({100 * kMicrosecond, sim.now()});
  sim.run_until(2 * kMicrosecond);
  src.on_pause({10 * kMicrosecond, sim.now()});  // shorter: must not shrink
  times.clear();
  sim.run_until(100 * kMicrosecond);
  EXPECT_TRUE(times.empty());
}

TEST(SourceTest, StartDelayHonored) {
  Simulator sim;
  SourceConfig c = basic_config();
  c.start_at = 50 * kMicrosecond;
  Source src(sim, c);
  std::vector<SimTime> times;
  src.start([&](const Frame&) { times.push_back(sim.now()); });
  sim.run_until(200 * kMicrosecond);
  ASSERT_FALSE(times.empty());
  EXPECT_GE(times.front(), 50 * kMicrosecond);
}

}  // namespace
}  // namespace bcn::sim
