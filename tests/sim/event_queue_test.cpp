#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMicrosecond), 1e-6);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_seconds(to_seconds(12345)), 12345);
}

TEST(SimTimeTest, TransmissionTimeRoundsUp) {
  // 12000 bits at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ(transmission_time(12000.0, 10e9), 1200);
  // 1 bit at 10 Gbps = 0.1 ns -> rounds up to 1 ns.
  EXPECT_EQ(transmission_time(1.0, 10e9), 1);
  EXPECT_EQ(transmission_time(0.0, 10e9), 0);
  // Zero rate never completes (huge sentinel).
  EXPECT_GT(transmission_time(1.0, 0.0), kSecond);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  sim.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
  sim.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(5, [&] { fired_at = sim.now(); });
  });
  sim.run_until(100);
  EXPECT_EQ(fired_at, 15);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.cancel(id);
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelInvalidAndFiredIsNoop) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(10, [&] { ++fired; });
  sim.run_until(50);
  sim.cancel(id);           // already fired
  sim.cancel(kInvalidEvent);  // invalid handle
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, EventsScheduledInPastClampToNow) {
  Simulator sim;
  sim.run_until(50);
  SimTime fired_at = -1;
  sim.schedule_at(10, [&] { fired_at = sim.now(); });
  sim.run_until(60);
  EXPECT_EQ(fired_at, 50);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sim.schedule_after(5, tick);
  };
  sim.schedule_at(0, tick);
  const std::size_t executed = sim.run_until(1000);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(executed, 10u);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, IdleReflectsLiveEvents) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.idle());
  sim.cancel(id);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace bcn::sim
