// The "fera" mechanism: the FERA/ERICA direction of paper Section II --
// the switch advertises an explicit allowed rate; regulators adopt it.
#include <gtest/gtest.h>

#include "sim/mechanism.h"
#include "sim/network.h"
#include "sim/rate_regulator.h"

namespace bcn::sim {
namespace {

RegulatorConfig fera_config() {
  RegulatorConfig c;
  c.min_rate = 1e6;
  c.max_rate = 10e9;
  return c;
}

// Default FeraParams: smoothing 0.5.
const PacketMechanism& fera_mechanism() {
  static const auto mech = make_packet_mechanism("fera");
  return *mech;
}

TEST(FeraRegulatorTest, AdoptsAdvertisedRateWithSmoothing) {
  RateRegulator reg(fera_config(), 2e9, 0, &fera_mechanism());
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1.0,
              .advertised_rate = 1e9, .sent_at = 0},
             100);
  EXPECT_NEAR(reg.rate(), 1.5e9, 1e3);  // EWMA halfway
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1.0,
              .advertised_rate = 1e9, .sent_at = 0},
             200);
  EXPECT_NEAR(reg.rate(), 1.25e9, 1e3);
}

TEST(FeraRegulatorTest, InstantAdoptionWithFullSmoothing) {
  core::MechanismConfig m;
  m.fera.smoothing = 1.0;
  const auto mech = make_packet_mechanism("fera", m);
  RateRegulator reg(fera_config(), 2e9, 0, mech.get());
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = 5.0,
              .advertised_rate = 3e9, .sent_at = 0},
             100);
  EXPECT_DOUBLE_EQ(reg.rate(), 3e9);
}

TEST(FeraRegulatorTest, MessageWithoutAdvertisedRateIgnored) {
  RateRegulator reg(fera_config(), 2e9, 0, &fera_mechanism());
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1e6, .sent_at = 0}, 100);
  EXPECT_DOUBLE_EQ(reg.rate(), 2e9);
}

TEST(FeraRegulatorTest, ClampedToLimits) {
  RateRegulator reg(fera_config(), 2e9, 0, &fera_mechanism());
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1.0,
              .advertised_rate = 0.0, .sent_at = 0},
             100);
  reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1.0,
              .advertised_rate = 0.0, .sent_at = 0},
             200);
  for (int i = 0; i < 60; ++i) {
    reg.on_bcn({.cpid = 1, .target = 0, .sigma = -1.0,
                .advertised_rate = 0.0, .sent_at = 0},
               300 + i);
  }
  EXPECT_DOUBLE_EQ(reg.rate(), 1e6);  // min_rate floor
}

TEST(FeraNetworkTest, ConvergesToFairShareAndReference) {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 8;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  cfg.params = p;
  cfg.mechanism = "fera";
  cfg.initial_rate = 2e9;  // 16 Gbps burst
  Network net(cfg);
  net.run(60 * kMillisecond);
  const auto& st = net.stats();
  EXPECT_EQ(st.counters.frames_dropped, 0u);
  // Every source ends near the fair share C/N = 1.25 Gbps.
  for (const auto& src : net.sources()) {
    EXPECT_NEAR(src->rate(), 1.25e9, 0.3e9);
  }
  EXPECT_GT(st.jain_fairness_index(), 0.95);
  // Queue regulated near q0.
  double tail = 0.0;
  int n = 0;
  for (const auto& tp : st.trace()) {
    if (tp.t < 40 * kMillisecond) continue;
    tail += tp.queue_bits;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(tail / n, p.q0, 0.6 * p.q0);
}

TEST(FeraNetworkTest, SettlesWithinFewAdvertisementRounds) {
  // One advertisement reaches each source roughly every N / (pm * C / L)
  // seconds (~0.5 ms here); the EWMA needs a handful of rounds, so the
  // queue must be settled (and stay settled) within a few milliseconds.
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 8;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  cfg.params = p;
  cfg.mechanism = "fera";
  cfg.initial_rate = 2e9;
  Network net(cfg);
  net.run(60 * kMillisecond);
  SimTime last_violation = 0;
  for (const auto& tp : net.stats().trace()) {
    if (std::abs(tp.queue_bits - p.q0) > 0.5 * p.q0) {
      last_violation = tp.t;
    }
  }
  EXPECT_LT(last_violation, 5 * kMillisecond);
}

}  // namespace
}  // namespace bcn::sim
