#include "sim/switch_port.h"

#include <vector>

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

Frame make_frame(SourceId src = 0, double bits = 12000.0) {
  Frame f;
  f.source = src;
  f.size_bits = bits;
  return f;
}

TEST(SwitchPortTest, ForwardsToSink) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.rate = 1e9;  // 12 us per frame
  SwitchPort port(sim, cfg);
  std::vector<Frame> out;
  port.set_sink([&](const Frame& f) { out.push_back(f); });
  port.on_frame(make_frame(3));
  port.on_frame(make_frame(4));
  sim.run_until(24 * kMicrosecond);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].source, 3u);
  EXPECT_EQ(out[1].source, 4u);
  EXPECT_EQ(port.stats().delivered, 2u);
}

TEST(SwitchPortTest, DropTail) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.rate = 1e9;
  cfg.buffer_bits = 24000.0;  // two frames
  SwitchPort port(sim, cfg);
  for (int i = 0; i < 4; ++i) port.on_frame(make_frame());
  EXPECT_EQ(port.stats().enqueued, 2u);
  EXPECT_EQ(port.stats().dropped, 2u);
}

TEST(SwitchPortTest, PauseStopsServiceAndResumes) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.rate = 1e9;
  SwitchPort port(sim, cfg);
  std::vector<SimTime> times;
  port.set_sink([&](const Frame&) { times.push_back(sim.now()); });
  port.on_frame(make_frame());
  port.on_frame(make_frame());
  // Pause arrives mid-service of the first frame: the in-flight frame
  // completes (it is already on the wire), the second one must wait.
  sim.schedule_at(5 * kMicrosecond, [&] {
    port.on_pause({100 * kMicrosecond, sim.now()});
  });
  sim.run_until(100 * kMicrosecond);
  ASSERT_EQ(times.size(), 1u);  // only the in-flight frame got out
  EXPECT_EQ(times[0], 12 * kMicrosecond);
  sim.run_until(200 * kMicrosecond);
  ASSERT_EQ(times.size(), 2u);  // resumed after the pause window
  EXPECT_GE(times[1], 105 * kMicrosecond);
}

TEST(SwitchPortTest, UpstreamPauseFiresAtThreshold) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.rate = 1e6;  // slow drain so the queue builds
  cfg.buffer_bits = 1e6;
  cfg.pause_threshold = 48000.0;  // 4 frames
  SwitchPort port(sim, cfg);
  int pauses = 0;
  port.set_pause_upstream([&](const PauseFrame&) { ++pauses; });
  for (int i = 0; i < 3; ++i) port.on_frame(make_frame());
  EXPECT_EQ(pauses, 0);
  for (int i = 0; i < 3; ++i) port.on_frame(make_frame());
  EXPECT_EQ(pauses, 1);  // cooldown limits to one
}

TEST(SwitchPortTest, NegativeBcnWhenCongested) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.rate = 1e6;
  cfg.buffer_bits = 1e6;
  cfg.bcn_pm = 0.5;  // sample every 2nd frame
  cfg.bcn_q0 = 24000.0;
  cfg.cpid = 9;
  SwitchPort port(sim, cfg);
  std::vector<BcnMessage> msgs;
  port.set_bcn_sender([&](const BcnMessage& m) { msgs.push_back(m); });
  for (int i = 0; i < 10; ++i) port.on_frame(make_frame(5));
  ASSERT_FALSE(msgs.empty());
  EXPECT_EQ(msgs.back().cpid, 9u);
  EXPECT_EQ(msgs.back().target, 5u);
  EXPECT_LT(msgs.back().sigma, 0.0);
  // Negative-only: no positive messages even when under q0 again.
  EXPECT_EQ(port.stats().bcn_sent, msgs.size());
}

TEST(SwitchPortTest, NoBcnWhenSamplingDisabled) {
  Simulator sim;
  SwitchPortConfig cfg;
  cfg.bcn_pm = 0.0;
  SwitchPort port(sim, cfg);
  int msgs = 0;
  port.set_bcn_sender([&](const BcnMessage&) { ++msgs; });
  for (int i = 0; i < 20; ++i) port.on_frame(make_frame());
  EXPECT_EQ(msgs, 0);
}

}  // namespace
}  // namespace bcn::sim
