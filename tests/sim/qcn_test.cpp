// The "qcn" mechanism: negative-only quantized feedback with
// source-driven recovery (the QCN direction the paper's Section II
// sketches).
#include <gtest/gtest.h>

#include "sim/mechanism.h"
#include "sim/network.h"
#include "sim/rate_regulator.h"

namespace bcn::sim {
namespace {

RegulatorConfig qcn_config() {
  RegulatorConfig c;
  c.min_rate = 1e6;
  c.max_rate = 10e9;
  c.frame_bits = 12000.0;
  return c;
}

// Defaults: 6 feedback bits, fb_scale 64, max_decrease 0.5, R_AI 5 Mbps.
const PacketMechanism& qcn_mechanism() {
  static const auto mech = make_packet_mechanism("qcn");
  return *mech;
}

TEST(QcnRegulatorTest, PositiveFeedbackIgnored) {
  RateRegulator reg(qcn_config(), 1e9, 0, &qcn_mechanism());
  reg.on_bcn({1, 0, 1e6, 0}, 100);
  EXPECT_DOUBLE_EQ(reg.rate(), 1e9);
}

TEST(QcnRegulatorTest, NegativeFeedbackQuantizedDecrease) {
  RateRegulator reg(qcn_config(), 1e9, 0, &qcn_mechanism());
  // sigma = -64 frames -> full-scale Fb = 63 -> factor 1 - 0.5*63/64.
  reg.on_bcn({1, 0, -64.0 * 12000.0, 0}, 100);
  EXPECT_NEAR(reg.rate(), 1e9 * (1.0 - 0.5 * 63.0 / 64.0), 1e3);
  EXPECT_DOUBLE_EQ(reg.target_rate(), 1e9);
  EXPECT_TRUE(reg.in_fast_recovery());
}

TEST(QcnRegulatorTest, SmallSigmaStillQuantizesToOneStep) {
  RateRegulator reg(qcn_config(), 1e9, 0, &qcn_mechanism());
  // A tiny violation maps to Fb = 1, not zero (ceil quantization).
  reg.on_bcn({1, 0, -0.1 * 12000.0, 0}, 100);
  EXPECT_NEAR(reg.rate(), 1e9 * (1.0 - 0.5 * 1.0 / 64.0), 1e3);
}

TEST(QcnRegulatorTest, FastRecoveryHalvesTowardTarget) {
  RateRegulator reg(qcn_config(), 1e9, 0, &qcn_mechanism());
  reg.on_bcn({1, 0, -64.0 * 12000.0, 0}, 100);
  const double after_drop = reg.rate();
  reg.self_increase();
  EXPECT_NEAR(reg.rate(), (after_drop + 1e9) / 2.0, 1e3);
  // Five cycles bring the rate within ~3% of the target.
  for (int i = 0; i < 4; ++i) reg.self_increase();
  EXPECT_GT(reg.rate(), 0.97e9);
  EXPECT_FALSE(reg.in_fast_recovery());
}

TEST(QcnRegulatorTest, ActiveIncreaseProbesBeyondTarget) {
  RateRegulator reg(qcn_config(), 1e9, 0, &qcn_mechanism());
  reg.on_bcn({1, 0, -64.0 * 12000.0, 0}, 100);
  for (int i = 0; i < 5; ++i) reg.self_increase();  // finish fast recovery
  const double recovered = reg.rate();
  reg.self_increase();  // active increase raises the target by R_AI
  EXPECT_GT(reg.rate(), recovered);
  EXPECT_GT(reg.target_rate(), 1e9);
}

TEST(QcnRegulatorTest, SelfIncreaseNoopForBcnMechanism) {
  // The default (BCN) mechanism has no self-increase timer.
  RateRegulator reg(qcn_config(), 1e9, 0);
  reg.self_increase();
  EXPECT_DOUBLE_EQ(reg.rate(), 1e9);
}

TEST(QcnNetworkTest, NegativeOnlyFeedbackStillControlsQueue) {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  cfg.params = p;
  cfg.mechanism = "qcn";
  cfg.initial_rate = 3e9;  // overloaded start: 15 Gbps aggregate
  Network net(cfg);
  net.run(60 * kMillisecond);
  const auto& st = net.stats();
  // No positive BCN ever sent.
  EXPECT_EQ(st.counters.bcn_positive, 0u);
  EXPECT_GT(st.counters.bcn_negative, 0u);
  EXPECT_EQ(st.counters.frames_dropped, 0u);
  // The queue is kept bounded well below the buffer...
  EXPECT_LT(st.max_queue(), 0.5 * p.buffer);
  // ...and the link stays highly utilized in the steady half.
  double tail_rate = 0.0;
  int n = 0;
  for (const auto& tp : st.trace()) {
    if (tp.t < 30 * kMillisecond) continue;
    tail_rate += tp.aggregate_rate;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(tail_rate / n, 0.85 * p.capacity);
}

TEST(QcnNetworkTest, SawtoothAroundLinkCapacity) {
  // QCN's probe-and-back-off makes the aggregate rate a sawtooth around
  // C, unlike the BCN equilibrium at q0.
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  cfg.params = p;
  cfg.mechanism = "qcn";
  cfg.initial_rate = 2e9;
  Network net(cfg);
  net.run(100 * kMillisecond);
  // Rate repeatedly crosses C: count crossings in the second half.
  int crossings = 0;
  bool above = false;
  bool first = true;
  for (const auto& tp : net.stats().trace()) {
    if (tp.t < 50 * kMillisecond) continue;
    const bool now_above = tp.aggregate_rate > p.capacity;
    if (!first && now_above != above) ++crossings;
    above = now_above;
    first = false;
  }
  EXPECT_GE(crossings, 2);
}

}  // namespace
}  // namespace bcn::sim
