// The typed-event pool and indexed heap: handle lifecycle, in-place
// cancel/reschedule, FIFO tie-breaking, slot recycling, and the
// zero-allocation steady state.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/event_queue.h"

// Global allocation counter for the zero-allocation assertions below.
// Counting is toggled around the region under test, so the gtest
// machinery's own allocations never pollute a measurement.  Atomics keep
// the override safe under the TSan job, which runs this binary too.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace bcn::sim {
namespace {

// Records every dispatched event in firing order.
class Recorder : public EventTarget {
 public:
  struct Entry {
    EventKind kind;
    std::uint32_t tag;
    SimTime at;
  };

  explicit Recorder(Simulator& sim) : sim_(sim) {}

  void on_event(const SimEvent& event) override {
    entries_.push_back({event.kind, event.tag, sim_.now()});
    last_ = event;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  const SimEvent& last() const { return last_; }

 private:
  Simulator& sim_;
  std::vector<Entry> entries_;
  SimEvent last_;
};

TEST(EventHeapTest, TypedEventsCarryKindTagAndPayload) {
  Simulator sim;
  Recorder rec(sim);

  Frame frame;
  frame.source = 7;
  frame.size_bits = 12000.0;
  frame.seq = 42;
  sim.schedule_frame(10, &rec, 1, frame);
  sim.run_until(10);
  ASSERT_EQ(rec.entries().size(), 1u);
  EXPECT_EQ(rec.last().kind, EventKind::FrameArrival);
  EXPECT_EQ(rec.last().tag, 1u);
  EXPECT_EQ(rec.last().payload.frame.source, 7u);
  EXPECT_EQ(rec.last().payload.frame.seq, 42u);

  BcnMessage bcn;
  bcn.target = 3;
  bcn.sigma = -1.5;
  sim.schedule_bcn(20, &rec, 2, bcn);
  sim.run_until(20);
  EXPECT_EQ(rec.last().kind, EventKind::BcnDelivery);
  EXPECT_EQ(rec.last().payload.bcn.target, 3u);
  EXPECT_DOUBLE_EQ(rec.last().payload.bcn.sigma, -1.5);

  PauseFrame pause;
  pause.duration = 999;
  sim.schedule_pause(30, &rec, 3, pause);
  sim.run_until(30);
  EXPECT_EQ(rec.last().kind, EventKind::PauseDelivery);
  EXPECT_EQ(rec.last().payload.pause.duration, 999);
}

TEST(EventHeapTest, SimultaneousTypedAndCallbackEventsFifo) {
  Simulator sim;
  Recorder rec(sim);
  std::vector<int> order;
  // Interleave kinds at one instant; firing must follow scheduling order.
  sim.schedule_event(10, &rec, EventKind::Tick, 0);
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_event(10, &rec, EventKind::Tick, 2);
  sim.schedule_at(10, [&] { order.push_back(3); });
  std::vector<std::uint32_t> tags;
  sim.run_until(10);
  ASSERT_EQ(rec.entries().size(), 2u);
  EXPECT_EQ(rec.entries()[0].tag, 0u);
  EXPECT_EQ(rec.entries()[1].tag, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventHeapTest, CancelRemovesFromHeapImmediately) {
  Simulator sim;
  Recorder rec(sim);
  const EventId a = sim.schedule_event(10, &rec, EventKind::Tick, 0);
  sim.schedule_event(20, &rec, EventKind::Tick, 1);
  EXPECT_EQ(sim.heap_size(), 2u);
  sim.cancel(a);
  // In-place heap removal: no tombstone waits to be popped later.
  EXPECT_EQ(sim.heap_size(), 1u);
  EXPECT_EQ(sim.cancelled_count(), 1u);
  sim.run_until(100);
  ASSERT_EQ(rec.entries().size(), 1u);
  EXPECT_EQ(rec.entries()[0].tag, 1u);
}

// Regression: cancelling an event after it fired used to leave a tombstone
// in a cancelled-set that grew without bound.  Stale cancels must be
// no-ops and the pool must stay compact.
TEST(EventHeapTest, CancelAfterFireLeavesNoResidue) {
  Simulator sim;
  Recorder rec(sim);
  std::vector<EventId> fired_ids;
  for (int round = 0; round < 10'000; ++round) {
    const EventId id =
        sim.schedule_event(sim.now() + 1, &rec, EventKind::Tick, 0);
    sim.run_until(sim.now() + 1);
    sim.cancel(id);  // stale: event already fired
    sim.cancel(id);  // repeated stale cancel, still a no-op
  }
  EXPECT_EQ(sim.heap_size(), 0u);
  EXPECT_TRUE(sim.idle());
  // One live event at a time -> the slab never needed more than one slot,
  // and every slot is back on the free list.
  EXPECT_LE(sim.pool_slots(), 2u);
  EXPECT_EQ(sim.pool_free(), sim.pool_slots());
  // Stale cancels counted nothing.
  EXPECT_EQ(sim.cancelled_count(), 0u);
  EXPECT_EQ(sim.executed(), 10'000u);
}

TEST(EventHeapTest, RescheduleMovesEventInPlace) {
  Simulator sim;
  Recorder rec(sim);
  const EventId id = sim.schedule_event(100, &rec, EventKind::Tick, 0);
  sim.schedule_event(50, &rec, EventKind::Tick, 1);
  EXPECT_TRUE(sim.reschedule(id, 10));  // move ahead of the tag-1 event
  EXPECT_EQ(sim.heap_size(), 2u);      // moved, not re-inserted
  sim.run_until(200);
  ASSERT_EQ(rec.entries().size(), 2u);
  EXPECT_EQ(rec.entries()[0].tag, 0u);
  EXPECT_EQ(rec.entries()[0].at, 10);
  EXPECT_EQ(rec.entries()[1].tag, 1u);
  EXPECT_EQ(sim.rescheduled_count(), 1u);
}

TEST(EventHeapTest, RescheduleReentersFifoOrder) {
  Simulator sim;
  Recorder rec(sim);
  const EventId id = sim.schedule_event(10, &rec, EventKind::Tick, 0);
  sim.schedule_event(10, &rec, EventKind::Tick, 1);
  // Rescheduling to the same instant is a cancel + fresh schedule: the
  // moved event now fires after the tag-1 event it originally preceded.
  EXPECT_TRUE(sim.reschedule(id, 10));
  sim.run_until(10);
  ASSERT_EQ(rec.entries().size(), 2u);
  EXPECT_EQ(rec.entries()[0].tag, 1u);
  EXPECT_EQ(rec.entries()[1].tag, 0u);
}

TEST(EventHeapTest, RescheduleStaleHandleFails) {
  Simulator sim;
  Recorder rec(sim);
  const EventId id = sim.schedule_event(10, &rec, EventKind::Tick, 0);
  sim.run_until(10);
  EXPECT_FALSE(sim.reschedule(id, 20));
  const EventId cancelled = sim.schedule_event(30, &rec, EventKind::Tick, 1);
  sim.cancel(cancelled);
  EXPECT_FALSE(sim.reschedule(cancelled, 40));
  sim.run_until(100);
  EXPECT_EQ(rec.entries().size(), 1u);
}

// A recurring timer that re-arms from inside its own handler keeps one
// pool slot for its whole lifetime.
TEST(EventHeapTest, SelfRearmingTimerReusesItsSlot) {
  Simulator sim;

  class Timer : public EventTarget {
   public:
    explicit Timer(Simulator& sim) : sim_(sim) {}
    void start() { id_ = sim_.schedule_event(1, this, EventKind::Tick, 0); }
    void on_event(const SimEvent& event) override {
      ++ticks_;
      ASSERT_TRUE(sim_.reschedule(event.id, sim_.now() + 1));
    }
    int ticks() const { return ticks_; }

   private:
    Simulator& sim_;
    EventId id_ = kInvalidEvent;
    int ticks_ = 0;
  };

  Timer timer(sim);
  timer.start();
  sim.run_until(5000);
  EXPECT_EQ(timer.ticks(), 5000);
  EXPECT_EQ(sim.pool_slots(), 1u);
  EXPECT_EQ(sim.heap_size(), 1u);  // still armed
}

TEST(EventHeapTest, ArmReschedulesLiveAndSchedulesStale) {
  Simulator sim;
  Recorder rec(sim);
  EventId id = kInvalidEvent;
  // Stale/invalid handle: arm schedules fresh.
  id = sim.arm(id, 10, &rec, EventKind::Tick, 0);
  EXPECT_NE(id, kInvalidEvent);
  // Live handle: arm moves it, same handle stays valid.
  const EventId same = sim.arm(id, 20, &rec, EventKind::Tick, 0);
  EXPECT_EQ(same, id);
  sim.run_until(100);
  ASSERT_EQ(rec.entries().size(), 1u);
  EXPECT_EQ(rec.entries()[0].at, 20);
}

TEST(EventHeapTest, RecycledSlotStalesOldHandles) {
  Simulator sim;
  Recorder rec(sim);
  const EventId old_id = sim.schedule_event(10, &rec, EventKind::Tick, 0);
  sim.cancel(old_id);
  // The freed slot is reused; the old handle must not touch the new event.
  const EventId new_id = sim.schedule_event(20, &rec, EventKind::Tick, 1);
  sim.cancel(old_id);
  EXPECT_FALSE(sim.reschedule(old_id, 30));
  EXPECT_EQ(sim.heap_size(), 1u);
  sim.run_until(100);
  ASSERT_EQ(rec.entries().size(), 1u);
  EXPECT_EQ(rec.entries()[0].tag, 1u);
  (void)new_id;
}

TEST(EventHeapTest, RandomizedOrderIsNondecreasingWithFifoTieBreak) {
  Simulator sim;
  Recorder rec(sim);
  std::uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  // tag carries the scheduling index so ties are checkable.
  std::vector<SimTime> when(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    when[i] = static_cast<SimTime>(next() % 64);  // dense: many ties
    sim.schedule_event(when[i], &rec, EventKind::Tick, i);
  }
  sim.run_until(64);
  ASSERT_EQ(rec.entries().size(), 1000u);
  for (std::size_t i = 1; i < rec.entries().size(); ++i) {
    const auto& prev = rec.entries()[i - 1];
    const auto& cur = rec.entries()[i];
    ASSERT_LE(prev.at, cur.at);
    if (prev.at == cur.at) {
      ASSERT_LT(prev.tag, cur.tag);  // FIFO among simultaneous events
    }
  }
}

// The tentpole's allocation guarantee: once the pool is warm, scheduling
// and dispatching typed events performs no heap allocation at all.
TEST(EventHeapTest, SteadyStateTypedEventsAllocateNothing) {
  Simulator sim;
  // A sink that only counts: the recording target's own vector growth must
  // not be attributed to the scheduler.
  class CountingTarget : public EventTarget {
   public:
    void on_event(const SimEvent&) override { ++count_; }
    std::uint64_t count() const { return count_; }

   private:
    std::uint64_t count_ = 0;
  };
  CountingTarget rec;
  Frame frame;
  frame.size_bits = 12000.0;
  // Warm-up: grow the slab, the heap array, and the free list to their
  // working-set sizes.
  for (int i = 0; i < 64; ++i) {
    sim.schedule_frame(sim.now() + 1 + i % 7, &rec, 0, frame);
  }
  sim.run_until(sim.now() + 100);
  ASSERT_TRUE(sim.idle());

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 32; ++i) {
      sim.schedule_frame(sim.now() + 1 + i % 7, &rec, 0, frame);
    }
    EventId moved = sim.schedule_event(sim.now() + 9, &rec, EventKind::Tick, 1);
    sim.reschedule(moved, sim.now() + 3);
    EventId dropped = sim.schedule_event(sim.now() + 5, &rec, EventKind::Tick, 2);
    sim.cancel(dropped);
    sim.run_until(sim.now() + 10);
  }
  g_count_allocs.store(false);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(g_alloc_count.load(), 0u);
  EXPECT_EQ(rec.count(), 64u + 1000u * 33u);
}

TEST(EventHeapTest, PastDeadlineClampsAndCounts) {
  Simulator sim;
  Recorder rec(sim);
  sim.schedule_event(50, &rec, EventKind::Tick, 0);
  sim.run_until(50);
  sim.schedule_event(10, &rec, EventKind::Tick, 1);  // strictly in the past
  EXPECT_EQ(sim.clamped_count(), 1u);
  sim.run_until(50);  // fires at now, not in the past
  ASSERT_EQ(rec.entries().size(), 2u);
  EXPECT_EQ(rec.entries()[1].at, 50);
}

TEST(EventHeapTest, ExportMetricsPublishesSchedulerCounters) {
  Simulator sim;
  Recorder rec(sim);
  for (int i = 0; i < 8; ++i) {
    sim.schedule_event(10 + i, &rec, EventKind::Tick, 0);
  }
  const EventId id = sim.schedule_event(100, &rec, EventKind::Tick, 1);
  sim.cancel(id);
  sim.run_until(1000);

  obs::MetricsRegistry registry;
  sim.export_metrics(registry);
  ASSERT_NE(registry.find_gauge("sim.heap_high_water"), nullptr);
  EXPECT_EQ(registry.find_gauge("sim.heap_high_water")->value(), 9.0);
  ASSERT_NE(registry.find_gauge("sim.pool_slots"), nullptr);
  EXPECT_EQ(registry.find_gauge("sim.pool_slots")->value(),
            static_cast<double>(sim.pool_slots()));
  ASSERT_NE(registry.find_gauge("sim.pool_in_use"), nullptr);
  EXPECT_EQ(registry.find_gauge("sim.pool_in_use")->value(), 0.0);
  ASSERT_NE(registry.find_counter("sim.events_executed"), nullptr);
  EXPECT_EQ(registry.find_counter("sim.events_executed")->value(), 8u);
  ASSERT_NE(registry.find_counter("sim.events_cancelled"), nullptr);
  EXPECT_EQ(registry.find_counter("sim.events_cancelled")->value(), 1u);
  ASSERT_NE(registry.find_counter("sim.schedule_clamped"), nullptr);
  EXPECT_EQ(registry.find_counter("sim.schedule_clamped")->value(), 0u);
}

TEST(EventHeapTest, EventLinkForwardsAfterFixedDelay) {
  Simulator sim;
  Recorder rec(sim);
  const EventLink link(sim, &rec, 5, /*delay=*/250);
  EXPECT_TRUE(static_cast<bool>(link));
  EXPECT_FALSE(static_cast<bool>(EventLink{}));
  sim.run_until(100);
  Frame frame;
  frame.source = 1;
  link.send(frame);
  sim.run_until(1000);
  ASSERT_EQ(rec.entries().size(), 1u);
  EXPECT_EQ(rec.entries()[0].kind, EventKind::FrameArrival);
  EXPECT_EQ(rec.entries()[0].tag, 5u);
  EXPECT_EQ(rec.entries()[0].at, 350);
}

}  // namespace
}  // namespace bcn::sim
