// Monitor wiring through the packet simulator (tentpole satellites):
//
//  1. Determinism under observation — arming every monitor on the
//     reference scenario must leave the pinned trajectory digest from
//     determinism_test.cpp untouched (monitors observe, never perturb).
//  2. The fluid-verdict crosscheck actually trips on the acceptance
//     scenario: sources launched at line rate with the BCN reverse path
//     fully lossy drive the queue to the severe-congestion threshold
//     while the fluid model certifies strong stability for the same
//     gains.
//  3. Post-mortem bundles are byte-identical across reruns of the same
//     scenario — the contract scripts/check.sh gate 8 enforces end to
//     end.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/crossval.h"
#include "obs/postmortem.h"
#include "sim/network.h"

namespace bcn::sim {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// The same reference scenario determinism_test.cpp pins: 5 sources into
// one 10G bottleneck, paper-table BCN gains, 40 ms horizon.
NetworkConfig reference_config() {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  NetworkConfig cfg;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * kMicrosecond;
  return cfg;
}

std::uint64_t run_digest(const NetworkConfig& cfg) {
  Network net(cfg);
  net.run(from_seconds(0.04));
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& tp : net.stats().trace()) h = fnv1a(h, &tp, sizeof(tp));
  h = fnv1a(h, &net.stats().counters, sizeof(net.stats().counters));
  return h;
}

// The acceptance anomaly: the fluid model certifies these gains strongly
// stable, but the packet run starts every source at line rate with the
// BCN reverse path fully lossy, so the queue sails through qsc and the
// switch asserts severe-congestion PAUSE — a measured contradiction.
NetworkConfig contradiction_config() {
  NetworkConfig cfg = reference_config();
  cfg.initial_rate = cfg.params.capacity;  // 5x overload, uncontrolled
  cfg.faults.bcn_drop_p = 1.0;
  cfg.monitors.spec = obs::MonitorSpec::all();
  cfg.monitors.action = obs::ViolationAction::Record;
  cfg.monitors.fluid_strongly_stable =
      analysis::fluid_stability_hint(cfg.params, "bcn");
  return cfg;
}

TEST(MonitorWiringTest, ArmedButPassingMonitorsPreserveThePinnedDigest) {
  // Digest with monitors off: the anchor from determinism_test.cpp.
  EXPECT_EQ(run_digest(reference_config()), 0x521a746626762d88ull);

  NetworkConfig cfg = reference_config();
  cfg.monitors.spec = obs::MonitorSpec::all();
  cfg.monitors.action = obs::ViolationAction::Record;
  cfg.monitors.fluid_strongly_stable =
      analysis::fluid_stability_hint(cfg.params, "bcn");
  Network net(cfg);
  net.run(from_seconds(0.04));

  std::uint64_t h = 1469598103934665603ull;
  for (const auto& tp : net.stats().trace()) h = fnv1a(h, &tp, sizeof(tp));
  h = fnv1a(h, &net.stats().counters, sizeof(net.stats().counters));
  EXPECT_EQ(h, 0x521a746626762d88ull);

  // The monitors really ran — and found nothing.
  EXPECT_TRUE(net.monitor().armed());
  EXPECT_GT(net.monitor().checks(), 0u);
  EXPECT_EQ(net.monitor().violation_count(), 0u);
  EXPECT_FALSE(net.monitor().snapshots().empty());
}

TEST(MonitorWiringTest, CrosscheckTripsOnTheContradictionScenario) {
  const NetworkConfig cfg = contradiction_config();
  ASSERT_TRUE(cfg.monitors.fluid_strongly_stable.has_value());
  ASSERT_TRUE(*cfg.monitors.fluid_strongly_stable)
      << "reference gains must be fluid-certified strongly stable for the "
         "crosscheck to arm";
  Network net(cfg);
  net.run(from_seconds(0.005));
  ASSERT_GT(net.monitor().violation_count(), 0u);
  const auto& v = net.monitor().violations().front();
  EXPECT_EQ(v.invariant, "crosscheck");
  EXPECT_GT(v.t, 0.0);
  // The contradiction is latched: one crosscheck violation per run.
  std::size_t crosschecks = 0;
  for (const auto& violation : net.monitor().violations()) {
    if (violation.invariant == "crosscheck") ++crosschecks;
  }
  EXPECT_EQ(crosschecks, 1u);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(MonitorWiringTest, PostmortemBundlesAreByteIdenticalAcrossReruns) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "bcn_monitor_wiring_test";
  std::filesystem::remove_all(base);

  std::string bundles[2];
  for (int rep = 0; rep < 2; ++rep) {
    const std::filesystem::path dir = base / ("rep" + std::to_string(rep));
    std::filesystem::create_directories(dir);
    NetworkConfig cfg = contradiction_config();
    cfg.monitors.action = obs::ViolationAction::Dump;  // write, don't exit
    cfg.monitors.bundle_dir = dir;
    cfg.monitors.repro = "bcn_sim_tests --gtest_filter=MonitorWiringTest.*";
    Network net(cfg);
    net.run(from_seconds(0.005));
    ASSERT_GT(net.monitor().violation_count(), 0u) << "rep " << rep;
    const auto path = obs::postmortem_path(dir, "crosscheck");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    bundles[rep] = read_file(path);
    ASSERT_FALSE(bundles[rep].empty());
  }
  EXPECT_EQ(bundles[0], bundles[1]);

  // The bundle names the violated invariant and embeds the repro line.
  EXPECT_NE(bundles[0].find("\"invariant\": \"crosscheck\""),
            std::string::npos);
  EXPECT_NE(bundles[0].find("--gtest_filter=MonitorWiringTest"),
            std::string::npos);
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace bcn::sim
