// THE cross-shard determinism contract (sim/shard/engine.h): the FNV-1a
// trajectory digest of a fabric run is bitwise-identical for every shard
// count, including the single-shard idle-skip fast path and a shard
// count that divides nothing evenly (7).  Also pins that the digest
// reacts to parameter changes (it is not a constant), that armed
// per-shard monitors neither perturb the trajectory nor lose their
// merged counts across shard counts, and that repeated runs are
// reproducible.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/shard/engine.h"
#include "sim/shard/topology.h"

namespace bcn::sim::shard {
namespace {

// Rate high enough that ports sample and BCN feedback flows within the
// short horizon, so the digest covers the full control loop -- frames,
// drops, sigma sampling, reverse-path BCN, regulator updates.
FabricOptions active_options() {
  FabricOptions options;
  options.q0 = 2.5e6;
  options.w = 2.0;
  options.pm = 0.2;
  options.regulator.gi = 0.5;
  options.regulator.gd = 1.0 / 128.0;
  options.regulator.ru = 8e6;
  options.regulator.max_rate = 10e9;
  options.initial_rate = 2e9;
  options.duration = 1500 * kMicrosecond;
  options.sample_interval = 50 * kMicrosecond;
  return options;
}

Topology fabric(const char* spec, int rounds) {
  Topology topo;
  std::string error;
  EXPECT_TRUE(parse_topology_spec(spec, &topo, &error)) << error;
  add_permutation_flows(topo, rounds, /*seed=*/0);
  return topo;
}

TEST(ShardDeterminismTest, DigestInvariantAcrossShardCounts) {
  for (const char* spec : {"fat-tree:4", "leaf-spine:2x4x4"}) {
    const Topology topo = fabric(spec, 3);
    const FabricOptions options = active_options();
    const FabricResult reference = run_fabric(topo, options, 1);
    ASSERT_GT(reference.frames_sent, 0u) << spec;
    ASSERT_GT(reference.frames_sampled, 0u)
        << spec << ": horizon too short for the feedback loop";
    ASSERT_GT(reference.bcn_sent, 0u) << spec;
    for (const int shards : {2, 4, 7}) {
      const FabricResult result = run_fabric(topo, options, shards);
      EXPECT_EQ(result.digest, reference.digest)
          << spec << " shards=" << shards;
      EXPECT_EQ(result.events_executed, reference.events_executed)
          << spec << " shards=" << shards;
      EXPECT_EQ(result.staged_records, reference.staged_records)
          << spec << " shards=" << shards;
      EXPECT_EQ(result.frames_delivered, reference.frames_delivered);
      EXPECT_EQ(result.trace_queue, reference.trace_queue);
      EXPECT_EQ(result.total_queue, reference.total_queue);
      ASSERT_EQ(result.flow_stats.size(), reference.flow_stats.size());
      for (std::size_t f = 0; f < result.flow_stats.size(); ++f) {
        EXPECT_EQ(result.flow_stats[f].frames_sent,
                  reference.flow_stats[f].frames_sent);
        EXPECT_EQ(result.flow_stats[f].rate, reference.flow_stats[f].rate);
      }
    }
  }
}

TEST(ShardDeterminismTest, RepeatedRunsReproduce) {
  const Topology topo = fabric("fat-tree:4", 2);
  const FabricOptions options = active_options();
  const FabricResult a = run_fabric(topo, options, 2);
  const FabricResult b = run_fabric(topo, options, 2);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(ShardDeterminismTest, DigestReactsToParameterChanges) {
  const Topology topo = fabric("fat-tree:4", 2);
  const FabricOptions base = active_options();
  const std::uint64_t reference = run_fabric(topo, base, 1).digest;

  FabricOptions faster = base;
  faster.initial_rate = 3e9;
  EXPECT_NE(run_fabric(topo, faster, 1).digest, reference);

  FabricOptions heavier = base;
  heavier.w = 4.0;
  EXPECT_NE(run_fabric(topo, heavier, 1).digest, reference);
}

TEST(ShardDeterminismTest, ArmedMonitorsPreserveDigestAndMergeCounts) {
  const Topology topo = fabric("fat-tree:4", 3);
  const FabricOptions quiet = active_options();
  const FabricResult unarmed = run_fabric(topo, quiet, 1);

  FabricOptions armed = quiet;
  const auto spec = obs::parse_monitor_spec("queue_bounds,finite");
  ASSERT_TRUE(spec.has_value());
  armed.monitors = *spec;
  const FabricResult one = run_fabric(topo, armed, 1);
  EXPECT_EQ(one.digest, unarmed.digest)
      << "arming monitors must not perturb the trajectory";
  EXPECT_GT(one.monitor_checks, 0u);
  EXPECT_EQ(one.monitor_violations, 0u);
  for (const int shards : {2, 4}) {
    const FabricResult result = run_fabric(topo, armed, shards);
    EXPECT_EQ(result.digest, unarmed.digest) << "shards=" << shards;
    // Check counts scale with the shard count (each shard runs its own
    // per-sample predicates on its partial state -- that is why they are
    // excluded from the digest); violations must stay quiet everywhere.
    EXPECT_GE(result.monitor_checks, one.monitor_checks)
        << "shards=" << shards;
    EXPECT_EQ(result.monitor_violations, 0u) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace bcn::sim::shard
