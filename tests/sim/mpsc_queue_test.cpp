// The lock-free bounded MPSC ring that carries cross-shard handoffs:
// single-threaded push/pop semantics (FIFO, capacity rounding, full and
// empty edges) plus a multi-producer torture run intended for TSan -- the
// stamp protocol must deliver every item exactly once and preserve each
// producer's program order under arbitrary interleavings.
#include "sim/shard/mpsc_queue.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bcn::sim::shard {
namespace {

TEST(MpscQueueTest, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(MpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscQueue<int>(65).capacity(), 128u);
}

TEST(MpscQueueTest, FifoSingleThreaded) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "ring full";
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out)) << "ring empty";
}

TEST(MpscQueueTest, SlotsRecycleAcrossWraps) {
  MpscQueue<int> q(4);
  int out = -1;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.try_push(round));
    EXPECT_TRUE(q.try_push(round + 1000));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, round);
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, round + 1000);
  }
}

// Torture: P producers each push a tagged monotone sequence through a
// deliberately small ring while one consumer drains.  Checks delivery is
// exactly-once and per-producer FIFO.  Sizes stay modest so the test is
// quick under TSan on small machines; the interleaving pressure comes
// from the tiny ring (constant full/empty transitions), not the volume.
TEST(MpscQueueTest, MultiProducerTortureExactlyOnceAndPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscQueue<std::uint64_t> q(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item = (p << 32) | i;
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!q.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = item >> 32;
    const std::uint64_t seq = item & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next[p]) << "producer " << p << " order broken";
    ++next[p];
    ++received;
    checksum += item;
  }
  for (auto& t : producers) t.join();

  std::uint64_t expected = 0;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      expected += (p << 32) | i;
    }
  }
  EXPECT_EQ(checksum, expected);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(q.try_pop(leftover)) << "items delivered more than once";
}

}  // namespace
}  // namespace bcn::sim::shard
