// Determinism of the discrete-event core (satellite of the event-queue
// rewrite): simultaneous events fire in scheduling order, and a fixed-seed
// single-hop run produces byte-identical SimStats every time.  The pinned
// digest is the regression anchor for "the rewrite must not change packet
// trajectories" -- it was captured on the pre-rewrite scheduler and must
// survive every future optimization of the event core.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/network.h"

namespace bcn::sim {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// The packet_vs_fluid-style reference scenario: 5 sources into one 10G
// bottleneck, paper-table BCN parameters, 40 ms horizon.
NetworkConfig reference_config() {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  NetworkConfig cfg;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * kMicrosecond;
  return cfg;
}

struct RunDigest {
  std::uint64_t hash = 0;
  Counters counters;
  std::size_t events_executed = 0;
};

RunDigest run_reference() {
  Network net(reference_config());
  net.run(from_seconds(0.04));
  RunDigest d;
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& tp : net.stats().trace()) h = fnv1a(h, &tp, sizeof(tp));
  h = fnv1a(h, &net.stats().counters, sizeof(net.stats().counters));
  d.hash = h;
  d.counters = net.stats().counters;
  d.events_executed = net.simulator().executed();
  return d;
}

TEST(DeterminismTest, SimultaneousEventsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  // Schedule out of time order, with a burst of ties at t=10; ties must
  // fire in the order they were scheduled, regardless of heap shape.
  sim.schedule_at(10, [&] { order.push_back(0); });
  sim.schedule_at(5, [&] { order.push_back(-1); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(7, [&] {
    // Scheduled from a handler, still lands behind the earlier t=10 ties.
    sim.schedule_at(10, [&] { order.push_back(3); });
  });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(DeterminismTest, FixedSeedRunsAreByteIdentical) {
  const RunDigest a = run_reference();
  const RunDigest b = run_reference();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(DeterminismTest, ReferenceTrajectoryMatchesPinnedDigest) {
  const RunDigest d = run_reference();
  // Captured on the pre-rewrite scheduler; identical trajectories are the
  // acceptance bar for every event-core change.
  EXPECT_EQ(d.hash, 0x521a746626762d88ull);
  EXPECT_EQ(d.counters.frames_sent, 33540u);
  EXPECT_EQ(d.counters.frames_delivered, 33332u);
  EXPECT_EQ(d.counters.frames_dropped, 0u);
  EXPECT_EQ(d.counters.frames_sampled, 6707u);
  EXPECT_EQ(d.counters.bcn_positive, 4376u);
  EXPECT_EQ(d.counters.bcn_negative, 2183u);
  EXPECT_EQ(d.counters.pause_frames, 0u);
  EXPECT_DOUBLE_EQ(d.counters.bits_delivered, 399984000.0);
  EXPECT_EQ(d.events_executed, 108970u);
}

}  // namespace
}  // namespace bcn::sim
