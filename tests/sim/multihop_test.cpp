// The congestion-rollback (victim flow) scenario from the paper's
// introduction: hop-by-hop PAUSE spreads congestion to innocent flows;
// BCN confines it to the culprits.
#include <gtest/gtest.h>

#include "sim/multihop.h"

namespace bcn::sim {
namespace {

TEST(MultihopTest, PauseOnlyCollapsesVictim) {
  MultihopConfig cfg;
  cfg.enable_pause = true;
  cfg.enable_bcn = false;
  const auto r = run_victim_scenario(cfg);
  // The victim shares E1 with the culprits and gets paused along with
  // them: it loses the overwhelming majority of its 1 Gbps.
  EXPECT_LT(r.victim_throughput, 0.2 * cfg.offered_rate);
  // PAUSE rolled back both hops.
  EXPECT_GT(r.pauses_core_to_edge, 0u);
  EXPECT_GT(r.pauses_edge_to_sources, 0u);
  // The hot port itself stays fully utilized.
  EXPECT_GT(r.culprit_throughput, 0.9 * cfg.hot_rate);
}

TEST(MultihopTest, BcnRestoresVictim) {
  MultihopConfig cfg;
  cfg.enable_pause = true;
  cfg.enable_bcn = true;
  const auto r = run_victim_scenario(cfg);
  EXPECT_GT(r.victim_throughput, 0.9 * cfg.offered_rate);
  EXPECT_GT(r.bcn_messages, 0u);
  // After convergence PAUSE stops firing toward the sources.
  EXPECT_EQ(r.pauses_edge_to_sources, 0u);
  EXPECT_GT(r.culprit_throughput, 0.9 * cfg.hot_rate);
}

TEST(MultihopTest, BcnOnlyAlsoProtectsVictim) {
  MultihopConfig cfg;
  cfg.enable_pause = false;
  cfg.enable_bcn = true;
  const auto r = run_victim_scenario(cfg);
  EXPECT_GT(r.victim_throughput, 0.9 * cfg.offered_rate);
  EXPECT_EQ(r.pauses_core_to_edge, 0u);
  EXPECT_EQ(r.pauses_edge_to_sources, 0u);
}

TEST(MultihopTest, EdgeQueueStaysSmallWithBcn) {
  MultihopConfig with_pause;
  with_pause.enable_pause = true;
  with_pause.enable_bcn = false;
  MultihopConfig with_bcn;
  with_bcn.enable_pause = false;
  with_bcn.enable_bcn = true;
  const auto rp = run_victim_scenario(with_pause);
  const auto rb = run_victim_scenario(with_bcn);
  // PAUSE pushes the backlog into E1; BCN keeps it at the congested port.
  EXPECT_GT(rp.edge_peak_queue, 5.0 * rb.edge_peak_queue);
}

TEST(MultihopTest, NoCongestionNoInterference) {
  MultihopConfig cfg;
  cfg.num_culprits = 2;        // 2 Gbps offered into... a fast hot port
  cfg.hot_rate = 10e9;         // no bottleneck at all
  cfg.enable_pause = true;
  cfg.enable_bcn = true;
  const auto r = run_victim_scenario(cfg);
  EXPECT_GT(r.victim_throughput, 0.95 * cfg.offered_rate);
  EXPECT_EQ(r.core_drops, 0u);
  EXPECT_EQ(r.edge_drops, 0u);
  EXPECT_EQ(r.pauses_core_to_edge, 0u);
}

TEST(MultihopTest, DeterministicAcrossRuns) {
  MultihopConfig cfg;
  const auto a = run_victim_scenario(cfg);
  const auto b = run_victim_scenario(cfg);
  EXPECT_DOUBLE_EQ(a.victim_throughput, b.victim_throughput);
  EXPECT_EQ(a.pauses_edge_to_sources, b.pauses_edge_to_sources);
}

}  // namespace
}  // namespace bcn::sim
