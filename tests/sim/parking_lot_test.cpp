// Parking-lot (dual congestion point) scenarios: CPID association must
// land on the true bottleneck and the rate allocation must follow the
// classic parking-lot shares.
#include <gtest/gtest.h>

#include "sim/parking_lot.h"

namespace bcn::sim {
namespace {

TEST(ParkingLotTest, SharedBottleneckAtCp2) {
  // C1 wide open: CP2 is the bottleneck for all 8 flows.
  ParkingLotConfig cfg;  // C1 = C2 = 10G, 4 + 4 sources at 2 Gbps
  const auto r = run_parking_lot(cfg);
  // Every group-A regulator associated with CP2, none with CP1.
  EXPECT_EQ(r.group_a_on_cp1, 0);
  EXPECT_EQ(r.group_a_on_cp2, cfg.group_a);
  // CP1 never congests: no negative feedback from it, tiny queue.
  EXPECT_EQ(r.cp1_negatives, 0u);
  EXPECT_LT(r.cp1_peak_queue, 0.1e6);
  EXPECT_GT(r.cp2_negatives, 0u);
  // Rates near the 10G/8 fair share.
  EXPECT_NEAR(r.group_a_rate, 1.25e9, 0.4e9);
  EXPECT_NEAR(r.group_b_rate, 1.25e9, 0.4e9);
  EXPECT_EQ(r.drops, 0u);
}

TEST(ParkingLotTest, UpstreamBottleneckAtCp1) {
  // C1 = 2G: group A is bottlenecked upstream; B has CP2 almost to itself.
  ParkingLotConfig cfg;
  cfg.capacity1 = 2e9;
  cfg.initial_rate = 2.5e9;  // B alone would oversubscribe CP2
  const auto r = run_parking_lot(cfg);
  EXPECT_EQ(r.group_a_on_cp1, cfg.group_a);
  EXPECT_EQ(r.group_a_on_cp2, 0);
  // Group A converges to ~C1/4 = 0.5 Gbps.
  EXPECT_NEAR(r.group_a_rate, 0.5e9, 0.2e9);
  // Group B ends well above group A (it only shares CP2).
  EXPECT_GT(r.group_b_rate, 2.5 * r.group_a_rate);
  EXPECT_EQ(r.drops, 0u);
}

TEST(ParkingLotTest, MatchingRuleBlocksForeignPositives) {
  // In the upstream-bottleneck case CP2 stays below q0 and would emit
  // positive feedback -- but group A's tags carry CP1's id, so CP2 sends
  // them nothing (and B, untagged by CP2 unless it congests, likewise).
  ParkingLotConfig cfg;
  cfg.capacity1 = 2e9;
  cfg.initial_rate = 2e9;  // CP2 exactly full: never congests
  const auto r = run_parking_lot(cfg);
  EXPECT_EQ(r.cp2_negatives, 0u);
  EXPECT_EQ(r.cp2_positives, 0u);  // nothing tagged with CPID 2
  EXPECT_GT(r.cp1_positives, 0u);  // CP1 recovers its own flows
}

TEST(ParkingLotTest, DeterministicAcrossRuns) {
  ParkingLotConfig cfg;
  const auto a = run_parking_lot(cfg);
  const auto b = run_parking_lot(cfg);
  EXPECT_DOUBLE_EQ(a.group_a_rate, b.group_a_rate);
  EXPECT_EQ(a.cp2_negatives, b.cp2_negatives);
}

}  // namespace
}  // namespace bcn::sim
