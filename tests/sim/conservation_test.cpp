// Conservation invariants of the packet simulator: no frame is created or
// destroyed except by explicit drops, and byte accounting balances.  Run
// across every registered mechanism: the invariants are properties of the
// switch/source plumbing, not of any one feedback policy.
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "sim/network.h"

namespace bcn::sim {
namespace {

NetworkConfig busy_config(const std::string& mechanism, double init_rate) {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 6;
  p.capacity = 10e9;
  p.q0 = 1e6;
  p.buffer = 3e6;  // small enough to force drops under overload
  p.qsc = 2.5e6;
  p.pm = 0.1;
  cfg.params = p;
  cfg.mechanism = mechanism;
  cfg.initial_rate = init_rate;
  return cfg;
}

class ConservationTest
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(ConservationTest, FramesBalance) {
  const auto [mechanism, rate] = GetParam();
  Network net(busy_config(mechanism, rate));
  net.run(30 * kMillisecond);
  const auto& c = net.stats().counters;

  // Every sent frame is enqueued or dropped once it arrives; frames still
  // in flight (propagation) or queued account for the difference.
  EXPECT_GE(c.frames_sent, c.frames_enqueued + c.frames_dropped);
  const std::uint64_t in_flight =
      c.frames_sent - c.frames_enqueued - c.frames_dropped;
  EXPECT_LE(in_flight, 64u);  // at most a propagation-delay's worth

  // Enqueued = delivered + still queued.
  const double queued_frames = net.queue_bits() / 12000.0;
  EXPECT_NEAR(static_cast<double>(c.frames_enqueued),
              static_cast<double>(c.frames_delivered) + queued_frames, 1.5);

  // Byte accounting matches frame accounting.
  EXPECT_DOUBLE_EQ(c.bits_delivered, 12000.0 * c.frames_delivered);

  // Per-source accounting sums to the aggregate.
  double per_source_total = 0.0;
  for (const auto& [id, bits] : net.stats().per_source_bits_sorted()) {
    per_source_total += bits;
  }
  EXPECT_DOUBLE_EQ(per_source_total, c.bits_delivered);
}

TEST_P(ConservationTest, ThroughputNeverExceedsCapacity) {
  const auto [mechanism, rate] = GetParam();
  Network net(busy_config(mechanism, rate));
  net.run(30 * kMillisecond);
  EXPECT_LE(net.stats().throughput(30 * kMillisecond),
            busy_config(mechanism, rate).params.capacity * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsAndLoads, ConservationTest,
    ::testing::Values(std::pair{"bcn", 3e9}, std::pair{"bcn-draft", 3e9},
                      std::pair{"qcn", 3e9}, std::pair{"fera", 3e9},
                      std::pair{"rcp", 3e9}, std::pair{"bcn", 0.5e9},
                      std::pair{"qcn", 9e9}, std::pair{"rcp", 0.5e9}));

}  // namespace
}  // namespace bcn::sim
