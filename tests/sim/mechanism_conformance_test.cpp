// Packet-facet conformance across the mechanism registry: every
// registered mechanism must run the reference scenario deterministically,
// compose with the fault layer without perturbing the zero-plan digest,
// and hold the queue in a sane band.  The explicit mechanism="bcn" run is
// pinned to the same digest as the default-constructed network -- the
// pluggable-mechanism refactor must be invisible to BCN trajectories.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "sim/faults.h"
#include "sim/mechanism.h"
#include "sim/network.h"

namespace bcn::sim {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Same plant as determinism_test.cpp: 5 sources into one 10G bottleneck,
// paper-table BCN parameters, 40 ms horizon.
NetworkConfig reference_config(const std::string& mechanism) {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  NetworkConfig cfg;
  cfg.params = p;
  cfg.mechanism = mechanism;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * kMicrosecond;
  return cfg;
}

struct RunDigest {
  std::uint64_t hash = 0;
  Counters counters;
  double tail_queue_mean = 0.0;  // mean queue over the second half
  double max_queue = 0.0;
};

RunDigest run_mechanism(const std::string& mechanism,
                        const FaultPlan& faults = {},
                        double initial_rate_scale = 1.0) {
  NetworkConfig cfg = reference_config(mechanism);
  cfg.faults = faults;
  cfg.initial_rate *= initial_rate_scale;
  Network net(cfg);
  net.run(from_seconds(0.04));
  RunDigest d;
  std::uint64_t h = 1469598103934665603ull;
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& tp : net.stats().trace()) {
    h = fnv1a(h, &tp, sizeof(tp));
    d.max_queue = std::max(d.max_queue, tp.queue_bits);
    if (to_seconds(tp.t) >= 0.02) {
      sum += tp.queue_bits;
      ++count;
    }
  }
  h = fnv1a(h, &net.stats().counters, sizeof(net.stats().counters));
  d.hash = h;
  d.counters = net.stats().counters;
  d.tail_queue_mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return d;
}

constexpr const char* kMechanisms[] = {"bcn", "bcn-draft", "qcn", "rcp",
                                       "fera"};

TEST(MechanismConformanceTest, ExplicitBcnMatchesThePinnedDigest) {
  // The digest pinned in determinism_test.cpp for the default-constructed
  // network.  Selecting "bcn" explicitly through the registry must be a
  // no-op byte for byte.
  const RunDigest d = run_mechanism("bcn");
  EXPECT_EQ(d.hash, 0x521a746626762d88ull);
  EXPECT_EQ(d.counters.frames_sent, 33540u);
  EXPECT_EQ(d.counters.frames_delivered, 33332u);
  EXPECT_EQ(d.counters.frames_dropped, 0u);
  EXPECT_EQ(d.counters.frames_sampled, 6707u);
  EXPECT_EQ(d.counters.bcn_positive, 4376u);
  EXPECT_EQ(d.counters.bcn_negative, 2183u);
  EXPECT_EQ(d.counters.pause_frames, 0u);
  EXPECT_DOUBLE_EQ(d.counters.bits_delivered, 399984000.0);
}

TEST(MechanismConformanceTest, EveryMechanismIsRunToRunDeterministic) {
  for (const char* name : kMechanisms) {
    const RunDigest a = run_mechanism(name);
    const RunDigest b = run_mechanism(name);
    EXPECT_EQ(a.hash, b.hash) << name;
    EXPECT_EQ(a.counters.frames_delivered, b.counters.frames_delivered)
        << name;
  }
}

TEST(MechanismConformanceTest, ZeroFaultPlanLeavesEveryDigestUnchanged) {
  // A default-constructed (unarmed) plan routed through the mechanism
  // feedback path must be indistinguishable from no plan at all.
  for (const char* name : kMechanisms) {
    const FaultPlan zero;
    ASSERT_FALSE(zero.armed());
    EXPECT_EQ(run_mechanism(name).hash, run_mechanism(name, zero).hash)
        << name;
  }
}

TEST(MechanismConformanceTest, ArmedFaultsComposeDeterministically) {
  FaultPlan plan;
  plan.bcn_drop_p = 0.2;
  ASSERT_TRUE(plan.armed());
  // Overloaded start (2x the fair share): every mechanism must emit
  // feedback, so dropping a fifth of it is guaranteed to bite.  (At the
  // exactly-balanced start bcn-draft legitimately stays silent -- the
  // queue never crosses q0 and its RRT gate suppresses positives.)
  const double overload = 2.0;
  for (const char* name : kMechanisms) {
    const RunDigest clean = run_mechanism(name, {}, overload);
    const RunDigest faulted = run_mechanism(name, plan, overload);
    // Dropping a fifth of the feedback must actually move the trajectory
    // (every mechanism's control signal rides BcnMessage frames) ...
    EXPECT_NE(clean.hash, faulted.hash) << name;
    // ... but the faulted run is itself reproducible.
    EXPECT_EQ(faulted.hash, run_mechanism(name, plan, overload).hash) << name;
  }
}

TEST(MechanismConformanceTest, PacketFacetExistsForEveryRegistryEntry) {
  for (const auto& info : core::mechanism_registry()) {
    const auto mech = make_packet_mechanism(info.name);
    EXPECT_EQ(mech != nullptr, info.has_packet) << info.name;
    if (mech) {
      EXPECT_STREQ(mech->name(), info.name);
    }
  }
  EXPECT_EQ(make_packet_mechanism("nope"), nullptr);
  EXPECT_EQ(make_packet_mechanism(""), nullptr);
}

TEST(MechanismConformanceTest, EquilibriumSeekersHoldTheQueueNearQ0) {
  // BCN and RCP share the q0 equilibrium; their packet runs must keep the
  // tail queue in a band around it.  QCN orbits a sawtooth, and bcn-draft
  // at the balanced start never crosses q0 (its RRT gate keeps it silent
  // there), so those only owe boundedness.
  const double q0 = 2.5e6;
  const double buffer = 30e6;
  for (const char* name : {"bcn", "rcp"}) {
    const RunDigest d = run_mechanism(name);
    EXPECT_EQ(d.counters.frames_dropped, 0u) << name;
    EXPECT_GT(d.tail_queue_mean, 0.2 * q0) << name;
    EXPECT_LT(d.tail_queue_mean, 3.0 * q0) << name;
  }
  for (const char* name : {"bcn-draft", "qcn", "fera"}) {
    const RunDigest d = run_mechanism(name);
    EXPECT_EQ(d.counters.frames_dropped, 0u) << name;
    EXPECT_LT(d.max_queue, buffer) << name;
  }
}

TEST(MechanismConformanceTest, MechanismsDeliverTheLinkCapacity) {
  // 40 ms at 10G is 400 Mbit; every mechanism must keep the bottleneck
  // busy once the queue forms (>= 90% of line rate end to end).
  for (const char* name : kMechanisms) {
    const RunDigest d = run_mechanism(name);
    EXPECT_GT(d.counters.bits_delivered, 0.9 * 400e6) << name;
    EXPECT_LE(d.counters.bits_delivered, 400e6 + 1.0) << name;
  }
}

}  // namespace
}  // namespace bcn::sim
