// Topology generators and the pod/leaf partitioner (sim/shard): structural
// invariants the sharded engine's correctness leans on -- counts match the
// closed forms, every route is a valid port sequence ending at the
// destination's edge switch, flow generation is seed-deterministic, the
// spec parser rejects malformed shapes, and the partitioner covers every
// entity while keeping pods intact.
#include "sim/shard/topology.h"

#include <gtest/gtest.h>

namespace bcn::sim::shard {
namespace {

TEST(TopologyTest, FatTreeClosedFormCounts) {
  for (const int k : {4, 8, 16}) {
    FatTreeOptions options;
    options.k = k;
    const Topology topo = make_fat_tree(options);
    const std::size_t h = static_cast<std::size_t>(k) / 2;
    // k pods of (k/2 edge + k/2 agg) over (k/2)^2 cores; k^3/4 hosts.
    EXPECT_EQ(topo.switches.size(), 2 * k * h + h * h) << "k=" << k;
    EXPECT_EQ(topo.num_hosts, k * h * h) << "k=" << k;
    // Edges and aggs own 2h ports each, cores k.
    EXPECT_EQ(topo.ports.size(), 2 * k * h * 2 * h + h * h * k) << "k=" << k;
  }
}

TEST(TopologyTest, FatTreeAtScaleExceedsThousandSwitches) {
  FatTreeOptions options;
  options.k = 30;
  const Topology topo = make_fat_tree(options);
  EXPECT_GE(topo.switches.size(), 1000u);  // 1125 for k=30
  EXPECT_EQ(topo.num_hosts, 6750u);
}

TEST(TopologyTest, LeafSpineCounts) {
  LeafSpineOptions options;
  options.spines = 4;
  options.leaves = 8;
  options.hosts_per_leaf = 6;
  const Topology topo = make_leaf_spine(options);
  EXPECT_EQ(topo.switches.size(), 12u);
  EXPECT_EQ(topo.num_hosts, 48u);
  // Leaves: 6 host-down + 4 up each; spines: 8 down each.
  EXPECT_EQ(topo.ports.size(), 8u * 10u + 4u * 8u);
}

// Every route must be a sequence of existing ports whose last hop is a
// host-down port of the destination's edge switch, with strictly valid
// switch ownership on every hop.
void expect_routes_valid(const Topology& topo) {
  for (std::size_t f = 0; f < topo.flows.size(); ++f) {
    const std::size_t len = topo.route_length(f);
    ASSERT_GE(len, 1u) << "flow " << f;
    const std::uint32_t* hops = topo.route(f);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_LT(hops[i], topo.ports.size()) << "flow " << f;
    }
    const PortNode& last = topo.ports[hops[len - 1]];
    EXPECT_EQ(last.switch_id, topo.edge_of_host(topo.flows[f].dst_host))
        << "flow " << f << " does not terminate at the destination edge";
    EXPECT_NE(topo.flows[f].src_host, topo.flows[f].dst_host);
  }
}

TEST(TopologyTest, PermutationFlowsProduceValidRoutes) {
  for (const char* spec : {"fat-tree:4", "fat-tree:8", "leaf-spine:2x4x4"}) {
    Topology topo;
    std::string error;
    ASSERT_TRUE(parse_topology_spec(spec, &topo, &error)) << error;
    add_permutation_flows(topo, 3, 7);
    EXPECT_EQ(topo.flows.size(), 3 * topo.num_hosts) << spec;
    expect_routes_valid(topo);
  }
}

TEST(TopologyTest, IncastAndRandomFlowsProduceValidRoutes) {
  Topology topo;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("fat-tree:4", &topo, &error)) << error;
  add_incast_flows(topo, /*dst_host=*/3, /*fan_in=*/12, /*seed=*/11);
  add_random_flows(topo, 20, /*seed=*/13);
  EXPECT_EQ(topo.flows.size(), 32u);
  expect_routes_valid(topo);
  for (std::size_t f = 0; f < 12; ++f) {
    EXPECT_EQ(topo.flows[f].dst_host, 3u);
  }
}

TEST(TopologyTest, FlowGenerationIsSeedDeterministic) {
  Topology a, b, c;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("fat-tree:4", &a, &error));
  ASSERT_TRUE(parse_topology_spec("fat-tree:4", &b, &error));
  ASSERT_TRUE(parse_topology_spec("fat-tree:4", &c, &error));
  add_permutation_flows(a, 2, 42);
  add_permutation_flows(b, 2, 42);
  add_permutation_flows(c, 2, 43);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  bool same_as_c = a.flows.size() == c.flows.size();
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].src_host, b.flows[f].src_host);
    EXPECT_EQ(a.flows[f].dst_host, b.flows[f].dst_host);
    if (same_as_c && a.flows[f].dst_host != c.flows[f].dst_host) {
      same_as_c = false;
    }
  }
  EXPECT_FALSE(same_as_c) << "different seeds produced identical flow sets";
}

TEST(TopologyTest, StarRoutesEveryFlowThroughTheHubPort) {
  StarOptions options;
  options.hosts = 10;
  Topology topo = make_star(options);
  EXPECT_EQ(topo.switches.size(), 1u);
  EXPECT_EQ(topo.ports.size(), 1u);
  add_permutation_flows(topo, 2, 0);
  EXPECT_EQ(topo.flows.size(), 20u);
  for (std::size_t f = 0; f < topo.flows.size(); ++f) {
    ASSERT_EQ(topo.route_length(f), 1u);
    EXPECT_EQ(topo.route(f)[0], 0u);
  }
}

TEST(TopologyTest, SpecParserRejectsMalformedShapes) {
  Topology topo;
  std::string error;
  EXPECT_FALSE(parse_topology_spec("fat-tree", &topo, &error));
  EXPECT_FALSE(parse_topology_spec("fat-tree:5", &topo, &error))
      << "odd k must be rejected";
  EXPECT_FALSE(parse_topology_spec("fat-tree:x", &topo, &error));
  EXPECT_FALSE(parse_topology_spec("leaf-spine:4x8", &topo, &error));
  EXPECT_FALSE(parse_topology_spec("leaf-spine:4x8x0", &topo, &error));
  EXPECT_FALSE(parse_topology_spec("star:0", &topo, &error));
  EXPECT_FALSE(parse_topology_spec("ring:4", &topo, &error));
  EXPECT_TRUE(parse_topology_spec("fat-tree:6", &topo, &error)) << error;
}

TEST(TopologyTest, PartitionCoversEverythingAndKeepsPodsIntact) {
  Topology topo;
  std::string error;
  ASSERT_TRUE(parse_topology_spec("fat-tree:4", &topo, &error));
  add_permutation_flows(topo, 2, 0);
  for (const int shards : {1, 2, 3, 4, 7}) {
    const Partition part = partition_topology(topo, shards);
    ASSERT_EQ(part.shard_of_switch.size(), topo.switches.size());
    ASSERT_EQ(part.shard_of_port.size(), topo.ports.size());
    ASSERT_EQ(part.shard_of_flow.size(), topo.flows.size());
    for (std::size_t i = 0; i < topo.switches.size(); ++i) {
      ASSERT_LT(part.shard_of_switch[i],
                static_cast<std::uint32_t>(part.shards));
    }
    // Every switch of a pod lands on the shard of its pod.
    for (std::size_t i = 0; i < topo.switches.size(); ++i) {
      if (topo.switches[i].pod >= 0) {
        EXPECT_EQ(part.shard_of_switch[i],
                  static_cast<std::uint32_t>(topo.switches[i].pod) %
                      static_cast<std::uint32_t>(part.shards));
      }
    }
    // Ports inherit their switch; flows their ingress hop.
    for (std::size_t i = 0; i < topo.ports.size(); ++i) {
      EXPECT_EQ(part.shard_of_port[i],
                part.shard_of_switch[topo.ports[i].switch_id]);
    }
    for (std::size_t f = 0; f < topo.flows.size(); ++f) {
      EXPECT_EQ(part.shard_of_flow[f], part.shard_of_port[topo.route(f)[0]]);
    }
  }
  // One shard: no route segment crosses anything.
  EXPECT_EQ(partition_topology(topo, 1).cut_edges, 0u);
  // Clamped to >= 1 on nonsense counts.
  EXPECT_EQ(partition_topology(topo, 0).shards, 1);
  EXPECT_EQ(partition_topology(topo, -3).shards, 1);
}

}  // namespace
}  // namespace bcn::sim::shard
