#include "sim/rate_regulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/mechanism.h"

namespace bcn::sim {
namespace {

RegulatorConfig fluid_config() {
  RegulatorConfig c;
  c.gi = 4.0;
  c.gd = 1.0 / 128.0;
  c.ru = 8e6;
  c.min_rate = 1e6;
  c.max_rate = 10e9;
  return c;
}

// The per-message AIMD of the BCN draft (regulators default to the
// fluid-matched "bcn" mechanism when none is given).
const PacketMechanism& draft_mechanism() {
  static const auto mech = make_packet_mechanism("bcn-draft");
  return *mech;
}

TEST(RateRegulatorTest, FluidIncreaseIntegratesOdeExactly) {
  RateRegulator reg(fluid_config(), 1e9, 0);
  // One positive message after 1 ms: dr = Gi Ru sigma dt.
  BcnMessage msg{1, 0, 1000.0, 0};
  reg.on_bcn(msg, kMillisecond);
  const double expected = 1e9 + 4.0 * 8e6 * 1000.0 * 1e-3;
  EXPECT_NEAR(reg.rate(), expected, 1e-3);
}

TEST(RateRegulatorTest, FluidDecreaseIsExponential) {
  RateRegulator reg(fluid_config(), 1e9, 0);
  BcnMessage msg{1, 0, -1000.0, 0};
  reg.on_bcn(msg, kMillisecond);
  const double expected = 1e9 * std::exp(-1000.0 / 128.0 * 1e-3);
  EXPECT_NEAR(reg.rate(), expected, 1.0);
}

TEST(RateRegulatorTest, TwoHalfStepsComposeLikeOneFullStep) {
  // The exponential decrease makes the update path-consistent in time.
  RateRegulator once(fluid_config(), 1e9, 0);
  once.on_bcn({1, 0, -500.0, 0}, 2 * kMillisecond);
  RateRegulator twice(fluid_config(), 1e9, 0);
  twice.on_bcn({1, 0, -500.0, 0}, kMillisecond);
  twice.on_bcn({1, 0, -500.0, 0}, 2 * kMillisecond);
  EXPECT_NEAR(once.rate(), twice.rate(), 1e-3);
}

TEST(RateRegulatorTest, AssociationOnFirstNegative) {
  RateRegulator reg(fluid_config(), 1e9, 0);
  EXPECT_FALSE(reg.is_associated());
  reg.on_bcn({7, 0, 500.0, 0}, 10);  // positive: no association
  EXPECT_FALSE(reg.is_associated());
  reg.on_bcn({7, 0, -500.0, 0}, 20);
  EXPECT_TRUE(reg.is_associated());
  EXPECT_EQ(reg.cpid(), 7u);
}

TEST(RateRegulatorTest, DissociatesAtLineRate) {
  RegulatorConfig c = fluid_config();
  c.max_rate = 2e9;
  RateRegulator reg(c, 1.9e9, 0);
  reg.on_bcn({3, 0, -100.0, 0}, kMicrosecond);
  EXPECT_TRUE(reg.is_associated());
  // A huge positive correction drives the rate to the cap -> dissociation.
  reg.on_bcn({3, 0, 1e6, 0}, kSecond);
  EXPECT_DOUBLE_EQ(reg.rate(), 2e9);
  EXPECT_FALSE(reg.is_associated());
}

TEST(RateRegulatorTest, ClampsToMinRate) {
  RateRegulator reg(fluid_config(), 2e6, 0);
  reg.on_bcn({1, 0, -1e9, 0}, kSecond);
  EXPECT_DOUBLE_EQ(reg.rate(), 1e6);
}

TEST(RateRegulatorTest, InitialRateClamped) {
  RateRegulator low(fluid_config(), 0.0, 0);
  EXPECT_DOUBLE_EQ(low.rate(), 1e6);
  RateRegulator high(fluid_config(), 1e12, 0);
  EXPECT_DOUBLE_EQ(high.rate(), 10e9);
}

TEST(RateRegulatorTest, ZeroSigmaLeavesRateUnchanged) {
  RateRegulator reg(fluid_config(), 5e8, 0);
  reg.on_bcn({1, 0, 0.0, 0}, kMillisecond);
  EXPECT_DOUBLE_EQ(reg.rate(), 5e8);
}

TEST(RateRegulatorTest, DraftModeAppliesPerMessageJump) {
  RegulatorConfig c = fluid_config();
  c.frame_bits = 12000.0;
  RateRegulator reg(c, 1e9, 0, &draft_mechanism());
  // sigma = +12000 bits = +1 frame: dr = Gi Ru * 1, independent of dt.
  reg.on_bcn({1, 0, 12000.0, 0}, 12345);
  EXPECT_NEAR(reg.rate(), 1e9 + 4.0 * 8e6, 1.0);
}

TEST(RateRegulatorTest, DraftModeMultiplicativeDecrease) {
  RegulatorConfig c = fluid_config();
  RateRegulator reg(c, 1e9, 0, &draft_mechanism());
  // sigma = -12.8 frames: factor = 1 - 12.8/128 = 0.9.
  reg.on_bcn({1, 0, -12.8 * 12000.0, 0}, 1);
  EXPECT_NEAR(reg.rate(), 0.9e9, 1e3);
}

TEST(RateRegulatorTest, DraftModeDecreaseFloorBoundsJump) {
  RegulatorConfig c = fluid_config();
  c.max_decrease = 0.5;
  RateRegulator reg(c, 1e9, 0, &draft_mechanism());
  // An enormous negative sigma would make the factor negative; the floor
  // keeps one message from removing more than half the rate.
  reg.on_bcn({1, 0, -1e9, 0}, 1);
  EXPECT_NEAR(reg.rate(), 0.5e9, 1e3);
}

}  // namespace
}  // namespace bcn::sim
