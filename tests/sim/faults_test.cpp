// Fault-injection layer (sim/faults.h): spec parsing, the determinism
// contract (same plan => byte-identical trajectory; all-zero plan => the
// pinned lossless digest), link flaps discarding in-flight frames without
// growing the event pool, and counter reconciliation against the
// scenario's own control-plane counters.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "sim/faults.h"
#include "sim/network.h"

namespace bcn::sim {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Same reference scenario as determinism_test.cpp, so the all-zero-plan
// case can compare against that test's pinned digest.
NetworkConfig reference_config() {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  NetworkConfig cfg;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * kMicrosecond;
  return cfg;
}

struct RunDigest {
  std::uint64_t hash = 0;
  Counters counters;
  FaultCounters faults;
  std::size_t events_executed = 0;
};

RunDigest run_reference(const FaultPlan& plan) {
  NetworkConfig cfg = reference_config();
  cfg.faults = plan;
  Network net(cfg);
  net.run(from_seconds(0.04));
  RunDigest d;
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& tp : net.stats().trace()) h = fnv1a(h, &tp, sizeof(tp));
  h = fnv1a(h, &net.stats().counters, sizeof(net.stats().counters));
  d.hash = h;
  d.counters = net.stats().counters;
  d.faults = net.fault_counters();
  d.events_executed = net.simulator().executed();
  return d;
}

// --- parser ---------------------------------------------------------------

TEST(FaultsTest, ParserAcceptsFullGrammar) {
  std::string err;
  const auto plan = parse_fault_plan(
      "bcn_drop=0.25,bcn_dup=0.1,bcn_delay=0.5:100us,data_drop=0.01,"
      "pause_drop=1,flap=10ms+2ms/30ms+500us,seed=42",
      &err);
  ASSERT_TRUE(plan) << err;
  EXPECT_DOUBLE_EQ(plan->bcn_drop_p, 0.25);
  EXPECT_DOUBLE_EQ(plan->bcn_dup_p, 0.1);
  EXPECT_DOUBLE_EQ(plan->bcn_delay_p, 0.5);
  EXPECT_EQ(plan->bcn_delay, 100 * kMicrosecond);
  EXPECT_DOUBLE_EQ(plan->data_drop_p, 0.01);
  EXPECT_DOUBLE_EQ(plan->pause_drop_p, 1.0);
  ASSERT_EQ(plan->flaps.size(), 2u);
  EXPECT_EQ(plan->flaps[0].down_at, 10 * kMillisecond);
  EXPECT_EQ(plan->flaps[0].up_at, 12 * kMillisecond);
  EXPECT_EQ(plan->flaps[1].down_at, 30 * kMillisecond);
  EXPECT_EQ(plan->flaps[1].up_at, 30 * kMillisecond + 500 * kMicrosecond);
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_TRUE(plan->armed());
}

TEST(FaultsTest, ParserSortsFlapWindows) {
  const auto plan = parse_fault_plan("flap=30ms+1ms/10ms+1ms");
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->flaps[0].down_at, 10 * kMillisecond);
  EXPECT_EQ(plan->flaps[1].down_at, 30 * kMillisecond);
}

TEST(FaultsTest, ParserRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "bcn_drop", "bcn_drop=", "bcn_drop=1.5", "bcn_drop=-0.1",
        "bcn_drop=abc", "unknown_key=1", "bcn_delay=0.5", "bcn_delay=0.5:",
        "bcn_delay=0.5:100", "bcn_delay=0.5:100furlongs", "flap=10ms",
        "flap=10ms+0ms", "flap=10ms+5ms/12ms+1ms", "seed=notanumber",
        "=0.5", "bcn_drop=0.1,,bcn_dup=0.1"}) {
    std::string err;
    EXPECT_FALSE(parse_fault_plan(bad, &err)) << "accepted: " << bad;
    EXPECT_FALSE(err.empty()) << "no error message for: " << bad;
  }
}

TEST(FaultsTest, SummaryRoundTripsThroughParser) {
  const auto plan = parse_fault_plan(
      "bcn_drop=0.2,bcn_delay=0.1:50us,flap=1ms+2ms,seed=7");
  ASSERT_TRUE(plan);
  const auto again = parse_fault_plan(fault_plan_summary(*plan));
  ASSERT_TRUE(again);
  EXPECT_DOUBLE_EQ(again->bcn_drop_p, plan->bcn_drop_p);
  EXPECT_DOUBLE_EQ(again->bcn_delay_p, plan->bcn_delay_p);
  EXPECT_EQ(again->bcn_delay, plan->bcn_delay);
  ASSERT_EQ(again->flaps.size(), plan->flaps.size());
  EXPECT_EQ(again->flaps[0].down_at, plan->flaps[0].down_at);
  EXPECT_EQ(again->flaps[0].up_at, plan->flaps[0].up_at);
  EXPECT_EQ(again->seed, plan->seed);
}

// --- determinism contract -------------------------------------------------

TEST(FaultsTest, ZeroPlanMatchesPinnedDeterminismDigest) {
  // An all-zero FaultPlan must be a true no-op: no RNG draws, no extra
  // events, the exact digest determinism_test.cpp pins for the lossless
  // reference run.
  const RunDigest d = run_reference(FaultPlan{});
  EXPECT_EQ(d.hash, 0x521a746626762d88ull);
  EXPECT_EQ(d.events_executed, 108970u);
  EXPECT_EQ(d.faults.bcn_dropped, 0u);
  EXPECT_EQ(d.faults.data_dropped, 0u);
}

TEST(FaultsTest, SamePlanProducesByteIdenticalTrajectory) {
  const auto plan = parse_fault_plan(
      "bcn_drop=0.3,bcn_delay=0.2:100us,data_drop=0.001,seed=11");
  ASSERT_TRUE(plan);
  const RunDigest a = run_reference(*plan);
  const RunDigest b = run_reference(*plan);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.faults.bcn_dropped, b.faults.bcn_dropped);
  EXPECT_EQ(a.faults.bcn_delayed, b.faults.bcn_delayed);
  EXPECT_EQ(a.faults.data_dropped, b.faults.data_dropped);
  EXPECT_GT(a.faults.bcn_dropped, 0u);
  EXPECT_GT(a.faults.bcn_delayed, 0u);
  EXPECT_GT(a.faults.data_dropped, 0u);
}

TEST(FaultsTest, FaultSeedChangesScheduleTrafficSeedDoesNot) {
  const auto plan = parse_fault_plan("bcn_drop=0.3,seed=11");
  const auto other = parse_fault_plan("bcn_drop=0.3,seed=12");
  ASSERT_TRUE(plan && other);
  const RunDigest a = run_reference(*plan);
  const RunDigest b = run_reference(*other);
  // A different fault seed is a different degraded network.
  EXPECT_NE(a.hash, b.hash);
}

TEST(FaultsTest, FaultClassLanesAreIndependent) {
  // Adding a second fault class must not change which BCN messages the
  // drop lane selects: the drop schedule is a pure function of its own
  // lane.  (The trajectory differs -- duplicates change queue dynamics --
  // but the drop tally stays within the range the same-lane schedule
  // allows; equality of the early schedule is what the lane isolation
  // guarantees, so compare counts on a short horizon with no feedback
  // interaction: pause_drop never fires here, leaving bcn_drop's lane
  // untouched.)
  const auto drop_only = parse_fault_plan("bcn_drop=0.4,seed=5");
  const auto with_pause = parse_fault_plan("bcn_drop=0.4,pause_drop=0.5,seed=5");
  ASSERT_TRUE(drop_only && with_pause);
  const RunDigest a = run_reference(*drop_only);
  const RunDigest b = run_reference(*with_pause);
  // The reference run never asserts PAUSE (queue stays far below qsc), so
  // enabling the pause_drop lane must leave the run byte-identical.
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.faults.bcn_dropped, b.faults.bcn_dropped);
  EXPECT_EQ(b.faults.pause_dropped, 0u);
}

// --- counter reconciliation ----------------------------------------------

TEST(FaultsTest, CertainBcnLossDropsEveryNotification) {
  const auto plan = parse_fault_plan("bcn_drop=1");
  ASSERT_TRUE(plan);
  const RunDigest d = run_reference(*plan);
  // Every emitted notification (negative and positive) is dropped, and
  // the tally reconciles exactly with the emission counters.
  EXPECT_EQ(d.faults.bcn_dropped,
            d.counters.bcn_negative + d.counters.bcn_positive);
  EXPECT_GT(d.faults.bcn_dropped, 0u);

  // No notification survives, so no regulator ever applies feedback.
  NetworkConfig cfg = reference_config();
  cfg.faults = *plan;
  Network net(cfg);
  net.run(from_seconds(0.01));
  EXPECT_EQ(net.stats().events().count(obs::EventKind::BcnApplied), 0u);
  EXPECT_EQ(net.stats().events().count(obs::EventKind::FaultBcnDropped),
            net.fault_counters().bcn_dropped);
}

TEST(FaultsTest, CertainDataLossStarvesTheSwitch) {
  const auto plan = parse_fault_plan("data_drop=1");
  ASSERT_TRUE(plan);
  const RunDigest d = run_reference(*plan);
  EXPECT_EQ(d.counters.frames_delivered, 0u);
  EXPECT_EQ(d.counters.frames_enqueued, 0u);
  EXPECT_EQ(d.faults.data_dropped, d.counters.frames_sent);
  EXPECT_GT(d.faults.data_dropped, 0u);
}

TEST(FaultsTest, DuplicationInflatesAppliedFeedback) {
  const auto plan = parse_fault_plan("bcn_dup=1");
  ASSERT_TRUE(plan);
  NetworkConfig cfg = reference_config();
  cfg.faults = *plan;
  Network net(cfg);
  net.run(from_seconds(0.01));
  const auto& ev = net.stats().events();
  const std::uint64_t sent = ev.count(obs::EventKind::BcnNegativeSent) +
                             ev.count(obs::EventKind::BcnPositiveSent);
  // Every notification is duplicated: regulators apply feedback twice per
  // emission.
  EXPECT_EQ(ev.count(obs::EventKind::BcnApplied), 2 * sent);
  EXPECT_EQ(net.fault_counters().bcn_duplicated, sent);
  EXPECT_GT(sent, 0u);
}

// --- link flaps -----------------------------------------------------------

TEST(FaultsTest, LinkFlapCutsFramesWithoutTombstones) {
  const auto plan = parse_fault_plan("flap=5ms+2ms/20ms+1ms");
  ASSERT_TRUE(plan);
  NetworkConfig cfg = reference_config();
  cfg.faults = *plan;
  Network net(cfg);
  net.run(from_seconds(0.04));
  const FaultCounters& fc = net.fault_counters();
  EXPECT_EQ(fc.link_flaps, 2u);
  EXPECT_GT(fc.flap_dropped, 0u);
  // Frames sent into (or caught in) a down window are discarded at
  // delivery, never cancelled: the scheduler's slot pool must stay fully
  // recycled with no event unaccounted for.
  Simulator& sim = net.simulator();
  EXPECT_EQ(sim.pool_free() + sim.heap_size(), sim.pool_slots());
  // Both edges trace as LinkDown/LinkUp.
  EXPECT_EQ(net.stats().events().count(obs::EventKind::LinkDown), 2u);
  EXPECT_EQ(net.stats().events().count(obs::EventKind::LinkUp), 2u);
  // Conservation: every sent frame was delivered, queued, dropped at the
  // switch, cut by the flap, or is still in flight at the horizon.
  const Counters& c = net.stats().counters;
  EXPECT_LE(c.frames_enqueued + fc.flap_dropped, c.frames_sent);
}

TEST(FaultsTest, LinkDownWindowIsHalfOpen) {
  const auto plan = parse_fault_plan("flap=1ms+1ms");
  ASSERT_TRUE(plan);
  FaultInjector inj(*plan, 0, nullptr);
  EXPECT_FALSE(inj.link_down(1 * kMillisecond - 1));
  EXPECT_TRUE(inj.link_down(1 * kMillisecond));
  EXPECT_TRUE(inj.link_down(2 * kMillisecond - 1));
  EXPECT_FALSE(inj.link_down(2 * kMillisecond));
}

TEST(FaultsTest, DisarmedInjectorIsANoOp) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.drop_bcn(0, 0));
  EXPECT_EQ(inj.bcn_extra_delay(0, 0), 0);
  EXPECT_FALSE(inj.duplicate_bcn(0, 0));
  EXPECT_FALSE(inj.drop_pause(0));
  EXPECT_FALSE(inj.cut_by_flap(0, 0));
  EXPECT_FALSE(inj.drop_data(0, 0));
  EXPECT_FALSE(inj.link_down(0));
}

}  // namespace
}  // namespace bcn::sim
