#include "sim/core_switch.h"

#include <vector>

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

struct Harness {
  Simulator sim;
  SimStats stats;
  CoreSwitchConfig config;
  std::vector<BcnMessage> bcn;
  std::vector<PauseFrame> pauses;

  explicit Harness(CoreSwitchConfig c) : config(c), sw(sim, c, stats) {
    sw.set_bcn_sender([this](const BcnMessage& m) { bcn.push_back(m); });
    sw.set_pause_sender([this](const PauseFrame& p) { pauses.push_back(p); });
  }

  Frame frame(SourceId src, double bits = 12000.0, bool rrt = false,
              CongestionPointId cpid = 1) {
    Frame f;
    f.source = src;
    f.size_bits = bits;
    f.has_rrt = rrt;
    f.rrt_cpid = cpid;
    return f;
  }

  CoreSwitch sw;
};

CoreSwitchConfig small_config() {
  CoreSwitchConfig c;
  c.capacity = 1e9;
  c.buffer_bits = 120000.0;  // 10 frames
  c.q0 = 60000.0;            // 5 frames
  c.qsc = 96000.0;           // 8 frames
  c.w = 2.0;
  c.pm = 0.5;  // sample every 2nd frame
  c.positive_requires_rrt = false;
  return c;
}

TEST(CoreSwitchTest, EnqueueAndDrain) {
  Harness h(small_config());
  h.sw.on_frame(h.frame(0));
  EXPECT_DOUBLE_EQ(h.sw.queue_bits(), 12000.0);
  // Drain at 1 Gbps: 12 us per frame.
  h.sim.run_until(12 * kMicrosecond);
  EXPECT_DOUBLE_EQ(h.sw.queue_bits(), 0.0);
  EXPECT_EQ(h.stats.counters.frames_delivered, 1u);
  EXPECT_DOUBLE_EQ(h.stats.counters.bits_delivered, 12000.0);
}

TEST(CoreSwitchTest, DropsWhenBufferFull) {
  Harness h(small_config());
  for (int i = 0; i < 12; ++i) h.sw.on_frame(h.frame(0));
  // 10 fit (120000 bits), 2 dropped.
  EXPECT_EQ(h.stats.counters.frames_enqueued, 10u);
  EXPECT_EQ(h.stats.counters.frames_dropped, 2u);
  EXPECT_DOUBLE_EQ(h.sw.queue_bits(), 120000.0);
}

TEST(CoreSwitchTest, SamplesEveryNthFrame) {
  Harness h(small_config());  // pm = 0.5 -> every 2nd
  for (int i = 0; i < 10; ++i) h.sw.on_frame(h.frame(0));
  EXPECT_EQ(h.stats.counters.frames_sampled, 5u);
}

TEST(CoreSwitchTest, NegativeBcnWhenCongested) {
  Harness h(small_config());
  // Fill to 8 frames quickly: q = 96000 > q0 = 60000, delta_q > 0 ->
  // sigma < 0 on the later samples.
  for (int i = 0; i < 8; ++i) h.sw.on_frame(h.frame(3));
  EXPECT_GT(h.stats.counters.bcn_negative, 0u);
  ASSERT_FALSE(h.bcn.empty());
  EXPECT_EQ(h.bcn.back().target, 3u);
  EXPECT_LT(h.bcn.back().sigma, 0.0);
  EXPECT_EQ(h.bcn.back().cpid, 1u);
}

TEST(CoreSwitchTest, SigmaFollowsEq1) {
  Harness h(small_config());
  // First two arrivals: sample fires on the 2nd with q = 12000 (one frame
  // enqueued before sampling of the 2nd happens pre-enqueue), delta_q =
  // 12000 - 0.  sigma = (q0 - q) - w dq = (60000-12000) - 2*12000 = 24000.
  h.sw.on_frame(h.frame(0));
  h.sw.on_frame(h.frame(0));
  ASSERT_EQ(h.bcn.size(), 1u);
  EXPECT_DOUBLE_EQ(h.bcn[0].sigma, 24000.0);
}

TEST(CoreSwitchTest, PositiveBcnOnlyBelowQ0) {
  Harness h(small_config());
  h.sw.on_frame(h.frame(5));
  h.sw.on_frame(h.frame(5));  // sampled: q = 12000 < q0, sigma > 0
  ASSERT_EQ(h.bcn.size(), 1u);
  EXPECT_GT(h.bcn[0].sigma, 0.0);
  EXPECT_EQ(h.stats.counters.bcn_positive, 1u);
}

TEST(CoreSwitchTest, PositiveRequiresRrtWhenConfigured) {
  CoreSwitchConfig c = small_config();
  c.positive_requires_rrt = true;
  Harness h(c);
  h.sw.on_frame(h.frame(0));
  h.sw.on_frame(h.frame(0));  // sampled, untagged -> no positive BCN
  EXPECT_TRUE(h.bcn.empty());
  // Tagged frame with matching CPID gets positive feedback.
  h.sw.on_frame(h.frame(0, 12000.0, true, 1));
  h.sw.on_frame(h.frame(0, 12000.0, true, 1));
  h.sim.run_until(80 * kMicrosecond);  // drain below q0
  h.sw.on_frame(h.frame(0, 12000.0, true, 1));
  h.sw.on_frame(h.frame(0, 12000.0, true, 1));
  EXPECT_GE(h.stats.counters.bcn_positive, 1u);
}

TEST(CoreSwitchTest, MismatchedCpidGetsNoPositive) {
  CoreSwitchConfig c = small_config();
  c.positive_requires_rrt = true;
  Harness h(c);
  h.sw.on_frame(h.frame(0, 12000.0, true, 99));
  h.sw.on_frame(h.frame(0, 12000.0, true, 99));
  EXPECT_EQ(h.stats.counters.bcn_positive, 0u);
}

TEST(CoreSwitchTest, PauseAboveQsc) {
  Harness h(small_config());
  for (int i = 0; i < 9; ++i) h.sw.on_frame(h.frame(0));
  EXPECT_GE(h.stats.counters.pause_frames, 1u);
  ASSERT_FALSE(h.pauses.empty());
  EXPECT_GT(h.pauses[0].duration, 0);
}

TEST(CoreSwitchTest, PauseCooldownLimitsRate) {
  Harness h(small_config());
  for (int i = 0; i < 10; ++i) h.sw.on_frame(h.frame(0));
  // All arrivals above qsc land within the cooldown window.
  EXPECT_EQ(h.stats.counters.pause_frames, 1u);
}

TEST(CoreSwitchTest, PauseDisabled) {
  CoreSwitchConfig c = small_config();
  c.enable_pause = false;
  Harness h(c);
  for (int i = 0; i < 10; ++i) h.sw.on_frame(h.frame(0));
  EXPECT_EQ(h.stats.counters.pause_frames, 0u);
  EXPECT_TRUE(h.pauses.empty());
}

TEST(CoreSwitchTest, ServiceKeepsDrainingBackToBack) {
  Harness h(small_config());
  for (int i = 0; i < 5; ++i) h.sw.on_frame(h.frame(0));
  h.sim.run_until(60 * kMicrosecond);  // 5 frames x 12 us
  EXPECT_EQ(h.stats.counters.frames_delivered, 5u);
  EXPECT_DOUBLE_EQ(h.sw.queue_bits(), 0.0);
}

}  // namespace
}  // namespace bcn::sim
