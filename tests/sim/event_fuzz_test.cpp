// Randomized stress of the pooled indexed-heap scheduler against a naive
// sorted-vector reference model.  The model mirrors the Simulator's
// contract exactly: events fire in (when, seq) order, cancel removes a
// pending event and no-ops on stale handles, reschedule re-enters the FIFO
// order with a fresh sequence number, and deadlines clamp to >= now.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace bcn::sim {
namespace {

struct ModelEvent {
  SimTime when = 0;
  std::uint64_t seq = 0;      // model-side FIFO order, monotone per op
  std::uint32_t marker = 0;   // unique per schedule, carried in the tag
  bool live = true;
};

// The naive reference: a flat vector scanned and sorted on demand.
class Model {
 public:
  // Returns the index used as the model's handle.
  std::size_t schedule(SimTime when, std::uint32_t marker) {
    events_.push_back({clamp(when), next_seq_++, marker, true});
    return events_.size() - 1;
  }

  bool cancel(std::size_t handle) {
    if (handle >= events_.size() || !events_[handle].live) return false;
    events_[handle].live = false;
    return true;
  }

  bool reschedule(std::size_t handle, SimTime when) {
    if (handle >= events_.size() || !events_[handle].live) return false;
    events_[handle].when = clamp(when);
    events_[handle].seq = next_seq_++;
    return true;
  }

  // Fires everything due by `until` into `fired`, in (when, seq) order.
  void run_until(SimTime until, std::vector<std::uint32_t>& fired) {
    std::vector<std::size_t> due;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (events_[i].live && events_[i].when <= until) due.push_back(i);
    }
    std::sort(due.begin(), due.end(), [&](std::size_t a, std::size_t b) {
      if (events_[a].when != events_[b].when)
        return events_[a].when < events_[b].when;
      return events_[a].seq < events_[b].seq;
    });
    for (const std::size_t i : due) {
      now_ = events_[i].when;
      events_[i].live = false;
      fired.push_back(events_[i].marker);
    }
    now_ = std::max(now_, until);
  }

  std::size_t live_count() const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.live ? 1 : 0;
    return n;
  }

 private:
  SimTime clamp(SimTime when) const { return std::max(when, now_); }

  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0;
};

class FiringRecorder : public EventTarget {
 public:
  void on_event(const SimEvent& event) override {
    fired_.push_back(event.tag);
  }
  std::vector<std::uint32_t>& fired() { return fired_; }

 private:
  std::vector<std::uint32_t> fired_;
};

TEST(EventFuzzTest, RandomizedOpsMatchSortedVectorReference) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull, 987654321ull}) {
    Simulator sim;
    FiringRecorder rec;
    Model model;
    std::vector<std::uint32_t> model_fired;

    std::uint64_t rng = seed;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    // Parallel handle tables: the same lane always holds the pair of
    // handles for one scheduled event (or a stale pair after it fired).
    std::vector<EventId> sim_ids;
    std::vector<std::size_t> model_ids;
    std::uint32_t marker = 0;

    for (int op = 0; op < 20'000; ++op) {
      const std::uint64_t roll = next() % 100;
      if (roll < 55 || sim_ids.empty()) {
        // Schedule: mostly near-future, sometimes deliberately in the past
        // (both sides clamp to now).
        const SimTime when =
            sim.now() + static_cast<SimTime>(next() % 200) - 20;
        sim_ids.push_back(
            sim.schedule_event(when, &rec, EventKind::Tick, marker));
        model_ids.push_back(model.schedule(when, marker));
        ++marker;
      } else if (roll < 70) {
        // Cancel a random lane; fired lanes exercise the stale-handle path.
        const std::size_t lane = next() % sim_ids.size();
        sim.cancel(sim_ids[lane]);
        model.cancel(model_ids[lane]);
      } else if (roll < 85) {
        // Reschedule a random lane (no-op when stale on both sides).
        const std::size_t lane = next() % sim_ids.size();
        const SimTime when =
            sim.now() + static_cast<SimTime>(next() % 150) - 10;
        const bool sim_ok = sim.reschedule(sim_ids[lane], when);
        const bool model_ok = model.reschedule(model_ids[lane], when);
        ASSERT_EQ(sim_ok, model_ok) << "seed=" << seed << " op=" << op;
      } else {
        // Advance time and drain.
        const SimTime until = sim.now() + static_cast<SimTime>(next() % 120);
        sim.run_until(until);
        model.run_until(until, model_fired);
        ASSERT_EQ(rec.fired(), model_fired)
            << "seed=" << seed << " op=" << op;
      }
    }

    // Final drain far past every deadline.
    sim.run_until(sim.now() + 1'000'000);
    model.run_until(sim.now(), model_fired);
    ASSERT_EQ(rec.fired(), model_fired) << "seed=" << seed;
    EXPECT_TRUE(sim.idle());
    EXPECT_EQ(model.live_count(), 0u);
    // Every slot back on the free list: no leaked pool entries.
    EXPECT_EQ(sim.pool_free(), sim.pool_slots());
  }
}

// Handlers that schedule, cancel, and re-arm from inside dispatch -- the
// paths the scenario objects (sources re-pacing, switches chaining
// service) hit constantly.
TEST(EventFuzzTest, HandlersMutatingScheduleStayConsistent) {
  Simulator sim;

  class Chaos : public EventTarget {
   public:
    explicit Chaos(Simulator& sim) : sim_(sim) {}

    void seed_events() {
      for (int i = 0; i < 16; ++i) {
        ids_.push_back(sim_.schedule_event(
            static_cast<SimTime>(next() % 50), this, EventKind::Tick, 0));
      }
    }

    void on_event(const SimEvent& event) override {
      ++fired_;
      last_at_ = sim_.now();
      const std::uint64_t roll = next() % 4;
      if (roll == 0 && fired_ < 30'000) {
        // Re-arm self: same slot, later deadline.
        sim_.reschedule(event.id, sim_.now() + 1 + next() % 20);
      } else if (roll == 1) {
        // Cancel a random other handle (possibly stale, possibly self --
        // self is already past its firing check, so this is a no-op or a
        // plain removal, never a crash).
        sim_.cancel(ids_[next() % ids_.size()]);
      } else if (roll == 2 && fired_ < 30'000) {
        ids_.push_back(sim_.schedule_event(sim_.now() + next() % 30, this,
                                           EventKind::Tick, 0));
      }
    }

    int fired() const { return fired_; }
    SimTime last_at() const { return last_at_; }

   private:
    std::uint64_t next() {
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      return rng_;
    }

    Simulator& sim_;
    std::uint64_t rng_ = 0x2545F4914F6CDD1Dull;
    std::vector<EventId> ids_;
    int fired_ = 0;
    SimTime last_at_ = 0;
  };

  Chaos chaos(sim);
  chaos.seed_events();
  SimTime prev_now = 0;
  while (!sim.idle()) {
    sim.run_until(sim.now() + 1000);
    // Time never runs backwards across drain batches.
    ASSERT_GE(sim.now(), prev_now);
    prev_now = sim.now();
    ASSERT_LT(chaos.fired(), 100'000);  // guaranteed to terminate
  }
  EXPECT_GT(chaos.fired(), 16);
  EXPECT_EQ(sim.pool_free(), sim.pool_slots());
  EXPECT_EQ(sim.heap_size(), 0u);
}

}  // namespace
}  // namespace bcn::sim
