#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/stats.h"

namespace bcn::sim {
namespace {

TEST(JainIndexTest, PerfectFairness) {
  SimStats s;
  for (SourceId i = 0; i < 4; ++i) s.add_delivered(i, 1000.0);
  EXPECT_DOUBLE_EQ(s.jain_fairness_index(), 1.0);
}

TEST(JainIndexTest, MaximallyUnfair) {
  SimStats s;
  s.add_delivered(0, 1000.0);
  for (SourceId i = 1; i < 4; ++i) s.add_delivered(i, 0.0);
  EXPECT_NEAR(s.jain_fairness_index(), 0.25, 1e-12);
}

TEST(JainIndexTest, EmptyIsFair) {
  SimStats s;
  EXPECT_DOUBLE_EQ(s.jain_fairness_index(), 1.0);
}

TEST(JainIndexTest, IntermediateValue) {
  SimStats s;
  s.add_delivered(0, 2000.0);
  s.add_delivered(1, 1000.0);
  // (3000)^2 / (2 * (4e6 + 1e6)) = 9e6 / 1e7 = 0.9
  EXPECT_NEAR(s.jain_fairness_index(), 0.9, 1e-12);
}

TEST(FairnessNetworkTest, HomogeneousBcnSourcesShareFairly) {
  // The paper adopts AIMD because it is "stable, convergent and fair"
  // [Chiu & Jain]; homogeneous sources must end up with near-equal
  // delivered volume.
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 8;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  p.gi = 0.5;
  cfg.params = p;
  cfg.initial_rate = 2e9;  // 16 Gbps burst into 10 Gbps
  Network net(cfg);
  net.run(60 * kMillisecond);
  EXPECT_EQ(net.stats().delivered_source_count(), 8u);
  EXPECT_GT(net.stats().jain_fairness_index(), 0.95);
}

TEST(FairnessNetworkTest, UnequalStartsConvergeTowardFairShare) {
  // AIMD's fairness claim: sources starting at very different rates drift
  // toward equal shares.  Compare late-window regulator rates.
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 2;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  p.gi = 0.5;
  cfg.params = p;
  cfg.initial_rate = 0.0;  // use per-params init below
  cfg.params.init_rate = 1e9;
  Network net(cfg);
  // Manually skew one source by feeding it an early positive adjustment:
  // simplest skew is asymmetric start -- run briefly, then compare decay
  // of the imbalance instead.  (Homogeneous Network API: both start at
  // init_rate; the imbalance comes from sampling luck.)
  net.run(80 * kMillisecond);
  const auto& sources = net.sources();
  ASSERT_EQ(sources.size(), 2u);
  const double r0 = sources[0]->rate();
  const double r1 = sources[1]->rate();
  const double imbalance =
      std::abs(r0 - r1) / std::max({r0, r1, 1.0});
  EXPECT_LT(imbalance, 0.4);
  EXPECT_GT(net.stats().jain_fairness_index(), 0.98);
}

}  // namespace
}  // namespace bcn::sim
