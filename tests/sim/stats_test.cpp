#include "sim/stats.h"

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

TEST(SimStatsTest, QueueAggregates) {
  SimStats s;
  s.record(0, 0.0, 1e9);
  s.record(10, 5e5, 1.2e9);
  s.record(20, 2e5, 0.8e9);
  s.record(30, 8e5, 1e9);
  EXPECT_DOUBLE_EQ(s.max_queue(), 8e5);
  EXPECT_DOUBLE_EQ(s.mean_queue(), (0.0 + 5e5 + 2e5 + 8e5) / 4.0);
  EXPECT_DOUBLE_EQ(s.min_queue_after(15), 2e5);
  EXPECT_DOUBLE_EQ(s.min_queue_after(25), 8e5);
}

TEST(SimStatsTest, MinQueueAfterEmptyTailIsZero) {
  SimStats s;
  s.record(0, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(s.min_queue_after(100), 0.0);
}

TEST(SimStatsTest, Throughput) {
  SimStats s;
  s.counters.bits_delivered = 1e9;
  EXPECT_DOUBLE_EQ(s.throughput(kSecond), 1e9);
  EXPECT_DOUBLE_EQ(s.throughput(kSecond / 2), 2e9);
  EXPECT_DOUBLE_EQ(s.throughput(0), 0.0);
}

TEST(SimStatsTest, PhaseTrajectoryConversion) {
  SimStats s;
  s.record(0, 0.0, 1e10);
  s.record(kMillisecond, 3e6, 1.1e10);
  const auto traj = s.to_phase_trajectory(2.5e6, 1e10);
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj[0].t, 0.0);
  EXPECT_DOUBLE_EQ(traj[0].z.x, -2.5e6);
  EXPECT_DOUBLE_EQ(traj[0].z.y, 0.0);
  EXPECT_DOUBLE_EQ(traj[1].t, 1e-3);
  EXPECT_DOUBLE_EQ(traj[1].z.x, 0.5e6);
  EXPECT_DOUBLE_EQ(traj[1].z.y, 1e9);
}

}  // namespace
}  // namespace bcn::sim
