#include "sim/stats.h"

#include <gtest/gtest.h>

namespace bcn::sim {
namespace {

TEST(SimStatsTest, QueueAggregates) {
  SimStats s;
  s.record(0, 0.0, 1e9);
  s.record(10, 5e5, 1.2e9);
  s.record(20, 2e5, 0.8e9);
  s.record(30, 8e5, 1e9);
  EXPECT_DOUBLE_EQ(s.max_queue(), 8e5);
  EXPECT_DOUBLE_EQ(s.mean_queue(), (0.0 + 5e5 + 2e5 + 8e5) / 4.0);
  ASSERT_TRUE(s.min_queue_after(15).has_value());
  EXPECT_DOUBLE_EQ(*s.min_queue_after(15), 2e5);
  ASSERT_TRUE(s.min_queue_after(25).has_value());
  EXPECT_DOUBLE_EQ(*s.min_queue_after(25), 8e5);
}

// Regression: the old implementation returned 0.0 both for "no samples
// after t" and for a genuinely drained queue, so an underflow check
// could mistake missing data for starvation.
TEST(SimStatsTest, MinQueueAfterDistinguishesEmptyTailFromDrainedQueue) {
  SimStats s;
  s.record(0, 5.0, 0.0);
  EXPECT_FALSE(s.min_queue_after(100).has_value());  // no samples after t
  s.record(200, 0.0, 0.0);
  ASSERT_TRUE(s.min_queue_after(100).has_value());   // genuinely drained
  EXPECT_DOUBLE_EQ(*s.min_queue_after(100), 0.0);
}

TEST(SimStatsTest, MinQueueAfterEmptyTrace) {
  SimStats s;
  EXPECT_FALSE(s.min_queue_after(0).has_value());
}

// With no trace recorded the lifetime counters over the caller's horizon
// are the only information available (legacy behavior).
TEST(SimStatsTest, ThroughputWithoutTraceUsesHorizon) {
  SimStats s;
  s.counters.bits_delivered = 1e9;
  EXPECT_DOUBLE_EQ(s.throughput(kSecond), 1e9);
  EXPECT_DOUBLE_EQ(s.throughput(kSecond / 2), 2e9);
  EXPECT_DOUBLE_EQ(s.throughput(0), 0.0);
  EXPECT_DOUBLE_EQ(s.throughput(-kSecond), 0.0);
}

// Regression: the old implementation divided lifetime bits_delivered by
// whatever horizon the caller passed.  A horizon longer than the run
// diluted the rate; a horizon shorter than the run inflated it.
TEST(SimStatsTest, ThroughputClampsHorizonToTraceSpan) {
  SimStats s;
  s.record(0, 0.0, 0.0);
  s.counters.bits_delivered = 1e9;
  s.record(kSecond, 0.0, 0.0);  // snapshots bits_delivered = 1e9 at t = 1 s

  // Over-long horizon: clamped to the 1 s trace span, not divided by 2 s.
  EXPECT_DOUBLE_EQ(s.throughput(2 * kSecond), 1e9);
  // Exact horizon unchanged.
  EXPECT_DOUBLE_EQ(s.throughput(kSecond), 1e9);
}

TEST(SimStatsTest, ThroughputWindowsDeliveredBits) {
  SimStats s;
  s.record(0, 0.0, 0.0);
  s.counters.bits_delivered = 4e8;
  s.record(kSecond / 2, 0.0, 0.0);
  s.counters.bits_delivered = 1e9;
  s.record(kSecond, 0.0, 0.0);

  // A half-span horizon reads the bits delivered *by then* (4e8), not
  // the lifetime total over the half horizon (which would be 2e9).
  EXPECT_DOUBLE_EQ(s.throughput(kSecond / 2), 8e8);
  EXPECT_DOUBLE_EQ(s.throughput(kSecond), 1e9);
}

TEST(SimStatsTest, PhaseTrajectoryConversion) {
  SimStats s;
  s.record(0, 0.0, 1e10);
  s.record(kMillisecond, 3e6, 1.1e10);
  const auto traj = s.to_phase_trajectory(2.5e6, 1e10);
  ASSERT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj[0].t, 0.0);
  EXPECT_DOUBLE_EQ(traj[0].z.x, -2.5e6);
  EXPECT_DOUBLE_EQ(traj[0].z.y, 0.0);
  EXPECT_DOUBLE_EQ(traj[1].t, 1e-3);
  EXPECT_DOUBLE_EQ(traj[1].z.x, 0.5e6);
  EXPECT_DOUBLE_EQ(traj[1].z.y, 1e9);
}

// Per-source accounting lives in an unordered_map; the sorted view must
// be deterministic (ascending SourceId) regardless of insertion order.
TEST(SimStatsTest, PerSourceBitsSortedIsDeterministic) {
  SimStats scrambled;
  for (const SourceId id : {7u, 0u, 42u, 3u, 19u, 1u}) {
    scrambled.add_delivered(id, 1000.0 * (id + 1));
  }
  SimStats ordered;
  for (const SourceId id : {0u, 1u, 3u, 7u, 19u, 42u}) {
    ordered.add_delivered(id, 1000.0 * (id + 1));
  }
  const auto a = scrambled.per_source_bits_sorted();
  const auto b = ordered.per_source_bits_sorted();
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].first, a[i].first);
  }
  EXPECT_EQ(a.front().first, 0u);
  EXPECT_DOUBLE_EQ(a.back().second, 43000.0);
}

TEST(SimStatsTest, ExportMetricsSnapshotsCountersAndSigma) {
  SimStats s;
  s.counters.frames_sent = 10;
  s.counters.frames_delivered = 8;
  s.counters.bcn_negative = 3;
  s.counters.bits_delivered = 96000.0;
  s.record(0, 0.0, 0.0);
  s.record_sigma(-1e6);
  s.record_sigma(2e5);
  s.add_delivered(1, 96000.0);

  obs::MetricsRegistry reg;
  s.export_metrics(reg, "sim.");
  ASSERT_NE(reg.find_counter("sim.frames_sent"), nullptr);
  EXPECT_EQ(reg.find_counter("sim.frames_sent")->value(), 10u);
  EXPECT_EQ(reg.find_counter("sim.frames_delivered")->value(), 8u);
  EXPECT_EQ(reg.find_counter("sim.bcn_negative")->value(), 3u);
  ASSERT_NE(reg.find_gauge("sim.flow.1.bits_delivered"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("sim.flow.1.bits_delivered")->value(),
                   96000.0);
  ASSERT_NE(reg.find_histogram("sim.sigma_bits"), nullptr);
  EXPECT_EQ(reg.find_histogram("sim.sigma_bits")->count(), 2u);
}

}  // namespace
}  // namespace bcn::sim
