// Random (Bernoulli) frame sampling at the congestion point -- the
// original ECM proposal's discipline -- versus the deterministic 1/pm
// count the paper's fluid model assumes.
#include <cmath>

#include <gtest/gtest.h>

#include "sim/network.h"

namespace bcn::sim {
namespace {

NetworkConfig slow_regime(bool random, std::uint64_t seed = 0x5eed) {
  NetworkConfig cfg;
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.pm = 0.2;
  p.gi = 0.5;
  cfg.params = p;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.random_sampling = random;
  cfg.sampling_seed = seed;
  return cfg;
}

TEST(RandomSamplingTest, SampleRateMatchesPm) {
  Network net(slow_regime(true));
  net.run(20 * kMillisecond);
  const auto& c = net.stats().counters;
  const double observed = static_cast<double>(c.frames_sampled) /
                          static_cast<double>(c.frames_enqueued);
  EXPECT_NEAR(observed, 0.2, 0.02);
}

TEST(RandomSamplingTest, ReproducibleForSameSeed) {
  Network a(slow_regime(true, 42));
  Network b(slow_regime(true, 42));
  a.run(10 * kMillisecond);
  b.run(10 * kMillisecond);
  EXPECT_EQ(a.stats().counters.frames_sampled,
            b.stats().counters.frames_sampled);
  EXPECT_DOUBLE_EQ(a.queue_bits(), b.queue_bits());
}

TEST(RandomSamplingTest, DifferentSeedsDiverge) {
  Network a(slow_regime(true, 1));
  Network b(slow_regime(true, 2));
  a.run(10 * kMillisecond);
  b.run(10 * kMillisecond);
  // Same law, different sampling noise: aggregate rates drift apart.
  EXPECT_NE(a.aggregate_rate(), b.aggregate_rate());
}

TEST(RandomSamplingTest, ControlStillConvergesWithSamplingNoise) {
  // The fluid model's conclusions survive Bernoulli sampling jitter: the
  // queue still settles near q0 with zero drops.
  Network net(slow_regime(true));
  net.run(40 * kMillisecond);
  EXPECT_EQ(net.stats().counters.frames_dropped, 0u);
  double tail = 0.0;
  int n = 0;
  for (const auto& tp : net.stats().trace()) {
    if (tp.t < 30 * kMillisecond) continue;
    tail += tp.queue_bits;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(tail / n, 2.5e6, 0.5e6);
}

TEST(RandomSamplingTest, DeterministicModeUnaffectedBySeed) {
  Network a(slow_regime(false, 1));
  Network b(slow_regime(false, 999));
  a.run(10 * kMillisecond);
  b.run(10 * kMillisecond);
  EXPECT_DOUBLE_EQ(a.queue_bits(), b.queue_bits());
  EXPECT_EQ(a.stats().counters.frames_sampled,
            b.stats().counters.frames_sampled);
}

}  // namespace
}  // namespace bcn::sim
