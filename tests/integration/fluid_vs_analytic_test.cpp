// Property suite: the closed-form round stitching (AnalyticTracer) and
// the event-localized hybrid integration must agree on the *switched*
// linearized system across randomized parameters -- round durations,
// crossing points and transient extrema.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_tracer.h"
#include "core/simulate.h"

namespace bcn::core {
namespace {

BcnParams random_case1(Rng& rng) {
  BcnParams p = BcnParams::standard_draft();
  p.num_sources = std::floor(rng.uniform(2.0, 150.0));
  p.gi = rng.uniform(0.2, 20.0);
  p.gd = rng.uniform(1.0 / 1024.0, 1.0 / 8.0);
  p.w = rng.uniform(1.0, 4.0);
  p.pm = rng.uniform(0.005, 0.05);
  p.buffer = 100e6;  // wide open: we compare dynamics, not verdicts
  p.qsc = 90e6;
  return p;
}

struct SweepSeed {
  std::uint64_t seed;
};

class TracerVsNumeric : public ::testing::TestWithParam<SweepSeed> {};

TEST_P(TracerVsNumeric, SwitchTimesAndExtremaAgree) {
  Rng rng(GetParam().seed);
  int checked = 0;
  for (int trial = 0; trial < 15 && checked < 8; ++trial) {
    const BcnParams p = random_case1(rng);
    if (classify_case(p).paper_case != PaperCase::Case1) continue;
    ++checked;

    AnalyticTraceOptions topts;
    topts.max_rounds = 6;
    const auto trace = AnalyticTracer(p).trace(topts);
    ASSERT_GE(trace.rounds.size(), 4u);

    // Numeric horizon covering those rounds.
    double horizon = 0.0;
    for (const auto& r : trace.rounds) {
      horizon += r.duration.value_or(0.0);
    }
    FluidRunOptions opts;
    opts.duration = horizon * 1.01;
    opts.tol = {1e-10, 1e-10};
    const auto run =
        simulate_fluid(FluidModel(p, ModelLevel::Linearized), opts);
    ASSERT_GE(run.switches.size(), 3u) << p.describe();

    // Switch times match cumulative round durations.
    double t_acc = 0.0;
    for (std::size_t i = 0; i + 1 < trace.rounds.size() &&
                            i < run.switches.size();
         ++i) {
      ASSERT_TRUE(trace.rounds[i].duration);
      t_acc += *trace.rounds[i].duration;
      EXPECT_NEAR(run.switches[i].t, t_acc, 1e-4 * t_acc)
          << "round " << i << " " << p.describe();
    }
    // Extrema match.
    EXPECT_NEAR(run.max_x, trace.max_x, 1e-3 * std::abs(trace.max_x))
        << p.describe();
    EXPECT_NEAR(run.post_switch_min_x, trace.min_x,
                1e-3 * std::abs(trace.min_x))
        << p.describe();
  }
  EXPECT_GE(checked, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracerVsNumeric,
                         ::testing::Values(SweepSeed{11}, SweepSeed{22},
                                           SweepSeed{33}));

TEST(TracerVsNumericNonlinear, LinearizationErrorSmallAtSmallAmplitude) {
  // Shrink the initial offset: the nonlinear and linearized trajectories
  // must converge onto each other (the linearization is exact at the
  // origin), validating the Taylor step from eq. (8) to eq. (9).
  const BcnParams p = BcnParams::standard_draft();
  for (const double scale : {1.0, 0.1, 0.01}) {
    FluidRunOptions opts;
    opts.duration = 5e-4;
    opts.z0 = Vec2{-scale * p.q0, 0.0};
    const auto lin =
        simulate_fluid(FluidModel(p, ModelLevel::Linearized), opts);
    const auto non =
        simulate_fluid(FluidModel(p, ModelLevel::Nonlinear), opts);
    const double rel_gap =
        std::abs(lin.max_x - non.max_x) / std::max(lin.max_x, 1.0);
    if (scale == 1.0) {
      EXPECT_GT(rel_gap, 0.3);  // large amplitude: models differ strongly
    }
    if (scale == 0.01) {
      EXPECT_LT(rel_gap, 0.05);  // small amplitude: models agree
    }
  }
}

}  // namespace
}  // namespace bcn::core
