// Randomized robustness sweeps: across broad random parameter sets the
// whole analysis stack must stay finite (no NaN/inf), self-consistent,
// and never crash -- integrators, tracer, classifier, verdicts, Poincare.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_tracer.h"
#include "core/poincare.h"
#include "core/simulate.h"
#include "core/stability.h"

namespace bcn::core {
namespace {

bool finite(double v) { return std::isfinite(v); }

BcnParams wild_params(Rng& rng) {
  BcnParams p;
  p.num_sources = std::floor(rng.uniform(1.0, 1000.0));
  p.capacity = rng.uniform(1e6, 1e11);
  p.q0 = rng.uniform(1e2, 1e7);
  p.buffer = p.q0 * rng.uniform(1.5, 100.0);
  p.qsc = p.q0 + 0.9 * (p.buffer - p.q0);
  p.w = rng.uniform(0.1, 100.0);
  p.pm = rng.uniform(1e-3, 1.0);
  p.gi = rng.uniform(1e-3, 1e4);
  p.gd = rng.uniform(1e-5, 1e4);
  p.ru = rng.uniform(1e3, 1e8);
  return p;
}

struct FuzzSeed {
  std::uint64_t seed;
  int trials;
};

class FuzzSweep : public ::testing::TestWithParam<FuzzSeed> {};

TEST_P(FuzzSweep, AnalysisStackStaysFinite) {
  Rng rng(GetParam().seed);
  for (int i = 0; i < GetParam().trials; ++i) {
    const BcnParams p = wild_params(rng);
    if (!p.is_valid()) continue;

    const auto cls = classify_case(p);
    (void)cls;

    const auto trace = AnalyticTracer(p).trace();
    EXPECT_TRUE(finite(trace.max_x)) << p.describe();
    EXPECT_TRUE(finite(trace.min_x)) << p.describe();
    // Extrema ordering invariant.
    EXPECT_GE(trace.max_x, trace.min_x) << p.describe();
    // Rounds chain in time.
    for (const auto& r : trace.rounds) {
      if (r.duration) {
        EXPECT_GT(*r.duration, 0.0) << p.describe();
      }
      EXPECT_TRUE(finite(r.z_start.x) && finite(r.z_start.y))
          << p.describe();
    }

    const auto report = analyze_stability(p);
    EXPECT_TRUE(finite(report.theorem1_required_buffer)) << p.describe();
    EXPECT_GT(report.theorem1_required_buffer, p.q0) << p.describe();
    // The baseline always declares physical parameters stable (Prop. 1).
    EXPECT_TRUE(report.baseline.declared_stable) << p.describe();
  }
}

TEST_P(FuzzSweep, NumericIntegrationStaysFinite) {
  Rng rng(GetParam().seed ^ 0xf00d);
  int ran = 0;
  for (int i = 0; i < GetParam().trials && ran < 10; ++i) {
    const BcnParams p = wild_params(rng);
    if (!p.is_valid()) continue;
    ++ran;
    for (const auto level :
         {ModelLevel::Linearized, ModelLevel::Nonlinear, ModelLevel::Clipped}) {
      const auto verdict = numeric_strong_stability(p, {.level = level});
      EXPECT_TRUE(finite(verdict.max_x)) << p.describe();
      EXPECT_TRUE(finite(verdict.min_x)) << p.describe();
      // max_x spans all t > 0 and starts at x(0+) ~ -q0; min_x is the
      // post-first-crossing dip (0 when no crossing happened), so the only
      // universal ordering is against the start wall.
      EXPECT_GE(verdict.max_x, -p.q0 * (1.0 + 1e-9)) << p.describe();
      EXPECT_GE(verdict.min_x, -p.buffer * 100.0) << p.describe();
    }
  }
  EXPECT_GE(ran, 5);
}

TEST_P(FuzzSweep, PoincareMapNeverExpandsToInfinity) {
  Rng rng(GetParam().seed ^ 0xbeef);
  int probed = 0;
  for (int i = 0; i < GetParam().trials && probed < 6; ++i) {
    const BcnParams p = wild_params(rng);
    if (!p.is_valid()) continue;
    if (classify_case(p).paper_case != PaperCase::Case1) continue;
    ++probed;
    PoincareOptions opts;
    opts.max_time =
        200.0 * (1.0 / std::sqrt(p.a()) + 1.0 / std::sqrt(p.b() * p.capacity));
    const PoincareMap map(FluidModel(p, ModelLevel::Nonlinear), opts);
    const double s = 0.5 * p.capacity;
    const auto r = map.map(s);
    if (r) {
      EXPECT_TRUE(finite(*r)) << p.describe();
      EXPECT_LT(*r, s) << "expansion found -- a limit cycle candidate! "
                       << p.describe();
    }
  }
  EXPECT_GE(probed, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(FuzzSeed{1001, 30},
                                           FuzzSeed{2002, 30},
                                           FuzzSeed{3003, 30}));

}  // namespace
}  // namespace bcn::core
