// Property suite for Theorem 1 across randomized parameter sets: the
// criterion must be *sound* (no false "stable" verdicts) on the linearized
// model it was derived for, and empirically also on the nonlinear model,
// whose overshoot we always observed below the linearized one.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_tracer.h"
#include "core/stability.h"

namespace bcn::core {
namespace {

BcnParams random_params(Rng& rng) {
  BcnParams p;
  p.num_sources = std::floor(rng.uniform(2.0, 200.0));
  p.capacity = rng.uniform(1e9, 40e9);
  p.q0 = rng.uniform(0.2e6, 5e6);
  p.buffer = p.q0 + rng.uniform(0.5e6, 40e6);
  p.qsc = p.q0 + 0.9 * (p.buffer - p.q0);
  p.w = rng.uniform(0.5, 8.0);
  p.pm = rng.uniform(0.002, 0.2);
  p.gi = rng.uniform(0.05, 50.0);
  p.gd = rng.uniform(1.0 / 2048.0, 0.5);
  p.ru = rng.uniform(1e6, 64e6);
  return p;
}

struct SweepParam {
  std::uint64_t seed;
  int trials;
};

class Theorem1Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Theorem1Sweep, SoundOnLinearizedModel) {
  Rng rng(GetParam().seed);
  int satisfied = 0;
  for (int i = 0; i < GetParam().trials; ++i) {
    const BcnParams p = random_params(rng);
    if (!p.is_valid() || !p.satisfies_theorem1()) continue;
    ++satisfied;
    const auto verdict =
        numeric_strong_stability(p, {.level = ModelLevel::Linearized});
    EXPECT_TRUE(verdict.strongly_stable) << p.describe();
  }
  EXPECT_GE(satisfied, 3) << "sweep produced too few Theorem-1 cases";
}

TEST_P(Theorem1Sweep, EmpiricallySoundOnNonlinearModel) {
  Rng rng(GetParam().seed ^ 0xabcdef);
  int satisfied = 0;
  for (int i = 0; i < GetParam().trials; ++i) {
    const BcnParams p = random_params(rng);
    if (!p.is_valid() || !p.satisfies_theorem1()) continue;
    ++satisfied;
    const auto verdict =
        numeric_strong_stability(p, {.level = ModelLevel::Nonlinear});
    EXPECT_TRUE(verdict.strongly_stable) << p.describe();
  }
  EXPECT_GE(satisfied, 3);
}

TEST_P(Theorem1Sweep, AnalyticExtremaRespectTheBound) {
  // For every random parameter set (any case), the closed-form transient
  // extrema must respect max(x) < sqrt(a/(bC)) q0 and min(x) > -q0 --
  // the inequalities Theorem 1's proof establishes.
  Rng rng(GetParam().seed ^ 0x5eed);
  for (int i = 0; i < GetParam().trials; ++i) {
    const BcnParams p = random_params(rng);
    if (!p.is_valid()) continue;
    const auto trace = AnalyticTracer(p).trace();
    const double bound = std::sqrt(p.a() / (p.b() * p.capacity)) * p.q0;
    EXPECT_LT(trace.max_x, bound * (1.0 + 1e-9)) << p.describe();
    EXPECT_GT(trace.min_x, -p.q0 * (1.0 + 1e-9)) << p.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSweeps, Theorem1Sweep,
                         ::testing::Values(SweepParam{101, 40},
                                           SweepParam{202, 40},
                                           SweepParam{303, 40}));

TEST(Theorem1Necessity, CriterionIsNotNecessary) {
  // Theorem 1 is sufficient, not necessary: exhibit a parameter set that
  // violates the criterion yet is numerically strongly stable (the
  // nonlinear overshoot undershoots the linearized bound).
  BcnParams p = BcnParams::standard_draft();
  p.buffer = 8e6;  // below the 13.8 Mbit requirement, above the ~4.4 Mbit
  p.qsc = 7.5e6;   // nonlinear overshoot measured in SimulateTest
  ASSERT_FALSE(p.satisfies_theorem1());
  const auto verdict =
      numeric_strong_stability(p, {.level = ModelLevel::Nonlinear});
  EXPECT_TRUE(verdict.strongly_stable);
}

}  // namespace
}  // namespace bcn::core
