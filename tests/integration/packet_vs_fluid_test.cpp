// E11: the packet-level simulator and the fluid ODE must agree on the
// qualitative shape of the transient -- damped oscillation onto q0 with
// comparable peak and settling value -- in a calibrated regime where
// per-source feedback is frequent relative to the control dynamics.
#include <gtest/gtest.h>

#include "analysis/crossval.h"
#include "core/simulate.h"
#include "sim/network.h"

namespace bcn {
namespace {

core::BcnParams slow_regime_params() {
  core::BcnParams p;
  p.num_sources = 5;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  return p;
}

class PacketVsFluid : public ::testing::Test {
 protected:
  static constexpr double kDuration = 0.04;  // seconds

  ode::Trajectory packet_trace() {
    sim::NetworkConfig cfg;
    cfg.params = slow_regime_params();
    cfg.initial_rate = cfg.params.capacity / cfg.params.num_sources;
    cfg.record_interval = 20 * sim::kMicrosecond;
    sim::Network net(cfg);
    net.run(sim::from_seconds(kDuration));
    drops_ = net.stats().counters.frames_dropped;
    throughput_ = net.stats().throughput(sim::from_seconds(kDuration));
    return net.stats().to_phase_trajectory(cfg.params.q0,
                                           cfg.params.capacity);
  }

  ode::Trajectory fluid_trace(core::ModelLevel level) {
    const core::FluidModel model(slow_regime_params(), level);
    core::FluidRunOptions opts;
    opts.duration = kDuration;
    opts.record_interval = 2e-5;
    return core::simulate_fluid(model, opts).trajectory;
  }

  std::uint64_t drops_ = 0;
  double throughput_ = 0.0;
};

TEST_F(PacketVsFluid, ShapeAgreementOnNonlinearModel) {
  const auto packet = packet_trace();
  const auto fluid = fluid_trace(core::ModelLevel::Nonlinear);
  const double prominence = 0.05 * slow_regime_params().q0;
  const auto cmp = analysis::compare_shapes(fluid, packet, prominence);

  // Same character: both are damped oscillations with a period.
  EXPECT_TRUE(cmp.same_character);
  // Peak overshoot within 2x of the fluid prediction (frame quantization
  // and per-source message timing make this a shape test, not an exact
  // one; see EXPERIMENTS.md E11).
  EXPECT_LT(cmp.peak_rel_error, 1.0);
  // Both settle at the reference: final x within 20% of q0 around 0.
  EXPECT_LT(std::abs(cmp.b.final_value), 0.2 * slow_regime_params().q0);
  EXPECT_LT(std::abs(cmp.a.final_value), 0.2 * slow_regime_params().q0);
}

TEST_F(PacketVsFluid, OscillationPeriodSameOrder) {
  const auto packet = packet_trace();
  const auto fluid = fluid_trace(core::ModelLevel::Nonlinear);
  const double prominence = 0.05 * slow_regime_params().q0;
  const auto fa = analysis::extract_features(fluid, prominence);
  const auto fb = analysis::extract_features(packet, prominence);
  ASSERT_TRUE(fa.period);
  ASSERT_TRUE(fb.period);
  EXPECT_GT(*fb.period, 0.3 * *fa.period);
  EXPECT_LT(*fb.period, 3.0 * *fa.period);
}

TEST_F(PacketVsFluid, NoDropsAndFullUtilizationInStableRegime) {
  packet_trace();
  EXPECT_EQ(drops_, 0u);
  EXPECT_GT(throughput_, 0.93 * slow_regime_params().capacity);
}

TEST_F(PacketVsFluid, FluidLevelsAgreeAtSmallAmplitude) {
  // In this gentle regime the linearized and nonlinear fluid solutions
  // stay close (y stays well above -C), validating the linearization the
  // paper's analysis rests on.
  const auto lin = fluid_trace(core::ModelLevel::Linearized);
  const auto non = fluid_trace(core::ModelLevel::Nonlinear);
  const double prominence = 0.05 * slow_regime_params().q0;
  const auto cmp = analysis::compare_shapes(lin, non, prominence);
  EXPECT_TRUE(cmp.same_character);
  EXPECT_LT(cmp.peak_rel_error, 0.35);
  EXPECT_LT(cmp.period_rel_error, 0.2);
}

}  // namespace
}  // namespace bcn
