// Ablation (DESIGN.md section 5): event-detected switching vs naive
// fixed-step integration across the sigma = 0 line.  The naive scheme
// smears each switching instant over a step, which corrupts transient
// extrema and the measured contraction; the hybrid driver localizes
// crossings to high precision.
#include <cmath>

#include <gtest/gtest.h>

#include "core/analytic_tracer.h"
#include "core/simulate.h"
#include "ode/integrate.h"

namespace bcn::core {
namespace {

// Naive reference: one discontinuous RHS fed to a fixed-step RK4.
ode::Trajectory naive_fixed_step(const BcnParams& p, double duration,
                                 double step) {
  const FluidModel model(p, ModelLevel::Linearized);
  const auto inc = model.increase_rhs();
  const auto dec = model.decrease_rhs();
  const double k = p.k();
  const ode::Rhs switched = [inc, dec, k](double t, Vec2 z) {
    return -(z.x + k * z.y) > 0.0 ? inc(t, z) : dec(t, z);
  };
  ode::FixedStepOptions opts;
  opts.stepper = ode::Stepper::Rk4;
  opts.step = step;
  return ode::integrate_fixed(switched, 0.0, {-p.q0, 0.0}, duration, opts);
}

TEST(EventDetectionAblation, HybridMatchesClosedFormTighterThanNaive) {
  const BcnParams p = BcnParams::standard_draft();
  const double exact_max = AnalyticTracer(p).trace().max_x;

  FluidRunOptions opts;
  opts.duration = 5e-4;
  const FluidRun hybrid =
      simulate_fluid(FluidModel(p, ModelLevel::Linearized), opts);
  const double hybrid_err = std::abs(hybrid.max_x - exact_max) / exact_max;

  // Naive fixed step sized to take about as many steps as the hybrid run.
  const double step = 5e-4 / static_cast<double>(hybrid.trajectory.size());
  const auto naive = naive_fixed_step(p, 5e-4, step);
  const double naive_err =
      std::abs(naive.max_component(0) - exact_max) / exact_max;

  EXPECT_LT(hybrid_err, 1e-3);
  EXPECT_LT(hybrid_err, naive_err);
}

TEST(EventDetectionAblation, NaiveConvergesOnlyAsStepShrinks) {
  const BcnParams p = BcnParams::standard_draft();
  const double exact_max = AnalyticTracer(p).trace().max_x;
  const double coarse =
      std::abs(naive_fixed_step(p, 5e-4, 2e-6).max_component(0) - exact_max);
  const double fine =
      std::abs(naive_fixed_step(p, 5e-4, 2e-7).max_component(0) - exact_max);
  EXPECT_LT(fine, coarse);
}

TEST(EventDetectionAblation, SwitchLocalizationResidualIsTiny) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel model(p, ModelLevel::Linearized);
  FluidRunOptions opts;
  opts.duration = 5e-4;
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_GE(run.switches.size(), 3u);
  for (const auto& sw : run.switches) {
    const double denom =
        std::abs(sw.z.x) + p.k() * std::abs(sw.z.y) + p.q0 * 1e-6;
    // The recorded point includes the deliberate escape nudge off the
    // surface, so the residual is small but non-zero.
    EXPECT_LT(std::abs(model.sigma(sw.z)) / denom, 1e-4);
  }
}

}  // namespace
}  // namespace bcn::core
