#include "common/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(CsvWriterTest, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.to_string(), "a,b\n");
  EXPECT_EQ(w.row_count(), 0u);
  EXPECT_EQ(w.column_count(), 2u);
}

TEST(CsvWriterTest, NumericRows) {
  CsvWriter w({"t", "q"});
  w.add_row({1.5, 2.25});
  w.add_row({-0.5, 1e10});
  EXPECT_EQ(w.to_string(), "t,q\n1.5,2.25\n-0.5,1e+10\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter w({"name", "value"});
  w.add_row({std::string("has,comma"), std::string("has\"quote")});
  EXPECT_EQ(w.to_string(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(CsvWriterTest, FormatRoundTrips) {
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(CsvWriter::format(v)), v);
  EXPECT_EQ(std::stod(CsvWriter::format(1e300)), 1e300);
}

TEST(CsvParseTest, RoundTripsWriterOutput) {
  CsvWriter w({"t", "name", "v"});
  w.add_row({std::string("1.5"), std::string("plain"), std::string("2")});
  w.add_row({std::string("2.5"), std::string("has,comma"), std::string("3")});
  w.add_row({std::string("3.5"), std::string("has\"quote"), std::string("4")});
  const CsvTable table = parse_csv(w.to_string());
  ASSERT_EQ(table.header, (std::vector<std::string>{"t", "name", "v"}));
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[1][1], "has,comma");
  EXPECT_EQ(table.rows[2][1], "has\"quote");
  EXPECT_DOUBLE_EQ(table.value(0, table.column("t")), 1.5);
  EXPECT_DOUBLE_EQ(table.value(2, table.column("v")), 4.0);
}

TEST(CsvParseTest, QuotedNewlineInsideCell) {
  const CsvTable t = parse_csv("a,b\n\"line1\nline2\",7\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "line1\nline2");
  EXPECT_DOUBLE_EQ(t.value(0, 1), 7.0);
}

TEST(CsvParseTest, MissingTrailingNewlineAndCrLf) {
  const CsvTable t = parse_csv("x,y\r\n1,2\r\n3,4");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.value(1, 1), 4.0);
}

TEST(CsvParseTest, ColumnLookupAndFallbacks) {
  const CsvTable t = parse_csv("a,b\n1,not_a_number\n");
  EXPECT_EQ(t.column("a"), 0);
  EXPECT_EQ(t.column("missing"), -1);
  EXPECT_DOUBLE_EQ(t.value(0, t.column("b"), -9.0), -9.0);
  EXPECT_DOUBLE_EQ(t.value(5, 0, -9.0), -9.0);   // row out of range
  EXPECT_DOUBLE_EQ(t.value(0, -1, -9.0), -9.0);  // bad column
}

TEST(CsvParseTest, EmptyInput) {
  const CsvTable t = parse_csv("");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(CsvParseTest, ReadCsvFileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "bcn_csv_rt";
  std::filesystem::remove_all(dir);
  const auto path = dir / "t.csv";
  CsvWriter w({"x"});
  w.add_row({42.5});
  ASSERT_TRUE(w.write_file(path));
  const auto table = read_csv_file(path);
  ASSERT_TRUE(table);
  EXPECT_DOUBLE_EQ(table->value(0, 0), 42.5);
  EXPECT_FALSE(read_csv_file(dir / "nope.csv"));
  std::filesystem::remove_all(dir);
}

TEST(CsvWriterTest, WritesFileCreatingDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "bcn_csv_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "nested" / "out.csv";
  CsvWriter w({"x"});
  w.add_row({42.0});
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "x\n42\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bcn
