#include "common/args.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace bcn {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return ArgParser(static_cast<int>(full.size()), full.data());
}

TEST(ArgParserTest, SpaceSeparatedValues) {
  const auto args = parse({"--N", "50", "--C", "1e10"});
  EXPECT_DOUBLE_EQ(args.get_double("N", 0.0), 50.0);
  EXPECT_DOUBLE_EQ(args.get_double("C", 0.0), 1e10);
}

TEST(ArgParserTest, EqualsForm) {
  const auto args = parse({"--q0=2.5e6", "--gi=4"});
  EXPECT_DOUBLE_EQ(args.get_double("q0", 0.0), 2.5e6);
  EXPECT_EQ(args.get_int("gi", 0), 4);
}

TEST(ArgParserTest, BooleanFlags) {
  const auto args = parse({"--plot", "--N", "10", "--verbose"});
  EXPECT_TRUE(args.get_bool("plot"));
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("N", 0.0), 10.0);
}

TEST(ArgParserTest, ExplicitBooleanValues) {
  const auto args = parse({"--a=true", "--b=0", "--c", "yes", "--d=off"});
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_TRUE(args.get_bool("c"));
  EXPECT_FALSE(args.get_bool("d"));
}

TEST(ArgParserTest, FallbacksOnMissingOrMalformed) {
  const auto args = parse({"--x", "notanumber"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(args.get_double("y", 3.0), 3.0);
  EXPECT_EQ(args.get_int("x", -1), -1);
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = parse({"input.csv", "--flag", "v", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(ArgParserTest, HasAndNames) {
  const auto args = parse({"--one", "1", "--two=2"});
  EXPECT_TRUE(args.has("one"));
  EXPECT_TRUE(args.has("two"));
  EXPECT_FALSE(args.has("three"));
  EXPECT_EQ(args.flag_names().size(), 2u);
}

TEST(ArgParserTest, NegativeNumberAsValue) {
  const auto args = parse({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

class ThreadCountTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("BCN_THREADS"); }
  void TearDown() override { unsetenv("BCN_THREADS"); }
};

TEST_F(ThreadCountTest, FlagWins) {
  const auto args = parse({"--threads", "6"});
  EXPECT_EQ(thread_count(args, 1), 6);
  setenv("BCN_THREADS", "3", 1);
  EXPECT_EQ(thread_count(args, 1), 6);  // flag beats env
}

TEST_F(ThreadCountTest, EnvFallback) {
  const auto args = parse({});
  setenv("BCN_THREADS", "5", 1);
  EXPECT_EQ(thread_count(args, 1), 5);
}

TEST_F(ThreadCountTest, DefaultWhenUnset) {
  const auto args = parse({});
  EXPECT_EQ(thread_count(args, 1), 1);
  EXPECT_EQ(thread_count(args, 4), 4);
}

TEST_F(ThreadCountTest, ZeroMeansAllHardwareThreadsIsAccepted) {
  const auto args = parse({"--threads", "0"});
  EXPECT_EQ(thread_count(args, 1), 0);
}

TEST_F(ThreadCountTest, InvalidValuesFallBack) {
  EXPECT_EQ(thread_count(parse({"--threads", "abc"}), 2), 2);
  EXPECT_EQ(thread_count(parse({"--threads", "-3"}), 2), 2);
  EXPECT_EQ(thread_count(parse({"--threads", "4x"}), 2), 2);
  setenv("BCN_THREADS", "garbage", 1);
  EXPECT_EQ(thread_count(parse({}), 2), 2);
}

TEST(UnknownFlagsTest, FindsTyposOnly) {
  const auto args = parse({"--gi", "4", "--grd", "0.1", "--plot"});
  const auto unknown = unknown_flags(args, {"gi", "gd", "plot", "help"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "grd");
}

TEST(UnknownFlagsTest, AllKnownIsEmpty) {
  const auto args = parse({"--gi", "4", "--plot"});
  EXPECT_TRUE(unknown_flags(args, {"gi", "plot"}).empty());
  EXPECT_TRUE(reject_unknown_flags(args, {"gi", "plot"}));
}

TEST(UnknownFlagsTest, RejectReturnsFalseOnUnknown) {
  const auto args = parse({"--bogus"});
  EXPECT_FALSE(reject_unknown_flags(args, {"help"}));
}

}  // namespace
}  // namespace bcn
