#include "common/format.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace bcn {
namespace {

TEST(StrfTest, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(strf("%.3g", 3.14159), "3.14");
  EXPECT_EQ(strf("%s", "hello"), "hello");
}

TEST(StrfTest, EmptyAndLongStrings) {
  EXPECT_EQ(strf("%s", ""), "");
  const std::string big(5000, 'x');
  EXPECT_EQ(strf("%s", big.c_str()), big);
}

TEST(LogTest, LevelGatesOutput) {
  // Just exercise the call paths; output goes to stderr.
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  BCN_LOG_DEBUG("hidden %d", 1);
  BCN_LOG_ERROR("visible %d", 2);
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

}  // namespace
}  // namespace bcn
