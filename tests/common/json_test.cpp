#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(JsonWriterTest, InsertionOrderAndTypes) {
  JsonWriter w;
  w.add("name", "sweep");
  w.add("cells", 81);
  w.add("speedup", 3.5);
  w.add("ok", true);
  const std::string s = w.to_string();
  // Keys appear in insertion order.
  EXPECT_LT(s.find("\"name\""), s.find("\"cells\""));
  EXPECT_LT(s.find("\"cells\""), s.find("\"speedup\""));
  EXPECT_NE(s.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(s.find("\"cells\": 81"), std::string::npos);
  EXPECT_NE(s.find("\"speedup\": 3.5"), std::string::npos);
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '\n');
}

TEST(JsonWriterTest, QuoteEscapesSpecials) {
  EXPECT_EQ(JsonWriter::quote("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonWriter::quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonWriter::quote("tab\there"), "\"tab\\there\"");
  // Control characters use \u00XX.
  EXPECT_EQ(JsonWriter::quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriterTest, DoubleFormatRoundTripsAndHandlesNonFinite) {
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonWriter::format(v)), v);
  EXPECT_EQ(JsonWriter::format(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::format(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::format(2.0), "2");
}

TEST(JsonWriterTest, NumberArray) {
  JsonWriter w;
  w.add("walls", std::vector<double>{0.5, 1.25});
  EXPECT_NE(w.to_string().find("[0.5, 1.25]"), std::string::npos);
}

TEST(JsonWriterTest, WriteFileCreatesParentDirs) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "bcn_json_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  JsonWriter w;
  w.add("k", 1);
  const auto path = dir / "out.json";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), w.to_string());
  std::filesystem::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace bcn
