#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(JsonWriterTest, InsertionOrderAndTypes) {
  JsonWriter w;
  w.add("name", "sweep");
  w.add("cells", 81);
  w.add("speedup", 3.5);
  w.add("ok", true);
  const std::string s = w.to_string();
  // Keys appear in insertion order.
  EXPECT_LT(s.find("\"name\""), s.find("\"cells\""));
  EXPECT_LT(s.find("\"cells\""), s.find("\"speedup\""));
  EXPECT_NE(s.find("\"name\": \"sweep\""), std::string::npos);
  EXPECT_NE(s.find("\"cells\": 81"), std::string::npos);
  EXPECT_NE(s.find("\"speedup\": 3.5"), std::string::npos);
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '\n');
}

TEST(JsonWriterTest, QuoteEscapesSpecials) {
  EXPECT_EQ(JsonWriter::quote("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonWriter::quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonWriter::quote("tab\there"), "\"tab\\there\"");
  // Control characters use \u00XX.
  EXPECT_EQ(JsonWriter::quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriterTest, DoubleFormatRoundTripsAndHandlesNonFinite) {
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonWriter::format(v)), v);
  EXPECT_EQ(JsonWriter::format(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::format(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::format(2.0), "2");
}

TEST(JsonWriterTest, NumberArray) {
  JsonWriter w;
  w.add("walls", std::vector<double>{0.5, 1.25});
  EXPECT_NE(w.to_string().find("[0.5, 1.25]"), std::string::npos);
}

TEST(JsonWriterTest, WriteFileCreatesParentDirs) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "bcn_json_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  JsonWriter w;
  w.add("k", 1);
  const auto path = dir / "out.json";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), w.to_string());
  std::filesystem::remove_all(dir.parent_path());
}

TEST(FlatJsonTest, RoundTripsWhatJsonWriterEmits) {
  JsonWriter w;
  w.add("experiment", "fig7");
  w.add("status", 0);
  w.add("wall_seconds", 0.125);
  w.add("ok", true);
  w.add("off", false);
  w.add("walls", std::vector<double>{0.5, 1.25, 2.0});
  const auto parsed = FlatJson::parse(w.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string_value("experiment"), "fig7");
  EXPECT_EQ(parsed->number("status"), 0.0);
  EXPECT_EQ(parsed->number("wall_seconds"), 0.125);
  EXPECT_EQ(parsed->number("ok"), 1.0);   // booleans land as 0/1
  EXPECT_EQ(parsed->number("off"), 0.0);
  ASSERT_EQ(parsed->arrays().count("walls"), 1u);
  EXPECT_EQ(parsed->arrays().at("walls"),
            (std::vector<double>{0.5, 1.25, 2.0}));
  EXPECT_FALSE(parsed->number("missing").has_value());
  EXPECT_FALSE(parsed->string_value("status").has_value());
}

TEST(FlatJsonTest, ParsesEscapesScientificNotationAndNull) {
  const auto parsed = FlatJson::parse(
      "{\"msg\": \"a\\\"b\\\\c\\nd\", \"tiny\": 1.5e-9, \"neg\": -2E3, "
      "\"gone\": null}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string_value("msg"), "a\"b\\c\nd");
  EXPECT_EQ(parsed->number("tiny"), 1.5e-9);
  EXPECT_EQ(parsed->number("neg"), -2000.0);
  // null parses as NaN: present but not a usable number.
  ASSERT_EQ(parsed->numbers().count("gone"), 1u);
  EXPECT_TRUE(std::isnan(parsed->numbers().at("gone")));
}

TEST(FlatJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(FlatJson::parse("").has_value());
  EXPECT_FALSE(FlatJson::parse("{").has_value());
  EXPECT_FALSE(FlatJson::parse("{\"k\": }").has_value());
  EXPECT_FALSE(FlatJson::parse("{\"k\": 1,}").has_value());
  EXPECT_FALSE(FlatJson::parse("{\"k\": 1} trailing").has_value());
  EXPECT_FALSE(FlatJson::parse("[1, 2]").has_value());
  // Nested objects are out of scope by design.
  EXPECT_FALSE(FlatJson::parse("{\"k\": {\"nested\": 1}}").has_value());
}

TEST(FlatJsonTest, LoadReadsFilesAndFailsCleanly) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bcn_flatjson_test";
  std::filesystem::remove_all(dir);
  JsonWriter w;
  w.add("v", 3.5);
  const auto path = dir / "artifact.json";
  ASSERT_TRUE(w.write_file(path));
  const auto loaded = FlatJson::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->number("v"), 3.5);
  EXPECT_FALSE(FlatJson::load(dir / "missing.json").has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bcn
