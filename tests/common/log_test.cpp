#include "common/log.h"

#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(LogTest, FormatLogLinePinsTheShape) {
  const std::string line = format_log_line(LogLevel::Warn, "queue overflow");
  // [LEVEL +seconds.micros tNN] message
  const std::regex shape(
      R"(\[WARN \+\d+\.\d{6} t\d{2,}\] queue overflow)");
  EXPECT_TRUE(std::regex_match(line, shape)) << line;
}

TEST(LogTest, EveryLevelHasAName) {
  EXPECT_NE(format_log_line(LogLevel::Debug, "m").find("[DEBUG "),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::Info, "m").find("[INFO "),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::Warn, "m").find("[WARN "),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::Error, "m").find("[ERROR "),
            std::string::npos);
}

TEST(LogTest, UptimeIsMonotonicAcrossCalls) {
  auto seconds_of = [](const std::string& line) {
    const auto plus = line.find('+');
    return std::stod(line.substr(plus + 1));
  };
  const double t0 = seconds_of(format_log_line(LogLevel::Info, "a"));
  const double t1 = seconds_of(format_log_line(LogLevel::Info, "b"));
  EXPECT_GE(t1, t0);
  EXPECT_GE(t0, 0.0);
}

TEST(LogTest, ThreadOrdinalIsStablePerThreadAndDistinctAcrossThreads) {
  const unsigned mine = thread_ordinal();
  EXPECT_EQ(thread_ordinal(), mine);  // stable on re-query

  std::vector<unsigned> seen(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&seen, i] { seen[i] = thread_ordinal(); });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_NE(seen[i], mine);
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      EXPECT_NE(seen[i], seen[j]);
    }
  }
}

}  // namespace
}  // namespace bcn
