#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsWellMixed) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.next_u64());
  EXPECT_EQ(seen.size(), 32u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng r(11);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) counts[r.uniform_int(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0);
  }
}

TEST(RngTest, BernoulliEdgesAndMean) {
  Rng r(13);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
  EXPECT_TRUE(r.bernoulli(2.0));
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng r(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

}  // namespace
}  // namespace bcn
