#include "common/table.h"

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name    v"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  // Underline spans the full width.
  EXPECT_NE(out.find("---------"), std::string::npos);
}

TEST(TablePrinterTest, TitleOnOwnLine) {
  TablePrinter t({"a"});
  t.add_row({"1"});
  const std::string out = t.to_string("My Title");
  EXPECT_EQ(out.rfind("My Title\n", 0), 0u);
}

TEST(TablePrinterTest, NumericFormatting) {
  EXPECT_EQ(TablePrinter::format(1.0, 6), "1");
  EXPECT_EQ(TablePrinter::format(1.25e7, 3), "1.25e+07");
  TablePrinter t({"x", "y"});
  t.add_row_numeric({3.14159, 2.0}, 3);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace bcn
