#include "common/math.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace bcn {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 0.5};
  EXPECT_EQ((a + b), (Vec2{-2.0, 2.5}));
  EXPECT_EQ((a - b), (Vec2{4.0, 1.5}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
}

TEST(Vec2Test, Norm) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{0.0, 0.0}).norm(), 0.0);
}

TEST(SignTest, AllBranches) {
  EXPECT_EQ(sign(5.0), 1);
  EXPECT_EQ(sign(-0.1), -1);
  EXPECT_EQ(sign(0.0), 0);
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(RelativeErrorTest, Basic) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  // Floor prevents division blow-up near zero.
  EXPECT_LE(relative_error(1e-40, 0.0, 1e-30), 1e-9);
}

TEST(SolveMonicQuadraticTest, DistinctRealRoots) {
  // x^2 + 3x + 2 = (x+1)(x+2)
  const auto roots = solve_monic_quadratic(3.0, 2.0);
  EXPECT_NEAR(roots[0].real(), -2.0, 1e-12);
  EXPECT_NEAR(roots[1].real(), -1.0, 1e-12);
  EXPECT_EQ(roots[0].imag(), 0.0);
  EXPECT_EQ(roots[1].imag(), 0.0);
}

TEST(SolveMonicQuadraticTest, ComplexRoots) {
  // x^2 + 2x + 5: roots -1 +- 2i
  const auto roots = solve_monic_quadratic(2.0, 5.0);
  EXPECT_NEAR(roots[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(roots[0].imag(), -2.0, 1e-12);
  EXPECT_NEAR(roots[1].imag(), 2.0, 1e-12);
}

TEST(SolveMonicQuadraticTest, RepeatedRoot) {
  // x^2 + 2x + 1 = (x+1)^2
  const auto roots = solve_monic_quadratic(2.0, 1.0);
  EXPECT_NEAR(roots[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(roots[1].real(), -1.0, 1e-12);
}

TEST(SolveMonicQuadraticTest, NumericallyStableForSmallProduct) {
  // x^2 + 1e8 x + 1: naive formula loses the small root to cancellation.
  const auto roots = solve_monic_quadratic(1e8, 1.0);
  EXPECT_NEAR(roots[0].real(), -1e8, 1.0);
  EXPECT_NEAR(roots[1].real(), -1e-8, 1e-16);
}

TEST(SolveMonicQuadraticTest, RootsSatisfyVieta) {
  for (double m : {-5.0, -0.5, 0.1, 2.0, 100.0}) {
    for (double n : {0.25, 1.0, 9.0, 1e6}) {
      const auto r = solve_monic_quadratic(m, n);
      const auto sum = r[0] + r[1];
      const auto prod = r[0] * r[1];
      EXPECT_NEAR(sum.real(), -m, 1e-9 * std::abs(m) + 1e-12);
      EXPECT_NEAR(prod.real(), n, 1e-9 * n + 1e-12);
    }
  }
}

TEST(BisectTest, FindsRoot) {
  const auto root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(*root, std::numbers::sqrt2, 1e-10);
}

TEST(BisectTest, ExactEndpointRoot) {
  const auto root = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, 0.0);
}

TEST(BisectTest, RejectsInvalidBracket) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0));
  EXPECT_FALSE(bisect([](double x) { return x; }, 1.0, -1.0));
}

TEST(BisectTest, ToleranceControlsPrecision) {
  const auto coarse =
      bisect([](double x) { return x - 0.3; }, 0.0, 1.0, 1e-2);
  ASSERT_TRUE(coarse.has_value());
  EXPECT_NEAR(*coarse, 0.3, 1e-2);
}

TEST(LerpTest, Basic) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(WrapAngleTest, Wraps) {
  constexpr double two_pi = 2.0 * std::numbers::pi;
  EXPECT_NEAR(wrap_angle(3 * two_pi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_angle(-0.5), two_pi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace bcn
