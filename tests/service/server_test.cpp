// End-to-end tests of the stability-verdict TCP server: protocol
// round-trips, FIFO ordering, cache-counter accuracy, and the
// determinism contract (cached == cold, byte for byte) under
// concurrent clients.  The whole suite runs under TSan in
// scripts/check.sh gate 1.
#include "service/server.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/client.h"

namespace bcn::service {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void start(ServiceConfig config = {}) {
    config.threads = 2;
    server_ = std::make_unique<ServiceServer>(config);
    ASSERT_TRUE(server_->start()) << server_->error();
    ASSERT_GT(server_->port(), 0);
  }

  LineClient connect() {
    LineClient client;
    EXPECT_TRUE(client.connect_to("127.0.0.1", server_->port()))
        << client.error();
    return client;
  }

  std::uint64_t counter(const std::string& name) {
    const auto* c = server_->metrics().find_counter(name);
    return c ? c->value() : 0;
  }

  std::unique_ptr<ServiceServer> server_;
};

TEST_F(ServerTest, PingVerdictAndErrorRoundTrip) {
  start();
  LineClient client = connect();
  EXPECT_EQ(client.request("{\"op\":\"ping\",\"id\":1}").value(),
            "{\"id\":1,\"op\":\"ping\",\"ok\":true}");

  const auto verdict = client.request("{\"op\":\"verdict\",\"id\":2}");
  ASSERT_TRUE(verdict);
  const auto body = FlatJson::parse(*verdict);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->number("id").value(), 2.0);
  EXPECT_EQ(body->string_value("op").value(), "verdict");
  EXPECT_TRUE(body->string_value("text").has_value());

  const auto error = client.request("{\"op\":\"verdict\",\"a\":\"x\"}");
  ASSERT_TRUE(error);
  EXPECT_NE(error->find("\"error\":\"bad_request\""), std::string::npos);
  server_->stop();
}

TEST_F(ServerTest, PipelinedRequestsAnswerInFifoOrder) {
  start();
  LineClient client = connect();
  // Queue a slow analytic request, a cacheable repeat, and two cheap
  // ops before reading anything; responses must come back 1,2,3,4.
  ASSERT_TRUE(client.send_line("{\"op\":\"verdict\",\"id\":1}"));
  ASSERT_TRUE(client.send_line("{\"op\":\"verdict\",\"id\":2}"));
  ASSERT_TRUE(client.send_line("{\"op\":\"ping\",\"id\":3}"));
  ASSERT_TRUE(client.send_line("{\"op\":\"verdict\",\"id\":4,\"a\":4e8}"));
  for (int expected = 1; expected <= 4; ++expected) {
    const auto response = client.read_line();
    ASSERT_TRUE(response);
    const auto body = FlatJson::parse(*response);
    ASSERT_TRUE(body) << *response;
    EXPECT_EQ(body->number("id").value(), expected);
  }
  server_->stop();
}

TEST_F(ServerTest, CacheCountersTrackLookupsExactly) {
  ServiceConfig config;
  config.cache_entries = 2;
  config.cache_shards = 1;
  start(config);
  LineClient client = connect();
  // Distinct verdicts: a=4e8, a=5e8, a=6e8 with capacity 2 -> the third
  // insert evicts a=4e8; repeating it is a miss again.
  const char* first = "{\"op\":\"verdict\",\"a\":4e8}";
  ASSERT_TRUE(client.request(first));
  ASSERT_TRUE(client.request(first));  // hit
  ASSERT_TRUE(client.request("{\"op\":\"verdict\",\"a\":5e8}"));
  ASSERT_TRUE(client.request("{\"op\":\"verdict\",\"a\":6e8}"));  // evicts
  ASSERT_TRUE(client.request(first));  // miss: was evicted
  EXPECT_EQ(counter("service.cache.hits"), 1u);
  EXPECT_EQ(counter("service.cache.misses"), 4u);
  EXPECT_EQ(counter("service.cache.evictions"), 2u);
  EXPECT_EQ(counter("service.requests"), 5u);

  // The stats op reports the same registry.
  const auto stats = client.request("{\"op\":\"stats\"}");
  ASSERT_TRUE(stats);
  const auto body = FlatJson::parse(*stats);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->number("service.cache.hits").value(), 1.0);
  EXPECT_EQ(body->number("service.cache.misses").value(), 4.0);
  server_->stop();
}

TEST_F(ServerTest, CachedEqualsColdByteForByteUnderConcurrentClients) {
  start();
  // Phase 1 (cold): one client warms each distinct request once.
  std::vector<std::string> pool;
  for (int i = 0; i < 6; ++i) {
    JsonWriter json;
    json.add("op", "verdict");
    json.add("a", 8e8 + 2e8 * i);
    pool.push_back(json.to_line());
  }
  std::map<std::string, std::string> cold;
  {
    LineClient client = connect();
    for (const auto& line : pool) {
      const auto response = client.request(line);
      ASSERT_TRUE(response);
      cold[line] = *response;
    }
  }
  EXPECT_EQ(counter("service.cache.misses"), pool.size());

  // Phase 2 (cached): concurrent clients replay the pool; every
  // response must equal its cold counterpart byte for byte.
  constexpr int kClients = 4;
  constexpr int kPasses = 5;
  std::mutex mismatch_mutex;
  std::vector<std::string> mismatches;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client;
      if (!client.connect_to("127.0.0.1", server_->port())) return;
      for (int pass = 0; pass < kPasses; ++pass) {
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const auto& line = pool[(i + static_cast<std::size_t>(c)) %
                                  pool.size()];
          const auto response = client.request(line);
          if (!response || *response != cold[line]) {
            std::lock_guard<std::mutex> lock(mismatch_mutex);
            mismatches.push_back(line);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " responses diverged from cold";
  // Every phase-2 lookup was a hit: the pool was fully warmed first.
  EXPECT_EQ(counter("service.cache.hits"),
            static_cast<std::uint64_t>(kClients * kPasses) * pool.size());
  EXPECT_EQ(counter("service.cache.misses"), pool.size());
  server_->stop();
}

TEST_F(ServerTest, ShutdownOpUnblocksWaitAndStopIsIdempotent) {
  start();
  LineClient client = connect();
  EXPECT_FALSE(server_->shutdown_requested());
  const auto response = client.request("{\"op\":\"shutdown\",\"id\":1}");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  EXPECT_TRUE(server_->wait_for_shutdown(5.0));
  server_->stop();
  server_->stop();  // idempotent
  LineClient refused;
  EXPECT_FALSE(refused.connect_to("127.0.0.1", server_->port()));
}

TEST_F(ServerTest, DestructorStopsARunningServer) {
  start();
  LineClient client = connect();
  ASSERT_TRUE(client.request("{\"op\":\"verdict\"}"));
  server_.reset();  // ~ServiceServer must tear down cleanly mid-connection
}

}  // namespace
}  // namespace bcn::service
