#include "service/verdict_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace bcn::service {
namespace {

// --- quantization -----------------------------------------------------------

TEST(Quantize, IdempotentAndStable) {
  const double values[] = {0.0,      1.0,   1.6e9, 0.0078125,
                           2e-8,     2.5e6, -3.75, 1.0 / 3.0};
  for (const double v : values) {
    EXPECT_EQ(quantize(quantize(v)), quantize(v)) << v;
  }
  // Values already representable in 12 significant digits pass through.
  EXPECT_EQ(quantize(1.6e9), 1.6e9);
  EXPECT_EQ(quantize(0.0078125), 0.0078125);
  EXPECT_EQ(quantize(0.0), 0.0);
}

TEST(Quantize, CollisionsAtTwelveSignificantDigits) {
  // Differ only past the 12th significant digit -> same grid point.
  EXPECT_EQ(quantize(1.0000000000001), quantize(1.0000000000002));
  EXPECT_EQ(quantize_key(1.0000000000001), quantize_key(1.0000000000002));
  EXPECT_EQ(quantize(1.6000000000001e9), quantize(1.6e9));
  // Differ within 12 significant digits -> distinct grid points.
  EXPECT_NE(quantize(1.00000000001), quantize(1.00000000002));
  EXPECT_NE(quantize_key(1.00000000001), quantize_key(1.00000000002));
}

TEST(Quantize, BoundaryRounding) {
  // 13th digit rounds into the 12th: ...15 and ...149 straddle nothing,
  // both land on ...1 vs ...2 per round-to-nearest of %.12g.
  EXPECT_EQ(quantize_key(1.00000000001), "1.00000000001");
  EXPECT_EQ(quantize(1.000000000014), quantize(1.00000000001));
  EXPECT_NE(quantize(1.000000000016), quantize(1.00000000001));
}

TEST(Quantize, KeyIsCanonicalText) {
  EXPECT_EQ(quantize_key(2.5e6), "2500000");
  EXPECT_EQ(quantize_key(2e-8), "2e-08");
  // Key text equality iff quantized-value equality.
  EXPECT_EQ(quantize_key(1.6e9), quantize_key(1600000000.0));
}

// --- LRU behavior -----------------------------------------------------------

VerdictCache::Config single_shard(std::size_t entries) {
  VerdictCache::Config config;
  config.entries = entries;
  config.shards = 1;
  return config;
}

TEST(VerdictCache, HitAndMissCountersAreExact) {
  VerdictCache cache(single_shard(8), nullptr);
  EXPECT_FALSE(cache.get("a"));  // miss
  cache.put("a", "va");
  EXPECT_EQ(cache.get("a").value(), "va");  // hit
  EXPECT_EQ(cache.get("a").value(), "va");  // hit
  EXPECT_FALSE(cache.get("b"));             // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedInOrder) {
  VerdictCache cache(single_shard(3), nullptr);
  cache.put("a", "va");
  cache.put("b", "vb");
  cache.put("c", "vc");
  // Touch "a": LRU order is now b < c < a.
  EXPECT_TRUE(cache.get("a"));
  cache.put("d", "vd");  // evicts b
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("a"));
  EXPECT_TRUE(cache.get("c"));
  EXPECT_TRUE(cache.get("d"));
  EXPECT_EQ(cache.evictions(), 1u);
  // The probing gets above touched a, then c, then d, so "a" is now the
  // least recently used again.
  cache.put("e", "ve");
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_FALSE(cache.get("a"));
  EXPECT_TRUE(cache.get("c"));
  EXPECT_TRUE(cache.get("d"));
  EXPECT_TRUE(cache.get("e"));
}

TEST(VerdictCache, PutRefreshesExistingEntry) {
  VerdictCache cache(single_shard(2), nullptr);
  cache.put("a", "v1");
  cache.put("b", "vb");
  cache.put("a", "v2");  // refresh, not insert: "b" becomes LRU
  cache.put("c", "vc");  // evicts b
  EXPECT_EQ(cache.get("a").value(), "v2");
  EXPECT_FALSE(cache.get("b"));
  EXPECT_TRUE(cache.get("c"));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(VerdictCache, ShardCapacityRoundsUp) {
  VerdictCache::Config config;
  config.entries = 10;
  config.shards = 4;
  VerdictCache cache(config, nullptr);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.per_shard_capacity(), 3u);  // ceil(10/4)
}

TEST(VerdictCache, MetricsRegistryExportsCounters) {
  obs::MetricsRegistry metrics;
  VerdictCache cache(single_shard(2), &metrics);
  cache.get("missing");
  cache.put("a", "va");
  cache.get("a");
  cache.put("b", "vb");
  cache.put("c", "vc");  // evicts
  EXPECT_EQ(metrics.find_counter("service.cache.hits")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("service.cache.misses")->value(), 1u);
  EXPECT_EQ(metrics.find_counter("service.cache.evictions")->value(), 1u);
  EXPECT_EQ(metrics.find_gauge("service.cache.entries")->value(), 2.0);
}

TEST(VerdictCache, ConcurrentMixedAccessIsRaceFreeAndConsistent) {
  // TSan gate 1 runs this suite under -fsanitize=thread: hammer one
  // small sharded cache from several threads and check the counters
  // balance afterwards (every get is exactly one hit or one miss).
  VerdictCache::Config config;
  config.entries = 16;
  config.shards = 4;
  VerdictCache cache(config, nullptr);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 24);
        if (!cache.get(key)) cache.put(key, "value-" + key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace bcn::service
