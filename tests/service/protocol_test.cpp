#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/report.h"
#include "common/json.h"
#include "core/bcn_params.h"
#include "service/verdict_cache.h"

namespace bcn::service {
namespace {

Request must_parse(const std::string& line) {
  std::string error;
  const auto request = parse_request(line, &error);
  EXPECT_TRUE(request) << line << " -> " << error;
  return request.value_or(Request{});
}

std::string parse_error(const std::string& line) {
  std::string error;
  const auto request = parse_request(line, &error);
  EXPECT_FALSE(request) << line;
  return error;
}

// --- parsing ----------------------------------------------------------------

TEST(ParseRequest, AcceptsMinimalAndFullRequests) {
  const Request ping = must_parse("{\"op\":\"ping\"}");
  EXPECT_EQ(ping.op, "ping");
  EXPECT_FALSE(ping.id.has_value());

  const Request verdict = must_parse(
      "{\"op\":\"verdict\",\"id\":42,\"mechanism\":\"qcn\",\"a\":1.6e9,"
      "\"b\":0.0078125,\"k\":2e-8,\"q0\":2.5e6,\"B\":5e6}");
  EXPECT_EQ(verdict.op, "verdict");
  EXPECT_EQ(verdict.id.value(), 42);
}

TEST(ParseRequest, RejectsMalformedInput) {
  EXPECT_NE(parse_error("not json").find("\"parse\""), std::string::npos);
  EXPECT_NE(parse_error("{\"a\":1}").find("missing op"), std::string::npos);
  EXPECT_NE(parse_error("{\"op\":\"nope\"}").find("unknown op"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"op\":\"verdict\",\"bogus\":1}")
                .find("unknown field"),
            std::string::npos);
}

TEST(ParseRequest, RejectsStringTypedNumericFields) {
  // A numeric field sent as a string would default in the cache key but
  // error in execution -- rejecting it up front closes the
  // cache-poisoning hazard.
  const std::string error =
      parse_error("{\"op\":\"verdict\",\"a\":\"1.6e9\"}");
  EXPECT_NE(error.find("must be a number"), std::string::npos);
  EXPECT_NE(parse_error("{\"op\":\"verdict\",\"mechanism\":7}")
                .find("must be a string"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"op\":\"verdict\",\"a\":[1,2]}")
                .find("array fields"),
            std::string::npos);
}

TEST(ParseRequest, RejectsBadIdsAndEchoesGoodOnes) {
  EXPECT_NE(parse_error("{\"op\":\"ping\",\"id\":1.5}")
                .find("id must be an integer"),
            std::string::npos);
  EXPECT_NE(parse_error("{\"op\":\"ping\",\"id\":\"seven\"}")
                .find("id must be an integer"),
            std::string::npos);
  // The id survives into field-validation errors so clients can match
  // the error to the request.
  const std::string error =
      parse_error("{\"op\":\"verdict\",\"id\":9,\"bogus\":1}");
  EXPECT_EQ(error.rfind("{\"id\":9,", 0), 0u) << error;
}

// --- id splicing ------------------------------------------------------------

TEST(AttachId, SplicesWithoutReserialization) {
  EXPECT_EQ(attach_id(7, "{\"op\":\"ping\",\"ok\":true}"),
            "{\"id\":7,\"op\":\"ping\",\"ok\":true}");
  EXPECT_EQ(attach_id(7, "{}"), "{\"id\":7}");
  EXPECT_EQ(attach_id(std::nullopt, "{\"op\":\"ping\"}"), "{\"op\":\"ping\"}");
}

// --- cache keys -------------------------------------------------------------

TEST(CacheKey, QuantizationMergesEquivalentRequests) {
  const Request explicit_default = must_parse(
      "{\"op\":\"verdict\",\"a\":1.6e9,\"b\":0.0078125,\"k\":2e-8,"
      "\"q0\":2.5e6,\"B\":5e6,\"mechanism\":\"bcn\"}");
  const Request bare = must_parse("{\"op\":\"verdict\"}");
  EXPECT_EQ(cache_key(explicit_default), cache_key(bare));

  // Sub-quantum perturbation -> same key; 12th-digit change -> new key.
  const Request wiggled =
      must_parse("{\"op\":\"verdict\",\"a\":1.6000000000001e9}");
  EXPECT_EQ(cache_key(wiggled), cache_key(bare));
  const Request moved = must_parse("{\"op\":\"verdict\",\"a\":1.60000000001e9}");
  EXPECT_NE(cache_key(moved), cache_key(bare));

  // The id never reaches the key.
  const Request with_id = must_parse("{\"op\":\"verdict\",\"id\":123}");
  EXPECT_EQ(cache_key(with_id), cache_key(bare));
}

TEST(CacheKey, OpsAndMechanismsAreDisjoint) {
  const Request verdict = must_parse("{\"op\":\"verdict\"}");
  const Request crossval = must_parse("{\"op\":\"crossval\"}");
  const Request svg = must_parse("{\"op\":\"svg_plot\"}");
  const Request qcn = must_parse("{\"op\":\"verdict\",\"mechanism\":\"qcn\"}");
  EXPECT_NE(cache_key(verdict), cache_key(crossval));
  EXPECT_NE(cache_key(verdict), cache_key(svg));
  EXPECT_NE(cache_key(verdict), cache_key(qcn));
  // Control-plane ops are never cached.
  EXPECT_TRUE(cache_key(must_parse("{\"op\":\"ping\"}")).empty());
  EXPECT_TRUE(cache_key(must_parse("{\"op\":\"stats\"}")).empty());
  EXPECT_TRUE(cache_key(must_parse("{\"op\":\"shutdown\"}")).empty());
}

// --- canonical plant --------------------------------------------------------

TEST(CanonicalPlant, RoundTripsTheGainSpace) {
  const core::BcnParams d = core::BcnParams::standard_draft();
  const core::BcnParams p = canonical_plant(d.a(), d.b(), d.k(), d.q0,
                                            d.buffer);
  EXPECT_DOUBLE_EQ(p.a(), d.a());
  EXPECT_DOUBLE_EQ(p.b(), d.b());
  EXPECT_DOUBLE_EQ(p.k(), d.k());
  EXPECT_DOUBLE_EQ(p.gi, d.gi);
  EXPECT_DOUBLE_EQ(p.gd, d.gd);
  EXPECT_DOUBLE_EQ(p.pm, d.pm);
  EXPECT_EQ(p.qsc, std::min(0.9 * d.buffer, d.buffer - 1.0));
  EXPECT_TRUE(p.is_valid());
}

// --- execution --------------------------------------------------------------

TEST(Execute, VerdictBodyEmbedsTheExactCliReport) {
  const Request request = must_parse("{\"op\":\"verdict\"}");
  const auto result = execute(request, ServiceOptions{}, nullptr);
  ASSERT_FALSE(result.error);
  EXPECT_TRUE(result.cacheable);

  const auto body = FlatJson::parse(result.body);
  ASSERT_TRUE(body);
  analysis::VerdictRequest vr;
  vr.params = core::BcnParams::standard_draft();
  const auto report = analysis::render_verdict_report(vr);
  EXPECT_EQ(body->string_value("text").value(), report.text);
  EXPECT_EQ(body->number("has_fluid").value(), 1.0);
  EXPECT_EQ(body->number("a").value(), 1.6e9);
  EXPECT_EQ(body->number("gi").value(), 4.0);
}

TEST(Execute, DeterministicAcrossRepeatedExecution) {
  const Request request = must_parse(
      "{\"op\":\"verdict\",\"a\":4e8,\"B\":1.2e7,\"q0\":2.5e6}");
  const auto first = execute(request, ServiceOptions{}, nullptr);
  const auto second = execute(request, ServiceOptions{}, nullptr);
  EXPECT_EQ(first.body, second.body);
}

TEST(Execute, ErrorsAreTypedAndUncacheable) {
  const auto unknown = execute(
      must_parse("{\"op\":\"verdict\",\"mechanism\":\"tcp-reno\"}"),
      ServiceOptions{}, nullptr);
  EXPECT_TRUE(unknown.error);
  EXPECT_FALSE(unknown.cacheable);
  EXPECT_NE(unknown.body.find("unknown_mechanism"), std::string::npos);

  // q0 above the buffer is a physically meaningless plant.
  const auto invalid = execute(
      must_parse("{\"op\":\"verdict\",\"q0\":6e6,\"B\":5e6}"),
      ServiceOptions{}, nullptr);
  EXPECT_TRUE(invalid.error);
  EXPECT_NE(invalid.body.find("invalid_params"), std::string::npos);

  // stability_map is closed-form BCN machinery only.
  const auto map = execute(
      must_parse("{\"op\":\"stability_map\",\"mechanism\":\"rcp\"}"),
      ServiceOptions{}, nullptr);
  EXPECT_TRUE(map.error);
  EXPECT_NE(map.body.find("unsupported_mechanism"), std::string::npos);

  // svg_plot needs a fluid facet; fera is packet-only.
  const auto svg = execute(
      must_parse("{\"op\":\"svg_plot\",\"mechanism\":\"fera\"}"),
      ServiceOptions{}, nullptr);
  EXPECT_TRUE(svg.error);
  EXPECT_NE(svg.body.find("unsupported_mechanism"), std::string::npos);
}

TEST(Execute, PacketOnlyMechanismVerdictHasNoFluidFields) {
  const auto result = execute(
      must_parse("{\"op\":\"verdict\",\"mechanism\":\"fera\"}"),
      ServiceOptions{}, nullptr);
  ASSERT_FALSE(result.error);
  const auto body = FlatJson::parse(result.body);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->number("has_fluid").value(), 0.0);
  EXPECT_FALSE(body->number("stable_nonlinear").has_value());
}

TEST(Execute, StabilityMapGridShapeAndAggregates) {
  const auto result = execute(
      must_parse("{\"op\":\"stability_map\",\"grid\":4,\"a_min\":4e8,"
                 "\"a_max\":4e9,\"b_min\":0.002,\"b_max\":0.06}"),
      ServiceOptions{}, nullptr);
  ASSERT_FALSE(result.error) << result.body;
  const auto body = FlatJson::parse(result.body);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->arrays().at("a_values").size(), 4u);
  EXPECT_EQ(body->arrays().at("b_values").size(), 4u);
  EXPECT_EQ(body->arrays().at("stable").size(), 16u);
  EXPECT_EQ(body->arrays().at("theorem1").size(), 16u);
  double stable = 0.0;
  for (const double cell : body->arrays().at("stable")) stable += cell;
  EXPECT_EQ(stable, body->number("numeric_stable").value());
}

TEST(Execute, SvgPlotReturnsRenderedDocument) {
  const auto result = execute(
      must_parse("{\"op\":\"svg_plot\",\"duration\":5e-4,\"width\":320,"
                 "\"height\":200}"),
      ServiceOptions{}, nullptr);
  ASSERT_FALSE(result.error) << result.body;
  const auto body = FlatJson::parse(result.body);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->number("width").value(), 320.0);
  const auto svg = body->string_value("svg");
  ASSERT_TRUE(svg);
  EXPECT_NE(svg->find("<svg"), std::string::npos);
  EXPECT_NE(svg->find("queue transient"), std::string::npos);
}

TEST(Execute, ControlPlaneOps) {
  const auto ping = execute(must_parse("{\"op\":\"ping\"}"), ServiceOptions{},
                            nullptr);
  EXPECT_EQ(ping.body, "{\"op\":\"ping\",\"ok\":true}");
  EXPECT_FALSE(ping.cacheable);

  obs::MetricsRegistry metrics;
  metrics.counter("service.requests").inc(3);
  const auto stats = execute(must_parse("{\"op\":\"stats\"}"),
                             ServiceOptions{}, &metrics);
  const auto body = FlatJson::parse(stats.body);
  ASSERT_TRUE(body);
  EXPECT_EQ(body->number("service.requests").value(), 3.0);
}

}  // namespace
}  // namespace bcn::service
