#include "analysis/sweep.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::analysis {
namespace {

TEST(SweepTest, LinspaceEndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[1] - v[0], 0.5);
}

TEST(SweepTest, LinspaceSingle) {
  const auto v = linspace(2.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(SweepTest, LogspaceGeometric) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
}

TEST(SweepTest, LogspaceDescendingWorks) {
  const auto v = logspace(100.0, 1.0, 3);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_GT(v[0], v[2]);
}

}  // namespace
}  // namespace bcn::analysis
