#include "analysis/sweep.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bcn::analysis {
namespace {

TEST(SweepTest, LinspaceEndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[1] - v[0], 0.5);
}

TEST(SweepTest, LinspaceSingle) {
  const auto v = linspace(2.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
}

TEST(SweepTest, LogspaceGeometric) {
  const auto v = logspace(1.0, 100.0, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
}

TEST(SweepTest, LogspaceDescendingWorks) {
  const auto v = logspace(100.0, 1.0, 3);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_GT(v[0], v[2]);
}

TEST(SweepTest, NonPositiveCountIsEmpty) {
  EXPECT_TRUE(linspace(1.0, 2.0, 0).empty());
  EXPECT_TRUE(linspace(1.0, 2.0, -3).empty());
  EXPECT_TRUE(logspace(1.0, 2.0, 0).empty());
  EXPECT_TRUE(logspace(1.0, 2.0, -1).empty());
}

TEST(SweepTest, LogspaceSingle) {
  const auto v = logspace(0.5, 64.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 0.5);
}

TEST(SweepTest, DegenerateRangeRepeatsEndpoint) {
  const auto lin = linspace(3.25, 3.25, 4);
  ASSERT_EQ(lin.size(), 4u);
  for (const double x : lin) EXPECT_EQ(x, 3.25);
  const auto log = logspace(7.5, 7.5, 3);
  ASSERT_EQ(log.size(), 3u);
  for (const double x : log) EXPECT_EQ(x, 7.5);
}

TEST(SweepTest, EndpointsAreExact) {
  // No accumulated floating-point drift: the last element is exactly hi.
  const auto lin = linspace(0.1, 0.7, 7);
  EXPECT_EQ(lin.front(), 0.1);
  EXPECT_EQ(lin.back(), 0.7);
  const auto log = logspace(1.0 / 512.0, 0.25, 9);
  EXPECT_EQ(log.front(), 1.0 / 512.0);
  EXPECT_EQ(log.back(), 0.25);
}

TEST(SweepTest, SweepValuesPreservesOrderAcrossThreadCounts) {
  const auto xs = linspace(0.0, 10.0, 101);
  auto f = [](double x) { return std::cos(x) * x; };
  const auto serial = sweep_values(xs, f, 1);
  ASSERT_EQ(serial.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(serial[i], f(xs[i]));
  }
  const auto parallel = sweep_values(xs, f, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "i=" << i;
  }
}

TEST(LogspaceTest, RejectsNonPositiveBoundsInEveryBuildMode) {
  // Regression: non-positive bounds used to be an assert, so release
  // builds silently produced NaN grids.  The check is now a real error
  // path with identical semantics in debug and release.
  EXPECT_THROW(logspace(0.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, -2.0, 5), std::invalid_argument);
  // NaN bounds fail the positivity test rather than sneaking through.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(logspace(nan, 10.0, 5), std::invalid_argument);
  // Positive bounds still work, including descending ones.
  EXPECT_NO_THROW(logspace(10.0, 1.0, 3));
}

}  // namespace
}  // namespace bcn::analysis
