#include "analysis/stability_map.h"

#include <gtest/gtest.h>

#include "analysis/sweep.h"

namespace bcn::analysis {
namespace {

TEST(StabilityMapTest, GridShapeAndCells) {
  const auto base = core::BcnParams::standard_draft();
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 1.0 / 32.0, 2);
  const auto map = compute_stability_map(base, gi, gd);
  EXPECT_EQ(map.cells.size(), 6u);
  EXPECT_EQ(map.gi_values.size(), 3u);
  EXPECT_EQ(map.gd_values.size(), 2u);
  // Row-major layout: gi outer, gd inner.
  EXPECT_DOUBLE_EQ(map.cells[0].gi, gi[0]);
  EXPECT_DOUBLE_EQ(map.cells[0].gd, gd[0]);
  EXPECT_DOUBLE_EQ(map.cells[1].gi, gi[0]);
  EXPECT_DOUBLE_EQ(map.cells[1].gd, gd[1]);
}

TEST(StabilityMapTest, AggregatesConsistent) {
  const auto base = core::BcnParams::standard_draft();
  const auto map = compute_stability_map(base, linspace(1.0, 8.0, 3),
                                         logspace(1.0 / 256.0, 0.1, 3));
  int t1 = 0, num = 0, prop = 0;
  for (const auto& c : map.cells) {
    if (c.report.theorem1_satisfied) ++t1;
    if (c.numeric.strongly_stable) ++num;
    if (c.report.proposition_satisfied) ++prop;
  }
  EXPECT_EQ(t1, map.theorem1_stable);
  EXPECT_EQ(num, map.numeric_stable);
  EXPECT_EQ(prop, map.proposition_stable);
}

TEST(StabilityMapTest, Theorem1SoundOnLinearizedNumeric) {
  // Theorem 1 must have zero false positives against the linearized
  // ground truth (it is a sufficient condition for that model).
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  const auto map =
      compute_stability_map(base, linspace(0.25, 6.0, 4),
                            logspace(1.0 / 256.0, 0.5, 4),
                            {.numeric_level = core::ModelLevel::Linearized});
  EXPECT_EQ(map.theorem1_false_positive, 0);
  // Theorem 1 is only sufficient: it must not out-count the ground truth.
  EXPECT_LE(map.theorem1_stable, map.numeric_stable);
}

TEST(StabilityMapTest, ParallelBitwiseIdenticalToSerial) {
  // The determinism contract of the exec layer: threads=4 must place the
  // exact same bits in every cell as the legacy serial path.
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  const auto gi = linspace(0.25, 8.0, 5);
  const auto gd = logspace(1.0 / 256.0, 0.5, 5);
  StabilityMapOptions serial_opts;
  serial_opts.numeric_level = core::ModelLevel::Linearized;
  serial_opts.threads = 1;
  StabilityMapOptions parallel_opts = serial_opts;
  parallel_opts.threads = 4;
  const auto serial = compute_stability_map(base, gi, gd, serial_opts);
  const auto parallel = compute_stability_map(base, gi, gd, parallel_opts);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const auto& s = serial.cells[i];
    const auto& p = parallel.cells[i];
    // EXPECT_EQ on doubles is exact (bitwise up to -0.0 == 0.0), not a
    // tolerance comparison.
    EXPECT_EQ(s.gi, p.gi) << "cell " << i;
    EXPECT_EQ(s.gd, p.gd) << "cell " << i;
    EXPECT_EQ(s.numeric.strongly_stable, p.numeric.strongly_stable);
    EXPECT_EQ(s.numeric.converged, p.numeric.converged);
    EXPECT_EQ(s.numeric.max_x, p.numeric.max_x) << "cell " << i;
    EXPECT_EQ(s.numeric.min_x, p.numeric.min_x) << "cell " << i;
    EXPECT_EQ(s.report.theorem1_satisfied, p.report.theorem1_satisfied);
    EXPECT_EQ(s.report.proposition_satisfied, p.report.proposition_satisfied);
    EXPECT_EQ(s.report.predicted_max_x, p.report.predicted_max_x);
    EXPECT_EQ(s.report.predicted_min_x, p.report.predicted_min_x);
  }
  EXPECT_EQ(serial.theorem1_stable, parallel.theorem1_stable);
  EXPECT_EQ(serial.numeric_stable, parallel.numeric_stable);
  EXPECT_EQ(serial.proposition_stable, parallel.proposition_stable);
  EXPECT_EQ(serial.theorem1_false_positive, parallel.theorem1_false_positive);
  EXPECT_EQ(serial.proposition_false_positive,
            parallel.proposition_false_positive);
}

TEST(StabilityMapTest, HardwareThreadsMatchesSerialToo) {
  // threads = 0 (all hardware threads) goes through the same contract.
  const auto base = core::BcnParams::standard_draft();
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 0.1, 3);
  StabilityMapOptions auto_opts;
  auto_opts.threads = 0;
  const auto serial = compute_stability_map(base, gi, gd);
  const auto parallel = compute_stability_map(base, gi, gd, auto_opts);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].numeric.max_x, parallel.cells[i].numeric.max_x);
    EXPECT_EQ(serial.cells[i].numeric.min_x, parallel.cells[i].numeric.min_x);
  }
}

TEST(StabilityMapTest, LargerBufferNeverHurts) {
  core::BcnParams small = core::BcnParams::standard_draft();
  core::BcnParams large = small;
  large.buffer = 40e6;
  large.qsc = 36e6;
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 0.1, 3);
  const auto ms = compute_stability_map(small, gi, gd,
                                        {.numeric_level = core::ModelLevel::Linearized});
  const auto ml = compute_stability_map(large, gi, gd,
                                        {.numeric_level = core::ModelLevel::Linearized});
  EXPECT_GE(ml.numeric_stable, ms.numeric_stable);
  EXPECT_GE(ml.theorem1_stable, ms.theorem1_stable);
}

}  // namespace
}  // namespace bcn::analysis
