#include "analysis/stability_map.h"

#include <gtest/gtest.h>

#include "analysis/sweep.h"

namespace bcn::analysis {
namespace {

TEST(StabilityMapTest, GridShapeAndCells) {
  const auto base = core::BcnParams::standard_draft();
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 1.0 / 32.0, 2);
  const auto map = compute_stability_map(base, gi, gd);
  EXPECT_EQ(map.cells.size(), 6u);
  EXPECT_EQ(map.gi_values.size(), 3u);
  EXPECT_EQ(map.gd_values.size(), 2u);
  // Row-major layout: gi outer, gd inner.
  EXPECT_DOUBLE_EQ(map.cells[0].gi, gi[0]);
  EXPECT_DOUBLE_EQ(map.cells[0].gd, gd[0]);
  EXPECT_DOUBLE_EQ(map.cells[1].gi, gi[0]);
  EXPECT_DOUBLE_EQ(map.cells[1].gd, gd[1]);
}

TEST(StabilityMapTest, AggregatesConsistent) {
  const auto base = core::BcnParams::standard_draft();
  const auto map = compute_stability_map(base, linspace(1.0, 8.0, 3),
                                         logspace(1.0 / 256.0, 0.1, 3));
  int t1 = 0, num = 0, prop = 0;
  for (const auto& c : map.cells) {
    if (c.report.theorem1_satisfied) ++t1;
    if (c.numeric.strongly_stable) ++num;
    if (c.report.proposition_satisfied) ++prop;
  }
  EXPECT_EQ(t1, map.theorem1_stable);
  EXPECT_EQ(num, map.numeric_stable);
  EXPECT_EQ(prop, map.proposition_stable);
}

TEST(StabilityMapTest, Theorem1SoundOnLinearizedNumeric) {
  // Theorem 1 must have zero false positives against the linearized
  // ground truth (it is a sufficient condition for that model).
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  const auto map =
      compute_stability_map(base, linspace(0.25, 6.0, 4),
                            logspace(1.0 / 256.0, 0.5, 4),
                            {.numeric_level = core::ModelLevel::Linearized});
  EXPECT_EQ(map.theorem1_false_positive, 0);
  // Theorem 1 is only sufficient: it must not out-count the ground truth.
  EXPECT_LE(map.theorem1_stable, map.numeric_stable);
}

TEST(StabilityMapTest, ParallelBitwiseIdenticalToSerial) {
  // The determinism contract of the exec layer: threads=4 must place the
  // exact same bits in every cell as the legacy serial path.
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  const auto gi = linspace(0.25, 8.0, 5);
  const auto gd = logspace(1.0 / 256.0, 0.5, 5);
  StabilityMapOptions serial_opts;
  serial_opts.numeric_level = core::ModelLevel::Linearized;
  serial_opts.threads = 1;
  StabilityMapOptions parallel_opts = serial_opts;
  parallel_opts.threads = 4;
  const auto serial = compute_stability_map(base, gi, gd, serial_opts);
  const auto parallel = compute_stability_map(base, gi, gd, parallel_opts);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const auto& s = serial.cells[i];
    const auto& p = parallel.cells[i];
    // EXPECT_EQ on doubles is exact (bitwise up to -0.0 == 0.0), not a
    // tolerance comparison.
    EXPECT_EQ(s.gi, p.gi) << "cell " << i;
    EXPECT_EQ(s.gd, p.gd) << "cell " << i;
    EXPECT_EQ(s.numeric.strongly_stable, p.numeric.strongly_stable);
    EXPECT_EQ(s.numeric.converged, p.numeric.converged);
    EXPECT_EQ(s.numeric.max_x, p.numeric.max_x) << "cell " << i;
    EXPECT_EQ(s.numeric.min_x, p.numeric.min_x) << "cell " << i;
    EXPECT_EQ(s.report.theorem1_satisfied, p.report.theorem1_satisfied);
    EXPECT_EQ(s.report.proposition_satisfied, p.report.proposition_satisfied);
    EXPECT_EQ(s.report.predicted_max_x, p.report.predicted_max_x);
    EXPECT_EQ(s.report.predicted_min_x, p.report.predicted_min_x);
  }
  EXPECT_EQ(serial.theorem1_stable, parallel.theorem1_stable);
  EXPECT_EQ(serial.numeric_stable, parallel.numeric_stable);
  EXPECT_EQ(serial.proposition_stable, parallel.proposition_stable);
  EXPECT_EQ(serial.theorem1_false_positive, parallel.theorem1_false_positive);
  EXPECT_EQ(serial.proposition_false_positive,
            parallel.proposition_false_positive);
}

TEST(StabilityMapTest, HardwareThreadsMatchesSerialToo) {
  // threads = 0 (all hardware threads) goes through the same contract.
  const auto base = core::BcnParams::standard_draft();
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 0.1, 3);
  StabilityMapOptions auto_opts;
  auto_opts.threads = 0;
  const auto serial = compute_stability_map(base, gi, gd);
  const auto parallel = compute_stability_map(base, gi, gd, auto_opts);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].numeric.max_x, parallel.cells[i].numeric.max_x);
    EXPECT_EQ(serial.cells[i].numeric.min_x, parallel.cells[i].numeric.min_x);
  }
}

TEST(StabilityMapTest, LargerBufferNeverHurts) {
  core::BcnParams small = core::BcnParams::standard_draft();
  core::BcnParams large = small;
  large.buffer = 40e6;
  large.qsc = 36e6;
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 0.1, 3);
  const auto ms = compute_stability_map(small, gi, gd,
                                        {.numeric_level = core::ModelLevel::Linearized});
  const auto ml = compute_stability_map(large, gi, gd,
                                        {.numeric_level = core::ModelLevel::Linearized});
  EXPECT_GE(ml.numeric_stable, ms.numeric_stable);
  EXPECT_GE(ml.theorem1_stable, ms.theorem1_stable);
}

TEST(StabilityMapTest, MapModeParsing) {
  MapMode mode = MapMode::Scalar;
  EXPECT_TRUE(parse_map_mode("batch", &mode));
  EXPECT_EQ(mode, MapMode::Batch);
  EXPECT_TRUE(parse_map_mode("adaptive", &mode));
  EXPECT_EQ(mode, MapMode::Adaptive);
  EXPECT_TRUE(parse_map_mode("scalar", &mode));
  EXPECT_EQ(mode, MapMode::Scalar);
  mode = MapMode::Batch;
  EXPECT_FALSE(parse_map_mode("turbo", &mode));
  EXPECT_EQ(mode, MapMode::Batch);  // untouched on failure
  EXPECT_EQ(to_string(MapMode::Adaptive), "adaptive");
}

TEST(StabilityMapTest, BatchModeMatchesScalarVerdicts) {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  const auto gi = logspace(0.25, 16.0, 9);
  const auto gd = logspace(1.0 / 512.0, 0.5, 9);
  StabilityMapOptions scalar_opts;
  scalar_opts.numeric_level = core::ModelLevel::Linearized;
  StabilityMapOptions batch_opts = scalar_opts;
  batch_opts.mode = MapMode::Batch;
  const auto scalar = compute_stability_map(base, gi, gd, scalar_opts);
  const auto batch = compute_stability_map(base, gi, gd, batch_opts);

  ASSERT_EQ(scalar.cells.size(), batch.cells.size());
  for (std::size_t i = 0; i < scalar.cells.size(); ++i) {
    EXPECT_EQ(scalar.cells[i].numeric.strongly_stable,
              batch.cells[i].numeric.strongly_stable)
        << "cell " << i;
    // The analytic report side is computed identically in every mode.
    EXPECT_EQ(scalar.cells[i].report.theorem1_satisfied,
              batch.cells[i].report.theorem1_satisfied);
  }
  EXPECT_EQ(scalar.numeric_stable, batch.numeric_stable);
  EXPECT_EQ(scalar.theorem1_false_positive, batch.theorem1_false_positive);
  // Guard against a vacuous grid (all cells one verdict).
  EXPECT_GT(batch.numeric_stable, 0);
  EXPECT_LT(batch.numeric_stable, static_cast<int>(batch.cells.size()));
  EXPECT_EQ(batch.integrated_cells, batch.cells.size());
  EXPECT_EQ(batch.refinement_waves, 1);
}

TEST(StabilityMapTest, AdaptiveModeMatchesBatchWithFewerIntegrations) {
  core::BcnParams base = core::BcnParams::standard_draft();
  base.buffer = 12e6;
  base.qsc = 11e6;
  // Large enough for a coarse grid plus real refinement waves.
  const auto gi = logspace(0.125, 32.0, 33);
  const auto gd = logspace(1.0 / 1024.0, 0.5, 33);
  StabilityMapOptions batch_opts;
  batch_opts.numeric_level = core::ModelLevel::Linearized;
  batch_opts.mode = MapMode::Batch;
  StabilityMapOptions adaptive_opts = batch_opts;
  adaptive_opts.mode = MapMode::Adaptive;
  const auto batch = compute_stability_map(base, gi, gd, batch_opts);
  const auto adaptive = compute_stability_map(base, gi, gd, adaptive_opts);

  ASSERT_EQ(batch.cells.size(), adaptive.cells.size());
  std::size_t integrated = 0;
  for (std::size_t i = 0; i < batch.cells.size(); ++i) {
    EXPECT_EQ(batch.cells[i].numeric.strongly_stable,
              adaptive.cells[i].numeric.strongly_stable)
        << "cell " << i;
    integrated += adaptive.cells[i].integrated ? 1 : 0;
  }
  EXPECT_EQ(batch.numeric_stable, adaptive.numeric_stable);
  // The refinement must have skipped a substantial share of the grid and
  // accounted for its waves honestly.
  EXPECT_EQ(adaptive.integrated_cells, integrated);
  EXPECT_LT(adaptive.integrated_cells, adaptive.cells.size() / 2);
  EXPECT_GE(adaptive.refinement_waves, 2);
  std::size_t wave_sum = 0;
  for (const std::size_t w : adaptive.wave_cells) wave_sum += w;
  EXPECT_EQ(wave_sum, adaptive.integrated_cells);
  // Batch mode integrates everything.
  EXPECT_EQ(batch.integrated_cells, batch.cells.size());
  for (const auto& c : batch.cells) EXPECT_TRUE(c.integrated);
}

TEST(StabilityMapTest, ClippedLevelFallsBackToScalar) {
  // The affine lane family cannot express buffer walls; Batch/Adaptive
  // must silently deliver the scalar Clipped map.
  const auto base = core::BcnParams::standard_draft();
  const auto gi = linspace(1.0, 8.0, 3);
  const auto gd = logspace(1.0 / 256.0, 0.1, 3);
  StabilityMapOptions scalar_opts;
  scalar_opts.numeric_level = core::ModelLevel::Clipped;
  StabilityMapOptions batch_opts = scalar_opts;
  batch_opts.mode = MapMode::Batch;
  const auto scalar = compute_stability_map(base, gi, gd, scalar_opts);
  const auto batch = compute_stability_map(base, gi, gd, batch_opts);
  ASSERT_EQ(scalar.cells.size(), batch.cells.size());
  for (std::size_t i = 0; i < scalar.cells.size(); ++i) {
    EXPECT_EQ(scalar.cells[i].numeric.max_x, batch.cells[i].numeric.max_x);
    EXPECT_EQ(scalar.cells[i].numeric.strongly_stable,
              batch.cells[i].numeric.strongly_stable);
  }
  EXPECT_EQ(batch.refinement_waves, 0);
}

}  // namespace
}  // namespace bcn::analysis
