#include "analysis/boundary.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcn::analysis {
namespace {

TEST(MinStableBufferTest, LinearizedBoundaryNearTheoremRequirement) {
  const auto p = core::BcnParams::standard_draft();
  const auto b_min =
      min_stable_buffer(p, {.numeric = {.level = core::ModelLevel::Linearized}});
  ASSERT_TRUE(b_min);
  // Theorem 1's linearized bound is near-tight: B_min sits within 1% of
  // it (the raw measured peak is just below the bound; the returned value
  // carries a small safety epsilon that can land marginally above).
  EXPECT_NEAR(*b_min, p.theorem1_required_buffer(),
              0.01 * p.theorem1_required_buffer());
}

TEST(MinStableBufferTest, NonlinearNeedsRoughlyHalf) {
  const auto p = core::BcnParams::standard_draft();
  const auto b_min =
      min_stable_buffer(p, {.numeric = {.level = core::ModelLevel::Nonlinear}});
  ASSERT_TRUE(b_min);
  EXPECT_LT(*b_min, 0.6 * p.theorem1_required_buffer());
  EXPECT_GT(*b_min, 0.3 * p.theorem1_required_buffer());
}

TEST(MinStableBufferTest, ReturnedBufferActuallyVerdictsStable) {
  Rng rng(77);
  int checked = 0;
  for (int i = 0; i < 20 && checked < 6; ++i) {
    core::BcnParams p = core::BcnParams::standard_draft();
    p.gi = rng.uniform(0.5, 10.0);
    p.gd = rng.uniform(1.0 / 512.0, 1.0 / 16.0);
    const auto b_min =
        min_stable_buffer(p, {.numeric = {.level = core::ModelLevel::Linearized}});
    if (!b_min) continue;
    ++checked;
    core::BcnParams at = p;
    at.buffer = *b_min;
    at.qsc = 0.95 * *b_min;
    if (!at.is_valid()) continue;
    EXPECT_TRUE(core::numeric_strong_stability(
                    at, {.level = core::ModelLevel::Linearized})
                    .strongly_stable)
        << at.describe();
    // Just below, it must be unstable.
    core::BcnParams below = p;
    below.buffer = 0.97 * *b_min;
    below.qsc = 0.9 * below.buffer;
    if (below.buffer <= below.q0 || !below.is_valid()) continue;
    EXPECT_FALSE(core::numeric_strong_stability(
                     below, {.level = core::ModelLevel::Linearized})
                     .strongly_stable)
        << below.describe();
  }
  EXPECT_GE(checked, 3);
}

TEST(MinStableBufferTest, HonorsCallerNumericOptions) {
  // Regression: MinBufferOptions used to forward only the model level to
  // the verdict runs, silently discarding every other numeric knob the
  // caller configured.  A horizon far too short to see the first
  // overshoot must produce a smaller "minimal" buffer than the honest
  // auto horizon — observable only if the duration actually reaches the
  // integrator.
  const auto p = core::BcnParams::standard_draft();
  const auto honest =
      min_stable_buffer(p, {.numeric = {.level = core::ModelLevel::Linearized}});
  const auto myopic = min_stable_buffer(
      p, {.numeric = {.level = core::ModelLevel::Linearized,
                      .duration = 1e-6}});
  ASSERT_TRUE(honest);
  ASSERT_TRUE(myopic);
  EXPECT_LT(*myopic, 0.5 * *honest);
}

TEST(MinStableBufferTest, AlwaysAtLeastQ0) {
  // Case 3 never overshoots: the minimal buffer degenerates to ~q0.
  core::BcnParams p;
  p.capacity = 1e6;
  p.q0 = 1e3;
  p.buffer = 2e4;
  p.qsc = 1.5e4;
  p.w = 50.0;
  p.pm = 0.5;
  p.ru = 8e3;
  p.gi = 4.0;
  p.gd = 4.0 * p.spiral_threshold() / p.capacity;
  const auto b_min = min_stable_buffer(p);
  ASSERT_TRUE(b_min);
  EXPECT_NEAR(*b_min, p.q0, 0.1 * p.q0);
}

}  // namespace
}  // namespace bcn::analysis
