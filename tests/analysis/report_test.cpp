// The verdict-report renderer is the shared source of truth for
// bcn_analyze stdout and the stability-verdict service: these tests pin
// its determinism and the agreement between the rendered text and the
// structured summary fields.
#include "analysis/report.h"

#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "core/stability.h"

namespace bcn::analysis {
namespace {

TEST(VerdictReport, DeterministicByteForByte) {
  VerdictRequest request;
  request.params = core::BcnParams::standard_draft();
  const auto first = render_verdict_report(request);
  const auto second = render_verdict_report(request);
  EXPECT_EQ(first.text, second.text);
  EXPECT_FALSE(first.text.empty());
}

TEST(VerdictReport, BcnPathCarriesClosedFormVerdicts) {
  VerdictRequest request;
  request.params = core::BcnParams::standard_draft();
  const auto report = render_verdict_report(request);
  EXPECT_TRUE(report.has_fluid);
  EXPECT_TRUE(report.closed_form);
  EXPECT_FALSE(report.nonfinite);
  // Structured fields agree with an independent closed-form analysis.
  const auto stability = core::analyze_stability(request.params);
  EXPECT_EQ(report.proposition, stability.proposition);
  EXPECT_EQ(report.proposition_satisfied, stability.proposition_satisfied);
  EXPECT_EQ(report.theorem1_satisfied, stability.theorem1_satisfied);
  EXPECT_DOUBLE_EQ(report.theorem1_required_buffer,
                   stability.theorem1_required_buffer);
  // The standard draft is the paper's under-buffered case: unstable.
  EXPECT_FALSE(report.stable_nonlinear);
  // The text mentions both verdict layers.
  EXPECT_NE(report.text.find("Theorem 1"), std::string::npos);
  EXPECT_NE(report.text.find("numeric"), std::string::npos);
}

TEST(VerdictReport, StructuredExtremaMatchNumericVerdicts) {
  VerdictRequest request;
  request.params = core::BcnParams::standard_draft();
  request.params.buffer = 30e6;
  request.params.qsc = 28e6;
  request.params.gi = 0.5;
  const auto report = render_verdict_report(request);
  core::NumericVerdictOptions options;
  options.level = core::ModelLevel::Nonlinear;
  const auto numeric =
      core::numeric_strong_stability(request.params, options);
  EXPECT_EQ(report.stable_nonlinear, numeric.strongly_stable);
  EXPECT_DOUBLE_EQ(report.peak_q_nonlinear,
                   numeric.max_x + request.params.q0);
}

TEST(VerdictReport, GenericMechanismPathHasNoClosedForm) {
  VerdictRequest request;
  request.params = core::BcnParams::standard_draft();
  request.mechanism = "qcn";
  const auto report = render_verdict_report(request);
  EXPECT_TRUE(report.has_fluid);
  EXPECT_FALSE(report.closed_form);
  EXPECT_NE(report.text.find("mechanism: qcn"), std::string::npos);
}

TEST(VerdictReport, PacketOnlyMechanismSaysSo) {
  VerdictRequest request;
  request.params = core::BcnParams::standard_draft();
  request.mechanism = "fera";
  const auto report = render_verdict_report(request);
  EXPECT_FALSE(report.has_fluid);
  EXPECT_FALSE(report.closed_form);
  EXPECT_NE(report.text.find("packet-only"), std::string::npos);
}

}  // namespace
}  // namespace bcn::analysis
