// Heterogeneous-competition fluid model: two mechanism groups on one
// bottleneck (analysis/competition.h).  Checks the homogeneous baseline,
// boundedness of the mixed pairs the E21 bench reports, share accounting
// under asymmetric splits, determinism, and the packet-only degenerate
// case.
#include <cstddef>

#include <gtest/gtest.h>

#include "analysis/competition.h"
#include "core/mechanism.h"

namespace bcn::analysis {
namespace {

core::MechanismConfig slow_regime() {
  core::MechanismConfig cfg;
  cfg.plant.num_sources = 8;
  cfg.plant.capacity = 10e9;
  cfg.plant.q0 = 2.5e6;
  cfg.plant.buffer = 30e6;
  cfg.plant.qsc = 28e6;
  cfg.plant.w = 2.0;
  cfg.plant.pm = 0.2;
  cfg.plant.gi = 0.5;
  cfg.plant.gd = 1.0 / 128.0;
  cfg.plant.ru = 8e6;
  return cfg;
}

CompetitionOptions short_run() {
  CompetitionOptions opts;
  opts.duration = 0.03;
  return opts;
}

TEST(CompetitionTest, HomogeneousBcnIsTheFairnessBaseline) {
  const auto run =
      simulate_fluid_competition("bcn", "bcn", slow_regime(), short_run());
  ASSERT_FALSE(run.t.empty());
  EXPECT_EQ(run.mech_a, "bcn");
  EXPECT_EQ(run.mech_b, "bcn");
  EXPECT_TRUE(run.bounded);
  // Two identical groups: symmetric dynamics, near-perfect share split
  // and the queue settling at q0 (x = 0).
  EXPECT_GT(run.fairness, 0.99);
  EXPECT_GT(run.tail_queue_mean, 0.5 * 2.5e6);
  EXPECT_LT(run.tail_queue_mean, 2.0 * 2.5e6);
  EXPECT_DOUBLE_EQ(run.share_a, run.share_b);
}

TEST(CompetitionTest, MixedPairsStayBoundedInTheStrip) {
  for (const auto& [a, b] : {std::pair<const char*, const char*>{"bcn", "qcn"},
                             {"bcn", "rcp"},
                             {"qcn", "rcp"}}) {
    const auto run = simulate_fluid_competition(a, b, slow_regime(),
                                                short_run());
    ASSERT_FALSE(run.t.empty()) << a << " vs " << b;
    EXPECT_TRUE(run.bounded) << a << " vs " << b;
    EXPECT_GT(run.fairness, 0.0) << a << " vs " << b;
    EXPECT_LE(run.fairness, 1.0 + 1e-12) << a << " vs " << b;
    // Both groups keep sending: neither aggregate collapses to zero.
    EXPECT_GT(run.tail_rate_a, 0.0) << a << " vs " << b;
    EXPECT_GT(run.tail_rate_b, 0.0) << a << " vs " << b;
  }
}

TEST(CompetitionTest, SplitControlsTheCapacityShares) {
  auto opts = short_run();
  opts.split = 0.25;  // 2 of the 8 sources in group A
  const auto run =
      simulate_fluid_competition("bcn", "bcn", slow_regime(), opts);
  ASSERT_FALSE(run.t.empty());
  EXPECT_DOUBLE_EQ(run.share_a, 10e9 * 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(run.share_b, 10e9 * 6.0 / 8.0);
  // Fairness is share-normalized, so the asymmetric homogeneous split
  // still scores as fair.
  EXPECT_TRUE(run.bounded);
  EXPECT_GT(run.fairness, 0.95);
}

TEST(CompetitionTest, RunsAreDeterministic) {
  const auto a =
      simulate_fluid_competition("bcn", "rcp", slow_regime(), short_run());
  const auto b =
      simulate_fluid_competition("bcn", "rcp", slow_regime(), short_run());
  ASSERT_FALSE(a.t.empty());
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.ya, b.ya);
  EXPECT_EQ(a.yb, b.yb);
  EXPECT_DOUBLE_EQ(a.fairness, b.fairness);
  EXPECT_DOUBLE_EQ(a.tail_x_p2p, b.tail_x_p2p);
}

TEST(CompetitionTest, SeriesAreAlignedAndInsideTheWalls) {
  const auto run =
      simulate_fluid_competition("bcn", "qcn", slow_regime(), short_run());
  ASSERT_FALSE(run.t.empty());
  ASSERT_EQ(run.t.size(), run.x.size());
  ASSERT_EQ(run.t.size(), run.ya.size());
  ASSERT_EQ(run.t.size(), run.yb.size());
  const double lo = -2.5e6;
  const double hi = 30e6 - 2.5e6;
  for (std::size_t i = 0; i < run.t.size(); ++i) {
    EXPECT_GE(run.x[i], lo - 1.0);
    EXPECT_LE(run.x[i], hi + 1.0);
    if (i > 0) EXPECT_GT(run.t[i], run.t[i - 1]);
  }
  EXPECT_LE(run.max_x, hi + 1.0);
  EXPECT_GE(run.min_x, lo - 1.0);
}

TEST(CompetitionTest, PacketOnlyMechanismYieldsAnEmptyRun) {
  // fera has no fluid facet; the run is named but carries no series and
  // no verdict.
  for (const auto& [a, b] : {std::pair<const char*, const char*>{"fera", "bcn"},
                             {"bcn", "fera"},
                             {"bcn", "nope"}}) {
    const auto run =
        simulate_fluid_competition(a, b, slow_regime(), short_run());
    EXPECT_TRUE(run.t.empty()) << a << " vs " << b;
    EXPECT_FALSE(run.bounded) << a << " vs " << b;
  }
}

TEST(CompetitionTest, BatchIsBitwiseEqualToScalarRuns) {
  // The batched entry point steps lanes in lockstep over shared storage;
  // the contract is that every per-lane series and statistic is the
  // exact scalar sequence, at any thread count.
  const std::vector<CompetitionPair> pairs = {
      {"bcn", "bcn", slow_regime()},
      {"bcn", "qcn", slow_regime()},
      {"qcn", "rcp", slow_regime()},
      {"rcp", "bcn", slow_regime()},
      {"bcn", "nope", slow_regime()},  // invalid pairs ride along empty
  };
  const auto opts = short_run();
  for (const int threads : {1, 4}) {
    const auto batch = simulate_fluid_competition_batch(pairs, opts, threads);
    ASSERT_EQ(batch.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto scalar = simulate_fluid_competition(
          pairs[i].mech_a, pairs[i].mech_b, pairs[i].config, opts);
      const auto& b = batch[i];
      ASSERT_EQ(b.t.size(), scalar.t.size()) << i;
      for (std::size_t s = 0; s < scalar.t.size(); ++s) {
        // EXPECT_EQ on doubles is exact, not a tolerance comparison.
        EXPECT_EQ(b.t[s], scalar.t[s]);
        EXPECT_EQ(b.x[s], scalar.x[s]);
        EXPECT_EQ(b.ya[s], scalar.ya[s]);
        EXPECT_EQ(b.yb[s], scalar.yb[s]);
      }
      EXPECT_EQ(b.max_x, scalar.max_x) << i;
      EXPECT_EQ(b.min_x, scalar.min_x) << i;
      EXPECT_EQ(b.bounded, scalar.bounded) << i;
      EXPECT_EQ(b.tail_queue_mean, scalar.tail_queue_mean) << i;
      EXPECT_EQ(b.tail_x_p2p, scalar.tail_x_p2p) << i;
      EXPECT_EQ(b.tail_rate_a, scalar.tail_rate_a) << i;
      EXPECT_EQ(b.tail_rate_b, scalar.tail_rate_b) << i;
      EXPECT_EQ(b.fairness, scalar.fairness) << i;
      EXPECT_EQ(b.share_a, scalar.share_a) << i;
      EXPECT_EQ(b.share_b, scalar.share_b) << i;
    }
  }
}

}  // namespace
}  // namespace bcn::analysis
