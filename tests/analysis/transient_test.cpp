#include "analysis/transient.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulate.h"

namespace bcn::analysis {
namespace {

// x(t) = A e^{-d t} cos(w t): known overshoot A, period 2pi/w, decay d.
ode::Trajectory damped(double amplitude, double damping, double omega,
                       double t_end = 20.0, double dt = 0.001) {
  ode::Trajectory t;
  for (double s = 0.0; s <= t_end; s += dt) {
    t.push_back(s, {amplitude * std::exp(-damping * s) * std::cos(omega * s),
                    0.0});
  }
  return t;
}

TEST(MeasureTransientTest, KnownDampedOscillation) {
  const double q0 = 1.0;
  const auto m = measure_transient(damped(2.0, 0.5, 6.283), q0, 0.05);
  EXPECT_NEAR(m.overshoot_ratio, 2.0, 0.05);
  ASSERT_TRUE(m.oscillation_period);
  EXPECT_NEAR(*m.oscillation_period, 1.0, 0.05);
  ASSERT_TRUE(m.envelope_decay_rate);
  EXPECT_NEAR(*m.envelope_decay_rate, 0.5, 0.05);
  EXPECT_TRUE(m.settled);
  // |x| falls below 0.05 at t ~ ln(40)/0.5 = 7.4.
  EXPECT_NEAR(m.settling_time, std::log(2.0 / 0.05) / 0.5, 1.0);
}

TEST(MeasureTransientTest, UnsettledTraceReported) {
  // Pure cosine never settles.
  const auto m = measure_transient(damped(1.0, 0.0, 6.283, 5.0), 1.0, 0.05);
  EXPECT_FALSE(m.settled);
  EXPECT_TRUE(std::isinf(m.settling_time));
}

TEST(MeasureTransientTest, EmptyTrajectorySafe) {
  const auto m = measure_transient({}, 1.0);
  EXPECT_DOUBLE_EQ(m.overshoot_ratio, 0.0);
  EXPECT_FALSE(m.oscillation_period);
}

TEST(EstimateTransientTest, MatchesMeasurementOnLinearizedModel) {
  // A config damped enough to settle within a manageable horizon.
  core::BcnParams p = core::BcnParams::standard_draft();
  p.gi = 0.05;           // weaker drive: slower oscillation, same structure
  p.gd = 0.1;            // strong decrease: heavier damping
  p.buffer = 40e6;
  p.qsc = 36e6;
  const auto est = estimate_transient(p, 0.05);
  ASSERT_TRUE(est);
  EXPECT_GT(est->contraction_ratio, 0.0);
  EXPECT_LT(est->contraction_ratio, 1.0);

  core::FluidRunOptions opts;
  opts.duration = 3.0 * est->settling_time;
  opts.record_interval = est->cycle_time / 200.0;
  const auto run = core::simulate_fluid(
      core::FluidModel(p, core::ModelLevel::Linearized), opts);
  const auto m = measure_transient(run.trajectory, p.q0, 0.05);
  ASSERT_TRUE(m.settled);
  EXPECT_NEAR(m.settling_time, est->settling_time, 0.35 * est->settling_time);
  ASSERT_TRUE(m.oscillation_period);
  EXPECT_NEAR(*m.oscillation_period, est->cycle_time,
              0.2 * est->cycle_time);
  ASSERT_TRUE(m.envelope_decay_rate);
  EXPECT_NEAR(*m.envelope_decay_rate, est->envelope_decay_rate,
              0.3 * est->envelope_decay_rate);
}

TEST(EstimateTransientTest, GainsShiftSettlingAsPredicted) {
  core::BcnParams slow = core::BcnParams::standard_draft();
  core::BcnParams fast = slow;
  fast.gd *= 8.0;  // stronger decrease damps faster
  const auto e_slow = estimate_transient(slow);
  const auto e_fast = estimate_transient(fast);
  ASSERT_TRUE(e_slow);
  ASSERT_TRUE(e_fast);
  EXPECT_LT(e_fast->settling_time, e_slow->settling_time);
}

TEST(EstimateTransientTest, OverdampedReturnsNullopt) {
  // Case 4: no second cycle exists.
  core::BcnParams p;
  p.capacity = 1e6;
  p.q0 = 1e3;
  p.buffer = 2e4;
  p.qsc = 1.5e4;
  p.w = 50.0;
  p.pm = 0.5;
  p.ru = 8e3;
  p.gi = 4.0 * p.spiral_threshold() / (p.ru * p.num_sources);
  p.gd = 4.0 * p.spiral_threshold() / p.capacity;
  EXPECT_FALSE(estimate_transient(p));
}

}  // namespace
}  // namespace bcn::analysis
