#include "analysis/crossval.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::analysis {
namespace {

// Damped oscillation: x(t) = A e^{-d t} cos(w t), settling to `offset`.
ode::Trajectory damped(double amplitude, double damping, double omega,
                       double offset, double t_end = 10.0,
                       double dt = 0.002) {
  ode::Trajectory t;
  for (double s = 0.0; s <= t_end; s += dt) {
    t.push_back(s, {offset + amplitude * std::exp(-damping * s) *
                                 std::cos(omega * s),
                    0.0});
  }
  return t;
}

TEST(FeaturesTest, PeakTroughPeriodAndFinal) {
  const auto f = extract_features(damped(1.0, 0.2, 6.283, 0.0), 0.05);
  EXPECT_NEAR(f.peak_value, 1.0, 0.01);
  EXPECT_NEAR(f.peak_time, 0.0, 0.01);
  // First trough at half a period, value ~ -e^{-0.1}.
  EXPECT_LT(f.trough_value, -0.5);
  ASSERT_TRUE(f.period);
  EXPECT_NEAR(*f.period, 1.0, 0.05);
  EXPECT_NEAR(f.final_value, 0.0, 0.1);
}

TEST(FeaturesTest, MonotoneHasNoPeriod) {
  ode::Trajectory t;
  for (double s = 0.0; s <= 5.0; s += 0.01) {
    t.push_back(s, {1.0 - std::exp(-s), 0.0});
  }
  const auto f = extract_features(t, 0.01);
  EXPECT_FALSE(f.period);
  EXPECT_NEAR(f.final_value, 1.0, 0.02);
}

TEST(FeaturesTest, ProminenceFiltersNoise) {
  // Big oscillation with small high-frequency ripple on top.
  ode::Trajectory t;
  for (double s = 0.0; s <= 10.0; s += 0.002) {
    t.push_back(s, {std::cos(6.283 * s) + 0.01 * std::cos(200.0 * s), 0.0});
  }
  const auto coarse = extract_features(t, 0.2);
  ASSERT_TRUE(coarse.period);
  EXPECT_NEAR(*coarse.period, 1.0, 0.05);  // ripple ignored
}

TEST(FeaturesTest, EmptyTrajectory) {
  const auto f = extract_features({}, 0.1);
  EXPECT_DOUBLE_EQ(f.peak_value, 0.0);
  EXPECT_FALSE(f.period);
}

TEST(CompareShapesTest, SimilarOscillationsScoreLowError) {
  const auto a = damped(1.0, 0.2, 6.283, 0.5);
  const auto b = damped(1.05, 0.25, 6.0, 0.52);
  const auto cmp = compare_shapes(a, b, 0.05);
  EXPECT_TRUE(cmp.same_character);
  EXPECT_LT(cmp.peak_rel_error, 0.1);
  EXPECT_LT(cmp.period_rel_error, 0.1);
  EXPECT_LT(cmp.final_rel_error, 0.1);
}

TEST(CompareShapesTest, OscillationVsMonotoneDiffer) {
  const auto a = damped(1.0, 0.2, 6.283, 0.0);
  ode::Trajectory mono;
  for (double s = 0.0; s <= 10.0; s += 0.01) {
    mono.push_back(s, {1.0 - std::exp(-s), 0.0});
  }
  const auto cmp = compare_shapes(a, mono, 0.05);
  EXPECT_FALSE(cmp.same_character);
}

}  // namespace
}  // namespace bcn::analysis
