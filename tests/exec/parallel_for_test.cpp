#include "exec/parallel_for.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bcn::exec {
namespace {

TEST(ResolveThreadsTest, ZeroMeansHardwareAndExplicitIsLiteral) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  const auto stats = parallel_for(
      kN, [&](std::size_t i) { visits[i].fetch_add(1); }, {.threads = 4});
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.items, kN);
  EXPECT_EQ(stats.threads, 4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, OrderingDeterministicAcrossThreadCounts) {
  constexpr std::size_t kN = 513;  // not a multiple of any chunk size
  auto cell = [](std::size_t i) {
    // An irrational-ish value so any index mixup changes bits.
    return std::sin(static_cast<double>(i) * 0.7) * 1e9;
  };
  const auto serial = parallel_map<double>(kN, cell, {.threads = 1});
  for (const int threads : {2, 4, 8}) {
    const auto parallel = parallel_map<double>(kN, cell, {.threads = threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < kN; ++i) {
      // Bitwise identity, not tolerance: slot i is always cell(i).
      EXPECT_EQ(parallel[i], serial[i]) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyRange) {
  const auto stats =
      parallel_for(0, [](std::size_t) { FAIL(); }, {.threads = 4});
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.items, 0u);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        parallel_for(
            100,
            [](std::size_t i) {
              if (i == 37) throw std::runtime_error("cell 37 failed");
            },
            {.threads = threads}),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelForTest, CancellationStopsIssuingWork) {
  CancelToken cancel;
  cancel.request_stop();
  const std::size_t kN = 10000;
  std::atomic<std::size_t> ran{0};
  ParallelForOptions opts;
  opts.threads = 4;
  opts.cancel = &cancel;
  const auto stats =
      parallel_for(kN, [&](std::size_t) { ran.fetch_add(1); }, opts);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForTest, MidRunCancellationIsCooperative) {
  CancelToken cancel;
  const std::size_t kN = 100000;
  std::atomic<std::size_t> ran{0};
  ParallelForOptions opts;
  opts.threads = 4;
  opts.chunk = 16;
  opts.cancel = &cancel;
  parallel_for(
      kN,
      [&](std::size_t) {
        if (ran.fetch_add(1) == 200) cancel.request_stop();
      },
      opts);
  // Workers finish their in-flight chunks but take no new ones.
  EXPECT_LT(ran.load(), kN);
}

TEST(ParallelForTest, ProgressCountsEveryItem) {
  Progress progress;
  ParallelForOptions opts;
  opts.threads = 3;
  opts.progress = &progress;
  parallel_for(257, [](std::size_t) {}, opts);
  EXPECT_EQ(progress.total(), 257u);
  EXPECT_EQ(progress.done(), 257u);
}

TEST(ParallelForTest, SerialPathReportsStats) {
  const auto stats = parallel_for(10, [](std::size_t) {}, {.threads = 1});
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.items, 10u);
  EXPECT_EQ(stats.threads, 1);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(ParallelForTest, ExplicitChunkSizeCoversRange) {
  std::vector<std::atomic<int>> visits(100);
  ParallelForOptions opts;
  opts.threads = 4;
  opts.chunk = 7;  // 100 = 14*7 + 2: last chunk is partial
  const auto stats =
      parallel_for(100, [&](std::size_t i) { visits[i].fetch_add(1); }, opts);
  EXPECT_EQ(stats.items, 100u);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossParallelForCalls) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  ParallelForOptions opts;
  opts.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::size_t> ran{0};
    const auto stats =
        parallel_for(100, [&](std::size_t) { ran.fetch_add(1); }, opts);
    EXPECT_EQ(ran.load(), 100u);
    EXPECT_EQ(stats.threads, 4);
  }
}

}  // namespace
}  // namespace bcn::exec
