#include "core/poincare.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/analytic_tracer.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(PoincareTest, SectionPointRoundTrip) {
  const FluidModel model(case1_params(), ModelLevel::Linearized);
  const PoincareMap map(model);
  for (double s : {1e3, 1e6, 1e9}) {
    const Vec2 z = map.section_point(s);
    // On the switching line, in the decrease-entry quadrant.
    EXPECT_NEAR(z.x + case1_params().k() * z.y, 0.0, 1e-9 * s);
    EXPECT_LT(z.x, 0.0);
    EXPECT_GT(z.y, 0.0);
    EXPECT_NEAR(map.parameter_of(z), s, 1e-9 * s);
  }
}

TEST(PoincareTest, LinearizedMapIsLinearContraction) {
  // For the linearized switched system the return map is exactly linear:
  // P(s)/s is the same constant < 1 at every amplitude.
  const FluidModel model(case1_params(), ModelLevel::Linearized);
  PoincareOptions opts;
  opts.max_time = 0.05;
  const PoincareMap map(model, opts);
  const auto r1 = map.ratio(1e9);
  const auto r2 = map.ratio(5e10);
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);
  EXPECT_LT(*r1, 1.0);
  EXPECT_GT(*r1, 0.0);
  EXPECT_NEAR(*r1, *r2, 1e-3 * *r1);
}

TEST(PoincareTest, LinearizedRatioMatchesTracerContraction) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Linearized);
  PoincareOptions opts;
  opts.max_time = 0.05;
  const PoincareMap map(model, opts);
  const auto ratio = map.ratio(1e10);
  const auto trace = AnalyticTracer(p).trace();
  const auto tracer_ratio = trace.contraction_ratio();
  ASSERT_TRUE(ratio);
  ASSERT_TRUE(tracer_ratio);
  EXPECT_NEAR(*ratio, *tracer_ratio, 0.01 * *tracer_ratio);
}

TEST(PoincareTest, NoInteriorLimitCycleInLinearizedSystem) {
  const FluidModel model(case1_params(), ModelLevel::Linearized);
  CycleSearchOptions opts;
  opts.poincare.max_time = 0.05;
  opts.s_lo = 1e8;
  opts.s_hi = 1e11;
  opts.bracket_samples = 8;
  EXPECT_FALSE(find_limit_cycle(model, opts));
}

TEST(PoincareTest, NonlinearMapContractsForStandardDraft) {
  const FluidModel model(case1_params(), ModelLevel::Nonlinear);
  PoincareOptions opts;
  opts.max_time = 0.05;
  const PoincareMap map(model, opts);
  const auto r_small = map.ratio(1e9);
  const auto r_large = map.ratio(2e11);
  ASSERT_TRUE(r_small);
  ASSERT_TRUE(r_large);
  EXPECT_LT(*r_small, 1.0);
  EXPECT_LT(*r_large, 1.0);
}

TEST(PoincareTest, MapRejectsNonPositiveParameter) {
  const FluidModel model(case1_params(), ModelLevel::Linearized);
  const PoincareMap map(model);
  EXPECT_FALSE(map.map(0.0));
  EXPECT_FALSE(map.map(-1.0));
}

TEST(PoincareTest, ClippedMapSaturatesAtWallsAndStillContracts) {
  // Reproduction finding (see EXPERIMENTS.md): even with the buffer walls
  // the return map contracts at every amplitude -- large orbits are capped
  // by the walls (P(s) saturates to a constant) and then decay, so the
  // paper's Fig. 7 interior limit cycle does NOT occur in the fluid model
  // itself; sustained oscillation in practice comes from the near-unity
  // contraction ratio plus the quantization effects the fluid model drops.
  const FluidModel model(case1_params(), ModelLevel::Clipped);
  PoincareOptions popts;
  popts.max_time = 0.05;
  const PoincareMap map(model, popts);
  const auto p_big1 = map.map(1e11);
  const auto p_big2 = map.map(2e11);
  ASSERT_TRUE(p_big1);
  ASSERT_TRUE(p_big2);
  // Wall saturation: the return amplitude no longer grows with s.
  EXPECT_NEAR(*p_big1, *p_big2, 0.02 * *p_big1);
  EXPECT_LT(*p_big1, 1e11);

  CycleSearchOptions opts;
  opts.poincare.max_time = 0.05;
  opts.s_lo = 1e9;
  opts.s_hi = 2e11;
  opts.bracket_samples = 10;
  EXPECT_FALSE(find_limit_cycle(model, opts));
}

TEST(PoincareTest, NonlinearDeepCrashDissipates) {
  // A wall-clipped transient dives to y ~ -C (all rates throttled); the
  // following return amplitude collapses far below the entry amplitude --
  // the mechanism that kills candidate limit cycles.
  BcnParams p = case1_params();
  p.q0 = 2e6;
  p.buffer = 5e6;
  p.qsc = 4.5e6;
  const FluidModel model(p, ModelLevel::Clipped);
  PoincareOptions popts;
  popts.max_time = 0.05;
  const PoincareMap map(model, popts);
  const auto r = map.ratio(5e10);
  ASSERT_TRUE(r);
  EXPECT_LT(*r, 0.5);
}

}  // namespace
}  // namespace bcn::core
