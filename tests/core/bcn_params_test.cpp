#include "core/bcn_params.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_params.h"

namespace bcn::core {
namespace {

TEST(BcnParamsTest, DerivedCoefficients) {
  const BcnParams p = BcnParams::standard_draft();
  EXPECT_DOUBLE_EQ(p.a(), 8e6 * 4.0 * 50.0);            // Ru Gi N = 1.6e9
  EXPECT_DOUBLE_EQ(p.b(), 1.0 / 128.0);                  // Gd
  EXPECT_DOUBLE_EQ(p.k(), 2.0 / (0.01 * 10e9));          // w/(pm C) = 2e-8
  EXPECT_DOUBLE_EQ(p.spiral_threshold(), 4.0 / (p.k() * p.k()));
}

TEST(BcnParamsTest, CharacteristicCoefficientsFollowEq35) {
  const BcnParams p = BcnParams::standard_draft();
  EXPECT_DOUBLE_EQ(p.increase_m(), p.a() * p.k());
  EXPECT_DOUBLE_EQ(p.increase_n(), p.a());
  EXPECT_DOUBLE_EQ(p.decrease_m(), p.k() * p.b() * p.capacity);
  EXPECT_DOUBLE_EQ(p.decrease_n(), p.b() * p.capacity);
  // Eq. (35) structure: m = k n in both regions.
  EXPECT_DOUBLE_EQ(p.increase_m(), p.k() * p.increase_n());
  EXPECT_DOUBLE_EQ(p.decrease_m(), p.k() * p.decrease_n());
}

TEST(BcnParamsTest, Theorem1ReproducesPaperNumericExample) {
  // Paper Section IV remarks: N=50, C=10 Gbps, q0=2.5 Mbit, Gi=4,
  // Gd=1/128, Ru=8 Mbit -> required buffer ~13.75 Mbit (we compute the
  // exact closed form, 13.814 Mbit; the paper rounds).
  const BcnParams p = BcnParams::standard_draft();
  const double required = p.theorem1_required_buffer();
  EXPECT_NEAR(required, 13.81e6, 0.02e6);
  EXPECT_GT(required, 2.7 * 5e6);  // nearly 3x the BDP-sized buffer
  EXPECT_FALSE(p.satisfies_theorem1());
  BcnParams big = p;
  big.buffer = 14e6;
  big.qsc = 13.9e6;
  EXPECT_TRUE(big.satisfies_theorem1());
}

TEST(BcnParamsTest, WarmupDurationFormula) {
  BcnParams p = BcnParams::standard_draft();
  p.init_rate = 0.0;
  // T0 = (C - N mu) / (a q0)
  EXPECT_DOUBLE_EQ(p.warmup_duration(), p.capacity / (p.a() * p.q0));
  p.init_rate = p.capacity / p.num_sources;
  EXPECT_DOUBLE_EQ(p.warmup_duration(), 0.0);
}

TEST(BcnParamsTest, ValidationAcceptsAllCaseFactories) {
  using namespace testing;
  EXPECT_TRUE(case1_params().is_valid());
  EXPECT_TRUE(case2_params().is_valid());
  EXPECT_TRUE(case3_params().is_valid());
  EXPECT_TRUE(case4_params().is_valid());
  EXPECT_TRUE(case5_increase_boundary().is_valid());
  EXPECT_TRUE(case5_decrease_boundary().is_valid());
}

TEST(BcnParamsTest, ValidationCatchesEachViolation) {
  const BcnParams good = BcnParams::standard_draft();
  auto broken = [&](auto mutate) {
    BcnParams p = good;
    mutate(p);
    return !p.is_valid();
  };
  EXPECT_TRUE(broken([](BcnParams& p) { p.num_sources = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.capacity = -1.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.q0 = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.buffer = p.q0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.qsc = p.q0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.qsc = p.buffer * 2.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.w = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.pm = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.pm = 1.5; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.gi = -1.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.gd = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.ru = 0.0; }));
  EXPECT_TRUE(broken([](BcnParams& p) { p.init_rate = -5.0; }));
  EXPECT_TRUE(good.is_valid());
}

TEST(BcnParamsTest, DescribeMentionsKeyNumbers) {
  const std::string s = BcnParams::standard_draft().describe();
  EXPECT_NE(s.find("N=50"), std::string::npos);
  EXPECT_NE(s.find("violated"), std::string::npos);
}

}  // namespace
}  // namespace bcn::core
