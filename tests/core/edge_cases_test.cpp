// Edge-case coverage across the core stack: exact Case-5 boundaries,
// step-budget exhaustion, and off-nominal initial conditions.
#include <gtest/gtest.h>

#include "core/analytic_tracer.h"
#include "core/simulate.h"
#include "core/stability.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(EdgeCasesTest, Case5BoundaryIntegratesCleanly) {
  // Exactly degenerate eigenvalues (dyadic construction): both the tracer
  // and the numeric hybrid must handle the L-type solutions.
  for (const BcnParams& p :
       {case5_increase_boundary(), case5_decrease_boundary()}) {
    const auto trace = AnalyticTracer(p).trace();
    EXPECT_FALSE(trace.rounds.empty()) << p.describe();
    const auto verdict =
        numeric_strong_stability(p, {.level = ModelLevel::Linearized});
    EXPECT_TRUE(std::isfinite(verdict.max_x)) << p.describe();
  }
}

TEST(EdgeCasesTest, Case5DecreaseBoundaryIsStrictlyStable) {
  // Proposition 4's b-boundary branch (the sound one): verified.
  const BcnParams p = case5_decrease_boundary();
  EXPECT_TRUE(numeric_strong_stability(p, {.level = ModelLevel::Linearized})
                  .strongly_stable);
}

TEST(EdgeCasesTest, StepBudgetExhaustionReportsIncomplete) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Nonlinear);
  FluidRunOptions opts;
  opts.duration = 1.0;  // far beyond what 50 steps can cover
  opts.max_steps = 50;
  const auto run = simulate_fluid(model, opts);
  EXPECT_FALSE(run.completed);
  EXPECT_LT(run.trajectory.back().t, 1.0);
}

TEST(EdgeCasesTest, StartInDecreaseRegion) {
  // z0 deep in the decrease region: first round must be Decrease and the
  // orbit still contracts home.
  const BcnParams p = case1_params();
  const Vec2 z0{1e6, 5e9};
  const auto trace = AnalyticTracer(p).trace_from(z0);
  ASSERT_FALSE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds[0].region, Region::Decrease);
  const auto ratio = trace.contraction_ratio();
  if (ratio) {
    EXPECT_LT(*ratio, 1.0);
  }
}

TEST(EdgeCasesTest, StartAtEquilibriumStaysThere) {
  const BcnParams p = case1_params();
  AnalyticTraceOptions opts;
  const auto trace = AnalyticTracer(p).trace_from({0.0, 0.0}, opts);
  EXPECT_TRUE(trace.converged);
  EXPECT_TRUE(trace.rounds.empty());

  const FluidModel model(p, ModelLevel::Nonlinear);
  FluidRunOptions ropts;
  ropts.duration = 1e-4;
  ropts.z0 = Vec2{0.0, 0.0};
  const auto run = simulate_fluid(model, ropts);
  EXPECT_LT(std::abs(run.trajectory.back().z.x), 1.0);
  EXPECT_LT(std::abs(run.trajectory.back().z.y), 1e3);
}

TEST(EdgeCasesTest, SingleSourcePlant) {
  BcnParams p = case1_params();
  p.num_sources = 1.0;
  ASSERT_TRUE(p.is_valid());
  const auto report = analyze_stability(p);
  EXPECT_GT(report.theorem1_required_buffer, p.q0);
  const auto verdict = numeric_strong_stability(p);
  EXPECT_TRUE(std::isfinite(verdict.max_x));
}

TEST(EdgeCasesTest, VeryDeepBufferAlwaysStableForCase1Draft) {
  BcnParams p = case1_params();
  p.buffer = 1e9;  // effectively unbounded
  p.qsc = 0.9e9;
  EXPECT_TRUE(numeric_strong_stability(p).strongly_stable);
}

TEST(EdgeCasesTest, WarmupDurationMatchesPaperFormula) {
  // Paper Section IV.C: from the physical start (empty queue, rate mu)
  // the system slides along the empty wall with dy/dt = a q0 until the
  // aggregate reaches C, taking T0 = (C - N mu)/(a q0).  Measure the wall
  // departure in the clipped model and compare.
  BcnParams p = case1_params();
  p.init_rate = 0.4 * p.capacity / p.num_sources;  // 40% load at t = 0
  const double t0_formula = p.warmup_duration();
  ASSERT_GT(t0_formula, 0.0);

  const FluidModel model(p, ModelLevel::Clipped);
  FluidRunOptions opts;
  opts.duration = 3.0 * t0_formula;
  opts.z0 = model.physical_initial_point();
  const auto run = simulate_fluid(model, opts);

  // The departure from the empty wall is the switch out of the wall mode.
  double t_departure = -1.0;
  for (const auto& sw : run.switches) {
    if (sw.from_mode == kModeEmptyWall) {
      t_departure = sw.t;
      break;
    }
  }
  ASSERT_GT(t_departure, 0.0);
  EXPECT_NEAR(t_departure, t0_formula, 0.05 * t0_formula);
}

TEST(EdgeCasesTest, TraceFromPointOnSwitchingLine) {
  // Starting exactly on sigma = 0: region_of puts it in Decrease (the
  // > 0 convention); the tracer must not loop at t = 0.
  const BcnParams p = case1_params();
  const double k = p.k();
  const Vec2 on_line{-1e5, 1e5 / k};
  const auto trace = AnalyticTracer(p).trace_from(on_line);
  ASSERT_FALSE(trace.rounds.empty());
  for (const auto& r : trace.rounds) {
    if (r.duration) {
      EXPECT_GT(*r.duration, 0.0);
    }
  }
}

}  // namespace
}  // namespace bcn::core
