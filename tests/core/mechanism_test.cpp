// Fluid facet of the pluggable-mechanism layer: registry contents, gain
// plumbing, and the contract that the BCN facet reproduces the legacy
// FluidModel path exactly (the refactor must not move any trajectory).
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "core/simulate.h"
#include "core/stability.h"

namespace bcn::core {
namespace {

// The slow-regime plant used across the sim-layer references: every
// registered fluid facet is strongly stable here at its default gains.
BcnParams slow_regime() {
  BcnParams p;
  p.num_sources = 8;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 30e6;
  p.qsc = 28e6;
  p.w = 2.0;
  p.pm = 0.2;
  p.gi = 0.5;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  return p;
}

TEST(MechanismRegistryTest, RegistersTheFiveMechanisms) {
  const auto& reg = mechanism_registry();
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_STREQ(reg[0].name, "bcn");
  EXPECT_STREQ(reg[1].name, "bcn-draft");
  EXPECT_STREQ(reg[2].name, "qcn");
  EXPECT_STREQ(reg[3].name, "rcp");
  EXPECT_STREQ(reg[4].name, "fera");
  EXPECT_EQ(mechanism_name_list(), "bcn, bcn-draft, qcn, rcp, fera");
}

TEST(MechanismRegistryTest, LookupByNameAndUnknownName) {
  for (const auto& info : mechanism_registry()) {
    const MechanismInfo* found = find_mechanism(info.name);
    ASSERT_NE(found, nullptr);
    EXPECT_STREQ(found->name, info.name);
  }
  EXPECT_EQ(find_mechanism("nope"), nullptr);
  EXPECT_EQ(find_mechanism(""), nullptr);
  EXPECT_EQ(find_mechanism("BCN"), nullptr);  // names are case-sensitive
}

TEST(MechanismRegistryTest, FluidFacetAvailabilityMatchesFlag) {
  for (const auto& info : mechanism_registry()) {
    const auto mech = make_fluid_mechanism(info.name);
    EXPECT_EQ(mech != nullptr, info.has_fluid) << info.name;
    if (mech) {
      EXPECT_STREQ(mech->name(), info.name);
    }
  }
  EXPECT_EQ(make_fluid_mechanism("nope"), nullptr);
}

TEST(MechanismRegistryTest, GainAxesRoundTripThroughTheConfig) {
  for (const auto& info : mechanism_registry()) {
    MechanismConfig cfg;
    cfg.plant = slow_regime();
    const auto [d1, d2] = info.default_gains(cfg);
    EXPECT_GT(d1, 0.0) << info.name;
    EXPECT_GT(d2, 0.0) << info.name;
    info.set_gains(cfg, 2.0 * d1, 0.5 * d2);
    const auto [g1, g2] = info.default_gains(cfg);
    EXPECT_DOUBLE_EQ(g1, 2.0 * d1) << info.name;
    EXPECT_DOUBLE_EQ(g2, 0.5 * d2) << info.name;
  }
}

TEST(FluidFacetTest, BcnFacetReproducesLegacyFluidModel) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto mech = make_fluid_mechanism("bcn", cfg);
  ASSERT_NE(mech, nullptr);

  MechanismRunOptions mopts;
  mopts.level = ModelLevel::Nonlinear;
  mopts.duration = 0.01;
  const FluidRun via_facet = simulate_fluid_mechanism(*mech, mopts);

  FluidRunOptions lopts;
  lopts.duration = 0.01;
  const FluidRun legacy =
      simulate_fluid(FluidModel(cfg.plant, ModelLevel::Nonlinear), lopts);

  ASSERT_TRUE(via_facet.completed);
  ASSERT_TRUE(legacy.completed);
  EXPECT_EQ(via_facet.trajectory.size(), legacy.trajectory.size());
  EXPECT_EQ(via_facet.switches.size(), legacy.switches.size());
  EXPECT_DOUBLE_EQ(via_facet.max_x, legacy.max_x);
  EXPECT_DOUBLE_EQ(via_facet.min_x, legacy.min_x);
  EXPECT_DOUBLE_EQ(via_facet.max_y, legacy.max_y);
  EXPECT_DOUBLE_EQ(via_facet.min_y, legacy.min_y);
  EXPECT_DOUBLE_EQ(via_facet.post_switch_max_x, legacy.post_switch_max_x);
  EXPECT_DOUBLE_EQ(via_facet.post_switch_min_x, legacy.post_switch_min_x);
}

TEST(FluidFacetTest, BcnSigmaMatchesFluidModel) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto mech = make_fluid_mechanism("bcn", cfg);
  ASSERT_NE(mech, nullptr);
  const FluidModel model(cfg.plant);
  for (const Vec2 z : {Vec2{-2e6, 1e9}, Vec2{0.0, 0.0}, Vec2{1e6, -3e8}}) {
    EXPECT_DOUBLE_EQ(mech->sigma(z), model.sigma(z));
  }
}

TEST(FluidFacetTest, BcnRegionLawsMatchClosedForms) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto mech = make_fluid_mechanism("bcn", cfg);
  ASSERT_NE(mech, nullptr);
  const auto laws = mech->region_laws();
  ASSERT_EQ(laws.size(), 2u);
  const BcnParams& p = cfg.plant;
  bool saw_increase = false;
  bool saw_decrease = false;
  for (const auto& law : laws) {
    EXPECT_TRUE(law.linearizable);
    if (std::abs(law.n - p.increase_n()) < 1e-9 * p.increase_n()) {
      EXPECT_DOUBLE_EQ(law.m, p.increase_m());
      saw_increase = true;
    } else {
      EXPECT_DOUBLE_EQ(law.m, p.decrease_m());
      EXPECT_DOUBLE_EQ(law.n, p.decrease_n());
      saw_decrease = true;
    }
  }
  EXPECT_TRUE(saw_increase);
  EXPECT_TRUE(saw_decrease);
}

TEST(FluidFacetTest, QcnHasNoEquilibriumTheOthersDo) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  EXPECT_TRUE(make_fluid_mechanism("bcn", cfg)->has_equilibrium());
  EXPECT_TRUE(make_fluid_mechanism("bcn-draft", cfg)->has_equilibrium());
  EXPECT_TRUE(make_fluid_mechanism("rcp", cfg)->has_equilibrium());
  // QCN's constant active increase keeps the field from vanishing: the
  // closed orbit is a sawtooth, not a settled point.
  EXPECT_FALSE(make_fluid_mechanism("qcn", cfg)->has_equilibrium());
}

TEST(FluidFacetTest, QcnQuantizedLawIsPiecewiseConstantDrive) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto laws = make_fluid_mechanism("qcn", cfg)->region_laws();
  ASSERT_FALSE(laws.empty());
  // At least the recovery region must be constant-drive (first order).
  bool any_constant = false;
  for (const auto& law : laws) any_constant |= !law.linearizable;
  EXPECT_TRUE(any_constant);
}

TEST(FluidFacetTest, EveryFluidFacetStableOnSlowRegimeDefaults) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  for (const auto& info : mechanism_registry()) {
    if (!info.has_fluid) continue;
    const auto mech = make_fluid_mechanism(info.name, cfg);
    const NumericVerdict v = mechanism_numeric_verdict(*mech);
    EXPECT_TRUE(v.strongly_stable) << info.name;
    EXPECT_LT(v.max_x, mech->x_max()) << info.name;
    EXPECT_GT(v.min_x, mech->x_min()) << info.name;
  }
}

TEST(FluidFacetTest, BcnVerdictAgreesWithLegacyNumericStability) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto mech = make_fluid_mechanism("bcn", cfg);
  const NumericVerdict generic = mechanism_numeric_verdict(*mech);
  const NumericVerdict legacy = numeric_strong_stability(cfg.plant);
  EXPECT_EQ(generic.strongly_stable, legacy.strongly_stable);
}

TEST(FluidFacetTest, GroupRateDerivSignsAtTheWalls) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const double cap = cfg.plant.capacity;
  for (const char* name : {"bcn", "bcn-draft", "qcn", "rcp"}) {
    const auto mech = make_fluid_mechanism(name, cfg);
    ASSERT_NE(mech, nullptr) << name;
    // Empty queue, group trickling at 10% of its share: it must ramp up.
    // (Exactly zero rate is excluded: RCP's relative update is
    // multiplicative, so the zero-rate derivative is legitimately zero.)
    EXPECT_GT(mech->group_rate_deriv(-cfg.plant.q0, -0.45 * cap, -0.45 * cap,
                                     cap / 2.0),
              0.0)
        << name;
    // ...and with the queue far above q0 at full drive it must back off.
    EXPECT_LT(mech->group_rate_deriv(0.8 * (cfg.plant.buffer - cfg.plant.q0),
                                     cap / 4.0, cap / 2.0, cap / 2.0),
              0.0)
        << name;
  }
}

TEST(FluidFacetTest, RcpSettlesNearTheOrigin) {
  MechanismConfig cfg;
  cfg.plant = slow_regime();
  const auto mech = make_fluid_mechanism("rcp", cfg);
  MechanismRunOptions opts;
  opts.duration = 0.02;
  const FluidRun run = simulate_fluid_mechanism(*mech, opts);
  ASSERT_TRUE(run.completed);
  ASSERT_FALSE(run.trajectory.empty());
  const auto& tail = run.trajectory.back();
  EXPECT_LT(std::abs(tail.z.x), 0.5 * cfg.plant.q0);
  EXPECT_LT(std::abs(tail.z.y), 0.1 * cfg.plant.capacity);
}

}  // namespace
}  // namespace bcn::core
