#include "core/stability.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(StabilityTest, StandardDraftReport) {
  const auto report = analyze_stability(case1_params());
  EXPECT_EQ(report.classification.paper_case, PaperCase::Case1);
  EXPECT_EQ(report.proposition, 2);
  // Overshoot ~11.3 Mbit above q0 >> B - q0 = 2.5 Mbit: not strongly
  // stable, even though the linear baseline declares it stable.
  EXPECT_FALSE(report.proposition_satisfied);
  EXPECT_FALSE(report.theorem1_satisfied);
  EXPECT_TRUE(report.baseline.declared_stable);
  EXPECT_NEAR(report.theorem1_required_buffer, 13.81e6, 0.02e6);
  EXPECT_NEAR(report.predicted_max_x, 11.3e6, 0.05e6);
  EXPECT_GT(report.predicted_min_x, -2.5e6);
  EXPECT_FALSE(report.summary().empty());
}

TEST(StabilityTest, EnlargedBufferBecomesStable) {
  BcnParams p = case1_params();
  p.buffer = 14e6;  // above the 13.81 Mbit requirement
  p.qsc = 13.5e6;
  const auto report = analyze_stability(p);
  EXPECT_TRUE(report.theorem1_satisfied);
  EXPECT_TRUE(report.proposition_satisfied);
  const auto verdict = numeric_strong_stability(p);
  EXPECT_TRUE(verdict.strongly_stable);
}

TEST(StabilityTest, NumericConfirmsDraftInstability) {
  const auto verdict = numeric_strong_stability(case1_params());
  EXPECT_FALSE(verdict.strongly_stable);
  // Overflow, not underflow, is the failure mode here.
  EXPECT_GT(verdict.max_x, case1_params().buffer - case1_params().q0);
  EXPECT_GT(verdict.min_x, -case1_params().q0);
}

TEST(StabilityTest, Case3AlwaysStable) {
  const auto report = analyze_stability(case3_params());
  EXPECT_EQ(report.proposition, 4);
  EXPECT_TRUE(report.proposition_satisfied);
  const auto verdict = numeric_strong_stability(case3_params());
  EXPECT_TRUE(verdict.strongly_stable);
  // Case 3: no overshoot above the reference.
  EXPECT_LT(verdict.max_x, 0.05 * case3_params().q0);
}

TEST(StabilityTest, Case4AlwaysStable) {
  const auto report = analyze_stability(case4_params());
  EXPECT_EQ(report.proposition, 4);
  EXPECT_TRUE(report.proposition_satisfied);
  EXPECT_TRUE(numeric_strong_stability(case4_params()).strongly_stable);
}

TEST(StabilityTest, Case2UsesProposition3) {
  const auto report = analyze_stability(case2_params());
  EXPECT_EQ(report.proposition, 3);
  // With the dyadic toy buffer (B - q0 = 48) versus the predicted
  // overshoot, the verdict must match the numeric one.
  const auto verdict = numeric_strong_stability(
      case2_params(), {.level = ModelLevel::Linearized});
  EXPECT_EQ(report.proposition_satisfied, verdict.strongly_stable);
}

TEST(StabilityTest, Theorem1SoundnessOnLinearizedModel) {
  // Property: Theorem 1 is a sufficient condition, so whenever it holds
  // the linearized numeric verdict must be strongly stable.
  Rng rng(23);
  int holds = 0;
  for (int trial = 0; trial < 30; ++trial) {
    BcnParams p = case1_params();
    p.gi = rng.uniform(0.2, 10.0);
    p.gd = rng.uniform(1.0 / 512.0, 1.0 / 8.0);
    p.buffer = rng.uniform(4e6, 40e6);
    p.qsc = p.buffer * 0.9;
    if (!p.is_valid()) continue;
    if (!p.satisfies_theorem1()) continue;
    const auto verdict =
        numeric_strong_stability(p, {.level = ModelLevel::Linearized});
    EXPECT_TRUE(verdict.strongly_stable) << p.describe();
    ++holds;
  }
  EXPECT_GE(holds, 5);
}

TEST(StabilityTest, BaselineBlindToBuffer) {
  // The Lu et al. baseline verdict cannot change with B -- the paper's
  // key criticism.
  BcnParams small = case1_params();
  BcnParams large = case1_params();
  large.buffer = 100e6;
  large.qsc = 90e6;
  const auto rs = analyze_stability(small);
  const auto rl = analyze_stability(large);
  EXPECT_EQ(rs.baseline.declared_stable, rl.baseline.declared_stable);
  // While strong stability does change.
  EXPECT_FALSE(rs.proposition_satisfied);
  EXPECT_TRUE(rl.proposition_satisfied);
}

}  // namespace
}  // namespace bcn::core
