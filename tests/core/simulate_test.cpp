#include "core/simulate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/analytic_tracer.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(SimulateTest, LinearizedNumericMatchesAnalyticTracer) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Linearized);
  FluidRunOptions opts;
  opts.duration = 2e-3;
  opts.tol = {1e-10, 1e-10};
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_TRUE(run.completed);

  const auto trace = AnalyticTracer(p).trace();
  // Global transient extrema agree between the closed-form stitching and
  // event-localized numeric integration.
  EXPECT_NEAR(run.max_x, trace.max_x, 2e-4 * trace.max_x);
  EXPECT_NEAR(run.post_switch_min_x, trace.min_x,
              2e-4 * std::abs(trace.min_x));
  // Switch times agree with the analytic round durations.
  ASSERT_GE(run.switches.size(), 2u);
  ASSERT_TRUE(trace.rounds[0].duration);
  EXPECT_NEAR(run.switches[0].t, *trace.rounds[0].duration,
              1e-5 * *trace.rounds[0].duration);
}

TEST(SimulateTest, SwitchPointsLieOnSwitchingLine) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Nonlinear);
  FluidRunOptions opts;
  opts.duration = 1e-3;
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_GE(run.switches.size(), 2u);
  for (const auto& sw : run.switches) {
    const double sigma = model.sigma(sw.z);
    const double scale = std::abs(sw.z.x) + p.k() * std::abs(sw.z.y) + 1.0;
    EXPECT_NEAR(sigma / scale, 0.0, 1e-5) << "t=" << sw.t;
  }
}

TEST(SimulateTest, ConvergenceStopFires) {
  // Case 4 converges fast and monotonically.
  const BcnParams p = case4_params();
  const FluidModel model(p, ModelLevel::Linearized);
  FluidRunOptions opts;
  opts.duration = 10.0;
  opts.convergence_tol = 1e-6;
  const FluidRun run = simulate_fluid(model, opts);
  EXPECT_TRUE(run.converged);
  EXPECT_LT(run.trajectory.back().t, 10.0);
  const Vec2 zf = run.trajectory.back().z;
  EXPECT_LT(std::abs(zf.x) / p.q0 + std::abs(zf.y) / p.capacity, 1e-5);
}

TEST(SimulateTest, NonlinearOvershootSmallerThanLinearized) {
  // The (y + C) rate factor accelerates the decrease when rates are high,
  // so the nonlinear overshoot is below the linearized prediction for the
  // standard draft (a large-amplitude transient).
  const BcnParams p = case1_params();
  FluidRunOptions opts;
  opts.duration = 1e-3;
  const FluidRun lin =
      simulate_fluid(FluidModel(p, ModelLevel::Linearized), opts);
  const FluidRun non =
      simulate_fluid(FluidModel(p, ModelLevel::Nonlinear), opts);
  EXPECT_LT(non.max_x, lin.max_x);
  EXPECT_GT(non.max_x, 0.0);
}

TEST(SimulateTest, ClippedModelRespectsBufferWalls) {
  // Standard draft overshoots far beyond the buffer: the clipped model
  // must pin the queue inside [0, B].
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Clipped);
  FluidRunOptions opts;
  opts.duration = 2e-3;
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_TRUE(run.completed);
  const double tol = 1e-6 * p.buffer;
  EXPECT_LE(run.max_x, model.x_max() + tol);
  EXPECT_GE(run.min_x, model.x_min() - tol);
  // It must actually hit the full wall for these parameters.
  EXPECT_GT(run.max_x, model.x_max() - 0.01 * p.buffer);
}

TEST(SimulateTest, ClippedStartsInWarmupWallMode) {
  BcnParams p = case1_params();
  p.init_rate = 1e6;  // far below C/N: physical start deep on the empty wall
  const FluidModel model(p, ModelLevel::Clipped);
  FluidRunOptions opts;
  opts.duration = 5e-5;
  opts.z0 = model.physical_initial_point();
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_TRUE(run.completed);
  // During warm-up the queue stays empty while the rate climbs: x pinned.
  const auto& first = run.trajectory[1];
  EXPECT_NEAR(first.z.x, -p.q0, 1e-3 * p.q0);
  // y must have increased from the initial value.
  EXPECT_GT(run.trajectory.back().z.y,
            model.physical_initial_point().y);
}

TEST(SimulateTest, RecordIntervalControlsSampling) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Nonlinear);
  FluidRunOptions opts;
  opts.duration = 1e-4;
  opts.record_interval = 1e-6;
  const FluidRun run = simulate_fluid(model, opts);
  ASSERT_GE(run.trajectory.size(), 90u);
  EXPECT_NEAR(run.trajectory[1].t - run.trajectory[0].t, 1e-6, 1e-12);
}

TEST(SimulateTest, CustomInitialPoint) {
  const BcnParams p = case1_params();
  const FluidModel model(p, ModelLevel::Nonlinear);
  FluidRunOptions opts;
  opts.duration = 1e-5;
  opts.z0 = Vec2{0.0, 1e9};
  const FluidRun run = simulate_fluid(model, opts);
  EXPECT_EQ(run.trajectory.front().z, (Vec2{0.0, 1e9}));
}

}  // namespace
}  // namespace bcn::core
