#include "core/fluid_model.h"

#include <gtest/gtest.h>

#include "test_params.h"

namespace bcn::core {
namespace {

TEST(FluidModelTest, SigmaAndRegion) {
  const FluidModel m(BcnParams::standard_draft());
  const double k = m.params().k();
  // At the analysis start (-q0, 0): sigma = q0 > 0 -> increase region.
  EXPECT_DOUBLE_EQ(m.sigma(m.analysis_initial_point()), m.params().q0);
  EXPECT_EQ(m.region_of(m.analysis_initial_point()), Region::Increase);
  // A point with x + k y > 0 is in the decrease region.
  const Vec2 z{1e6, 1e9};
  EXPECT_LT(m.sigma(z), 0.0);
  EXPECT_EQ(m.region_of(z), Region::Decrease);
  // Points on the switching line have sigma = 0 (boundary -> Decrease by
  // the > 0 convention).
  const Vec2 on_line{1e6, -1e6 / k};
  EXPECT_NEAR(m.sigma(on_line), 0.0, 1e-3);
}

TEST(FluidModelTest, IncreaseRhsMatchesEq8) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel m(p);
  const Vec2 z{-1e6, 2e8};
  const Vec2 d = m.increase_rhs()(0.0, z);
  EXPECT_DOUBLE_EQ(d.x, z.y);
  EXPECT_DOUBLE_EQ(d.y, -p.a() * (z.x + p.k() * z.y));
}

TEST(FluidModelTest, DecreaseRhsNonlinearKeepsRateFactor) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel nonlinear(p, ModelLevel::Nonlinear);
  const FluidModel linearized(p, ModelLevel::Linearized);
  const Vec2 z{1e6, 3e9};
  const double s = z.x + p.k() * z.y;
  EXPECT_DOUBLE_EQ(nonlinear.decrease_rhs()(0.0, z).y,
                   -p.b() * (z.y + p.capacity) * s);
  EXPECT_DOUBLE_EQ(linearized.decrease_rhs()(0.0, z).y,
                   -p.b() * p.capacity * s);
  // They agree exactly on y = 0 (the linearization point).
  const Vec2 z0{5e5, 0.0};
  EXPECT_NEAR(nonlinear.decrease_rhs()(0.0, z0).y,
              linearized.decrease_rhs()(0.0, z0).y, 1e-6);
}

TEST(FluidModelTest, CoordinateConversionsRoundTrip) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel m(p);
  EXPECT_DOUBLE_EQ(m.queue_of(m.x_of_queue(3.3e6)), 3.3e6);
  EXPECT_DOUBLE_EQ(m.queue_of(0.0), p.q0);
  EXPECT_DOUBLE_EQ(m.aggregate_rate_of(0.0), p.capacity);
  EXPECT_DOUBLE_EQ(m.per_source_rate_of(0.0), p.capacity / p.num_sources);
  EXPECT_DOUBLE_EQ(m.x_min(), -p.q0);
  EXPECT_DOUBLE_EQ(m.x_max(), p.buffer - p.q0);
}

TEST(FluidModelTest, PhysicalInitialPoint) {
  BcnParams p = BcnParams::standard_draft();
  p.init_rate = 1e8;
  const FluidModel m(p);
  const Vec2 z = m.physical_initial_point();
  EXPECT_DOUBLE_EQ(z.x, -p.q0);
  EXPECT_DOUBLE_EQ(z.y, 50.0 * 1e8 - p.capacity);
}

TEST(FluidModelTest, UnclippedHybridHasTwoModesOneGuard) {
  const FluidModel m(BcnParams::standard_draft(), ModelLevel::Nonlinear);
  const auto sys = m.hybrid_system();
  EXPECT_EQ(sys.modes.size(), 2u);
  EXPECT_EQ(sys.guards.size(), 1u);
  EXPECT_EQ(sys.mode_of(0.0, m.analysis_initial_point()), kModeIncrease);
  EXPECT_EQ(sys.mode_of(0.0, {1e6, 1e9}), kModeDecrease);
}

TEST(FluidModelTest, ClippedHybridWallModes) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel m(p, ModelLevel::Clipped);
  const auto sys = m.hybrid_system();
  EXPECT_EQ(sys.modes.size(), 4u);
  EXPECT_EQ(sys.guards.size(), 4u);
  // Empty wall: x = -q0, y <= 0.
  EXPECT_EQ(sys.mode_of(0.0, {-p.q0, -1e8}), kModeEmptyWall);
  EXPECT_EQ(sys.mode_of(0.0, {-p.q0, 0.0}), kModeEmptyWall);
  // Full wall: x = B - q0, y >= 0.
  EXPECT_EQ(sys.mode_of(0.0, {p.buffer - p.q0, 1e8}), kModeFullWall);
  // Interior still splits by sigma.
  EXPECT_EQ(sys.mode_of(0.0, {0.0, 1e8}), kModeDecrease);
  EXPECT_EQ(sys.mode_of(0.0, {-1e6, 0.0}), kModeIncrease);
}

TEST(FluidModelTest, EmptyWallDynamicsMatchWarmupLaw) {
  // On the empty wall the queue is pinned and dy/dt = a q0 (Section IV.C).
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel m(p, ModelLevel::Clipped);
  const auto sys = m.hybrid_system();
  const Vec2 wall{-p.q0, -1e8};
  const Vec2 d = sys.modes[kModeEmptyWall](0.0, wall);
  EXPECT_DOUBLE_EQ(d.x, 0.0);
  EXPECT_DOUBLE_EQ(d.y, p.a() * p.q0);
}

TEST(FluidModelTest, FullWallDynamicsDecreaseRate) {
  const BcnParams p = BcnParams::standard_draft();
  const FluidModel m(p, ModelLevel::Clipped);
  const auto sys = m.hybrid_system();
  const Vec2 wall{p.buffer - p.q0, 5e8};
  const Vec2 d = sys.modes[kModeFullWall](0.0, wall);
  EXPECT_DOUBLE_EQ(d.x, 0.0);
  EXPECT_LT(d.y, 0.0);  // rate must fall while the buffer overflows
}

}  // namespace
}  // namespace bcn::core
