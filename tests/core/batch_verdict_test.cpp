// Batched SoA verdicts vs the scalar adaptive pipeline: the two paths
// must agree on strong stability for every mechanism exposing a lane
// law, across gain grids straddling the stability boundary.
#include "core/batch_verdict.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "core/mechanism.h"
#include "core/stability.h"

namespace bcn::core {
namespace {

TEST(BatchVerdictTest, BcnAgreesWithScalarAcrossGainGrid) {
  // A log grid wide enough to contain stable spirals, unstable spirals
  // and node cases at both model levels.
  const auto gis = analysis::logspace(0.25, 16.0, 7);
  const auto gds = analysis::logspace(1.0 / 512.0, 0.25, 7);
  for (const auto level : {ModelLevel::Linearized, ModelLevel::Nonlinear}) {
    std::vector<VerdictLane> lanes;
    std::vector<NumericVerdict> scalar;
    for (const double gi : gis) {
      for (const double gd : gds) {
        BcnParams p = BcnParams::standard_draft();
        p.gi = gi;
        p.gd = gd;
        lanes.push_back(make_bcn_verdict_lane(p, level));
        scalar.push_back(numeric_strong_stability(p, {.level = level}));
      }
    }
    const auto batch = batch_numeric_verdicts(lanes);
    ASSERT_EQ(batch.size(), scalar.size());
    int stable = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].strongly_stable, scalar[i].strongly_stable)
          << "cell " << i << " level " << static_cast<int>(level);
      stable += batch[i].strongly_stable ? 1 : 0;
      // The overshoot itself must track the scalar run closely, not just
      // land on the right side of the threshold.
      const double scale = lanes[i].buffer;
      EXPECT_NEAR(batch[i].max_x, scalar[i].max_x, 0.01 * scale);
    }
    // Guard against a vacuous pass (all cells on one side).
    EXPECT_GT(stable, 0);
    EXPECT_LT(stable, static_cast<int>(batch.size()));
  }
}

TEST(BatchVerdictTest, EveryLaneLawMechanismAgreesWithScalarVerdict) {
  for (const MechanismInfo& info : mechanism_registry()) {
    if (!info.has_fluid) continue;
    MechanismConfig config;
    const auto [g1, g2] = info.default_gains(config);
    // Probe the default gains plus off-default corners of each axis.
    const double f1[] = {0.25, 1.0, 4.0};
    const double f2[] = {0.25, 1.0, 4.0};
    int compared = 0;
    for (const double a : f1) {
      for (const double b : f2) {
        info.set_gains(config, g1 * a, g2 * b);
        const auto mech = make_fluid_mechanism(info.name, config);
        ASSERT_NE(mech, nullptr) << info.name;
        const MechanismRunOptions options{.level = ModelLevel::Nonlinear,
                                          .duration = 0.02,
                                          .convergence_tol = 1e-8};
        const auto lane = make_mechanism_verdict_lane(*mech, options);
        if (!lane) continue;  // no affine lane law (not under test here)
        const auto batch = batch_numeric_verdicts({*lane});
        const auto scalar = mechanism_numeric_verdict(*mech, options);
        EXPECT_EQ(batch[0].strongly_stable, scalar.strongly_stable)
            << info.name << " gains " << g1 * a << ", " << g2 * b;
        ++compared;
      }
    }
    // Every fluid mechanism currently exposes a lane law; a silent
    // blanket opt-out would hollow this test out.
    EXPECT_EQ(compared, 9) << info.name;
  }
}

TEST(BatchVerdictTest, ClippedLevelHasNoLane) {
  const auto mech = make_fluid_mechanism("bcn");
  ASSERT_NE(mech, nullptr);
  EXPECT_FALSE(
      make_mechanism_verdict_lane(*mech, {.level = ModelLevel::Clipped}));
  EXPECT_TRUE(
      make_mechanism_verdict_lane(*mech, {.level = ModelLevel::Nonlinear}));
}

TEST(BatchVerdictTest, ThreadCountIsInvisible) {
  const auto gis = analysis::logspace(0.25, 16.0, 9);
  const auto gds = analysis::logspace(1.0 / 512.0, 0.25, 9);
  std::vector<VerdictLane> lanes;
  for (const double gi : gis) {
    for (const double gd : gds) {
      BcnParams p = BcnParams::standard_draft();
      p.gi = gi;
      p.gd = gd;
      lanes.push_back(make_bcn_verdict_lane(p, ModelLevel::Nonlinear));
    }
  }
  const auto serial = batch_numeric_verdicts(lanes, {.threads = 1});
  const auto parallel = batch_numeric_verdicts(lanes, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bitwise, not approximate: slicing must not change lane arithmetic.
    EXPECT_EQ(serial[i].max_x, parallel[i].max_x) << i;
    EXPECT_EQ(serial[i].min_x, parallel[i].min_x) << i;
    EXPECT_EQ(serial[i].strongly_stable, parallel[i].strongly_stable) << i;
  }
}

}  // namespace
}  // namespace bcn::core
