// Parameter factories covering every paper case, shared by the core and
// integration test suites.
#pragma once

#include "core/bcn_params.h"

namespace bcn::core::testing {

// Case 1 (spiral/spiral): the paper's standard-draft configuration.
inline BcnParams case1_params() { return BcnParams::standard_draft(); }

// A compact dyadic base: k = w/(pm C) = 1/(0.5 * 2048) = 2^-10 exactly, so
// the spiral threshold 4/k^2 = 2^22 is exact in floating point.
inline BcnParams dyadic_base() {
  BcnParams p;
  p.capacity = 2048.0;
  p.w = 1.0;
  p.pm = 0.5;
  p.q0 = 16.0;
  p.buffer = 64.0;
  p.qsc = 32.0;
  p.num_sources = 4.0;
  p.ru = 4096.0;
  p.gi = 1.0;     // a = Ru Gi N = 2^14 << 2^22: spiral
  p.gd = 1.0;     // b C = 2^11 << 2^22: spiral
  p.init_rate = 0.0;
  return p;
}

// Case 2 (node increase / spiral decrease): a > 4/k^2, b C < 4/k^2.
inline BcnParams case2_params() {
  BcnParams p = dyadic_base();
  p.gi = 4096.0;  // a = 2^26 > 2^22
  p.gd = 1.0;     // b C = 2^11 < 2^22
  return p;
}

// Case 3 (spiral increase / node decrease): a < 4/k^2, b C > 4/k^2.
inline BcnParams case3_params() {
  BcnParams p = dyadic_base();
  p.gi = 1.0;       // a = 2^14 < 2^22
  p.gd = 8192.0;    // b C = 2^24 > 2^22
  return p;
}

// Case 4 (node/node).
inline BcnParams case4_params() {
  BcnParams p = dyadic_base();
  p.gi = 4096.0;  // a = 2^26
  p.gd = 8192.0;  // b C = 2^24
  return p;
}

// Case 5 boundaries, exact in floating point thanks to the dyadic base.
inline BcnParams case5_increase_boundary() {
  BcnParams p = dyadic_base();
  p.gi = 256.0;  // a = 2^22 = 4/k^2 exactly
  p.gd = 1.0;
  return p;
}

inline BcnParams case5_decrease_boundary() {
  BcnParams p = dyadic_base();
  p.gi = 1.0;
  p.gd = 2048.0;  // b C = 2^22 exactly
  return p;
}

}  // namespace bcn::core::testing
