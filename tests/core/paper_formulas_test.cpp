#include "core/paper_formulas.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/analytic_tracer.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(PaperCase1ChainTest, MatchesAnalyticTracerOnStandardDraft) {
  const BcnParams p = case1_params();
  const auto chain = paper_case1_chain(p);
  ASSERT_TRUE(chain);
  const auto trace = AnalyticTracer(p).trace();
  ASSERT_GE(trace.rounds.size(), 3u);

  // T_i^1 is the first round duration.
  ASSERT_TRUE(trace.rounds[0].duration);
  EXPECT_NEAR(chain->t_i1, *trace.rounds[0].duration, 1e-9 * chain->t_i1);
  // The first crossing point.
  ASSERT_TRUE(trace.rounds[0].z_end);
  EXPECT_NEAR(chain->x_d1, trace.rounds[0].z_end->x,
              1e-6 * std::abs(chain->x_d1));
  EXPECT_NEAR(chain->y_d1, trace.rounds[0].z_end->y,
              1e-9 * std::abs(chain->y_d1));
  // max1 / min1 against the stitched extrema.
  EXPECT_NEAR(chain->max1, trace.max_x, 1e-6 * chain->max1);
  EXPECT_NEAR(chain->min1, trace.min_x, 1e-4 * std::abs(chain->min1));
}

TEST(PaperCase1ChainTest, Td1IsHalfRotationOfDecreaseSpiral) {
  const BcnParams p = case1_params();
  const auto chain = paper_case1_chain(p);
  ASSERT_TRUE(chain);
  // T_d^1 = pi / beta_d (the paper writes 2 pi / sqrt(4bC - (kbC)^2)).
  EXPECT_NEAR(chain->t_d1, M_PI / chain->beta_d, 1e-12);
  const auto trace = AnalyticTracer(p).trace();
  ASSERT_TRUE(trace.rounds[1].duration);
  EXPECT_NEAR(chain->t_d1, *trace.rounds[1].duration,
              1e-9 * chain->t_d1);
}

TEST(PaperCase1ChainTest, RandomizedAgreementWithTracer) {
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    BcnParams p = case1_params();
    p.gi = rng.uniform(0.2, 30.0);
    p.gd = rng.uniform(1.0 / 1024.0, 1.0 / 8.0);
    p.num_sources = std::floor(rng.uniform(2.0, 200.0));
    p.w = rng.uniform(0.5, 8.0);
    p.pm = rng.uniform(0.002, 0.1);
    if (classify_case(p).paper_case != PaperCase::Case1) continue;
    const auto chain = paper_case1_chain(p);
    ASSERT_TRUE(chain) << p.describe();
    const auto trace = AnalyticTracer(p).trace();
    EXPECT_NEAR(chain->max1, trace.max_x, 1e-5 * chain->max1)
        << p.describe();
    EXPECT_NEAR(chain->min1, trace.min_x, 1e-4 * std::abs(chain->min1))
        << p.describe();
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(PaperCase1ChainTest, RejectsNonCase1) {
  EXPECT_FALSE(paper_case1_chain(case2_params()));
  EXPECT_FALSE(paper_case1_chain(case4_params()));
}

TEST(PaperCase2MaxTest, MatchesAnalyticTracer) {
  const BcnParams p = case2_params();
  const auto max2 = paper_case2_max(p);
  ASSERT_TRUE(max2);
  const auto trace = AnalyticTracer(p).trace();
  EXPECT_NEAR(*max2, trace.max_x, 1e-6 * *max2);
}

TEST(PaperCase2MaxTest, RandomizedAgreementWithTracer) {
  Rng rng(11);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    BcnParams p = case2_params();
    p.gi = rng.uniform(4097.0, 1e5);  // keep a above the dyadic threshold
    p.gd = rng.uniform(0.05, 100.0);  // keep b C below it
    if (classify_case(p).paper_case != PaperCase::Case2) continue;
    const auto max2 = paper_case2_max(p);
    ASSERT_TRUE(max2) << p.describe();
    const auto trace = AnalyticTracer(p).trace();
    EXPECT_NEAR(*max2, trace.max_x, 1e-4 * *max2) << p.describe();
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(PaperCase2MaxTest, RejectsNonCase2) {
  EXPECT_FALSE(paper_case2_max(case1_params()));
  EXPECT_FALSE(paper_case2_max(case3_params()));
}

TEST(Theorem1BoundTest, DominatesCase1Extrema) {
  // Theorem 1's proof: max1 < sqrt(a/(bC)) q0 and min1 > -q0.
  Rng rng(13);
  int checked = 0;
  for (int trial = 0; trial < 80; ++trial) {
    BcnParams p = case1_params();
    p.gi = rng.uniform(0.2, 50.0);
    p.gd = rng.uniform(1.0 / 2048.0, 1.0 / 4.0);
    p.num_sources = std::floor(rng.uniform(2.0, 500.0));
    if (classify_case(p).paper_case != PaperCase::Case1) continue;
    const auto chain = paper_case1_chain(p);
    ASSERT_TRUE(chain);
    const double bound = theorem1_overshoot_bound(p);
    EXPECT_LT(chain->max1, bound) << p.describe();
    EXPECT_GT(chain->min1, -p.q0) << p.describe();
    ++checked;
  }
  EXPECT_GE(checked, 40);
}

TEST(Theorem1BoundTest, DominatesCase2Max) {
  Rng rng(17);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    BcnParams p = case2_params();
    p.gi = rng.uniform(4097.0, 1e6);
    p.gd = rng.uniform(0.05, 100.0);
    if (classify_case(p).paper_case != PaperCase::Case2) continue;
    const auto max2 = paper_case2_max(p);
    ASSERT_TRUE(max2);
    EXPECT_LT(*max2, theorem1_overshoot_bound(p)) << p.describe();
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

TEST(Theorem1BoundTest, MatchesRequiredBufferDecomposition) {
  const BcnParams p = case1_params();
  EXPECT_NEAR(p.theorem1_required_buffer(),
              p.q0 + theorem1_overshoot_bound(p), 1e-6);
}

}  // namespace
}  // namespace bcn::core
