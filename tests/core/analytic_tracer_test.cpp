#include "core/analytic_tracer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_params.h"

namespace bcn::core {
namespace {

using namespace testing;

TEST(AnalyticTracerTest, StandardDraftFirstRound) {
  const BcnParams p = case1_params();
  const AnalyticTracer tracer(p);
  const auto trace = tracer.trace();
  ASSERT_GE(trace.rounds.size(), 3u);
  const auto& r0 = trace.rounds[0];
  EXPECT_EQ(r0.region, Region::Increase);
  EXPECT_EQ(r0.kind, control::SolutionKind::Spiral);
  EXPECT_EQ(r0.z_start, (Vec2{-p.q0, 0.0}));
  ASSERT_TRUE(r0.duration);
  // The first increase round must end on the switching line.
  ASSERT_TRUE(r0.z_end);
  EXPECT_NEAR(r0.z_end->x + p.k() * r0.z_end->y, 0.0,
              1e-6 * std::abs(r0.z_end->y));
  // No interior extremum in round 1 (x rises monotonically from -q0).
  EXPECT_FALSE(r0.extremum.has_value());
}

TEST(AnalyticTracerTest, RegionsAlternate) {
  const auto trace = AnalyticTracer(case1_params()).trace();
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    EXPECT_NE(trace.rounds[i].region, trace.rounds[i - 1].region);
  }
}

TEST(AnalyticTracerTest, RoundsChainContinuously) {
  const auto trace = AnalyticTracer(case1_params()).trace();
  for (std::size_t i = 1; i < trace.rounds.size(); ++i) {
    const auto& prev = trace.rounds[i - 1];
    const auto& cur = trace.rounds[i];
    ASSERT_TRUE(prev.z_end);
    EXPECT_EQ(cur.z_start, *prev.z_end);
    ASSERT_TRUE(prev.duration);
    EXPECT_NEAR(cur.t_start, prev.t_start + *prev.duration, 1e-12);
  }
}

TEST(AnalyticTracerTest, Case1ExtremaAlternate) {
  const auto trace = AnalyticTracer(case1_params()).trace();
  // Round 1 (decrease) holds the global max; round 2 (increase) the min.
  ASSERT_GE(trace.rounds.size(), 3u);
  ASSERT_TRUE(trace.rounds[1].extremum);
  EXPECT_TRUE(trace.rounds[1].extremum->is_maximum);
  EXPECT_NEAR(trace.rounds[1].extremum->value, trace.max_x, 1e-9 * trace.max_x);
  ASSERT_TRUE(trace.rounds[2].extremum);
  EXPECT_FALSE(trace.rounds[2].extremum->is_maximum);
  EXPECT_NEAR(trace.rounds[2].extremum->value, trace.min_x,
              1e-9 * std::abs(trace.min_x));
}

TEST(AnalyticTracerTest, ContractionRatioBelowOneForLinearizedSystem) {
  // The switched linearized system always contracts (both subsystem
  // segments are stable), so limit cycles are impossible at this model
  // level -- a key structural fact the Poincare analysis relies on.
  const auto trace = AnalyticTracer(case1_params()).trace();
  const auto ratio = trace.contraction_ratio();
  ASSERT_TRUE(ratio);
  EXPECT_LT(*ratio, 1.0);
  EXPECT_GT(*ratio, 0.0);
}

TEST(AnalyticTracerTest, ContractionRatioPropertyAcrossRandomCase1Params) {
  Rng rng(2024);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    BcnParams p = case1_params();
    p.gi = rng.uniform(0.5, 20.0);
    p.gd = rng.uniform(1.0 / 512.0, 1.0 / 16.0);
    p.num_sources = std::floor(rng.uniform(2.0, 100.0));
    if (classify_case(p).paper_case != PaperCase::Case1) continue;
    const auto trace = AnalyticTracer(p).trace();
    const auto ratio = trace.contraction_ratio();
    if (!ratio) continue;
    EXPECT_LT(*ratio, 1.0) << p.describe();
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

TEST(AnalyticTracerTest, Case3TerminatesInsideDecreaseRegion) {
  const auto trace = AnalyticTracer(case3_params()).trace();
  EXPECT_TRUE(trace.terminated_in_region);
  EXPECT_TRUE(trace.converged);
  ASSERT_GE(trace.rounds.size(), 2u);
  EXPECT_EQ(trace.rounds.back().region, Region::Decrease);
  EXPECT_FALSE(trace.rounds.back().duration.has_value());
  // Paper Case 3: the queue never overshoots the reference q0 (max_x <= 0
  // up to the crossing point's tiny positive x).
  EXPECT_LT(trace.max_x, 0.05 * case3_params().q0);
}

TEST(AnalyticTracerTest, Case4TerminatesAndIsMonotoneish) {
  const auto trace = AnalyticTracer(case4_params()).trace();
  EXPECT_TRUE(trace.converged);
  EXPECT_TRUE(trace.terminated_in_region);
  EXPECT_GT(trace.min_x, -case4_params().q0);
}

TEST(AnalyticTracerTest, TraceFromCustomPoint) {
  const BcnParams p = case1_params();
  const Vec2 z0{0.5 * p.q0, 2e9};  // decrease region
  const auto trace = AnalyticTracer(p).trace_from(z0);
  ASSERT_FALSE(trace.rounds.empty());
  EXPECT_EQ(trace.rounds[0].region, Region::Decrease);
  EXPECT_EQ(trace.rounds[0].z_start, z0);
}

TEST(AnalyticTracerTest, ConvergenceStopsTracing) {
  const BcnParams p = case1_params();
  AnalyticTraceOptions opts;
  opts.convergence_tol = 1e-3;  // loose: stops after a few rounds
  const auto loose = AnalyticTracer(p).trace(opts);
  opts.convergence_tol = 1e-9;
  const auto tight = AnalyticTracer(p).trace(opts);
  EXPECT_LE(loose.rounds.size(), tight.rounds.size());
}

TEST(AnalyticTracerTest, SampleCoversAllRounds) {
  const BcnParams p = case1_params();
  const AnalyticTracer tracer(p);
  AnalyticTraceOptions opts;
  opts.max_rounds = 6;
  const auto trace = tracer.trace(opts);
  const auto sampled = tracer.sample(trace, 50, 1e-4);
  ASSERT_FALSE(sampled.empty());
  EXPECT_EQ(sampled.size(), 50u * trace.rounds.size());
  EXPECT_NEAR(sampled.front().z.x, -p.q0, 1e-9 * p.q0);
  EXPECT_NEAR(sampled.front().z.y, 0.0, 1e-6 * p.capacity * 1e-3);
  // Samples are time-ordered.
  for (std::size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_GE(sampled[i].t, sampled[i - 1].t - 1e-15);
  }
}

}  // namespace
}  // namespace bcn::core
