#include "core/classifier.h"

#include <gtest/gtest.h>

#include "test_params.h"

namespace bcn::core {
namespace {

using control::SolutionKind;
using namespace testing;

TEST(ClassifierTest, StandardDraftIsCase1) {
  const auto c = classify_case(case1_params());
  EXPECT_EQ(c.paper_case, PaperCase::Case1);
  EXPECT_EQ(c.increase_kind, SolutionKind::Spiral);
  EXPECT_EQ(c.decrease_kind, SolutionKind::Spiral);
  EXPECT_LT(c.increase_discriminant, 0.0);
  EXPECT_LT(c.decrease_discriminant, 0.0);
}

TEST(ClassifierTest, Case2NodeIncrease) {
  const auto c = classify_case(case2_params());
  EXPECT_EQ(c.paper_case, PaperCase::Case2);
  EXPECT_EQ(c.increase_kind, SolutionKind::Node);
  EXPECT_EQ(c.decrease_kind, SolutionKind::Spiral);
}

TEST(ClassifierTest, Case3NodeDecrease) {
  const auto c = classify_case(case3_params());
  EXPECT_EQ(c.paper_case, PaperCase::Case3);
  EXPECT_EQ(c.increase_kind, SolutionKind::Spiral);
  EXPECT_EQ(c.decrease_kind, SolutionKind::Node);
}

TEST(ClassifierTest, Case4BothNode) {
  const auto c = classify_case(case4_params());
  EXPECT_EQ(c.paper_case, PaperCase::Case4);
  EXPECT_EQ(c.increase_kind, SolutionKind::Node);
  EXPECT_EQ(c.decrease_kind, SolutionKind::Node);
}

TEST(ClassifierTest, Case5ExactBoundaries) {
  const auto ci = classify_case(case5_increase_boundary());
  EXPECT_EQ(ci.paper_case, PaperCase::Case5);
  EXPECT_EQ(ci.increase_kind, SolutionKind::Degenerate);
  EXPECT_EQ(ci.increase_discriminant, 0.0);

  const auto cd = classify_case(case5_decrease_boundary());
  EXPECT_EQ(cd.paper_case, PaperCase::Case5);
  EXPECT_EQ(cd.decrease_kind, SolutionKind::Degenerate);
  EXPECT_EQ(cd.decrease_discriminant, 0.0);
}

TEST(ClassifierTest, BoundaryToleranceWidensCase5) {
  BcnParams p = case5_increase_boundary();
  p.gi *= 1.0 + 1e-9;  // just off the boundary
  EXPECT_EQ(classify_case(p).paper_case, PaperCase::Case2);
  EXPECT_EQ(classify_case(p, 1e-6).paper_case, PaperCase::Case5);
}

TEST(ClassifierTest, SubsystemsMatchParams) {
  const BcnParams p = case1_params();
  EXPECT_DOUBLE_EQ(increase_subsystem(p).m(), p.increase_m());
  EXPECT_DOUBLE_EQ(increase_subsystem(p).n(), p.increase_n());
  EXPECT_DOUBLE_EQ(decrease_subsystem(p).m(), p.decrease_m());
  EXPECT_DOUBLE_EQ(decrease_subsystem(p).n(), p.decrease_n());
}

TEST(ClassifierTest, PaperTextLambdaBoundHolds) {
  // Paper Section IV.C claims -1/k > lambda2 > lambda1 whenever the roots
  // are real; verify across the node-regime factories.
  for (const BcnParams& p : {case2_params(), case4_params()}) {
    const auto eig = increase_subsystem(p).eigenvalues();
    EXPECT_LT(eig[1].real(), -1.0 / p.k());
    EXPECT_LT(eig[0].real(), eig[1].real() + 1e-30);
  }
  const auto eig = decrease_subsystem(case4_params()).eigenvalues();
  EXPECT_LT(eig[1].real(), -1.0 / case4_params().k());
}

TEST(ClassifierTest, ToStringDistinct) {
  EXPECT_NE(to_string(PaperCase::Case1), to_string(PaperCase::Case2));
  EXPECT_FALSE(to_string(PaperCase::Case5).empty());
}

}  // namespace
}  // namespace bcn::core
