#include "core/multiflow_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulate.h"

namespace bcn::core {
namespace {

BcnParams gentle_params() {
  BcnParams p = BcnParams::standard_draft();
  p.num_sources = 5;
  p.pm = 0.2;
  p.gi = 0.5;
  p.buffer = 30e6;
  p.qsc = 28e6;
  return p;
}

TEST(MultiflowTest, HomogeneousCaseMatchesAggregateModel) {
  // Equal initial rates: the per-flow laws sum to eq. (8), so the
  // multiflow queue must match the 2-D nonlinear fluid model.
  const BcnParams p = gentle_params();
  MultiflowOptions opts;
  opts.initial_rates.assign(5, p.capacity / 5.0);
  opts.duration = 0.01;
  const auto multi = simulate_multiflow(p, opts);

  FluidRunOptions fopts;
  fopts.duration = 0.01;
  const auto agg = simulate_fluid(FluidModel(p, ModelLevel::Nonlinear), fopts);

  // Compare the queue peak (the aggregate model reports x = q - q0).
  EXPECT_NEAR(multi.max_queue, agg.max_x + p.q0,
              0.02 * (agg.max_x + p.q0));
  // Rates stay exactly equal (symmetry is preserved by the dynamics).
  EXPECT_NEAR(multi.final_spread, 0.0, 1e-9);
}

TEST(MultiflowTest, HeterogeneousRatesConvergeTowardFairness) {
  // The Chiu-Jain AIMD argument in the fluid setting: additive increase
  // is equal, multiplicative decrease is proportional, so the spread
  // shrinks on every decrease episode.
  const BcnParams p = gentle_params();
  MultiflowOptions opts;
  opts.initial_rates = {0.5e9, 1.0e9, 2.0e9, 3.0e9, 3.5e9};
  opts.duration = 0.2;
  opts.record_interval = 1e-3;
  const auto run = simulate_multiflow(p, opts);
  EXPECT_GT(run.initial_spread, 1.0);
  EXPECT_LT(run.final_spread, 0.35 * run.initial_spread);
  // Ordering is preserved (trajectories cannot cross: equal increase,
  // proportional decrease keep r_i < r_j invariant).
  for (std::size_t i = 0; i + 1 < run.final_rates.size(); ++i) {
    EXPECT_LE(run.final_rates[i], run.final_rates[i + 1] * (1.0 + 1e-9));
  }
}

TEST(MultiflowTest, AggregateSettlesAtCapacity) {
  const BcnParams p = gentle_params();
  MultiflowOptions opts;
  opts.initial_rates = {0.5e9, 1.5e9, 2.5e9, 3.0e9, 4.0e9};
  opts.duration = 0.1;
  const auto run = simulate_multiflow(p, opts);
  double aggregate = 0.0;
  for (const double r : run.final_rates) aggregate += r;
  EXPECT_NEAR(aggregate, p.capacity, 0.15 * p.capacity);
  // Queue ends near the reference.
  EXPECT_NEAR(run.trace.back().queue, p.q0, 0.5 * p.q0);
}

TEST(MultiflowTest, QueueNeverNegativeAndRatesNonNegative) {
  const BcnParams p = gentle_params();
  MultiflowOptions opts;
  opts.initial_rates = {0.0, 0.0, 8e9};  // extreme asymmetry
  opts.duration = 0.05;
  const auto run = simulate_multiflow(p, opts);
  for (const auto& sample : run.trace) {
    EXPECT_GE(sample.queue, 0.0);
    for (const double r : sample.rates) EXPECT_GE(r, 0.0);
  }
}

TEST(MultiflowTest, FlowCountScalesAggregateGain) {
  // More flows -> larger effective a = Ru Gi N -> larger overshoot
  // (Theorem 1's sqrt(N) scaling, reproduced by flow count alone).
  const BcnParams p = gentle_params();
  auto peak_for = [&](std::size_t n) {
    MultiflowOptions opts;
    opts.initial_rates.assign(n, p.capacity / static_cast<double>(n));
    opts.duration = 0.02;
    return simulate_multiflow(p, opts).max_queue;
  };
  EXPECT_GT(peak_for(20), peak_for(5));
}

}  // namespace
}  // namespace bcn::core
