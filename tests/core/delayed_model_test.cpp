#include "core/delayed_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/simulate.h"
#include "test_params.h"

namespace bcn::core {
namespace {

BcnParams stable_draft() {
  BcnParams p = BcnParams::standard_draft();
  p.buffer = 14e6;
  p.qsc = 13.5e6;
  return p;
}

TEST(DelayedModelTest, ZeroDelayMatchesUndelayedFluidModel) {
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.delay = 0.0;
  opts.duration = 1e-3;
  const auto delayed = simulate_delayed(p, opts);

  FluidRunOptions fopts;
  fopts.duration = 1e-3;
  const auto base =
      simulate_fluid(FluidModel(p, ModelLevel::Nonlinear), fopts);
  EXPECT_NEAR(delayed.max_x, base.max_x, 0.01 * base.max_x);
}

TEST(DelayedModelTest, TinyDelayConvergesToUndelayed) {
  const BcnParams p = stable_draft();
  FluidRunOptions fopts;
  fopts.duration = 1e-3;
  const auto base =
      simulate_fluid(FluidModel(p, ModelLevel::Nonlinear), fopts);
  DelayedRunOptions opts;
  opts.delay = 1e-9;
  opts.duration = 1e-3;
  const auto tiny = simulate_delayed(p, opts);
  EXPECT_NEAR(tiny.max_x, base.max_x, 0.01 * base.max_x);
}

TEST(DelayedModelTest, PaperDelayAssumptionHolds) {
  // The paper's dropped 0.5 us propagation delay changes the transient
  // peak by only a couple of percent -- the assumption is sound.
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.duration = 1e-3;
  opts.delay = 0.0;
  const double base = simulate_delayed(p, opts).max_x;
  opts.delay = 0.5e-6;
  const double with_delay = simulate_delayed(p, opts).max_x;
  EXPECT_LT(std::abs(with_delay - base) / base, 0.05);
}

TEST(DelayedModelTest, OvershootGrowsWithDelay) {
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.duration = 2e-3;
  double prev = 0.0;
  for (const double tau : {0.0, 5e-6, 20e-6, 50e-6}) {
    opts.delay = tau;
    const double peak = simulate_delayed(p, opts).max_x;
    EXPECT_GT(peak, prev) << "tau=" << tau;
    prev = peak;
  }
}

TEST(DelayedModelTest, LargeDelayDiverges) {
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.delay = 200e-6;
  opts.duration = 5e-3;
  const auto run = simulate_delayed(p, opts);
  EXPECT_TRUE(run.diverged);
}

TEST(DelayedModelTest, CriticalDelayBracketsBehavior) {
  const BcnParams p = stable_draft();
  const auto crit = critical_delay(p, 500e-6);
  ASSERT_TRUE(crit);
  EXPECT_GT(*crit, 1e-6);    // far above the physical 0.5 us
  EXPECT_LT(*crit, 100e-6);

  DelayedRunOptions opts;
  opts.duration = 5e-3;
  opts.delay = *crit * 0.8;
  const auto below = simulate_delayed(p, opts);
  EXPECT_LT(below.max_x, p.buffer - p.q0);
  opts.delay = *crit * 1.25;
  const auto above = simulate_delayed(p, opts);
  EXPECT_TRUE(above.diverged || above.max_x >= p.buffer - p.q0);
}

TEST(DelayedModelTest, CriticalDelayNulloptWhenAlreadyUnstable) {
  // Standard draft with the tiny 5 Mbit buffer is unstable at tau = 0.
  EXPECT_FALSE(critical_delay(BcnParams::standard_draft(), 100e-6));
}

TEST(DelayedModelTest, CriticalDelayNulloptWhenAlwaysStable) {
  BcnParams p = stable_draft();
  EXPECT_FALSE(critical_delay(p, 1e-9));  // trivially stable on the range
}

TEST(DelayedModelTest, LinearizedOptionUsesLinearDecrease) {
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.duration = 1e-3;
  opts.delay = 1e-6;
  opts.nonlinear = false;
  const double lin_peak = simulate_delayed(p, opts).max_x;
  opts.nonlinear = true;
  const double non_peak = simulate_delayed(p, opts).max_x;
  // Linearized overshoot is much larger (same relation as undelayed).
  EXPECT_GT(lin_peak, 2.0 * non_peak);
}

TEST(DelayedModelTest, CustomInitialPointRespected) {
  const BcnParams p = stable_draft();
  DelayedRunOptions opts;
  opts.duration = 1e-4;
  opts.z0 = Vec2{0.0, 1e9};
  const auto run = simulate_delayed(p, opts);
  EXPECT_EQ(run.trajectory.front().z, (Vec2{0.0, 1e9}));
}

}  // namespace
}  // namespace bcn::core
