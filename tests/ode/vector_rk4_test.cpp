#include "ode/vector_rk4.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

// Coupled 3-D linear system with known solution: independent decays.
const VectorRhs kDecay3 = [](double, const std::vector<double>& y,
                             std::vector<double>& dy) {
  dy[0] = -y[0];
  dy[1] = -2.0 * y[1];
  dy[2] = -0.5 * y[2];
};

TEST(VectorRk4Test, MatchesExactSolution) {
  std::vector<double> y{1.0, 1.0, 2.0};
  vector_rk4_integrate(kDecay3, 0.0, 1.0, 0.01, y);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-8);
  EXPECT_NEAR(y[1], std::exp(-2.0), 1e-8);
  EXPECT_NEAR(y[2], 2.0 * std::exp(-0.5), 1e-8);
}

TEST(VectorRk4Test, FourthOrderConvergence) {
  auto err_at = [](double h) {
    std::vector<double> y{1.0, 1.0, 2.0};
    vector_rk4_integrate(kDecay3, 0.0, 1.0, h, y);
    return std::abs(y[1] - std::exp(-2.0));
  };
  const double coarse = err_at(0.04);
  const double fine = err_at(0.02);
  EXPECT_NEAR(coarse / fine, 16.0, 5.0);
}

TEST(VectorRk4Test, ObserverSeesEveryStep) {
  std::vector<double> y{1.0, 0.0, 0.0};
  int calls = 0;
  double first_t = -1.0;
  double last_t = 0.0;
  vector_rk4_integrate(
      kDecay3, 0.0, 1.0, 0.25, y,
      [&](double t, const std::vector<double>& state) {
        if (calls == 0) first_t = t;
        ++calls;
        last_t = t;
        EXPECT_EQ(state.size(), 3u);
      });
  // The initial state counts: 1 observation at t0 plus one per step.
  // (Regression: the t0 observation used to be skipped, so recorded
  // timelines started one step late.)
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(first_t, 0.0);
  EXPECT_NEAR(last_t, 1.0, 1e-12);
}

TEST(VectorRk4Test, LastStepShortenedToLandOnT1) {
  std::vector<double> y{1.0, 1.0, 1.0};
  double final_t = 0.0;
  vector_rk4_integrate(kDecay3, 0.0, 1.0, 0.3, y,
                       [&](double t, const std::vector<double>&) {
                         final_t = t;
                       });
  EXPECT_NEAR(final_t, 1.0, 1e-12);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-4);  // coarse h = 0.3
}

TEST(VectorRk4Test, TimeDependentRhs) {
  // dy/dt = [t]; y(1) = 0.5 from y(0) = 0.
  const VectorRhs f = [](double t, const std::vector<double>&,
                         std::vector<double>& dy) { dy[0] = t; };
  std::vector<double> y{0.0};
  vector_rk4_integrate(f, 0.0, 1.0, 0.1, y);
  EXPECT_NEAR(y[0], 0.5, 1e-12);
}

TEST(VectorRk4Test, HighDimensionalState) {
  // 100 coupled oscillator pairs: energy of each pair conserved by RK4 to
  // high accuracy over one period.
  const std::size_t pairs = 100;
  const VectorRhs f = [&](double, const std::vector<double>& y,
                          std::vector<double>& dy) {
    for (std::size_t i = 0; i < pairs; ++i) {
      dy[2 * i] = y[2 * i + 1];
      dy[2 * i + 1] = -y[2 * i];
    }
  };
  std::vector<double> y(2 * pairs);
  for (std::size_t i = 0; i < pairs; ++i) y[2 * i] = 1.0;
  vector_rk4_integrate(f, 0.0, 2.0 * M_PI, 0.01, y);
  for (std::size_t i = 0; i < pairs; ++i) {
    EXPECT_NEAR(y[2 * i], 1.0, 1e-7);
    EXPECT_NEAR(y[2 * i + 1], 0.0, 1e-7);
  }
}

}  // namespace
}  // namespace bcn::ode
