#include "ode/steppers.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

// dz/dt = (-z.x, -2 z.y): exact solution (e^{-t}, e^{-2t}).
const Rhs kDecay = [](double, Vec2 z) -> Vec2 { return {-z.x, -2.0 * z.y}; };

// Harmonic oscillator x'' = -x as a system; energy x^2 + y^2 conserved.
const Rhs kOscillator = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };

double decay_error(Vec2 (*step)(const Rhs&, double, Vec2, double), double h) {
  Vec2 z{1.0, 1.0};
  double t = 0.0;
  while (t < 1.0 - 1e-12) {
    z = step(kDecay, t, z, h);
    t += h;
  }
  return std::abs(z.x - std::exp(-1.0)) + std::abs(z.y - std::exp(-2.0));
}

TEST(SteppersTest, EulerFirstOrderConvergence) {
  const double e1 = decay_error(&euler_step, 0.01);
  const double e2 = decay_error(&euler_step, 0.005);
  EXPECT_NEAR(e1 / e2, 2.0, 0.3);  // halving h halves the error
}

TEST(SteppersTest, HeunSecondOrderConvergence) {
  const double e1 = decay_error(&heun_step, 0.02);
  const double e2 = decay_error(&heun_step, 0.01);
  EXPECT_NEAR(e1 / e2, 4.0, 0.8);
}

TEST(SteppersTest, Rk4FourthOrderConvergence) {
  const double e1 = decay_error(&rk4_step, 0.04);
  const double e2 = decay_error(&rk4_step, 0.02);
  EXPECT_NEAR(e1 / e2, 16.0, 4.0);
}

TEST(SteppersTest, Rk4AccurateOnOscillator) {
  Vec2 z{1.0, 0.0};
  const int n = 628;
  const double h = 6.283185307179586 / n;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    z = rk4_step(kOscillator, t, z, h);
    t += h;
  }
  // One full period returns to the start.
  EXPECT_NEAR(z.x, 1.0, 1e-8);
  EXPECT_NEAR(z.y, 0.0, 1e-8);
}

TEST(SteppersTest, ZeroStepIsIdentity) {
  const Vec2 z{2.0, -3.0};
  EXPECT_EQ(euler_step(kDecay, 0.0, z, 0.0), z);
  EXPECT_EQ(heun_step(kDecay, 0.0, z, 0.0), z);
  EXPECT_EQ(rk4_step(kDecay, 0.0, z, 0.0), z);
}

TEST(SteppersTest, TimeDependentRhsUsesStageTimes) {
  // dz/dt = (t, 0): exact x(t) = t^2/2.  Euler lags, RK4 is exact.
  const Rhs f = [](double t, Vec2) -> Vec2 { return {t, 0.0}; };
  Vec2 z{0.0, 0.0};
  z = rk4_step(f, 0.0, z, 1.0);
  EXPECT_NEAR(z.x, 0.5, 1e-12);
}

}  // namespace
}  // namespace bcn::ode
