// SoA batched switched-system integrator: analytic accuracy, crossing
// localization, retirement/compaction bookkeeping, and the
// zero-steady-state-allocation contract.
#include "ode/batch.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

// Global allocation counter for the zero-allocation assertions below
// (same idiom as the event-heap tests: counting is toggled only around
// the region under test so gtest's own allocations never pollute it).
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace bcn::ode {
namespace {

// An undamped harmonic oscillator dx = y, dy = -omega^2 x expressed in
// the lane family: sigma = -(omega^2 x), dy = 1 * sigma.  Single law, so
// sigma's sign flips are not switching events.
BatchLane oscillator_lane(double omega, double x0, double t_end, double dt) {
  BatchLane lane;
  lane.law.sx = omega * omega;
  lane.law.sy = 0.0;
  lane.law.g0[0] = lane.law.g0[1] = 1.0;
  lane.law.switched = false;
  lane.x0 = x0;
  lane.y0 = 0.0;
  lane.t_end = t_end;
  lane.dt[0] = lane.dt[1] = dt;
  return lane;
}

TEST(BatchIntegratorTest, OscillatorAmplitudeMatchesAnalytic) {
  // x(t) = -A cos(omega t): max over the run is A, min is -A.  The
  // discrete sample set can miss the crest by at most (omega dt)^2/2 A.
  const double omega = 2.0 * std::numbers::pi;
  BatchIntegrator batch;
  batch.reset({oscillator_lane(omega, -3.0, 2.0, 1e-3)});
  batch.run_to_completion();
  const LaneResult& r = batch.results()[0];
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.converged);
  EXPECT_NEAR(r.max_x, 3.0, 1e-4);
  EXPECT_NEAR(r.min_x, -3.0, 1e-4);
  // Single-law lanes never report crossings even though sigma changes
  // sign twice per period.
  EXPECT_FALSE(r.crossed);
  EXPECT_EQ(r.crossings, 0u);
  EXPECT_EQ(r.post_switch_max_x, 0.0);
  EXPECT_EQ(r.post_switch_min_x, 0.0);
}

TEST(BatchIntegratorTest, CrossingLocalizedToAnalyticTime) {
  // sigma = -x; region 0 (sigma > 0, i.e. x < 0) is drift-only with
  // y = 1, so x(t) = -1 + t crosses the surface exactly at t = 1 —
  // mid-macro-step for any dt that does not divide 1.
  BatchLane lane;
  lane.law.sx = 1.0;
  lane.law.sy = 0.0;
  lane.law.drive[0] = 0.0;  // x' = y stays 1 while x < 0
  lane.law.drive[1] = -2.0;  // decelerate after the crossing
  lane.law.switched = true;
  lane.x0 = -1.0;
  lane.y0 = 1.0;
  lane.t_end = 1.2;
  lane.dt[0] = lane.dt[1] = 0.07;
  BatchIntegrator batch;
  batch.reset({lane});
  batch.run_to_completion();
  const LaneResult& r = batch.results()[0];
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.crossed);
  EXPECT_EQ(r.crossings, 1u);
  EXPECT_NEAR(r.first_crossing_t, 1.0, 1e-9);
  // Post-crossing kinematics: x(t) = (t-1) - (t-1)^2 for t in [1, 1.2].
  EXPECT_NEAR(r.post_switch_max_x, 0.2 - 0.04, 1e-9);
  EXPECT_NEAR(r.max_x, 0.2 - 0.04, 1e-9);
}

TEST(BatchIntegratorTest, ConvergenceStopRetiresEarly) {
  // Damped oscillator dy = -omega^2 x - c y: sigma = -(omega^2 x + c y).
  BatchLane lane;
  lane.law.sx = 100.0;  // omega = 10
  lane.law.sy = 8.0;    // strong damping
  lane.law.g0[0] = lane.law.g0[1] = 1.0;
  lane.law.switched = false;
  lane.x0 = 1.0;
  lane.t_end = 1e9;  // horizon unreachable at dt below — must early-stop
  lane.dt[0] = lane.dt[1] = 1e-3;
  lane.inv_x_scale = 1.0;
  lane.inv_y_scale = 0.1;
  lane.stop_tol = 1e-8;
  BatchIntegrator batch;
  batch.reset({lane});
  batch.run_to_completion();
  const LaneResult& r = batch.results()[0];
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.steps, 100000u);
}

TEST(BatchIntegratorTest, PerRegionStepSizesAreUsed) {
  // Identical lanes except for the step size must show step counts in
  // inverse proportion — the integrator reads the per-lane (and, for
  // switched lanes, per-region) dt rather than any shared clock.
  const double omega = 2.0 * std::numbers::pi;
  BatchLane fine = oscillator_lane(omega, -1.0, 0.04, 1e-4);
  BatchLane coarse = fine;
  coarse.dt[0] = coarse.dt[1] = 1e-3;
  BatchIntegrator batch;
  batch.reset({fine, coarse});
  batch.run_to_completion();
  EXPECT_EQ(batch.results()[0].steps, 400u);
  EXPECT_EQ(batch.results()[1].steps, 40u);
}

TEST(BatchIntegratorTest, ResultsKeyedByLaneIdAcrossCompaction) {
  // Lanes with staggered horizons retire in waves; swap-from-last
  // compaction must still land every result in its original slot.
  const double omega = 2.0 * std::numbers::pi;
  std::vector<BatchLane> lanes;
  for (int i = 0; i < 37; ++i) {
    const double amplitude = 1.0 + (i % 5);
    const double t_end = 0.51 + 0.01 * (i % 7);  // past the crest at t=0.5
    lanes.push_back(oscillator_lane(omega, -amplitude, t_end, 1e-3));
  }
  BatchIntegrator batch;
  batch.reset(lanes);
  batch.run_to_completion();
  ASSERT_EQ(batch.results().size(), lanes.size());
  for (int i = 0; i < 37; ++i) {
    EXPECT_NEAR(batch.results()[i].max_x, 1.0 + (i % 5), 1e-3)
        << "lane " << i;
  }
}

TEST(BatchIntegratorTest, SteadyStateAllocatesNothing) {
  const double omega = 2.0 * std::numbers::pi;
  std::vector<BatchLane> lanes(64, oscillator_lane(omega, -1.0, 0.5, 1e-3));
  BatchIntegrator batch;
  // First reset establishes the high-water capacity.
  batch.reset(lanes);
  batch.run_to_completion();

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  batch.reset(lanes);
  batch.run_to_completion();
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
  EXPECT_TRUE(batch.results()[63].completed);
}

TEST(BatchIntegratorTest, RepeatRunsAreBitwiseIdentical) {
  const double omega = 2.0 * std::numbers::pi;
  std::vector<BatchLane> lanes;
  for (int i = 0; i < 8; ++i) {
    lanes.push_back(oscillator_lane(omega * (1.0 + 0.1 * i), -1.0, 0.5, 1e-3));
  }
  BatchIntegrator a, b;
  a.reset(lanes);
  a.run_to_completion();
  // Reuse b for an unrelated size first, to prove reset fully re-arms.
  b.reset(std::vector<BatchLane>(3, lanes[0]));
  b.run_to_completion();
  b.reset(lanes);
  b.run_to_completion();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    EXPECT_EQ(a.results()[i].max_x, b.results()[i].max_x);
    EXPECT_EQ(a.results()[i].min_x, b.results()[i].min_x);
    EXPECT_EQ(a.results()[i].steps, b.results()[i].steps);
  }
}

TEST(BatchIntegratorTest, NonfiniteLaneRetiresWithoutSpinningForever) {
  // An exponentially exploding lane (dy = K x with K dt^2 >> 1) overflows
  // to inf within a few dozen macro steps.  The non-finite guard must
  // retire it with completed = false; without the guard its clock would
  // go NaN, `t >= t_end` would never hold, and run_to_completion would
  // spin forever (regression for the NaN-lane infinite loop).
  BatchLane blowup;
  blowup.law.sx = -1.0;  // sigma = x
  blowup.law.g0[0] = blowup.law.g0[1] = 1e6;  // dy = 1e6 * x
  blowup.law.switched = false;
  blowup.x0 = 1.0;
  blowup.y0 = 0.0;
  blowup.t_end = 1e9;
  blowup.dt[0] = blowup.dt[1] = 1.0;

  const double omega = 2.0 * std::numbers::pi;
  const BatchLane healthy = oscillator_lane(omega, -2.0, 0.5, 1e-3);

  BatchIntegrator batch;
  batch.reset({blowup, healthy});
  batch.run_to_completion();

  const LaneResult& bad = batch.results()[0];
  EXPECT_TRUE(bad.nonfinite);
  EXPECT_FALSE(bad.completed);
  EXPECT_FALSE(bad.converged);
  EXPECT_TRUE(std::isfinite(bad.nonfinite_t));
  EXPECT_GE(bad.nonfinite_t, 0.0);
  EXPECT_LT(bad.steps, 1000u);  // retired fast, not at the 1e9 horizon

  // The poisoned lane must not leak into its batch neighbours.
  const LaneResult& good = batch.results()[1];
  EXPECT_TRUE(good.completed);
  EXPECT_FALSE(good.nonfinite);
  EXPECT_NEAR(good.max_x, 2.0, 1e-3);
}

}  // namespace
}  // namespace bcn::ode
