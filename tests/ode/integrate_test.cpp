#include "ode/integrate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

const Rhs kDecay = [](double, Vec2 z) -> Vec2 { return {-z.x, -2.0 * z.y}; };
const Rhs kOscillator = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };

TEST(IntegrateFixedTest, LandsExactlyOnEndTime) {
  FixedStepOptions opts;
  opts.step = 0.3;  // does not divide 1.0
  const Trajectory t = integrate_fixed(kDecay, 0.0, {1.0, 1.0}, 1.0, opts);
  EXPECT_NEAR(t.back().t, 1.0, 1e-12);
  EXPECT_NEAR(t.back().z.x, std::exp(-1.0), 1e-4);  // RK4 at a coarse h=0.3
}

TEST(IntegrateFixedTest, DegenerateSpanReturnsInitialPoint) {
  const Trajectory t = integrate_fixed(kDecay, 1.0, {2.0, 3.0}, 1.0, {});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].z, (Vec2{2.0, 3.0}));
}

TEST(IntegrateFixedTest, StepperSelection) {
  FixedStepOptions euler{Stepper::Euler, 0.001};
  FixedStepOptions rk4{Stepper::Rk4, 0.001};
  const double ex =
      integrate_fixed(kDecay, 0.0, {1.0, 1.0}, 1.0, euler).back().z.x;
  const double rx =
      integrate_fixed(kDecay, 0.0, {1.0, 1.0}, 1.0, rk4).back().z.x;
  EXPECT_LT(std::abs(rx - std::exp(-1.0)), std::abs(ex - std::exp(-1.0)));
}

TEST(IntegrateAdaptiveTest, MeetsToleranceOnOscillator) {
  AdaptiveOptions opts;
  opts.tol = {1e-10, 1e-10};
  const double t_end = 20.0;
  const auto res = integrate_adaptive(kOscillator, 0.0, {1.0, 0.0}, t_end, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_NEAR(res.trajectory.back().z.x, std::cos(t_end), 1e-7);
  EXPECT_NEAR(res.trajectory.back().z.y, -std::sin(t_end), 1e-7);
  EXPECT_GT(res.steps_accepted, 10u);
}

TEST(IntegrateAdaptiveTest, RecordIntervalProducesUniformSamples) {
  AdaptiveOptions opts;
  opts.record_interval = 0.25;
  const auto res = integrate_adaptive(kDecay, 0.0, {1.0, 1.0}, 1.0, opts);
  ASSERT_TRUE(res.completed);
  ASSERT_GE(res.trajectory.size(), 5u);
  // Samples at 0, .25, .5, .75, 1.0 (plus maybe the final point).
  EXPECT_NEAR(res.trajectory[1].t, 0.25, 1e-12);
  EXPECT_NEAR(res.trajectory[2].t, 0.5, 1e-12);
  EXPECT_NEAR(res.trajectory[1].z.x, std::exp(-0.25), 1e-7);
}

TEST(IntegrateAdaptiveTest, MaxStepRespected) {
  AdaptiveOptions opts;
  opts.max_step = 0.01;
  const auto res = integrate_adaptive(kDecay, 0.0, {1.0, 1.0}, 1.0, opts);
  ASSERT_TRUE(res.completed);
  for (std::size_t i = 1; i < res.trajectory.size(); ++i) {
    EXPECT_LE(res.trajectory[i].t - res.trajectory[i - 1].t, 0.01 + 1e-12);
  }
}

TEST(IntegrateAdaptiveTest, RejectionsAreCounted) {
  // Strongly nonlinear growth forces step rejections at a loose first step.
  const Rhs stiff = [](double, Vec2 z) -> Vec2 {
    return {-2000.0 * z.x, -2000.0 * z.y};
  };
  AdaptiveOptions opts;
  opts.tol = {1e-12, 1e-12};
  const auto res = integrate_adaptive(stiff, 0.0, {1.0, 1.0}, 0.01, opts);
  EXPECT_TRUE(res.completed);
  EXPECT_NEAR(res.trajectory.back().z.x, std::exp(-20.0), 1e-9);
}

TEST(IntegrateAdaptiveTest, BackwardSpanCompletesTrivially) {
  const auto res = integrate_adaptive(kDecay, 1.0, {1.0, 1.0}, 0.5, {});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.trajectory.size(), 1u);
}

}  // namespace
}  // namespace bcn::ode
