#include "ode/hybrid.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ode/integrate.h"

namespace bcn::ode {
namespace {

// A switched oscillator: stiffness 1 for x > 0, stiffness 4 for x < 0.
// Solutions alternate half-periods pi (right) and pi/2 (left); amplitude in
// velocity is conserved, amplitude in x halves on the left half-plane.
HybridSystem switched_oscillator() {
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; });
  sys.modes.push_back(
      [](double, Vec2 z) -> Vec2 { return {z.y, -4.0 * z.x}; });
  sys.mode_of = [](double, Vec2 z) { return z.x > 0.0 ? 0 : 1; };
  sys.guards.push_back([](double, Vec2 z) { return z.x; });
  return sys;
}

TEST(HybridTest, SwitchesAtTheSurface) {
  const auto sys = switched_oscillator();
  HybridOptions opts;
  opts.tol = {1e-10, 1e-10};
  // Start at x=1, v=0: half-period pi in mode 0, then crosses into mode 1.
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 2.5, opts);
  ASSERT_TRUE(res.completed);
  ASSERT_GE(res.switches.size(), 1u);
  const auto& sw = res.switches.front();
  EXPECT_NEAR(sw.t, 1.5707963267948966, 1e-7);  // quarter period: x=cos t
  EXPECT_EQ(sw.from_mode, 0);
  EXPECT_EQ(sw.to_mode, 1);
  EXPECT_NEAR(sw.z.x, 0.0, 1e-7);
  EXPECT_NEAR(sw.z.y, -1.0, 1e-7);
}

TEST(HybridTest, VelocityAmplitudePreservedAcrossManySwitches) {
  // Both modes conserve their own energy; at the switching surface x = 0
  // the energy is y^2/2 in both, so |y| at every crossing equals 1.
  const auto sys = switched_oscillator();
  HybridOptions opts;
  opts.tol = {1e-11, 1e-11};
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 20.0, opts);
  ASSERT_TRUE(res.completed);
  ASSERT_GE(res.switches.size(), 6u);
  for (const auto& sw : res.switches) {
    EXPECT_NEAR(std::abs(sw.z.y), 1.0, 1e-6) << "at t=" << sw.t;
  }
}

TEST(HybridTest, MatchesSmoothIntegratorWhenNoSwitching) {
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; });
  sys.mode_of = [](double, Vec2) { return 0; };
  // A guard that never crosses.
  sys.guards.push_back([](double, Vec2) { return 1.0; });
  HybridOptions opts;
  opts.tol = {1e-10, 1e-10};
  const auto hybrid = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 5.0, opts);
  AdaptiveOptions aopts;
  aopts.tol = {1e-10, 1e-10};
  const auto smooth =
      integrate_adaptive(sys.modes[0], 0.0, {1.0, 0.0}, 5.0, aopts);
  ASSERT_TRUE(hybrid.completed);
  ASSERT_TRUE(smooth.completed);
  EXPECT_TRUE(hybrid.switches.empty());
  EXPECT_NEAR(hybrid.trajectory.back().z.x, smooth.trajectory.back().z.x,
              1e-7);
}

TEST(HybridTest, StopWhenFires) {
  const auto sys = switched_oscillator();
  HybridOptions opts;
  opts.stop_when = [](double t, Vec2) { return t > 1.0; };
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 100.0, opts);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_TRUE(res.completed);
  EXPECT_LT(res.trajectory.back().t, 2.0);
}

TEST(HybridTest, RecordIntervalResamplesUniformly) {
  const auto sys = switched_oscillator();
  HybridOptions opts;
  opts.record_interval = 0.1;
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 1.0, opts);
  ASSERT_TRUE(res.completed);
  ASSERT_GE(res.trajectory.size(), 10u);
  EXPECT_NEAR(res.trajectory[1].t - res.trajectory[0].t, 0.1, 1e-9);
  EXPECT_NEAR(res.trajectory[1].z.x, std::cos(0.1), 1e-6);
}

TEST(HybridTest, DegenerateSpanCompletes) {
  const auto sys = switched_oscillator();
  const auto res = integrate_hybrid(sys, 1.0, {1.0, 0.0}, 1.0, {});
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.trajectory.size(), 1u);
}

TEST(HybridTest, WallModeSaturation) {
  // Mode 0: fall with constant velocity; mode 1 (wall at x<=0): stay.
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2) -> Vec2 { return {-1.0, 0.0}; });
  sys.modes.push_back([](double, Vec2) -> Vec2 { return {0.0, 0.0}; });
  sys.mode_of = [](double, Vec2 z) { return z.x > 1e-12 ? 0 : 1; };
  sys.guards.push_back([](double, Vec2 z) { return z.x; });
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 5.0, {});
  ASSERT_TRUE(res.completed);
  EXPECT_NEAR(res.trajectory.back().z.x, 0.0, 1e-6);
  ASSERT_EQ(res.switches.size(), 1u);
  EXPECT_NEAR(res.switches[0].t, 1.0, 1e-6);
}

// Non-finite guard: a RHS that emits NaN once past a threshold must
// abort the integration with nonfinite set instead of letting the NaN
// pass DOPRI5's acceptance test (NaN comparisons are false, so
// `error > 1` never rejects a poisoned step).
TEST(HybridTest, NonfiniteStateAbortsWithDiagnostics) {
  HybridSystem sys;
  sys.modes.push_back([](double t, Vec2 z) -> Vec2 {
    if (t > 1.0) return {std::nan(""), std::nan("")};
    return {z.y, -z.x};
  });
  sys.mode_of = [](double, Vec2) { return 0; };
  sys.guards.push_back([](double, Vec2) { return 1.0; });
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 10.0, {});
  EXPECT_TRUE(res.nonfinite);
  EXPECT_FALSE(res.completed);
  EXPECT_GE(res.nonfinite_t, 0.0);
  EXPECT_LE(res.nonfinite_t, 10.0);
  // Only finite samples may land in the trajectory.
  for (const auto& s : res.trajectory.samples()) {
    EXPECT_TRUE(std::isfinite(s.z.x) && std::isfinite(s.z.y))
        << "at t=" << s.t;
  }
}

TEST(HybridTest, NonfiniteInitialConditionAbortsImmediately) {
  const auto sys = switched_oscillator();
  const auto res =
      integrate_hybrid(sys, 0.0, {std::nan(""), 0.0}, 1.0, {});
  EXPECT_TRUE(res.nonfinite);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.steps_accepted, 0u);
}

}  // namespace
}  // namespace bcn::ode
