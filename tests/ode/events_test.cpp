#include "ode/events.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

const Rhs kOscillator = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };

DenseOutput make_dense(const Rhs& f, double t0, Vec2 z0, double h) {
  const Dopri5 stepper(f);
  const auto step = stepper.trial_step(t0, z0, stepper.compute_k1(t0, z0), h);
  return DenseOutput(t0, h, step.rcont);
}

TEST(LocateEventTest, FindsZeroOfStateFunction) {
  // x(t) = cos(t) crosses zero at pi/2; integrate over [1.4, 1.8].
  const Vec2 z0{std::cos(1.4), -std::sin(1.4)};
  const auto dense = make_dense(kOscillator, 1.4, z0, 0.4);
  const Guard g = [](double, Vec2 z) { return z.x; };
  const auto ev = locate_event(g, dense);
  ASSERT_TRUE(ev.has_value());
  // Localization accuracy is bounded by the 4th-order dense output over a
  // 0.4-wide step, not by the bisection tolerance.
  EXPECT_NEAR(ev->t, 1.5707963267948966, 1e-5);
  EXPECT_NEAR(ev->z.x, 0.0, 1e-5);
}

TEST(LocateEventTest, NoCrossingReturnsNullopt) {
  const Vec2 z0{1.0, 0.0};
  const auto dense = make_dense(kOscillator, 0.0, z0, 0.3);
  const Guard g = [](double, Vec2 z) { return z.x; };  // stays positive
  EXPECT_FALSE(locate_event(g, dense).has_value());
}

TEST(LocateEventTest, GuardZeroAtStartIsNotReported) {
  // Starting exactly on the surface must not retrigger (the hybrid driver
  // relies on this to leave a surface it just landed on).
  const Vec2 z0{0.0, -1.0};
  const auto dense = make_dense(kOscillator, 0.0, z0, 0.3);
  const Guard g = [](double, Vec2 z) { return z.x; };
  EXPECT_FALSE(locate_event(g, dense).has_value());
}

TEST(LocateEventTest, GuardZeroAtEndReported) {
  const Vec2 z0{std::cos(1.2), -std::sin(1.2)};
  const double h = 1.5707963267948966 - 1.2;
  const auto dense = make_dense(kOscillator, 1.2, z0, h);
  const Guard g = [](double, Vec2 z) { return z.x; };
  const auto ev = locate_event(g, dense);
  // x at the endpoint is ~1e-17 -- either an exact-zero report or a
  // crossing located essentially at the endpoint is acceptable.
  if (ev) {
    EXPECT_NEAR(ev->t, 1.5707963267948966, 1e-6);
  }
}

TEST(LocateEventTest, TimeDependentGuard) {
  const Rhs constant = [](double, Vec2) -> Vec2 { return {1.0, 0.0}; };
  const auto dense = make_dense(constant, 0.0, {0.0, 0.0}, 1.0);
  const Guard g = [](double t, Vec2) { return t - 0.4; };
  const auto ev = locate_event(g, dense);
  ASSERT_TRUE(ev.has_value());
  EXPECT_NEAR(ev->t, 0.4, 1e-9);
  EXPECT_NEAR(ev->z.x, 0.4, 1e-9);
}

TEST(LocateEventTest, ReturnsEarliestOfTwoCrossingsWhenBracketed) {
  // Guard = x - 0.5 on the oscillator starting at x=1 descending: crosses
  // 0.5 once in a short step (double crossings within one step are a
  // documented limitation; the hybrid driver caps step size).
  const Vec2 z0{1.0, 0.0};
  const auto dense = make_dense(kOscillator, 0.0, z0, 1.3);
  const Guard g = [](double, Vec2 z) { return z.x - 0.5; };
  const auto ev = locate_event(g, dense);
  ASSERT_TRUE(ev.has_value());
  EXPECT_NEAR(ev->t, std::acos(0.5), 5e-3);  // wide step -> coarse dense fit
}

}  // namespace
}  // namespace bcn::ode
