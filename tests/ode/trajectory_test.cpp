#include "ode/trajectory.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

Trajectory sine_trajectory(double t_end, double dt) {
  Trajectory t;
  for (double s = 0.0; s <= t_end + 1e-12; s += dt) {
    t.push_back(s, {std::sin(s), std::cos(s)});
  }
  return t;
}

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  t.push_back(0.0, {1.0, 2.0});
  t.push_back(1.0, {3.0, 4.0});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.front().z, (Vec2{1.0, 2.0}));
  EXPECT_EQ(t.back().z, (Vec2{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(TrajectoryTest, InterpolateMidpointAndClamp) {
  Trajectory t;
  t.push_back(0.0, {0.0, 0.0});
  t.push_back(2.0, {4.0, -2.0});
  EXPECT_EQ(t.interpolate(1.0), (Vec2{2.0, -1.0}));
  EXPECT_EQ(t.interpolate(-1.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(t.interpolate(9.0), (Vec2{4.0, -2.0}));
}

TEST(TrajectoryTest, MinMaxComponents) {
  const auto t = sine_trajectory(6.4, 0.01);
  EXPECT_NEAR(t.max_component(0), 1.0, 1e-3);
  EXPECT_NEAR(t.min_component(0), -1.0, 1e-3);
  EXPECT_NEAR(t.max_component(1), 1.0, 1e-3);
}

TEST(TrajectoryTest, LocalExtremaOfSine) {
  const auto t = sine_trajectory(6.4, 0.01);
  const auto ext = t.local_extrema(0);
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_TRUE(ext[0].is_maximum);
  EXPECT_NEAR(ext[0].t, 1.5707963, 0.02);
  EXPECT_NEAR(ext[0].value, 1.0, 1e-3);
  EXPECT_FALSE(ext[1].is_maximum);
  EXPECT_NEAR(ext[1].t, 4.712389, 0.02);
}

TEST(TrajectoryTest, ZeroCrossingsInterpolated) {
  const auto t = sine_trajectory(6.4, 0.01);
  const auto crossings =
      t.zero_crossings([](double, Vec2 z) { return z.x; });
  ASSERT_GE(crossings.size(), 2u);
  // First interior crossing at pi (the t=0 start counts as on-surface).
  bool found_pi = false;
  for (double c : crossings) {
    if (std::abs(c - 3.14159265) < 0.01) found_pi = true;
  }
  EXPECT_TRUE(found_pi);
}

TEST(TrajectoryTest, TailDistanceMeasuresConvergence) {
  Trajectory t;
  for (int i = 0; i <= 100; ++i) {
    const double s = i / 100.0;
    t.push_back(s, {std::exp(-5.0 * s), 0.0});
  }
  EXPECT_LT(t.tail_distance({0.0, 0.0}, 0.05), 0.01);
  EXPECT_GT(t.tail_distance({0.0, 0.0}, 1.0), 0.9);
}

TEST(TrajectoryTest, DecimateKeepsEndpoints) {
  const auto t = sine_trajectory(1.0, 0.01);
  const auto d = t.decimate(10);
  EXPECT_LT(d.size(), t.size() / 5);
  EXPECT_DOUBLE_EQ(d.front().t, t.front().t);
  EXPECT_DOUBLE_EQ(d.back().t, t.back().t);
}

TEST(TrajectoryTest, DecimateStrideOneIsIdentity) {
  const auto t = sine_trajectory(1.0, 0.1);
  EXPECT_EQ(t.decimate(1).size(), t.size());
}

TEST(TrajectoryTest, PlateauReportsSingleExtremum) {
  Trajectory t;
  t.push_back(0.0, {0.0, 0.0});
  t.push_back(1.0, {1.0, 0.0});
  t.push_back(2.0, {1.0, 0.0});
  t.push_back(3.0, {0.0, 0.0});
  const auto ext = t.local_extrema(0);
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_TRUE(ext[0].is_maximum);
}

}  // namespace
}  // namespace bcn::ode
