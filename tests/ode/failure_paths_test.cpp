// Failure-path and limit coverage for the integration drivers: step-size
// give-up, step caps, switch-count caps, and degenerate inputs must fail
// loudly (flags) rather than hang or lie.
#include <gtest/gtest.h>

#include "ode/hybrid.h"
#include "ode/integrate.h"

namespace bcn::ode {
namespace {

TEST(FailurePathsTest, AdaptiveGivesUpOnNonLipschitzBlowup) {
  // dz/dt = z^2 blows up at t = 1 from z = 1: the driver must stop with
  // completed = false instead of looping forever.
  const Rhs blowup = [](double, Vec2 z) -> Vec2 {
    return {z.x * z.x, 0.0};
  };
  AdaptiveOptions opts;
  opts.max_steps = 100000;
  const auto res = integrate_adaptive(blowup, 0.0, {1.0, 0.0}, 2.0, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_LT(res.trajectory.back().t, 2.0);
}

TEST(FailurePathsTest, MaxStepsBoundsWork) {
  const Rhs osc = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };
  AdaptiveOptions opts;
  opts.max_steps = 5;
  opts.max_step = 0.01;
  const auto res = integrate_adaptive(osc, 0.0, {1.0, 0.0}, 100.0, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_LE(res.steps_accepted, 5u);
}

TEST(FailurePathsTest, HybridMaxSwitchesCap) {
  // A fast chattering system: mode flips every half-oscillation.
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -100.0 * z.x}; });
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -400.0 * z.x}; });
  sys.mode_of = [](double, Vec2 z) { return z.x > 0.0 ? 0 : 1; };
  sys.guards.push_back([](double, Vec2 z) { return z.x; });
  HybridOptions opts;
  opts.max_switches = 3;
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 100.0, opts);
  EXPECT_LE(res.switches.size(), 4u);
  EXPECT_FALSE(res.completed);
}

TEST(FailurePathsTest, HybridHonorsMaxStepCap) {
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2) -> Vec2 { return {1.0, 0.0}; });
  sys.mode_of = [](double, Vec2) { return 0; };
  sys.guards.push_back([](double, Vec2) { return 1.0; });
  HybridOptions opts;
  opts.max_step = 0.125;
  const auto res = integrate_hybrid(sys, 0.0, {0.0, 0.0}, 1.0, opts);
  ASSERT_TRUE(res.completed);
  for (std::size_t i = 1; i < res.trajectory.size(); ++i) {
    EXPECT_LE(res.trajectory[i].t - res.trajectory[i - 1].t, 0.125 + 1e-12);
  }
}

TEST(FailurePathsTest, FixedStepWithNonPositiveStepReturnsStart) {
  const Rhs f = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };
  FixedStepOptions opts;
  opts.step = 0.0;
  const auto traj = integrate_fixed(f, 0.0, {1.0, 2.0}, 1.0, opts);
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_EQ(traj[0].z, (Vec2{1.0, 2.0}));
}

TEST(FailurePathsTest, HybridChatteringStillMakesProgress) {
  // With a generous switch budget the chattering system must advance in
  // time (the escape logic prevents Zeno-like stalls at the surface).
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -100.0 * z.x}; });
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -400.0 * z.x}; });
  sys.mode_of = [](double, Vec2 z) { return z.x > 0.0 ? 0 : 1; };
  sys.guards.push_back([](double, Vec2 z) { return z.x; });
  HybridOptions opts;
  opts.max_switches = 100000;
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 2.0, opts);
  EXPECT_TRUE(res.completed);
  // Half-periods pi/10 and pi/20 give ~8.5 crossings over 2 s.
  EXPECT_GE(res.switches.size(), 8u);
}

}  // namespace
}  // namespace bcn::ode
