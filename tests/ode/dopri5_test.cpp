#include "ode/dopri5.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bcn::ode {
namespace {

const Rhs kDecay = [](double, Vec2 z) -> Vec2 { return {-z.x, -2.0 * z.y}; };
const Rhs kOscillator = [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; };

TEST(Dopri5Test, SingleStepFifthOrderAccuracy) {
  const Dopri5 stepper(kDecay);
  const Vec2 z0{1.0, 1.0};
  const double h = 0.1;
  const auto step = stepper.trial_step(0.0, z0, stepper.compute_k1(0.0, z0), h);
  EXPECT_NEAR(step.z_new.x, std::exp(-h), 1e-9);
  EXPECT_NEAR(step.z_new.y, std::exp(-2.0 * h), 1e-7);
}

TEST(Dopri5Test, FsalStageEqualsRhsAtEndpoint) {
  const Dopri5 stepper(kOscillator);
  const Vec2 z0{1.0, 0.0};
  const auto step =
      stepper.trial_step(0.0, z0, stepper.compute_k1(0.0, z0), 0.2);
  const Vec2 expected = kOscillator(0.2, step.z_new);
  EXPECT_DOUBLE_EQ(step.k_last.x, expected.x);
  EXPECT_DOUBLE_EQ(step.k_last.y, expected.y);
}

TEST(Dopri5Test, ErrorEstimateTracksTolerance) {
  // A large step on the oscillator must report error > 1 at tight tol.
  const Dopri5 tight(kOscillator, {1e-12, 1e-12});
  const Vec2 z0{1.0, 0.0};
  const auto big =
      tight.trial_step(0.0, z0, tight.compute_k1(0.0, z0), 1.0);
  EXPECT_GT(big.error, 1.0);
  const auto small =
      tight.trial_step(0.0, z0, tight.compute_k1(0.0, z0), 1e-4);
  EXPECT_LT(small.error, 1.0);
}

TEST(Dopri5Test, DenseOutputMatchesEndpoints) {
  const Dopri5 stepper(kOscillator);
  const Vec2 z0{1.0, 0.0};
  const double h = 0.3;
  const auto step =
      stepper.trial_step(0.0, z0, stepper.compute_k1(0.0, z0), h);
  const DenseOutput dense(0.0, h, step.rcont);
  EXPECT_NEAR(dense.eval(0.0).x, z0.x, 1e-12);
  EXPECT_NEAR(dense.eval(0.0).y, z0.y, 1e-12);
  EXPECT_NEAR(dense.eval(h).x, step.z_new.x, 1e-12);
  EXPECT_NEAR(dense.eval(h).y, step.z_new.y, 1e-12);
}

TEST(Dopri5Test, DenseOutputAccurateInside) {
  const Dopri5 stepper(kOscillator);
  const Vec2 z0{1.0, 0.0};
  const double h = 0.2;
  const auto step =
      stepper.trial_step(0.0, z0, stepper.compute_k1(0.0, z0), h);
  const DenseOutput dense(0.0, h, step.rcont);
  // The continuous extension is 4th order: expect ~h^5-scale error.
  for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double t = frac * h;
    EXPECT_NEAR(dense.eval(t).x, std::cos(t), 3e-7) << "frac=" << frac;
    EXPECT_NEAR(dense.eval(t).y, -std::sin(t), 3e-7) << "frac=" << frac;
  }
}

TEST(Dopri5Test, DenseOutputClampsOutsideInterval) {
  const Dopri5 stepper(kDecay);
  const Vec2 z0{1.0, 1.0};
  const auto step =
      stepper.trial_step(0.0, z0, stepper.compute_k1(0.0, z0), 0.1);
  const DenseOutput dense(0.0, 0.1, step.rcont);
  EXPECT_EQ(dense.eval(-5.0).x, dense.eval(0.0).x);
  EXPECT_EQ(dense.eval(5.0).x, dense.eval(0.1).x);
}

TEST(Dopri5Test, StepControllerShrinksOnLargeError) {
  const Dopri5 stepper(kDecay);
  EXPECT_LT(stepper.next_step_size(0.1, 100.0), 0.1);
  EXPECT_GT(stepper.next_step_size(0.1, 1e-6), 0.1);
  // Growth is clamped.
  EXPECT_LE(stepper.next_step_size(0.1, 0.0), 0.5 + 1e-12);
}

TEST(Dopri5Test, InitialStepSizeIsPositiveAndModest) {
  const Dopri5 stepper(kOscillator);
  const double h0 = stepper.initial_step_size(0.0, {1.0, 0.0});
  EXPECT_GT(h0, 0.0);
  EXPECT_LT(h0, 1.0);  // period is ~6.28; the heuristic must stay well below
}

}  // namespace
}  // namespace bcn::ode
