#include "control/closed_form.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ode/integrate.h"

namespace bcn::control {
namespace {

// Parameterized over (m, n, x0, y0) covering all three solution kinds and
// several initial quadrants.
struct Case {
  double m, n, x0, y0;
};

class ClosedFormVsNumeric : public ::testing::TestWithParam<Case> {};

TEST_P(ClosedFormVsNumeric, EvalMatchesAdaptiveIntegration) {
  const auto [m, n, x0, y0] = GetParam();
  const SecondOrderSystem sys(m, n);
  const LinearSolution sol(sys, {x0, y0});

  ode::AdaptiveOptions opts;
  opts.tol = {1e-11, 1e-11};
  const double t_end = 3.0;
  const auto res = ode::integrate_adaptive(sys.rhs(), 0.0, {x0, y0}, t_end, opts);
  ASSERT_TRUE(res.completed);
  const double scale = Vec2{x0, y0}.norm() + 1.0;
  for (std::size_t i = 0; i < res.trajectory.size(); i += 7) {
    const auto& s = res.trajectory[i];
    const Vec2 exact = sol.eval(s.t);
    EXPECT_NEAR(s.z.x, exact.x, 1e-6 * scale) << "t=" << s.t;
    EXPECT_NEAR(s.z.y, exact.y, 1e-5 * scale) << "t=" << s.t;
  }
}

TEST_P(ClosedFormVsNumeric, FirstExtremumLiesOnSolutionWithZeroVelocity) {
  const auto [m, n, x0, y0] = GetParam();
  const SecondOrderSystem sys(m, n);
  const LinearSolution sol(sys, {x0, y0});
  const auto ext = sol.first_x_extremum();
  if (!ext) return;  // kinds without a forward extremum
  EXPECT_GT(ext->t, 0.0);
  const Vec2 at = sol.eval(ext->t);
  EXPECT_NEAR(at.y, 0.0, 1e-8 * (std::abs(x0) + std::abs(y0) + 1.0));
  EXPECT_NEAR(at.x, ext->value, 1e-9 * (std::abs(ext->value) + 1.0));
  EXPECT_EQ(ext->is_maximum, ext->value > 0.0);
}

TEST_P(ClosedFormVsNumeric, FirstLineCrossingIsOnTheLine) {
  const auto [m, n, x0, y0] = GetParam();
  const SecondOrderSystem sys(m, n);
  const LinearSolution sol(sys, {x0, y0});
  const double p = 1.0, q = 0.05;
  const auto t_cross = sol.first_line_crossing(p, q);
  if (!t_cross) return;
  EXPECT_GT(*t_cross, 0.0);
  const Vec2 at = sol.eval(*t_cross);
  const double scale = at.norm() + std::abs(x0) + std::abs(y0) + 1.0;
  EXPECT_NEAR(p * at.x + q * at.y, 0.0, 1e-7 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ClosedFormVsNumeric,
    ::testing::Values(
        // Spiral (m^2 < 4n)
        Case{1.0, 4.0, 1.0, 0.0}, Case{1.0, 4.0, -2.0, 1.0},
        Case{0.5, 10.0, 0.0, 3.0}, Case{2.0, 9.0, -1.0, -1.0},
        // Node (m^2 > 4n)
        Case{5.0, 4.0, 1.0, 0.0}, Case{5.0, 4.0, 0.0, 2.0},
        Case{10.0, 2.0, -1.0, 5.0}, Case{3.0, 2.0, 2.0, -1.0},
        // Degenerate (m^2 = 4n)
        Case{2.0, 1.0, 1.0, 0.0}, Case{4.0, 4.0, 0.0, -2.0},
        Case{6.0, 9.0, -1.0, 2.0}));

TEST(LinearSolutionTest, KindsDetected) {
  EXPECT_EQ(LinearSolution({1.0, 4.0}, {1, 0}).kind(), SolutionKind::Spiral);
  EXPECT_EQ(LinearSolution({5.0, 4.0}, {1, 0}).kind(), SolutionKind::Node);
  EXPECT_EQ(LinearSolution({2.0, 1.0}, {1, 0}).kind(),
            SolutionKind::Degenerate);
  EXPECT_FALSE(to_string(SolutionKind::Spiral).empty());
}

TEST(LinearSolutionTest, InitialConditionReproduced) {
  for (const Case& c : {Case{1.0, 4.0, -3.0, 2.0}, Case{5.0, 4.0, 1.5, -2.5},
                        Case{2.0, 1.0, 0.5, 0.25}}) {
    const LinearSolution sol({c.m, c.n}, {c.x0, c.y0});
    const Vec2 at0 = sol.eval(0.0);
    EXPECT_NEAR(at0.x, c.x0, 1e-12);
    EXPECT_NEAR(at0.y, c.y0, 1e-12);
  }
}

TEST(LinearSolutionTest, SpiralHasInfinitelyManyExtrema) {
  const LinearSolution sol({1.0, 100.0}, {1.0, 0.0});
  const auto e1 = sol.first_x_extremum(0.0);
  ASSERT_TRUE(e1);
  const auto e2 = sol.first_x_extremum(e1->t);
  ASSERT_TRUE(e2);
  EXPECT_GT(e2->t, e1->t);
  // Successive extrema alternate sign and shrink (stable focus).
  EXPECT_LT(e2->value * e1->value, 0.0);
  EXPECT_LT(std::abs(e2->value), std::abs(e1->value));
}

TEST(LinearSolutionTest, NodeHasAtMostOneExtremum) {
  const LinearSolution sol({5.0, 4.0}, {0.0, 2.0});
  const auto e1 = sol.first_x_extremum(0.0);
  ASSERT_TRUE(e1);
  EXPECT_FALSE(sol.first_x_extremum(e1->t));
}

TEST(LinearSolutionTest, ZeroSolutionHasNoEvents) {
  const LinearSolution sol({1.0, 4.0}, {0.0, 0.0});
  EXPECT_FALSE(sol.first_x_extremum());
  EXPECT_FALSE(sol.first_line_crossing(1.0, 0.5));
}

TEST(LinearSolutionTest, EigenlineStartStaysOnEigenline) {
  // Node with lambda = -1, -4 (m=5, n=4): starting on y = -x stays there.
  const LinearSolution sol({5.0, 4.0}, {1.0, -1.0});
  for (double t : {0.1, 0.5, 2.0}) {
    const Vec2 z = sol.eval(t);
    EXPECT_NEAR(z.y, -z.x, 1e-12);
  }
  // The eigenline is itself the line x + y = 0: no transversal crossing.
  EXPECT_FALSE(sol.first_line_crossing(1.0, 1.0));
}

// --- Paper formulas ---------------------------------------------------------

TEST(PaperFormulasTest, SpiralExtremumMatchesPrimaryPath) {
  // Decrease-region style start: on the switching line with x0 y0 < 0.
  const double m = 1.0, n = 16.0;
  const Vec2 z0{-2.0, 3.0};
  const LinearSolution sol({m, n}, z0);
  ASSERT_EQ(sol.kind(), SolutionKind::Spiral);
  const auto primary = sol.first_x_extremum();
  ASSERT_TRUE(primary);
  const double paper_t =
      paper_spiral_extremum_time(sol.alpha(), sol.beta(), z0);
  const double paper_v =
      paper_spiral_extremum_value(sol.alpha(), sol.beta(), z0);
  EXPECT_NEAR(paper_t, primary->t, 1e-10);
  EXPECT_NEAR(paper_v, primary->value, 1e-10 * std::abs(primary->value));
}

TEST(PaperFormulasTest, SpiralExtremumSameQuadrantBranch) {
  const double m = 0.8, n = 25.0;
  const Vec2 z0{1.5, 2.0};  // x0 y0 > 0: the no-pi branch of eq. (18)
  const LinearSolution sol({m, n}, z0);
  const auto primary = sol.first_x_extremum();
  ASSERT_TRUE(primary);
  EXPECT_NEAR(paper_spiral_extremum_time(sol.alpha(), sol.beta(), z0),
              primary->t, 1e-10);
  EXPECT_NEAR(paper_spiral_extremum_value(sol.alpha(), sol.beta(), z0),
              primary->value, 1e-10 * std::abs(primary->value));
}

TEST(PaperFormulasTest, NodeExtremumEq28MagnitudeAndSign) {
  // lambda = -1, -2 (m=3, n=2), z0=(0,1): hand-computed extremum +1/4 at
  // t* = ln 2.  Eq. (28) as printed gives -1/4; we return sign(y0)|.|.
  const auto v = paper_node_extremum_value(-2.0, -1.0, {0.0, 1.0});
  ASSERT_TRUE(v);
  EXPECT_NEAR(*v, 0.25, 1e-12);
  const LinearSolution sol({3.0, 2.0}, {0.0, 1.0});
  const auto primary = sol.first_x_extremum();
  ASSERT_TRUE(primary);
  EXPECT_NEAR(*v, primary->value, 1e-12);
}

TEST(PaperFormulasTest, NodeExtremumAgreesAcrossInitialConditions) {
  for (const Vec2 z0 : {Vec2{0.5, 2.0}, Vec2{-0.5, 3.0}, Vec2{1.0, 0.5}}) {
    const LinearSolution sol({5.0, 4.0}, z0);  // lambda = -1, -4
    const auto primary = sol.first_x_extremum();
    const auto paper = paper_node_extremum_value(-4.0, -1.0, z0);
    if (!primary || !paper) continue;
    EXPECT_NEAR(*paper, primary->value, 1e-9 * std::abs(primary->value))
        << "z0=(" << z0.x << "," << z0.y << ")";
  }
}

TEST(PaperFormulasTest, DegenerateExtremumEq34Corrected) {
  // lambda=-1 (m=2, n=1), z0=(0,1): extremum x = 1/e at t = 1.  The
  // paper's printed exponent gives e instead; we implement the corrected
  // form and check against the primary path.
  const auto v = paper_degenerate_extremum_value(-1.0, {0.0, 1.0});
  ASSERT_TRUE(v);
  EXPECT_NEAR(*v, std::exp(-1.0), 1e-12);
  const LinearSolution sol({2.0, 1.0}, {0.0, 1.0});
  const auto primary = sol.first_x_extremum();
  ASSERT_TRUE(primary);
  EXPECT_NEAR(*v, primary->value, 1e-12);
}

TEST(PaperFormulasTest, DegenerateExtremumRejectsBackwardTime) {
  // Start past the extremum (t* = 1 - A3/A4 = -1 < 0) -> nullopt.
  EXPECT_FALSE(paper_degenerate_extremum_value(-1.0, {2.0, -1.0}));
}

}  // namespace
}  // namespace bcn::control
