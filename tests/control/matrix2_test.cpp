#include "control/matrix2.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "control/closed_form.h"
#include "control/second_order.h"

namespace bcn::control {
namespace {

TEST(Mat2Test, Arithmetic) {
  const Mat2 m{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.trace(), 5.0);
  EXPECT_DOUBLE_EQ(m.det(), -2.0);
  const Vec2 v = m.apply({1.0, -1.0});
  EXPECT_DOUBLE_EQ(v.x, -1.0);
  EXPECT_DOUBLE_EQ(v.y, -1.0);
  const Mat2 sq = m * m;
  EXPECT_DOUBLE_EQ(sq.a, 7.0);
  EXPECT_DOUBLE_EQ(sq.b, 10.0);
  EXPECT_DOUBLE_EQ(sq.c, 15.0);
  EXPECT_DOUBLE_EQ(sq.d, 22.0);
}

TEST(ExpmTest, IdentityAtZeroTime) {
  const Mat2 e = expm(companion(3.0, 2.0), 0.0);
  EXPECT_NEAR(e.a, 1.0, 1e-14);
  EXPECT_NEAR(e.b, 0.0, 1e-14);
  EXPECT_NEAR(e.c, 0.0, 1e-14);
  EXPECT_NEAR(e.d, 1.0, 1e-14);
}

TEST(ExpmTest, DiagonalMatrix) {
  const Mat2 diag{-1.0, 0.0, 0.0, -2.0};
  const Mat2 e = expm(diag, 0.5);
  EXPECT_NEAR(e.a, std::exp(-0.5), 1e-12);
  EXPECT_NEAR(e.d, std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.b, 0.0, 1e-12);
}

TEST(ExpmTest, RotationMatrix) {
  // [[0, -1], [1, 0]] generates rotations.
  const Mat2 rot{0.0, -1.0, 1.0, 0.0};
  const Mat2 e = expm(rot, M_PI / 2.0);
  EXPECT_NEAR(e.a, 0.0, 1e-12);
  EXPECT_NEAR(e.b, -1.0, 1e-12);
  EXPECT_NEAR(e.c, 1.0, 1e-12);
  EXPECT_NEAR(e.d, 0.0, 1e-12);
}

TEST(ExpmTest, SemigroupProperty) {
  const Mat2 m = companion(1.0, 7.0);
  const Mat2 one = expm(m, 0.7);
  const Mat2 two = expm(m, 0.35);
  const Mat2 composed = two * two;
  EXPECT_NEAR(composed.a, one.a, 1e-10);
  EXPECT_NEAR(composed.b, one.b, 1e-10);
  EXPECT_NEAR(composed.c, one.c, 1e-10);
  EXPECT_NEAR(composed.d, one.d, 1e-10);
}

// Independent cross-validation: expm-based propagation must match the
// paper-formula LinearSolution in every eigen regime.
TEST(ExpmVsClosedFormTest, AllRegimesAgree) {
  struct Case {
    double m, n;
  };
  Rng rng(31);
  for (const Case c : {Case{1.0, 4.0},    // spiral
                       Case{5.0, 4.0},    // node
                       Case{2.0, 1.0},    // degenerate
                       Case{0.5, 100.0},  // fast spiral
                       Case{30.0, 2.0}}) {  // stiff node
    const SecondOrderSystem sys(c.m, c.n);
    const Mat2 mat = companion(c.m, c.n);
    for (int trial = 0; trial < 10; ++trial) {
      const Vec2 z0{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
      const LinearSolution sol(sys, z0);
      for (const double t : {0.1, 0.5, 1.5, 4.0}) {
        const Vec2 exact = sol.eval(t);
        const Vec2 via_expm = expm(mat, t).apply(z0);
        const double tol = 1e-9 * (exact.norm() + 1.0);
        EXPECT_NEAR(via_expm.x, exact.x, tol)
            << "m=" << c.m << " n=" << c.n << " t=" << t;
        EXPECT_NEAR(via_expm.y, exact.y, tol);
      }
    }
  }
}

TEST(ExpmVsClosedFormTest, BcnSubsystemScales) {
  // Datacenter-scale coefficients: the expm path stays accurate.
  const double m = 32.0, n = 1.6e9;  // standard-draft increase subsystem
  const SecondOrderSystem sys(m, n);
  const Mat2 mat = companion(m, n);
  const Vec2 z0{-2.5e6, 0.0};
  const LinearSolution sol(sys, z0);
  for (const double t : {1e-5, 1e-4, 1e-3}) {
    const Vec2 exact = sol.eval(t);
    const Vec2 via_expm = expm(mat, t).apply(z0);
    EXPECT_NEAR(via_expm.x, exact.x, 1e-7 * (std::abs(exact.x) + 1.0));
    EXPECT_NEAR(via_expm.y, exact.y, 1e-7 * (std::abs(exact.y) + 1.0));
  }
}

}  // namespace
}  // namespace bcn::control
