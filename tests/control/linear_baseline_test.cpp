#include "control/linear_baseline.h"

#include <gtest/gtest.h>

namespace bcn::control {
namespace {

TEST(LinearBaselineTest, StandardDraftIsDeclaredStable) {
  // a = 1.6e9, b = 1/128, k = 2e-8, C = 1e10: both subsystems Hurwitz ->
  // the baseline declares the system stable even though the buffer is far
  // too small (the paper's central criticism).
  const auto report =
      analyze_linear_baseline(1.6e9, 1.0 / 128.0, 2e-8, 1e10);
  EXPECT_TRUE(report.increase.hurwitz_stable);
  EXPECT_TRUE(report.decrease.hurwitz_stable);
  EXPECT_TRUE(report.declared_stable);
  EXPECT_EQ(report.increase.equilibrium, EquilibriumType::StableFocus);
  EXPECT_EQ(report.decrease.equilibrium, EquilibriumType::StableFocus);
}

TEST(LinearBaselineTest, SubsystemCoefficientsMatchEq35) {
  const double a = 1.6e9, b = 1.0 / 128.0, k = 2e-8, cap = 1e10;
  const auto report = analyze_linear_baseline(a, b, k, cap);
  EXPECT_DOUBLE_EQ(report.increase.m, a * k);
  EXPECT_DOUBLE_EQ(report.increase.n, a);
  EXPECT_DOUBLE_EQ(report.decrease.m, k * b * cap);
  EXPECT_DOUBLE_EQ(report.decrease.n, b * cap);
}

TEST(LinearBaselineTest, AlwaysStableForPhysicalParameters) {
  // Proposition 1: any positive (a, b, k, C) yields Hurwitz-stable
  // subsystems, because m = k n and n > 0.
  for (double a : {1e3, 1e6, 1e9, 1e12}) {
    for (double b : {1e-4, 1e-2, 1.0}) {
      for (double k : {1e-9, 1e-6, 1e-3}) {
        const auto r = analyze_linear_baseline(a, b, k, 1e10);
        EXPECT_TRUE(r.declared_stable)
            << "a=" << a << " b=" << b << " k=" << k;
      }
    }
  }
}

TEST(LinearBaselineTest, NodeRegimeClassified) {
  // Large a k^2 pushes the increase subsystem overdamped (node).
  const auto report = analyze_linear_baseline(1e12, 1e-3, 1e-4, 1e10);
  EXPECT_EQ(report.increase.equilibrium, EquilibriumType::StableNode);
}

TEST(LinearBaselineTest, ToStringMentionsVerdict) {
  const auto report = analyze_linear_baseline(1.6e9, 1.0 / 128.0, 2e-8, 1e10);
  const std::string s = to_string(report);
  EXPECT_NE(s.find("overall: stable"), std::string::npos);
  EXPECT_NE(s.find("Lu et al."), std::string::npos);
}

}  // namespace
}  // namespace bcn::control
