#include "control/frequency.h"

#include <cmath>

#include <gtest/gtest.h>

#include "control/second_order.h"

namespace bcn::control {
namespace {

TEST(FrequencyTest, LoopGainValues) {
  const LoopTransfer loop{4.0, 0.5};  // L(s) = 4 (1 + 0.5 s) / s^2
  // At omega = 2: L(2j) = 4 (1 + j) / (-4) = -(1 + j).
  const auto v = loop_gain(loop, 2.0);
  EXPECT_NEAR(v.real(), -1.0, 1e-12);
  EXPECT_NEAR(v.imag(), -1.0, 1e-12);
}

TEST(FrequencyTest, DelayRotatesPhaseOnly) {
  const LoopTransfer loop{4.0, 0.5};
  const double omega = 3.0;
  const auto base = loop_gain(loop, omega);
  const auto delayed = loop_gain(loop, omega, 0.1);
  EXPECT_NEAR(std::abs(base), std::abs(delayed), 1e-12);
  EXPECT_NEAR(std::arg(delayed), std::arg(base) - omega * 0.1, 1e-12);
}

TEST(FrequencyTest, CrossoverHasUnitMagnitude) {
  for (const LoopTransfer loop :
       {LoopTransfer{1.6e9, 2e-8}, LoopTransfer{7.8125e7, 2e-8},
        LoopTransfer{4.0, 0.5}}) {
    const double wc = gain_crossover(loop);
    EXPECT_NEAR(std::abs(loop_gain(loop, wc)), 1.0, 1e-9);
  }
}

TEST(FrequencyTest, PhaseMarginMatchesDefinition) {
  const LoopTransfer loop{4.0, 0.5};
  const double wc = gain_crossover(loop);
  const double pm = phase_margin(loop);
  EXPECT_NEAR(pm, M_PI + std::arg(loop_gain(loop, wc)), 1e-9);
  EXPECT_GT(pm, 0.0);  // the undelayed loop is always stable (Prop. 1)
}

TEST(FrequencyTest, DelayMarginBoundary) {
  const LoopTransfer loop{4.0, 0.5};
  const double tau_m = delay_margin(loop);
  EXPECT_TRUE(delayed_subsystem_stable(loop, 0.9 * tau_m));
  EXPECT_FALSE(delayed_subsystem_stable(loop, 1.1 * tau_m));
  // At the margin the loop passes exactly through -1.
  const double wc = gain_crossover(loop);
  const auto at_margin = loop_gain(loop, wc, tau_m);
  EXPECT_NEAR(at_margin.real(), -1.0, 1e-9);
  EXPECT_NEAR(at_margin.imag(), 0.0, 1e-9);
}

TEST(FrequencyTest, StandardDraftMarginsAreTiny) {
  // The per-subsystem delay margins of the standard draft are tens of
  // nanoseconds -- three orders of magnitude below the ~28 us critical
  // delay the switched nonlinear system actually tolerates (measured by
  // core::critical_delay): per-subsystem frequency analysis with delay is
  // extremely conservative for the variable-structure system.
  const LoopTransfer increase{1.6e9, 2e-8};   // n = a
  const LoopTransfer decrease{7.8125e7, 2e-8};  // n = bC
  EXPECT_LT(delay_margin(increase), 1e-7);
  EXPECT_LT(delay_margin(decrease), 1e-6);
  EXPECT_GT(delay_margin(increase), 0.0);
}

TEST(FrequencyTest, CharacteristicPolynomialConsistency) {
  // 1 + L(s) = 0 must reproduce s^2 + k n s + n = 0: check that the roots
  // of the characteristic equation satisfy 1 + L = 0.
  const double n = 25.0, k = 0.3;
  const LoopTransfer loop{n, k};
  const SecondOrderSystem sys(k * n, n);
  for (const auto& root : sys.eigenvalues()) {
    const std::complex<double> L =
        loop.n * (1.0 + loop.k * root) / (root * root);
    EXPECT_NEAR(std::abs(1.0 + L), 0.0, 1e-9);
  }
}

TEST(FrequencyTest, CrossoverGrowsWithGain) {
  const double k = 0.1;
  double prev = 0.0;
  for (const double n : {1.0, 10.0, 100.0, 1000.0}) {
    const double wc = gain_crossover({n, k});
    EXPECT_GT(wc, prev);
    prev = wc;
  }
}

}  // namespace
}  // namespace bcn::control
