#include "control/second_order.h"

#include <gtest/gtest.h>

namespace bcn::control {
namespace {

TEST(SecondOrderTest, EigenvaluesRealDistinct) {
  const SecondOrderSystem sys(3.0, 2.0);  // roots -1, -2
  const auto eig = sys.eigenvalues();
  EXPECT_NEAR(eig[0].real(), -2.0, 1e-12);
  EXPECT_NEAR(eig[1].real(), -1.0, 1e-12);
  EXPECT_GT(sys.discriminant(), 0.0);
}

TEST(SecondOrderTest, EigenvaluesComplex) {
  const SecondOrderSystem sys(2.0, 5.0);  // -1 +- 2i
  const auto eig = sys.eigenvalues();
  EXPECT_NEAR(eig[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(std::abs(eig[0].imag()), 2.0, 1e-12);
  EXPECT_LT(sys.discriminant(), 0.0);
}

TEST(SecondOrderTest, ClassifyAllTypes) {
  EXPECT_EQ(SecondOrderSystem(2.0, 5.0).classify(),
            EquilibriumType::StableFocus);
  EXPECT_EQ(SecondOrderSystem(-2.0, 5.0).classify(),
            EquilibriumType::UnstableFocus);
  EXPECT_EQ(SecondOrderSystem(0.0, 5.0).classify(), EquilibriumType::Center);
  EXPECT_EQ(SecondOrderSystem(3.0, 2.0).classify(),
            EquilibriumType::StableNode);
  EXPECT_EQ(SecondOrderSystem(-3.0, 2.0).classify(),
            EquilibriumType::UnstableNode);
  EXPECT_EQ(SecondOrderSystem(2.0, 1.0).classify(),
            EquilibriumType::DegenerateStableNode);
  EXPECT_EQ(SecondOrderSystem(-2.0, 1.0).classify(),
            EquilibriumType::DegenerateUnstableNode);
  EXPECT_EQ(SecondOrderSystem(1.0, -2.0).classify(), EquilibriumType::Saddle);
}

TEST(SecondOrderTest, HurwitzStability) {
  EXPECT_TRUE(SecondOrderSystem(2.0, 5.0).is_hurwitz_stable());
  EXPECT_TRUE(SecondOrderSystem(3.0, 2.0).is_hurwitz_stable());
  EXPECT_FALSE(SecondOrderSystem(-2.0, 5.0).is_hurwitz_stable());
  EXPECT_FALSE(SecondOrderSystem(0.0, 5.0).is_hurwitz_stable());
  EXPECT_FALSE(SecondOrderSystem(1.0, -2.0).is_hurwitz_stable());
}

TEST(SecondOrderTest, RhsMatchesDefinition) {
  const SecondOrderSystem sys(3.0, 2.0);
  const auto f = sys.rhs();
  const Vec2 d = f(0.0, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(d.x, 2.0);                    // dx/dt = y
  EXPECT_DOUBLE_EQ(d.y, -2.0 * 1.0 - 3.0 * 2.0); // dy/dt = -n x - m y
}

TEST(SecondOrderTest, ToStringCoversAllTypes) {
  EXPECT_EQ(to_string(EquilibriumType::StableFocus), "stable focus");
  EXPECT_EQ(to_string(EquilibriumType::Saddle), "saddle");
  EXPECT_FALSE(to_string(EquilibriumType::Center).empty());
}

}  // namespace
}  // namespace bcn::control
