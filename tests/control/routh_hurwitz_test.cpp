#include "control/routh_hurwitz.h"

#include <gtest/gtest.h>

namespace bcn::control {
namespace {

TEST(RouthHurwitzTest, Degree1) {
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 2.0}));       // s + 2
  EXPECT_FALSE(routh_hurwitz_stable({1.0, -2.0}));     // s - 2
  EXPECT_TRUE(routh_hurwitz_stable({-1.0, -2.0}));     // -(s + 2)
}

TEST(RouthHurwitzTest, Degree2) {
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 3.0, 2.0}));   // (s+1)(s+2)
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 2.0, 5.0}));   // -1 +- 2i
  EXPECT_FALSE(routh_hurwitz_stable({1.0, 0.0, 1.0}));  // center
  EXPECT_FALSE(routh_hurwitz_stable({1.0, 1.0, -2.0})); // saddle
}

TEST(RouthHurwitzTest, Degree3) {
  // (s+1)(s+2)(s+3) = s^3 + 6 s^2 + 11 s + 6
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 6.0, 11.0, 6.0}));
  // s^3 + s^2 + s + 10: a2*a1 = 1 < a3*a0 = 10 -> unstable despite
  // positive coefficients (the classic counterexample).
  EXPECT_FALSE(routh_hurwitz_stable({1.0, 1.0, 1.0, 10.0}));
}

TEST(RouthHurwitzTest, Degree4) {
  // (s+1)^2 (s+2)(s+3) = s^4 + 7 s^3 + 17 s^2 + 17 s + 6
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 7.0, 17.0, 17.0, 6.0}));
  // s^4 + s^3 + s^2 + s + 1: roots on/near the unit circle, unstable.
  EXPECT_FALSE(routh_hurwitz_stable({1.0, 1.0, 1.0, 1.0, 1.0}));
  // s^4 + 2 s^3 + 3 s^2 + 2 s + 1e-6: all minors positive -> stable.
  EXPECT_TRUE(routh_hurwitz_stable({1.0, 2.0, 3.0, 2.0, 1e-6}));
}

TEST(RouthHurwitzTest, MissingCoefficientFails) {
  EXPECT_FALSE(routh_hurwitz_stable({1.0, 0.0, 11.0, 6.0}));
}

}  // namespace
}  // namespace bcn::control
