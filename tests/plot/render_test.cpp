#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "plot/ascii.h"
#include "plot/gnuplot.h"
#include "plot/svg.h"

namespace bcn::plot {
namespace {

Series wave() {
  Series s;
  s.name = "wave";
  for (int i = 0; i <= 50; ++i) {
    const double x = i / 50.0 * 6.28;
    s.add(x, std::sin(x));
  }
  return s;
}

TEST(AsciiTest, RendersGridWithLegendAndBounds) {
  AsciiOptions opts;
  opts.title = "Test Plot";
  opts.x_label = "time";
  const std::string out = render_ascii({wave()}, opts);
  EXPECT_NE(out.find("Test Plot"), std::string::npos);
  EXPECT_NE(out.find("*"), std::string::npos);
  EXPECT_NE(out.find("legend: *=wave"), std::string::npos);
  EXPECT_NE(out.find("(time)"), std::string::npos);
  EXPECT_NE(out.find("y: ["), std::string::npos);
}

TEST(AsciiTest, EmptyInput) {
  EXPECT_EQ(render_ascii({}), "(no data)\n");
  EXPECT_EQ(render_ascii({Series{"e", {}}}), "(no data)\n");
}

TEST(AsciiTest, MultipleSeriesGetDistinctGlyphs) {
  Series a = wave();
  Series b = wave();
  b.name = "other";
  for (auto& p : b.points) p.y += 0.5;
  const std::string out = render_ascii({a, b});
  EXPECT_NE(out.find("*=wave"), std::string::npos);
  EXPECT_NE(out.find("+=other"), std::string::npos);
}

TEST(AsciiTest, ZeroAxesDrawn) {
  const std::string out = render_ascii({wave()});
  EXPECT_NE(out.find("-"), std::string::npos);  // y = 0 line
}

TEST(AsciiTest, ConstantSeriesDoesNotDivideByZero) {
  Series flat{"flat", {{0.0, 1.0}, {1.0, 1.0}}};
  const std::string out = render_ascii({flat});
  EXPECT_NE(out.find("*"), std::string::npos);
}

TEST(SvgTest, WellFormedWithLegendAndRefLines) {
  SvgOptions opts;
  opts.title = "BCN <Phase>";
  opts.x_label = "x";
  opts.y_label = "y";
  opts.ref_lines.push_back({false, 0.5, "B-q0"});
  opts.ref_lines.push_back({true, 3.14, "switch"});
  const std::string svg = render_svg({wave()}, opts);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("BCN &lt;Phase&gt;"), std::string::npos);  // escaped
  EXPECT_NE(svg.find("B-q0"), std::string::npos);
  EXPECT_NE(svg.find("wave"), std::string::npos);
}

TEST(SvgTest, OutOfRangeRefLinesSkipped) {
  SvgOptions opts;
  opts.ref_lines.push_back({false, 99.0, "faraway"});
  const std::string svg = render_svg({wave()}, opts);
  EXPECT_EQ(svg.find("faraway"), std::string::npos);
}

TEST(SvgTest, WriteCreatesFile) {
  const auto dir = std::filesystem::temp_directory_path() / "bcn_svg_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "sub" / "plot.svg";
  ASSERT_TRUE(write_svg(path, {wave()}));
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(GnuplotTest, WritesDatAndScript) {
  const auto dir = std::filesystem::temp_directory_path() / "bcn_gp_test";
  std::filesystem::remove_all(dir);
  GnuplotOptions opts;
  opts.title = "T";
  Series b = wave();
  b.name = "second";
  ASSERT_TRUE(write_gnuplot(dir / "fig", {wave(), b}, opts));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir / "fig.gp"));
  std::ifstream gp(dir / "fig.gp");
  std::string all((std::istreambuf_iterator<char>(gp)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("index 0"), std::string::npos);
  EXPECT_NE(all.find("index 1"), std::string::npos);
  EXPECT_NE(all.find("title 'second'"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bcn::plot
