#include "plot/series.h"

#include <gtest/gtest.h>

namespace bcn::plot {
namespace {

ode::Trajectory ramp() {
  ode::Trajectory t;
  t.push_back(0.0, {1.0, -2.0});
  t.push_back(1.0, {3.0, 4.0});
  t.push_back(2.0, {-5.0, 0.5});
  return t;
}

TEST(SeriesTest, Bounds) {
  Series s{"s", {{0.0, 1.0}, {2.0, -3.0}, {-1.0, 5.0}}};
  EXPECT_DOUBLE_EQ(s.min_x(), -1.0);
  EXPECT_DOUBLE_EQ(s.max_x(), 2.0);
  EXPECT_DOUBLE_EQ(s.min_y(), -3.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 5.0);
}

TEST(SeriesTest, VsTimeExtractsComponentWithScaling) {
  const auto s = series_vs_time(ramp(), 0, "x(t)", 1e3, 2.0);
  EXPECT_EQ(s.name, "x(t)");
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_DOUBLE_EQ(s.points[1].x, 1e3);   // t scaled
  EXPECT_DOUBLE_EQ(s.points[1].y, 6.0);   // x scaled
  const auto sy = series_vs_time(ramp(), 1, "y(t)");
  EXPECT_DOUBLE_EQ(sy.points[0].y, -2.0);
}

TEST(SeriesTest, PhasePortrait) {
  const auto s = series_phase(ramp(), "phase", 0.5, 0.25);
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_DOUBLE_EQ(s.points[0].x, 0.5);
  EXPECT_DOUBLE_EQ(s.points[0].y, -0.5);
}

}  // namespace
}  // namespace bcn::plot
