#include "obs/bench_diff.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace bcn::obs {
namespace {

class BenchDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "bcn_bench_diff_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path write(const std::string& name,
                              const JsonWriter& json) {
    const auto path = dir_ / name;
    EXPECT_TRUE(json.write_file(path));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(BenchDiffTest, IdenticalFilesHaveZeroDeltaAndNoRegressions) {
  JsonWriter json;
  json.add("benchmark", "x");
  json.add("wall_seconds", 1.25);
  json.add("cells", 81);
  const auto a = write("a.json", json);
  const auto b = write("b.json", json);

  const auto result = bench_diff(a, b);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(result.compared, 2u);  // the string key is not numeric
  for (const auto& d : result.deltas) {
    EXPECT_EQ(d.rel_delta, 0.0);
    EXPECT_FALSE(d.breach);
  }
}

TEST_F(BenchDiffTest, BreachAboveThresholdOnly) {
  JsonWriter a_json, b_json;
  a_json.add("fast", 1.0);
  a_json.add("slow", 1.0);
  b_json.add("fast", 1.05);  // +5% — inside a 10% budget
  b_json.add("slow", 1.25);  // +25% — regression
  const auto a = write("a.json", a_json);
  const auto b = write("b.json", b_json);

  BenchDiffOptions opts;
  opts.threshold = 0.10;
  const auto result = bench_diff(a, b, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.compared, 2u);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.deltas.size(), 2u);
  // Key-sorted: "fast" then "slow".
  EXPECT_EQ(result.deltas[0].key, "fast");
  EXPECT_FALSE(result.deltas[0].breach);
  EXPECT_EQ(result.deltas[1].key, "slow");
  EXPECT_TRUE(result.deltas[1].breach);
  EXPECT_NEAR(result.deltas[1].rel_delta, 0.25, 1e-12);
}

TEST_F(BenchDiffTest, ZeroThresholdRequiresExactEquality) {
  JsonWriter a_json, b_json;
  a_json.add("v", 2.0);
  b_json.add("v", 2.0000001);
  const auto a = write("a.json", a_json);
  const auto b = write("b.json", b_json);

  BenchDiffOptions opts;
  opts.threshold = 0.0;
  const auto result = bench_diff(a, b, opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.regressions, 1u);
}

TEST_F(BenchDiffTest, ImprovementsAlsoCountAsDeltas) {
  // The gate is |delta|: a metric that got 30% faster still trips a 10%
  // threshold, because an unexplained move in either direction means the
  // baseline is stale.
  JsonWriter a_json, b_json;
  a_json.add("wall", 1.0);
  b_json.add("wall", 0.7);
  const auto result =
      bench_diff(write("a.json", a_json), write("b.json", b_json));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.regressions, 1u);
}

TEST_F(BenchDiffTest, MissingKeysReportedButOnlyBreachWhenRequired) {
  JsonWriter a_json, b_json;
  a_json.add("shared", 1.0);
  a_json.add("gone", 5.0);
  b_json.add("shared", 1.0);
  b_json.add("added", 7.0);
  const auto a = write("a.json", a_json);
  const auto b = write("b.json", b_json);

  auto result = bench_diff(a, b);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.compared, 1u);
  ASSERT_EQ(result.only_in_a.size(), 1u);
  EXPECT_EQ(result.only_in_a[0], "gone");
  ASSERT_EQ(result.only_in_b.size(), 1u);
  EXPECT_EQ(result.only_in_b[0], "added");
  EXPECT_EQ(result.regressions, 0u);

  BenchDiffOptions strict;
  strict.require_same_keys = true;
  result = bench_diff(a, b, strict);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.regressions, 2u);  // one per mismatched key
}

TEST_F(BenchDiffTest, MatchFilterRestrictsComparedKeys) {
  JsonWriter a_json, b_json;
  a_json.add("metrics.profile.ode.self_seconds", 1.0);
  a_json.add("wall_seconds", 1.0);
  b_json.add("metrics.profile.ode.self_seconds", 1.0);
  b_json.add("wall_seconds", 99.0);  // would breach without the filter
  BenchDiffOptions opts;
  opts.match = "profile";
  const auto result =
      bench_diff(write("a.json", a_json), write("b.json", b_json), opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.compared, 1u);
  EXPECT_EQ(result.regressions, 0u);
}

TEST_F(BenchDiffTest, NearZeroBaselineUsesAbsoluteFloor) {
  JsonWriter a_json, b_json;
  a_json.add("tiny", 0.0);
  b_json.add("tiny", 1e-15);
  BenchDiffOptions opts;
  opts.threshold = 0.10;
  opts.abs_floor = 1e-9;  // |b-a|/1e-9 = 1e-6 — noise, not a breach
  const auto result =
      bench_diff(write("a.json", a_json), write("b.json", b_json), opts);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.regressions, 0u);
}

TEST_F(BenchDiffTest, MissingFileReportsErrorNotCrash) {
  JsonWriter json;
  json.add("v", 1.0);
  const auto result =
      bench_diff(dir_ / "nope.json", write("b.json", json));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(BenchDiffTest, FormatMarksBreachesAndSummarizes) {
  JsonWriter a_json, b_json;
  a_json.add("ok_metric", 1.0);
  a_json.add("bad_metric", 1.0);
  b_json.add("ok_metric", 1.01);
  b_json.add("bad_metric", 2.0);
  BenchDiffOptions opts;
  const auto result =
      bench_diff(write("a.json", a_json), write("b.json", b_json), opts);
  const std::string report = format_bench_diff(result, opts);
  EXPECT_NE(report.find("REGRESSION"), std::string::npos);
  EXPECT_NE(report.find("bad_metric"), std::string::npos);
  EXPECT_NE(report.find("1 regression"), std::string::npos);
}

}  // namespace
}  // namespace bcn::obs
