#include "obs/event_trace.h"

#include <gtest/gtest.h>

namespace bcn::obs {
namespace {

TEST(EventTraceTest, CountsByKind) {
  EventTrace trace;
  trace.record({1e-3, EventKind::BcnNegativeSent, 7, 0, -1e5, 0.0});
  trace.record({2e-3, EventKind::BcnNegativeSent, 7, 1, -2e5, 0.0});
  trace.record({3e-3, EventKind::BcnApplied, 0, 1, -2e5, 1.5e9});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(EventKind::BcnNegativeSent), 2u);
  EXPECT_EQ(trace.count(EventKind::BcnApplied), 1u);
  EXPECT_EQ(trace.count(EventKind::PauseOn), 0u);
}

TEST(EventTraceTest, KindNamesAreStableIdentifiers) {
  EXPECT_STREQ(EventTrace::kind_name(EventKind::BcnNegativeSent),
               "bcn_negative_sent");
  EXPECT_STREQ(EventTrace::kind_name(EventKind::PauseOff), "pause_off");
  EXPECT_STREQ(EventTrace::kind_name(EventKind::BcnRateAdvertSent),
               "bcn_rate_advert_sent");
}

// PAUSE expiries are recorded at send time with their future timestamp;
// the CSV must still come out time-ordered, and same-instant events must
// keep recording order (stable sort).
TEST(EventTraceTest, CsvIsTimeSortedWithStableTies) {
  EventTrace trace;
  trace.record({1e-3, EventKind::PauseOn, 2, 0, 0.0, 64e-6});
  trace.record({1e-3 + 64e-6, EventKind::PauseOff, 2, 0, 0.0, 64e-6});
  trace.record({5e-4, EventKind::BcnNegativeSent, 7, 3, -1e5, 0.0});
  trace.record({5e-4, EventKind::BcnApplied, 0, 3, -1e5, 2e9});
  const std::string csv = trace.to_csv();
  const auto neg = csv.find("bcn_negative_sent");
  const auto applied = csv.find("bcn_applied");
  const auto on = csv.find("pause_on");
  const auto off = csv.find("pause_off");
  ASSERT_NE(neg, std::string::npos) << csv;
  ASSERT_NE(applied, std::string::npos) << csv;
  ASSERT_NE(on, std::string::npos) << csv;
  ASSERT_NE(off, std::string::npos) << csv;
  EXPECT_LT(neg, applied);  // same t: recording order preserved
  EXPECT_LT(applied, on);
  EXPECT_LT(on, off);
  // Sorting is on the export copy only; the trace keeps recording order.
  EXPECT_EQ(trace.events().front().kind, EventKind::PauseOn);
}

TEST(EventTraceTest, CsvColumnsCarryCausalFields) {
  EventTrace trace;
  trace.record({0.25, EventKind::BcnNegativeSent, 7, 3, -125000.0, 0.0});
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("t,kind,point,flow,sigma,value"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("0.25,bcn_negative_sent,7,3,-125000,0"),
            std::string::npos)
      << csv;
}

// Flight-recorder ring mode: capacity bounds the trace to the newest
// events, evicting in recording order.  The eviction order is pinned —
// a wrapped ring must yield exactly the last `capacity` events, oldest
// surviving first, via in_order()/recent() even though the raw slot
// order has rotated.
TEST(EventTraceTest, RingEvictsOldestInRecordingOrder) {
  EventTrace trace;
  trace.set_ring_capacity(4);
  EXPECT_EQ(trace.ring_capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    trace.record({static_cast<double>(i), EventKind::BcnNegativeSent,
                  static_cast<std::uint32_t>(i), 0, 0.0, 0.0});
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.evicted(), 2u);
  const auto ordered = trace.in_order();
  ASSERT_EQ(ordered.size(), 4u);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_DOUBLE_EQ(ordered[i].t, static_cast<double>(i + 2)) << "slot " << i;
  }
  // The raw storage has wrapped: slot order is rotated, not chronological.
  EXPECT_DOUBLE_EQ(trace.events().front().t, 4.0);
}

TEST(EventTraceTest, RecentReturnsNewestTailInOrder) {
  EventTrace trace;
  trace.set_ring_capacity(4);
  for (int i = 0; i < 7; ++i) {
    trace.record({static_cast<double>(i), EventKind::PauseOn, 1, 0, 0.0, 0.0});
  }
  const auto tail = trace.recent(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0].t, 5.0);
  EXPECT_DOUBLE_EQ(tail[1].t, 6.0);
  // Asking for more than retained clamps to the whole retained window.
  EXPECT_EQ(trace.recent(100).size(), 4u);
}

TEST(EventTraceTest, RingBeforeWrapAndUnboundedDefaultKeepEverything) {
  EventTrace ring;
  ring.set_ring_capacity(8);
  ring.record({0.0, EventKind::BcnPositiveSent, 0, 0, 1.0, 0.0});
  ring.record({1.0, EventKind::BcnPositiveSent, 0, 1, 1.0, 0.0});
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.evicted(), 0u);
  EXPECT_DOUBLE_EQ(ring.in_order().front().t, 0.0);

  EventTrace unbounded;  // default: legacy unbounded vector
  EXPECT_EQ(unbounded.ring_capacity(), 0u);
  for (int i = 0; i < 100; ++i) {
    unbounded.record({static_cast<double>(i), EventKind::BcnApplied, 0,
                      0, 0.0, 0.0});
  }
  EXPECT_EQ(unbounded.size(), 100u);
  EXPECT_EQ(unbounded.evicted(), 0u);
}

}  // namespace
}  // namespace bcn::obs
