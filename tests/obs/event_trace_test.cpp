#include "obs/event_trace.h"

#include <gtest/gtest.h>

namespace bcn::obs {
namespace {

TEST(EventTraceTest, CountsByKind) {
  EventTrace trace;
  trace.record({1e-3, EventKind::BcnNegativeSent, 7, 0, -1e5, 0.0});
  trace.record({2e-3, EventKind::BcnNegativeSent, 7, 1, -2e5, 0.0});
  trace.record({3e-3, EventKind::BcnApplied, 0, 1, -2e5, 1.5e9});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.count(EventKind::BcnNegativeSent), 2u);
  EXPECT_EQ(trace.count(EventKind::BcnApplied), 1u);
  EXPECT_EQ(trace.count(EventKind::PauseOn), 0u);
}

TEST(EventTraceTest, KindNamesAreStableIdentifiers) {
  EXPECT_STREQ(EventTrace::kind_name(EventKind::BcnNegativeSent),
               "bcn_negative_sent");
  EXPECT_STREQ(EventTrace::kind_name(EventKind::PauseOff), "pause_off");
  EXPECT_STREQ(EventTrace::kind_name(EventKind::BcnRateAdvertSent),
               "bcn_rate_advert_sent");
}

// PAUSE expiries are recorded at send time with their future timestamp;
// the CSV must still come out time-ordered, and same-instant events must
// keep recording order (stable sort).
TEST(EventTraceTest, CsvIsTimeSortedWithStableTies) {
  EventTrace trace;
  trace.record({1e-3, EventKind::PauseOn, 2, 0, 0.0, 64e-6});
  trace.record({1e-3 + 64e-6, EventKind::PauseOff, 2, 0, 0.0, 64e-6});
  trace.record({5e-4, EventKind::BcnNegativeSent, 7, 3, -1e5, 0.0});
  trace.record({5e-4, EventKind::BcnApplied, 0, 3, -1e5, 2e9});
  const std::string csv = trace.to_csv();
  const auto neg = csv.find("bcn_negative_sent");
  const auto applied = csv.find("bcn_applied");
  const auto on = csv.find("pause_on");
  const auto off = csv.find("pause_off");
  ASSERT_NE(neg, std::string::npos) << csv;
  ASSERT_NE(applied, std::string::npos) << csv;
  ASSERT_NE(on, std::string::npos) << csv;
  ASSERT_NE(off, std::string::npos) << csv;
  EXPECT_LT(neg, applied);  // same t: recording order preserved
  EXPECT_LT(applied, on);
  EXPECT_LT(on, off);
  // Sorting is on the export copy only; the trace keeps recording order.
  EXPECT_EQ(trace.events().front().kind, EventKind::PauseOn);
}

TEST(EventTraceTest, CsvColumnsCarryCausalFields) {
  EventTrace trace;
  trace.record({0.25, EventKind::BcnNegativeSent, 7, 3, -125000.0, 0.0});
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("t,kind,point,flow,sigma,value"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("0.25,bcn_negative_sent,7,3,-125000,0"),
            std::string::npos)
      << csv;
}

}  // namespace
}  // namespace bcn::obs
