// Integrator step statistics surfaced for the observability layer: the
// hybrid driver must account for accepted/rejected DOPRI5 steps, the
// smallest accepted dt, and the bisection effort spent localizing each
// switching-surface crossing.
#include <gtest/gtest.h>

#include "ode/hybrid.h"
#include "ode/integrate.h"

namespace bcn::ode {
namespace {

// The switched oscillator from hybrid_test: stiffness 1 for x > 0,
// stiffness 4 for x < 0, guard x = 0.
HybridSystem switched_oscillator() {
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; });
  sys.modes.push_back(
      [](double, Vec2 z) -> Vec2 { return {z.y, -4.0 * z.x}; });
  sys.mode_of = [](double, Vec2 z) { return z.x > 0.0 ? 0 : 1; };
  sys.guards.push_back([](double, Vec2 z) { return z.x; });
  return sys;
}

TEST(StepStatsTest, HybridCountsStepsAndBisections) {
  const auto sys = switched_oscillator();
  HybridOptions opts;
  opts.tol = {1e-10, 1e-10};
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 10.0, opts);
  ASSERT_TRUE(res.completed);
  ASSERT_GE(res.switches.size(), 3u);

  EXPECT_GT(res.steps_accepted, 0u);
  // Every recorded trajectory advance comes from an accepted step.
  EXPECT_GE(res.steps_accepted, res.trajectory.size() - 1);
  EXPECT_GT(res.min_accepted_step, 0.0);
  EXPECT_LE(res.min_accepted_step, 10.0);

  // Each guard crossing was localized by bisection, and the per-switch
  // iteration counts sum to the total.
  std::size_t per_switch_total = 0;
  for (const auto& sw : res.switches) {
    EXPECT_GT(sw.bisection_iterations, 0) << "switch at t=" << sw.t;
    per_switch_total += static_cast<std::size_t>(sw.bisection_iterations);
  }
  EXPECT_EQ(res.event_bisection_iterations, per_switch_total);
}

TEST(StepStatsTest, NoSwitchingMeansNoBisectionEffort) {
  HybridSystem sys;
  sys.modes.push_back([](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; });
  sys.mode_of = [](double, Vec2) { return 0; };
  sys.guards.push_back([](double, Vec2) { return 1.0; });  // never crosses
  HybridOptions opts;
  opts.tol = {1e-9, 1e-9};
  const auto res = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 5.0, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.switches.empty());
  EXPECT_EQ(res.event_bisection_iterations, 0u);
  EXPECT_GT(res.steps_accepted, 0u);
  EXPECT_GT(res.min_accepted_step, 0.0);
}

TEST(StepStatsTest, TighterToleranceCostsMoreSteps) {
  const auto sys = switched_oscillator();
  HybridOptions loose;
  loose.tol = {1e-6, 1e-6};
  HybridOptions tight;
  tight.tol = {1e-12, 1e-12};
  const auto coarse = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 10.0, loose);
  const auto fine = integrate_hybrid(sys, 0.0, {1.0, 0.0}, 10.0, tight);
  ASSERT_TRUE(coarse.completed);
  ASSERT_TRUE(fine.completed);
  EXPECT_GT(fine.steps_accepted, coarse.steps_accepted);
  EXPECT_LT(fine.min_accepted_step, coarse.min_accepted_step);
}

TEST(StepStatsTest, SmoothAdaptiveTracksMinAcceptedStep) {
  AdaptiveOptions opts;
  opts.tol = {1e-10, 1e-10};
  const auto res = integrate_adaptive(
      [](double, Vec2 z) -> Vec2 { return {z.y, -z.x}; }, 0.0, {1.0, 0.0},
      5.0, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.min_accepted_step, 0.0);
  EXPECT_LE(res.min_accepted_step, 5.0);
}

}  // namespace
}  // namespace bcn::ode
