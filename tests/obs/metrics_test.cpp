#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/json.h"
#include "exec/parallel_for.h"

namespace bcn::obs {
namespace {

TEST(MetricsTest, CounterCreatesOnFirstUseAndAccumulates) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.find_counter("frames"), nullptr);
  reg.counter("frames").inc();
  reg.counter("frames").inc(41);
  ASSERT_NE(reg.find_counter("frames"), nullptr);
  EXPECT_EQ(reg.find_counter("frames")->value(), 42u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsTest, CounterReferenceIsStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot");
  // Creating many other entries must not invalidate the held reference.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  c.inc(7);
  EXPECT_EQ(reg.find_counter("hot")->value(), 7u);
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  reg.gauge("queue").set(1.5);
  reg.gauge("queue").set(-3.25);
  EXPECT_DOUBLE_EQ(reg.find_gauge("queue")->value(), -3.25);
}

TEST(MetricsTest, HistogramBucketsBySortedBounds) {
  Histogram h({10.0, 20.0, 30.0});
  h.record(5.0);    // -> le_10
  h.record(10.0);   // boundary counts in le_10 (lower_bound semantics)
  h.record(15.0);   // -> le_20
  h.record(35.0);   // -> overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 65.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(MetricsTest, HistogramMergeRequiresMatchingBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  Histogram other({1.0, 3.0});
  a.record(0.5);
  b.record(1.5);
  b.record(5.0);
  other.record(0.5);

  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);

  // Incompatible layout: refused (false) and the target is untouched.
  EXPECT_FALSE(a.merge(other));
  EXPECT_EQ(a.count(), 3u);
}

// Pool workers bump shared counters from instrumented parallel stages;
// the relaxed-atomic implementation must be race-free (this test runs
// under ThreadSanitizer via scripts/check.sh) and lose no increments.
TEST(MetricsTest, CounterAndGaugeAreSafeUnderParallelFor) {
  MetricsRegistry reg;
  Counter& hits = reg.counter("parallel.hits");
  Gauge& last = reg.gauge("parallel.last");
  exec::ParallelForOptions opts;
  opts.threads = 4;
  constexpr std::size_t kN = 10'000;
  exec::parallel_for(
      kN,
      [&](std::size_t i) {
        hits.inc();
        last.set(static_cast<double>(i));
      },
      opts);
  EXPECT_EQ(hits.value(), kN);
  EXPECT_GE(last.value(), 0.0);
  EXPECT_LT(last.value(), static_cast<double>(kN));
}

TEST(MetricsTest, RegistryHistogramKeepsFirstBounds) {
  MetricsRegistry reg;
  reg.histogram("sigma", {1.0, 2.0}).record(0.5);
  // Second call with different bounds returns the existing histogram.
  Histogram& again = reg.histogram("sigma", {99.0});
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(again.count(), 1u);
}

// The registry snapshot must not depend on creation or update order —
// RUN_*.json artifacts are diffed across runs.
TEST(MetricsTest, WriteJsonIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a;
  a.counter("z.count").inc(3);
  a.counter("a.count").inc(1);
  a.gauge("m.level").set(2.5);
  a.histogram("h.vals", {1.0, 10.0}).record(5.0);

  MetricsRegistry b;
  b.histogram("h.vals", {1.0, 10.0}).record(5.0);
  b.gauge("m.level").set(2.5);
  b.counter("a.count").inc(1);
  b.counter("z.count").inc(3);

  JsonWriter ja, jb;
  a.write_json(ja, "metrics.");
  b.write_json(jb, "metrics.");
  EXPECT_EQ(ja.to_string(), jb.to_string());
}

TEST(MetricsTest, WriteJsonEmitsCumulativeHistogramBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);
  JsonWriter json;
  reg.write_json(json, "m.");
  const std::string s = json.to_string();
  EXPECT_NE(s.find("\"m.lat.count\": 3"), std::string::npos) << s;
  EXPECT_NE(s.find("\"m.lat.le_1\": 1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"m.lat.le_2\": 2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"m.lat.le_inf\": 3"), std::string::npos) << s;
}

}  // namespace
}  // namespace bcn::obs
