// Runtime invariant monitors: spec grammar round-trip, the online
// predicates (queue/rate bounds, conservation, finiteness, watchdog,
// fluid cross-check) with the Record action, the snapshot ring, and the
// monitor.* metric names.  The sim-layer wiring (per-frame hooks, the
// pinned determinism digest under armed monitors, bundle determinism)
// lives in tests/sim/monitor_wiring_test.cpp.
#include "obs/monitor.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace bcn::obs {
namespace {

MonitorSample sample(double t, double queue_bits, double rate) {
  MonitorSample s;
  s.t = t;
  s.queue_bits = queue_bits;
  s.aggregate_rate = rate;
  return s;
}

// --- Spec grammar -------------------------------------------------------

TEST(MonitorSpecTest, ParsesSingleMonitorsAndAll) {
  const auto queue = parse_monitor_spec("queue_bounds");
  ASSERT_TRUE(queue.has_value());
  EXPECT_TRUE(queue->queue_bounds);
  EXPECT_FALSE(queue->watchdog);
  EXPECT_TRUE(queue->any());

  const auto all = parse_monitor_spec("all");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->queue_bounds);
  EXPECT_TRUE(all->rate_bounds);
  EXPECT_TRUE(all->conservation);
  EXPECT_TRUE(all->finite);
  EXPECT_TRUE(all->watchdog);
  EXPECT_TRUE(all->crosscheck);

  const auto none = parse_monitor_spec("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->any());
}

TEST(MonitorSpecTest, OptionsComposeWithMonitors) {
  const auto spec =
      parse_monitor_spec("watchdog,window=2ms,ring=1024,snapshots=32");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->watchdog);
  EXPECT_FALSE(spec->queue_bounds);
  EXPECT_DOUBLE_EQ(spec->watchdog_window, 2e-3);
  EXPECT_EQ(spec->ring, 1024u);
  EXPECT_EQ(spec->snapshots, 32u);
  // Duration suffixes beyond ms.
  const auto us = parse_monitor_spec("all,window=200us");
  ASSERT_TRUE(us.has_value());
  EXPECT_DOUBLE_EQ(us->watchdog_window, 2e-4);
}

TEST(MonitorSpecTest, MalformedSpecsFillError) {
  std::string error;
  EXPECT_FALSE(parse_monitor_spec("", &error).has_value());
  EXPECT_EQ(error, "empty spec");
  EXPECT_FALSE(parse_monitor_spec("bogus", &error).has_value());
  EXPECT_NE(error.find("unknown monitor 'bogus'"), std::string::npos);
  EXPECT_FALSE(parse_monitor_spec("all,,watchdog", &error).has_value());
  EXPECT_EQ(error, "empty entry");
  EXPECT_FALSE(parse_monitor_spec("window=5", &error).has_value());  // no unit
  EXPECT_FALSE(parse_monitor_spec("window=-3ms", &error).has_value());
  EXPECT_FALSE(parse_monitor_spec("snapshots=0", &error).has_value());
  EXPECT_FALSE(parse_monitor_spec("ring=abc", &error).has_value());
  EXPECT_FALSE(parse_monitor_spec("color=red", &error).has_value());
  EXPECT_NE(error.find("unknown option 'color'"), std::string::npos);
}

TEST(MonitorSpecTest, SummaryRoundTripsThroughTheParser) {
  for (const char* text :
       {"all", "none", "queue_bounds,watchdog", "all,ring=128",
        "conservation,crosscheck,snapshots=16"}) {
    const auto spec = parse_monitor_spec(text);
    ASSERT_TRUE(spec.has_value()) << text;
    const std::string summary = monitor_spec_summary(*spec);
    const auto reparsed = parse_monitor_spec(summary);
    ASSERT_TRUE(reparsed.has_value()) << summary;
    EXPECT_EQ(monitor_spec_summary(*reparsed), summary);
  }
  EXPECT_EQ(monitor_spec_summary(MonitorSpec{}), "none");
  EXPECT_EQ(monitor_spec_summary(MonitorSpec::all()), "all");
}

// --- RunMonitor predicates (Record action: collect, never exit) ---------

MonitorConfig record_config(const char* spec_text) {
  MonitorConfig cfg;
  cfg.spec = *parse_monitor_spec(spec_text);
  cfg.action = ViolationAction::Record;
  return cfg;
}

TEST(RunMonitorTest, UnarmedMonitorChecksNothing) {
  RunMonitor monitor;
  monitor.configure(record_config("none"));
  EXPECT_FALSE(monitor.armed());
  monitor.check_queue(0.0, 0, -1.0);        // out of bounds, but unarmed
  monitor.on_sample(sample(1.0, -1.0, -1.0));
  EXPECT_EQ(monitor.checks(), 0u);
  EXPECT_EQ(monitor.violation_count(), 0u);
  EXPECT_TRUE(monitor.snapshots().empty());
}

TEST(RunMonitorTest, QueueBoundsTripOnOverflowAndNegative) {
  RunMonitor monitor;
  monitor.configure(record_config("queue_bounds"));
  monitor.set_queue_bound(100.0);
  monitor.check_queue(0.1, 3, 50.0);
  EXPECT_EQ(monitor.violation_count(), 0u);
  monitor.check_queue(0.2, 3, 100.0 + 2e-6);  // above B + slack
  monitor.check_queue(0.3, 3, -1.0);
  EXPECT_EQ(monitor.violation_count(), 2u);
  ASSERT_EQ(monitor.violations().size(), 2u);
  EXPECT_EQ(monitor.violations()[0].invariant, "queue_bounds");
  EXPECT_DOUBLE_EQ(monitor.violations()[0].value, 100.0 + 2e-6);
  EXPECT_DOUBLE_EQ(monitor.violations()[0].bound, 100.0);
  EXPECT_EQ(monitor.checks(), 3u);
}

TEST(RunMonitorTest, RateBoundsTripOnNegativeAndAboveAggregate) {
  RunMonitor monitor;
  monitor.configure(record_config("rate_bounds"));
  monitor.set_rate_bound(10e9);
  monitor.on_sample(sample(0.1, 0.0, 5e9));
  EXPECT_EQ(monitor.violation_count(), 0u);
  monitor.on_sample(sample(0.2, 0.0, -1.0));
  monitor.on_sample(sample(0.3, 0.0, 11e9));
  EXPECT_EQ(monitor.violation_count(), 2u);
  EXPECT_EQ(monitor.violations()[0].invariant, "rate_bounds");
}

TEST(RunMonitorTest, FiniteGuardCatchesNanAndInf) {
  RunMonitor monitor;
  monitor.configure(record_config("finite"));
  monitor.on_sample(sample(0.1, 1.0, 1.0));
  EXPECT_EQ(monitor.violation_count(), 0u);
  monitor.on_sample(sample(0.2, std::nan(""), 1.0));
  MonitorSample inf = sample(0.3, 1.0, 1.0);
  inf.bits_delivered = std::numeric_limits<double>::infinity();
  monitor.on_sample(inf);
  EXPECT_EQ(monitor.violation_count(), 2u);
  EXPECT_EQ(monitor.violations()[0].invariant, "finite");
}

TEST(RunMonitorTest, ConservationChecksInequalitiesAndMonotonicity) {
  RunMonitor monitor;
  monitor.configure(record_config("conservation"));
  MonitorSample ok = sample(0.1, 0.0, 0.0);
  ok.frames_sent = 10;
  ok.frames_enqueued = 9;
  ok.frames_delivered = 8;
  ok.frames_dropped = 1;
  ok.bits_delivered = 8000.0;
  monitor.on_sample(ok);
  EXPECT_EQ(monitor.violation_count(), 0u);

  // delivered > enqueued: a frame left the queue that never entered it.
  MonitorSample bad = ok;
  bad.t = 0.2;
  bad.frames_delivered = 12;
  bad.frames_sent = 13;
  monitor.on_sample(bad);
  EXPECT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations()[0].invariant, "conservation");

  // Lifetime counter regression (monotonicity).
  MonitorSample regressed = ok;
  regressed.t = 0.3;
  regressed.frames_sent = 5;
  regressed.frames_enqueued = 5;
  regressed.frames_delivered = 4;
  regressed.frames_dropped = 0;
  regressed.bits_delivered = 4000.0;
  monitor.on_sample(regressed);
  EXPECT_EQ(monitor.violation_count(), 2u);
}

TEST(RunMonitorTest, WatchdogTripsAfterQuietWindowAndReArms) {
  MonitorConfig cfg = record_config("watchdog,window=1ms");
  RunMonitor monitor;
  monitor.configure(cfg);
  MonitorSample s = sample(0.0, 0.0, 0.0);
  s.frames_sent = 100;
  s.frames_delivered = 50;
  monitor.on_sample(s);
  s.t = 0.5e-3;
  monitor.on_sample(s);  // quiet, inside the window
  EXPECT_EQ(monitor.violation_count(), 0u);
  s.t = 1.5e-3;
  monitor.on_sample(s);  // quiet past the window: trip
  EXPECT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations()[0].invariant, "watchdog");
  s.t = 2.5e-3;
  monitor.on_sample(s);  // still stalled: latched, no duplicate
  EXPECT_EQ(monitor.violation_count(), 1u);
  s.t = 3e-3;
  s.frames_delivered = 51;  // progress resumes, watchdog re-arms
  monitor.on_sample(s);
  s.t = 5e-3;
  monitor.on_sample(s);  // stalls again past the window
  EXPECT_EQ(monitor.violation_count(), 2u);
}

TEST(RunMonitorTest, WatchdogIgnoresIdleRunsWithNothingOutstanding) {
  RunMonitor monitor;
  monitor.configure(record_config("watchdog,window=1ms"));
  MonitorSample s = sample(0.0, 0.0, 0.0);
  s.frames_sent = 50;
  s.frames_delivered = 50;  // nothing in flight: no deadlock possible
  monitor.on_sample(s);
  s.t = 10e-3;
  monitor.on_sample(s);
  EXPECT_EQ(monitor.violation_count(), 0u);
}

TEST(RunMonitorTest, CrosscheckFiresOnlyAgainstACertifiedVerdict) {
  MonitorSample contradicting = sample(0.1, 0.0, 0.0);
  contradicting.pause_frames = 3;

  // No fluid hint: the crosscheck never arms.
  {
    RunMonitor monitor;
    monitor.configure(record_config("crosscheck"));
    monitor.on_sample(contradicting);
    EXPECT_EQ(monitor.violation_count(), 0u);
  }
  // Fluid says unstable: observed congestion is expected, not a bug.
  {
    MonitorConfig cfg = record_config("crosscheck");
    cfg.fluid_strongly_stable = false;
    RunMonitor monitor;
    monitor.configure(cfg);
    monitor.on_sample(contradicting);
    EXPECT_EQ(monitor.violation_count(), 0u);
  }
  // Fluid certified strong stability: PAUSE/drops/overflow contradict it,
  // and the latch fires exactly once for the whole run.
  {
    MonitorConfig cfg = record_config("crosscheck");
    cfg.fluid_strongly_stable = true;
    RunMonitor monitor;
    monitor.configure(cfg);
    monitor.set_queue_bound(100.0);
    monitor.on_sample(sample(0.05, 50.0, 0.0));  // clean sample: no trip
    EXPECT_EQ(monitor.violation_count(), 0u);
    monitor.on_sample(contradicting);
    monitor.on_sample(contradicting);
    EXPECT_EQ(monitor.violation_count(), 1u);
    EXPECT_EQ(monitor.violations()[0].invariant, "crosscheck");
  }
}

// --- Snapshot ring and metrics ------------------------------------------

TEST(RunMonitorTest, SnapshotRingKeepsNewestInChronologicalOrder) {
  RunMonitor monitor;
  monitor.configure(record_config("finite,snapshots=4"));
  for (int i = 0; i < 6; ++i) {
    monitor.on_sample(sample(static_cast<double>(i), 1.0, 1.0));
  }
  const auto snaps = monitor.snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(snaps[i].t, static_cast<double>(i + 2));
  }
}

TEST(RunMonitorTest, ExportsMonitorMetricsUnderPrefix) {
  RunMonitor monitor;
  monitor.configure(record_config("queue_bounds"));
  monitor.set_queue_bound(100.0);
  monitor.check_queue(0.1, 0, 50.0);
  monitor.check_queue(0.2, 0, 200.0);
  MetricsRegistry registry;
  monitor.export_metrics(registry);
  const auto* armed = registry.find_gauge("monitor.armed");
  const auto* checks = registry.find_counter("monitor.checks");
  const auto* violations = registry.find_counter("monitor.violations");
  const auto* per_invariant =
      registry.find_counter("monitor.violations.queue_bounds");
  ASSERT_NE(armed, nullptr);
  ASSERT_NE(checks, nullptr);
  ASSERT_NE(violations, nullptr);
  ASSERT_NE(per_invariant, nullptr);
  EXPECT_DOUBLE_EQ(armed->value(), 1.0);
  EXPECT_EQ(checks->value(), 2u);
  EXPECT_EQ(violations->value(), 1u);
  EXPECT_EQ(per_invariant->value(), 1u);
}

// --- Deterministic cross-shard merge ------------------------------------

TEST(RunMonitorTest, MergeFromSumsCountsAndOrdersViolationsByTime) {
  RunMonitor a;
  a.configure(record_config("queue_bounds"));
  a.set_queue_bound(100.0);
  a.check_queue(0.1, 0, 50.0);
  a.check_queue(0.4, 0, 300.0);  // violation at t=0.4

  RunMonitor b;
  b.configure(record_config("queue_bounds"));
  b.set_queue_bound(100.0);
  b.check_queue(0.2, 1, 200.0);  // violation at t=0.2
  b.check_queue(0.3, 1, 80.0);
  b.check_queue(0.5, 1, 250.0);  // violation at t=0.5

  a.merge_from(b);
  EXPECT_TRUE(a.armed());
  EXPECT_EQ(a.checks(), 5u);
  EXPECT_EQ(a.violation_count(), 3u);
  const auto& violations = a.violations();
  ASSERT_EQ(violations.size(), 3u);
  // Merged order is (t, invariant, message) -- shard-id independent.
  EXPECT_DOUBLE_EQ(violations[0].t, 0.2);
  EXPECT_DOUBLE_EQ(violations[1].t, 0.4);
  EXPECT_DOUBLE_EQ(violations[2].t, 0.5);
}

TEST(RunMonitorTest, MergeFromKeepsNewestSnapshotsChronological) {
  RunMonitor a;
  a.configure(record_config("finite,snapshots=4"));
  RunMonitor b;
  b.configure(record_config("finite,snapshots=4"));
  // Interleaved sample times across the two shards.
  for (const double t : {0.1, 0.3, 0.5}) a.on_sample(sample(t, 1.0, 1.0));
  for (const double t : {0.2, 0.4, 0.6}) b.on_sample(sample(t, 1.0, 1.0));
  a.merge_from(b);
  const auto snaps = a.snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_DOUBLE_EQ(snaps[i].t, 0.3 + 0.1 * static_cast<double>(i));
  }
}

TEST(RunMonitorTest, MergeFromWithUnarmedPeerIsANoOp) {
  RunMonitor a;
  a.configure(record_config("queue_bounds"));
  a.set_queue_bound(100.0);
  a.check_queue(0.1, 0, 200.0);
  RunMonitor unarmed;
  a.merge_from(unarmed);
  EXPECT_EQ(a.checks(), 1u);
  EXPECT_EQ(a.violation_count(), 1u);
}

TEST(RunMonitorTest, ConfigureSwitchesTraceIntoRingMode) {
  EventTrace trace;
  MonitorConfig cfg = record_config("queue_bounds,ring=8");
  RunMonitor monitor;
  monitor.configure(cfg, &trace);
  EXPECT_EQ(trace.ring_capacity(), 8u);
  EXPECT_TRUE(trace.enabled());
}

}  // namespace
}  // namespace bcn::obs
