#include "obs/timeline.h"

#include <gtest/gtest.h>

namespace bcn::obs {
namespace {

TEST(TimelineTest, SeriesCreatesOnFirstUseWithStableReference) {
  TimelineSet set;
  Timeline& flow = set.series("flow.0001.rate_bps");
  for (int i = 0; i < 50; ++i) {
    set.series("filler." + std::to_string(i));
  }
  flow.record(0.0, 1e9);
  flow.record(1e-3, 2e9);
  ASSERT_NE(set.find("flow.0001.rate_bps"), nullptr);
  EXPECT_EQ(set.find("flow.0001.rate_bps")->size(), 2u);
  EXPECT_EQ(set.find("missing"), nullptr);
  EXPECT_EQ(set.total_points(), 2u);
}

TEST(TimelineTest, NamesAreSortedRegardlessOfCreationOrder) {
  TimelineSet set;
  set.series("port.core.queue_bits");
  set.series("flow.0002.rate_bps");
  set.series("flow.0001.rate_bps");
  const auto names = set.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "flow.0001.rate_bps");
  EXPECT_EQ(names[1], "flow.0002.rate_bps");
  EXPECT_EQ(names[2], "port.core.queue_bits");
}

TEST(TimelineTest, CsvIsLongFormatGroupedBySeriesName) {
  TimelineSet set;
  set.series("b.series").record(0.5, 2.0);
  set.series("a.series").record(0.25, 1.0);
  set.series("a.series").record(0.75, 3.0);
  const std::string csv = set.to_csv();
  const auto header_pos = csv.find("series,t,value");
  const auto a_pos = csv.find("a.series,0.25,1");
  const auto a2_pos = csv.find("a.series,0.75,3");
  const auto b_pos = csv.find("b.series,0.5,2");
  ASSERT_NE(header_pos, std::string::npos) << csv;
  ASSERT_NE(a_pos, std::string::npos) << csv;
  ASSERT_NE(a2_pos, std::string::npos) << csv;
  ASSERT_NE(b_pos, std::string::npos) << csv;
  EXPECT_LT(header_pos, a_pos);
  EXPECT_LT(a_pos, a2_pos);   // points stay in recording order
  EXPECT_LT(a2_pos, b_pos);   // series grouped in name order
}

TEST(TimelineTest, EmptySetExportsHeaderOnly) {
  TimelineSet set;
  EXPECT_TRUE(set.empty());
  const std::string csv = set.to_csv();
  EXPECT_NE(csv.find("series,t,value"), std::string::npos);
  // Header line plus trailing newline, nothing else.
  EXPECT_EQ(csv.find('\n'), csv.rfind('\n'));
}

}  // namespace
}  // namespace bcn::obs
