#include "obs/tracing.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_for.h"
#include "obs/metrics.h"

namespace bcn::obs {
namespace {

// Every test owns the global recorder state: start clean, leave clean.
class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracing_disable();
    tracing_clear();
  }
  void TearDown() override {
    tracing_disable();
    tracing_clear();
  }
};

void spin_for(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST_F(TracingTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    TraceSpan outer("test.outer");
    TraceSpan inner("test.inner", "k", 1.0);
    inner.arg("extra", 2.0);
    EXPECT_FALSE(outer.active());
    EXPECT_FALSE(inner.active());
  }
  EXPECT_EQ(tracing_drain(), 0u);
  EXPECT_TRUE(tracing_spans().empty());
}

TEST_F(TracingTest, NestedSpansRecordDepthAndCloseChildFirst) {
  tracing_enable();
  {
    TraceSpan outer("test.outer");
    { TraceSpan inner("test.inner"); }
    { TraceSpan inner2("test.inner"); }
  }
  tracing_drain();
  const auto& spans = tracing_spans();
  ASSERT_EQ(spans.size(), 3u);
  // Children close (and therefore record) before the parent.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_STREQ(spans[2].name, "test.outer");
  EXPECT_EQ(spans[2].depth, 0);
  // The parent's interval covers both children.
  EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
}

TEST_F(TracingTest, SelfTimeExcludesChildren) {
  tracing_enable();
  {
    TraceSpan outer("test.outer");
    {
      TraceSpan child("test.child");
      spin_for(std::chrono::microseconds(2000));
    }
    spin_for(std::chrono::microseconds(500));
  }
  tracing_drain();
  const auto& spans = tracing_spans();
  ASSERT_EQ(spans.size(), 2u);
  const auto& child = spans[0];
  const auto& outer = spans[1];
  ASSERT_STREQ(outer.name, "test.outer");
  // Inclusive >= child; exclusive = inclusive - child exactly.
  EXPECT_GE(outer.dur_ns, child.dur_ns);
  EXPECT_EQ(outer.self_ns, outer.dur_ns - child.dur_ns);
  // The child had no children, so its self time is its duration.
  EXPECT_EQ(child.self_ns, child.dur_ns);
  // And the child really did spin for ~2 ms while the parent tail was
  // ~0.5 ms, so exclusive must be well under inclusive.
  EXPECT_LT(outer.self_ns, outer.dur_ns / 2);
}

TEST_F(TracingTest, ArgsAreCappedAtCapacity) {
  tracing_enable();
  {
    TraceSpan span("test.args", "a", 1.0);
    span.arg("b", 2.0);
    span.arg("c", 3.0);
    span.arg("d", 4.0);
    span.arg("overflow", 5.0);  // silently dropped
  }
  tracing_drain();
  ASSERT_EQ(tracing_spans().size(), 1u);
  const auto& s = tracing_spans()[0];
  ASSERT_EQ(s.n_args, kMaxTraceArgs);
  EXPECT_STREQ(s.args[0].key, "a");
  EXPECT_EQ(s.args[3].value, 4.0);
}

TEST_F(TracingTest, SelfProfileAggregatesByNameSorted) {
  tracing_enable();
  {
    TraceSpan b1("test.b");
    { TraceSpan a1("test.a"); }
    { TraceSpan a2("test.a"); }
  }
  tracing_drain();
  const auto profile = build_self_profile(tracing_spans());
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].name, "test.a");  // name-sorted
  EXPECT_EQ(profile[0].calls, 2u);
  EXPECT_EQ(profile[1].name, "test.b");
  EXPECT_EQ(profile[1].calls, 1u);
  // test.b's inclusive time covers both test.a calls; its exclusive time
  // is what profile semantics subtract back out.
  EXPECT_GE(profile[1].total_seconds,
            profile[0].total_seconds);
  EXPECT_NEAR(profile[1].total_seconds - profile[1].self_seconds,
              profile[0].total_seconds, 1e-9);
}

TEST_F(TracingTest, ProfileToMetricsWritesGauges) {
  tracing_enable();
  { TraceSpan span("test.unit"); }
  tracing_drain();
  MetricsRegistry registry;
  profile_to_metrics(build_self_profile(tracing_spans()), registry);
  EXPECT_EQ(registry.gauge("profile.test.unit.calls").value(), 1.0);
  EXPECT_GE(registry.gauge("profile.test.unit.total_seconds").value(), 0.0);
  EXPECT_GE(registry.gauge("profile.test.unit.self_seconds").value(),
            registry.gauge("profile.test.unit.total_seconds").value() - 1e-9);
}

TEST_F(TracingTest, SpansFromWorkerThreadsCarryWorkerTidsNotMain) {
  tracing_enable();
  { TraceSpan span("test.on_main"); }
  exec::ParallelForOptions opts;
  opts.threads = 4;
  exec::parallel_for(
      64,
      [](std::size_t) {
        TraceSpan span("test.work");
        spin_for(std::chrono::microseconds(20));
      },
      opts);
  tracing_drain();
  const auto& spans = tracing_spans();
  std::uint32_t main_tid = 0;
  bool found_main = false;
  for (const auto& s : spans) {
    if (std::string(s.name) == "test.on_main") {
      main_tid = s.tid;
      found_main = true;
    }
  }
  ASSERT_TRUE(found_main);
  // In the pooled path the main thread only submits and waits; every
  // body span must carry a worker tid, never main's.
  std::size_t work_spans = 0;
  for (const auto& s : spans) {
    if (std::string(s.name) == "test.work") {
      ++work_spans;
      EXPECT_NE(s.tid, main_tid);
    }
  }
  EXPECT_EQ(work_spans, 64u);
}

// --- Chrome export golden checks ----------------------------------------

// The export is newline-structured: "[", one event object per line
// (comma-terminated except the last), "]".  Walk it with string checks —
// by design the repo has no nested-JSON reader, and pinning the textual
// shape is exactly what a golden test is for.
std::vector<std::string> event_lines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "[" || line == "]") continue;
    lines.push_back(line);
  }
  return lines;
}

double field_number(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\": ");
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return -1.0;
  return std::stod(line.substr(pos + key.size() + 4));
}

TEST_F(TracingTest, ChromeTraceExportIsBalancedSortedAndComplete) {
  tracing_enable();
  tracing_set_thread_name("main-test");
  {
    TraceSpan outer("test.outer", "k", 2.5);
    { TraceSpan inner("test.inner"); }
  }
  exec::ParallelForOptions opts;
  opts.threads = 2;
  exec::parallel_for(
      8, [](std::size_t) { TraceSpan span("test.work"); }, opts);
  tracing_drain();

  const auto path = std::filesystem::temp_directory_path() /
                    "bcn_tracing_test" / "trace.json";
  std::filesystem::remove_all(path.parent_path());
  ASSERT_TRUE(write_chrome_trace(path, tracing_spans()));

  const auto lines = event_lines(path);
  ASSERT_FALSE(lines.empty());

  std::size_t x_events = 0, m_events = 0;
  std::map<double, double> last_ts;  // tid -> latest ts seen
  bool saw_main_name = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Every event line is one complete object; comma-separated except the
    // final one (valid JSON array overall).
    EXPECT_EQ(line.front(), '{');
    if (i + 1 < lines.size()) {
      EXPECT_EQ(line.substr(line.size() - 2), "},");
    } else {
      EXPECT_EQ(line.back(), '}');
    }
    if (line.find("\"ph\": \"M\"") != std::string::npos) {
      ++m_events;
      EXPECT_NE(line.find("\"thread_name\""), std::string::npos);
      if (line.find("main-test") != std::string::npos) saw_main_name = true;
      continue;
    }
    EXPECT_NE(line.find("\"ph\": \"X\""), std::string::npos)
        << "unknown phase: " << line;
    ++x_events;
    // Complete events: non-negative ts and dur, a name, a tid.
    const double tid = field_number(line, "tid");
    const double ts = field_number(line, "ts");
    EXPECT_GE(ts, 0.0);
    EXPECT_GE(field_number(line, "dur"), 0.0);
    // Named either by the test or by the instrumented exec layer
    // (parallel_for emits exec.parallel_for/exec.chunk spans itself).
    EXPECT_TRUE(line.find("\"name\": \"test.") != std::string::npos ||
                line.find("\"name\": \"exec.") != std::string::npos)
        << line;
    // Monotonic start times within each thread lane.
    if (last_ts.count(tid)) EXPECT_GE(ts, last_ts[tid]);
    last_ts[tid] = ts;
  }
  // 2 nested + 8 work spans + the exec.parallel_for/exec.chunk spans.
  EXPECT_GE(x_events, 10u);
  EXPECT_GE(m_events, 1u);
  EXPECT_TRUE(saw_main_name);
  // The outer span's args survived the export.
  bool saw_args = false;
  for (const auto& line : lines) {
    if (line.find("\"name\": \"test.outer\"") != std::string::npos &&
        line.find("\"args\": {\"k\": 2.5}") != std::string::npos) {
      saw_args = true;
    }
  }
  EXPECT_TRUE(saw_args);
  std::filesystem::remove_all(path.parent_path());
}

TEST_F(TracingTest, DrainIsIncrementalAndClearResets) {
  tracing_enable();
  { TraceSpan span("test.one"); }
  EXPECT_EQ(tracing_drain(), 1u);
  { TraceSpan span("test.two"); }
  EXPECT_EQ(tracing_drain(), 1u);  // only the new span moves
  EXPECT_EQ(tracing_spans().size(), 2u);
  tracing_clear();
  EXPECT_TRUE(tracing_spans().empty());
  EXPECT_EQ(tracing_drain(), 0u);
}

}  // namespace
}  // namespace bcn::obs
