// The canonical stability-verdict report: the exact text bcn_analyze
// prints for a configuration (parameter echo, case classification,
// closed-form and numeric verdicts, transient estimate, frequency
// margins), factored behind one renderer so every consumer — the CLI,
// the stability-verdict service, tests — shares the same bytes.
//
// Determinism contract: for a given (params, mechanism, duration) the
// rendered text is byte-identical to what `bcn_analyze` writes to
// stdout with the matching flags and no extras (--plot / --delay /
// --trace append after this text and are CLI-only).  The service's
// verdict cache stores rendered reports, so a cached answer is
// byte-identical to a cold one and to the CLI by construction.
#pragma once

#include <string>

#include "core/bcn_params.h"

namespace bcn::analysis {

struct VerdictRequest {
  core::BcnParams params;
  // Registry name (core/mechanism.h); bcn and bcn-draft take the
  // closed-form path, other fluid facets the generic mechanism path.
  std::string mechanism = "bcn";
  // Integration horizon for the generic mechanism path (the bcn path
  // derives its own auto horizon from the subsystem time scales).
  double duration = 1.5e-3;
  // Mirrors `bcn_analyze --monitors finite`: rendering stops before a
  // numeric verdict built on a non-finite integration, and
  // `monitor_error` carries the message the CLI prints to stderr.
  bool finite_monitor = false;
};

struct VerdictReport {
  // Byte-identical to the bcn_analyze stdout for this request.
  std::string text;

  // Any numeric integration hit a non-finite state.  With
  // finite_monitor set, `text` is truncated before the offending
  // verdict line and `monitor_error` holds the CLI's stderr message
  // (callers exit with obs::kMonitorViolationExit, like the CLI).
  bool nonfinite = false;
  std::string monitor_error;

  // Structured summary for machine consumers (the service protocol).
  bool has_fluid = true;  // false for packet-only mechanisms (fera)
  bool stable_linearized = false;
  bool stable_nonlinear = false;
  double peak_q_linearized = 0.0;
  double dip_q_linearized = 0.0;
  double peak_q_nonlinear = 0.0;
  double dip_q_nonlinear = 0.0;

  // Closed-form verdicts, present only on the bcn / bcn-draft path.
  bool closed_form = false;
  std::string paper_case;
  int proposition = 0;
  bool proposition_satisfied = false;
  bool theorem1_satisfied = false;
  double theorem1_required_buffer = 0.0;
};

// Renders the report for a valid parameter set and a registered
// mechanism name.  Callers are expected to have run params.validate()
// and core::find_mechanism first (bcn_analyze and the service both
// reject invalid requests before rendering).
VerdictReport render_verdict_report(const VerdictRequest& request);

}  // namespace bcn::analysis
