// Transient-performance metrics -- the paper's stated future work
// ("investigate the transient behaviors of BCN system and evaluate the
// impact of parameters on the transient performance").
//
// Two paths, cross-checkable against each other:
//  * measure_transient: extracts overshoot, settling time, oscillation
//    period and envelope decay rate from a simulated trajectory;
//  * estimate_transient: predicts cycle time and settling time in closed
//    form from the phase-plane quantities (round durations + contraction
//    ratio of the switched linearized system).
#pragma once

#include <optional>

#include "core/bcn_params.h"
#include "ode/trajectory.h"

namespace bcn::analysis {

struct TransientMetrics {
  // Peak queue overshoot above the reference, normalized by q0.
  double overshoot_ratio = 0.0;
  // First time after which |x| stays below band * q0 for the rest of the
  // trace; infinity when the trace never settles.
  double settling_time = 0.0;
  bool settled = false;
  // Mean spacing of successive positive peaks of x.
  std::optional<double> oscillation_period;
  // Exponential envelope rate lambda fitted to successive |extrema|
  // (|x_k| ~ e^{-lambda t_k}); nullopt with fewer than two extrema.
  std::optional<double> envelope_decay_rate;
};

TransientMetrics measure_transient(const ode::Trajectory& trajectory,
                                   double q0, double band = 0.05);

struct TransientEstimate {
  double cycle_time = 0.0;         // T_i + T_d of one full oscillation
  double contraction_ratio = 0.0;  // amplitude factor per cycle
  double settling_time = 0.0;      // time to contract the first overshoot
                                   // into the band
  double envelope_decay_rate = 0.0;  // -ln(ratio)/cycle_time
};

// Closed-form estimate from the switched linearized system; nullopt when
// the trace has no second full cycle (overdamped cases settle within the
// first rounds).
std::optional<TransientEstimate> estimate_transient(
    const core::BcnParams& params, double band = 0.05);

}  // namespace bcn::analysis
