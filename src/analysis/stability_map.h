// (Gi, Gd) stability maps: for each gain pair, the paper-case
// classification, the Proposition/Theorem-1 verdicts and the numeric
// ground truth, plus aggregate agreement statistics.
//
// These drive experiment E9 (propositions map) and the Theorem-1
// soundness sweep of E8: Theorem 1 is a *sufficient* condition, so a sound
// reproduction must find zero cells where Theorem 1 says stable but the
// numeric verdict disagrees.
#pragma once

#include <vector>

#include "core/stability.h"

namespace bcn::analysis {

struct MapCell {
  double gi = 0.0;
  double gd = 0.0;
  core::StabilityReport report;
  core::NumericVerdict numeric;
};

struct StabilityMap {
  std::vector<double> gi_values;
  std::vector<double> gd_values;
  std::vector<MapCell> cells;  // row-major: gi outer, gd inner

  // Aggregates.
  int theorem1_stable = 0;          // cells Theorem 1 declares stable
  int numeric_stable = 0;           // cells numerically strongly stable
  int proposition_stable = 0;       // cells the propositions declare stable
  int theorem1_false_positive = 0;  // Theorem 1 stable but numeric unstable
  int proposition_false_positive = 0;
};

struct StabilityMapOptions {
  core::ModelLevel numeric_level = core::ModelLevel::Linearized;
  double numeric_duration = 0.0;  // 0 -> auto
  // Worker threads for the per-cell evaluation (0 = all hardware threads,
  // 1 = legacy serial path).  Cells are independent and land in the
  // output vector by index, so the map is bitwise identical at any
  // thread count.
  int threads = 1;
};

// Evaluates the map over the cross product of the gain vectors, holding
// every other parameter of `base` fixed.
StabilityMap compute_stability_map(const core::BcnParams& base,
                                   const std::vector<double>& gi_values,
                                   const std::vector<double>& gd_values,
                                   const StabilityMapOptions& options = {});

}  // namespace bcn::analysis
