// (Gi, Gd) stability maps: for each gain pair, the paper-case
// classification, the Proposition/Theorem-1 verdicts and the numeric
// ground truth, plus aggregate agreement statistics.
//
// These drive experiment E9 (propositions map) and the Theorem-1
// soundness sweep of E8: Theorem 1 is a *sufficient* condition, so a sound
// reproduction must find zero cells where Theorem 1 says stable but the
// numeric verdict disagrees.
//
// Three execution strategies for the numeric ground truth:
//
//   * Scalar — the legacy path: one adaptive hybrid integration per cell
//     (byte-identical to the historical artifacts, any thread count);
//   * Batch — every cell becomes a lane of the SoA ode::BatchIntegrator
//     (core/batch_verdict.h): same verdicts, several times the
//     cells/sec;
//   * Adaptive — batched integration of a coarse grid, then quadtree
//     refinement of only the blocks whose corner verdicts mix (plus a
//     one-block safety margin around them — the strong-stability
//     boundary), with the interiors of uniform blocks inheriting their
//     corner verdict without being integrated.  Each refinement wave is
//     one batched dispatch.
//
// The Clipped model level has buffer-wall modes the affine lane family
// cannot represent; Batch/Adaptive silently fall back to Scalar there.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/stability.h"

namespace bcn::obs {
class MetricsRegistry;
}

namespace bcn::analysis {

enum class MapMode {
  Scalar,
  Batch,
  Adaptive,
};

// "scalar", "batch", "adaptive".
std::string to_string(MapMode mode);
// False (and *mode untouched) for anything else.
bool parse_map_mode(std::string_view text, MapMode* mode);

struct MapCell {
  double gi = 0.0;
  double gd = 0.0;
  core::StabilityReport report;
  core::NumericVerdict numeric;
  // False only for Adaptive cells that inherited their verdict from a
  // uniform block's corner instead of being integrated.
  bool integrated = true;
};

struct StabilityMap {
  std::vector<double> gi_values;
  std::vector<double> gd_values;
  std::vector<MapCell> cells;  // row-major: gi outer, gd inner

  // Aggregates.
  int theorem1_stable = 0;          // cells Theorem 1 declares stable
  int numeric_stable = 0;           // cells numerically strongly stable
  int proposition_stable = 0;       // cells the propositions declare stable
  int theorem1_false_positive = 0;  // Theorem 1 stable but numeric unstable
  int proposition_false_positive = 0;

  // Work accounting: how many cells were actually integrated (== cells
  // for Scalar/Batch) and how the Adaptive waves were shaped.
  std::size_t integrated_cells = 0;
  int refinement_waves = 0;           // batched dispatches issued
  std::vector<std::size_t> wave_cells;  // lanes per wave
};

struct StabilityMapOptions {
  core::ModelLevel numeric_level = core::ModelLevel::Linearized;
  double numeric_duration = 0.0;  // 0 -> auto
  // Worker threads for the per-cell evaluation (0 = all hardware threads,
  // 1 = legacy serial path).  Cells are independent and land in the
  // output vector by index, so the map is bitwise identical at any
  // thread count.
  int threads = 1;
  MapMode mode = MapMode::Scalar;
  // Adaptive coarse-grid stride (power of two); 0 derives one targeting
  // ~9 coarse points per axis.
  int initial_stride = 0;
  // Macro steps per characteristic time for the batched integrator.
  double oversample = 16.0;
  // Optional wave/refinement counters ("map.waves",
  // "map.cells_integrated", "map.max_wave_lanes").
  obs::MetricsRegistry* metrics = nullptr;
};

// Evaluates the map over the cross product of the gain vectors, holding
// every other parameter of `base` fixed.
StabilityMap compute_stability_map(const core::BcnParams& base,
                                   const std::vector<double>& gi_values,
                                   const std::vector<double>& gd_values,
                                   const StabilityMapOptions& options = {});

}  // namespace bcn::analysis
