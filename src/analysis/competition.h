// Heterogeneous-competition fluid analysis: two source groups running
// different congestion-control mechanisms share one bottleneck queue.
//
// State is the 3-vector (x, y_a, y_b) with x = q - q0 and y_g the group's
// aggregate-rate deviation from its capacity share:
//
//   x'   = y_a + y_b                      (clipped at the buffer walls)
//   y_g' = mech_g.group_rate_deriv(x, y_g, y_a + y_b, share_g)
//
// integrated with a fixed-step RK4 (the planar event-localizing driver in
// src/ode is two-dimensional; competition trades event localization for a
// small step).  The verdict reports boundedness inside the buffer strip,
// tail oscillation, and share-normalized Jain fairness -- the questions
// the BBR-vs-CUBIC style competition literature asks of such pairs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/mechanism.h"

namespace bcn::analysis {

struct CompetitionOptions {
  double duration = 0.05;         // seconds of model time
  double dt = 1e-6;               // RK4 step
  double record_interval = 1e-5;  // series sampling period
  double split = 0.5;             // fraction of the N sources in group A
  double tail_fraction = 0.5;     // last fraction of the horizon analyzed
};

struct CompetitionRun {
  std::string mech_a;
  std::string mech_b;
  double share_a = 0.0;  // group capacity shares [bits/s]
  double share_b = 0.0;

  // Recorded series (t, x, y_a, y_b).
  std::vector<double> t;
  std::vector<double> x;
  std::vector<double> ya;
  std::vector<double> yb;

  // Whole-horizon queue extrema (phase-plane verdict inputs).
  double max_x = 0.0;
  double min_x = 0.0;
  // Strictly inside the buffer strip for the whole horizon (walls never
  // pinned the queue).
  bool bounded = false;

  // Tail statistics (last tail_fraction of the horizon).
  double tail_queue_mean = 0.0;  // mean q = x + q0 [bits]
  double tail_x_p2p = 0.0;       // queue oscillation peak-to-peak [bits]
  double tail_rate_a = 0.0;      // mean group aggregate rates [bits/s]
  double tail_rate_b = 0.0;
  // Jain index over the share-normalized tail rates: 1.0 = each group
  // holds exactly its fair share.
  double fairness = 0.0;
};

// Integrates mechanism `mech_a` (group A) against `mech_b` (group B) on
// the plant in `base`.  Group facets are built with num_sources scaled to
// the group's head count; both groups start at their fair share with an
// empty queue (the analysis start).  Returns a default-constructed run
// (empty series) if either mechanism lacks a fluid facet.
CompetitionRun simulate_fluid_competition(std::string_view mech_a,
                                          std::string_view mech_b,
                                          const core::MechanismConfig& base,
                                          const CompetitionOptions& options = {});

// One lane of a batched competition sweep: a mechanism pair on its own
// plant configuration.
struct CompetitionPair {
  std::string mech_a;
  std::string mech_b;
  core::MechanismConfig config;
};

// Batched form: steps every pair's 3-state trajectory in lockstep over
// SoA lane storage (one fixed-step RK4 macro loop for the whole batch)
// instead of running the pairs one at a time.  Per-lane arithmetic is
// the exact scalar sequence — simulate_fluid_competition is the batch of
// one — so results()[i] is bitwise identical to the scalar run of
// pairs[i].  `threads` distributes contiguous lane slices over the exec
// layer (0 = hardware, 1 = serial); lanes are independent, so the output
// is thread-count invariant.
std::vector<CompetitionRun> simulate_fluid_competition_batch(
    const std::vector<CompetitionPair>& pairs,
    const CompetitionOptions& options = {}, int threads = 1);

}  // namespace bcn::analysis
