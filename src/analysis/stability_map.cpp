#include "analysis/stability_map.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "core/batch_verdict.h"
#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace bcn::analysis {
namespace {

// The analytic half of every cell (classification, Propositions,
// Theorem 1) — shared by all modes; the numeric half is filled in by the
// mode-specific passes below.
std::vector<MapCell> analytic_cells(const core::BcnParams& base,
                                    const std::vector<double>& gi_values,
                                    const std::vector<double>& gd_values,
                                    int threads) {
  const std::size_t cols = gd_values.size();
  return exec::parallel_map<MapCell>(
      gi_values.size() * cols,
      [&](std::size_t idx) {
        MapCell cell;
        cell.gi = gi_values[idx / cols];
        cell.gd = gd_values[idx % cols];
        core::BcnParams p = base;
        p.gi = cell.gi;
        p.gd = cell.gd;
        cell.report = core::analyze_stability(p);
        return cell;
      },
      {.threads = threads});
}

core::VerdictLane cell_lane(const core::BcnParams& base, double gi, double gd,
                            const StabilityMapOptions& options) {
  core::BcnParams p = base;
  p.gi = gi;
  p.gd = gd;
  return core::make_bcn_verdict_lane(p, options.numeric_level,
                                     options.numeric_duration);
}

void accumulate_aggregates(StabilityMap& map) {
  for (const MapCell& cell : map.cells) {
    if (cell.report.theorem1_satisfied) ++map.theorem1_stable;
    if (cell.numeric.strongly_stable) ++map.numeric_stable;
    if (cell.report.proposition_satisfied) ++map.proposition_stable;
    if (cell.report.theorem1_satisfied && !cell.numeric.strongly_stable) {
      ++map.theorem1_false_positive;
    }
    if (cell.report.proposition_satisfied && !cell.numeric.strongly_stable) {
      ++map.proposition_false_positive;
    }
  }
}

// --- adaptive refinement ----------------------------------------------------
//
// Level-synchronous quadtree over the cell grid.  Level 0 tiles the grid
// with stride-sized blocks; each level classifies every block by its four
// corner verdicts and refines blocks that mix (or touch a mixing block —
// the one-block margin that catches boundary wiggles between corners),
// sampling the subdivision midpoints in one batched wave per level.
// Blocks that stay uniform fill their unsampled interior from a corner
// without integrating it.
void adaptive_numeric(const core::BcnParams& base, StabilityMap& map,
                      const StabilityMapOptions& options) {
  const int rows = static_cast<int>(map.gi_values.size());
  const int cols = static_cast<int>(map.gd_values.size());
  const std::size_t total = static_cast<std::size_t>(rows) * cols;
  const auto cell_id = [cols](int i, int j) {
    return static_cast<std::size_t>(i) * cols + j;
  };

  int stride = options.initial_stride;
  if (stride <= 0) {
    const int target = (std::max(rows, cols) - 1) / 8;
    stride = 1;
    while (stride * 2 <= target) stride *= 2;
  }

  std::vector<std::int8_t> verdict(total, -1);  // -1 unsampled, else 0/1
  std::vector<std::uint8_t> sampled(total, 0);  // sampled or queued
  std::vector<std::int32_t> fill_src(total, -1);

  core::BatchVerdictOptions bopts;
  bopts.oversample = options.oversample;
  bopts.threads = options.threads;

  std::vector<std::size_t> pending;
  const auto enqueue = [&](int i, int j) {
    const std::size_t id = cell_id(i, j);
    if (!sampled[id]) {
      sampled[id] = 1;
      pending.push_back(id);
    }
  };
  const auto run_wave = [&]() {
    if (pending.empty()) return;
    obs::TraceSpan span("analysis.map_wave");
    span.arg("wave", map.refinement_waves);
    span.arg("lanes", static_cast<double>(pending.size()));
    std::vector<core::VerdictLane> lanes;
    lanes.reserve(pending.size());
    for (const std::size_t id : pending) {
      lanes.push_back(cell_lane(base, map.gi_values[id / cols],
                                map.gd_values[id % cols], options));
    }
    const auto verdicts = core::batch_numeric_verdicts(lanes, bopts);
    for (std::size_t k = 0; k < pending.size(); ++k) {
      map.cells[pending[k]].numeric = verdicts[k];
      map.cells[pending[k]].integrated = true;
      verdict[pending[k]] = verdicts[k].strongly_stable ? 1 : 0;
    }
    map.integrated_cells += pending.size();
    map.wave_cells.push_back(pending.size());
    ++map.refinement_waves;
    if (options.metrics) {
      options.metrics->counter("map.waves").inc();
      options.metrics->counter("map.cells_integrated").inc(pending.size());
      options.metrics->gauge("map.max_wave_lanes")
          .set_max(static_cast<double>(pending.size()));
    }
    pending.clear();
  };

  // A block spans cells [i0, i1] x [j0, j1]; (bi, bj) is its position on
  // the current level's block grid, used for neighbor lookups.
  struct Block {
    int i0, i1, j0, j1, bi, bj;
  };
  const auto axis_origins = [](int n, int s) {
    std::vector<int> v;
    if (n <= 1) {
      v.push_back(0);
      return v;
    }
    for (int o = 0; o + 1 < n; o += s) v.push_back(o);
    return v;
  };
  std::vector<Block> blocks;
  {
    const auto is = axis_origins(rows, stride);
    const auto js = axis_origins(cols, stride);
    for (int a = 0; a < static_cast<int>(is.size()); ++a) {
      for (int b = 0; b < static_cast<int>(js.size()); ++b) {
        blocks.push_back({is[a],
                          rows <= 1 ? 0 : std::min(is[a] + stride, rows - 1),
                          js[b],
                          cols <= 1 ? 0 : std::min(js[b] + stride, cols - 1),
                          a, b});
      }
    }
  }

  for (const Block& b : blocks) {
    enqueue(b.i0, b.j0);
    enqueue(b.i0, b.j1);
    enqueue(b.i1, b.j0);
    enqueue(b.i1, b.j1);
  }
  run_wave();

  const auto neighbor_key = [](int bi, int bj) {
    // bi/bj are small non-negative block coordinates; bias by 1 so the
    // -1 lookups at the grid edge stay in range.
    return (static_cast<std::uint64_t>(bi + 1) << 32) |
           static_cast<std::uint32_t>(bj + 1);
  };

  while (!blocks.empty()) {
    const int nb = static_cast<int>(blocks.size());
    std::vector<std::uint8_t> mixed(nb, 0);
    std::unordered_map<std::uint64_t, int> pos;
    pos.reserve(static_cast<std::size_t>(nb) * 2);
    for (int bdx = 0; bdx < nb; ++bdx) {
      const Block& b = blocks[bdx];
      const std::int8_t v = verdict[cell_id(b.i0, b.j0)];
      mixed[bdx] = v != verdict[cell_id(b.i0, b.j1)] ||
                   v != verdict[cell_id(b.i1, b.j0)] ||
                   v != verdict[cell_id(b.i1, b.j1)];
      pos.emplace(neighbor_key(b.bi, b.bj), bdx);
    }

    std::vector<Block> next;
    for (int bdx = 0; bdx < nb; ++bdx) {
      const Block& b = blocks[bdx];
      bool refine = mixed[bdx] != 0;
      for (int di = -1; di <= 1 && !refine; ++di) {
        for (int dj = -1; dj <= 1 && !refine; ++dj) {
          if (di == 0 && dj == 0) continue;
          const auto it = pos.find(neighbor_key(b.bi + di, b.bj + dj));
          if (it != pos.end() && mixed[it->second]) refine = true;
        }
      }
      const bool can_i = b.i1 - b.i0 > 1;
      const bool can_j = b.j1 - b.j0 > 1;
      if (refine && (can_i || can_j)) {
        const int mi = can_i ? (b.i0 + b.i1) / 2 : b.i1;
        const int mj = can_j ? (b.j0 + b.j1) / 2 : b.j1;
        const int ni = can_i ? 2 : 1;
        const int nj = can_j ? 2 : 1;
        for (int ci = 0; ci < ni; ++ci) {
          for (int cj = 0; cj < nj; ++cj) {
            Block child;
            child.i0 = ci == 0 ? b.i0 : mi;
            child.i1 = ci == 0 ? mi : b.i1;
            child.j0 = cj == 0 ? b.j0 : mj;
            child.j1 = cj == 0 ? mj : b.j1;
            child.bi = 2 * b.bi + ci;
            child.bj = 2 * b.bj + cj;
            next.push_back(child);
            enqueue(child.i0, child.j0);
            enqueue(child.i0, child.j1);
            enqueue(child.i1, child.j0);
            enqueue(child.i1, child.j1);
          }
        }
      } else if (!mixed[bdx]) {
        // Uniform and unrefined: the interior inherits the corner
        // verdict.  (A mixed-but-unsplittable block is all corners, so
        // everything in it is already sampled.)
        const auto src = static_cast<std::int32_t>(cell_id(b.i0, b.j0));
        for (int i = b.i0; i <= b.i1; ++i) {
          for (int j = b.j0; j <= b.j1; ++j) {
            const std::size_t id = cell_id(i, j);
            if (!sampled[id] && fill_src[id] < 0) {
              fill_src[id] = src;
            }
          }
        }
      }
    }
    blocks.swap(next);
    run_wave();
  }

  // Apply the recorded fills; any cell neither sampled nor covered by a
  // uniform block (possible only if a fill source was itself sampled to
  // a different verdict later — not in the current scheme, but cheap to
  // keep airtight) is integrated directly in one last wave.
  for (std::size_t id = 0; id < total; ++id) {
    if (sampled[id]) continue;
    if (fill_src[id] >= 0) {
      map.cells[id].numeric = map.cells[fill_src[id]].numeric;
      map.cells[id].integrated = false;
    } else {
      enqueue(static_cast<int>(id / cols), static_cast<int>(id % cols));
    }
  }
  run_wave();
}

}  // namespace

std::string to_string(MapMode mode) {
  switch (mode) {
    case MapMode::Scalar:
      return "scalar";
    case MapMode::Batch:
      return "batch";
    case MapMode::Adaptive:
      return "adaptive";
  }
  return "scalar";
}

bool parse_map_mode(std::string_view text, MapMode* mode) {
  if (text == "scalar") {
    *mode = MapMode::Scalar;
  } else if (text == "batch") {
    *mode = MapMode::Batch;
  } else if (text == "adaptive") {
    *mode = MapMode::Adaptive;
  } else {
    return false;
  }
  return true;
}

StabilityMap compute_stability_map(const core::BcnParams& base,
                                   const std::vector<double>& gi_values,
                                   const std::vector<double>& gd_values,
                                   const StabilityMapOptions& options) {
  StabilityMap map;
  map.gi_values = gi_values;
  map.gd_values = gd_values;

  // Clipped dynamics have buffer walls outside the batched lane family.
  const MapMode mode = options.numeric_level == core::ModelLevel::Clipped
                           ? MapMode::Scalar
                           : options.mode;

  obs::TraceSpan span("analysis.stability_map");
  span.arg("cells", static_cast<double>(gi_values.size() * gd_values.size()));
  span.arg("threads", options.threads);
  span.arg("mode", static_cast<double>(mode));

  if (mode == MapMode::Scalar) {
    core::NumericVerdictOptions nopts;
    nopts.level = options.numeric_level;
    nopts.duration = options.numeric_duration;

    // Row-major grid, one independent task per cell; parallel_map places
    // cell (i, j) at index i * |gd| + j whatever the thread count, so the
    // parallel map is cell-for-cell identical to the serial one.
    const std::size_t cols = gd_values.size();
    exec::ParallelForOptions popts;
    popts.threads = options.threads;
    map.cells = exec::parallel_map<MapCell>(
        gi_values.size() * cols,
        [&](std::size_t idx) {
          obs::TraceSpan cell_span("analysis.map_cell");
          MapCell cell;
          cell.gi = gi_values[idx / cols];
          cell.gd = gd_values[idx % cols];
          core::BcnParams p = base;
          p.gi = cell.gi;
          p.gd = cell.gd;
          cell.report = core::analyze_stability(p);
          cell.numeric = core::numeric_strong_stability(p, nopts);
          return cell;
        },
        popts);
    map.integrated_cells = map.cells.size();
  } else {
    map.cells = analytic_cells(base, gi_values, gd_values, options.threads);
    if (mode == MapMode::Batch) {
      std::vector<core::VerdictLane> lanes;
      lanes.reserve(map.cells.size());
      for (const MapCell& cell : map.cells) {
        lanes.push_back(cell_lane(base, cell.gi, cell.gd, options));
      }
      core::BatchVerdictOptions bopts;
      bopts.oversample = options.oversample;
      bopts.threads = options.threads;
      const auto verdicts = core::batch_numeric_verdicts(lanes, bopts);
      for (std::size_t i = 0; i < map.cells.size(); ++i) {
        map.cells[i].numeric = verdicts[i];
      }
      map.integrated_cells = map.cells.size();
      map.refinement_waves = 1;
      map.wave_cells.push_back(map.cells.size());
    } else {
      adaptive_numeric(base, map, options);
    }
  }

  accumulate_aggregates(map);
  return map;
}

}  // namespace bcn::analysis
