#include "analysis/stability_map.h"

namespace bcn::analysis {

StabilityMap compute_stability_map(const core::BcnParams& base,
                                   const std::vector<double>& gi_values,
                                   const std::vector<double>& gd_values,
                                   const StabilityMapOptions& options) {
  StabilityMap map;
  map.gi_values = gi_values;
  map.gd_values = gd_values;
  map.cells.reserve(gi_values.size() * gd_values.size());

  core::NumericVerdictOptions nopts;
  nopts.level = options.numeric_level;
  nopts.duration = options.numeric_duration;

  for (double gi : gi_values) {
    for (double gd : gd_values) {
      core::BcnParams p = base;
      p.gi = gi;
      p.gd = gd;
      MapCell cell;
      cell.gi = gi;
      cell.gd = gd;
      cell.report = core::analyze_stability(p);
      cell.numeric = core::numeric_strong_stability(p, nopts);

      if (cell.report.theorem1_satisfied) ++map.theorem1_stable;
      if (cell.numeric.strongly_stable) ++map.numeric_stable;
      if (cell.report.proposition_satisfied) ++map.proposition_stable;
      if (cell.report.theorem1_satisfied && !cell.numeric.strongly_stable) {
        ++map.theorem1_false_positive;
      }
      if (cell.report.proposition_satisfied &&
          !cell.numeric.strongly_stable) {
        ++map.proposition_false_positive;
      }
      map.cells.push_back(std::move(cell));
    }
  }
  return map;
}

}  // namespace bcn::analysis
