#include "analysis/stability_map.h"

#include "exec/parallel_for.h"
#include "obs/tracing.h"

namespace bcn::analysis {

StabilityMap compute_stability_map(const core::BcnParams& base,
                                   const std::vector<double>& gi_values,
                                   const std::vector<double>& gd_values,
                                   const StabilityMapOptions& options) {
  StabilityMap map;
  map.gi_values = gi_values;
  map.gd_values = gd_values;

  obs::TraceSpan span("analysis.stability_map");
  span.arg("cells", static_cast<double>(gi_values.size() * gd_values.size()));
  span.arg("threads", options.threads);

  core::NumericVerdictOptions nopts;
  nopts.level = options.numeric_level;
  nopts.duration = options.numeric_duration;

  // Row-major grid, one independent task per cell; parallel_map places
  // cell (i, j) at index i * |gd| + j whatever the thread count, so the
  // parallel map is cell-for-cell identical to the serial one.
  const std::size_t cols = gd_values.size();
  exec::ParallelForOptions popts;
  popts.threads = options.threads;
  map.cells = exec::parallel_map<MapCell>(
      gi_values.size() * cols,
      [&](std::size_t idx) {
        obs::TraceSpan cell_span("analysis.map_cell");
        MapCell cell;
        cell.gi = gi_values[idx / cols];
        cell.gd = gd_values[idx % cols];
        core::BcnParams p = base;
        p.gi = cell.gi;
        p.gd = cell.gd;
        cell.report = core::analyze_stability(p);
        cell.numeric = core::numeric_strong_stability(p, nopts);
        return cell;
      },
      popts);

  // Aggregates are accumulated serially, in index order.
  for (const MapCell& cell : map.cells) {
    if (cell.report.theorem1_satisfied) ++map.theorem1_stable;
    if (cell.numeric.strongly_stable) ++map.numeric_stable;
    if (cell.report.proposition_satisfied) ++map.proposition_stable;
    if (cell.report.theorem1_satisfied && !cell.numeric.strongly_stable) {
      ++map.theorem1_false_positive;
    }
    if (cell.report.proposition_satisfied && !cell.numeric.strongly_stable) {
      ++map.proposition_false_positive;
    }
  }
  return map;
}

}  // namespace bcn::analysis
