// Empirical stability-boundary extraction: the smallest buffer that keeps
// a parameter set strongly stable, found by bisection on B against the
// numeric ground truth.  Comparing it with Theorem 1's required buffer
// measures the criterion's conservatism margin at each model level (the
// linearized bound is near-tight; the nonlinear model needs ~2x less).
#pragma once

#include <optional>

#include "core/stability.h"

namespace bcn::analysis {

struct MinBufferOptions {
  // Forwarded whole to core::numeric_strong_stability — level, duration
  // and tolerances all apply (a caller-configured duration used to be
  // silently dropped here).
  core::NumericVerdictOptions numeric{.level = core::ModelLevel::Nonlinear};
  // Search ceiling as a multiple of Theorem 1's requirement.
  double ceiling_factor = 4.0;
  double rel_tol = 1e-3;
};

// Smallest B > q0 such that the system is numerically strongly stable
// (buffer-independent dynamics: only the verdict thresholds move, so one
// trajectory per level suffices and the search is exact).  nullopt when
// the system is unstable even at the ceiling (e.g. it underflows, which
// no buffer can fix).
std::optional<double> min_stable_buffer(const core::BcnParams& params,
                                        const MinBufferOptions& options = {});

}  // namespace bcn::analysis
