#include "analysis/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/analytic_tracer.h"

namespace bcn::analysis {

TransientMetrics measure_transient(const ode::Trajectory& trajectory,
                                   double q0, double band) {
  TransientMetrics m;
  if (trajectory.size() < 2) return m;

  double peak = 0.0;
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    peak = std::max(peak, trajectory[i].z.x);
  }
  m.overshoot_ratio = peak / q0;

  // Settling: last sample with |x| >= band * q0 bounds the settling time.
  const double threshold = band * q0;
  double last_violation = -1.0;
  for (const auto& s : trajectory.samples()) {
    if (std::abs(s.z.x) >= threshold) last_violation = s.t;
  }
  if (last_violation < 0.0) {
    m.settled = true;
    m.settling_time = 0.0;
  } else if (last_violation < trajectory.back().t) {
    m.settled = true;
    m.settling_time = last_violation;
  } else {
    m.settled = false;
    m.settling_time = std::numeric_limits<double>::infinity();
  }

  // Peaks of x for period and envelope fit.
  const auto extrema = trajectory.local_extrema(0);
  std::vector<double> peak_times;
  std::vector<std::pair<double, double>> env;  // (t, |x|)
  for (const auto& e : extrema) {
    if (std::abs(e.value) < 1e-6 * q0) continue;
    if (e.is_maximum && e.value > 0.0) peak_times.push_back(e.t);
    env.emplace_back(e.t, std::abs(e.value));
  }
  if (peak_times.size() >= 2) {
    m.oscillation_period = (peak_times.back() - peak_times.front()) /
                           static_cast<double>(peak_times.size() - 1);
  }
  if (env.size() >= 2) {
    // Least-squares fit of ln|x| = c - lambda t.
    double st = 0.0, sy = 0.0, stt = 0.0, sty = 0.0;
    for (const auto& [t, v] : env) {
      const double y = std::log(v);
      st += t;
      sy += y;
      stt += t * t;
      sty += t * y;
    }
    const double n = static_cast<double>(env.size());
    const double denom = n * stt - st * st;
    if (denom > 0.0) {
      m.envelope_decay_rate = -(n * sty - st * sy) / denom;
    }
  }
  return m;
}

std::optional<TransientEstimate> estimate_transient(
    const core::BcnParams& params, double band) {
  const core::AnalyticTracer tracer(params);
  core::AnalyticTraceOptions opts;
  opts.max_rounds = 8;
  const auto trace = tracer.trace(opts);
  // One full cycle = one decrease + one increase round after the first
  // crossing.
  if (trace.rounds.size() < 3 || !trace.rounds[1].duration ||
      !trace.rounds[2].duration) {
    return std::nullopt;
  }
  const auto ratio = trace.contraction_ratio();
  if (!ratio || !(*ratio > 0.0) || !(*ratio < 1.0)) return std::nullopt;

  TransientEstimate est;
  est.cycle_time = *trace.rounds[1].duration + *trace.rounds[2].duration;
  est.contraction_ratio = *ratio;
  est.envelope_decay_rate = -std::log(*ratio) / est.cycle_time;
  const double amp0 = std::max(trace.max_x, -trace.min_x);
  const double target = band * params.q0;
  if (amp0 <= target) {
    est.settling_time = est.cycle_time;
  } else {
    est.settling_time =
        std::log(target / amp0) / std::log(*ratio) * est.cycle_time;
  }
  return est;
}

}  // namespace bcn::analysis
