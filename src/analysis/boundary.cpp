#include "analysis/boundary.h"

#include <algorithm>

namespace bcn::analysis {

std::optional<double> min_stable_buffer(const core::BcnParams& params,
                                        const MinBufferOptions& options) {
  // The unclipped trajectory does not depend on B, so run it once and read
  // the minimal buffer directly from the measured extrema: strong
  // stability needs max_x < B - q0 and min_x > -q0.
  //
  // Contract of the "open buffer" probe: buffer and qsc are deliberately
  // overridden for this run only.  The buffer is raised to the search
  // ceiling so the orbit is measured unclipped (at the Linearized and
  // Nonlinear levels neither parameter enters the dynamics — they only
  // gate parameter validation and the verdict thresholds, which this
  // function applies itself from the *caller's* q0).  qsc rides along as
  // 0.9x the open buffer purely to keep q0 < qsc <= B valid; it has no
  // effect on the fluid trajectory.  Everything else in options.numeric
  // (level, duration, tolerances) is forwarded untouched.
  core::BcnParams open = params;
  open.buffer = std::max(params.theorem1_required_buffer(), params.buffer) *
                options.ceiling_factor;
  open.qsc = 0.9 * open.buffer;
  const auto verdict = core::numeric_strong_stability(open, options.numeric);

  if (verdict.min_x <= -params.q0) return std::nullopt;  // underflow: no
                                                         // buffer can help
  if (verdict.max_x >= open.buffer - params.q0) return std::nullopt;

  // Smallest B with max_x < B - q0 (plus a relative safety epsilon so the
  // returned buffer itself verdicts stable).
  const double b_min =
      (verdict.max_x + params.q0) * (1.0 + options.rel_tol);
  return std::max(b_min, params.q0 * (1.0 + options.rel_tol));
}

}  // namespace bcn::analysis
