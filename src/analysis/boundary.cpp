#include "analysis/boundary.h"

#include <algorithm>

namespace bcn::analysis {

std::optional<double> min_stable_buffer(const core::BcnParams& params,
                                        const MinBufferOptions& options) {
  // The unclipped trajectory does not depend on B, so run it once and read
  // the minimal buffer directly from the measured extrema: strong
  // stability needs max_x < B - q0 and min_x > -q0.
  core::BcnParams open = params;
  open.buffer = std::max(params.theorem1_required_buffer(), params.buffer) *
                options.ceiling_factor;
  open.qsc = 0.9 * open.buffer;
  const auto verdict =
      core::numeric_strong_stability(open, {.level = options.level});

  if (verdict.min_x <= -params.q0) return std::nullopt;  // underflow: no
                                                         // buffer can help
  if (verdict.max_x >= open.buffer - params.q0) return std::nullopt;

  // Smallest B with max_x < B - q0 (plus a relative safety epsilon so the
  // returned buffer itself verdicts stable).
  const double b_min =
      (verdict.max_x + params.q0) * (1.0 + options.rel_tol);
  return std::max(b_min, params.q0 * (1.0 + options.rel_tol));
}

}  // namespace bcn::analysis
