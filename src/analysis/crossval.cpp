#include "analysis/crossval.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.h"
#include "core/mechanism.h"
#include "core/stability.h"
#include "exec/parallel_for.h"
#include "obs/tracing.h"

namespace bcn::analysis {

std::optional<bool> fluid_stability_hint(const core::BcnParams& params,
                                         const std::string& mechanism) {
  if (mechanism.empty() || mechanism == "bcn" || mechanism == "bcn-draft") {
    return core::numeric_strong_stability(params).strongly_stable;
  }
  core::MechanismConfig config;
  config.plant = params;
  const auto fluid = core::make_fluid_mechanism(mechanism, config);
  if (!fluid) return std::nullopt;  // packet-only or unknown mechanism
  return core::mechanism_numeric_verdict(*fluid).strongly_stable;
}

namespace {

// Local maxima of component 0 with a prominence filter: alternating
// max/min sequence where each new extremum must move at least
// `min_prominence` away from the last kept one.
std::vector<ode::Extremum> prominent_extrema(const ode::Trajectory& t,
                                             double min_prominence) {
  std::vector<ode::Extremum> raw = t.local_extrema(0);
  std::vector<ode::Extremum> kept;
  for (const auto& e : raw) {
    if (kept.empty()) {
      kept.push_back(e);
      continue;
    }
    const auto& last = kept.back();
    if (e.is_maximum == last.is_maximum) {
      // Same polarity: keep the more extreme one.
      if ((e.is_maximum && e.value > last.value) ||
          (!e.is_maximum && e.value < last.value)) {
        kept.back() = e;
      }
    } else if (std::abs(e.value - last.value) >= min_prominence) {
      kept.push_back(e);
    }
  }
  return kept;
}

}  // namespace

TrajectoryFeatures extract_features(const ode::Trajectory& trajectory,
                                    double min_prominence) {
  TrajectoryFeatures f;
  if (trajectory.empty()) return f;

  const auto extrema = prominent_extrema(trajectory, min_prominence);

  // Peak: global max (over t > 0).
  f.peak_value = trajectory[0].z.x;
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    if (trajectory[i].z.x > f.peak_value) {
      f.peak_value = trajectory[i].z.x;
      f.peak_time = trajectory[i].t;
    }
  }
  // Trough: min after the peak.
  f.trough_value = f.peak_value;
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    if (trajectory[i].t >= f.peak_time &&
        trajectory[i].z.x < f.trough_value) {
      f.trough_value = trajectory[i].z.x;
      f.trough_time = trajectory[i].t;
    }
  }

  // Period: mean spacing between successive prominent maxima.
  std::vector<double> max_times;
  for (const auto& e : extrema) {
    if (e.is_maximum) max_times.push_back(e.t);
  }
  if (max_times.size() >= 2) {
    f.period = (max_times.back() - max_times.front()) /
               static_cast<double>(max_times.size() - 1);
  }

  // Settling value: mean of the trailing 20%.
  const double t_tail =
      trajectory.back().t - 0.2 * trajectory.duration();
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& s : trajectory.samples()) {
    if (s.t < t_tail) continue;
    sum += s.z.x;
    ++count;
  }
  f.final_value = count > 0 ? sum / static_cast<double>(count)
                            : trajectory.back().z.x;
  return f;
}

ShapeComparison compare_shapes(const ode::Trajectory& a,
                               const ode::Trajectory& b,
                               double min_prominence) {
  ShapeComparison cmp;
  cmp.a = extract_features(a, min_prominence);
  cmp.b = extract_features(b, min_prominence);
  cmp.peak_rel_error = relative_error(cmp.b.peak_value, cmp.a.peak_value);
  cmp.final_rel_error = relative_error(cmp.b.final_value, cmp.a.final_value);
  if (cmp.a.period && cmp.b.period) {
    cmp.period_rel_error = relative_error(*cmp.b.period, *cmp.a.period);
  }
  cmp.same_character =
      cmp.a.period.has_value() == cmp.b.period.has_value();
  return cmp;
}

std::vector<TrajectoryFeatures> extract_features_batch(
    const std::vector<const ode::Trajectory*>& trajectories,
    double min_prominence, int threads) {
  exec::ParallelForOptions opts;
  opts.threads = threads;
  return exec::parallel_map<TrajectoryFeatures>(
      trajectories.size(),
      [&](std::size_t i) {
        obs::TraceSpan span("analysis.crossval_fold", "fold",
                            static_cast<double>(i));
        return extract_features(*trajectories[i], min_prominence);
      },
      opts);
}

std::vector<ShapeComparison> compare_shapes_batch(
    const std::vector<std::pair<const ode::Trajectory*,
                                const ode::Trajectory*>>& pairs,
    double min_prominence, int threads) {
  exec::ParallelForOptions opts;
  opts.threads = threads;
  return exec::parallel_map<ShapeComparison>(
      pairs.size(),
      [&](std::size_t i) {
        obs::TraceSpan span("analysis.crossval_fold", "fold",
                            static_cast<double>(i));
        return compare_shapes(*pairs[i].first, *pairs[i].second,
                              min_prominence);
      },
      opts);
}

}  // namespace bcn::analysis
