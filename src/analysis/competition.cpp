#include "analysis/competition.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace bcn::analysis {
namespace {

struct State {
  double x = 0.0;
  double ya = 0.0;
  double yb = 0.0;
};

State derive(const core::FluidMechanism& a, const core::FluidMechanism& b,
             double share_a, double share_b, double lo, double hi,
             const State& s) {
  State d;
  d.x = s.ya + s.yb;
  // Buffer walls: the queue cannot drain below empty or grow past full.
  if ((s.x <= lo && d.x < 0.0) || (s.x >= hi && d.x > 0.0)) d.x = 0.0;
  const double y_total = s.ya + s.yb;
  d.ya = a.group_rate_deriv(s.x, s.ya, y_total, share_a);
  d.yb = b.group_rate_deriv(s.x, s.yb, y_total, share_b);
  return d;
}

State axpy(const State& s, double h, const State& d) {
  return {s.x + h * d.x, s.ya + h * d.ya, s.yb + h * d.yb};
}

}  // namespace

CompetitionRun simulate_fluid_competition(std::string_view mech_a,
                                          std::string_view mech_b,
                                          const core::MechanismConfig& base,
                                          const CompetitionOptions& options) {
  CompetitionRun run;
  run.mech_a = std::string(mech_a);
  run.mech_b = std::string(mech_b);

  const double n_total = base.plant.num_sources;
  const double na =
      std::max(1.0, std::round(options.split * n_total));
  const double nb = std::max(1.0, n_total - na);
  const double cap = base.plant.capacity;
  run.share_a = cap * na / (na + nb);
  run.share_b = cap * nb / (na + nb);

  core::MechanismConfig cfg_a = base;
  cfg_a.plant.num_sources = na;
  core::MechanismConfig cfg_b = base;
  cfg_b.plant.num_sources = nb;
  const auto a = core::make_fluid_mechanism(mech_a, cfg_a);
  const auto b = core::make_fluid_mechanism(mech_b, cfg_b);
  if (!a || !b) return run;  // packet-only mechanism: no fluid verdict

  const double lo = -base.plant.q0;
  const double hi = base.plant.buffer - base.plant.q0;

  // Analysis start: empty queue, both groups exactly at their share.
  State s{lo, 0.0, 0.0};
  const double dt = options.dt;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options.duration / dt));
  const auto record_every = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(options.record_interval / dt)));

  run.max_x = run.min_x = s.x;
  // The start sits on the empty wall by construction; the underflow check
  // only makes sense after the orbit has left it.
  bool left_wall = false;
  double post_min_x = hi;
  const double wall_tol = 1e-6 * base.plant.q0;

  run.t.reserve(steps / record_every + 2);
  run.x.reserve(steps / record_every + 2);
  run.ya.reserve(steps / record_every + 2);
  run.yb.reserve(steps / record_every + 2);

  for (std::size_t i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) * dt;
    if (i % record_every == 0) {
      run.t.push_back(t);
      run.x.push_back(s.x);
      run.ya.push_back(s.ya);
      run.yb.push_back(s.yb);
    }
    if (i == steps) break;

    // Classic RK4 on the clipped field.
    const State k1 = derive(*a, *b, run.share_a, run.share_b, lo, hi, s);
    const State k2 = derive(*a, *b, run.share_a, run.share_b, lo, hi,
                            axpy(s, dt / 2.0, k1));
    const State k3 = derive(*a, *b, run.share_a, run.share_b, lo, hi,
                            axpy(s, dt / 2.0, k2));
    const State k4 =
        derive(*a, *b, run.share_a, run.share_b, lo, hi, axpy(s, dt, k3));
    s.x += dt / 6.0 * (k1.x + 2.0 * k2.x + 2.0 * k3.x + k4.x);
    s.ya += dt / 6.0 * (k1.ya + 2.0 * k2.ya + 2.0 * k3.ya + k4.ya);
    s.yb += dt / 6.0 * (k1.yb + 2.0 * k2.yb + 2.0 * k3.yb + k4.yb);
    // Physical limits: queue within the buffer, group rates nonnegative.
    s.x = std::clamp(s.x, lo, hi);
    s.ya = std::max(s.ya, -run.share_a);
    s.yb = std::max(s.yb, -run.share_b);

    run.max_x = std::max(run.max_x, s.x);
    run.min_x = std::min(run.min_x, s.x);
    if (!left_wall && s.x > lo + wall_tol) left_wall = true;
    if (left_wall) post_min_x = std::min(post_min_x, s.x);
  }

  run.bounded = left_wall && run.max_x < hi - wall_tol &&
                post_min_x > lo + wall_tol;

  // Tail statistics.
  const double tail_start = options.duration * (1.0 - options.tail_fraction);
  double sum_x = 0.0, sum_ya = 0.0, sum_yb = 0.0;
  double tmin_x = hi, tmax_x = lo;
  std::size_t count = 0;
  for (std::size_t i = 0; i < run.t.size(); ++i) {
    if (run.t[i] < tail_start) continue;
    sum_x += run.x[i];
    sum_ya += run.ya[i];
    sum_yb += run.yb[i];
    tmin_x = std::min(tmin_x, run.x[i]);
    tmax_x = std::max(tmax_x, run.x[i]);
    ++count;
  }
  if (count > 0) {
    const double inv = 1.0 / static_cast<double>(count);
    run.tail_queue_mean = sum_x * inv + base.plant.q0;
    run.tail_x_p2p = tmax_x - tmin_x;
    run.tail_rate_a = sum_ya * inv + run.share_a;
    run.tail_rate_b = sum_yb * inv + run.share_b;
    const double r1 = run.tail_rate_a / run.share_a;
    const double r2 = run.tail_rate_b / run.share_b;
    const double denom = 2.0 * (r1 * r1 + r2 * r2);
    run.fairness = denom > 0.0 ? (r1 + r2) * (r1 + r2) / denom : 0.0;
  }
  return run;
}

}  // namespace bcn::analysis
