#include "analysis/competition.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "exec/parallel_for.h"

namespace bcn::analysis {
namespace {

struct State {
  double x = 0.0;
  double ya = 0.0;
  double yb = 0.0;
};

State derive(const core::FluidMechanism& a, const core::FluidMechanism& b,
             double share_a, double share_b, double lo, double hi,
             const State& s) {
  State d;
  d.x = s.ya + s.yb;
  // Buffer walls: the queue cannot drain below empty or grow past full.
  if ((s.x <= lo && d.x < 0.0) || (s.x >= hi && d.x > 0.0)) d.x = 0.0;
  const double y_total = s.ya + s.yb;
  d.ya = a.group_rate_deriv(s.x, s.ya, y_total, share_a);
  d.yb = b.group_rate_deriv(s.x, s.yb, y_total, share_b);
  return d;
}

State axpy(const State& s, double h, const State& d) {
  return {s.x + h * d.x, s.ya + h * d.ya, s.yb + h * d.yb};
}

// One pair's full integration state: setup, the per-step RK4 + statistics
// update, and the final verdict/tail reduction.  Both the scalar entry
// point and the SoA batch drive exactly this code, in exactly this
// order, so a batch lane is bitwise identical to the scalar run.
class Lane {
 public:
  Lane(const CompetitionPair& pair, const CompetitionOptions& options)
      : options_(options) {
    run_.mech_a = pair.mech_a;
    run_.mech_b = pair.mech_b;

    const core::MechanismConfig& base = pair.config;
    const double n_total = base.plant.num_sources;
    const double na = std::max(1.0, std::round(options.split * n_total));
    const double nb = std::max(1.0, n_total - na);
    const double cap = base.plant.capacity;
    run_.share_a = cap * na / (na + nb);
    run_.share_b = cap * nb / (na + nb);

    core::MechanismConfig cfg_a = base;
    cfg_a.plant.num_sources = na;
    core::MechanismConfig cfg_b = base;
    cfg_b.plant.num_sources = nb;
    a_ = core::make_fluid_mechanism(pair.mech_a, cfg_a);
    b_ = core::make_fluid_mechanism(pair.mech_b, cfg_b);
    if (!a_ || !b_) return;  // packet-only mechanism: no fluid verdict

    q0_ = base.plant.q0;
    lo_ = -base.plant.q0;
    hi_ = base.plant.buffer - base.plant.q0;
    wall_tol_ = 1e-6 * base.plant.q0;

    // Analysis start: empty queue, both groups exactly at their share.
    s_ = State{lo_, 0.0, 0.0};
    run_.max_x = run_.min_x = s_.x;
    post_min_x_ = hi_;

    const std::size_t reserve = steps() / record_every() + 2;
    run_.t.reserve(reserve);
    run_.x.reserve(reserve);
    run_.ya.reserve(reserve);
    run_.yb.reserve(reserve);
  }

  bool valid() const { return a_ && b_; }

  std::size_t steps() const {
    return static_cast<std::size_t>(
        std::ceil(options_.duration / options_.dt));
  }
  std::size_t record_every() const {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(options_.record_interval / options_.dt)));
  }

  void record(std::size_t i) {
    if (i % record_every() != 0) return;
    run_.t.push_back(static_cast<double>(i) * options_.dt);
    run_.x.push_back(s_.x);
    run_.ya.push_back(s_.ya);
    run_.yb.push_back(s_.yb);
  }

  void step() {
    const double dt = options_.dt;
    // Classic RK4 on the clipped field.
    const State k1 = derive(*a_, *b_, run_.share_a, run_.share_b, lo_, hi_,
                            s_);
    const State k2 = derive(*a_, *b_, run_.share_a, run_.share_b, lo_, hi_,
                            axpy(s_, dt / 2.0, k1));
    const State k3 = derive(*a_, *b_, run_.share_a, run_.share_b, lo_, hi_,
                            axpy(s_, dt / 2.0, k2));
    const State k4 = derive(*a_, *b_, run_.share_a, run_.share_b, lo_, hi_,
                            axpy(s_, dt, k3));
    s_.x += dt / 6.0 * (k1.x + 2.0 * k2.x + 2.0 * k3.x + k4.x);
    s_.ya += dt / 6.0 * (k1.ya + 2.0 * k2.ya + 2.0 * k3.ya + k4.ya);
    s_.yb += dt / 6.0 * (k1.yb + 2.0 * k2.yb + 2.0 * k3.yb + k4.yb);
    // Physical limits: queue within the buffer, group rates nonnegative.
    s_.x = std::clamp(s_.x, lo_, hi_);
    s_.ya = std::max(s_.ya, -run_.share_a);
    s_.yb = std::max(s_.yb, -run_.share_b);

    run_.max_x = std::max(run_.max_x, s_.x);
    run_.min_x = std::min(run_.min_x, s_.x);
    // The start sits on the empty wall by construction; the underflow
    // check only makes sense after the orbit has left it.
    if (!left_wall_ && s_.x > lo_ + wall_tol_) left_wall_ = true;
    if (left_wall_) post_min_x_ = std::min(post_min_x_, s_.x);
  }

  CompetitionRun finish() {
    if (!valid()) return std::move(run_);
    run_.bounded = left_wall_ && run_.max_x < hi_ - wall_tol_ &&
                   post_min_x_ > lo_ + wall_tol_;

    // Tail statistics.
    const double tail_start =
        options_.duration * (1.0 - options_.tail_fraction);
    double sum_x = 0.0, sum_ya = 0.0, sum_yb = 0.0;
    double tmin_x = hi_, tmax_x = lo_;
    std::size_t count = 0;
    for (std::size_t i = 0; i < run_.t.size(); ++i) {
      if (run_.t[i] < tail_start) continue;
      sum_x += run_.x[i];
      sum_ya += run_.ya[i];
      sum_yb += run_.yb[i];
      tmin_x = std::min(tmin_x, run_.x[i]);
      tmax_x = std::max(tmax_x, run_.x[i]);
      ++count;
    }
    if (count > 0) {
      const double inv = 1.0 / static_cast<double>(count);
      run_.tail_queue_mean = sum_x * inv + q0_;
      run_.tail_x_p2p = tmax_x - tmin_x;
      run_.tail_rate_a = sum_ya * inv + run_.share_a;
      run_.tail_rate_b = sum_yb * inv + run_.share_b;
      const double r1 = run_.tail_rate_a / run_.share_a;
      const double r2 = run_.tail_rate_b / run_.share_b;
      const double denom = 2.0 * (r1 * r1 + r2 * r2);
      run_.fairness = denom > 0.0 ? (r1 + r2) * (r1 + r2) / denom : 0.0;
    }
    return std::move(run_);
  }

 private:
  CompetitionOptions options_;
  CompetitionRun run_;
  std::unique_ptr<core::FluidMechanism> a_;
  std::unique_ptr<core::FluidMechanism> b_;
  State s_;
  double q0_ = 0.0;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double wall_tol_ = 0.0;
  bool left_wall_ = false;
  double post_min_x_ = 0.0;
};

}  // namespace

CompetitionRun simulate_fluid_competition(std::string_view mech_a,
                                          std::string_view mech_b,
                                          const core::MechanismConfig& base,
                                          const CompetitionOptions& options) {
  const std::vector<CompetitionPair> one = {
      {std::string(mech_a), std::string(mech_b), base}};
  auto runs = simulate_fluid_competition_batch(one, options, 1);
  return std::move(runs.front());
}

std::vector<CompetitionRun> simulate_fluid_competition_batch(
    const std::vector<CompetitionPair>& pairs,
    const CompetitionOptions& options, int threads) {
  const std::size_t n = pairs.size();
  std::vector<CompetitionRun> out(n);
  if (n == 0) return out;

  // Contiguous lane slices; within a slice all lanes advance in lockstep
  // (every lane has the same fixed step count), one macro-step loop over
  // the whole slice at a time.
  const std::size_t slice =
      threads == 1 ? n : std::clamp<std::size_t>(n / 16, 1, 8);
  const std::size_t n_slices = (n + slice - 1) / slice;
  exec::parallel_for(
      n_slices,
      [&](std::size_t sdx) {
        const std::size_t lane_lo = sdx * slice;
        const std::size_t lane_hi = std::min(n, lane_lo + slice);
        std::vector<Lane> lanes;
        lanes.reserve(lane_hi - lane_lo);
        std::size_t steps = 0;
        for (std::size_t i = lane_lo; i < lane_hi; ++i) {
          lanes.emplace_back(pairs[i], options);
          steps = std::max(steps, lanes.back().steps());
        }
        for (std::size_t i = 0; i <= steps; ++i) {
          for (Lane& lane : lanes) {
            if (!lane.valid()) continue;
            lane.record(i);
            if (i < steps) lane.step();
          }
        }
        for (std::size_t i = lane_lo; i < lane_hi; ++i) {
          out[i] = lanes[i - lane_lo].finish();
        }
      },
      {.threads = threads});
  return out;
}

}  // namespace bcn::analysis
