#include "analysis/sweep.h"

#include <cassert>
#include <cmath>

namespace bcn::analysis {

std::vector<double> linspace(double lo, double hi, int n) {
  assert(n >= 1);
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  }
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  assert(lo > 0.0 && hi > 0.0);
  std::vector<double> out = linspace(std::log(lo), std::log(hi), n);
  for (double& v : out) v = std::exp(v);
  return out;
}

}  // namespace bcn::analysis
