#include "analysis/sweep.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/format.h"

#include "exec/parallel_for.h"
#include "obs/tracing.h"

namespace bcn::analysis {

std::vector<double> linspace(double lo, double hi, int n) {
  if (n <= 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  if (lo == hi) {
    out.assign(static_cast<std::size_t>(n), lo);
    return out;
  }
  for (int i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  }
  out.back() = hi;  // exact endpoint, no accumulated rounding
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  // A real error path, not an assert: under NDEBUG a non-positive bound
  // would otherwise silently produce NaN axes that fan out into every
  // parallel map cell.
  if (!(lo > 0.0) || !(hi > 0.0)) {
    throw std::invalid_argument(
        strf("logspace requires positive bounds, got [%g, %g]", lo, hi));
  }
  if (n <= 0) return {};
  if (n == 1) return {lo};
  if (lo == hi) return std::vector<double>(static_cast<std::size_t>(n), lo);
  std::vector<double> out = linspace(std::log(lo), std::log(hi), n);
  for (double& v : out) v = std::exp(v);
  out.front() = lo;  // exact endpoints: exp(log(x)) need not round-trip
  out.back() = hi;
  return out;
}

std::vector<double> sweep_values(const std::vector<double>& values,
                                 const std::function<double(double)>& fn,
                                 int threads) {
  exec::ParallelForOptions opts;
  opts.threads = threads;
  return exec::parallel_map<double>(
      values.size(),
      [&](std::size_t i) {
        obs::TraceSpan span("analysis.sweep_point", "value", values[i]);
        return fn(values[i]);
      },
      opts);
}

}  // namespace bcn::analysis
