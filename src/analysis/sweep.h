// Parameter-sweep helpers shared by the stability-map analysis and the
// benchmark harnesses.
#pragma once

#include <vector>

namespace bcn::analysis {

// n evenly spaced values from lo to hi inclusive (n >= 2; n == 1 -> {lo}).
std::vector<double> linspace(double lo, double hi, int n);

// n log-spaced values from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

}  // namespace bcn::analysis
