// Parameter-sweep helpers shared by the stability-map analysis and the
// benchmark harnesses.
#pragma once

#include <functional>
#include <vector>

namespace bcn::analysis {

// n evenly spaced values from lo to hi inclusive.  Degenerate shapes are
// well defined: n <= 0 -> {}, n == 1 -> {lo}, lo == hi -> n copies of lo;
// both endpoints are exact (no accumulated rounding at hi).
std::vector<double> linspace(double lo, double hi, int n);

// n log-spaced values from lo to hi inclusive (lo, hi > 0).  Same
// degenerate shapes and exact endpoints as linspace.  Throws
// std::invalid_argument on non-positive bounds — in release builds too,
// where the old assert would have compiled out and produced NaN axes.
std::vector<double> logspace(double lo, double hi, int n);

// Evaluates fn over every value, in parallel when threads != 1 (0 = all
// hardware threads).  Results keep input order regardless of thread
// count: slot i is fn(values[i]).
std::vector<double> sweep_values(const std::vector<double>& values,
                                 const std::function<double(double)>& fn,
                                 int threads = 1);

}  // namespace bcn::analysis
