#include "analysis/report.h"

#include <utility>

#include "analysis/transient.h"
#include "common/format.h"
#include "common/table.h"
#include "control/frequency.h"
#include "core/mechanism.h"
#include "core/stability.h"

namespace bcn::analysis {

namespace {

// The stderr line bcn_analyze prints when the finite monitor trips.
std::string finite_monitor_message(const char* level_name) {
  return strf(
      "monitor: finite: %s fluid integration produced a "
      "non-finite state; no verdict\n",
      level_name);
}

// The generic path for fluid facets other than BCN's (bcn_analyze's
// non-closed-form branch).
void render_mechanism_path(const VerdictRequest& request,
                           VerdictReport& report) {
  const auto* info = core::find_mechanism(request.mechanism);
  report.text += strf("mechanism: %s -- %s\n", info->name, info->summary);
  core::MechanismConfig mcfg;
  mcfg.plant = request.params;
  const auto mech = core::make_fluid_mechanism(request.mechanism, mcfg);
  if (!mech) {
    report.has_fluid = false;
    report.text += strf(
        "packet-only mechanism: no fluid facet to analyze; use "
        "the packet benches (bcn_bench --mechanism %s).\n",
        request.mechanism.c_str());
    return;
  }
  report.text += strf("equilibrium at the origin: %s\n",
                      mech->has_equilibrium() ? "yes" : "no (sawtooth orbit)");
  TablePrinter laws({"region", "lambda^2 + m lambda + n", "m", "n"});
  for (const auto& law : mech->region_laws()) {
    laws.add_row({law.label,
                  law.linearizable ? "second-order" : "constant drive",
                  TablePrinter::format(law.m), TablePrinter::format(law.n)});
  }
  report.text += laws.to_string("linearized region laws");

  core::MechanismRunOptions mopts;
  mopts.duration = request.duration;
  for (const auto& [level, name] :
       {std::pair{core::ModelLevel::Linearized, "linearized"},
        std::pair{core::ModelLevel::Nonlinear, "nonlinear "}}) {
    mopts.level = level;
    const auto verdict = core::mechanism_numeric_verdict(*mech, mopts);
    report.nonfinite = report.nonfinite || verdict.nonfinite;
    if (request.finite_monitor && verdict.nonfinite) {
      report.monitor_error = finite_monitor_message(name);
      return;
    }
    const double q0 = request.params.q0;
    if (level == core::ModelLevel::Linearized) {
      report.stable_linearized = verdict.strongly_stable;
      report.peak_q_linearized = verdict.max_x + q0;
      report.dip_q_linearized = verdict.min_x + q0;
    } else {
      report.stable_nonlinear = verdict.strongly_stable;
      report.peak_q_nonlinear = verdict.max_x + q0;
      report.dip_q_nonlinear = verdict.min_x + q0;
    }
    report.text += strf("numeric %s: %-22s peak q = %.6g, dip q = %.6g\n",
                        name,
                        verdict.strongly_stable ? "strongly stable"
                                                : "NOT strongly stable",
                        verdict.max_x + q0, verdict.min_x + q0);
  }
}

// The closed-form path (bcn / bcn-draft share BCN's fluid facet).
void render_bcn_path(const VerdictRequest& request, VerdictReport& report) {
  const core::BcnParams& p = request.params;
  const auto analysis = core::analyze_stability(p);
  report.closed_form = true;
  report.paper_case = core::to_string(analysis.classification.paper_case);
  report.proposition = analysis.proposition;
  report.proposition_satisfied = analysis.proposition_satisfied;
  report.theorem1_satisfied = analysis.theorem1_satisfied;
  report.theorem1_required_buffer = analysis.theorem1_required_buffer;
  report.text += strf("analysis: %s\n\n", analysis.summary().c_str());

  for (const auto& [level, name] :
       {std::pair{core::ModelLevel::Linearized, "linearized (eq.9) "},
        std::pair{core::ModelLevel::Nonlinear, "nonlinear  (eq.8) "}}) {
    const auto verdict = core::numeric_strong_stability(p, {.level = level});
    report.nonfinite = report.nonfinite || verdict.nonfinite;
    if (request.finite_monitor && verdict.nonfinite) {
      report.monitor_error = finite_monitor_message(name);
      return;
    }
    if (level == core::ModelLevel::Linearized) {
      report.stable_linearized = verdict.strongly_stable;
      report.peak_q_linearized = verdict.max_x + p.q0;
      report.dip_q_linearized = verdict.min_x + p.q0;
    } else {
      report.stable_nonlinear = verdict.strongly_stable;
      report.peak_q_nonlinear = verdict.max_x + p.q0;
      report.dip_q_nonlinear = verdict.min_x + p.q0;
    }
    report.text += strf("numeric %s: %-22s peak q = %.6g, dip q = %.6g\n",
                        name,
                        verdict.strongly_stable ? "strongly stable"
                                                : "NOT strongly stable",
                        verdict.max_x + p.q0, verdict.min_x + p.q0);
  }

  if (const auto est = analysis::estimate_transient(p)) {
    report.text += strf(
        "\ntransient estimate: cycle %.4g s, contraction %.6f per "
        "cycle, settling to 5%% band in %.4g s\n",
        est->cycle_time, est->contraction_ratio, est->settling_time);
  }

  const control::LoopTransfer inc{p.a(), p.k()};
  const control::LoopTransfer dec{p.b() * p.capacity, p.k()};
  report.text += strf(
      "\nfrequency margins: increase crossover %.4g rad/s, phase "
      "margin %.4g rad, delay margin %.4g s; decrease %.4g rad/s, "
      "%.4g rad, %.4g s\n",
      control::gain_crossover(inc), control::phase_margin(inc),
      control::delay_margin(inc), control::gain_crossover(dec),
      control::phase_margin(dec), control::delay_margin(dec));
}

}  // namespace

VerdictReport render_verdict_report(const VerdictRequest& request) {
  VerdictReport report;
  report.text = strf("%s\n\n", request.params.describe().c_str());
  if (request.mechanism == "bcn" || request.mechanism == "bcn-draft") {
    render_bcn_path(request, report);
  } else {
    render_mechanism_path(request, report);
  }
  return report;
}

}  // namespace bcn::analysis
