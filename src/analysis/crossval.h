// Shape-comparison metrics between two queue trajectories (typically the
// fluid ODE and the packet simulator) for experiment E11.
//
// "Shape agreement" is quantified by the features the paper's analysis
// predicts: the first overshoot above q0, the undershoot after it, the
// oscillation period, and the settling offset -- not by pointwise error,
// which is meaningless between a fluid abstraction and a frame-quantized
// system.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bcn_params.h"
#include "ode/trajectory.h"

namespace bcn::analysis {

// Fluid-side strong-stability verdict for a packet scenario's plant and
// mechanism — the hint obs::RunMonitor's fluid-verdict crosscheck
// consumes.  Returns the numeric strong-stability verdict
// (core::numeric_strong_stability for bcn/bcn-draft, the generic
// mechanism_numeric_verdict otherwise) or nullopt for packet-only
// mechanisms (fera) and unknown names, which have no fluid model to
// contradict.
std::optional<bool> fluid_stability_hint(const core::BcnParams& params,
                                         const std::string& mechanism = "bcn");

struct TrajectoryFeatures {
  double peak_value = 0.0;     // max of the component
  double peak_time = 0.0;
  double trough_value = 0.0;   // min after the peak
  double trough_time = 0.0;
  // Mean spacing of successive local maxima (oscillation period); nullopt
  // with fewer than two maxima.
  std::optional<double> period;
  double final_value = 0.0;    // mean over the trailing 20%
};

// Features of component 0 (x) of a trajectory.  `min_prominence` filters
// noise extrema: an extremum counts only if it differs from the previous
// kept one by at least this much.
TrajectoryFeatures extract_features(const ode::Trajectory& trajectory,
                                    double min_prominence);

struct ShapeComparison {
  TrajectoryFeatures a;
  TrajectoryFeatures b;
  double peak_rel_error = 0.0;
  double period_rel_error = 0.0;  // 0 when either period is missing
  double final_rel_error = 0.0;
  // Same damped-oscillation character: both have a period, or neither.
  bool same_character = false;
};

ShapeComparison compare_shapes(const ode::Trajectory& a,
                               const ode::Trajectory& b,
                               double min_prominence);

// Batch feature extraction over many trajectories (a cross-validation
// grid produces one per cell).  Slot i holds the features of
// *trajectories[i]; parallel when threads != 1 (0 = all hardware
// threads), with output order independent of the thread count.
std::vector<TrajectoryFeatures> extract_features_batch(
    const std::vector<const ode::Trajectory*>& trajectories,
    double min_prominence, int threads = 1);

// Batch shape comparison: slot i compares *pairs[i].first (reference)
// against *pairs[i].second.  Same threading/ordering contract as
// extract_features_batch.
std::vector<ShapeComparison> compare_shapes_batch(
    const std::vector<std::pair<const ode::Trajectory*,
                                const ode::Trajectory*>>& pairs,
    double min_prominence, int threads = 1);

}  // namespace bcn::analysis
