#include "plot/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/format.h"

namespace bcn::plot {
namespace {

// Color-blind-safe categorical palette.
constexpr const char* kColors[] = {"#4477aa", "#ee6677", "#228833",
                                   "#ccbb44", "#66ccee", "#aa3377",
                                   "#bbbbbb", "#222222"};

struct Box {
  double x_lo, x_hi, y_lo, y_hi;
};

Box bounding_box(const std::vector<Series>& series) {
  Box b{0.0, 1.0, 0.0, 1.0};
  bool any = false;
  for (const Series& s : series) {
    if (s.empty()) continue;
    if (!any) {
      b = {s.min_x(), s.max_x(), s.min_y(), s.max_y()};
      any = true;
    } else {
      b.x_lo = std::min(b.x_lo, s.min_x());
      b.x_hi = std::max(b.x_hi, s.max_x());
      b.y_lo = std::min(b.y_lo, s.min_y());
      b.y_hi = std::max(b.y_hi, s.max_y());
    }
  }
  if (b.x_hi - b.x_lo <= 0.0) b.x_hi = b.x_lo + 1.0;
  if (b.y_hi - b.y_lo <= 0.0) b.y_hi = b.y_lo + 1.0;
  const double mx = 0.04 * (b.x_hi - b.x_lo);
  const double my = 0.06 * (b.y_hi - b.y_lo);
  return {b.x_lo - mx, b.x_hi + mx, b.y_lo - my, b.y_hi + my};
}

std::string escape_xml(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_svg(const std::vector<Series>& series,
                       const SvgOptions& options) {
  const int w = options.width;
  const int h = options.height;
  const double ml = 72, mr = 16, mt = options.title.empty() ? 16 : 40,
               mb = 48;
  const double pw = w - ml - mr;
  const double ph = h - mt - mb;
  const Box box = bounding_box(series);

  auto sx = [&](double x) {
    return ml + (x - box.x_lo) / (box.x_hi - box.x_lo) * pw;
  };
  auto sy = [&](double y) {
    return mt + ph - (y - box.y_lo) / (box.y_hi - box.y_lo) * ph;
  };

  std::string svg = strf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"11\">\n",
      w, h, w, h);
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    svg += strf(
        "<text x=\"%g\" y=\"22\" font-size=\"14\" text-anchor=\"middle\">"
        "%s</text>\n",
        ml + pw / 2, escape_xml(options.title).c_str());
  }
  // Frame.
  svg += strf(
      "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"none\" "
      "stroke=\"#888\"/>\n",
      ml, mt, pw, ph);

  // Ticks: 5 per axis.
  for (int i = 0; i <= 5; ++i) {
    const double fx = box.x_lo + (box.x_hi - box.x_lo) * i / 5.0;
    const double fy = box.y_lo + (box.y_hi - box.y_lo) * i / 5.0;
    svg += strf(
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#888\"/>\n",
        sx(fx), mt + ph, sx(fx), mt + ph + 4);
    svg += strf(
        "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%.4g</text>\n",
        sx(fx), mt + ph + 16, fx);
    svg += strf(
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#888\"/>\n",
        ml - 4, sy(fy), ml, sy(fy));
    svg += strf(
        "<text x=\"%g\" y=\"%g\" text-anchor=\"end\">%.4g</text>\n",
        ml - 6, sy(fy) + 4, fy);
  }
  if (!options.x_label.empty()) {
    svg += strf(
        "<text x=\"%g\" y=\"%g\" text-anchor=\"middle\">%s</text>\n",
        ml + pw / 2, static_cast<double>(h - 8),
        escape_xml(options.x_label).c_str());
  }
  if (!options.y_label.empty()) {
    svg += strf(
        "<text x=\"14\" y=\"%g\" text-anchor=\"middle\" "
        "transform=\"rotate(-90 14 %g)\">%s</text>\n",
        mt + ph / 2, mt + ph / 2, escape_xml(options.y_label).c_str());
  }

  // Zero axes and reference lines.
  if (options.draw_zero_axes) {
    if (box.y_lo < 0.0 && box.y_hi > 0.0) {
      svg += strf(
          "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#bbb\" "
          "stroke-dasharray=\"4 3\"/>\n",
          ml, sy(0.0), ml + pw, sy(0.0));
    }
    if (box.x_lo < 0.0 && box.x_hi > 0.0) {
      svg += strf(
          "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#bbb\" "
          "stroke-dasharray=\"4 3\"/>\n",
          sx(0.0), mt, sx(0.0), mt + ph);
    }
  }
  for (const auto& ref : options.ref_lines) {
    if (ref.vertical) {
      if (ref.value < box.x_lo || ref.value > box.x_hi) continue;
      svg += strf(
          "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#cc3311\" "
          "stroke-dasharray=\"6 3\"/>\n",
          sx(ref.value), mt, sx(ref.value), mt + ph);
      svg += strf(
          "<text x=\"%g\" y=\"%g\" fill=\"#cc3311\">%s</text>\n",
          sx(ref.value) + 3, mt + 12, escape_xml(ref.label).c_str());
    } else {
      if (ref.value < box.y_lo || ref.value > box.y_hi) continue;
      svg += strf(
          "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#cc3311\" "
          "stroke-dasharray=\"6 3\"/>\n",
          ml, sy(ref.value), ml + pw, sy(ref.value));
      svg += strf(
          "<text x=\"%g\" y=\"%g\" fill=\"#cc3311\">%s</text>\n",
          ml + 4, sy(ref.value) - 4, escape_xml(ref.label).c_str());
    }
  }

  // Series polylines + legend.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char* color = kColors[si % (sizeof kColors / sizeof kColors[0])];
    std::string pts;
    for (const Vec2& p : series[si].points) {
      pts += strf("%.2f,%.2f ", sx(p.x), sy(p.y));
    }
    svg += strf(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"1.5\"/>\n",
        pts.c_str(), color);
    const double ly = mt + 14 + 14.0 * static_cast<double>(si);
    svg += strf(
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" "
        "stroke-width=\"2\"/>\n",
        ml + pw - 120, ly, ml + pw - 100, ly, color);
    svg += strf("<text x=\"%g\" y=\"%g\">%s</text>\n", ml + pw - 94, ly + 4,
                escape_xml(series[si].name).c_str());
  }
  svg += "</svg>\n";
  return svg;
}

bool write_svg(const std::filesystem::path& path,
               const std::vector<Series>& series, const SvgOptions& options) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path);
  if (!out) return false;
  out << render_svg(series, options);
  return static_cast<bool>(out);
}

}  // namespace bcn::plot
