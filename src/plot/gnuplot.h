// gnuplot exporter: writes a .dat file (one block per series) plus a .gp
// script so the paper figures can be regenerated with publication-quality
// tooling when available.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "plot/series.h"

namespace bcn::plot {

struct GnuplotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  bool with_lines = true;
};

// Writes `<stem>.dat` and `<stem>.gp` next to each other.  Returns false
// on I/O failure.
bool write_gnuplot(const std::filesystem::path& stem,
                   const std::vector<Series>& series,
                   const GnuplotOptions& options = {});

}  // namespace bcn::plot
