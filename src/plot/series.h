// Named (x, y) series: the common currency between traces, benches and the
// ASCII/SVG/gnuplot backends.
#pragma once

#include <string>
#include <vector>

#include "common/math.h"
#include "ode/trajectory.h"

namespace bcn::plot {

struct Series {
  std::string name;
  std::vector<Vec2> points;

  void add(double x, double y) { points.push_back({x, y}); }
  bool empty() const { return points.empty(); }

  double min_x() const;
  double max_x() const;
  double min_y() const;
  double max_y() const;
};

// Time series of one state component (0 -> x, 1 -> y) from a trajectory.
Series series_vs_time(const ode::Trajectory& trajectory, int component,
                      std::string name, double x_scale = 1.0,
                      double y_scale = 1.0);

// Phase-portrait series (state.x vs state.y).
Series series_phase(const ode::Trajectory& trajectory, std::string name,
                    double x_scale = 1.0, double y_scale = 1.0);

}  // namespace bcn::plot
