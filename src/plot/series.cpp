#include "plot/series.h"

#include <algorithm>
#include <cassert>

namespace bcn::plot {
namespace {

template <typename Proj>
double fold(const std::vector<Vec2>& pts, Proj proj, bool want_max) {
  assert(!pts.empty());
  double acc = proj(pts.front());
  for (const Vec2& p : pts) {
    acc = want_max ? std::max(acc, proj(p)) : std::min(acc, proj(p));
  }
  return acc;
}

}  // namespace

double Series::min_x() const {
  return fold(points, [](Vec2 p) { return p.x; }, false);
}
double Series::max_x() const {
  return fold(points, [](Vec2 p) { return p.x; }, true);
}
double Series::min_y() const {
  return fold(points, [](Vec2 p) { return p.y; }, false);
}
double Series::max_y() const {
  return fold(points, [](Vec2 p) { return p.y; }, true);
}

Series series_vs_time(const ode::Trajectory& trajectory, int component,
                      std::string name, double x_scale, double y_scale) {
  Series s;
  s.name = std::move(name);
  s.points.reserve(trajectory.size());
  for (const auto& sample : trajectory.samples()) {
    const double v = component == 0 ? sample.z.x : sample.z.y;
    s.add(sample.t * x_scale, v * y_scale);
  }
  return s;
}

Series series_phase(const ode::Trajectory& trajectory, std::string name,
                    double x_scale, double y_scale) {
  Series s;
  s.name = std::move(name);
  s.points.reserve(trajectory.size());
  for (const auto& sample : trajectory.samples()) {
    s.add(sample.z.x * x_scale, sample.z.y * y_scale);
  }
  return s;
}

}  // namespace bcn::plot
