#include "plot/gnuplot.h"

#include <fstream>

#include "common/format.h"

namespace bcn::plot {

bool write_gnuplot(const std::filesystem::path& stem,
                   const std::vector<Series>& series,
                   const GnuplotOptions& options) {
  std::error_code ec;
  if (stem.has_parent_path()) {
    std::filesystem::create_directories(stem.parent_path(), ec);
    if (ec) return false;
  }

  std::filesystem::path dat = stem;
  dat += ".dat";
  std::filesystem::path gp = stem;
  gp += ".gp";

  {
    std::ofstream out(dat);
    if (!out) return false;
    for (const Series& s : series) {
      out << "# " << s.name << "\n";
      for (const Vec2& p : s.points) {
        out << strf("%.17g %.17g\n", p.x, p.y);
      }
      out << "\n\n";  // gnuplot block separator
    }
    if (!out) return false;
  }

  std::ofstream out(gp);
  if (!out) return false;
  out << "set terminal svg size 760,480\n";
  out << "set output '" << stem.filename().string() << ".svg'\n";
  if (!options.title.empty()) out << "set title '" << options.title << "'\n";
  if (!options.x_label.empty()) {
    out << "set xlabel '" << options.x_label << "'\n";
  }
  if (!options.y_label.empty()) {
    out << "set ylabel '" << options.y_label << "'\n";
  }
  out << "set key outside\n";
  out << "plot ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out << ", \\\n     ";
    out << "'" << dat.filename().string() << "' index " << i << " with "
        << (options.with_lines ? "lines" : "points") << " title '"
        << series[i].name << "'";
  }
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace bcn::plot
