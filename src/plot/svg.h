// Minimal SVG line-plot writer: polylines with axes, ticks and a legend.
// Benches write one SVG per reproduced figure into bench_out/.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "plot/series.h"

namespace bcn::plot {

struct SvgOptions {
  int width = 760;
  int height = 480;
  std::string title;
  std::string x_label;
  std::string y_label;
  bool draw_zero_axes = true;
  // Optional reference lines (e.g. the switching line, buffer walls).
  struct RefLine {
    bool vertical = false;
    double value = 0.0;  // x for vertical, y for horizontal
    std::string label;
  };
  std::vector<RefLine> ref_lines;
};

std::string render_svg(const std::vector<Series>& series,
                       const SvgOptions& options = {});

// Renders and writes to `path`; creates parent directories.  Returns false
// on I/O failure.
bool write_svg(const std::filesystem::path& path,
               const std::vector<Series>& series,
               const SvgOptions& options = {});

}  // namespace bcn::plot
