// ASCII line/scatter plots for terminal output.  Every bench binary prints
// these so the paper's figures can be eyeballed without leaving the shell.
#pragma once

#include <string>
#include <vector>

#include "plot/series.h"

namespace bcn::plot {

struct AsciiOptions {
  int width = 72;    // plot area columns (excluding axis labels)
  int height = 20;   // plot area rows
  bool draw_zero_axes = true;
  std::string title;
  std::string x_label;
  std::string y_label;
};

// Renders the series over a shared bounding box.  Each series uses its own
// glyph ('*', '+', 'o', ...); a legend line maps glyphs to names.
std::string render_ascii(const std::vector<Series>& series,
                         const AsciiOptions& options = {});

}  // namespace bcn::plot
