#include "plot/ascii.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace bcn::plot {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

}  // namespace

std::string render_ascii(const std::vector<Series>& series,
                         const AsciiOptions& options) {
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  bool any = false;
  double x_lo = 0.0, x_hi = 1.0, y_lo = 0.0, y_hi = 1.0;
  for (const Series& s : series) {
    if (s.empty()) continue;
    if (!any) {
      x_lo = s.min_x();
      x_hi = s.max_x();
      y_lo = s.min_y();
      y_hi = s.max_y();
      any = true;
    } else {
      x_lo = std::min(x_lo, s.min_x());
      x_hi = std::max(x_hi, s.max_x());
      y_lo = std::min(y_lo, s.min_y());
      y_hi = std::max(y_hi, s.max_y());
    }
  }
  if (!any) return "(no data)\n";
  if (x_hi - x_lo <= 0.0) x_hi = x_lo + 1.0;
  if (y_hi - y_lo <= 0.0) y_hi = y_lo + 1.0;
  // Small margins keep extreme points visible.
  const double mx = 0.02 * (x_hi - x_lo);
  const double my = 0.05 * (y_hi - y_lo);
  x_lo -= mx;
  x_hi += mx;
  y_lo -= my;
  y_hi += my;

  std::vector<std::string> grid(h, std::string(w, ' '));
  auto col_of = [&](double x) {
    return static_cast<int>((x - x_lo) / (x_hi - x_lo) * (w - 1) + 0.5);
  };
  auto row_of = [&](double y) {
    return (h - 1) -
           static_cast<int>((y - y_lo) / (y_hi - y_lo) * (h - 1) + 0.5);
  };

  if (options.draw_zero_axes) {
    if (y_lo < 0.0 && y_hi > 0.0) {
      const int r = row_of(0.0);
      for (int c = 0; c < w; ++c) grid[r][c] = '-';
    }
    if (x_lo < 0.0 && x_hi > 0.0) {
      const int c = col_of(0.0);
      for (int r = 0; r < h; ++r) {
        grid[r][c] = grid[r][c] == '-' ? '+' : '|';
      }
    }
  }

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    for (const Vec2& p : series[si].points) {
      const int c = col_of(p.x);
      const int r = row_of(p.y);
      if (c >= 0 && c < w && r >= 0 && r < h) grid[r][c] = glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  out += strf("  y: [%.4g, %.4g]", y_lo, y_hi);
  if (!options.y_label.empty()) out += "  (" + options.y_label + ")";
  out += "\n";
  for (const std::string& row : grid) {
    out += "  |" + row + "\n";
  }
  out += "  +" + std::string(w, '-') + "\n";
  out += strf("  x: [%.4g, %.4g]", x_lo, x_hi);
  if (!options.x_label.empty()) out += "  (" + options.x_label + ")";
  out += "\n";
  std::string legend = "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    legend += strf(" %c=%s", kGlyphs[si % sizeof kGlyphs],
                   series[si].name.c_str());
  }
  out += legend + "\n";
  return out;
}

}  // namespace bcn::plot
