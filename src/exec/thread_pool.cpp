#include "exec/thread_pool.h"

#include <algorithm>

namespace bcn::exec {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace bcn::exec
