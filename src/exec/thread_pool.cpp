#include "exec/thread_pool.h"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/format.h"
#include "obs/tracing.h"

namespace bcn::exec {
namespace {

thread_local int t_worker_index = -1;

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  return hardware_threads();
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

int current_worker_index() { return t_worker_index; }

namespace {

void maybe_pin(std::thread& worker, int index) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<std::size_t>(index % hardware_threads()), &set);
  pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set);
#else
  (void)worker;
  (void)index;
#endif
}

}  // namespace

ThreadPool::ThreadPool(int threads, bool pin_to_core) {
  const int n = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    if (pin_to_core) maybe_pin(workers_.back(), i);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(int index) {
  t_worker_index = index;
  obs::tracing_set_thread_name(strf("pool-worker-%d", index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    {
      obs::TraceSpan span("exec.task");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace bcn::exec
