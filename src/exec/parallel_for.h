// Chunked data-parallel loop on top of ThreadPool.
//
// Determinism contract: the body is called exactly once per index, and
// callers write results *by index* (parallel_map allocates the output
// vector up front and the body fills slot i).  Because cells are
// independent and land in their own slots, the output of a parallel run
// is bitwise identical to the serial run — only the completion order
// differs.  `threads == 1` bypasses the pool entirely and runs the plain
// loop in the calling thread, so the legacy serial path stays exactly
// what it was.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"

namespace bcn::exec {

// Cooperative cancellation: parallel_for checks the token between chunks
// and stops issuing new work once it is set.  Bodies may also poll it.
class CancelToken {
 public:
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
};

// Live progress counter, safe to read from another thread.
class Progress {
 public:
  void reset(std::size_t total) {
    total_.store(total, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
  }
  void add(std::size_t n) { done_.fetch_add(n, std::memory_order_relaxed); }
  std::size_t done() const { return done_.load(std::memory_order_relaxed); }
  std::size_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> total_{0};
};

struct ParallelForOptions {
  int threads = 0;        // 0 = hardware concurrency, 1 = serial path
  std::size_t chunk = 0;  // indices per chunk; 0 = derived from n/threads
  CancelToken* cancel = nullptr;    // optional cooperative cancellation
  Progress* progress = nullptr;     // optional live progress
  ThreadPool* pool = nullptr;       // reuse an existing pool; else one is
                                    // created for the call
};

struct ParallelForStats {
  std::size_t items = 0;   // indices actually executed
  std::size_t chunks = 0;  // chunks issued
  int threads = 1;         // workers used
  double wall_seconds = 0.0;
  bool completed = false;  // false only when cancelled early
};

// Runs body(i) for i in [0, n).  Rethrows the first body exception in the
// calling thread (remaining chunks are abandoned).  Returns per-call
// timing/shape stats.
ParallelForStats parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const ParallelForOptions& options = {});

// Maps fn over [0, n) into a vector, slot i = fn(i).  T must be
// default-constructible.  Output is index-ordered (and therefore
// thread-count independent) by construction.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn,
                            const ParallelForOptions& options = {}) {
  std::vector<T> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

}  // namespace bcn::exec
