#include "exec/parallel_for.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/tracing.h"

namespace bcn::exec {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ParallelForStats parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const ParallelForOptions& options) {
  ParallelForStats stats;
  const auto start = Clock::now();
  if (options.progress) options.progress->reset(n);

  const int threads = options.pool ? options.pool->size()
                                   : resolve_threads(options.threads);
  stats.threads = threads;

  obs::TraceSpan call_span("exec.parallel_for");
  call_span.arg("n", static_cast<double>(n));
  call_span.arg("threads", threads);

  // Legacy serial path: the plain loop in the calling thread, no pool, no
  // atomics.  threads == 1 through the pool would compute the same thing;
  // this keeps the single-threaded cost profile unchanged.
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (options.cancel && options.cancel->stop_requested()) {
        stats.wall_seconds = seconds_since(start);
        return stats;
      }
      body(i);
      ++stats.items;
      if (options.progress) options.progress->add(1);
    }
    stats.chunks = n > 0 ? 1 : 0;
    stats.completed = true;
    stats.wall_seconds = seconds_since(start);
    return stats;
  }

  // Chunk size: enough chunks per worker to balance uneven cells without
  // drowning in queue traffic.
  const std::size_t chunk =
      options.chunk > 0
          ? options.chunk
          : std::max<std::size_t>(
                1, n / (static_cast<std::size_t>(threads) * 8));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done_items{0};
  std::atomic<std::size_t> issued_chunks{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto run_chunks = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      if (options.cancel && options.cancel->stop_requested()) return;
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + chunk);
      issued_chunks.fetch_add(1, std::memory_order_relaxed);
      obs::TraceSpan chunk_span("exec.chunk");
      chunk_span.arg("begin", static_cast<double>(begin));
      chunk_span.arg("count", static_cast<double>(end - begin));
      chunk_span.arg("worker", current_worker_index());
      try {
        for (std::size_t i = begin; i < end; ++i) {
          body(i);
          done_items.fetch_add(1, std::memory_order_relaxed);
          if (options.progress) options.progress->add(1);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = options.pool;
  if (!pool) {
    owned = std::make_unique<ThreadPool>(threads);
    pool = owned.get();
  }
  for (int t = 0; t < threads; ++t) pool->submit(run_chunks);
  pool->wait_idle();

  stats.items = done_items.load();
  stats.chunks = issued_chunks.load();
  stats.wall_seconds = seconds_since(start);
  if (first_error) std::rethrow_exception(first_error);
  stats.completed =
      !(options.cancel && options.cancel->stop_requested()) || stats.items == n;
  return stats;
}

}  // namespace bcn::exec
