// Fixed-size worker pool for the execution layer.  Workers are started
// once and fed through a simple task queue; `wait_idle` gives the
// fork-join shape `parallel_for` needs without re-spawning threads per
// grid.  The pool never touches library state: tasks own their data.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bcn::exec {

// Number of workers a `threads` knob resolves to: 0 means "all hardware
// threads" (never less than 1), anything else is taken literally.
int resolve_threads(int requested);

// Hardware threads this machine offers (never less than 1) -- what a
// `threads` knob of 0 resolves to.
int hardware_threads();

// Index of the calling pool worker within its pool, or -1 off-pool.
// Trace spans recorded inside parallel_for chunks attach it so a
// Perfetto timeline shows which worker ran which chunk.
int current_worker_index();

class ThreadPool {
 public:
  // Starts `threads` workers (resolved via resolve_threads).  With
  // `pin_to_core`, worker i is pinned to core i % hardware_threads() so
  // long-lived per-worker state (e.g. one simulator shard per worker)
  // keeps a stable cache affinity; a hint only -- unsupported platforms
  // ignore it.
  explicit ThreadPool(int threads, bool pin_to_core = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Tasks must not submit further tasks and must not
  // throw (parallel_for funnels exceptions itself).
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace bcn::exec
