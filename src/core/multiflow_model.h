// Heterogeneous multi-flow fluid model (extension).
//
// The paper reduces N homogeneous sources to one aggregate rate (eq. (4)).
// This module keeps N independent per-flow rates r_i(t) against the shared
// queue:
//
//   dq/dt   = sum_i r_i - C            (pinned at q = 0 when draining)
//   sigma   = (q0 - q) - (w/(pm C)) dq/dt
//   dr_i/dt = Gi Ru sigma              sigma > 0   (equal additive increase)
//   dr_i/dt = Gd sigma r_i             sigma < 0   (proportional decrease)
//
// Summing the per-flow laws over equal rates recovers eq. (8) exactly, so
// the homogeneous case cross-checks against the 2-D model; unequal initial
// rates let us verify the AIMD fairness-convergence claim the paper
// imports from Chiu & Jain [11] *within the fluid setting*.
#pragma once

#include <vector>

#include "core/bcn_params.h"

namespace bcn::core {

struct MultiflowOptions {
  // One entry per flow; the flow count is the vector's size (overrides
  // params.num_sources for the dynamics' N-dependent gains? No --
  // a = Ru Gi N never appears here; the per-flow laws use Gi, Gd, Ru
  // directly, so the effective aggregate gain scales with the actual
  // flow count by construction).
  std::vector<double> initial_rates;
  double initial_queue = 0.0;  // bits
  double duration = 0.02;      // seconds
  double step = 0.0;           // 0 -> auto from the oscillation time scale
  double record_interval = 0.0;  // 0 -> every step
};

struct MultiflowSample {
  double t = 0.0;
  double queue = 0.0;            // bits
  std::vector<double> rates;     // bits/s per flow
};

struct MultiflowRun {
  std::vector<MultiflowSample> trace;
  double max_queue = 0.0;
  std::vector<double> final_rates;
  // Relative rate spread (max - min)/mean at the start and end.
  double initial_spread = 0.0;
  double final_spread = 0.0;
  bool completed = false;
};

MultiflowRun simulate_multiflow(const BcnParams& params,
                                const MultiflowOptions& options);

}  // namespace bcn::core
