// Pluggable congestion-control mechanisms: the fluid facet.
//
// The phase-plane machinery (hybrid integration, numeric strong-stability
// verdicts, stability maps, fluid-vs-packet cross-validation) originally
// hard-wired BCN's sigma feedback.  A CongestionControlMechanism now has
// two coordinated facets:
//
//   * the fluid facet (this header): the ODE right-hand sides, switching
//     structure and linearized region laws consumed by src/core and
//     src/ode;
//   * the packet facet (sim/mechanism.h): the switch feedback-generation
//     policy and regulator reaction policy consumed by src/sim.
//
// Both facets of one mechanism are registered under one name ("bcn",
// "qcn", "rcp", ...) in the registry below, which is what --mechanism
// resolves against in the bench runner and the analysis tools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/bcn_params.h"
#include "core/fluid_model.h"
#include "core/simulate.h"
#include "core/stability.h"
#include "ode/batch.h"

namespace bcn::core {

// RCP-style explicit-rate controller (Voice & Raina): once per control
// interval d the switch updates its advertised rate by the relative rate
// mismatch plus a queue term,
//   R <- R [1 + (T/d) (alpha (C - y) - beta (q - q0)/d) / C].
// The (q - q0) form (instead of the classic q) places the equilibrium at
// the phase-plane origin shared by the other mechanisms.
struct RcpParams {
  double alpha = 0.4;     // rate-mismatch gain
  double beta = 0.226;    // queue-drain gain
  double interval = 1e-4; // control interval d [s] (the RTT estimate)
};

// QCN-style operation promoted out of the old rate_regulator.h mode
// flags: negative-only quantized feedback, source-driven recovery.
struct QcnParams {
  double active_increase = 5e6;    // R_AI [bits/s] per self-increase
  double increase_period = 1e-4;   // self-increase timer period [s]
  int feedback_bits = 6;           // |Fb| quantized to 2^bits - 1 levels
  double fb_scale = 64.0;          // sigma_frames mapping to full scale
  int fast_recovery_cycles = 5;
  double max_decrease = 0.5;       // largest per-message rate fraction cut
  double frame_bits = 12000.0;     // sigma quantum for the Fb field
};

// FERA/ERICA-style explicit fair-share advertisement (packet-only: the
// advert jumps between fair-share levels as the flow estimate updates,
// which has no planar fluid limit in this framework).
struct FeraParams {
  double alpha = 0.5;              // queue-correction weight in the advert
  std::uint64_t epoch_frames = 1000;  // flow-estimation epoch length
  double smoothing = 0.5;          // regulator EWMA weight for new adverts
};

// Everything needed to instantiate any registered mechanism: the shared
// plant description plus the per-mechanism knobs.
struct MechanismConfig {
  BcnParams plant = BcnParams::standard_draft();
  RcpParams rcp;
  QcnParams qcn;
  FeraParams fera;
};

// One linearized region law lambda^2 + m lambda + n = 0 of a mechanism's
// switched dynamics.  Mechanisms whose drive in a region is constant
// (QCN's active increase) have no second-order law there.
struct RegionLaw {
  const char* label = "";
  double m = 0.0;
  double n = 0.0;
  bool linearizable = true;
};

// The fluid facet: a planar switched system in the translated coordinates
// x = q - q0, y = (aggregate rate) - C shared with FluidModel.
class FluidMechanism {
 public:
  virtual ~FluidMechanism() = default;

  virtual const char* name() const = 0;
  const BcnParams& plant() const { return plant_; }

  // Feedback signal driving the regulators; its sign selects the region.
  virtual double sigma(Vec2 z) const = 0;

  // The switched system at a given model level, compatible with
  // ode::integrate_hybrid.
  virtual ode::HybridSystem hybrid_system(ModelLevel level) const = 0;

  // Linearized characteristic polynomials per region.
  virtual std::vector<RegionLaw> region_laws() const = 0;

  // False when the vector field cannot vanish at the origin (QCN's
  // constant active increase): the mechanism orbits a sawtooth / limit
  // cycle instead of settling.
  virtual bool has_equilibrium() const { return true; }

  // Group dynamics for heterogeneous competition: dy_g/dt for a source
  // group whose fair share of the capacity is `share` [bits/s], carrying
  // aggregate deviation y_group, while the shared queue sees x and the
  // total deviation y_total.  Always the nonlinear (level-(8)) law.
  virtual double group_rate_deriv(double x, double y_group, double y_total,
                                  double share) const = 0;

  // The mechanism's interior dynamics as an affine lane law for the SoA
  // batched integrator (ode/batch.h), at Linearized or Nonlinear level.
  // Returns false when the dynamics fall outside the affine family or
  // the level has buffer walls (Clipped) — callers then fall back to the
  // scalar hybrid path.  Every current fluid facet is representable.
  virtual bool lane_law(ModelLevel /*level*/, ode::LaneLaw* /*out*/) const {
    return false;
  }

  // Buffer walls and the canonical analysis start, shared by every
  // mechanism operating on the same plant.
  double x_min() const { return -plant_.q0; }
  double x_max() const { return plant_.buffer - plant_.q0; }
  Vec2 analysis_initial_point() const { return {-plant_.q0, 0.0}; }

 protected:
  explicit FluidMechanism(const BcnParams& plant) : plant_(plant) {}

  BcnParams plant_;
};

// --- registry ---------------------------------------------------------------

struct MechanismInfo {
  const char* name;
  const char* summary;
  // The two gain axes a per-mechanism stability map sweeps.
  const char* gain1;
  const char* gain2;
  bool has_fluid;
  bool has_packet;
  void (*set_gains)(MechanismConfig&, double g1, double g2);
  std::pair<double, double> (*default_gains)(const MechanismConfig&);
};

const std::vector<MechanismInfo>& mechanism_registry();

// nullptr when `name` is not registered.
const MechanismInfo* find_mechanism(std::string_view name);

// "bcn, bcn-draft, qcn, rcp, fera" -- for usage/error messages.
std::string mechanism_name_list();

// Builds the fluid facet; nullptr for unknown names and for packet-only
// mechanisms (fera).
std::unique_ptr<FluidMechanism> make_fluid_mechanism(
    std::string_view name, const MechanismConfig& config = {});

// --- generic numeric analysis ----------------------------------------------

struct MechanismRunOptions {
  ModelLevel level = ModelLevel::Nonlinear;
  double duration = 0.01;
  double record_interval = 0.0;
  ode::Tolerances tol{1e-9, 1e-9};
  // Stop once |x|/q0 + |y|/C falls below this (0 disables; ignored for
  // mechanisms without an equilibrium).
  double convergence_tol = 0.0;
};

// Integrates a mechanism's switched system from the analysis start,
// mirroring core::simulate_fluid for FluidModel.
FluidRun simulate_fluid_mechanism(const FluidMechanism& mechanism,
                                  const MechanismRunOptions& options = {});

// Numeric strong-stability verdict generalized to any fluid facet: the
// orbit must stay strictly inside the buffer strip after its first
// switching event.  For BCN this agrees with
// core::numeric_strong_stability.
NumericVerdict mechanism_numeric_verdict(const FluidMechanism& mechanism,
                                         const MechanismRunOptions& options = {});

}  // namespace bcn::core
