#include "core/mechanism.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/batch_verdict.h"

namespace bcn::core {
namespace {

// --- BCN --------------------------------------------------------------------
// Delegates the switched system to FluidModel so the ported facet is
// arithmetically identical to the original single-mechanism code path.
class BcnFluidMechanism final : public FluidMechanism {
 public:
  BcnFluidMechanism(const BcnParams& plant, bool draft)
      : FluidMechanism(plant), draft_(draft) {}

  const char* name() const override { return draft_ ? "bcn-draft" : "bcn"; }

  double sigma(Vec2 z) const override {
    return -(z.x + plant_.k() * z.y);
  }

  ode::HybridSystem hybrid_system(ModelLevel level) const override {
    return FluidModel(plant_, level).hybrid_system();
  }

  std::vector<RegionLaw> region_laws() const override {
    return {{"increase", plant_.increase_m(), plant_.increase_n(), true},
            {"decrease", plant_.decrease_m(), plant_.decrease_n(), true}};
  }

  double group_rate_deriv(double x, double y_group, double y_total,
                          double share) const override {
    const double s = -(x + plant_.k() * y_total);
    if (s > 0.0) return plant_.a() * s;  // additive increase, a = Ru Gi N_g
    // Multiplicative decrease scales the group's own aggregate rate.
    return plant_.b() * (y_group + share) * s;
  }

  bool lane_law(ModelLevel level, ode::LaneLaw* out) const override {
    if (level == ModelLevel::Clipped) return false;
    *out = bcn_lane_law(plant_, level);
    return true;
  }

 private:
  bool draft_;
};

// --- QCN --------------------------------------------------------------------
// Negative-only quantized feedback; rate recovery is the sources' own
// periodic active increase.  Fluid caricature:
//
//   * everywhere: the self-increase timers contribute a constant drive
//     ai = N R_AI / T_AI (the active-increase phase; fast recovery decays
//     toward it);
//   * sigma < 0: each sampled message cuts the targeted source by
//     max_decrease * Fb/(Fb_max+1); below full scale Fb is proportional
//     to sigma_frames / fb_scale, so the smooth limit is the BCN
//     multiplicative law with the effective gain b = max_decrease/fb_scale
//     (= 1/128 at the QCN defaults, matching the BCN draft Gd).
//
// The drive never vanishes at the origin, so QCN has no equilibrium: the
// orbit settles into a sawtooth riding just inside the decrease region.
class QcnFluidMechanism final : public FluidMechanism {
 public:
  QcnFluidMechanism(const BcnParams& plant, const QcnParams& qcn)
      : FluidMechanism(plant), qcn_(qcn) {}

  const char* name() const override { return "qcn"; }

  double active_drive() const {
    return plant_.num_sources * qcn_.active_increase / qcn_.increase_period;
  }
  double effective_gd() const { return qcn_.max_decrease / qcn_.fb_scale; }

  double sigma(Vec2 z) const override {
    return -(z.x + plant_.k() * z.y);
  }

  ode::HybridSystem hybrid_system(ModelLevel level) const override {
    ode::HybridSystem system;
    const double k = plant_.k();
    const double ai = active_drive();
    const double b = effective_gd();
    const double cap = plant_.capacity;

    system.modes.push_back(
        [ai](double /*t*/, Vec2 z) -> Vec2 { return {z.y, ai}; });
    if (level == ModelLevel::Linearized) {
      const double bc = b * cap;
      system.modes.push_back([ai, bc, k](double /*t*/, Vec2 z) -> Vec2 {
        return {z.y, ai - bc * (z.x + k * z.y)};
      });
    } else {
      system.modes.push_back([ai, b, k, cap](double /*t*/, Vec2 z) -> Vec2 {
        return {z.y, ai - b * (z.y + cap) * (z.x + k * z.y)};
      });
    }

    if (level != ModelLevel::Clipped) {
      system.mode_of = [k](double /*t*/, Vec2 z) {
        return -(z.x + k * z.y) > 0.0 ? kModeIncrease : kModeDecrease;
      };
      system.guards.push_back(
          [k](double /*t*/, Vec2 z) { return z.x + k * z.y; });
      return system;
    }

    // Buffer walls, mirroring FluidModel's clipped structure: on a wall
    // the sampled queue variation vanishes and sigma degenerates to -x.
    system.modes.push_back(
        [ai](double /*t*/, Vec2 /*z*/) -> Vec2 { return {0.0, ai}; });
    system.modes.push_back([ai, b, cap](double /*t*/, Vec2 z) -> Vec2 {
      return {0.0, ai - b * (z.y + cap) * z.x};
    });
    const double lo = x_min();
    const double hi = x_max();
    const double wall_tol = 1e-9 * plant_.q0;
    system.mode_of = [k, lo, hi, wall_tol](double /*t*/, Vec2 z) {
      if (z.x <= lo + wall_tol && z.y <= 0.0) return kModeEmptyWall;
      if (z.x >= hi - wall_tol && z.y >= 0.0) return kModeFullWall;
      return -(z.x + k * z.y) > 0.0 ? kModeIncrease : kModeDecrease;
    };
    system.guards.push_back(
        [k](double /*t*/, Vec2 z) { return z.x + k * z.y; });
    system.guards.push_back([lo](double /*t*/, Vec2 z) { return z.x - lo; });
    system.guards.push_back([hi](double /*t*/, Vec2 z) { return z.x - hi; });
    system.guards.push_back([](double /*t*/, Vec2 z) { return z.y; });
    return system;
  }

  std::vector<RegionLaw> region_laws() const override {
    const double bc = effective_gd() * plant_.capacity;
    return {{"increase (constant drive)", 0.0, 0.0, false},
            {"decrease", plant_.k() * bc, bc, true}};
  }

  bool has_equilibrium() const override { return false; }

  double group_rate_deriv(double x, double y_group, double y_total,
                          double share) const override {
    const double s = -(x + plant_.k() * y_total);
    const double ai = active_drive();
    if (s > 0.0) return ai;
    return ai + effective_gd() * (y_group + share) * s;
  }

  bool lane_law(ModelLevel level, ode::LaneLaw* out) const override {
    if (level == ModelLevel::Clipped) return false;
    ode::LaneLaw law;
    law.sx = 1.0;
    law.sy = plant_.k();
    const double ai = active_drive();
    const double b = effective_gd();
    law.drive[0] = ai;  // increase region: pure constant drive
    law.drive[1] = ai;
    // decrease: ai - b (y + C)(x + k y) = ai + (bC + b y) sigma
    law.g0[1] = b * plant_.capacity;
    law.g1[1] = level == ModelLevel::Linearized ? 0.0 : b;
    law.switched = true;
    *out = law;
    return true;
  }

 private:
  QcnParams qcn_;
};

// --- RCP --------------------------------------------------------------------
// Explicit-rate control: one advertised rate R for every flow, updated
// each interval d by the relative rate mismatch and the queue excess,
//   dR/dt = R (alpha (C - Y) - beta (q - q0)/d) / (C d),   Y = N R.
// In translated aggregate coordinates (Y = y + C):
//   dy/dt = (y + C)(-alpha y - (beta/d) x) / (C d),
// a single smooth law on the whole interior: unlike BCN/QCN there is no
// switching line, only the buffer walls.  Linearization at the origin
// gives lambda^2 + (alpha/d) lambda + beta/d^2, stable for any positive
// gains (the Voice & Raina alpha = 0.4, beta = 0.226 defaults put it in
// the well-damped spiral regime).
class RcpFluidMechanism final : public FluidMechanism {
 public:
  RcpFluidMechanism(const BcnParams& plant, const RcpParams& rcp)
      : FluidMechanism(plant), rcp_(rcp) {}

  const char* name() const override { return "rcp"; }

  double sigma(Vec2 z) const override {
    return -rcp_.alpha * z.y - (rcp_.beta / rcp_.interval) * z.x;
  }

  ode::HybridSystem hybrid_system(ModelLevel level) const override {
    ode::HybridSystem system;
    const double alpha = rcp_.alpha;
    const double bd = rcp_.beta / rcp_.interval;  // beta/d
    const double d = rcp_.interval;
    const double cap = plant_.capacity;

    if (level == ModelLevel::Linearized) {
      const double ad = alpha / d;
      const double bdd = bd / d;  // beta/d^2
      system.modes.push_back([ad, bdd](double /*t*/, Vec2 z) -> Vec2 {
        return {z.y, -ad * z.y - bdd * z.x};
      });
    } else {
      system.modes.push_back(
          [alpha, bd, d, cap](double /*t*/, Vec2 z) -> Vec2 {
            return {z.y,
                    (z.y + cap) * (-alpha * z.y - bd * z.x) / (cap * d)};
          });
    }

    if (level != ModelLevel::Clipped) {
      system.mode_of = [](double /*t*/, Vec2 /*z*/) { return 0; };
      return system;
    }

    // Walls: the queue pins, the rate law keeps integrating with x frozen.
    system.modes.push_back(
        [alpha, bd, d, cap](double /*t*/, Vec2 z) -> Vec2 {
          return {0.0, (z.y + cap) * (-alpha * z.y - bd * z.x) / (cap * d)};
        });
    system.modes.push_back(
        [alpha, bd, d, cap](double /*t*/, Vec2 z) -> Vec2 {
          return {0.0, (z.y + cap) * (-alpha * z.y - bd * z.x) / (cap * d)};
        });
    const double lo = x_min();
    const double hi = x_max();
    const double wall_tol = 1e-9 * plant_.q0;
    system.mode_of = [lo, hi, wall_tol](double /*t*/, Vec2 z) {
      if (z.x <= lo + wall_tol && z.y <= 0.0) return 1;
      if (z.x >= hi - wall_tol && z.y >= 0.0) return 2;
      return 0;
    };
    system.guards.push_back([lo](double /*t*/, Vec2 z) { return z.x - lo; });
    system.guards.push_back([hi](double /*t*/, Vec2 z) { return z.x - hi; });
    system.guards.push_back([](double /*t*/, Vec2 z) { return z.y; });
    return system;
  }

  std::vector<RegionLaw> region_laws() const override {
    const double d = rcp_.interval;
    return {{"interior", rcp_.alpha / d, rcp_.beta / (d * d), true}};
  }

  double group_rate_deriv(double x, double y_group, double y_total,
                          double share) const override {
    // Every flow is advertised the same R, so each group's aggregate
    // scales by the same relative update.
    const double cap = plant_.capacity;
    const double d = rcp_.interval;
    return (y_group + share) *
           (-rcp_.alpha * y_total - (rcp_.beta / d) * x) / (cap * d);
  }

  bool lane_law(ModelLevel level, ode::LaneLaw* out) const override {
    if (level == ModelLevel::Clipped) return false;
    ode::LaneLaw law;
    // RCP's single smooth law in lane form: with sigma = -(bd x + alpha y),
    //   dy = (y + C) sigma / (C d) = (1/d + y/(C d)) sigma.
    law.sx = rcp_.beta / rcp_.interval;
    law.sy = rcp_.alpha;
    const double inv_d = 1.0 / rcp_.interval;
    law.g0[0] = law.g0[1] = inv_d;
    const double g1 =
        level == ModelLevel::Linearized
            ? 0.0
            : inv_d / plant_.capacity;
    law.g1[0] = law.g1[1] = g1;
    law.switched = false;  // no switching line, interior only
    *out = law;
    return true;
  }

 private:
  RcpParams rcp_;
};

// --- registry ---------------------------------------------------------------

void set_bcn_gains(MechanismConfig& c, double g1, double g2) {
  c.plant.gi = g1;
  c.plant.gd = g2;
}
std::pair<double, double> default_bcn_gains(const MechanismConfig& c) {
  return {c.plant.gi, c.plant.gd};
}
void set_qcn_gains(MechanismConfig& c, double g1, double g2) {
  c.qcn.active_increase = g1;
  c.qcn.max_decrease = g2;
}
std::pair<double, double> default_qcn_gains(const MechanismConfig& c) {
  return {c.qcn.active_increase, c.qcn.max_decrease};
}
void set_rcp_gains(MechanismConfig& c, double g1, double g2) {
  c.rcp.alpha = g1;
  c.rcp.beta = g2;
}
std::pair<double, double> default_rcp_gains(const MechanismConfig& c) {
  return {c.rcp.alpha, c.rcp.beta};
}
void set_fera_gains(MechanismConfig& c, double g1, double g2) {
  c.fera.alpha = g1;
  c.fera.smoothing = g2;
}
std::pair<double, double> default_fera_gains(const MechanismConfig& c) {
  return {c.fera.alpha, c.fera.smoothing};
}

}  // namespace

const std::vector<MechanismInfo>& mechanism_registry() {
  static const std::vector<MechanismInfo> registry = {
      {"bcn",
       "BCN with fluid-matched feedback application (paper eq. (2)/(7))",
       "gi", "gd", true, true, set_bcn_gains, default_bcn_gains},
      {"bcn-draft",
       "BCN with the draft's literal per-message quantized jumps",
       "gi", "gd", true, true, set_bcn_gains, default_bcn_gains},
      {"qcn",
       "QCN-style: negative-only quantized feedback, source self-increase",
       "active_increase", "max_decrease", true, true, set_qcn_gains,
       default_qcn_gains},
      {"rcp",
       "RCP-style explicit rate: rate-mismatch + queue terms per interval",
       "alpha", "beta", true, true, set_rcp_gains, default_rcp_gains},
      {"fera",
       "FERA/ERICA-style explicit fair-share advertisement (packet only)",
       "alpha", "smoothing", false, true, set_fera_gains,
       default_fera_gains},
  };
  return registry;
}

const MechanismInfo* find_mechanism(std::string_view name) {
  for (const MechanismInfo& info : mechanism_registry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

std::string mechanism_name_list() {
  std::string out;
  for (const MechanismInfo& info : mechanism_registry()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

std::unique_ptr<FluidMechanism> make_fluid_mechanism(
    std::string_view name, const MechanismConfig& config) {
  if (name == "bcn") {
    return std::make_unique<BcnFluidMechanism>(config.plant, false);
  }
  if (name == "bcn-draft") {
    return std::make_unique<BcnFluidMechanism>(config.plant, true);
  }
  if (name == "qcn") {
    return std::make_unique<QcnFluidMechanism>(config.plant, config.qcn);
  }
  if (name == "rcp") {
    return std::make_unique<RcpFluidMechanism>(config.plant, config.rcp);
  }
  return nullptr;
}

FluidRun simulate_fluid_mechanism(const FluidMechanism& mechanism,
                                  const MechanismRunOptions& options) {
  const BcnParams& p = mechanism.plant();
  const Vec2 z0 = mechanism.analysis_initial_point();

  ode::HybridOptions hopts;
  hopts.tol = options.tol;
  hopts.record_interval = options.record_interval;
  if (options.convergence_tol > 0.0 && mechanism.has_equilibrium()) {
    const double q0 = p.q0;
    const double cap = p.capacity;
    const double tol = options.convergence_tol;
    hopts.stop_when = [q0, cap, tol](double /*t*/, Vec2 z) {
      return std::abs(z.x) / q0 + std::abs(z.y) / cap < tol;
    };
  }

  const ode::HybridResult hybrid =
      ode::integrate_hybrid(mechanism.hybrid_system(options.level), 0.0, z0,
                            options.duration, hopts);

  FluidRun run;
  run.trajectory = hybrid.trajectory;
  run.switches = hybrid.switches;
  run.completed = hybrid.completed;
  run.converged = hybrid.stopped_early;
  run.steps_accepted = hybrid.steps_accepted;
  run.steps_rejected = hybrid.steps_rejected;
  run.min_step = hybrid.min_accepted_step;
  run.event_bisections = hybrid.event_bisection_iterations;

  const std::size_t start = run.trajectory.size() > 1 ? 1 : 0;
  const double t_gate = run.switches.empty()
                            ? std::numeric_limits<double>::infinity()
                            : run.switches.front().t;
  run.max_x = run.min_x = run.trajectory[start].z.x;
  run.max_y = run.min_y = run.trajectory[start].z.y;
  for (std::size_t i = start; i < run.trajectory.size(); ++i) {
    const auto& s = run.trajectory[i];
    run.max_x = std::max(run.max_x, s.z.x);
    run.min_x = std::min(run.min_x, s.z.x);
    run.max_y = std::max(run.max_y, s.z.y);
    run.min_y = std::min(run.min_y, s.z.y);
    if (s.t >= t_gate) {
      run.post_switch_max_x = std::max(run.post_switch_max_x, s.z.x);
      run.post_switch_min_x = std::min(run.post_switch_min_x, s.z.x);
    }
  }
  return run;
}

NumericVerdict mechanism_numeric_verdict(const FluidMechanism& mechanism,
                                         const MechanismRunOptions& options) {
  MechanismRunOptions opts = options;
  if (opts.convergence_tol == 0.0) opts.convergence_tol = 1e-8;
  const FluidRun run = simulate_fluid_mechanism(mechanism, opts);
  NumericVerdict verdict;
  verdict.max_x = run.max_x;
  verdict.min_x = run.post_switch_min_x;
  verdict.converged = run.converged;
  verdict.strongly_stable = run.max_x < mechanism.x_max() &&
                            run.post_switch_min_x > mechanism.x_min() &&
                            run.completed;
  return verdict;
}

}  // namespace bcn::core
