// BCN congestion-control parameters (paper Section II.B / IV) and the
// derived fluid-model coefficients.
#pragma once

#include <string>
#include <vector>

namespace bcn::core {

// All quantities in SI base units: bits, seconds, bits/second.
struct BcnParams {
  // --- plant ---------------------------------------------------------------
  double num_sources = 50.0;  // N: homogeneous sources sharing the bottleneck
  double capacity = 10e9;     // C: bottleneck link capacity [bits/s]
  double q0 = 2.5e6;          // reference (equilibrium) queue length [bits]
  double buffer = 5e6;        // B: physical buffer size [bits]
  double qsc = 4.5e6;         // severe-congestion PAUSE threshold (> q0) [bits]

  // --- congestion point (core switch) --------------------------------------
  double w = 2.0;    // weight of the queue-variation term in sigma (eq. (1))
  double pm = 0.01;  // deterministic sampling probability

  // --- reaction point (rate regulator, eq. (2)) -----------------------------
  double gi = 4.0;          // Gi: additive-increase gain
  double gd = 1.0 / 128.0;  // Gd: multiplicative-decrease gain [1/bits]
  double ru = 8e6;          // Ru: rate increase unit [bits/s]

  // --- initial condition ----------------------------------------------------
  double init_rate = 0.0;  // mu: per-source rate at t = 0 [bits/s]

  // --- derived fluid-model coefficients (Section IV.A) ----------------------
  double a() const { return ru * gi * num_sources; }      // a = Ru Gi N
  double b() const { return gd; }                         // b = Gd
  double k() const { return w / (pm * capacity); }        // k = w/(pm C)

  // Region-kind thresholds: the increase subsystem is a spiral iff
  // a < 4/k^2 = 4 pm^2 C^2 / w^2; the decrease one iff b C < 4/k^2, i.e.
  // b < 4 pm^2 C / w^2.
  double spiral_threshold() const {
    const double kk = k();
    return 4.0 / (kk * kk);
  }

  // Characteristic-equation coefficients lambda^2 + m lambda + n (eq. (35)).
  double increase_m() const { return a() * k(); }
  double increase_n() const { return a(); }
  double decrease_m() const { return k() * b() * capacity; }
  double decrease_n() const { return b() * capacity; }

  // Theorem 1: buffer needed for guaranteed strong stability,
  // (1 + sqrt(a/(bC))) q0.
  double theorem1_required_buffer() const;
  bool satisfies_theorem1() const { return theorem1_required_buffer() < buffer; }

  // Duration of the empty-queue warm-up from rate mu to link saturation,
  // T0 = (C - N mu)/(a q0) (paper Section IV.C).
  double warmup_duration() const;

  // Human-readable violations; empty when the parameter set is physically
  // meaningful (positive gains, q0 < qsc <= B, pm in (0, 1], ...).
  std::vector<std::string> validate() const;
  bool is_valid() const { return validate().empty(); }

  std::string describe() const;

  // The configuration from the paper's Section IV remarks: N = 50,
  // C = 10 Gbps, q0 = 2.5 Mbit, Gi = 4, Gd = 1/128, Ru = 8 Mbit/s and the
  // standard-draft buffer of 5 Mbit (the bandwidth-delay product), which
  // Theorem 1 shows to be ~2.8x too small.
  static BcnParams standard_draft();
};

}  // namespace bcn::core
