#include "core/simulate.h"

#include <algorithm>
#include <limits>

namespace bcn::core {

FluidRun simulate_fluid(const FluidModel& model,
                        const FluidRunOptions& options) {
  const BcnParams& p = model.params();
  const Vec2 z0 = options.z0.value_or(model.analysis_initial_point());

  ode::HybridOptions hopts;
  hopts.tol = options.tol;
  hopts.record_interval = options.record_interval;
  hopts.max_steps = options.max_steps;
  if (options.convergence_tol > 0.0) {
    const double q0 = p.q0;
    const double cap = p.capacity;
    const double tol = options.convergence_tol;
    hopts.stop_when = [q0, cap, tol](double /*t*/, Vec2 z) {
      return std::abs(z.x) / q0 + std::abs(z.y) / cap < tol;
    };
  }

  const ode::HybridResult hybrid = ode::integrate_hybrid(
      model.hybrid_system(), 0.0, z0, options.duration, hopts);

  FluidRun run;
  run.trajectory = hybrid.trajectory;
  run.switches = hybrid.switches;
  run.completed = hybrid.completed;
  run.converged = hybrid.stopped_early;
  run.steps_accepted = hybrid.steps_accepted;
  run.steps_rejected = hybrid.steps_rejected;
  run.min_step = hybrid.min_accepted_step;
  run.event_bisections = hybrid.event_bisection_iterations;
  run.nonfinite = hybrid.nonfinite;
  run.nonfinite_t = hybrid.nonfinite_t;
  if (run.trajectory.empty()) return run;  // non-finite initial state

  // Extrema over t > 0: skip the initial sample, which sits on the
  // empty-buffer boundary by construction (q(0) = 0 after the warm-up).
  const std::size_t start = run.trajectory.size() > 1 ? 1 : 0;
  const double t_gate = run.switches.empty()
                            ? std::numeric_limits<double>::infinity()
                            : run.switches.front().t;
  run.max_x = run.min_x = run.trajectory[start].z.x;
  run.max_y = run.min_y = run.trajectory[start].z.y;
  for (std::size_t i = start; i < run.trajectory.size(); ++i) {
    const auto& s = run.trajectory[i];
    run.max_x = std::max(run.max_x, s.z.x);
    run.min_x = std::min(run.min_x, s.z.x);
    run.max_y = std::max(run.max_y, s.z.y);
    run.min_y = std::min(run.min_y, s.z.y);
    if (s.t >= t_gate) {
      run.post_switch_max_x = std::max(run.post_switch_max_x, s.z.x);
      run.post_switch_min_x = std::min(run.post_switch_min_x, s.z.x);
    }
  }
  return run;
}

}  // namespace bcn::core
