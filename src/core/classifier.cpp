#include "core/classifier.h"

#include <cmath>

namespace bcn::core {

std::string to_string(PaperCase c) {
  switch (c) {
    case PaperCase::Case1: return "Case 1 (spiral/spiral)";
    case PaperCase::Case2: return "Case 2 (node/spiral)";
    case PaperCase::Case3: return "Case 3 (spiral/node)";
    case PaperCase::Case4: return "Case 4 (node/node)";
    case PaperCase::Case5: return "Case 5 (boundary)";
  }
  return "?";
}

control::SecondOrderSystem increase_subsystem(const BcnParams& params) {
  return {params.increase_m(), params.increase_n()};
}

control::SecondOrderSystem decrease_subsystem(const BcnParams& params) {
  return {params.decrease_m(), params.decrease_n()};
}

CaseClassification classify_case(const BcnParams& params,
                                 double boundary_rtol) {
  CaseClassification out;
  const auto inc = increase_subsystem(params);
  const auto dec = decrease_subsystem(params);
  out.increase_discriminant = inc.discriminant();
  out.decrease_discriminant = dec.discriminant();

  auto kind_of = [&](double disc, double n) {
    if (std::abs(disc) <= boundary_rtol * 4.0 * n) {
      return control::SolutionKind::Degenerate;
    }
    return disc < 0.0 ? control::SolutionKind::Spiral
                      : control::SolutionKind::Node;
  };
  out.increase_kind = kind_of(out.increase_discriminant, inc.n());
  out.decrease_kind = kind_of(out.decrease_discriminant, dec.n());

  using control::SolutionKind;
  if (out.increase_kind == SolutionKind::Degenerate ||
      out.decrease_kind == SolutionKind::Degenerate) {
    out.paper_case = PaperCase::Case5;
  } else if (out.increase_kind == SolutionKind::Spiral &&
             out.decrease_kind == SolutionKind::Spiral) {
    out.paper_case = PaperCase::Case1;
  } else if (out.increase_kind == SolutionKind::Node &&
             out.decrease_kind == SolutionKind::Spiral) {
    out.paper_case = PaperCase::Case2;
  } else if (out.increase_kind == SolutionKind::Spiral &&
             out.decrease_kind == SolutionKind::Node) {
    out.paper_case = PaperCase::Case3;
  } else {
    out.paper_case = PaperCase::Case4;
  }
  return out;
}

}  // namespace bcn::core
