#include "core/fluid_model.h"

#include <cassert>

namespace bcn::core {

FluidModel::FluidModel(BcnParams params, ModelLevel level)
    : params_(params), level_(level) {
  assert(params_.is_valid());
}

ode::Rhs FluidModel::increase_rhs() const {
  // dy/dt = a sigma = -a (x + k y): already linear, identical at every
  // model level.
  const double a = params_.a();
  const double k = params_.k();
  return [a, k](double /*t*/, Vec2 z) -> Vec2 {
    return {z.y, -a * (z.x + k * z.y)};
  };
}

ode::Rhs FluidModel::decrease_rhs() const {
  const double b = params_.b();
  const double k = params_.k();
  const double cap = params_.capacity;
  if (level_ == ModelLevel::Linearized) {
    // Paper eq. (9): dy/dt = -b C (x + k y).
    const double bc = b * cap;
    return [bc, k](double /*t*/, Vec2 z) -> Vec2 {
      return {z.y, -bc * (z.x + k * z.y)};
    };
  }
  // Paper eq. (8): dy/dt = -b (y + C)(x + k y).  The y + C factor is the
  // aggregate source rate, which multiplicative decrease scales.
  return [b, k, cap](double /*t*/, Vec2 z) -> Vec2 {
    return {z.y, -b * (z.y + cap) * (z.x + k * z.y)};
  };
}

ode::Rhs FluidModel::empty_wall_rhs() const {
  // Queue pinned empty: dq/dt = 0, so the sampled variation term vanishes
  // and sigma = q0 - q = -x > 0; the regulator keeps increasing,
  // dy/dt = a (-x) (= a q0 on the wall).  This is the warm-up law of
  // Section IV.C.
  const double a = params_.a();
  return [a](double /*t*/, Vec2 z) -> Vec2 { return {0.0, -a * z.x}; };
}

ode::Rhs FluidModel::full_wall_rhs() const {
  // Queue pinned full: arrivals beyond C are dropped, dq/dt = 0,
  // sigma = -x < 0, multiplicative decrease with the aggregate-rate factor.
  const double b = params_.b();
  const double cap = params_.capacity;
  return [b, cap](double /*t*/, Vec2 z) -> Vec2 {
    return {0.0, -b * (z.y + cap) * z.x};
  };
}

ode::HybridSystem FluidModel::hybrid_system() const {
  ode::HybridSystem system;
  const double k = params_.k();
  system.modes.push_back(increase_rhs());
  system.modes.push_back(decrease_rhs());

  if (level_ != ModelLevel::Clipped) {
    system.mode_of = [k](double /*t*/, Vec2 z) {
      return -(z.x + k * z.y) > 0.0 ? kModeIncrease : kModeDecrease;
    };
    system.guards.push_back(
        [k](double /*t*/, Vec2 z) { return z.x + k * z.y; });
    return system;
  }

  system.modes.push_back(empty_wall_rhs());
  system.modes.push_back(full_wall_rhs());
  const double lo = x_min();
  const double hi = x_max();
  // Wall capture uses a tiny position tolerance so states landed exactly on
  // the wall by event localization are recognized as wall states.
  const double wall_tol = 1e-9 * params_.q0;
  system.mode_of = [k, lo, hi, wall_tol](double /*t*/, Vec2 z) {
    if (z.x <= lo + wall_tol && z.y <= 0.0) return kModeEmptyWall;
    if (z.x >= hi - wall_tol && z.y >= 0.0) return kModeFullWall;
    return -(z.x + k * z.y) > 0.0 ? kModeIncrease : kModeDecrease;
  };
  system.guards.push_back(
      [k](double /*t*/, Vec2 z) { return z.x + k * z.y; });  // sigma = 0
  system.guards.push_back([lo](double /*t*/, Vec2 z) { return z.x - lo; });
  system.guards.push_back([hi](double /*t*/, Vec2 z) { return z.x - hi; });
  system.guards.push_back([](double /*t*/, Vec2 z) { return z.y; });
  return system;
}

}  // namespace bcn::core
