// Classification of the BCN switched system into the paper's Cases 1-5
// (Section IV.C) from the region-wise trajectory kinds.
#pragma once

#include <string>

#include "control/closed_form.h"
#include "core/bcn_params.h"

namespace bcn::core {

// Paper Section IV.C case taxonomy on (a vs 4 pm^2 C^2 / w^2,
// b vs 4 pm^2 C / w^2).
enum class PaperCase {
  Case1,  // spiral / spiral: oscillatory; limit cycles possible
  Case2,  // node / spiral: single overshoot bounded by max2 (eq. (38))
  Case3,  // spiral / node: never overshoots q0 -> always strongly stable
  Case4,  // node / node: monotone -> always strongly stable
  Case5,  // boundary (a = 4 pm^2 C^2/w^2 or b = 4 pm^2 C/w^2): stable
};

std::string to_string(PaperCase c);

struct CaseClassification {
  PaperCase paper_case = PaperCase::Case1;
  control::SolutionKind increase_kind = control::SolutionKind::Spiral;
  control::SolutionKind decrease_kind = control::SolutionKind::Spiral;
  // Discriminants of the two characteristic equations (eq. (35)).
  double increase_discriminant = 0.0;
  double decrease_discriminant = 0.0;
};

// `boundary_rtol` widens Case 5 to |disc| <= rtol * 4n, since exact
// floating-point equality on the boundary is measure-zero; pass 0 for the
// strict paper semantics.
CaseClassification classify_case(const BcnParams& params,
                                 double boundary_rtol = 0.0);

// The region-wise linear subsystems (for constructing closed forms).
control::SecondOrderSystem increase_subsystem(const BcnParams& params);
control::SecondOrderSystem decrease_subsystem(const BcnParams& params);

}  // namespace bcn::core
