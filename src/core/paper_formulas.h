// Literal implementations of the paper's Case 1 / Case 2 transient-extremum
// formulas (eqs. (36), (37), (38)) and the intermediate quantities they
// chain through (A_i^1, phi_i^1, T_i^1, x_d^1(0), ...).
//
// These exist for cross-validation: the primary computation path in this
// library is the closed-form round stitching in AnalyticTracer, and the
// test suite checks both paths agree to floating-point accuracy.  Where the
// printed formulas contain typos (see closed_form.cpp for two more), the
// discrepancy is documented in EXPERIMENTS.md.
#pragma once

#include <optional>

#include "core/bcn_params.h"

namespace bcn::core {

// Intermediate quantities of the paper's Case 1 derivation.
struct Case1Chain {
  double alpha_i = 0.0, beta_i = 0.0;  // increase-region spiral parameters
  double alpha_d = 0.0, beta_d = 0.0;  // decrease-region spiral parameters
  double amp_i1 = 0.0;    // A_i^1
  double phi_i1 = 0.0;    // phi_i^1
  double t_i1 = 0.0;      // T_i^1: first increase-round duration
  double x_d1 = 0.0;      // x_d^1(0): first switching-line crossing abscissa
  double y_d1 = 0.0;      // y_d^1(0) = -x_d^1(0)/k
  double amp_d1 = 0.0;    // A_d^1
  double phi_d1 = 0.0;    // phi_d^1
  double t_d1 = 0.0;      // T_d^1 = pi / beta_d
  double x_i2 = 0.0;      // x_i^2(0): second crossing abscissa
  double max1 = 0.0;      // eq. (36)
  double min1 = 0.0;      // eq. (37)
};

// Evaluates the full eq. (36)/(37) chain.  Requires Case 1 parameters
// (both subsystems spiral); returns nullopt otherwise.
std::optional<Case1Chain> paper_case1_chain(const BcnParams& params);

// Eq. (38): the Case 2 overshoot max2.  Requires a > 4 pm^2 C^2 / w^2 and
// b < 4 pm^2 C / w^2; returns nullopt otherwise.
std::optional<double> paper_case2_max(const BcnParams& params);

// Theorem 1 upper bounds: max1, max2 < sqrt(a/(bC)) q0 and min1 > -q0.
double theorem1_overshoot_bound(const BcnParams& params);

}  // namespace bcn::core
