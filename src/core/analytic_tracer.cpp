#include "core/analytic_tracer.h"

#include <algorithm>
#include <cmath>

namespace bcn::core {

std::optional<double> AnalyticTrace::contraction_ratio() const {
  // Compare |x| at successive entries into the same region.
  std::vector<double> increase_entries;
  for (const auto& r : rounds) {
    if (r.region == Region::Increase && r.t_start > 0.0) {
      increase_entries.push_back(std::abs(r.z_start.x));
    }
  }
  if (increase_entries.size() < 2) return std::nullopt;
  const double prev = increase_entries[increase_entries.size() - 2];
  const double last = increase_entries.back();
  if (prev <= 0.0) return std::nullopt;
  return last / prev;
}

AnalyticTracer::AnalyticTracer(BcnParams params) : params_(params) {}

AnalyticTrace AnalyticTracer::trace(const AnalyticTraceOptions& options) const {
  return trace_from({-params_.q0, 0.0}, options);
}

AnalyticTrace AnalyticTracer::trace_from(
    Vec2 z0, const AnalyticTraceOptions& options) const {
  const FluidModel model(params_, ModelLevel::Linearized);
  const double k = params_.k();
  const control::SecondOrderSystem inc = increase_subsystem(params_);
  const control::SecondOrderSystem dec = decrease_subsystem(params_);

  // Extrema accumulate over interior points only: round extrema, crossing
  // points, and the origin limit.  The initial point (on the empty-buffer
  // wall when z0 = (-q0, 0)) is excluded, matching the paper's min1/max1
  // semantics (Definition 1 judges the motion after the start).
  AnalyticTrace out;
  out.max_x = 0.0;
  out.min_x = 0.0;

  double t_abs = 0.0;
  Vec2 z = z0;
  // The first round's region comes from sigma's sign; afterwards regions
  // alternate (each round ends with a transversal switching-line crossing).
  Region region = model.region_of(z);

  for (int round = 0; round < options.max_rounds; ++round) {
    const double norm =
        std::abs(z.x) / params_.q0 + std::abs(z.y) / params_.capacity;
    if (norm < options.convergence_tol) {
      out.converged = true;
      break;
    }

    const control::SecondOrderSystem& sys =
        region == Region::Increase ? inc : dec;
    control::LinearSolution sol(sys, z);
    RoundRecord rec{region, sol.kind(), sol, t_abs, z, std::nullopt,
                    std::nullopt, std::nullopt};

    const auto crossing = sol.first_line_crossing(1.0, k, 0.0);
    const auto extremum = sol.first_x_extremum(0.0);
    if (extremum && (!crossing || extremum->t < *crossing)) {
      rec.extremum = control::XExtremum{t_abs + extremum->t, extremum->value,
                                        extremum->is_maximum};
      out.max_x = std::max(out.max_x, extremum->value);
      out.min_x = std::min(out.min_x, extremum->value);
    }

    if (!crossing) {
      // Terminal round: converges to the origin inside this region.
      out.terminated_in_region = true;
      out.converged = true;
      out.rounds.push_back(std::move(rec));
      break;
    }

    const Vec2 z_end = sol.eval(*crossing);
    rec.duration = *crossing;
    rec.z_end = z_end;
    out.max_x = std::max(out.max_x, z_end.x);
    out.min_x = std::min(out.min_x, z_end.x);
    out.rounds.push_back(std::move(rec));

    t_abs += *crossing;
    z = z_end;
    region = region == Region::Increase ? Region::Decrease : Region::Increase;
  }
  return out;
}

ode::Trajectory AnalyticTracer::sample(const AnalyticTrace& trace,
                                       int points_per_round,
                                       double tail_time) const {
  ode::Trajectory out;
  const int n = std::max(2, points_per_round);
  for (const auto& round : trace.rounds) {
    const double span = round.duration.value_or(tail_time);
    for (int i = 0; i < n; ++i) {
      const double local = span * static_cast<double>(i) / (n - 1);
      out.push_back(round.t_start + local, round.solution.eval(local));
    }
  }
  return out;
}

}  // namespace bcn::core
