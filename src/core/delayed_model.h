// Feedback-delayed BCN fluid model (extension).
//
// The paper argues the propagation delay (~0.5 us for 100 m) is negligible
// against the queueing time scales and drops it from eqs. (4)-(7).  This
// module keeps it: the switch's feedback sigma reaches the regulator one
// round-trip tau later, turning the fluid model into a delay differential
// equation
//
//   dx/dt = y(t)
//   dy/dt = a * sigma(z(t - tau))                     sigma(z(t-tau)) > 0
//   dy/dt = b * (y(t) + C) * sigma(z(t - tau))        otherwise
//
// (the multiplicative decrease scales the *current* rate).  Integration
// uses the method of steps with fixed-step RK4 on a history ring whose
// step divides tau exactly, so delayed lookups hit grid points and no
// interpolation error enters.  This quantifies where the paper's
// zero-delay assumption is safe and where delay destabilizes BCN.
#pragma once

#include <optional>

#include "core/bcn_params.h"
#include "ode/trajectory.h"

namespace bcn::core {

struct DelayedRunOptions {
  double delay = 0.5e-6;   // round-trip feedback delay tau [s]
  double duration = 5e-3;  // model time [s]
  double step = 0.0;       // 0 -> auto (tau/32, capped by dynamics)
  std::optional<Vec2> z0;  // default: (-q0, 0)
  bool nonlinear = true;   // eq. (8) decrease law vs linearized
  // Abort early (diverged) when |x| exceeds this many q0 or |y| exceeds
  // this many C.
  double blowup_factor = 50.0;
  std::size_t max_samples = 4'000'000;
};

struct DelayedRun {
  ode::Trajectory trajectory;
  double max_x = 0.0;            // over t > 0
  double post_peak_min_x = 0.0;  // min after the first maximum
  bool diverged = false;         // hit the blow-up guard
  bool completed = false;
};

// Integrates the delayed model; tau = 0 degenerates to the undelayed
// fluid model (eq. (8)/(9)).
DelayedRun simulate_delayed(const BcnParams& params,
                            const DelayedRunOptions& options = {});

// Smallest delay at which the system stops being strongly stable for the
// given buffer, located by bisection over [0, tau_hi].  Returns nullopt if
// it is already unstable at tau = 0 or still stable at tau_hi.
std::optional<double> critical_delay(const BcnParams& params, double tau_hi,
                                     double duration = 5e-3);

}  // namespace bcn::core
