// Poincare return map on the switching line and limit-cycle detection
// (paper Section IV.C Case 1, Fig. 7).
//
// The section is the ray of the switching line x + k y = 0 entering the
// decrease region (x < 0, y > 0), parameterized by arc-length s = |z| from
// the origin.  One application of the map follows the flow through the
// decrease region and the subsequent increase region back to the section.
//
// For the *linearized* system (9) the map is exactly linear, P(s) = rho s
// with rho < 1 (both spiral halves contract), so interior limit cycles are
// impossible there.  The paper's Fig. 7 closed orbit (x_i^k(0) =
// x_i^{k+1}(0)) requires either the nonlinear rate factor of eq. (8) or
// the buffer walls of the clipped model; this module measures P on any
// ModelLevel and searches for fixed points numerically.
#pragma once

#include <optional>
#include <vector>

#include "core/fluid_model.h"
#include "ode/trajectory.h"

namespace bcn::core {

struct PoincareOptions {
  ode::Tolerances tol{1e-10, 1e-10};
  double max_time = 10.0;  // give up if a return takes longer than this
};

class PoincareMap {
 public:
  explicit PoincareMap(FluidModel model, PoincareOptions options = {});

  // The section point at parameter s (> 0): z = s * (-k, 1)/|(-k, 1)|.
  Vec2 section_point(double s) const;
  // Inverse: arc-length parameter of a point on (or near) the section ray.
  double parameter_of(Vec2 z) const;

  // One full return P(s).  nullopt when the flow never returns to the
  // section within max_time (converged into a region, or diverged).
  std::optional<double> map(double s) const;

  // Contraction ratio P(s)/s.
  std::optional<double> ratio(double s) const;

  // Searches [s_lo, s_hi] for a fixed point of P via bisection on
  // P(s) - s.  Requires P(s)-s to change sign over the bracket.
  std::optional<double> find_fixed_point(double s_lo, double s_hi) const;

  // Stability of a cycle through s_star: |P'(s_star)| < 1 estimated with a
  // central finite difference of relative width h_rel.
  std::optional<bool> cycle_is_stable(double s_star,
                                      double h_rel = 1e-3) const;

 private:
  FluidModel model_;
  PoincareOptions options_;
  double ux_ = 0.0, uy_ = 0.0;  // unit vector along the section ray
};

// A detected periodic orbit.
struct LimitCycle {
  double amplitude = 0.0;  // fixed-point parameter s*
  double period = 0.0;     // return time at s*
  double max_x = 0.0;      // queue-offset extremes around the cycle
  double min_x = 0.0;
};

struct CycleSearchOptions {
  PoincareOptions poincare;
  double s_lo = 0.0;  // 0 -> derived from q0
  double s_hi = 0.0;  // 0 -> derived from q0 and capacity
  int bracket_samples = 24;
  // Worker threads for the bracket scan (each P(s) sample is an
  // independent hybrid integration).  0 = all hardware threads,
  // 1 = serial.  The sample points and the refined fixed point do not
  // depend on the thread count.
  int threads = 1;
};

// P(s)/s at each amplitude (slot i = ratio(amplitudes[i])), evaluated in
// parallel when threads != 1.  This is the bulk operation behind the
// return-map scans of the limit-cycle bench.
std::vector<std::optional<double>> scan_contraction_ratios(
    const PoincareMap& map, const std::vector<double>& amplitudes,
    int threads = 1);

// Scans [s_lo, s_hi] for sign changes of P(s) - s and refines each to a
// fixed point; returns the first stable cycle found.
std::optional<LimitCycle> find_limit_cycle(const FluidModel& model,
                                           const CycleSearchOptions& options);

}  // namespace bcn::core
