#include "core/delayed_model.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace bcn::core {
namespace {

// Time-scale heuristic: a small fraction of the fastest rotation period.
double dynamics_step(const BcnParams& p) {
  const double wi = std::sqrt(p.a());
  const double wd = std::sqrt(p.b() * p.capacity);
  return 0.02 / std::max(wi, wd);
}

}  // namespace

DelayedRun simulate_delayed(const BcnParams& params,
                            const DelayedRunOptions& options) {
  DelayedRun run;
  const double q0 = params.q0;
  const double cap = params.capacity;
  const double a = params.a();
  const double b = params.b();
  const double k = params.k();
  const Vec2 z0 = options.z0.value_or(Vec2{-q0, 0.0});

  double h = options.step;
  if (h <= 0.0) {
    const double h_dyn = dynamics_step(params);
    if (options.delay > 0.0) {
      // Step divides tau exactly and stays at or below the dynamics step.
      const double m = std::max(
          32.0, std::ceil(options.delay / std::min(h_dyn, options.delay)));
      h = options.delay / m;
      h = std::min(h, h_dyn);
      // Re-snap so tau/h is an integer after the cap.
      h = options.delay / std::ceil(options.delay / h);
    } else {
      h = h_dyn;
    }
  }

  const std::size_t n_steps = std::min<std::size_t>(
      options.max_samples,
      static_cast<std::size_t>(std::ceil(options.duration / h)));

  // History on the fixed grid; index i holds z(i * h).
  std::vector<Vec2> history;
  history.reserve(n_steps + 1);
  history.push_back(z0);
  run.trajectory.reserve(n_steps + 1);
  run.trajectory.push_back(0.0, z0);

  // Delayed state at arbitrary time s: constant initial function for
  // s <= 0, linear interpolation on the grid otherwise.
  auto delayed = [&](double s) -> Vec2 {
    if (s <= 0.0) return z0;
    const double u = s / h;
    const auto lo = static_cast<std::size_t>(u);
    if (lo + 1 >= history.size()) return history.back();
    const double frac = u - static_cast<double>(lo);
    const Vec2 za = history[lo];
    const Vec2 zb = history[lo + 1];
    return {lerp(za.x, zb.x, frac), lerp(za.y, zb.y, frac)};
  };

  const bool zero_delay = options.delay <= 0.0;
  auto rhs = [&](double t, Vec2 z) -> Vec2 {
    const Vec2 zd = zero_delay ? z : delayed(t - options.delay);
    const double sigma = -(zd.x + k * zd.y);
    double dy;
    if (sigma > 0.0) {
      dy = a * sigma;
    } else if (options.nonlinear) {
      dy = b * (z.y + cap) * sigma;
    } else {
      dy = b * cap * sigma;
    }
    return {z.y, dy};
  };

  Vec2 z = z0;
  const double x_blow = options.blowup_factor * q0;
  const double y_blow = options.blowup_factor * cap;
  for (std::size_t i = 0; i < n_steps; ++i) {
    const double t = static_cast<double>(i) * h;
    const Vec2 k1 = rhs(t, z);
    const Vec2 k2 = rhs(t + h / 2.0, z + (h / 2.0) * k1);
    const Vec2 k3 = rhs(t + h / 2.0, z + (h / 2.0) * k2);
    const Vec2 k4 = rhs(t + h, z + h * k3);
    z = z + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    history.push_back(z);
    run.trajectory.push_back(t + h, z);
    if (std::abs(z.x) > x_blow || std::abs(z.y) > y_blow) {
      run.diverged = true;
      break;
    }
  }
  run.completed = !run.diverged;

  // Peak over t > 0 and the dip after it.
  std::size_t peak_idx = run.trajectory.size() > 1 ? 1 : 0;
  run.max_x = run.trajectory[peak_idx].z.x;
  for (std::size_t i = 1; i < run.trajectory.size(); ++i) {
    if (run.trajectory[i].z.x > run.max_x) {
      run.max_x = run.trajectory[i].z.x;
      peak_idx = i;
    }
  }
  run.post_peak_min_x = run.max_x;
  for (std::size_t i = peak_idx; i < run.trajectory.size(); ++i) {
    run.post_peak_min_x = std::min(run.post_peak_min_x, run.trajectory[i].z.x);
  }
  return run;
}

std::optional<double> critical_delay(const BcnParams& params, double tau_hi,
                                     double duration) {
  auto stable = [&](double tau) {
    DelayedRunOptions opts;
    opts.delay = tau;
    opts.duration = duration;
    const DelayedRun run = simulate_delayed(params, opts);
    return !run.diverged && run.completed &&
           run.max_x < params.buffer - params.q0 &&
           run.post_peak_min_x > -params.q0;
  };
  if (!stable(0.0)) return std::nullopt;
  if (stable(tau_hi)) return std::nullopt;
  double lo = 0.0;
  double hi = tau_hi;
  for (int i = 0; i < 40 && (hi - lo) > 1e-3 * tau_hi; ++i) {
    const double mid = lo + (hi - lo) / 2.0;
    (stable(mid) ? lo : hi) = mid;
  }
  return lo + (hi - lo) / 2.0;
}

}  // namespace bcn::core
