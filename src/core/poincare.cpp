#include "core/poincare.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/math.h"
#include "exec/parallel_for.h"
#include "obs/tracing.h"
#include "ode/hybrid.h"

namespace bcn::core {
namespace {

// One return-time scale: a couple of subsystem rotation periods.
double estimate_cycle_time(const BcnParams& p) {
  const double wi = std::sqrt(p.a());
  const double wd = std::sqrt(p.b() * p.capacity);
  return 4.0 * std::numbers::pi * (1.0 / wi + 1.0 / wd);
}

}  // namespace

PoincareMap::PoincareMap(FluidModel model, PoincareOptions options)
    : model_(std::move(model)), options_(options) {
  const double k = model_.params().k();
  const double norm = std::hypot(k, 1.0);
  ux_ = -k / norm;
  uy_ = 1.0 / norm;
}

Vec2 PoincareMap::section_point(double s) const {
  return {s * ux_, s * uy_};
}

double PoincareMap::parameter_of(Vec2 z) const {
  // Projection onto the ray direction (the point is on the line up to the
  // event-localization tolerance).
  return z.x * ux_ + z.y * uy_;
}

std::optional<double> PoincareMap::map(double s) const {
  if (s <= 0.0) return std::nullopt;
  // One span per return-map iteration; each wraps the chunked hybrid
  // integrations below it.
  obs::TraceSpan span("core.poincare_map", "s", s);
  // Start nudged off the section into the decrease region (x + k y > 0).
  const double k = model_.params().k();
  const double norm = std::hypot(k, 1.0);
  const double delta = 1e-9 * s;
  Vec2 z = section_point(s);
  z.x += delta / norm;
  z.y += delta * k / norm;

  const ode::HybridSystem system = model_.hybrid_system();
  const double chunk = estimate_cycle_time(model_.params());
  double t = 0.0;
  bool seen_increase = false;
  while (t < options_.max_time) {
    ode::HybridOptions hopts;
    hopts.tol = options_.tol;
    const double t_end = std::min(options_.max_time, t + chunk);
    const ode::HybridResult res =
        ode::integrate_hybrid(system, t, z, t_end, hopts);
    for (const auto& sw : res.switches) {
      if (sw.to_mode == kModeIncrease) seen_increase = true;
      if (seen_increase && sw.from_mode == kModeIncrease &&
          sw.to_mode == kModeDecrease) {
        return parameter_of(sw.z);
      }
    }
    if (!res.completed || res.trajectory.empty()) return std::nullopt;
    t = res.trajectory.back().t;
    z = res.trajectory.back().z;
    // Converged into the origin: no return.
    if (std::abs(z.x) / model_.params().q0 +
            std::abs(z.y) / model_.params().capacity <
        1e-9) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<double> PoincareMap::ratio(double s) const {
  const auto p = map(s);
  if (!p || s <= 0.0) return std::nullopt;
  return *p / s;
}

std::optional<double> PoincareMap::find_fixed_point(double s_lo,
                                                    double s_hi) const {
  auto displacement = [this](double s) -> double {
    const auto p = map(s);
    // Treat "no return" as full contraction: the orbit fell into the
    // origin, so P(s) - s is effectively -s.
    return p ? *p - s : -s;
  };
  const auto root = bisect(displacement, s_lo, s_hi,
                           1e-9 * std::max(1.0, s_hi), 80);
  return root;
}

std::optional<bool> PoincareMap::cycle_is_stable(double s_star,
                                                 double h_rel) const {
  const double h = h_rel * s_star;
  const auto hi = map(s_star + h);
  const auto lo = map(s_star - h);
  if (!hi || !lo) return std::nullopt;
  const double slope = (*hi - *lo) / (2.0 * h);
  return std::abs(slope) < 1.0;
}

std::optional<LimitCycle> find_limit_cycle(const FluidModel& model,
                                           const CycleSearchOptions& options) {
  obs::TraceSpan span("core.cycle_search");
  const BcnParams& p = model.params();
  const PoincareMap pmap(model, options.poincare);
  const double s_lo =
      options.s_lo > 0.0 ? options.s_lo : 1e-3 * p.capacity;
  const double s_hi = options.s_hi > 0.0 ? options.s_hi : 50.0 * p.capacity;

  auto displacement = [&](double s) -> double {
    const auto r = pmap.map(s);
    return r ? *r - s : -s;
  };

  // Geometric scan for a sign change of P(s) - s.  Every sample is an
  // independent hybrid integration, so the scan evaluates them in
  // parallel; the serial bracket walk below then sees the same values in
  // the same order whatever the thread count.
  const int n = std::max(2, options.bracket_samples);
  std::vector<double> sample_s(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / (n - 1);
    sample_s[static_cast<std::size_t>(i)] =
        i == 0 ? s_lo : s_lo * std::pow(s_hi / s_lo, u);
  }
  exec::ParallelForOptions popts;
  popts.threads = options.threads;
  const std::vector<double> sample_d = exec::parallel_map<double>(
      sample_s.size(),
      [&](std::size_t i) { return displacement(sample_s[i]); }, popts);

  double prev_s = sample_s[0];
  double prev_d = sample_d[0];
  for (int i = 1; i < n; ++i) {
    const double s = sample_s[static_cast<std::size_t>(i)];
    const double d = sample_d[static_cast<std::size_t>(i)];
    if (sign(prev_d) != sign(d) && prev_d != 0.0) {
      const auto fixed =
          bisect(displacement, prev_s, s, 1e-9 * s_hi, 80);
      if (fixed) {
        LimitCycle cycle;
        cycle.amplitude = *fixed;
        // Measure the period and orbit extremes with one more return.
        const double k = p.k();
        const double norm = std::hypot(k, 1.0);
        Vec2 z = pmap.section_point(*fixed);
        z.x += 1e-9 * *fixed / norm;
        z.y += 1e-9 * *fixed * k / norm;
        ode::HybridOptions hopts;
        hopts.tol = options.poincare.tol;
        const ode::HybridResult res = ode::integrate_hybrid(
            model.hybrid_system(), 0.0, z, options.poincare.max_time, hopts);
        bool seen_increase = false;
        for (const auto& sw : res.switches) {
          if (sw.to_mode == kModeIncrease) seen_increase = true;
          if (seen_increase && sw.from_mode == kModeIncrease &&
              sw.to_mode == kModeDecrease) {
            cycle.period = sw.t;
            break;
          }
        }
        if (!res.trajectory.empty()) {
          cycle.max_x = res.trajectory.max_component(0);
          cycle.min_x = res.trajectory.min_component(0);
        }
        if (cycle.period > 0.0) return cycle;
      }
    }
    prev_s = s;
    prev_d = d;
  }
  return std::nullopt;
}

std::vector<std::optional<double>> scan_contraction_ratios(
    const PoincareMap& map, const std::vector<double>& amplitudes,
    int threads) {
  exec::ParallelForOptions opts;
  opts.threads = threads;
  return exec::parallel_map<std::optional<double>>(
      amplitudes.size(), [&](std::size_t i) { return map.ratio(amplitudes[i]); },
      opts);
}

}  // namespace bcn::core
