// The BCN fluid-flow model (paper Section III) over the translated phase
// plane x = q - q0, y = N r - C.
//
// Three model levels, from most idealized to most physical:
//
//   * linearized  -- paper eq. (9): both regions linear; this is the system
//     the paper's closed-form analysis operates on.
//   * nonlinear   -- paper eq. (8): the decrease region keeps the
//     multiplicative (y + C) factor of AIMD.
//   * clipped     -- eq. (8) plus the physical buffer walls: the queue
//     saturates at q = 0 and q = B (the paper's "movements along the dashed
//     lines" in Fig. 3), with the sampled queue variation forced to zero on
//     a wall so sigma degenerates to q0 - q there.
#pragma once

#include "core/bcn_params.h"
#include "ode/hybrid.h"
#include "ode/system.h"

namespace bcn::core {

enum class ModelLevel { Linearized, Nonlinear, Clipped };

// Region of the phase plane relative to the switching line sigma = 0.
enum class Region { Increase, Decrease };

// Mode indices used by the hybrid systems built here.
inline constexpr int kModeIncrease = 0;
inline constexpr int kModeDecrease = 1;
inline constexpr int kModeEmptyWall = 2;  // clipped model only
inline constexpr int kModeFullWall = 3;   // clipped model only

class FluidModel {
 public:
  explicit FluidModel(BcnParams params, ModelLevel level = ModelLevel::Nonlinear);

  const BcnParams& params() const { return params_; }
  ModelLevel level() const { return level_; }

  // sigma(z) = -(x + k y): positive in the increase region (eq. (6) after
  // the coordinate change of Section IV.A).
  double sigma(Vec2 z) const { return -(z.x + params_.k() * z.y); }
  Region region_of(Vec2 z) const {
    return sigma(z) > 0.0 ? Region::Increase : Region::Decrease;
  }

  // Vector fields of the interior modes.
  ode::Rhs increase_rhs() const;
  ode::Rhs decrease_rhs() const;

  // The switched system for hybrid integration: two interior modes for
  // Linearized/Nonlinear, four (with buffer walls) for Clipped.
  ode::HybridSystem hybrid_system() const;

  // Phase-plane position limits implied by the buffer: x in
  // [-q0, B - q0]; y is bounded below by -C (sources cannot send at a
  // negative rate).
  double x_min() const { return -params_.q0; }
  double x_max() const { return params_.buffer - params_.q0; }

  // The paper's canonical analysis start: queue empty, aggregate rate
  // exactly C (reached at the end of the warm-up, Section IV.C).
  Vec2 analysis_initial_point() const { return {-params_.q0, 0.0}; }
  // The raw physical start: queue empty, every source at init_rate.
  Vec2 physical_initial_point() const {
    return {-params_.q0,
            params_.num_sources * params_.init_rate - params_.capacity};
  }

  // --- coordinate conversions ----------------------------------------------
  double queue_of(double x) const { return x + params_.q0; }
  double x_of_queue(double q) const { return q - params_.q0; }
  double aggregate_rate_of(double y) const { return y + params_.capacity; }
  double per_source_rate_of(double y) const {
    return (y + params_.capacity) / params_.num_sources;
  }

 private:
  ode::Rhs empty_wall_rhs() const;
  ode::Rhs full_wall_rhs() const;

  BcnParams params_;
  ModelLevel level_;
};

}  // namespace bcn::core
