#include "core/multiflow_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ode/vector_rk4.h"

namespace bcn::core {
namespace {

// State layout: [q, r_0 ... r_{n-1}].
using State = std::vector<double>;

double spread(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  double lo = rates[0], hi = rates[0], sum = 0.0;
  for (const double r : rates) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    sum += r;
  }
  const double mean = sum / static_cast<double>(rates.size());
  return mean > 0.0 ? (hi - lo) / mean : 0.0;
}

}  // namespace

MultiflowRun simulate_multiflow(const BcnParams& params,
                                const MultiflowOptions& options) {
  assert(!options.initial_rates.empty());
  const std::size_t n = options.initial_rates.size();
  const double cap = params.capacity;
  const double k = params.k();  // w/(pm C)

  const ode::VectorRhs rhs = [&](double /*t*/, const State& s, State& ds) {
    const double q = s[0];
    double aggregate = 0.0;
    for (std::size_t i = 0; i < n; ++i) aggregate += s[1 + i];
    double dq = aggregate - cap;
    if (q <= 0.0 && dq < 0.0) dq = 0.0;  // empty-queue pin
    ds[0] = dq;
    const double sigma = (params.q0 - q) - k * dq;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = s[1 + i];
      double dr;
      if (sigma > 0.0) {
        dr = params.gi * params.ru * sigma;
      } else {
        dr = params.gd * sigma * r;
      }
      if (r <= 0.0 && dr < 0.0) dr = 0.0;  // rates cannot go negative
      ds[1 + i] = dr;
    }
  };

  double h = options.step;
  if (h <= 0.0) {
    // A fraction of the fastest oscillation period, with the aggregate
    // gain set by the actual flow count.
    const double a_eff =
        params.ru * params.gi * static_cast<double>(n);
    const double w_fast =
        std::max(std::sqrt(a_eff), std::sqrt(params.gd * cap));
    h = 0.02 / w_fast;
  }

  MultiflowRun run;
  run.initial_spread = spread(options.initial_rates);

  State s(1 + n);
  s[0] = options.initial_queue;
  for (std::size_t i = 0; i < n; ++i) s[1 + i] = options.initial_rates[i];

  ode::VectorRk4Scratch scratch;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options.duration / h));
  double next_record = 0.0;

  auto record = [&](double t) {
    MultiflowSample sample;
    sample.t = t;
    sample.queue = s[0];
    sample.rates.assign(s.begin() + 1, s.end());
    run.trace.push_back(std::move(sample));
    run.max_queue = std::max(run.max_queue, s[0]);
  };
  record(0.0);

  for (std::size_t step_i = 0; step_i < steps; ++step_i) {
    const double t = static_cast<double>(step_i) * h;
    ode::vector_rk4_step(rhs, t, h, s, scratch);
    s[0] = std::max(s[0], 0.0);  // physical queue floor
    for (std::size_t i = 0; i < n; ++i) s[1 + i] = std::max(s[1 + i], 0.0);

    const double t_next = t + h;
    if (options.record_interval <= 0.0) {
      record(t_next);
    } else if (t_next >= next_record) {
      record(t_next);
      next_record += options.record_interval;
    } else {
      run.max_queue = std::max(run.max_queue, s[0]);
    }
  }

  run.final_rates.assign(s.begin() + 1, s.end());
  run.final_spread = spread(run.final_rates);
  run.completed = true;
  return run;
}

}  // namespace bcn::core
