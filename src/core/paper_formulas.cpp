#include "core/paper_formulas.h"

#include <cmath>
#include <numbers>

namespace bcn::core {
namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

std::optional<Case1Chain> paper_case1_chain(const BcnParams& params) {
  const double a = params.a();
  const double bc = params.b() * params.capacity;
  const double k = params.k();
  const double q0 = params.q0;

  const double disc_i = 4.0 * a - (a * k) * (a * k);
  const double disc_d = 4.0 * bc - (k * bc) * (k * bc);
  if (disc_i <= 0.0 || disc_d <= 0.0) return std::nullopt;  // not Case 1

  Case1Chain c;
  const double si = std::sqrt(disc_i);  // = 2 beta_i
  const double sd = std::sqrt(disc_d);  // = 2 beta_d
  c.alpha_i = -a * k / 2.0;
  c.beta_i = si / 2.0;
  c.alpha_d = -k * bc / 2.0;
  c.beta_d = sd / 2.0;

  // First increase round from (-q0, 0): coefficients of eq. (12).
  c.amp_i1 = 2.0 * q0 * std::sqrt(a) / si;
  c.phi_i1 = -std::atan(a * k / si);
  // T_i^1 = H^{-1}{x_d^1(0), y_d^1(0) | -q0, 0}.
  c.t_i1 = (2.0 / si) * (std::atan((2.0 - a * k * k) / (k * si)) - c.phi_i1);
  // First crossing of the switching line.
  c.x_d1 = -k * c.amp_i1 * (si / 2.0) * std::exp(-(a * k / 2.0) * c.t_i1);
  c.y_d1 = -c.x_d1 / k;

  // Decrease round.
  c.amp_d1 = 2.0 * std::abs(c.y_d1) / sd;
  c.phi_d1 = std::atan((2.0 - params.b() * k * k * params.capacity) / (k * sd));
  const double ratio_d = c.alpha_d / c.beta_d;  // = -b k C / sd
  c.max1 = std::abs(c.x_d1) / (k * std::sqrt(bc)) *
           std::exp(ratio_d * (kPi + std::atan(ratio_d) - c.phi_d1));

  // Second crossing and the following increase round.
  c.t_d1 = 2.0 * kPi / sd;
  c.x_i2 = -c.amp_d1 * (k * sd / 2.0) * std::exp(-(k * bc / 2.0) * c.t_d1);
  const double phi_i2 = std::atan((2.0 - a * k * k) / (k * si));
  const double ratio_i = c.alpha_i / c.beta_i;  // = -a k / si
  c.min1 = -std::abs(c.x_i2) / (k * std::sqrt(a)) *
           std::exp(ratio_i * (kPi + std::atan(ratio_i) - phi_i2));
  return c;
}

std::optional<double> paper_case2_max(const BcnParams& params) {
  const double a = params.a();
  const double bc = params.b() * params.capacity;
  const double k = params.k();
  const double q0 = params.q0;

  const double disc_i = (a * k) * (a * k) - 4.0 * a;  // must be > 0 (node)
  const double disc_d = 4.0 * bc - (k * bc) * (k * bc);  // must be > 0
  if (disc_i <= 0.0 || disc_d <= 0.0) return std::nullopt;

  const double root = std::sqrt(disc_i);
  const double lambda1 = (-k * a - root) / 2.0;
  const double lambda2 = (-k * a + root) / 2.0;
  // Both k + 1/lambda are positive because lambda_{1,2} < -1/k (paper
  // Section IV.C); evaluate the power ratio in log space.
  const double p1 = k + 1.0 / lambda1;
  const double p2 = k + 1.0 / lambda2;
  if (!(p1 > 0.0) || !(p2 > 0.0)) return std::nullopt;
  const double log_ratio =
      (lambda1 * std::log(p1) - lambda2 * std::log(p2)) / (lambda2 - lambda1);
  const double ratio = std::exp(log_ratio);  // y_d^1(0) = q0 * ratio

  const double sd = std::sqrt(disc_d);
  const double alpha_d = -k * bc / 2.0;
  const double beta_d = sd / 2.0;
  const double ad_over_bd = alpha_d / beta_d;
  const double phi_d1 =
      std::atan((2.0 - params.b() * k * k * params.capacity) / (k * sd));
  return q0 / std::sqrt(bc) * ratio *
         std::exp(ad_over_bd * (kPi + std::atan(ad_over_bd) - phi_d1));
}

double theorem1_overshoot_bound(const BcnParams& params) {
  return std::sqrt(params.a() / (params.b() * params.capacity)) * params.q0;
}

}  // namespace bcn::core
