// Closed-form piecewise tracing of the switched linearized BCN system
// (paper eq. (9)).
//
// The trajectory is built round by round exactly as in the paper's Section
// IV.C: inside one region the motion follows the closed-form linear
// solution (H / F / L type); the round ends where the solution crosses the
// switching line x + k y = 0, which is computed in closed form as well (the
// paper's H^{-1} inversions, e.g. T_i^1).  Stitching the rounds yields the
// exact transient extrema max1/min1/max2 of Propositions 2-3 without any
// numeric integration.
#pragma once

#include <optional>
#include <vector>

#include "control/closed_form.h"
#include "core/classifier.h"
#include "core/fluid_model.h"
#include "ode/trajectory.h"

namespace bcn::core {

// One region traversal ("round" in the paper's indexing x_i^k, x_d^k).
struct RoundRecord {
  Region region = Region::Increase;
  control::SolutionKind kind = control::SolutionKind::Spiral;
  control::LinearSolution solution;  // local time: 0 at round start
  double t_start = 0.0;              // absolute start time
  Vec2 z_start;
  // Crossing back over the switching line; nullopt when the round never
  // leaves its region (the trajectory then converges to the origin inside
  // it, as in Cases 2-4 tails).
  std::optional<double> duration;
  std::optional<Vec2> z_end;
  // The round's local extremum of x (y = 0 crossing), in absolute time.
  std::optional<control::XExtremum> extremum;
};

struct AnalyticTraceOptions {
  int max_rounds = 256;
  // Convergence: a round start counts as converged when
  // |x|/x_scale + |y|/y_scale < tol.
  double convergence_tol = 1e-6;
};

struct AnalyticTrace {
  std::vector<RoundRecord> rounds;
  bool converged = false;            // round-start norm fell below tolerance
  bool terminated_in_region = false; // final round never crosses again
  double max_x = 0.0;                // global max of x over the whole trace
  double min_x = 0.0;                // global min of x over the whole trace

  // Geometric contraction ratio of successive same-region crossing
  // amplitudes |x|; < 1 means the switched system spirals in.  nullopt when
  // fewer than two same-region crossings happened.
  std::optional<double> contraction_ratio() const;
};

class AnalyticTracer {
 public:
  // The tracer always works at the Linearized model level; `params` gives
  // the region subsystems and the switching-line slope.
  explicit AnalyticTracer(BcnParams params);

  // Traces from z0 (default: the paper's analysis start (-q0, 0)).
  AnalyticTrace trace(const AnalyticTraceOptions& options = {}) const;
  AnalyticTrace trace_from(Vec2 z0,
                           const AnalyticTraceOptions& options = {}) const;

  // Samples the closed-form trace into a polyline for plotting /
  // cross-validation against numeric integration.  `points_per_round`
  // samples are placed uniformly in time inside each round; open-ended
  // final rounds are sampled over `tail_time` seconds.
  ode::Trajectory sample(const AnalyticTrace& trace, int points_per_round,
                         double tail_time) const;

  const BcnParams& params() const { return params_; }

 private:
  BcnParams params_;
};

}  // namespace bcn::core
