// Numeric strong-stability verdicts in batch: the bridge between the
// SoA ode::BatchIntegrator and the per-cell scalar verdict pipeline
// (core::numeric_strong_stability / core::mechanism_numeric_verdict).
//
// A VerdictLane packages one (plant, gains, level) cell as an affine
// lane law plus the buffer-strip geometry; batch_numeric_verdicts runs
// any number of them through the batched integrator — optionally sliced
// across the exec layer — and scores each with the exact scalar verdict
// predicate: max_x < B - q0, post-switch min_x > -q0, run completed.
//
// Integration horizons replicate the scalar auto-duration rule (10x the
// summed region time scales) bit for bit, and each region's fixed macro
// step is sized from that region's own linearized rates, so verdicts
// agree with the adaptive scalar driver on everything but razor-thin
// boundary cells.  The Clipped model level has buffer-wall modes outside the
// affine lane family and is not representable here — callers fall back
// to the scalar path for it.
#pragma once

#include <optional>
#include <vector>

#include "core/bcn_params.h"
#include "core/mechanism.h"
#include "core/stability.h"
#include "ode/batch.h"

namespace bcn::core {

// One stability-verdict job for the batched integrator.
struct VerdictLane {
  ode::LaneLaw law;
  double q0 = 0.0;
  double capacity = 0.0;
  double buffer = 0.0;
  double duration = 0.0;  // integration horizon (> 0)
  // Macro step for both regions; 0 -> auto, sizing each region's step
  // from its own linearized rates.
  double dt = 0.0;
  // QCN-style mechanisms without an equilibrium never satisfy the
  // convergence predicate; disabling it skips the per-step check.
  bool use_convergence_stop = true;
};

struct BatchVerdictOptions {
  // Macro steps per characteristic time 1/rate of the stiffest region.
  // 16 keeps the per-period RK4 amplitude error well under 1e-5, far below the
  // margin of any cell the scalar driver can classify robustly.
  double oversample = 16.0;
  // Early-stop threshold on |x|/q0 + |y|/C, matching the scalar
  // pipeline's convergence_tol.
  double convergence_tol = 1e-8;
  int threads = 1;  // exec convention: 0 = hardware, 1 = serial
};

// The affine lane law of the BCN switched system at a model level
// (Linearized or Nonlinear; Clipped is not representable).
ode::LaneLaw bcn_lane_law(const BcnParams& params, ModelLevel level);

// Builds the verdict lane matching core::numeric_strong_stability for
// these parameters: same start (-q0, 0), same auto-duration formula.
// `duration` 0 selects the auto horizon.
VerdictLane make_bcn_verdict_lane(const BcnParams& params, ModelLevel level,
                                  double duration = 0.0);

// Builds the verdict lane matching core::mechanism_numeric_verdict for
// any fluid mechanism exposing a lane law.  Empty when the mechanism
// has no affine lane form or options.level is Clipped.
std::optional<VerdictLane> make_mechanism_verdict_lane(
    const FluidMechanism& mechanism, const MechanismRunOptions& options = {});

// Runs every lane to completion and scores it; slot i is lane i's
// verdict.  Lanes are integrated in contiguous slices, each through its
// own BatchIntegrator, and slices are distributed over the exec layer —
// lanes are fully independent, so the result is bitwise identical at
// any thread count.
std::vector<NumericVerdict> batch_numeric_verdicts(
    const std::vector<VerdictLane>& lanes,
    const BatchVerdictOptions& options = {});

}  // namespace bcn::core
