#include "core/stability.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/format.h"

namespace bcn::core {
namespace {

// Characteristic time of one region traversal, used to size the numeric
// integration horizon: half a rotation period for spirals, a generous
// multiple of the slow eigenvalue's time constant for nodes.
double region_time_scale(const control::SecondOrderSystem& sys) {
  const double disc = sys.discriminant();
  if (disc < 0.0) {
    const double beta = std::sqrt(-disc) / 2.0;
    return std::numbers::pi / beta;
  }
  const auto eig = sys.eigenvalues();
  const double slow = std::abs(eig[1].real());  // eigenvalue closest to 0
  return slow > 0.0 ? 20.0 / slow : 1.0;
}

}  // namespace

std::string StabilityReport::summary() const {
  return strf(
      "%s | predicted overshoot max(x)=%.6g, undershoot min(x)=%.6g | "
      "Proposition %d: %s | Theorem 1: required B=%.6g -> %s | baseline: %s",
      to_string(classification.paper_case).c_str(), predicted_max_x,
      predicted_min_x, proposition,
      proposition_satisfied ? "strongly stable" : "NOT strongly stable",
      theorem1_required_buffer,
      theorem1_satisfied ? "satisfied" : "violated",
      baseline.declared_stable ? "stable" : "unstable");
}

StabilityReport analyze_stability(const BcnParams& params) {
  StabilityReport report;
  report.classification = classify_case(params);

  const AnalyticTracer tracer(params);
  const AnalyticTrace trace = tracer.trace();
  report.predicted_max_x = trace.max_x;
  report.predicted_min_x = trace.min_x;

  const double x_hi = params.buffer - params.q0;
  const double x_lo = -params.q0;
  switch (report.classification.paper_case) {
    case PaperCase::Case1:
      report.proposition = 2;
      report.proposition_satisfied =
          report.predicted_max_x < x_hi && report.predicted_min_x > x_lo;
      break;
    case PaperCase::Case2:
      report.proposition = 3;
      report.proposition_satisfied = report.predicted_max_x < x_hi;
      break;
    case PaperCase::Case3:
    case PaperCase::Case4:
    case PaperCase::Case5:
      // Proposition 4 declares these unconditionally strongly stable.  (Our
      // numeric experiments probe the a-boundary branch of that claim; see
      // EXPERIMENTS.md.)
      report.proposition = 4;
      report.proposition_satisfied = true;
      break;
  }

  report.theorem1_required_buffer = params.theorem1_required_buffer();
  report.theorem1_satisfied = params.satisfies_theorem1();
  report.baseline = control::analyze_linear_baseline(
      params.a(), params.b(), params.k(), params.capacity);
  return report;
}

NumericVerdict numeric_strong_stability(const BcnParams& params,
                                        const NumericVerdictOptions& options) {
  double duration = options.duration;
  if (duration <= 0.0) {
    duration = 10.0 * (region_time_scale(increase_subsystem(params)) +
                       region_time_scale(decrease_subsystem(params)));
  }

  const FluidModel model(params, options.level);
  FluidRunOptions ropts;
  ropts.duration = duration;
  ropts.tol = options.tol;
  ropts.convergence_tol = 1e-8;
  const FluidRun run = simulate_fluid(model, ropts);

  NumericVerdict verdict;
  verdict.max_x = run.max_x;
  verdict.min_x = run.post_switch_min_x;
  verdict.converged = run.converged;
  verdict.nonfinite = run.nonfinite;
  // Overflow: any excursion above B - q0 at any t > 0 drops packets.
  // Underflow: only the post-crossing dip matters; the departure from the
  // legitimate empty-queue start is not a violation (Definition 1).
  verdict.strongly_stable = run.max_x < model.x_max() &&
                            run.post_switch_min_x > model.x_min() &&
                            run.completed;
  return verdict;
}

}  // namespace bcn::core
