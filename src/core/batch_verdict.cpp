#include "core/batch_verdict.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/classifier.h"
#include "exec/parallel_for.h"

namespace bcn::core {
namespace {

// Identical to the horizon rule in stability.cpp (kept in lock-step so
// batched and scalar verdicts integrate the same duration): half a
// rotation period for spirals, 20 slow time constants for nodes.
double region_time_scale(const control::SecondOrderSystem& sys) {
  const double disc = sys.discriminant();
  if (disc < 0.0) {
    const double beta = std::sqrt(-disc) / 2.0;
    return std::numbers::pi / beta;
  }
  const auto eig = sys.eigenvalues();
  const double slow = std::abs(eig[1].real());  // eigenvalue closest to 0
  return slow > 0.0 ? 20.0 / slow : 1.0;
}

// Fastest linearized rate of one region of a lane law.  The law's
// second-order form at the origin is lambda^2 + m lambda + n with
// m = g0 sy, n = g0 sx; away from the origin the g1 y term raises the
// effective g0 by up to g1 * capacity (|y| stays of order C), so the
// step is sized for that worst case.
double region_rate(const ode::LaneLaw& law, int r, double capacity) {
  const double g_eff = law.g0[r] + std::abs(law.g1[r]) * capacity;
  const double m = std::abs(g_eff * law.sy);
  const double n = std::abs(g_eff * law.sx);
  return std::max(m, std::sqrt(n));
}

// Sizes each region's macro step from that region's own rates — lanes
// with a stiff increase law and a slow decrease law (small Gd) take
// proportionally larger steps while spiraling on the slow side, where
// they spend most of the run.  Crossings truncate the step, so a lane
// never integrates across the surface with the wrong region's dt.
void auto_dt(const VerdictLane& lane, double oversample, double dt_out[2]) {
  const double r0 = region_rate(lane.law, 0, lane.capacity);
  const double r1 = region_rate(lane.law, 1, lane.capacity);
  const double rmax = std::max(r0, r1);
  if (rmax <= 0.0) {
    // Pure-drive laws (no position/velocity coupling anywhere) have no
    // intrinsic rate; resolve the horizon instead.
    dt_out[0] = dt_out[1] = lane.duration / (100.0 * oversample);
    return;
  }
  // A rate-free region (pure drive) borrows the other region's step.
  dt_out[0] = 1.0 / (oversample * (r0 > 0.0 ? r0 : rmax));
  dt_out[1] = 1.0 / (oversample * (r1 > 0.0 ? r1 : rmax));
}

}  // namespace

ode::LaneLaw bcn_lane_law(const BcnParams& params, ModelLevel level) {
  ode::LaneLaw law;
  law.sx = 1.0;
  law.sy = params.k();
  law.g0[0] = params.a();  // increase: dy = a sigma
  const double b = params.b();
  // decrease: dy = b (y + C) sigma = (bC + b y) sigma
  law.g0[1] = b * params.capacity;
  law.g1[1] = level == ModelLevel::Linearized ? 0.0 : b;
  law.switched = true;
  return law;
}

VerdictLane make_bcn_verdict_lane(const BcnParams& params, ModelLevel level,
                                  double duration) {
  VerdictLane lane;
  lane.law = bcn_lane_law(params, level);
  lane.q0 = params.q0;
  lane.capacity = params.capacity;
  lane.buffer = params.buffer;
  lane.duration = duration;
  if (lane.duration <= 0.0) {
    lane.duration = 10.0 * (region_time_scale(increase_subsystem(params)) +
                            region_time_scale(decrease_subsystem(params)));
  }
  return lane;
}

std::optional<VerdictLane> make_mechanism_verdict_lane(
    const FluidMechanism& mechanism, const MechanismRunOptions& options) {
  if (options.level == ModelLevel::Clipped) return std::nullopt;
  ode::LaneLaw law;
  if (!mechanism.lane_law(options.level, &law)) return std::nullopt;

  const BcnParams& p = mechanism.plant();
  VerdictLane lane;
  lane.law = law;
  lane.q0 = p.q0;
  lane.capacity = p.capacity;
  lane.buffer = p.buffer;
  lane.duration = options.duration;
  lane.use_convergence_stop = mechanism.has_equilibrium();
  return lane;
}

std::vector<NumericVerdict> batch_numeric_verdicts(
    const std::vector<VerdictLane>& lanes,
    const BatchVerdictOptions& options) {
  const std::size_t n = lanes.size();
  std::vector<NumericVerdict> out(n);
  if (n == 0) return out;

  std::vector<ode::BatchLane> batch(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VerdictLane& lane = lanes[i];
    ode::BatchLane& b = batch[i];
    b.law = lane.law;
    b.x0 = -lane.q0;  // the canonical empty-queue analysis start
    b.y0 = 0.0;
    b.t_end = lane.duration;
    if (lane.dt > 0.0) {
      b.dt[0] = b.dt[1] = lane.dt;
    } else {
      auto_dt(lane, options.oversample, b.dt);
    }
    if (lane.use_convergence_stop && options.convergence_tol > 0.0) {
      b.inv_x_scale = 1.0 / lane.q0;
      b.inv_y_scale = 1.0 / lane.capacity;
      b.stop_tol = options.convergence_tol;
    }
  }

  // Contiguous slices keep each worker's integrator hot; results land by
  // lane index, so slicing is invisible to the output.
  const std::size_t slice = options.threads == 1
                                ? n
                                : std::clamp<std::size_t>(n / 64, 16, 512);
  const std::size_t n_slices = (n + slice - 1) / slice;
  exec::parallel_for(
      n_slices,
      [&](std::size_t s) {
        const std::size_t lo = s * slice;
        const std::size_t hi = std::min(n, lo + slice);
        ode::BatchIntegrator integrator;
        integrator.reset(batch.data() + lo, hi - lo);
        integrator.run_to_completion();
        const auto& results = integrator.results();
        for (std::size_t i = lo; i < hi; ++i) {
          const ode::LaneResult& r = results[i - lo];
          NumericVerdict& v = out[i];
          v.max_x = r.max_x;
          v.min_x = r.post_switch_min_x;
          v.converged = r.converged;
          v.nonfinite = r.nonfinite;
          v.strongly_stable = r.max_x < lanes[i].buffer - lanes[i].q0 &&
                              r.post_switch_min_x > -lanes[i].q0 &&
                              r.completed && !r.nonfinite;
        }
      },
      {.threads = options.threads});
  return out;
}

}  // namespace bcn::core
