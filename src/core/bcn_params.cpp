#include "core/bcn_params.h"

#include <cmath>

#include "common/format.h"

namespace bcn::core {

double BcnParams::theorem1_required_buffer() const {
  return (1.0 + std::sqrt(a() / (b() * capacity))) * q0;
}

double BcnParams::warmup_duration() const {
  const double aggregate = num_sources * init_rate;
  if (aggregate >= capacity) return 0.0;
  return (capacity - aggregate) / (a() * q0);
}

std::vector<std::string> BcnParams::validate() const {
  std::vector<std::string> issues;
  auto require = [&](bool ok, const char* msg) {
    if (!ok) issues.emplace_back(msg);
  };
  require(num_sources > 0.0, "N (num_sources) must be positive");
  require(capacity > 0.0, "C (capacity) must be positive");
  require(q0 > 0.0, "q0 must be positive");
  require(buffer > q0, "buffer B must exceed the reference q0");
  require(qsc > q0, "severe-congestion threshold qsc must exceed q0");
  require(qsc <= buffer, "qsc must not exceed the buffer size");
  require(w > 0.0, "w must be positive");
  require(pm > 0.0 && pm <= 1.0, "pm must lie in (0, 1]");
  require(gi > 0.0, "Gi must be positive");
  require(gd > 0.0, "Gd must be positive");
  require(ru > 0.0, "Ru must be positive");
  require(init_rate >= 0.0, "initial rate must be non-negative");
  return issues;
}

std::string BcnParams::describe() const {
  return strf(
      "BCN params: N=%g C=%g bits/s q0=%g B=%g qsc=%g | w=%g pm=%g | "
      "Gi=%g Gd=%g Ru=%g | derived a=%g b=%g k=%g (4/k^2=%g) | "
      "Theorem1 buffer=%g (%s)",
      num_sources, capacity, q0, buffer, qsc, w, pm, gi, gd, ru, a(), b(),
      k(), spiral_threshold(), theorem1_required_buffer(),
      satisfies_theorem1() ? "satisfied" : "violated");
}

BcnParams BcnParams::standard_draft() {
  BcnParams p;
  p.num_sources = 50.0;
  p.capacity = 10e9;
  p.q0 = 2.5e6;
  p.buffer = 5e6;  // bandwidth-delay product for 0.5 us at 10 Gbps x margin
  p.qsc = 4.5e6;
  p.w = 2.0;
  p.pm = 0.01;
  p.gi = 4.0;
  p.gd = 1.0 / 128.0;
  p.ru = 8e6;
  p.init_rate = 0.0;
  return p;
}

}  // namespace bcn::core
