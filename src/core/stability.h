// Strong-stability analysis of the BCN system (paper Definition 1,
// Propositions 2-4, Theorem 1) plus the numeric ground-truth verdict.
#pragma once

#include <optional>
#include <string>

#include "control/linear_baseline.h"
#include "core/analytic_tracer.h"
#include "core/classifier.h"
#include "core/simulate.h"

namespace bcn::core {

// Closed-form (analytic) strong-stability report.
struct StabilityReport {
  CaseClassification classification;

  // Transient extrema of the linearized switched system from (-q0, 0),
  // computed by closed-form round stitching (AnalyticTracer).  In queue
  // offset coordinates: overshoot above q0 is max_x, undershoot is min_x.
  double predicted_max_x = 0.0;
  double predicted_min_x = 0.0;

  // Case-based verdict per Propositions 2-4: do the transient extrema fit
  // inside (-q0, B - q0)?
  bool proposition_satisfied = false;
  // The specific proposition applied (2, 3 or 4).
  int proposition = 0;

  // Theorem 1: sufficient condition (1 + sqrt(a/(bC))) q0 < B.
  double theorem1_required_buffer = 0.0;
  bool theorem1_satisfied = false;

  // The Lu et al. [4] baseline verdict, which ignores both the switching
  // transient and the buffer.
  control::LinearBaselineReport baseline;

  std::string summary() const;
};

StabilityReport analyze_stability(const BcnParams& params);

// Numeric ground truth: integrates the fluid model from (-q0, 0) and
// checks the orbit stays strictly inside the buffer strip for all t > 0.
struct NumericVerdict {
  bool strongly_stable = false;
  bool converged = false;  // reached the origin within the horizon
  // The integration aborted on a non-finite state; the verdict is
  // "not strongly stable" and the extrema cover the finite prefix only.
  bool nonfinite = false;
  double max_x = 0.0;
  double min_x = 0.0;
};

struct NumericVerdictOptions {
  ModelLevel level = ModelLevel::Nonlinear;
  double duration = 0.0;  // 0 -> auto from the subsystem time scales
  ode::Tolerances tol{1e-9, 1e-9};
};

NumericVerdict numeric_strong_stability(const BcnParams& params,
                                        const NumericVerdictOptions& options = {});

}  // namespace bcn::core
