// Numeric integration of the BCN fluid model (any ModelLevel) with
// event-localized switching, producing a phase trace plus queue/rate
// summary statistics.
#pragma once

#include <optional>

#include "core/fluid_model.h"
#include "ode/hybrid.h"

namespace bcn::core {

struct FluidRunOptions {
  double duration = 0.05;          // seconds of model time
  double record_interval = 0.0;    // 0 -> record every accepted step
  ode::Tolerances tol{1e-9, 1e-9};
  std::optional<Vec2> z0;          // default: analysis start (-q0, 0)
  // Stop as soon as |x|/q0 + |y|/C falls below this (0 disables).
  double convergence_tol = 0.0;
  std::size_t max_steps = 4'000'000;
};

struct FluidRun {
  ode::Trajectory trajectory;             // (t, (x, y)) samples
  std::vector<ode::ModeSwitch> switches;  // localized region transitions
  bool completed = false;
  bool converged = false;   // stopped early via convergence_tol
  // Integrator step statistics (from ode::HybridResult): accepted and
  // rejected DOPRI5 trial steps, the smallest accepted time advance, and
  // the total event-localization bisection iterations.
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected = 0;
  double min_step = 0.0;
  std::size_t event_bisections = 0;
  // The integrator aborted on a NaN/Inf state (ode::HybridResult's
  // non-finite guard); nonfinite_t is the last finite time.  The
  // trajectory and extrema cover only the finite prefix.
  bool nonfinite = false;
  double nonfinite_t = 0.0;
  double max_x = 0.0;       // over t > 0 (initial point excluded)
  double min_x = 0.0;
  double max_y = 0.0;
  double min_y = 0.0;
  // Extrema restricted to t >= the first switching event.  Before the
  // first crossing the motion departs monotonically from the (legitimate)
  // empty-queue start, so these are the right quantities for the
  // Definition-1 underflow check.  When no switch occurs they default to 0
  // (the origin limit).
  double post_switch_max_x = 0.0;
  double post_switch_min_x = 0.0;

  // Queue-space conveniences.
  double max_queue(const BcnParams& p) const { return max_x + p.q0; }
  double min_queue(const BcnParams& p) const { return min_x + p.q0; }
};

// Integrates the model from options.z0 (default (-q0, 0)) over
// options.duration.
FluidRun simulate_fluid(const FluidModel& model,
                        const FluidRunOptions& options = {});

}  // namespace bcn::core
