// Named time series ("timelines") for simulator observability: per-flow
// rates, per-port queue lengths, or any other (t, value) signal.
//
// A TimelineSet keys timelines by name and exports them as one
// long-format CSV (series,t,value) with series in name order, so the
// artifact is deterministic regardless of recording interleaving.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace bcn::obs {

struct TimelinePoint {
  double t = 0.0;  // seconds
  double value = 0.0;
};

class Timeline {
 public:
  void record(double t, double value) { points_.push_back({t, value}); }
  const std::vector<TimelinePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

 private:
  std::vector<TimelinePoint> points_;
};

class TimelineSet {
 public:
  // Creates on first use; the returned reference is stable for the life
  // of the set, so hot paths can hold it across records.
  Timeline& series(const std::string& name) { return series_[name]; }

  const Timeline* find(const std::string& name) const;
  std::vector<std::string> names() const;  // sorted
  bool empty() const { return series_.empty(); }
  std::size_t size() const { return series_.size(); }
  std::size_t total_points() const;

  // Long-format CSV: header series,t,value; rows grouped by series in
  // name order, points in recording order.
  std::string to_csv() const;
  bool write_csv(const std::filesystem::path& path) const;

 private:
  std::map<std::string, Timeline> series_;
};

}  // namespace bcn::obs
