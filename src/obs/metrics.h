// Lightweight metrics registry: named counters, gauges and fixed-bucket
// histograms for run-level observability.
//
// Hot paths hold the Counter/Gauge/Histogram reference returned by the
// registry (references are stable — the registry never removes entries),
// so per-event updates cost one increment, not a map lookup.  Export is
// deterministic: entries are emitted in name order regardless of
// creation or update order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace bcn::obs {

// Counter and Gauge updates are relaxed atomics so instrumented parallel
// stages (pool workers bumping a shared counter from parallel_for
// bodies) are race-free under TSan.  Relaxed is enough: metrics are
// snapshotted after the fork-join barrier, which orders the reads.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Monotone raise: keeps max(current, v).  CAS loop so concurrent
  // raisers (parallel wave workers recording a high-water mark) never
  // lose an update.
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: cumulative-style buckets with the given upper
// bounds (ascending) plus an implicit +inf overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double x);
  // Accumulates another histogram with identical bounds.  A bounds
  // mismatch is a caller bug: the merge is refused, a warning is logged,
  // and false is returned so the drop is visible instead of silent.
  bool merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  // One count per bound, plus the trailing overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  // Creates on first use; later calls return the same instance (the
  // histogram bounds argument is ignored when the histogram exists).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Flat snapshot into `json`, every key prefixed (e.g. "metrics.").
  // Counters emit one integer field; gauges one double; histograms
  // <name>.count, <name>.sum and one <name>.le_<bound> per bucket
  // (cumulative counts, trailing bucket le_inf).  Deterministic: name
  // order within each kind, counters then gauges then histograms.
  void write_json(JsonWriter& json, const std::string& prefix) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace bcn::obs
