#include "obs/tracing.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/args.h"
#include "common/format.h"
#include "common/json.h"
#include "common/log.h"

namespace bcn::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

// One per recording thread, shared between the thread (writer) and the
// global registry (drainer).  Lock-free by contract: only the owning
// thread appends, and drains happen at quiescent points — after a
// fork-join barrier (ThreadPool::wait_idle, pool destruction) whose own
// synchronization orders the worker's writes before the drainer's
// reads.  The record path is therefore a plain push_back.
struct ThreadBuffer {
  std::vector<SpanRecord> spans;
  std::string name;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<SpanRecord> drained;
  std::map<std::uint32_t, std::string> thread_names;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit
  return *r;
}

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch())
          .count());
}

struct ThreadState {
  std::shared_ptr<ThreadBuffer> owned;  // keeps the buffer alive
  ThreadBuffer* buffer = nullptr;       // hot-path raw pointer
  TraceSpan* current = nullptr;
  std::uint16_t depth = 0;
  std::string pending_name;  // set before the buffer exists
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

ThreadBuffer& thread_buffer() {
  ThreadState& state = thread_state();
  if (!state.buffer) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->spans.reserve(1024);
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buffer->tid = reg.next_tid++;
    buffer->name = state.pending_name;
    reg.buffers.push_back(buffer);
    state.buffer = buffer.get();
    state.owned = std::move(buffer);
  }
  return *state.buffer;
}

}  // namespace

bool tracing_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void tracing_enable() {
  epoch();  // pin the time origin before the first span
  g_enabled.store(true, std::memory_order_relaxed);
}

void tracing_disable() { g_enabled.store(false, std::memory_order_relaxed); }

void tracing_set_thread_name(std::string name) {
  ThreadState& state = thread_state();
  if (state.buffer) {
    state.buffer->name = std::move(name);
  } else {
    state.pending_name = std::move(name);
  }
}

std::size_t tracing_drain() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t moved = 0;
  for (const auto& buffer : reg.buffers) {
    if (!buffer->name.empty()) reg.thread_names[buffer->tid] = buffer->name;
    moved += buffer->spans.size();
    reg.drained.insert(reg.drained.end(), buffer->spans.begin(),
                       buffer->spans.end());
    buffer->spans.clear();
  }
  return moved;
}

const std::vector<SpanRecord>& tracing_spans() { return registry().drained; }

void tracing_clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.drained.clear();
  reg.thread_names.clear();
  for (const auto& buffer : reg.buffers) buffer->spans.clear();
}

void TraceSpan::begin(const char* name) {
  ThreadState& state = thread_state();
  thread_buffer();  // register this thread before the clock read
  active_ = true;
  name_ = name;
  parent_ = state.current;
  depth_ = state.depth;
  state.current = this;
  ++state.depth;
  start_ns_ = now_ns();
}

void TraceSpan::end() {
  const std::uint64_t end_ns = now_ns();
  ThreadState& state = thread_state();
  const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 0;

  // begin() registered the buffer, so state.buffer is live here.
  ThreadBuffer& buffer = *state.buffer;
  SpanRecord& record = buffer.spans.emplace_back();
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = dur;
  record.self_ns = dur > child_ns_ ? dur - child_ns_ : 0;
  record.tid = buffer.tid;
  record.depth = depth_;
  record.n_args = n_args_;
  record.args = args_;

  if (parent_) parent_->child_ns_ += dur;
  state.current = parent_;
  if (state.depth > 0) --state.depth;
  active_ = false;
}

bool write_chrome_trace(const std::filesystem::path& path,
                        const std::vector<SpanRecord>& spans) {
  std::vector<SpanRecord> sorted = spans;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });

  std::map<std::uint32_t, std::string> names;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    names = reg.thread_names;
  }

  if (!path.parent_path().empty()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (!f) return false;

  std::fputs("[\n", f);
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };
  for (const auto& [tid, name] : names) {
    sep();
    std::fprintf(f,
                 "{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, \"name\": "
                 "\"thread_name\", \"args\": {\"name\": %s}}",
                 tid, JsonWriter::quote(name).c_str());
  }
  for (const auto& s : sorted) {
    sep();
    std::fprintf(f,
                 "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %.3f, "
                 "\"dur\": %.3f, \"name\": %s",
                 s.tid, static_cast<double>(s.start_ns) / 1e3,
                 static_cast<double>(s.dur_ns) / 1e3,
                 JsonWriter::quote(s.name).c_str());
    if (s.n_args > 0) {
      std::fputs(", \"args\": {", f);
      for (std::uint8_t i = 0; i < s.n_args; ++i) {
        std::fprintf(f, "%s%s: %s", i > 0 ? ", " : "",
                     JsonWriter::quote(s.args[i].key).c_str(),
                     JsonWriter::format(s.args[i].value).c_str());
      }
      std::fputs("}", f);
    }
    std::fputs("}", f);
  }
  std::fputs("\n]\n", f);
  return std::fclose(f) == 0;
}

std::vector<ProfileEntry> build_self_profile(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, ProfileEntry> by_name;
  for (const auto& s : spans) {
    ProfileEntry& e = by_name[s.name];
    if (e.name.empty()) e.name = s.name;
    ++e.calls;
    e.total_seconds += static_cast<double>(s.dur_ns) / 1e9;
    e.self_seconds += static_cast<double>(s.self_ns) / 1e9;
  }
  std::vector<ProfileEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) out.push_back(std::move(entry));
  return out;  // map iteration order = name order
}

void profile_to_metrics(const std::vector<ProfileEntry>& profile,
                        MetricsRegistry& registry,
                        const std::string& prefix) {
  for (const auto& e : profile) {
    registry.gauge(prefix + e.name + ".calls")
        .set(static_cast<double>(e.calls));
    registry.gauge(prefix + e.name + ".total_seconds").set(e.total_seconds);
    registry.gauge(prefix + e.name + ".self_seconds").set(e.self_seconds);
  }
}

std::optional<std::filesystem::path> maybe_enable_tracing(
    const ArgParser& args) {
  std::optional<std::string> dest = args.get("trace");
  if (!dest) {
    if (const char* env = std::getenv("BCN_TRACE")) dest = env;
  }
  if (!dest || dest->empty()) return std::nullopt;
  tracing_set_thread_name("main");
  tracing_enable();
  return std::filesystem::path(*dest);
}

std::size_t finalize_tracing(const std::filesystem::path& path) {
  tracing_drain();
  const auto& spans = tracing_spans();
  if (!write_chrome_trace(path, spans)) {
    BCN_LOG_ERROR("failed to write trace file %s", path.string().c_str());
    return 0;
  }
  std::printf("  [trace] %zu spans -> %s\n", spans.size(),
              path.string().c_str());
  return spans.size();
}

}  // namespace bcn::obs
