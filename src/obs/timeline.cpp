#include "obs/timeline.h"

#include "common/csv.h"

namespace bcn::obs {

const Timeline* TimelineSet::find(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> TimelineSet::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, tl] : series_) out.push_back(name);
  return out;
}

std::size_t TimelineSet::total_points() const {
  std::size_t n = 0;
  for (const auto& [name, tl] : series_) n += tl.size();
  return n;
}

std::string TimelineSet::to_csv() const {
  CsvWriter csv({"series", "t", "value"});
  for (const auto& [name, tl] : series_) {
    for (const auto& p : tl.points()) {
      csv.add_row({name, CsvWriter::format(p.t), CsvWriter::format(p.value)});
    }
  }
  return csv.to_string();
}

bool TimelineSet::write_csv(const std::filesystem::path& path) const {
  CsvWriter csv({"series", "t", "value"});
  for (const auto& [name, tl] : series_) {
    for (const auto& p : tl.points()) {
      csv.add_row({name, CsvWriter::format(p.t), CsvWriter::format(p.value)});
    }
  }
  return csv.write_file(path);
}

}  // namespace bcn::obs
