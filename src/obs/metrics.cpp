#include "obs/metrics.h"

#include <algorithm>
#include <utility>

#include "common/format.h"
#include "common/log.h"

namespace bcn::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::record(double x) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += x;
}

bool Histogram::merge(const Histogram& other) {
  if (other.upper_bounds_ != upper_bounds_) {
    BCN_LOG_WARN(
        "Histogram::merge: bounds mismatch (%zu vs %zu buckets), "
        "dropping %llu samples",
        upper_bounds_.size(), other.upper_bounds_.size(),
        static_cast<unsigned long long>(other.count_));
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(JsonWriter& json,
                                 const std::string& prefix) const {
  for (const auto& [name, c] : counters_) {
    json.add(prefix + name, static_cast<std::int64_t>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    json.add(prefix + name, g.value());
  }
  for (const auto& [name, h] : histograms_) {
    json.add(prefix + name + ".count",
             static_cast<std::int64_t>(h.count()));
    json.add(prefix + name + ".sum", h.sum());
    std::uint64_t cumulative = 0;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      json.add(prefix + name + ".le_" + strf("%g", bounds[i]),
               static_cast<std::int64_t>(cumulative));
    }
    cumulative += counts.back();
    json.add(prefix + name + ".le_inf",
             static_cast<std::int64_t>(cumulative));
  }
}

}  // namespace bcn::obs
