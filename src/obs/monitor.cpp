#include "obs/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/format.h"
#include "obs/postmortem.h"

namespace bcn::obs {
namespace {

// Duration with unit suffix ns|us|ms|s -> seconds (mirrors the --faults
// grammar; reimplemented here because obs sits below sim).
bool parse_duration_seconds(const std::string& text, double* out) {
  double scale = 0.0;
  std::size_t suffix = 0;
  if (text.size() > 2 && text.compare(text.size() - 2, 2, "ns") == 0) {
    scale = 1e-9;
    suffix = 2;
  } else if (text.size() > 2 && text.compare(text.size() - 2, 2, "us") == 0) {
    scale = 1e-6;
    suffix = 2;
  } else if (text.size() > 2 && text.compare(text.size() - 2, 2, "ms") == 0) {
    scale = 1e-3;
    suffix = 2;
  } else if (text.size() > 1 && text.back() == 's') {
    scale = 1.0;
    suffix = 1;
  } else {
    return false;
  }
  const std::string number = text.substr(0, text.size() - suffix);
  char* end = nullptr;
  const double value = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') return false;
  if (!(value > 0.0) || !std::isfinite(value)) return false;
  *out = value * scale;
  return true;
}

bool parse_count(const std::string& text, std::size_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool fail(std::string* error, std::string message) {
  if (error) *error = std::move(message);
  return false;
}

bool apply_entry(const std::string& entry, MonitorSpec* spec,
                 std::string* error) {
  if (entry == "queue_bounds") {
    spec->queue_bounds = true;
  } else if (entry == "rate_bounds") {
    spec->rate_bounds = true;
  } else if (entry == "conservation") {
    spec->conservation = true;
  } else if (entry == "finite") {
    spec->finite = true;
  } else if (entry == "watchdog") {
    spec->watchdog = true;
  } else if (entry == "crosscheck") {
    spec->crosscheck = true;
  } else if (entry == "all") {
    const MonitorSpec all = MonitorSpec::all();
    spec->queue_bounds = all.queue_bounds;
    spec->rate_bounds = all.rate_bounds;
    spec->conservation = all.conservation;
    spec->finite = all.finite;
    spec->watchdog = all.watchdog;
    spec->crosscheck = all.crosscheck;
  } else if (const auto eq = entry.find('='); eq != std::string::npos) {
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "window") {
      if (!parse_duration_seconds(value, &spec->watchdog_window)) {
        return fail(error, "window: bad duration '" + value +
                               "' (expected e.g. 5ms, 200us)");
      }
    } else if (key == "ring") {
      if (!parse_count(value, &spec->ring)) {
        return fail(error, "ring: bad count '" + value + "'");
      }
    } else if (key == "snapshots") {
      if (!parse_count(value, &spec->snapshots) || spec->snapshots == 0) {
        return fail(error, "snapshots: bad count '" + value + "'");
      }
    } else {
      return fail(error, "unknown option '" + key + "'");
    }
  } else {
    return fail(error, "unknown monitor '" + entry + "'");
  }
  return true;
}

}  // namespace

MonitorSpec MonitorSpec::all() {
  MonitorSpec spec;
  spec.queue_bounds = true;
  spec.rate_bounds = true;
  spec.conservation = true;
  spec.finite = true;
  spec.watchdog = true;
  spec.crosscheck = true;
  return spec;
}

std::optional<MonitorSpec> parse_monitor_spec(const std::string& spec,
                                              std::string* error) {
  MonitorSpec out;
  if (spec.empty()) {
    fail(error, "empty spec");
    return std::nullopt;
  }
  if (spec == "none") return out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string entry =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (entry.empty()) {
      fail(error, "empty entry");
      return std::nullopt;
    }
    if (!apply_entry(entry, &out, error)) return std::nullopt;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

const char* monitor_spec_usage() {
  return "monitor spec: comma-separated monitors and options\n"
         "  monitors: all | none | queue_bounds | rate_bounds |\n"
         "            conservation | finite | watchdog | crosscheck\n"
         "  options:  window=DUR (watchdog no-progress window, e.g. 5ms)\n"
         "            ring=N (flight-recorder event capacity, 0 = unbounded)\n"
         "            snapshots=N (state-snapshot ring capacity)\n"
         "  examples: all | watchdog,window=2ms | all,ring=1024";
}

std::string monitor_spec_summary(const MonitorSpec& spec) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (spec.queue_bounds && spec.rate_bounds && spec.conservation &&
      spec.finite && spec.watchdog && spec.crosscheck) {
    append("all");
  } else {
    if (spec.queue_bounds) append("queue_bounds");
    if (spec.rate_bounds) append("rate_bounds");
    if (spec.conservation) append("conservation");
    if (spec.finite) append("finite");
    if (spec.watchdog) append("watchdog");
    if (spec.crosscheck) append("crosscheck");
  }
  const MonitorSpec defaults;
  if (spec.watchdog_window != defaults.watchdog_window) {
    out += strf(",window=%gs", spec.watchdog_window);
  }
  if (spec.ring != defaults.ring) {
    out += strf(",ring=%zu", spec.ring);
  }
  if (spec.snapshots != defaults.snapshots) {
    out += strf(",snapshots=%zu", spec.snapshots);
  }
  if (out.empty()) out = "none";
  return out;
}

void RunMonitor::configure(const MonitorConfig& config, EventTrace* trace) {
  config_ = config;
  trace_ = trace;
  armed_ = config.spec.any();
  queue_armed_ = config.spec.queue_bounds;
  if (armed_ && trace_ != nullptr && config.spec.ring > 0) {
    // Flight-recorder mode: bound the scenario's event trace so the
    // post-mortem slice is the most recent window, and make sure it is
    // actually recording.
    trace_->set_ring_capacity(config.spec.ring);
    trace_->set_enabled(true);
  }
  if (armed_) snapshots_.reserve(config.spec.snapshots);
}

std::vector<MonitorSample> RunMonitor::snapshots() const {
  std::vector<MonitorSample> out;
  out.reserve(snapshots_.size());
  out.insert(out.end(),
             snapshots_.begin() +
                 static_cast<std::ptrdiff_t>(snapshot_head_),
             snapshots_.end());
  out.insert(out.end(), snapshots_.begin(),
             snapshots_.begin() +
                 static_cast<std::ptrdiff_t>(snapshot_head_));
  return out;
}

void RunMonitor::queue_violation(double t, std::uint32_t point,
                                 double queue_bits) {
  violate("queue_bounds", t, queue_bits, queue_hi_,
          strf("queue occupancy %.6g bits outside [0, %.6g] at point %u",
               queue_bits, queue_hi_, point));
}

void RunMonitor::on_sample(const MonitorSample& s) {
  if (!armed_) return;
  const MonitorSpec& spec = config_.spec;

  // Snapshot ring first, so the bundle includes the offending sample.
  if (snapshots_.size() < spec.snapshots) {
    snapshots_.push_back(s);
  } else {
    snapshots_[snapshot_head_] = s;
    snapshot_head_ = (snapshot_head_ + 1) % spec.snapshots;
  }

  if (spec.finite) {
    ++checks_;
    if (!std::isfinite(s.queue_bits) || !std::isfinite(s.aggregate_rate) ||
        !std::isfinite(s.bits_delivered)) {
      violate("finite", s.t, s.queue_bits, 0.0,
              strf("non-finite sampled state: queue=%g rate=%g bits=%g",
                   s.queue_bits, s.aggregate_rate, s.bits_delivered));
    }
  }

  if (spec.queue_bounds) {
    ++checks_;
    if (!(s.queue_bits >= 0.0 && s.queue_bits <= queue_hi_ + kQueueSlack)) {
      queue_violation(s.t, 0, s.queue_bits);
    }
  }

  if (spec.rate_bounds) {
    ++checks_;
    if (!(s.aggregate_rate >= 0.0) ||
        (rate_hi_ > 0.0 && s.aggregate_rate > rate_hi_)) {
      violate("rate_bounds", s.t, s.aggregate_rate, rate_hi_,
              strf("aggregate rate %.6g bits/s outside [0, %.6g]",
                   s.aggregate_rate, rate_hi_));
    }
  }

  if (spec.conservation) {
    ++checks_;
    // delivered <= enqueued <= enqueued + dropped <= sent: every frame
    // the switch delivered was enqueued, every frame it saw (enqueued or
    // dropped at the tail) was sent.  Frames lost to injected link
    // faults are simply never seen, which the inequalities tolerate.
    const bool counters_ok =
        s.frames_delivered <= s.frames_enqueued &&
        s.frames_enqueued + s.frames_dropped <= s.frames_sent;
    const bool monotone_ok =
        !have_prev_ ||
        (s.frames_sent >= prev_.frames_sent &&
         s.frames_enqueued >= prev_.frames_enqueued &&
         s.frames_delivered >= prev_.frames_delivered &&
         s.frames_dropped >= prev_.frames_dropped &&
         s.bits_delivered >= prev_.bits_delivered);
    if (!counters_ok || !monotone_ok) {
      violate(
          "conservation", s.t, static_cast<double>(s.frames_delivered),
          static_cast<double>(s.frames_enqueued),
          strf("frame/byte conservation broken: sent=%llu enqueued=%llu "
               "delivered=%llu dropped=%llu bits=%.6g (%s)",
               static_cast<unsigned long long>(s.frames_sent),
               static_cast<unsigned long long>(s.frames_enqueued),
               static_cast<unsigned long long>(s.frames_delivered),
               static_cast<unsigned long long>(s.frames_dropped),
               s.bits_delivered,
               counters_ok ? "counter regressed" : "inequality broken"));
    }
  }

  if (spec.watchdog) {
    ++checks_;
    if (s.frames_delivered > last_delivered_) {
      last_delivered_ = s.frames_delivered;
      last_progress_t_ = s.t;
      watchdog_tripped_ = false;
    } else if (!watchdog_tripped_ && s.frames_sent > s.frames_delivered &&
               s.t - last_progress_t_ >= spec.watchdog_window) {
      watchdog_tripped_ = true;  // re-arms only after progress resumes
      violate("watchdog", s.t, s.t - last_progress_t_, spec.watchdog_window,
              strf("no delivery progress for %.6g s (window %.6g s) with "
                   "%llu frames outstanding: stalled link or PFC deadlock",
                   s.t - last_progress_t_, spec.watchdog_window,
                   static_cast<unsigned long long>(s.frames_sent -
                                                   s.frames_delivered)));
    }
  }

  if (spec.crosscheck && !crosscheck_tripped_ &&
      config_.fluid_strongly_stable.value_or(false)) {
    ++checks_;
    const bool contradicted = s.frames_dropped > 0 ||
                              (queue_hi_ > 0.0 && s.queue_bits >= queue_hi_) ||
                              s.pause_frames > 0;
    if (contradicted) {
      crosscheck_tripped_ = true;
      violate(
          "crosscheck", s.t, s.queue_bits, queue_hi_,
          strf("packet run contradicts the fluid strong-stability verdict: "
               "drops=%llu pause_frames=%llu queue=%.6g bits (B=%.6g) — the "
               "certified orbit never drops, overflows or asserts PAUSE",
               static_cast<unsigned long long>(s.frames_dropped),
               static_cast<unsigned long long>(s.pause_frames), s.queue_bits,
               queue_hi_));
    }
  }

  have_prev_ = true;
  prev_ = s;
}

void RunMonitor::violate(const char* invariant, double t, double value,
                         double bound, std::string message) {
  ++violations_total_;
  if (violations_.size() < 16) {
    violations_.push_back({invariant, t, value, bound, message});
  }
  if (violation_logs_.allow()) {
    BCN_LOG_ERROR("monitor: invariant '%s' violated at t=%.9g s: %s",
                  invariant, t, message.c_str());
  }
  if (config_.action == ViolationAction::Record || dumped_) return;
  dumped_ = true;

  PostmortemBundle bundle;
  bundle.config = config_;
  bundle.violation = {invariant, t, value, bound, std::move(message)};
  bundle.snapshots = snapshots();
  if (trace_ != nullptr) {
    bundle.recent_events = trace_->recent(kPostmortemEvents);
    bundle.events_evicted = trace_->evicted();
  }
  bundle.checks = checks_;
  write_postmortem(bundle);
  if (config_.action == ViolationAction::DumpAndExit) {
    std::exit(kMonitorViolationExit);
  }
}

void RunMonitor::merge_from(const RunMonitor& other) {
  armed_ = armed_ || other.armed_;
  checks_ += other.checks_;
  violations_total_ += other.violations_total_;

  std::vector<Violation> merged = violations_;
  merged.insert(merged.end(), other.violations_.begin(),
                other.violations_.end());
  std::sort(merged.begin(), merged.end(),
            [](const Violation& a, const Violation& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.invariant != b.invariant) return a.invariant < b.invariant;
              return a.message < b.message;
            });
  if (merged.size() > 16) merged.resize(16);
  violations_ = std::move(merged);

  // Ring semantics for the merged snapshots: chronological, most recent
  // entries win when the combined history exceeds the capacity.
  const std::size_t capacity =
      std::max<std::size_t>(1, std::max(config_.spec.snapshots,
                                        other.config_.spec.snapshots));
  std::vector<MonitorSample> mine = snapshots();
  const std::vector<MonitorSample> theirs = other.snapshots();
  mine.insert(mine.end(), theirs.begin(), theirs.end());
  std::stable_sort(mine.begin(), mine.end(),
                   [](const MonitorSample& a, const MonitorSample& b) {
                     return a.t < b.t;
                   });
  if (mine.size() > capacity) {
    mine.erase(mine.begin(),
               mine.end() - static_cast<std::ptrdiff_t>(capacity));
  }
  snapshots_ = std::move(mine);
  snapshot_head_ = 0;

  watchdog_tripped_ = watchdog_tripped_ || other.watchdog_tripped_;
  crosscheck_tripped_ = crosscheck_tripped_ || other.crosscheck_tripped_;
  dumped_ = dumped_ || other.dumped_;
  if (other.have_prev_ && (!have_prev_ || other.prev_.t > prev_.t)) {
    have_prev_ = true;
    prev_ = other.prev_;
  }
  last_delivered_ = std::max(last_delivered_, other.last_delivered_);
  last_progress_t_ = std::max(last_progress_t_, other.last_progress_t_);
}

void RunMonitor::export_metrics(MetricsRegistry& registry,
                                const std::string& prefix) const {
  registry.gauge(prefix + "armed").set(armed_ ? 1.0 : 0.0);
  registry.counter(prefix + "checks").inc(checks_);
  registry.counter(prefix + "violations").inc(violations_total_);
  registry.gauge(prefix + "snapshots").set(
      static_cast<double>(snapshots_.size()));
  for (const Violation& v : violations_) {
    registry.counter(prefix + "violations." + v.invariant).inc();
  }
}

}  // namespace bcn::obs
