// Deterministic post-mortem anomaly bundles.
//
// On an invariant violation the RunMonitor assembles everything needed
// to understand and reproduce the anomaly without rerunning under a
// debugger: the violated invariant, a bounded slice of the most recent
// flight-recorder events, the state-snapshot ring, and the exact repro
// command line.  The bundle is a flat JSON object
// (POSTMORTEM_<invariant>.json) written with JsonWriter, so it contains
// no wall-clock timestamps, no absolute paths beyond what the caller
// put in the repro line, and reruns of the same scenario produce
// byte-identical files (pinned by tests and scripts/check.sh gate 8).
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "obs/event_trace.h"
#include "obs/monitor.h"

namespace bcn::obs {

// Everything that lands in one bundle.
struct PostmortemBundle {
  MonitorConfig config;
  Violation violation;
  std::vector<MonitorSample> snapshots;   // chronological
  std::vector<TraceEvent> recent_events;  // chronological, already bounded
  std::uint64_t checks = 0;
  std::uint64_t events_evicted = 0;  // ring evictions before the dump
};

// Bundles land at <dir>/POSTMORTEM_<invariant>.json — a fixed name per
// invariant, so a rerun overwrites (and must byte-match) its
// predecessor.
std::filesystem::path postmortem_path(const std::filesystem::path& dir,
                                      const std::string& invariant);

// Writes the bundle; returns the path written, or empty on I/O failure.
// The recent-event slice is truncated to the newest kPostmortemEvents
// entries to keep the bundle readable.
inline constexpr std::size_t kPostmortemEvents = 64;
std::filesystem::path write_postmortem(const PostmortemBundle& bundle);

}  // namespace bcn::obs
