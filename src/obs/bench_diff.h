// Perf-regression comparison of two flat BENCH_*/RUN_*.json artifacts.
//
// Every numeric key present in both files is compared with a relative
// threshold; `regressions` counts the breaches so CI can gate on them
// (tools/bcn_bench_diff exits non-zero when any metric moved by more
// than the threshold).  Keys present in only one file are reported but
// are not breaches by default — experiments grow metrics across PRs.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace bcn::obs {

struct BenchDiffOptions {
  // Relative tolerance: |b - a| / max(|a|, abs_floor) above this is a
  // regression.  0 means "require exact equality".
  double threshold = 0.10;
  // Denominator floor so near-zero baselines don't turn noise into an
  // infinite relative delta.
  double abs_floor = 1e-12;
  // When non-empty, only keys containing this substring are compared.
  std::string match;
  // Treat keys present in only one file as breaches.
  bool require_same_keys = false;
};

struct MetricDelta {
  std::string key;
  double a = 0.0;
  double b = 0.0;
  double rel_delta = 0.0;  // |b - a| / max(|a|, abs_floor)
  bool breach = false;
};

struct BenchDiffResult {
  bool ok = false;           // both files loaded and parsed
  std::string error;         // set when !ok
  std::vector<MetricDelta> deltas;          // key-sorted
  std::vector<std::string> only_in_a;       // key-sorted
  std::vector<std::string> only_in_b;
  std::size_t compared = 0;
  std::size_t regressions = 0;  // breached deltas (+ key mismatches when
                                // require_same_keys)
};

BenchDiffResult bench_diff(const std::filesystem::path& file_a,
                           const std::filesystem::path& file_b,
                           const BenchDiffOptions& options = {});

// Human-readable report (one line per compared metric, breaches marked);
// what tools/bcn_bench_diff prints.
std::string format_bench_diff(const BenchDiffResult& result,
                              const BenchDiffOptions& options);

}  // namespace bcn::obs
