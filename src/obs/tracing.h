// Span tracing and self-profiling: *where time went* observability.
//
// `TraceSpan` is an RAII scoped timer.  When tracing is disabled (the
// default) constructing one costs a single relaxed atomic load and a
// branch — nothing else runs, so instrumented hot paths keep their
// un-instrumented cost profile.  When enabled, each completed span is
// appended to a per-thread buffer — lock-free: only the owning thread
// ever writes it, and the exporter reads buffers only at drain points
// where instrumented work is quiescent (see tracing_drain) — and
// carries:
//
//   * a static-literal name ("ode.integrate_hybrid" — the dotted prefix
//     names the subsystem),
//   * start time and duration (steady clock, ns since the tracer epoch),
//   * self time (duration minus time spent in nested child spans),
//   * the recording thread's process-local ordinal and nesting depth,
//   * up to four numeric key=value args.
//
// Two exporters consume the drained spans:
//
//   * `write_chrome_trace` — Chrome trace-event JSON ("X" complete
//     events plus "M" thread-name metadata), loadable in Perfetto or
//     chrome://tracing; pool workers are named by worker index.
//   * `build_self_profile` — an aggregated table (call count,
//     inclusive and exclusive wall-clock per span name, name-sorted for
//     determinism) that `profile_to_metrics` folds into a
//     MetricsRegistry snapshot as `profile.*` gauges.
//
// Span names must be string literals (or otherwise outlive the drain):
// the recorder stores the pointer, never a copy.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bcn {
class ArgParser;
}

namespace bcn::obs {

struct TraceArg {
  const char* key = nullptr;  // static literal
  double value = 0.0;
};

inline constexpr std::size_t kMaxTraceArgs = 4;

struct SpanRecord {
  const char* name = nullptr;   // static literal
  std::uint64_t start_ns = 0;   // since the tracer epoch (steady clock)
  std::uint64_t dur_ns = 0;     // inclusive wall-clock
  std::uint64_t self_ns = 0;    // dur_ns minus nested child spans
  std::uint32_t tid = 0;        // process-local thread ordinal
  std::uint16_t depth = 0;      // nesting depth at record time (root = 0)
  std::uint8_t n_args = 0;
  std::array<TraceArg, kMaxTraceArgs> args{};
};

// --- global switch -------------------------------------------------------

// The hot-path guard: one relaxed atomic load.
bool tracing_enabled();

// Turns span collection on/off.  Enabling does not clear previously
// drained spans (a runner can enable once and drain per experiment).
void tracing_enable();
void tracing_disable();

// Names the calling thread in the Chrome export ("pool-worker-3").
// Cheap and safe to call whether or not tracing is enabled.
void tracing_set_thread_name(std::string name);

// --- drain / inspect -----------------------------------------------------

// Moves every per-thread buffer into the global drained list and returns
// the number of spans moved.  Call only while other recording threads
// are quiescent — after a fork-join barrier (ThreadPool::wait_idle,
// pool destruction, std::thread::join), whose synchronization is what
// orders worker writes before this read; that contract is what lets the
// record path skip locking entirely.  Spans still open on the calling
// thread simply stay unrecorded until they close.
std::size_t tracing_drain();

// All spans drained so far, in drain order.
const std::vector<SpanRecord>& tracing_spans();

// Drops drained spans, per-thread leftovers and thread names; the
// enabled flag is untouched.
void tracing_clear();

// --- exporters -----------------------------------------------------------

// Chrome trace-event JSON: one event per line, "X" complete events
// sorted by (tid, start) plus one "M" thread_name record per named
// thread.  ts/dur are microseconds.  False on I/O failure.
bool write_chrome_trace(const std::filesystem::path& path,
                        const std::vector<SpanRecord>& spans);

struct ProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;  // inclusive
  double self_seconds = 0.0;   // exclusive of child spans
};

// Aggregates spans by name; entries are name-sorted (deterministic).
std::vector<ProfileEntry> build_self_profile(
    const std::vector<SpanRecord>& spans);

// Folds a profile into `registry` as gauges: profile.<name>.calls,
// profile.<name>.total_seconds, profile.<name>.self_seconds.
void profile_to_metrics(const std::vector<ProfileEntry>& profile,
                        MetricsRegistry& registry,
                        const std::string& prefix = "profile.");

// --- RAII span -----------------------------------------------------------

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!tracing_enabled()) return;
    begin(name);
  }
  TraceSpan(const char* name, const char* key, double value) {
    if (!tracing_enabled()) return;
    begin(name);
    arg(key, value);
  }
  ~TraceSpan() {
    if (active_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a numeric arg (no-op when inactive or already at capacity);
  // callable any time before destruction, so results computed inside the
  // span can ride along.
  void arg(const char* key, double value) {
    if (!active_ || n_args_ >= kMaxTraceArgs) return;
    args_[n_args_++] = {key, value};
  }

  bool active() const { return active_; }

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  std::uint8_t n_args_ = 0;
  std::uint16_t depth_ = 0;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  TraceSpan* parent_ = nullptr;
  std::array<TraceArg, kMaxTraceArgs> args_{};
};

// --- tool plumbing -------------------------------------------------------

// Resolves the trace destination from --trace (value = output path) with
// the BCN_TRACE environment variable as fallback, enabling tracing when
// one is present.  Returns the resolved path, or nullopt when tracing
// was not requested.
std::optional<std::filesystem::path> maybe_enable_tracing(
    const ArgParser& args);

// Drains outstanding spans and writes the Chrome trace to `path`,
// announcing the artifact on stdout.  Returns the number of spans
// exported (0 also on I/O failure, which is logged).
std::size_t finalize_tracing(const std::filesystem::path& path);

}  // namespace bcn::obs
