#include "obs/event_trace.h"

#include <algorithm>

#include "common/csv.h"

namespace bcn::obs {

void EventTrace::set_ring_capacity(std::size_t capacity) {
  ring_capacity_ = capacity;
  if (capacity > 0) events_.reserve(capacity);
}

void EventTrace::record_ring(const TraceEvent& event) {
  if (events_.size() < ring_capacity_) {
    events_.push_back(event);
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  events_[ring_head_] = event;
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
  ++evicted_;
}

std::vector<TraceEvent> EventTrace::in_order() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(ring_head_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
  return out;
}

std::vector<TraceEvent> EventTrace::recent(std::size_t n) const {
  std::vector<TraceEvent> all = in_order();
  if (all.size() <= n) return all;
  return {all.end() - static_cast<std::ptrdiff_t>(n), all.end()};
}

std::uint64_t EventTrace::count(EventKind kind) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

const char* EventTrace::kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::BcnNegativeSent: return "bcn_negative_sent";
    case EventKind::BcnPositiveSent: return "bcn_positive_sent";
    case EventKind::BcnRateAdvertSent: return "bcn_rate_advert_sent";
    case EventKind::BcnApplied: return "bcn_applied";
    case EventKind::PauseOn: return "pause_on";
    case EventKind::PauseOff: return "pause_off";
    case EventKind::PauseApplied: return "pause_applied";
    case EventKind::FaultBcnDropped: return "fault_bcn_dropped";
    case EventKind::FaultBcnDelayed: return "fault_bcn_delayed";
    case EventKind::FaultBcnDuplicated: return "fault_bcn_duplicated";
    case EventKind::FaultDataDropped: return "fault_data_dropped";
    case EventKind::FaultPauseDropped: return "fault_pause_dropped";
    case EventKind::LinkDown: return "link_down";
    case EventKind::LinkUp: return "link_up";
  }
  return "unknown";
}

namespace {

CsvWriter build_csv(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  CsvWriter csv({"t", "kind", "point", "flow", "sigma", "value"});
  for (const auto& e : sorted) {
    csv.add_row({CsvWriter::format(e.t), EventTrace::kind_name(e.kind),
                 std::to_string(e.point), std::to_string(e.flow),
                 CsvWriter::format(e.sigma), CsvWriter::format(e.value)});
  }
  return csv;
}

}  // namespace

std::string EventTrace::to_csv() const {
  return build_csv(in_order()).to_string();
}

bool EventTrace::write_csv(const std::filesystem::path& path) const {
  return build_csv(in_order()).write_file(path);
}

}  // namespace bcn::obs
