#include "obs/event_trace.h"

#include <algorithm>

#include "common/csv.h"

namespace bcn::obs {

std::uint64_t EventTrace::count(EventKind kind) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

const char* EventTrace::kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::BcnNegativeSent: return "bcn_negative_sent";
    case EventKind::BcnPositiveSent: return "bcn_positive_sent";
    case EventKind::BcnRateAdvertSent: return "bcn_rate_advert_sent";
    case EventKind::BcnApplied: return "bcn_applied";
    case EventKind::PauseOn: return "pause_on";
    case EventKind::PauseOff: return "pause_off";
    case EventKind::PauseApplied: return "pause_applied";
    case EventKind::FaultBcnDropped: return "fault_bcn_dropped";
    case EventKind::FaultBcnDelayed: return "fault_bcn_delayed";
    case EventKind::FaultBcnDuplicated: return "fault_bcn_duplicated";
    case EventKind::FaultDataDropped: return "fault_data_dropped";
    case EventKind::FaultPauseDropped: return "fault_pause_dropped";
    case EventKind::LinkDown: return "link_down";
    case EventKind::LinkUp: return "link_up";
  }
  return "unknown";
}

namespace {

CsvWriter build_csv(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  CsvWriter csv({"t", "kind", "point", "flow", "sigma", "value"});
  for (const auto& e : sorted) {
    csv.add_row({CsvWriter::format(e.t), EventTrace::kind_name(e.kind),
                 std::to_string(e.point), std::to_string(e.flow),
                 CsvWriter::format(e.sigma), CsvWriter::format(e.value)});
  }
  return csv;
}

}  // namespace

std::string EventTrace::to_csv() const { return build_csv(events_).to_string(); }

bool EventTrace::write_csv(const std::filesystem::path& path) const {
  return build_csv(events_).write_file(path);
}

}  // namespace bcn::obs
