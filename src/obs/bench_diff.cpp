#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/format.h"
#include "common/json.h"

namespace bcn::obs {

BenchDiffResult bench_diff(const std::filesystem::path& file_a,
                           const std::filesystem::path& file_b,
                           const BenchDiffOptions& options) {
  BenchDiffResult result;
  const auto a = FlatJson::load(file_a);
  if (!a) {
    result.error = "cannot load/parse " + file_a.string();
    return result;
  }
  const auto b = FlatJson::load(file_b);
  if (!b) {
    result.error = "cannot load/parse " + file_b.string();
    return result;
  }
  result.ok = true;

  const auto matches = [&](const std::string& key) {
    return options.match.empty() || key.find(options.match) != std::string::npos;
  };

  for (const auto& [key, va] : a->numbers()) {
    if (!matches(key)) continue;
    const auto vb = b->number(key);
    if (!vb) {
      result.only_in_a.push_back(key);
      continue;
    }
    MetricDelta d;
    d.key = key;
    d.a = va;
    d.b = *vb;
    // NaN comes from JSON null (inf/nan in the writer); a pair of nulls
    // is "equal", one-sided null is a breach.
    const bool nan_a = std::isnan(va);
    const bool nan_b = std::isnan(*vb);
    if (nan_a || nan_b) {
      d.rel_delta = (nan_a && nan_b) ? 0.0
                                     : std::numeric_limits<double>::infinity();
    } else {
      d.rel_delta =
          std::abs(*vb - va) / std::max(std::abs(va), options.abs_floor);
    }
    d.breach = d.rel_delta > options.threshold;
    if (d.breach) ++result.regressions;
    ++result.compared;
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [key, vb] : b->numbers()) {
    if (!matches(key)) continue;
    if (!a->number(key)) result.only_in_b.push_back(key);
  }
  if (options.require_same_keys) {
    result.regressions += result.only_in_a.size() + result.only_in_b.size();
  }
  return result;
}

std::string format_bench_diff(const BenchDiffResult& result,
                              const BenchDiffOptions& options) {
  if (!result.ok) return "error: " + result.error + "\n";
  std::string out;
  for (const auto& d : result.deltas) {
    out += strf("%s  %-40s  %.6g -> %.6g  (%+.2f%%)\n",
                d.breach ? "REGRESSION" : "        ok", d.key.c_str(), d.a,
                d.b,
                100.0 * (std::isfinite(d.rel_delta)
                             ? (d.b - d.a) /
                                   std::max(std::abs(d.a), options.abs_floor)
                             : d.rel_delta));
  }
  for (const auto& key : result.only_in_a) {
    out += strf("%s  %-40s  (only in baseline)\n",
                options.require_same_keys ? "REGRESSION" : "   removed",
                key.c_str());
  }
  for (const auto& key : result.only_in_b) {
    out += strf("%s  %-40s  (only in candidate)\n",
                options.require_same_keys ? "REGRESSION" : "     added",
                key.c_str());
  }
  out += strf("%zu metrics compared, %zu regression%s (threshold %.3g)\n",
              result.compared, result.regressions,
              result.regressions == 1 ? "" : "s", options.threshold);
  return out;
}

}  // namespace bcn::obs
