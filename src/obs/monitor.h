// Runtime invariant monitors + flight recorder.
//
// A RunMonitor evaluates cheap online predicates against a packet run —
// queue occupancy within [0, B], frame/byte conservation between the
// lifetime counters, non-negative aggregate rate, finiteness of every
// observed quantity, a no-progress/PFC-deadlock watchdog (sim time
// advances but zero frames are delivered for a configurable window), and
// a fluid-verdict cross-check that flags a run whose measured behaviour
// (drops, buffer hit, severe-congestion PAUSE) contradicts a
// strong-stability verdict the fluid model certified for the same gains.
//
// The flight recorder is the bounded context captured alongside: the
// scenario's EventTrace switched into ring mode (the most recent BCN /
// PAUSE / fault events) plus a ring of periodic state snapshots.  On the
// first violation the monitor can dump a deterministic post-mortem
// bundle (obs/postmortem.h) and exit with kMonitorViolationExit so CI
// and fleet runs distinguish "invariant broken" from ordinary failure.
//
// Layering: obs sits below sim/core/analysis, so the monitor consumes
// plain scalars (MonitorSample) and an optional precomputed fluid
// verdict hint; the sim layer fills samples, the analysis layer supplies
// the hint (analysis::fluid_stability_hint).
//
// Disabled cost: scenarios keep a RunMonitor member unconditionally; an
// unarmed monitor reduces every hook to one predictable branch
// (BENCH_monitor_overhead.json pins the armed-but-quiet cost too).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/log.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace bcn::obs {

// Distinct process exit code for a monitor violation (0 ok, 1 failure,
// 2 usage error, 3 invariant violated).
inline constexpr int kMonitorViolationExit = 3;

// Which monitors are armed plus the flight-recorder shape.  Parsed from
// --monitors / BCN_MONITORS (parse_monitor_spec below).
struct MonitorSpec {
  bool queue_bounds = false;   // queue occupancy within [0, B]
  bool rate_bounds = false;    // aggregate rate finite and non-negative
  bool conservation = false;   // counter inequalities + monotonicity
  bool finite = false;         // NaN/Inf guard on sampled state
  bool watchdog = false;       // no-progress / PFC-deadlock detector
  bool crosscheck = false;     // packet run vs fluid strong-stability
  double watchdog_window = 5e-3;   // seconds without delivery progress
  std::size_t ring = 4096;         // EventTrace flight-recorder capacity
  std::size_t snapshots = 256;     // state-snapshot ring capacity

  bool any() const {
    return queue_bounds || rate_bounds || conservation || finite ||
           watchdog || crosscheck;
  }
  static MonitorSpec all();
};

// Parses the --monitors / BCN_MONITORS spec grammar:
//
//   spec     := "none" | "all" | entry ("," entry)*
//   entry    := "queue_bounds" | "rate_bounds" | "conservation"
//             | "finite" | "watchdog" | "crosscheck"
//             | "window=" DUR      (watchdog no-progress window)
//             | "ring=" N          (flight-recorder event capacity)
//             | "snapshots=" N     (state-snapshot ring capacity)
//   DUR      := number with unit suffix ns | us | ms | s   (e.g. 5ms)
//
// "all" arms every monitor; option-only specs (e.g. "all,window=2ms")
// compose.  Returns nullopt and fills *error on a malformed spec.
std::optional<MonitorSpec> parse_monitor_spec(const std::string& spec,
                                              std::string* error = nullptr);

// One-paragraph grammar summary for tool usage messages.
const char* monitor_spec_usage();

// Compact rendering of the armed monitors and non-default options (the
// inverse of parse_monitor_spec, for logs / artifacts / repro lines).
std::string monitor_spec_summary(const MonitorSpec& spec);

// What to do on the first violation.  Record keeps running and collects
// Violation records (tests); Dump also writes the post-mortem bundle;
// DumpAndExit additionally terminates with kMonitorViolationExit (the
// tool / bench behaviour).
enum class ViolationAction { Record, Dump, DumpAndExit };

struct MonitorConfig {
  MonitorSpec spec;
  ViolationAction action = ViolationAction::Record;
  // Directory receiving POSTMORTEM_<invariant>.json bundles.
  std::filesystem::path bundle_dir = ".";
  // Exact repro command line (--seed/--faults/--mechanism included),
  // embedded verbatim in the bundle.
  std::string repro;
  // Fluid-model strong-stability verdict for the same parameters /
  // mechanism, when one exists (analysis::fluid_stability_hint).  The
  // crosscheck monitor only arms when this is `true`.
  std::optional<bool> fluid_strongly_stable;
};

// One periodic observation of the run, filled by the scenario at its
// sample tick.  Counters are lifetime-cumulative.
struct MonitorSample {
  double t = 0.0;                   // seconds
  double queue_bits = 0.0;
  double aggregate_rate = 0.0;      // bits/s
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t pause_frames = 0;
  double bits_delivered = 0.0;
};

struct Violation {
  std::string invariant;  // "queue_bounds", "watchdog", ...
  double t = 0.0;         // seconds
  double value = 0.0;     // offending quantity
  double bound = 0.0;     // the bound it broke (0 when not applicable)
  std::string message;
};

class RunMonitor {
 public:
  RunMonitor() = default;

  // Arms the monitors in config.spec and switches `trace` (the
  // scenario's EventTrace, may be null) into flight-recorder ring mode.
  void configure(const MonitorConfig& config, EventTrace* trace = nullptr);

  bool armed() const { return armed_; }
  const MonitorConfig& config() const { return config_; }

  // Bounds consumed by the queue / rate monitors.  Scenarios set them
  // from their plant parameters right after configure().
  void set_queue_bound(double buffer_bits) { queue_hi_ = buffer_bits; }
  void set_rate_bound(double max_aggregate_bps) {
    rate_hi_ = max_aggregate_bps;
  }

  // Per-frame hot-path hook (switch enqueue/depart): one predictable
  // branch when the queue monitor is off, one comparison pair when on.
  void check_queue(double t_seconds, std::uint32_t point, double queue_bits) {
    if (!queue_armed_) return;
    ++checks_;
    if (queue_bits >= 0.0 && queue_bits <= queue_hi_ + kQueueSlack) return;
    queue_violation(t_seconds, point, queue_bits);
  }

  // Periodic evaluation of the sampled monitors; also feeds the
  // state-snapshot ring.  Call every record interval.
  void on_sample(const MonitorSample& sample);

  // Monitor predicates evaluated so far (across all hooks).
  std::uint64_t checks() const { return checks_; }
  std::uint64_t violation_count() const { return violations_total_; }
  // First violations, capped at 16 records.
  const std::vector<Violation>& violations() const { return violations_; }
  // Snapshot ring in chronological order.
  std::vector<MonitorSample> snapshots() const;

  // monitor.* counters/gauges: <prefix>checks, <prefix>violations,
  // <prefix>armed, <prefix>snapshots, plus one
  // <prefix>violations.<invariant> counter per tripped invariant.
  void export_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "monitor.") const;

  // Deterministic fold for per-shard monitors (sim/shard/engine.cpp):
  // counters sum, violation records concatenate and re-sort by
  // (t, invariant, message) -- never by which worker thread recorded
  // them first -- capped at the usual 16, snapshot rings merge
  // chronologically keeping the most recent entries, and the watchdog /
  // crosscheck / dump latches OR.  Call after the shards have joined;
  // neither monitor may still be receiving samples.
  void merge_from(const RunMonitor& other);

 private:
  // Tolerance on the queue upper bound: enqueue checks run after the
  // frame was admitted, and drop-tail admits a frame that *fits*, so the
  // occupancy never legitimately exceeds B; any excess is a sim bug.
  static constexpr double kQueueSlack = 1e-6;

  void queue_violation(double t, std::uint32_t point, double queue_bits);
  void violate(const char* invariant, double t, double value, double bound,
               std::string message);

  MonitorConfig config_;
  EventTrace* trace_ = nullptr;
  bool armed_ = false;
  bool queue_armed_ = false;
  double queue_hi_ = 0.0;
  double rate_hi_ = 0.0;

  std::uint64_t checks_ = 0;
  std::uint64_t violations_total_ = 0;
  std::vector<Violation> violations_;
  LogRateLimit violation_logs_{5};
  bool dumped_ = false;

  // Watchdog state.
  std::uint64_t last_delivered_ = 0;
  double last_progress_t_ = 0.0;
  bool watchdog_tripped_ = false;
  // Crosscheck latch: the contradiction is a property of the whole run,
  // so it fires once.
  bool crosscheck_tripped_ = false;

  // Conservation monotonicity state (previous sample).
  bool have_prev_ = false;
  MonitorSample prev_;

  // State-snapshot ring (capacity config_.spec.snapshots).
  std::vector<MonitorSample> snapshots_;
  std::size_t snapshot_head_ = 0;
};

}  // namespace bcn::obs
