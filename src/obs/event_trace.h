// Causal event trace for the congestion-control plane: every BCN
// feedback frame (who was sampled, the sigma value, any advertised rate)
// and every 802.3x PAUSE on/off transition, both at the emitting switch
// and at the reacting regulator.
//
// Pairing a *Sent event with the matching *Applied event (same flow,
// later t) reconstructs the feedback loop frame by frame — the
// event-level view the aggregate counters cannot provide.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace bcn::obs {

enum class EventKind {
  BcnNegativeSent,   // switch sampled a frame, sigma < 0
  BcnPositiveSent,   // switch sampled a frame, sigma > 0
  BcnRateAdvertSent, // FERA explicit-rate advertisement (value = rate)
  BcnApplied,        // regulator applied feedback (value = rate after)
  PauseOn,           // switch asserted PAUSE (value = duration, seconds)
  PauseOff,          // that PAUSE's scheduled expiry
  PauseApplied,      // a source's regulator entered the paused state
  // Injected faults (sim/faults.h): a *Sent event with no matching
  // *Applied pairs with one of these to show where the loop broke.
  FaultBcnDropped,   // notification lost on the reverse path
  FaultBcnDelayed,   // notification delayed (value = extra delay, s)
  FaultBcnDuplicated,// notification duplicated
  FaultDataDropped,  // data frame lost on the forward link
  FaultPauseDropped, // PAUSE frame lost on the reverse path
  LinkDown,          // timed flap: link went dead (point = link label)
  LinkUp,            // timed flap: link restored
};

// `point` is the emitting congestion point / port label; `flow` the
// sampled or reacting source.  Fields that do not apply to a kind are 0.
struct TraceEvent {
  double t = 0.0;  // seconds
  EventKind kind = EventKind::BcnNegativeSent;
  std::uint32_t point = 0;
  std::uint32_t flow = 0;
  double sigma = 0.0;
  double value = 0.0;
};

class EventTrace {
 public:
  void record(const TraceEvent& event) {
    if (enabled_) events_.push_back(event);
  }

  // Recording switch for maximum-throughput runs: record() on a disabled
  // trace is a near-free early-out, so simulators can leave their
  // recording calls unconditional.  Enabled by default.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  std::uint64_t count(EventKind kind) const;

  static const char* kind_name(EventKind kind);

  // CSV columns t,kind,point,flow,sigma,value; rows sorted by time
  // (stable, so same-instant events keep recording order).  PauseOff
  // expiries are recorded with their future timestamp, hence the sort.
  std::string to_csv() const;
  bool write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<TraceEvent> events_;
  bool enabled_ = true;
};

}  // namespace bcn::obs
