// Causal event trace for the congestion-control plane: every BCN
// feedback frame (who was sampled, the sigma value, any advertised rate)
// and every 802.3x PAUSE on/off transition, both at the emitting switch
// and at the reacting regulator.
//
// Pairing a *Sent event with the matching *Applied event (same flow,
// later t) reconstructs the feedback loop frame by frame — the
// event-level view the aggregate counters cannot provide.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace bcn::obs {

enum class EventKind {
  BcnNegativeSent,   // switch sampled a frame, sigma < 0
  BcnPositiveSent,   // switch sampled a frame, sigma > 0
  BcnRateAdvertSent, // FERA explicit-rate advertisement (value = rate)
  BcnApplied,        // regulator applied feedback (value = rate after)
  PauseOn,           // switch asserted PAUSE (value = duration, seconds)
  PauseOff,          // that PAUSE's scheduled expiry
  PauseApplied,      // a source's regulator entered the paused state
  // Injected faults (sim/faults.h): a *Sent event with no matching
  // *Applied pairs with one of these to show where the loop broke.
  FaultBcnDropped,   // notification lost on the reverse path
  FaultBcnDelayed,   // notification delayed (value = extra delay, s)
  FaultBcnDuplicated,// notification duplicated
  FaultDataDropped,  // data frame lost on the forward link
  FaultPauseDropped, // PAUSE frame lost on the reverse path
  LinkDown,          // timed flap: link went dead (point = link label)
  LinkUp,            // timed flap: link restored
};

// `point` is the emitting congestion point / port label; `flow` the
// sampled or reacting source.  Fields that do not apply to a kind are 0.
struct TraceEvent {
  double t = 0.0;  // seconds
  EventKind kind = EventKind::BcnNegativeSent;
  std::uint32_t point = 0;
  std::uint32_t flow = 0;
  double sigma = 0.0;
  double value = 0.0;
};

class EventTrace {
 public:
  void record(const TraceEvent& event) {
    if (!enabled_) return;
    if (ring_capacity_ == 0) {
      events_.push_back(event);
      return;
    }
    record_ring(event);
  }

  // Recording switch for maximum-throughput runs: record() on a disabled
  // trace is a near-free early-out, so simulators can leave their
  // recording calls unconditional.  Enabled by default.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Flight-recorder mode: bound the trace to the `capacity` most recent
  // events, evicting the oldest (recording order) once full.  0 (the
  // default) keeps the legacy unbounded vector.  Must be set before any
  // event is recorded; switching modes mid-trace is a caller bug.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const { return ring_capacity_; }
  // Events evicted by the ring so far (0 in unbounded mode).
  std::uint64_t evicted() const { return evicted_; }

  // Raw storage view.  In ring mode the slot order is NOT recording order
  // once the ring has wrapped; use in_order() / recent() for chronology.
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  std::uint64_t count(EventKind kind) const;

  // Retained events in recording order (oldest surviving first).
  std::vector<TraceEvent> in_order() const;
  // The last min(n, size()) retained events in recording order.
  std::vector<TraceEvent> recent(std::size_t n) const;

  static const char* kind_name(EventKind kind);

  // CSV columns t,kind,point,flow,sigma,value; rows sorted by time
  // (stable over recording order, so same-instant events keep it).
  // PauseOff expiries are recorded with their future timestamp, hence
  // the sort.
  std::string to_csv() const;
  bool write_csv(const std::filesystem::path& path) const;

 private:
  void record_ring(const TraceEvent& event);

  std::vector<TraceEvent> events_;
  bool enabled_ = true;
  std::size_t ring_capacity_ = 0;  // 0 = unbounded
  std::size_t ring_head_ = 0;      // oldest slot once the ring is full
  std::uint64_t evicted_ = 0;
};

}  // namespace bcn::obs
