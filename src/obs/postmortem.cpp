#include "obs/postmortem.h"

#include <cstdio>

#include "common/json.h"
#include "common/log.h"

namespace bcn::obs {

std::filesystem::path postmortem_path(const std::filesystem::path& dir,
                                      const std::string& invariant) {
  return dir / ("POSTMORTEM_" + invariant + ".json");
}

std::filesystem::path write_postmortem(const PostmortemBundle& bundle) {
  JsonWriter json;
  json.add("bundle", "postmortem");
  json.add("invariant", bundle.violation.invariant);
  json.add("message", bundle.violation.message);
  json.add("t_seconds", bundle.violation.t);
  json.add("value", bundle.violation.value);
  json.add("bound", bundle.violation.bound);
  json.add("repro", bundle.config.repro);
  json.add("monitors", monitor_spec_summary(bundle.config.spec));
  if (bundle.config.fluid_strongly_stable) {
    json.add("fluid_strongly_stable", *bundle.config.fluid_strongly_stable);
  }
  json.add("checks", static_cast<std::int64_t>(bundle.checks));

  // Metrics snapshot: the run's counters at the last recorded sample.
  if (!bundle.snapshots.empty()) {
    const MonitorSample& last = bundle.snapshots.back();
    json.add("sim.t_seconds", last.t);
    json.add("sim.queue_bits", last.queue_bits);
    json.add("sim.aggregate_rate_bps", last.aggregate_rate);
    json.add("sim.frames_sent", static_cast<std::int64_t>(last.frames_sent));
    json.add("sim.frames_enqueued",
             static_cast<std::int64_t>(last.frames_enqueued));
    json.add("sim.frames_delivered",
             static_cast<std::int64_t>(last.frames_delivered));
    json.add("sim.frames_dropped",
             static_cast<std::int64_t>(last.frames_dropped));
    json.add("sim.pause_frames", static_cast<std::int64_t>(last.pause_frames));
    json.add("sim.bits_delivered", last.bits_delivered);
  }

  // State-snapshot ring as flat parallel arrays (FlatJson-readable).
  json.add("snapshot_count",
           static_cast<std::int64_t>(bundle.snapshots.size()));
  if (!bundle.snapshots.empty()) {
    std::vector<double> t, q, r, delivered, dropped, paused;
    t.reserve(bundle.snapshots.size());
    for (const MonitorSample& s : bundle.snapshots) {
      t.push_back(s.t);
      q.push_back(s.queue_bits);
      r.push_back(s.aggregate_rate);
      delivered.push_back(static_cast<double>(s.frames_delivered));
      dropped.push_back(static_cast<double>(s.frames_dropped));
      paused.push_back(static_cast<double>(s.pause_frames));
    }
    json.add("snapshot.t", t);
    json.add("snapshot.queue_bits", q);
    json.add("snapshot.rate_bps", r);
    json.add("snapshot.frames_delivered", delivered);
    json.add("snapshot.frames_dropped", dropped);
    json.add("snapshot.pause_frames", paused);
  }

  // Bounded recent-event slice, oldest first (indexed flat keys so each
  // event keeps its kind string).
  std::size_t first = 0;
  if (bundle.recent_events.size() > kPostmortemEvents) {
    first = bundle.recent_events.size() - kPostmortemEvents;
  }
  json.add("event_count",
           static_cast<std::int64_t>(bundle.recent_events.size() - first));
  json.add("events_evicted", static_cast<std::int64_t>(
                                 bundle.events_evicted + first));
  for (std::size_t i = first; i < bundle.recent_events.size(); ++i) {
    const TraceEvent& e = bundle.recent_events[i];
    char key[32];
    std::snprintf(key, sizeof(key), "event.%03zu.", i - first);
    const std::string k(key);
    json.add(k + "t", e.t);
    json.add(k + "kind", EventTrace::kind_name(e.kind));
    json.add(k + "point", static_cast<std::int64_t>(e.point));
    json.add(k + "flow", static_cast<std::int64_t>(e.flow));
    json.add(k + "sigma", e.sigma);
    json.add(k + "value", e.value);
  }

  const std::filesystem::path path =
      postmortem_path(bundle.config.bundle_dir, bundle.violation.invariant);
  if (!json.write_file(path)) {
    BCN_LOG_ERROR("postmortem: failed to write %s", path.string().c_str());
    return {};
  }
  BCN_LOG_ERROR("postmortem: invariant '%s' violated at t=%.9g s; bundle at %s",
                bundle.violation.invariant.c_str(), bundle.violation.t,
                path.string().c_str());
  return path;
}

}  // namespace bcn::obs
