#include "control/second_order.h"

#include "common/math.h"

namespace bcn::control {

std::string to_string(EquilibriumType type) {
  switch (type) {
    case EquilibriumType::StableFocus: return "stable focus";
    case EquilibriumType::UnstableFocus: return "unstable focus";
    case EquilibriumType::Center: return "center";
    case EquilibriumType::StableNode: return "stable node";
    case EquilibriumType::UnstableNode: return "unstable node";
    case EquilibriumType::DegenerateStableNode:
      return "degenerate stable node";
    case EquilibriumType::DegenerateUnstableNode:
      return "degenerate unstable node";
    case EquilibriumType::Saddle: return "saddle";
  }
  return "?";
}

std::array<std::complex<double>, 2> SecondOrderSystem::eigenvalues() const {
  return solve_monic_quadratic(m_, n_);
}

EquilibriumType SecondOrderSystem::classify() const {
  const double disc = discriminant();
  if (disc < 0.0) {
    if (m_ > 0.0) return EquilibriumType::StableFocus;
    if (m_ < 0.0) return EquilibriumType::UnstableFocus;
    return EquilibriumType::Center;
  }
  if (n_ < 0.0) return EquilibriumType::Saddle;
  if (disc == 0.0) {
    return m_ > 0.0 ? EquilibriumType::DegenerateStableNode
                    : EquilibriumType::DegenerateUnstableNode;
  }
  // disc > 0, n >= 0: both real roots share the sign of -m (their sum is -m
  // and product n >= 0).  n == 0 gives one zero eigenvalue; we lump it with
  // the node of the matching stability for this library's purposes.
  return m_ > 0.0 ? EquilibriumType::StableNode
                  : EquilibriumType::UnstableNode;
}

bool SecondOrderSystem::is_hurwitz_stable() const {
  // Routh-Hurwitz for lambda^2 + m lambda + n: stable iff m > 0 and n > 0.
  return m_ > 0.0 && n_ > 0.0;
}

ode::Rhs SecondOrderSystem::rhs() const {
  const double m = m_;
  const double n = n_;
  return [m, n](double /*t*/, Vec2 z) -> Vec2 {
    return {z.y, -n * z.x - m * z.y};
  };
}

}  // namespace bcn::control
