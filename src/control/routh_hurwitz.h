// Routh-Hurwitz stability test for real polynomials up to degree 4.
//
// Used for Proposition 1 (each BCN subsystem is Hurwitz-stable) and by the
// Lu et al. [4] linear-baseline analysis.
#pragma once

#include <vector>

namespace bcn::control {

// `coeffs` are highest-degree first: {a_n, a_{n-1}, ..., a_0} for
// a_n s^n + ... + a_0.  Leading coefficient must be non-zero; degree must
// be between 1 and 4.
//
// Returns true iff every root has a strictly negative real part.
bool routh_hurwitz_stable(const std::vector<double>& coeffs);

}  // namespace bcn::control
