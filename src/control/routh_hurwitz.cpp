#include "control/routh_hurwitz.h"

#include <cassert>
#include <cmath>

namespace bcn::control {

bool routh_hurwitz_stable(const std::vector<double>& coeffs) {
  assert(coeffs.size() >= 2 && coeffs.size() <= 5);
  assert(coeffs.front() != 0.0);

  // Normalize so the leading coefficient is positive.
  std::vector<double> a = coeffs;
  if (a.front() < 0.0) {
    for (double& c : a) c = -c;
  }
  // Necessary condition for all degrees: every coefficient positive.
  for (double c : a) {
    if (!(c > 0.0)) return false;
  }

  switch (a.size() - 1) {
    case 1:  // a1 s + a0
    case 2:  // positivity is also sufficient for degree <= 2
      return true;
    case 3: {  // a3 s^3 + a2 s^2 + a1 s + a0: need a2 a1 > a3 a0
      return a[1] * a[2] > a[0] * a[3];
    }
    case 4: {  // a4 s^4 + ... + a0
      const double a4 = a[0], a3 = a[1], a2 = a[2], a1 = a[3], a0 = a[4];
      if (!(a3 * a2 > a4 * a1)) return false;
      return a1 * (a3 * a2 - a4 * a1) > a0 * a3 * a3;
    }
    default:
      return false;
  }
}

}  // namespace bcn::control
