#include "control/frequency.h"

#include <cassert>
#include <cmath>

namespace bcn::control {

std::complex<double> loop_gain(const LoopTransfer& loop, double omega,
                               double delay) {
  assert(omega != 0.0);
  const std::complex<double> s(0.0, omega);
  std::complex<double> value =
      loop.n * (1.0 + loop.k * s) / (s * s);
  if (delay > 0.0) {
    value *= std::exp(std::complex<double>(0.0, -omega * delay));
  }
  return value;
}

double gain_crossover(const LoopTransfer& loop) {
  assert(loop.n > 0.0);
  const double n2k2 = loop.n * loop.n * loop.k * loop.k;
  const double omega_sq =
      (n2k2 + std::sqrt(n2k2 * n2k2 + 4.0 * loop.n * loop.n)) / 2.0;
  return std::sqrt(omega_sq);
}

double phase_margin(const LoopTransfer& loop) {
  // arg L(j w) = atan(k w) - pi  (double integrator contributes -pi, the
  // zero contributes +atan(k w)), so pm = pi + arg L = atan(k w_c).
  return std::atan(loop.k * gain_crossover(loop));
}

double delay_margin(const LoopTransfer& loop) {
  return phase_margin(loop) / gain_crossover(loop);
}

bool delayed_subsystem_stable(const LoopTransfer& loop, double delay) {
  return delay < delay_margin(loop);
}

}  // namespace bcn::control
