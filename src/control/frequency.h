// Frequency-domain analysis of the BCN subsystem loops -- the toolkit of
// the Lu et al. [4] baseline, extended with delay margins.
//
// Each BCN subsystem closes the loop
//
//     L(s) = n (1 + k s) / s^2        (n = a or bC, k = w/(pm C))
//
// around unity feedback: 1 + L(s) = 0 gives the characteristic equation
// s^2 + k n s + n = 0 of paper eq. (35).  The gain crossover and phase
// margin have closed forms; the delay margin tau_m = phi_m / omega_c
// predicts when a feedback delay destabilizes the *subsystem*.
//
// Comparing tau_m with the switched system's measured critical delay
// (core/delayed_model.h) exposes how conservative per-subsystem linear
// analysis is -- three orders of magnitude for the standard draft.
#pragma once

#include <complex>

namespace bcn::control {

// The open-loop transfer function L(s) = n (1 + k s) / s^2.
struct LoopTransfer {
  double n = 0.0;  // loop gain (a or bC)
  double k = 0.0;  // zero time-constant (w / (pm C))
};

// L(j omega), optionally with a loop delay e^{-j omega tau}.
std::complex<double> loop_gain(const LoopTransfer& loop, double omega,
                               double delay = 0.0);

// Gain-crossover frequency: |L(j omega_c)| = 1.  Closed form:
// omega_c^2 = (n^2 k^2 + sqrt(n^4 k^4 + 4 n^2)) / 2.
double gain_crossover(const LoopTransfer& loop);

// Phase margin in radians: pi + arg L(j omega_c) = atan(k omega_c).
double phase_margin(const LoopTransfer& loop);

// Delay margin: the loop delay that erases the phase margin,
// tau_m = phase_margin / omega_c.
double delay_margin(const LoopTransfer& loop);

// True iff the delayed subsystem loop is stable per the margin test
// (delay < delay margin).
bool delayed_subsystem_stable(const LoopTransfer& loop, double delay);

}  // namespace bcn::control
