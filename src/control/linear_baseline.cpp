#include "control/linear_baseline.h"

#include "common/format.h"

namespace bcn::control {
namespace {

SubsystemReport analyze_subsystem(double m, double n) {
  const SecondOrderSystem system(m, n);
  return {m, n, system.classify(), system.is_hurwitz_stable()};
}

}  // namespace

LinearBaselineReport analyze_linear_baseline(double a, double b, double k,
                                             double capacity) {
  LinearBaselineReport report;
  report.increase = analyze_subsystem(a * k, a);
  report.decrease = analyze_subsystem(k * b * capacity, b * capacity);
  report.declared_stable =
      report.increase.hurwitz_stable && report.decrease.hurwitz_stable;
  return report;
}

std::string to_string(const LinearBaselineReport& report) {
  return strf(
      "linear baseline [Lu et al. 2006]: increase(m=%.6g, n=%.6g) -> "
      "%s; decrease(m=%.6g, n=%.6g) -> %s; overall: %s",
      report.increase.m, report.increase.n,
      to_string(report.increase.equilibrium).c_str(), report.decrease.m,
      report.decrease.n, to_string(report.decrease.equilibrium).c_str(),
      report.declared_stable ? "stable" : "unstable");
}

}  // namespace bcn::control
