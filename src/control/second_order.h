// Second-order linear systems x'' + m x' + n x = 0, written in first-order
// form over the phase plane:
//
//   dx/dt = y
//   dy/dt = -n x - m y
//
// This is exactly the form of the BCN linearized subsystems (paper eq. (9)):
// the increase region has (m, n) = (a k, a) and the decrease region
// (m, n) = (k b C, b C).
#pragma once

#include <array>
#include <complex>
#include <string>

#include "ode/system.h"

namespace bcn::control {

// Qualitative type of the equilibrium at the origin.
enum class EquilibriumType {
  StableFocus,      // complex eigenvalues, negative real part (spiral in)
  UnstableFocus,    // complex eigenvalues, positive real part (spiral out)
  Center,           // purely imaginary eigenvalues (closed orbits)
  StableNode,       // distinct negative real eigenvalues
  UnstableNode,     // distinct positive real eigenvalues
  DegenerateStableNode,    // repeated negative eigenvalue
  DegenerateUnstableNode,  // repeated positive eigenvalue
  Saddle,           // real eigenvalues of opposite sign
};

std::string to_string(EquilibriumType type);

class SecondOrderSystem {
 public:
  // Characteristic polynomial lambda^2 + m lambda + n.
  SecondOrderSystem(double m, double n) : m_(m), n_(n) {}

  double m() const { return m_; }
  double n() const { return n_; }

  double discriminant() const { return m_ * m_ - 4.0 * n_; }

  // Eigenvalues ordered with real(first) <= real(second); complex pairs are
  // returned (conjugate with negative imaginary part first).
  std::array<std::complex<double>, 2> eigenvalues() const;

  EquilibriumType classify() const;

  // True when both eigenvalues have a strictly negative real part.
  bool is_hurwitz_stable() const;

  // The vector field, for numeric integration cross-checks.
  ode::Rhs rhs() const;

 private:
  double m_;
  double n_;
};

}  // namespace bcn::control
