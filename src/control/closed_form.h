// Closed-form solutions of the second-order linear phase-plane system
//
//   dx/dt = y,   dy/dt = -n x - m y        (n > 0)
//
// in the three regimes the paper distinguishes:
//
//   m^2 - 4n < 0 : H-type, logarithmic spiral (paper eq. (12), Fig. 4)
//   m^2 - 4n > 0 : F-type, parabola-like node (paper eq. (21), Fig. 5)
//   m^2 - 4n = 0 : L-type, degenerate node    (paper eq. (29))
//
// Besides evaluation, the class answers the two questions the phase-plane
// analysis needs in closed form:
//   * when does x(t) next reach a local extremum (y = 0)?  -- paper
//     eqs. (18)-(20), (28), (34)
//   * when does the trajectory next cross a line p x + q y = 0 through the
//     origin (the switching line sigma = 0 has p = 1, q = k)?  -- the
//     paper's H^{-1}/F/L crossing computations (e.g. T_i^1 in Case 1)
#pragma once

#include <optional>
#include <string>

#include "common/math.h"
#include "control/second_order.h"

namespace bcn::control {

enum class SolutionKind { Spiral, Node, Degenerate };

std::string to_string(SolutionKind kind);

// A local extremum of x(t) along the solution.
struct XExtremum {
  double t = 0.0;
  double value = 0.0;
  bool is_maximum = false;  // x'' = -n x < 0 at the extremum iff value > 0
};

class LinearSolution {
 public:
  // Solution with initial condition z(0) = z0.  Requires n > 0 (the only
  // regime arising from physical BCN parameters).
  LinearSolution(const SecondOrderSystem& system, Vec2 z0);

  SolutionKind kind() const { return kind_; }
  Vec2 initial() const { return z0_; }

  Vec2 eval(double t) const;

  // Earliest local extremum of x strictly after time `after`.
  // nullopt when x has no further extremum (e.g. node past its turn, or the
  // zero solution).
  std::optional<XExtremum> first_x_extremum(double after = 0.0) const;

  // Earliest t strictly after `after` with p x(t) + q y(t) = 0.
  std::optional<double> first_line_crossing(double p, double q,
                                            double after = 0.0) const;

  // --- regime-specific parameters (for tests and the paper's formulas) ---
  double alpha() const { return alpha_; }    // spiral: Re(lambda)
  double beta() const { return beta_; }      // spiral: |Im(lambda)|
  double amplitude() const { return amp_; }  // spiral: A in eq. (12)
  double phase() const { return phase_; }    // spiral: phi in eq. (12)
  double lambda1() const { return lambda1_; }  // node: smaller eigenvalue
  double lambda2() const { return lambda2_; }  // node/degenerate

 private:
  std::optional<XExtremum> spiral_extremum(double after) const;
  std::optional<XExtremum> node_extremum(double after) const;
  std::optional<XExtremum> degenerate_extremum(double after) const;

  SolutionKind kind_;
  double m_ = 0.0;
  double n_ = 0.0;
  Vec2 z0_;
  // Spiral parameters.
  double alpha_ = 0.0, beta_ = 0.0, amp_ = 0.0, phase_ = 0.0;
  // Node / degenerate parameters.
  double lambda1_ = 0.0, lambda2_ = 0.0;
  double a1_ = 0.0, a2_ = 0.0;  // node coefficients (eq. (21))
  double a3_ = 0.0, a4_ = 0.0;  // degenerate coefficients (eq. (29))
};

// --- The paper's explicit extremum formulas, for cross-validation ---------

// Eq. (18): time of the extremum of x closest to the initial point for the
// spiral case.  alpha/beta as in eq. (12)'s solution.
double paper_spiral_extremum_time(double alpha, double beta, Vec2 z0);

// Eqs. (19)/(20): value of that closest extremum (signed: positive for the
// maximum branch, negative for the minimum branch).
double paper_spiral_extremum_value(double alpha, double beta, Vec2 z0);

// Eq. (28): global extremum of x for the node case (lambda1 < lambda2 < 0).
// Only valid when the bracketed quantities are positive, which holds for
// the trajectories the paper applies it to (initial point with
// y0 - lambda_{1,2} x0 > 0); returns nullopt otherwise.
std::optional<double> paper_node_extremum_value(double lambda1, double lambda2,
                                                Vec2 z0);

// Eq. (34): unique extremum of x for the degenerate case.
std::optional<double> paper_degenerate_extremum_value(double lambda, Vec2 z0);

}  // namespace bcn::control
