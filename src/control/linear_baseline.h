// The linear-analysis baseline the paper critiques (Lu et al. [4],
// "Congestion Control in Networks with No Congestion Drops").
//
// That work splits the BCN variable-structure system into its two linear
// subsystems, checks each with a classical frequency-domain criterion, and
// declares the overall system stable when both subsystems are.  The paper's
// central point is that this verdict ignores (1) the switching transient
// between the subsystems and (2) the finite buffer, so it cannot predict
// queue oscillation (limit cycles) or transient overflow/underflow.
//
// We reproduce the baseline so the benches can put both verdicts side by
// side with the strong-stability verdict and the packet simulator's ground
// truth.
#pragma once

#include <string>

#include "control/second_order.h"

namespace bcn::control {

struct SubsystemReport {
  double m = 0.0;  // damping coefficient of lambda^2 + m lambda + n
  double n = 0.0;  // stiffness coefficient
  EquilibriumType equilibrium = EquilibriumType::StableFocus;
  bool hurwitz_stable = false;
};

struct LinearBaselineReport {
  SubsystemReport increase;  // sigma > 0 subsystem: m = a k, n = a
  SubsystemReport decrease;  // sigma < 0 subsystem: m = k b C, n = b C
  // The baseline's overall verdict: both subsystems Hurwitz-stable.
  bool declared_stable = false;
};

// a = Ru*Gi*N, b = Gd, k = w/(pm*C), C = bottleneck capacity, as in the
// paper's Section IV.A.
LinearBaselineReport analyze_linear_baseline(double a, double b, double k,
                                             double capacity);

std::string to_string(const LinearBaselineReport& report);

}  // namespace bcn::control
