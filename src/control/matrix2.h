// 2x2 real matrices and the exact matrix exponential, used as an
// independent validation path for the closed-form solutions: the linear
// phase-plane system z' = M z with M = [[0, 1], [-n, -m]] is solved both
// by LinearSolution (the paper's H/F/L formulas) and by z(t) = e^{M t} z0
// (Cayley-Hamilton); the test suite checks the two agree for every regime.
#pragma once

#include "common/math.h"

namespace bcn::control {

struct Mat2 {
  // Row-major [[a, b], [c, d]].
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;

  static Mat2 identity() { return {1.0, 0.0, 0.0, 1.0}; }

  double trace() const { return a + d; }
  double det() const { return a * d - b * c; }

  Vec2 apply(Vec2 v) const { return {a * v.x + b * v.y, c * v.x + d * v.y}; }

  friend Mat2 operator*(const Mat2& x, const Mat2& y) {
    return {x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
            x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
  }
  friend Mat2 operator+(const Mat2& x, const Mat2& y) {
    return {x.a + y.a, x.b + y.b, x.c + y.c, x.d + y.d};
  }
  friend Mat2 operator*(double s, const Mat2& m) {
    return {s * m.a, s * m.b, s * m.c, s * m.d};
  }
};

// The companion matrix of lambda^2 + m lambda + n: [[0, 1], [-n, -m]].
Mat2 companion(double m, double n);

// Exact e^{M t} by Cayley-Hamilton: with mu = tr/2 and
// delta = mu^2 - det,
//   e^{Mt} = e^{mu t} [ f(t) I + g(t) (M - mu I) ]
// where (f, g) = (cosh, sinh/s)(s t) for delta = s^2 > 0,
//                (cos, sin/s)(s t)  for delta = -s^2 < 0,
//                (1, t)             for delta = 0.
Mat2 expm(const Mat2& m, double t);

}  // namespace bcn::control
