#include "control/matrix2.h"

#include <cmath>

namespace bcn::control {

Mat2 companion(double m, double n) { return {0.0, 1.0, -n, -m}; }

Mat2 expm(const Mat2& matrix, double t) {
  const double mu = matrix.trace() / 2.0;
  const double delta = mu * mu - matrix.det();
  const Mat2 deviat = matrix + (-mu * Mat2::identity());

  double f;  // coefficient of I
  double g;  // coefficient of (M - mu I)
  // Use a relative threshold so near-degenerate cases stay accurate.
  const double scale = mu * mu + std::abs(matrix.det()) + 1e-300;
  if (delta > 1e-14 * scale) {
    const double s = std::sqrt(delta);
    f = std::cosh(s * t);
    g = std::sinh(s * t) / s;
  } else if (delta < -1e-14 * scale) {
    const double s = std::sqrt(-delta);
    f = std::cos(s * t);
    g = std::sin(s * t) / s;
  } else {
    f = 1.0;
    g = t;
  }
  const double e = std::exp(mu * t);
  return (e * f) * Mat2::identity() + (e * g) * deviat;
}

}  // namespace bcn::control
