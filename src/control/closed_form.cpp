#include "control/closed_form.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace bcn::control {
namespace {

constexpr double kPi = std::numbers::pi;

// Strict-after tolerance: events exactly at `after` are not returned.
double after_tolerance(double after) {
  return 1e-12 * std::max(1.0, std::abs(after));
}

}  // namespace

std::string to_string(SolutionKind kind) {
  switch (kind) {
    case SolutionKind::Spiral: return "spiral (H)";
    case SolutionKind::Node: return "node (F)";
    case SolutionKind::Degenerate: return "degenerate (L)";
  }
  return "?";
}

LinearSolution::LinearSolution(const SecondOrderSystem& system, Vec2 z0)
    : m_(system.m()), n_(system.n()), z0_(z0) {
  assert(n_ > 0.0 && "closed forms require n > 0 (no saddle/zero root)");
  const double disc = system.discriminant();
  if (disc < 0.0) {
    kind_ = SolutionKind::Spiral;
    alpha_ = -m_ / 2.0;
    beta_ = std::sqrt(-disc) / 2.0;
    // x0 = A cos(phi); (alpha x0 - y0)/beta = A sin(phi).  Using atan2
    // instead of the paper's principal arctan keeps the representation
    // valid in every quadrant (the paper's -arctan((y0-ax0)/(bx0)) breaks
    // for x0 <= 0).
    const double s = (alpha_ * z0.x - z0.y) / beta_;
    amp_ = std::hypot(z0.x, s);
    phase_ = std::atan2(s, z0.x);
  } else if (disc > 0.0) {
    kind_ = SolutionKind::Node;
    const auto eig = system.eigenvalues();
    lambda1_ = eig[0].real();
    lambda2_ = eig[1].real();
    a1_ = (lambda2_ * z0.x - z0.y) / (lambda2_ - lambda1_);
    a2_ = (lambda1_ * z0.x - z0.y) / (lambda1_ - lambda2_);
  } else {
    kind_ = SolutionKind::Degenerate;
    lambda1_ = lambda2_ = -m_ / 2.0;
    a3_ = z0.x;
    a4_ = z0.y - lambda1_ * z0.x;
  }
}

Vec2 LinearSolution::eval(double t) const {
  switch (kind_) {
    case SolutionKind::Spiral: {
      const double e = std::exp(alpha_ * t);
      const double c = std::cos(beta_ * t + phase_);
      const double s = std::sin(beta_ * t + phase_);
      const double x = amp_ * e * c;
      const double y = amp_ * e * (alpha_ * c - beta_ * s);
      return {x, y};
    }
    case SolutionKind::Node: {
      const double e1 = std::exp(lambda1_ * t);
      const double e2 = std::exp(lambda2_ * t);
      return {a1_ * e1 + a2_ * e2,
              a1_ * lambda1_ * e1 + a2_ * lambda2_ * e2};
    }
    case SolutionKind::Degenerate: {
      const double e = std::exp(lambda1_ * t);
      const double x = (a3_ + a4_ * t) * e;
      const double y = (a4_ + lambda1_ * (a3_ + a4_ * t)) * e;
      return {x, y};
    }
  }
  return {};
}

std::optional<XExtremum> LinearSolution::spiral_extremum(double after) const {
  if (amp_ == 0.0) return std::nullopt;
  // y = 0  <=>  tan(beta t + phi) = alpha / beta.
  const double theta_star = std::atan(alpha_ / beta_);
  const double tol = after_tolerance(after);
  double j = std::ceil((beta_ * after + phase_ - theta_star) / kPi);
  double t = (theta_star + j * kPi - phase_) / beta_;
  while (t <= after + tol) {
    j += 1.0;
    t = (theta_star + j * kPi - phase_) / beta_;
  }
  const double value = eval(t).x;
  // At an extremum x'' = y' = -n x, so maxima sit at x > 0.
  return XExtremum{t, value, value > 0.0};
}

std::optional<XExtremum> LinearSolution::node_extremum(double after) const {
  const double u = a1_ * lambda1_;
  const double v = a2_ * lambda2_;
  if (u == 0.0 || v == 0.0) return std::nullopt;
  const double rho = -v / u;
  if (rho <= 0.0) return std::nullopt;
  const double t = std::log(rho) / (lambda1_ - lambda2_);
  if (t <= after + after_tolerance(after)) return std::nullopt;
  const double value = eval(t).x;
  return XExtremum{t, value, value > 0.0};
}

std::optional<XExtremum> LinearSolution::degenerate_extremum(
    double after) const {
  // y = 0  <=>  a4 + lambda (a3 + a4 t) = 0.
  if (a4_ == 0.0 || lambda1_ == 0.0) return std::nullopt;
  const double t = -(a4_ + lambda1_ * a3_) / (lambda1_ * a4_);
  if (t <= after + after_tolerance(after)) return std::nullopt;
  const double value = eval(t).x;
  return XExtremum{t, value, value > 0.0};
}

std::optional<XExtremum> LinearSolution::first_x_extremum(double after) const {
  switch (kind_) {
    case SolutionKind::Spiral: return spiral_extremum(after);
    case SolutionKind::Node: return node_extremum(after);
    case SolutionKind::Degenerate: return degenerate_extremum(after);
  }
  return std::nullopt;
}

std::optional<double> LinearSolution::first_line_crossing(double p, double q,
                                                          double after) const {
  const double tol = after_tolerance(after);
  switch (kind_) {
    case SolutionKind::Spiral: {
      if (amp_ == 0.0) return std::nullopt;
      // p x + q y = A e^{alpha t} R cos(beta t + phi + psi).
      const double rx = p + q * alpha_;
      const double ry = q * beta_;
      const double big_r = std::hypot(rx, ry);
      if (big_r == 0.0) return std::nullopt;
      const double psi = std::atan2(ry, rx);
      double j =
          std::ceil((beta_ * after + phase_ + psi - kPi / 2.0) / kPi);
      double t = (kPi / 2.0 + j * kPi - phase_ - psi) / beta_;
      while (t <= after + tol) {
        j += 1.0;
        t = (kPi / 2.0 + j * kPi - phase_ - psi) / beta_;
      }
      return t;
    }
    case SolutionKind::Node: {
      const double u = a1_ * (p + q * lambda1_);
      const double v = a2_ * (p + q * lambda2_);
      if (u == 0.0 || v == 0.0) return std::nullopt;
      const double rho = -v / u;
      if (rho <= 0.0) return std::nullopt;
      const double t = std::log(rho) / (lambda1_ - lambda2_);
      if (t <= after + tol) return std::nullopt;
      return t;
    }
    case SolutionKind::Degenerate: {
      const double c0 = p * a3_ + q * (a4_ + lambda1_ * a3_);
      const double c1 = a4_ * (p + q * lambda1_);
      if (c1 == 0.0) return std::nullopt;
      const double t = -c0 / c1;
      if (t <= after + tol) return std::nullopt;
      return t;
    }
  }
  return std::nullopt;
}

// --- Paper formulas --------------------------------------------------------

double paper_spiral_extremum_time(double alpha, double beta, Vec2 z0) {
  const double base = std::atan(alpha / beta) +
                      std::atan((z0.y - alpha * z0.x) / (beta * z0.x));
  if (z0.x * z0.y >= 0.0) return base / beta;
  return (kPi + base) / beta;
}

double paper_spiral_extremum_value(double alpha, double beta, Vec2 z0) {
  const double t_star = paper_spiral_extremum_time(alpha, beta, z0);
  const double amp =
      std::sqrt((alpha * alpha + beta * beta) * z0.x * z0.x -
                2.0 * alpha * z0.x * z0.y + z0.y * z0.y) /
      beta;
  const double magnitude = amp * beta / std::hypot(alpha, beta) *
                           std::exp(alpha * t_star);
  // Eq. (19) for y0 > 0 (closest extremum is the maximum), eq. (20) for
  // y0 < 0 (the minimum).
  return z0.y > 0.0 ? magnitude : -magnitude;
}

std::optional<double> paper_node_extremum_value(double lambda1, double lambda2,
                                                Vec2 z0) {
  const double p1 = z0.y - lambda1 * z0.x;
  const double p2 = z0.y - lambda2 * z0.x;
  if (!(p1 > 0.0) || !(p2 > 0.0) || !(lambda1 < 0.0) || !(lambda2 < 0.0)) {
    return std::nullopt;
  }
  // Eq. (28) evaluated in log space.  NOTE: the paper prints a leading
  // minus sign; checked against the direct t*-evaluation the extremum is
  // sign(y0) * magnitude (the minus sign is a typo for the y0 > 0 branch).
  const double log_mag =
      (lambda1 * std::log(-lambda1) + lambda2 * std::log(p2) -
       lambda2 * std::log(-lambda2) - lambda1 * std::log(p1)) /
      (lambda2 - lambda1);
  const double magnitude = std::exp(log_mag);
  return z0.y > 0.0 ? magnitude : -magnitude;
}

std::optional<double> paper_degenerate_extremum_value(double lambda,
                                                      Vec2 z0) {
  const double a3 = z0.x;
  const double a4 = z0.y - lambda * z0.x;
  if (a4 == 0.0 || lambda == 0.0) return std::nullopt;
  const double t_star = -(a4 + lambda * a3) / (lambda * a4);
  if (t_star < 0.0) return std::nullopt;
  // Eq. (34) with the exponent corrected: x(t*) = -(A4/lambda) *
  // exp(-(lambda A3 + A4)/A4).  (The paper prints the exponent as
  // -(lambda A3 + A4)/(lambda A4), which fails a direct substitution
  // check, e.g. lambda=-1, z0=(0,1) gives e instead of 1/e.)
  return -(a4 / lambda) * std::exp(-(lambda * a3 + a4) / a4);
}

}  // namespace bcn::control
