// Sharded LRU cache for rendered service responses.
//
// Verdicts are pure functions of the quantized request key (for the
// verdict endpoint: mechanism plus the gain-space tuple (a, b, k, q0,
// B)), so repeated queries over the quantized gain space are answered
// from memory.  The cache is sharded — each shard owns an independent
// mutex, LRU list and index — so concurrent lookups from the admission
// path only contend when they hash to the same shard.
//
// Quantization rule: every numeric request field is snapped to 12
// significant decimal digits (quantize() below) before the key is
// built and before the analysis runs, so any two requests that agree
// to 12 significant digits share one cache entry AND one answer —
// cached and cold responses are byte-identical by construction.
//
// Hit / miss / eviction totals are exported through src/obs metrics
// ("service.cache.hits", ".misses", ".evictions", plus the
// "service.cache.entries" occupancy gauge) when a registry is given.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace bcn::service {

// Snaps `v` onto the service quantization grid: the nearest double
// representable with 12 significant decimal digits.  Deterministic and
// idempotent: quantize(quantize(v)) == quantize(v).
double quantize(double v);

// The canonical key text of one quantized value ("%.12g").  Two values
// collide exactly when they quantize to the same double.
std::string quantize_key(double v);

class VerdictCache {
 public:
  struct Config {
    // Total entries across all shards; rounded up to a multiple of
    // `shards` (each shard holds entries/shards, at least 1).
    std::size_t entries = 4096;
    std::size_t shards = 8;
  };

  // `metrics` may be null (standalone use in tests); counters then
  // accumulate internally only.
  VerdictCache(const Config& config, obs::MetricsRegistry* metrics);

  // Returns the cached response body and refreshes its LRU position.
  std::optional<std::string> get(const std::string& key);

  // Inserts or refreshes; evicts the least-recently-used entry of the
  // key's shard when that shard is full.
  void put(const std::string& key, std::string value);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::uint64_t evictions() const { return evictions_->value(); }
  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t per_shard_capacity() const { return per_shard_capacity_; }

  // Which shard `key` lands in — exposed so tests can target one
  // shard's LRU order deterministically.
  std::size_t shard_of(const std::string& key) const;

 private:
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.  The index maps key -> list node.
    std::list<std::pair<std::string, std::string>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;

  // Own storage when no registry is supplied.
  obs::Counter own_hits_, own_misses_, own_evictions_;
  obs::Gauge own_entries_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Gauge* entries_;
};

}  // namespace bcn::service
