// The stability-verdict service wire protocol: newline-delimited JSON
// over TCP (docs/SERVICE.md is the reference).
//
// Every request is one line holding one flat JSON object with an "op"
// field; every response is one line holding one flat JSON object.  The
// analytic endpoints (verdict, stability_map, crossval, svg_plot) are
// pure functions of their quantized parameters: requests are snapped to
// the service quantization grid (verdict_cache.h) before anything runs,
// so a cold computation, a cache hit and the matching CLI invocation
// all produce byte-identical answers.
//
// Request parameters live in the paper's gain space: (a, b, k, q0, B)
// with a = Ru Gi N, b = Gd, k = w/(pm C).  The service maps them onto
// the canonical plant (standard-draft N, C, Ru, w; derived gi, gd, pm),
// which is exactly the plant `bcn_analyze --gi --gd --pm --q0 --B`
// analyzes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.h"
#include "core/bcn_params.h"
#include "obs/metrics.h"
#include "obs/monitor.h"

namespace bcn::service {

// Server-global execution knobs consulted by the handlers.
struct ServiceOptions {
  // Only `finite` is meaningful for the fluid analyses: with it armed,
  // verdicts built on a non-finite integration are refused the way
  // `bcn_analyze --monitors finite` refuses them.
  obs::MonitorSpec monitors;
};

struct Request {
  std::string op;
  std::optional<std::int64_t> id;  // echoed verbatim in the response
  FlatJson fields;
};

// Parses one protocol line.  On failure returns nullopt and fills
// *error_response with a complete response line (id echoed when it
// could be recovered).
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error_response);

// The canonical cache key of a request: op-tagged, built from the
// quantized parameter values.  Empty for uncacheable ops (stats, ping,
// shutdown) — the server answers those inline.
std::string cache_key(const Request& request);

struct ExecResult {
  // Canonical response line WITHOUT the id field (what the cache
  // stores); attach_id() splices the per-request id back in.
  std::string body;
  bool cacheable = false;
  bool error = false;
};

// Computes the response for a parsed request — the cold path.  Pure and
// thread-safe: handlers never touch shared state (`metrics` is read
// only by the stats op, which the server executes inline, never on the
// pool).  `metrics` may be null; stats then reports an empty snapshot.
ExecResult execute(const Request& request, const ServiceOptions& options,
                   const obs::MetricsRegistry* metrics);

// "{...}" -> "{\"id\":7,...}"; body returned unchanged without an id.
std::string attach_id(const std::optional<std::int64_t>& id,
                      const std::string& body);

// One-line error response body: {"error":code,"message":...}.
std::string error_response(const char* code, const std::string& message);

// The canonical plant for a quantized gain-space tuple: standard-draft
// N, C, Ru, w with gi = a/(Ru N), gd = b, pm = w/(k C) and the default
// severe-congestion threshold.  This is the plant the corresponding
// bcn_analyze invocation sees.
core::BcnParams canonical_plant(double a, double b, double k, double q0,
                                double B);

}  // namespace bcn::service
