#include "service/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/crossval.h"
#include "analysis/report.h"
#include "analysis/stability_map.h"
#include "core/mechanism.h"
#include "core/simulate.h"
#include "plot/series.h"
#include "plot/svg.h"
#include "service/verdict_cache.h"
#include "sim/network.h"
#include "sim/time.h"

namespace bcn::service {

namespace {

// --- request schema --------------------------------------------------------

struct FieldSpec {
  const char* name;
  bool is_string;
};

struct OpSpec {
  const char* op;
  std::vector<FieldSpec> fields;  // allowed fields beyond op/id
};

const std::vector<OpSpec>& op_specs() {
  static const std::vector<OpSpec> specs = {
      {"ping", {}},
      {"stats", {}},
      {"shutdown", {}},
      {"verdict",
       {{"mechanism", true},
        {"a", false},
        {"b", false},
        {"k", false},
        {"q0", false},
        {"B", false}}},
      {"stability_map",
       {{"mechanism", true},
        {"level", true},
        {"mode", true},
        {"a_min", false},
        {"a_max", false},
        {"b_min", false},
        {"b_max", false},
        {"grid", false},
        {"k", false},
        {"q0", false},
        {"B", false}}},
      {"crossval",
       {{"mechanism", true},
        {"a", false},
        {"b", false},
        {"k", false},
        {"q0", false},
        {"B", false},
        {"duration", false}}},
      {"svg_plot",
       {{"mechanism", true},
        {"a", false},
        {"b", false},
        {"k", false},
        {"q0", false},
        {"B", false},
        {"duration", false},
        {"width", false},
        {"height", false}}},
  };
  return specs;
}

const OpSpec* find_op(const std::string& op) {
  for (const auto& spec : op_specs()) {
    if (op == spec.op) return &spec;
  }
  return nullptr;
}

const FieldSpec* find_field(const OpSpec& spec, const std::string& name) {
  for (const auto& field : spec.fields) {
    if (name == field.name) return &field;
  }
  return nullptr;
}

// --- canonical (quantized, defaulted, clamped) parameter extraction --------
//
// Both cache_key() and execute() go through these, so the key always
// describes exactly the computation that would run on a miss.

double canon_number(const FlatJson& fields, const char* name,
                    double fallback) {
  const auto v = fields.number(name);
  return quantize(v.value_or(fallback));
}

struct GainTuple {
  std::string mechanism;
  double a, b, k, q0, B;
};

GainTuple gain_tuple(const FlatJson& fields) {
  const core::BcnParams d = core::BcnParams::standard_draft();
  GainTuple t;
  t.mechanism = fields.string_value("mechanism").value_or("bcn");
  t.a = canon_number(fields, "a", d.a());
  t.b = canon_number(fields, "b", d.b());
  t.k = canon_number(fields, "k", d.k());
  t.q0 = canon_number(fields, "q0", d.q0);
  t.B = canon_number(fields, "B", d.buffer);
  return t;
}

struct MapTuple {
  std::string mechanism, level, mode;
  double a_min, a_max, b_min, b_max, k, q0, B;
  int grid;
};

MapTuple map_tuple(const FlatJson& fields) {
  const core::BcnParams d = core::BcnParams::standard_draft();
  MapTuple t;
  t.mechanism = fields.string_value("mechanism").value_or("bcn");
  t.level = fields.string_value("level").value_or("linearized");
  t.mode = fields.string_value("mode").value_or("batch");
  t.a_min = canon_number(fields, "a_min", 1e8);
  t.a_max = canon_number(fields, "a_max", 1e10);
  t.b_min = canon_number(fields, "b_min", 1e-3);
  t.b_max = canon_number(fields, "b_max", 1e-1);
  t.k = canon_number(fields, "k", d.k());
  t.q0 = canon_number(fields, "q0", d.q0);
  t.B = canon_number(fields, "B", d.buffer);
  const double grid = fields.number("grid").value_or(16.0);
  t.grid = static_cast<int>(
      std::clamp(std::llround(grid), 2LL, 64LL));
  return t;
}

struct CrossvalTuple {
  GainTuple gains;
  double duration;
};

CrossvalTuple crossval_tuple(const FlatJson& fields) {
  CrossvalTuple t;
  t.gains = gain_tuple(fields);
  t.duration = quantize(
      std::clamp(fields.number("duration").value_or(0.02), 1e-3, 0.1));
  return t;
}

struct SvgTuple {
  GainTuple gains;
  double duration;
  int width, height;
};

SvgTuple svg_tuple(const FlatJson& fields) {
  SvgTuple t;
  t.gains = gain_tuple(fields);
  t.duration = quantize(
      std::clamp(fields.number("duration").value_or(1.5e-3), 1e-4, 0.1));
  t.width = static_cast<int>(
      std::clamp(std::llround(fields.number("width").value_or(760.0)),
                 160LL, 4096LL));
  t.height = static_cast<int>(
      std::clamp(std::llround(fields.number("height").value_or(480.0)),
                 120LL, 2160LL));
  return t;
}

// --- shared helpers --------------------------------------------------------

ExecResult error_result(const char* code, const std::string& message) {
  return {error_response(code, message), /*cacheable=*/false, /*error=*/true};
}

// Unknown-name and invalid-plant checks shared by every analytic op.
// Returns an error result (error=true) or a non-error placeholder.
ExecResult check_plant(const GainTuple& t, core::BcnParams* out) {
  if (!core::find_mechanism(t.mechanism)) {
    return error_result("unknown_mechanism",
                        "unknown mechanism '" + t.mechanism +
                            "' (known: " + core::mechanism_name_list() + ")");
  }
  *out = canonical_plant(t.a, t.b, t.k, t.q0, t.B);
  const auto issues = out->validate();
  if (!issues.empty()) {
    std::string message = "invalid parameters:";
    for (const auto& issue : issues) message += " " + issue + ";";
    message.pop_back();
    return error_result("invalid_params", message);
  }
  return {};
}

void add_gain_echo(JsonWriter& json, const GainTuple& t,
                   const core::BcnParams& p) {
  json.add("mechanism", t.mechanism);
  json.add("a", t.a);
  json.add("b", t.b);
  json.add("k", t.k);
  json.add("q0", t.q0);
  json.add("B", t.B);
  json.add("gi", p.gi);
  json.add("gd", p.gd);
  json.add("pm", p.pm);
}

std::vector<double> logspace(double lo, double hi, int n) {
  std::vector<double> out(static_cast<std::size_t>(n));
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        n == 1 ? lo : std::exp(llo + (lhi - llo) * i / (n - 1));
  }
  return out;
}

// --- op executors ----------------------------------------------------------

ExecResult exec_verdict(const Request& request,
                        const ServiceOptions& options) {
  const GainTuple t = gain_tuple(request.fields);
  core::BcnParams p;
  if (auto err = check_plant(t, &p); err.error) return err;

  analysis::VerdictRequest vr;
  vr.params = p;
  vr.mechanism = t.mechanism;
  vr.finite_monitor = options.monitors.finite;
  const auto report = analysis::render_verdict_report(vr);
  if (options.monitors.finite && report.nonfinite) {
    return error_result("monitor", report.monitor_error);
  }

  JsonWriter json;
  json.add("op", "verdict");
  add_gain_echo(json, t, p);
  json.add("has_fluid", report.has_fluid);
  json.add("nonfinite", report.nonfinite);
  if (report.has_fluid) {
    json.add("stable_linearized", report.stable_linearized);
    json.add("stable_nonlinear", report.stable_nonlinear);
    json.add("peak_q_linearized", report.peak_q_linearized);
    json.add("dip_q_linearized", report.dip_q_linearized);
    json.add("peak_q_nonlinear", report.peak_q_nonlinear);
    json.add("dip_q_nonlinear", report.dip_q_nonlinear);
  }
  if (report.closed_form) {
    json.add("paper_case", report.paper_case);
    json.add("proposition", report.proposition);
    json.add("proposition_satisfied", report.proposition_satisfied);
    json.add("theorem1_satisfied", report.theorem1_satisfied);
    json.add("theorem1_required_buffer", report.theorem1_required_buffer);
  }
  json.add("text", report.text);
  return {json.to_line(), /*cacheable=*/true, /*error=*/false};
}

ExecResult exec_stability_map(const Request& request,
                              const ServiceOptions& /*options*/) {
  const MapTuple t = map_tuple(request.fields);
  if (t.mechanism != "bcn" && t.mechanism != "bcn-draft") {
    return error_result("unsupported_mechanism",
                        "stability_map supports the closed-form mechanisms "
                        "(bcn, bcn-draft); got '" + t.mechanism + "'");
  }
  core::ModelLevel level;
  if (t.level == "linearized") {
    level = core::ModelLevel::Linearized;
  } else if (t.level == "nonlinear") {
    level = core::ModelLevel::Nonlinear;
  } else if (t.level == "clipped") {
    level = core::ModelLevel::Clipped;
  } else {
    return error_result("bad_request",
                        "level must be linearized, nonlinear or clipped");
  }
  analysis::MapMode mode = analysis::MapMode::Batch;
  if (!analysis::parse_map_mode(t.mode, &mode)) {
    return error_result("bad_request",
                        "mode must be scalar, batch or adaptive");
  }
  if (!(t.a_min > 0.0) || !(t.b_min > 0.0) || t.a_min > t.a_max ||
      t.b_min > t.b_max) {
    return error_result("bad_request",
                        "gain ranges must satisfy 0 < a_min <= a_max and "
                        "0 < b_min <= b_max");
  }
  GainTuple corner{t.mechanism, t.a_min, t.b_min, t.k, t.q0, t.B};
  core::BcnParams base;
  if (auto err = check_plant(corner, &base); err.error) return err;

  const auto a_values = logspace(t.a_min, t.a_max, t.grid);
  const auto b_values = logspace(t.b_min, t.b_max, t.grid);
  std::vector<double> gi_values(a_values.size());
  for (std::size_t i = 0; i < a_values.size(); ++i) {
    gi_values[i] = a_values[i] / (base.ru * base.num_sources);
  }

  analysis::StabilityMapOptions opts;
  opts.numeric_level = level;
  opts.mode = mode;
  opts.threads = 1;  // handlers are serial; the server batches across them
  const auto map =
      analysis::compute_stability_map(base, gi_values, b_values, opts);

  std::vector<double> stable(map.cells.size()), theorem1(map.cells.size());
  for (std::size_t i = 0; i < map.cells.size(); ++i) {
    stable[i] = map.cells[i].numeric.strongly_stable ? 1.0 : 0.0;
    theorem1[i] = map.cells[i].report.theorem1_satisfied ? 1.0 : 0.0;
  }

  JsonWriter json;
  json.add("op", "stability_map");
  json.add("mechanism", t.mechanism);
  json.add("level", t.level);
  json.add("mode", t.mode);
  json.add("grid", t.grid);
  json.add("k", t.k);
  json.add("q0", t.q0);
  json.add("B", t.B);
  json.add("a_values", a_values);
  json.add("b_values", b_values);
  // Row-major over (a outer, b inner), 1.0 = verdict holds for the cell.
  json.add("stable", stable);
  json.add("theorem1", theorem1);
  json.add("numeric_stable", map.numeric_stable);
  json.add("theorem1_stable", map.theorem1_stable);
  json.add("proposition_stable", map.proposition_stable);
  json.add("theorem1_false_positive", map.theorem1_false_positive);
  json.add("proposition_false_positive", map.proposition_false_positive);
  json.add("integrated_cells",
           static_cast<std::int64_t>(map.integrated_cells));
  json.add("refinement_waves", map.refinement_waves);
  return {json.to_line(), /*cacheable=*/true, /*error=*/false};
}

ExecResult exec_crossval(const Request& request,
                         const ServiceOptions& options) {
  const CrossvalTuple t = crossval_tuple(request.fields);
  core::BcnParams p;
  if (auto err = check_plant(t.gains, &p); err.error) return err;
  const bool has_fluid = core::find_mechanism(t.gains.mechanism)->has_fluid;

  // Fluid side: the nonlinear facet (eq. (8) for BCN), recorded on the
  // same cadence the E11 bench uses.
  core::FluidRun fluid;
  if (has_fluid) {
    if (t.gains.mechanism == "bcn" || t.gains.mechanism == "bcn-draft") {
      core::FluidRunOptions fopts;
      fopts.duration = t.duration;
      fopts.record_interval = 2e-5;
      fluid = core::simulate_fluid(
          core::FluidModel(p, core::ModelLevel::Nonlinear), fopts);
    } else {
      core::MechanismConfig mcfg;
      mcfg.plant = p;
      const auto mech = core::make_fluid_mechanism(t.gains.mechanism, mcfg);
      core::MechanismRunOptions mopts;
      mopts.level = core::ModelLevel::Nonlinear;
      mopts.duration = t.duration;
      mopts.record_interval = 2e-5;
      fluid = core::simulate_fluid_mechanism(*mech, mopts);
    }
    if (options.monitors.finite && fluid.nonfinite) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "monitor: finite: %s fluid integration produced a "
                    "non-finite state; no verdict\n",
                    t.gains.mechanism.c_str());
      return error_result("monitor", buf);
    }
  }

  // Packet side: the Fig. 1 network from the fluid analysis start
  // (initial rate C/N, empty queue), aggregate trace only.
  sim::NetworkConfig cfg;
  cfg.params = p;
  cfg.mechanism = t.gains.mechanism;
  cfg.initial_rate = p.capacity / p.num_sources;
  cfg.record_interval = 20 * sim::kMicrosecond;
  cfg.record_timelines = false;
  cfg.record_events = false;
  sim::Network net(cfg);
  net.run(sim::from_seconds(t.duration));
  const auto packet = net.stats().to_phase_trajectory(p.q0, p.capacity);

  const double prominence = 0.05 * p.q0;
  const auto f_pkt = analysis::extract_features(packet, prominence);

  JsonWriter json;
  json.add("op", "crossval");
  add_gain_echo(json, t.gains, p);
  json.add("duration", t.duration);
  json.add("has_fluid", has_fluid);
  json.add("packet_peak_q", f_pkt.peak_value + p.q0);
  json.add("packet_peak_t_ms", f_pkt.peak_time * 1e3);
  json.add("packet_trough_q", f_pkt.trough_value + p.q0);
  json.add("packet_period_ms",
           f_pkt.period ? *f_pkt.period * 1e3 : std::nan(""));
  json.add("packet_settle_q", f_pkt.final_value + p.q0);
  if (has_fluid) {
    const auto cmp =
        analysis::compare_shapes(fluid.trajectory, packet, prominence);
    json.add("fluid_nonfinite", fluid.nonfinite);
    json.add("fluid_peak_q", cmp.a.peak_value + p.q0);
    json.add("fluid_trough_q", cmp.a.trough_value + p.q0);
    json.add("fluid_period_ms",
             cmp.a.period ? *cmp.a.period * 1e3 : std::nan(""));
    json.add("fluid_settle_q", cmp.a.final_value + p.q0);
    json.add("same_character", cmp.same_character);
    json.add("peak_rel_error", cmp.peak_rel_error);
    json.add("period_rel_error", cmp.period_rel_error);
    json.add("settle_offset_q0",
             std::abs(cmp.b.final_value - cmp.a.final_value) / p.q0);
  }
  const auto& c = net.stats().counters;
  json.add("frames_sent", static_cast<std::int64_t>(c.frames_sent));
  json.add("frames_delivered", static_cast<std::int64_t>(c.frames_delivered));
  json.add("frames_dropped", static_cast<std::int64_t>(c.frames_dropped));
  json.add("bcn_positive", static_cast<std::int64_t>(c.bcn_positive));
  json.add("bcn_negative", static_cast<std::int64_t>(c.bcn_negative));
  json.add("pause_frames", static_cast<std::int64_t>(c.pause_frames));
  json.add("throughput_gbps",
           net.stats().throughput(sim::from_seconds(t.duration)) / 1e9);
  return {json.to_line(), /*cacheable=*/true, /*error=*/false};
}

ExecResult exec_svg_plot(const Request& request,
                         const ServiceOptions& options) {
  const SvgTuple t = svg_tuple(request.fields);
  core::BcnParams p;
  if (auto err = check_plant(t.gains, &p); err.error) return err;
  const bool is_bcn =
      t.gains.mechanism == "bcn" || t.gains.mechanism == "bcn-draft";
  if (!core::find_mechanism(t.gains.mechanism)->has_fluid) {
    return error_result("unsupported_mechanism",
                        "svg_plot needs a fluid facet; '" + t.gains.mechanism +
                            "' is packet-only");
  }

  core::FluidRun run;
  if (is_bcn) {
    core::FluidRunOptions opts;
    opts.duration = t.duration;
    opts.record_interval = t.duration / 1000.0;
    run = core::simulate_fluid(
        core::FluidModel(p, core::ModelLevel::Nonlinear), opts);
  } else {
    core::MechanismConfig mcfg;
    mcfg.plant = p;
    const auto mech = core::make_fluid_mechanism(t.gains.mechanism, mcfg);
    core::MechanismRunOptions mopts;
    mopts.level = core::ModelLevel::Nonlinear;
    mopts.duration = t.duration;
    mopts.record_interval = t.duration / 1000.0;
    run = core::simulate_fluid_mechanism(*mech, mopts);
  }
  if (options.monitors.finite && run.nonfinite) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "monitor: finite: %s fluid integration produced a "
                  "non-finite state; no verdict\n",
                  t.gains.mechanism.c_str());
    return error_result("monitor", buf);
  }

  plot::Series q;
  q.name = "q(t)";
  for (const auto& s : run.trajectory.samples()) {
    q.add(s.t * 1e3, (s.z.x + p.q0) / 1e6);
  }
  plot::SvgOptions svg;
  svg.width = t.width;
  svg.height = t.height;
  svg.title = is_bcn ? "queue transient (nonlinear fluid model)"
                     : "queue transient (nonlinear fluid facet)";
  svg.x_label = "t [ms]";
  svg.y_label = "q [Mbit]";
  svg.ref_lines.push_back({false, p.q0 / 1e6, "q0"});

  JsonWriter json;
  json.add("op", "svg_plot");
  add_gain_echo(json, t.gains, p);
  json.add("duration", t.duration);
  json.add("width", t.width);
  json.add("height", t.height);
  json.add("nonfinite", run.nonfinite);
  json.add("svg", plot::render_svg({q}, svg));
  return {json.to_line(), /*cacheable=*/true, /*error=*/false};
}

ExecResult exec_stats(const obs::MetricsRegistry* metrics) {
  JsonWriter json;
  json.add("op", "stats");
  if (metrics) metrics->write_json(json, "");
  return {json.to_line(), /*cacheable=*/false, /*error=*/false};
}

}  // namespace

core::BcnParams canonical_plant(double a, double b, double k, double q0,
                                double B) {
  core::BcnParams p = core::BcnParams::standard_draft();
  p.q0 = q0;
  p.buffer = B;
  p.qsc = std::min(0.9 * B, B - 1.0);
  p.gi = a / (p.ru * p.num_sources);
  p.gd = b;
  p.pm = (k > 0.0) ? p.w / (k * p.capacity) : -1.0;
  return p;
}

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error_response_out) {
  const auto parsed = FlatJson::parse(line);
  if (!parsed) {
    *error_response_out =
        error_response("parse", "request is not a flat JSON object");
    return std::nullopt;
  }
  Request request;
  // Recover the id first so even malformed requests echo it.
  if (const auto id = parsed->number("id")) {
    if (!std::isfinite(*id) || *id != std::floor(*id) ||
        std::abs(*id) > 9.007199254740992e15) {
      *error_response_out =
          error_response("bad_request", "id must be an integer");
      return std::nullopt;
    }
    request.id = static_cast<std::int64_t>(*id);
  }
  const auto fail = [&](const std::string& message) {
    *error_response_out =
        attach_id(request.id, error_response("bad_request", message));
    return std::nullopt;
  };
  if (parsed->strings().count("id")) return fail("id must be an integer");
  const auto op = parsed->string_value("op");
  if (!op) return fail("missing op");
  const OpSpec* spec = find_op(*op);
  if (!spec) return fail("unknown op '" + *op + "'");
  // Strict field validation: unknown fields and wrongly-typed known
  // fields are rejected up front.  A numeric field arriving as a string
  // would otherwise silently default in the cache key while erroring in
  // execution — a cache-poisoning hazard, not a convenience.
  for (const auto& [key, value] : parsed->strings()) {
    if (key == "op") continue;
    const FieldSpec* field = find_field(*spec, key);
    if (!field) return fail("unknown field '" + key + "' for op " + *op);
    if (!field->is_string) return fail("field '" + key + "' must be a number");
  }
  for (const auto& [key, value] : parsed->numbers()) {
    if (key == "id") continue;
    const FieldSpec* field = find_field(*spec, key);
    if (!field) return fail("unknown field '" + key + "' for op " + *op);
    if (field->is_string) return fail("field '" + key + "' must be a string");
    if (!std::isfinite(value)) return fail("field '" + key + "' must be finite");
  }
  if (!parsed->arrays().empty()) {
    return fail("array fields are not part of the request schema");
  }
  request.op = *op;
  request.fields = *parsed;
  return request;
}

std::string cache_key(const Request& request) {
  const auto gains_part = [](const GainTuple& t) {
    return t.mechanism + "|" + quantize_key(t.a) + "|" + quantize_key(t.b) +
           "|" + quantize_key(t.k) + "|" + quantize_key(t.q0) + "|" +
           quantize_key(t.B);
  };
  if (request.op == "verdict") {
    return "verdict|" + gains_part(gain_tuple(request.fields));
  }
  if (request.op == "stability_map") {
    const MapTuple t = map_tuple(request.fields);
    return "map|" + t.mechanism + "|" + t.level + "|" + t.mode + "|" +
           std::to_string(t.grid) + "|" + quantize_key(t.a_min) + "|" +
           quantize_key(t.a_max) + "|" + quantize_key(t.b_min) + "|" +
           quantize_key(t.b_max) + "|" + quantize_key(t.k) + "|" +
           quantize_key(t.q0) + "|" + quantize_key(t.B);
  }
  if (request.op == "crossval") {
    const CrossvalTuple t = crossval_tuple(request.fields);
    return "crossval|" + gains_part(t.gains) + "|" + quantize_key(t.duration);
  }
  if (request.op == "svg_plot") {
    const SvgTuple t = svg_tuple(request.fields);
    return "svg|" + gains_part(t.gains) + "|" + quantize_key(t.duration) +
           "|" + std::to_string(t.width) + "|" + std::to_string(t.height);
  }
  return {};  // ping / stats / shutdown: answered inline, never cached
}

ExecResult execute(const Request& request, const ServiceOptions& options,
                   const obs::MetricsRegistry* metrics) {
  if (request.op == "ping") {
    JsonWriter json;
    json.add("op", "ping");
    json.add("ok", true);
    return {json.to_line(), /*cacheable=*/false, /*error=*/false};
  }
  if (request.op == "shutdown") {
    // The server recognizes the op and initiates teardown after replying.
    JsonWriter json;
    json.add("op", "shutdown");
    json.add("ok", true);
    return {json.to_line(), /*cacheable=*/false, /*error=*/false};
  }
  if (request.op == "stats") return exec_stats(metrics);
  if (request.op == "verdict") return exec_verdict(request, options);
  if (request.op == "stability_map") {
    return exec_stability_map(request, options);
  }
  if (request.op == "crossval") return exec_crossval(request, options);
  if (request.op == "svg_plot") return exec_svg_plot(request, options);
  return error_result("bad_request", "unknown op '" + request.op + "'");
}

std::string attach_id(const std::optional<std::int64_t>& id,
                      const std::string& body) {
  if (!id || body.empty() || body.front() != '{') return body;
  std::string out = "{\"id\":" + std::to_string(*id);
  if (body.size() > 2) {
    out += ",";
    out.append(body, 1, std::string::npos);
  } else {
    out += "}";
  }
  return out;
}

std::string error_response(const char* code, const std::string& message) {
  JsonWriter json;
  json.add("error", code);
  json.add("message", message);
  return json.to_line();
}

}  // namespace bcn::service
