#include "service/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace bcn::service {

// --- JobQueue ---------------------------------------------------------------

bool ServiceServer::JobQueue::push(std::shared_ptr<Job> job) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_.wait(lock,
              [this] { return stopped_ || jobs_.size() < capacity_; });
  if (stopped_) return false;
  jobs_.push_back(std::move(job));
  ready_.notify_one();
  return true;
}

std::shared_ptr<ServiceServer::Job> ServiceServer::JobQueue::pop_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return stopped_ || !jobs_.empty(); });
  if (jobs_.empty()) return nullptr;
  auto job = std::move(jobs_.front());
  jobs_.pop_front();
  space_.notify_one();
  return job;
}

void ServiceServer::JobQueue::drain_into(
    std::vector<std::shared_ptr<Job>>& out, std::size_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t taken = 0;
  while (taken < max && !jobs_.empty()) {
    out.push_back(std::move(jobs_.front()));
    jobs_.pop_front();
    ++taken;
  }
  if (taken > 0) space_.notify_all();
}

void ServiceServer::JobQueue::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  ready_.notify_all();
  space_.notify_all();
}

// --- lifecycle --------------------------------------------------------------

ServiceServer::ServiceServer(const ServiceConfig& config)
    : config_(config),
      connections_(&metrics_.counter("service.connections")),
      requests_(&metrics_.counter("service.requests")),
      errors_(&metrics_.counter("service.errors")),
      batches_(&metrics_.counter("service.batches")),
      queue_(config.queue_capacity > 0 ? config.queue_capacity : 1) {
  options_.monitors = config.monitors;
  VerdictCache::Config cache_config;
  cache_config.entries = config.cache_entries;
  cache_config.shards = config.cache_shards;
  cache_ = std::make_unique<VerdictCache>(cache_config, &metrics_);
}

ServiceServer::~ServiceServer() { stop(); }

bool ServiceServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<exec::ThreadPool>(config_.threads);
  batch_thread_ = std::thread([this] { batch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

bool ServiceServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  return shutdown_requested_;
}

void ServiceServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool ServiceServer::wait_for_shutdown(double seconds) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  return shutdown_cv_.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [this] { return shutdown_requested_; });
}

void ServiceServer::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (stopped_ || listen_fd_ < 0) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
  }
  // 1. Unblock and retire the accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // 2. Unblock every reader's read(); readers waiting on a pending job
  //    stay blocked until the batcher answers it below.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  // 3. Stop admissions; the batcher drains whatever is queued (every
  //    admitted job still gets an answer) and exits.
  queue_.stop();
  if (batch_thread_.joinable()) batch_thread_.join();
  // 4. Readers are now answerable and unblocked; join and close.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    conns_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  pool_.reset();
  request_shutdown();  // release any wait_for_shutdown() caller
}

// --- accept / read ----------------------------------------------------------

void ServiceServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener is gone
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    // Reap connections whose readers already finished, so a long-lived
    // server with many short connections does not accumulate threads.
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        ::close((*it)->fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    connections_->inc();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { reader_loop(raw); });
    conns_.push_back(std::move(conn));
  }
}

bool ServiceServer::write_line(int fd, const std::string& body) {
  std::string out = body;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void ServiceServer::reader_loop(Connection* conn) {
  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (alive && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, std::move(line));
      if (stopping_.load(std::memory_order_acquire)) alive = false;
    }
    if (buffer.size() > config_.max_line_bytes) {
      errors_->inc();
      write_line(conn->fd, error_response("parse", "request line too long"));
      break;
    }
  }
  // The fd is closed by the accept loop's reaper or by stop(), never
  // here: closing it while stop() may concurrently shutdown() the same
  // fd would race with kernel fd reuse.
  conn->done.store(true, std::memory_order_release);
}

void ServiceServer::handle_line(Connection* conn, std::string line) {
  std::string parse_error;
  auto request = parse_request(line, &parse_error);
  if (!request) {
    errors_->inc();
    write_line(conn->fd, parse_error);
    return;
  }
  requests_->inc();

  // Cheap control-plane ops run inline on the reader: the stats
  // snapshot must not sit behind queued analysis work.
  if (request->op == "ping" || request->op == "stats" ||
      request->op == "shutdown") {
    const ExecResult result = execute(*request, options_, &metrics_);
    write_line(conn->fd, attach_id(request->id, result.body));
    if (request->op == "shutdown") request_shutdown();
    return;
  }

  const std::string key = cache_key(*request);
  if (auto cached = cache_->get(key)) {
    write_line(conn->fd, attach_id(request->id, *cached));
    return;
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(*request);
  job->key = key;
  if (!queue_.push(job)) {
    errors_->inc();
    write_line(conn->fd, attach_id(job->request.id,
                                   error_response("shutting_down",
                                                  "server is shutting down")));
    return;
  }
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock, [&job] { return job->done; });
  }
  if (job->error) errors_->inc();
  write_line(conn->fd, attach_id(job->request.id, job->body));
}

// --- batcher ----------------------------------------------------------------

void ServiceServer::finish(Job& job, std::string body, bool is_error) {
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.body = std::move(body);
    job.error = is_error;
    job.done = true;
  }
  job.cv.notify_one();
}

void ServiceServer::batch_loop() {
  std::vector<std::shared_ptr<Job>> batch;
  for (;;) {
    batch.clear();
    auto first = queue_.pop_wait();
    if (!first) return;  // stopped and fully drained
    batch.push_back(std::move(first));
    if (config_.max_batch > 1) {
      queue_.drain_into(batch, config_.max_batch - 1);
    }
    batches_->inc();

    // Deduplicate within the batch: jobs sharing a cache key are
    // answered by one execution (concurrent clients asking the same
    // question cost one analysis, not N).
    std::vector<std::vector<std::shared_ptr<Job>>> groups;
    for (auto& job : batch) {
      bool grouped = false;
      for (auto& group : groups) {
        if (group.front()->key == job->key) {
          group.push_back(std::move(job));
          grouped = true;
          break;
        }
      }
      if (!grouped) groups.push_back({std::move(job)});
    }

    for (auto& group : groups) {
      pool_->submit([this, &group] {
        ExecResult result = execute(group.front()->request, options_,
                                    &metrics_);
        if (result.cacheable && !result.error) {
          cache_->put(group.front()->key, result.body);
        }
        for (std::size_t i = 0; i < group.size(); ++i) {
          finish(*group[i], result.body, result.error);
        }
      });
    }
    pool_->wait_idle();  // micro-batch barrier: groups die with the loop
  }
}

}  // namespace bcn::service
