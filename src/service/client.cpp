#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bcn::service {

bool LineClient::connect_to(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad host address '" + host + "'";
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool LineClient::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> LineClient::read_line() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0) error_ = std::string("read: ") + std::strerror(errno);
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> LineClient::request(const std::string& line) {
  if (!send_line(line)) return std::nullopt;
  return read_line();
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace bcn::service
